//! Runs an NPB-style MPI workload on three systems — scale-up server,
//! MCN-enabled server, 10GbE cluster — a miniature of Figs. 9–11.
//!
//! Run with: `cargo run --release --example npb_workload [bench]`
//! where `bench` is one of: ep cg mg ft is lu (default: mg).

use mcn::{ComponentExt, EthernetCluster, McnConfig, McnSystem, SystemConfig};
use mcn_mpi::placement::{spawn_on_cluster, spawn_on_mcn};
use mcn_mpi::WorkloadSpec;
use mcn_sim::SimTime;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "mg".into());
    let spec = WorkloadSpec::by_name(&name)
        .unwrap_or_else(|| panic!("unknown benchmark '{name}'; try ep/cg/mg/ft/is/lu"));
    println!(
        "NPB-style '{}' ({}): {} iterations, {} MB/iter, {}, {:?}\n",
        spec.name,
        spec.suite,
        spec.iterations,
        spec.mem_bytes_per_iter >> 20,
        if spec.random_access { "random access" } else { "streaming" },
        spec.comm
    );
    let deadline = SimTime::from_secs(30);

    // Scale-up: 8 cores, 8 ranks over loopback.
    let mut sys = McnSystem::new(&SystemConfig::default(), 0, McnConfig::level(0));
    let rep = spawn_on_mcn(&mut sys, spec, 8, 0, 7);
    assert!(sys.run_until_procs_done(deadline));
    let t_up = rep.lock().completion().expect("finished");
    println!("scale-up server (8 cores):          {t_up}");

    // MCN server: 8 host ranks + 3 per DIMM on 2 DIMMs at mcn3.
    let mut sys = McnSystem::new(&SystemConfig::default(), 2, McnConfig::level(3));
    let rep = spawn_on_mcn(&mut sys, spec, 8, 3, 7);
    assert!(sys.run_until_procs_done(deadline));
    let r = rep.lock();
    assert!(r.verified, "numeric verification failed");
    let t_mcn = r.completion().expect("finished");
    drop(r);
    println!(
        "MCN server (8 host + 2x3 MCN ranks): {t_mcn}  ({:.2}x)",
        t_up.as_secs_f64() / t_mcn.as_secs_f64()
    );

    // 10GbE cluster: 2 nodes, 7 ranks each (same total ranks as MCN).
    let mut c = EthernetCluster::new(&SystemConfig::default(), 2);
    let rep = spawn_on_cluster(&mut c, spec, 7, 7);
    assert!(c.run_until_procs_done(deadline));
    let t_cl = rep.lock().completion().expect("finished");
    println!(
        "10GbE cluster (2 nodes x 7 ranks):  {t_cl}  ({:.2}x)",
        t_up.as_secs_f64() / t_cl.as_secs_f64()
    );
    println!("\n(all three runs executed the same RankProgram, numerically verified)");
}
