//! Distributed wordcount — the paper's "data-intensive application on a
//! distributed computing framework" story, end to end on an MCN server.
//!
//! Real MapReduce: each worker tokenises and counts its split, shuffles the
//! partitioned counts, reduces its partition, and verifies it against an
//! independently recomputed ground truth. The same job then runs on a
//! 10GbE cluster for comparison.
//!
//! Run with: `cargo run --release --example wordcount`

use mcn::{ComponentExt, EthernetCluster, McnConfig, McnSystem, SystemConfig};
use mcn_mpi::mapreduce::{MapReduceReport, MapReduceWorker};
use mcn_mpi::MpiRank;
use mcn_sim::SimTime;

const WORDS_PER_WORKER: usize = 200_000;
const SEED: u64 = 2018; // MICRO 2018

fn main() {
    // --- on an MCN server: 2 host workers + 2 DIMM workers ---------------
    let mut sys = McnSystem::new(&SystemConfig::default(), 2, McnConfig::level(3));
    let peers = vec![
        sys.host_rank_ip(),
        sys.host_rank_ip(),
        sys.dimm_ip(0),
        sys.dimm_ip(1),
    ];
    let size = peers.len();
    let report = MapReduceReport::shared(size);
    let mk = |rank: usize, report: &std::sync::Arc<parking_lot::Mutex<MapReduceReport>>| {
        MapReduceWorker::new(
            MpiRank::new(rank, size, peers.clone(), 42_000),
            SEED,
            WORDS_PER_WORKER,
            (8u64 << 30) + rank as u64 * (256 << 20),
            report.clone(),
        )
    };
    sys.spawn_host(Box::new(mk(0, &report)), 0);
    sys.spawn_host(Box::new(mk(1, &report)), 1);
    sys.spawn_dimm(0, Box::new(mk(2, &report)), 1);
    sys.spawn_dimm(1, Box::new(mk(3, &report)), 1);
    assert!(
        sys.run_until_procs_done(SimTime::from_secs(10)),
        "wordcount stalled at {}",
        sys.now()
    );
    let r = report.lock();
    println!(
        "MCN server (2 host + 2 DIMM workers): {} words mapped, {} distinct reduced",
        size * WORDS_PER_WORKER,
        r.distinct_words
    );
    println!(
        "  completed in {}  — verification: {}",
        r.completion().expect("finished"),
        if r.verified { "PASSED (bit-exact vs ground truth)" } else { "FAILED" }
    );
    assert!(r.verified);
    let t_mcn = r.completion().unwrap();
    drop(r);

    // --- the same job on a 2-node 10GbE cluster --------------------------
    let mut c = EthernetCluster::new(&SystemConfig::default(), 2);
    let peers = vec![
        EthernetCluster::ip_of(0),
        EthernetCluster::ip_of(0),
        EthernetCluster::ip_of(1),
        EthernetCluster::ip_of(1),
    ];
    let report = MapReduceReport::shared(size);
    for rank in 0..size {
        let w = MapReduceWorker::new(
            MpiRank::new(rank, size, peers.clone(), 42_000),
            SEED,
            WORDS_PER_WORKER,
            (8u64 << 30) + (rank as u64 % 2) * (256 << 20),
            report.clone(),
        );
        c.spawn(rank / 2, Box::new(w), rank % 2);
    }
    assert!(c.run_until_procs_done(SimTime::from_secs(10)));
    let r = report.lock();
    assert!(r.verified);
    let t_eth = r.completion().unwrap();
    println!(
        "10GbE cluster (2 nodes x 2 workers):  completed in {t_eth}  ({:.2}x vs MCN)",
        t_eth.as_secs_f64() / t_mcn.as_secs_f64()
    );
    println!("\nIdentical worker code on both systems; results verified on both.");
}
