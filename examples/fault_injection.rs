//! Deterministic fault injection on the MCN data path: run an iperf
//! stream while the SRAM rings drop and corrupt frames, ALERT_N edges go
//! missing and MCN-DMA transfers stall — then read the recovery work off
//! the driver counters.
//!
//! Run with:
//! `cargo run --release --example fault_injection [seed] [drop_rate] [--outage]`
//!
//! The defaults (`seed=7`, `drop_rate=0.01`) finish byte-complete; crank
//! the rate (e.g. `0.9`) to watch the run stall and print the stall
//! report instead. With `--outage`, the DIMM additionally hard-crashes
//! mid-run and reboots 5 ms later — the run still finishes byte-complete
//! and the re-init handshake counters are printed.

use mcn::{ComponentExt, McnConfig, McnSystem, SystemConfig};
use mcn_mpi::{IperfClient, IperfReport, IperfServer};
use mcn_sim::fault::{FaultKind, FaultPlan};
use mcn_sim::{OutageKind, OutagePlan, SimTime};

const BYTES: u64 = 1 << 20;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let outage = if let Some(i) = args.iter().position(|a| a == "--outage") {
        args.remove(i);
        true
    } else {
        false
    };
    let mut args = args.into_iter();
    let seed: u64 = args.next().map_or(7, |a| a.parse().expect("seed"));
    let drop: f64 = args.next().map_or(0.01, |a| a.parse().expect("drop rate"));

    let mut plan = FaultPlan::new(seed);
    for comp in [
        McnSystem::sram_host_fault_component(0, 0),
        McnSystem::sram_dimm_fault_component(0, 0),
    ] {
        plan.rate(&comp, FaultKind::Drop, drop);
        plan.rate(&comp, FaultKind::BitFlip, drop / 2.0);
    }
    plan.rate(&McnSystem::alert_fault_component(0), FaultKind::Drop, 0.25);
    plan.rate(&McnSystem::dma_fault_component(0), FaultKind::Stall, 0.02);

    // Checksums stay on so every ECC escape is caught; conventional MTU so
    // per-frame rates mean what they do on a wire.
    let cfg = McnConfig {
        alert_interrupt: true,
        checksum_bypass: false,
        jumbo_mtu: false,
        tso: false,
        dma: true,
    };
    let mut sys = McnSystem::with_faults(&SystemConfig::default(), 1, cfg, &plan);
    if outage {
        let mut oplan = OutagePlan::new(seed);
        oplan.at(
            &McnSystem::dimm_outage_component(0, 0),
            SimTime::from_ms(1),
            OutageKind::DimmCrash {
                down_for: SimTime::from_ms(5),
            },
        );
        sys.set_outage_plan(&oplan);
    }
    let srv = IperfReport::shared();
    sys.spawn_host(
        Box::new(IperfServer::new(5001, 1, SimTime::ZERO, srv.clone())),
        0,
    );
    let dst = sys.host_rank_ip();
    sys.spawn_dimm(
        0,
        Box::new(IperfClient::new(dst, 5001, BYTES, IperfReport::shared())),
        1,
    );
    println!(
        "iperf DIMM0 -> host, {BYTES} bytes, seed {seed}, drop {drop}{}",
        if outage { ", DIMM crash at 1ms (+5ms down)" } else { "" }
    );
    if !sys.run_until_procs_done(SimTime::from_secs(10)) {
        println!("\n{}", sys.stall_report("fault_injection demo stalled"));
        println!("(expected at high rates: TCP cannot outrun the injector)");
        return;
    }

    let bytes = srv.lock().meter.bytes();
    println!("delivered {bytes} bytes in {} (byte-complete: {})",
        sys.now(), bytes == BYTES);
    let h = &sys.hdrv.stats;
    let d = &sys.dimm(0).stats;
    println!("\ninjected   : host drops {} flips {} | dimm drops {} flips {}",
        h.frames_dropped.get(), h.ecc_escapes.get(),
        d.frames_dropped.get(), d.ecc_escapes.get());
    println!("alert path : dropped {} delayed {} fallback polls {} recoveries {}",
        h.alerts_dropped.get(), h.alerts_delayed.get(),
        h.fallback_polls.get(), h.alert_recoveries.get());
    println!("dma path   : stalls {} retries {} cpu-copy fallbacks {}",
        h.dma_stalls.get(), h.dma_retries.get(), h.dma_fallbacks.get());
    println!("caught     : host cksum drops {} malformed {} | dimm cksum drops {} malformed {}",
        sys.host.stack.stats.drop_checksum.get(), sys.host.stack.stats.malformed.get(),
        sys.dimm(0).node.stack.stats.drop_checksum.get(),
        sys.dimm(0).node.stack.stats.malformed.get());
    if outage {
        println!("\nlifecycle  : crashes {} reboots {} (port up: {})",
            d.crashes.get(), d.reboots.get(), sys.hdrv.port_is_up(0));
        println!("handshake  : port downs {} probes {} (retries {}) ring resets {} mac announces {}",
            h.port_downs.get(), h.probes_sent.get(), h.probe_retries.get(),
            h.ring_resets.get(), h.mac_announces.get());
        println!("             reinits completed {} failed {} stale descriptors dropped {}",
            h.reinits_completed.get(), h.reinit_failures.get(),
            h.stale_desc_dropped.get());
    }
}
