//! Deterministic fault injection on the MCN data path: run an iperf
//! stream while the SRAM rings drop and corrupt frames, ALERT_N edges go
//! missing and MCN-DMA transfers stall — then read the recovery work off
//! the metrics registry.
//!
//! Run with:
//! `cargo run --release --example fault_injection [seed] [drop_rate] [--outage] [--json]`
//!
//! The defaults (`seed=7`, `drop_rate=0.01`) finish byte-complete; crank
//! the rate (e.g. `0.9`) to watch the run stall and print the stall
//! report instead. With `--outage`, the DIMM additionally hard-crashes
//! mid-run and reboots 5 ms later — the run still finishes byte-complete
//! and the re-init handshake counters are printed. With `--json`, the
//! full [`MetricsSnapshot`] of the system (plus the iperf report under
//! `iperf_server.*`) is emitted instead of the human-readable summary.

use mcn::{
    ComponentExt, Instrumented, McnConfig, McnSystem, MetricSink, MetricsSnapshot, SystemConfig,
};
use mcn_mpi::{IperfClient, IperfReport, IperfServer};
use mcn_sim::fault::{FaultKind, FaultPlan};
use mcn_sim::{OutageKind, OutagePlan, SimTime};

const BYTES: u64 = 1 << 20;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut flag = |name: &str| {
        if let Some(i) = args.iter().position(|a| a == name) {
            args.remove(i);
            true
        } else {
            false
        }
    };
    let outage = flag("--outage");
    let json = flag("--json");
    let mut args = args.into_iter();
    let seed: u64 = args.next().map_or(7, |a| a.parse().expect("seed"));
    let drop: f64 = args.next().map_or(0.01, |a| a.parse().expect("drop rate"));

    let mut plan = FaultPlan::new(seed);
    for comp in [
        McnSystem::sram_host_fault_component(0, 0),
        McnSystem::sram_dimm_fault_component(0, 0),
    ] {
        plan.rate(&comp, FaultKind::Drop, drop);
        plan.rate(&comp, FaultKind::BitFlip, drop / 2.0);
    }
    plan.rate(&McnSystem::alert_fault_component(0), FaultKind::Drop, 0.25);
    plan.rate(&McnSystem::dma_fault_component(0), FaultKind::Stall, 0.02);

    // Checksums stay on so every ECC escape is caught; conventional MTU so
    // per-frame rates mean what they do on a wire.
    let cfg = McnConfig {
        alert_interrupt: true,
        checksum_bypass: false,
        jumbo_mtu: false,
        tso: false,
        dma: true,
    };
    let mut sys = McnSystem::with_faults(&SystemConfig::default(), 1, cfg, &plan);
    if outage {
        let mut oplan = OutagePlan::new(seed);
        oplan.at(
            &McnSystem::dimm_outage_component(0, 0),
            SimTime::from_ms(1),
            OutageKind::DimmCrash {
                down_for: SimTime::from_ms(5),
            },
        );
        sys.set_outage_plan(&oplan);
    }
    let srv = IperfReport::shared();
    sys.spawn_host(
        Box::new(IperfServer::new(5001, 1, SimTime::ZERO, srv.clone())),
        0,
    );
    let dst = sys.host_rank_ip();
    sys.spawn_dimm(
        0,
        Box::new(IperfClient::new(dst, 5001, BYTES, IperfReport::shared())),
        1,
    );
    if !json {
        println!(
            "iperf DIMM0 -> host, {BYTES} bytes, seed {seed}, drop {drop}{}",
            if outage { ", DIMM crash at 1ms (+5ms down)" } else { "" }
        );
    }
    if !sys.run_until_procs_done(SimTime::from_secs(10)) {
        if json {
            print!("{}", snapshot(&sys, &srv).to_json());
        } else {
            println!("\n{}", sys.stall_report("fault_injection demo stalled"));
            println!("(expected at high rates: TCP cannot outrun the injector)");
        }
        return;
    }

    let snap = snapshot(&sys, &srv);
    if json {
        print!("{}", snap.to_json());
        return;
    }

    // The human-readable summary reads the same registry the JSON mode
    // dumps — exact paths, so a renamed counter fails here instead of
    // silently printing zero.
    let bytes = snap.get_u64("iperf_server.goodput.bytes");
    println!("delivered {bytes} bytes in {} (byte-complete: {})",
        sys.now(), bytes == BYTES);
    println!("\ninjected   : host drops {} flips {} | dimm drops {} flips {}",
        snap.get_u64("driver.frames_dropped"), snap.get_u64("driver.ecc_escapes"),
        snap.get_u64("dimm0.driver.frames_dropped"), snap.get_u64("dimm0.driver.ecc_escapes"));
    println!("alert path : dropped {} delayed {} fallback polls {} recoveries {}",
        snap.get_u64("driver.alerts_dropped"), snap.get_u64("driver.alerts_delayed"),
        snap.get_u64("driver.fallback_polls"), snap.get_u64("driver.alert_recoveries"));
    println!("dma path   : stalls {} retries {} cpu-copy fallbacks {}",
        snap.get_u64("driver.dma_stalls"), snap.get_u64("driver.dma_retries"),
        snap.get_u64("driver.dma_fallbacks"));
    println!("caught     : host cksum drops {} malformed {} | dimm cksum drops {} malformed {}",
        snap.get_u64("host.stack.drop_checksum"), snap.get_u64("host.stack.malformed"),
        snap.get_u64("dimm0.stack.drop_checksum"),
        snap.get_u64("dimm0.stack.malformed"));
    if outage {
        println!("\nlifecycle  : crashes {} reboots {} (port up: {})",
            snap.get_u64("dimm0.driver.crashes"), snap.get_u64("dimm0.driver.reboots"),
            snap.get_u64("driver.ports_up") == snap.get_u64("driver.ports"));
        println!("handshake  : port downs {} probes {} (retries {}) ring resets {} mac announces {}",
            snap.get_u64("driver.port_downs"), snap.get_u64("driver.probes_sent"),
            snap.get_u64("driver.probe_retries"), snap.get_u64("driver.ring_resets"),
            snap.get_u64("driver.mac_announces"));
        println!("             reinits completed {} failed {} stale descriptors dropped {}",
            snap.get_u64("driver.reinits_completed"), snap.get_u64("driver.reinit_failures"),
            snap.get_u64("driver.stale_desc_dropped"));
    }
}

/// The system's full registry plus the iperf server's report under
/// `iperf_server.*` — one tree feeding both output modes.
fn snapshot(sys: &McnSystem, srv: &std::sync::Arc<parking_lot::Mutex<IperfReport>>) -> MetricsSnapshot {
    let mut sink = MetricSink::new();
    sys.metrics(&mut sink);
    sink.absorb("iperf_server", &*srv.lock());
    sink.finish()
}
