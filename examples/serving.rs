//! Serving quickstart: a memcached-style KV server on an MCN DIMM under
//! an open-loop client fleet, with the overload machinery visible.
//!
//! Three acts:
//!
//! 1. **Comfortable load** — three clients, heavy-tailed arrivals and
//!    skewed keys, against a default-budget server: everything is
//!    answered, latency percentiles come from the shared `ServeReport`.
//! 2. **Overload** — the same fleet against a server with a tiny
//!    in-flight budget: excess requests are shed with `B\n` (counted
//!    server-side as `shed_requests`, observed client-side as `busy`)
//!    instead of queueing without bound, and the fleet still finishes.
//! 3. **Domain crash** — a replicated tier (R=2 across two DIMM-riser
//!    failure domains) loses a whole riser mid-run: resilient clients
//!    fail over, hedge, and spend retry budget; every request is
//!    answered or loudly abandoned, never silently lost.
//!
//! Run with: `cargo run --release --example serving`

use mcn::{ComponentExt, McnConfig, McnRack, McnSystem, MetricsSnapshot, SystemConfig};
use mcn_serve::{
    Backend, KvClient, KvClientConfig, KvServer, KvServerConfig, ReplicaMap,
    ResilientClientConfig, ResilientKvClient, ServeReport,
};
use mcn_sim::{OutageKind, OutagePlan, SimTime};

/// Builds a 1-DIMM system with a KV server on the DIMM and `n` clients
/// on host cores, then runs it for `sim_ms` simulated milliseconds.
fn run_fleet(
    server: KvServerConfig,
    n: u64,
    gap: SimTime,
    pipeline: usize,
    sim_ms: u64,
) -> (McnSystem, ServeReportSnapshot) {
    let report = ServeReport::shared(SimTime::from_us(200));
    let mut sys = McnSystem::new(&SystemConfig::default(), 1, McnConfig::level(3));
    let dimm = sys.dimm_ip(0);
    sys.spawn_dimm(0, Box::new(KvServer::new(server, report.clone())), 0);
    for i in 0..n {
        sys.spawn_host(
            Box::new(KvClient::new(
                KvClientConfig {
                    server: dimm,
                    seed: 0xFEED + i,
                    n_requests: 200,
                    mean_gap: gap,
                    set_pct: 20,
                    pipeline,
                    ..KvClientConfig::default()
                },
                report.clone(),
            )),
            (i % 2) as usize,
        );
    }
    sys.run_until(SimTime::from_ms(sim_ms));
    let snap = {
        let r = report.lock();
        ServeReportSnapshot {
            answered: r.latency.count(),
            ok: r.ok,
            miss: r.miss,
            busy: r.busy,
            shed_requests: r.shed_requests,
            completed_clients: r.completed_clients,
            p50: r.latency.percentile(50.0).unwrap_or(SimTime::ZERO),
            p99: r.latency.percentile(99.0).unwrap_or(SimTime::ZERO),
        }
    };
    (sys, snap)
}

/// The handful of report fields the demo prints.
struct ServeReportSnapshot {
    answered: u64,
    ok: u64,
    miss: u64,
    busy: u64,
    shed_requests: u64,
    completed_clients: u64,
    p50: SimTime,
    p99: SimTime,
}

fn print_report(tag: &str, r: &ServeReportSnapshot) {
    println!("{tag}:");
    println!("  answered {} (ok {}, miss {}, busy {})", r.answered, r.ok, r.miss, r.busy);
    println!("  latency p50 {} / p99 {}", r.p50, r.p99);
    println!("  clients finished: {}", r.completed_clients);
}

fn main() {
    // --- Act 1: comfortable load ---------------------------------------
    let (_, easy) = run_fleet(KvServerConfig::default(), 3, SimTime::from_us(25), 4, 40);
    print_report("default budgets, 3 clients x 200 requests", &easy);
    assert_eq!(easy.busy, 0, "no shedding expected at this load");

    // --- Act 2: overload ------------------------------------------------
    let tight = KvServerConfig {
        inflight_budget: 2,
        max_conns: 2,
        accept_backlog: 2,
        ..KvServerConfig::default()
    };
    let (sys, hard) = run_fleet(tight, 6, SimTime::from_us(5), 16, 60);
    print_report("\ntight budgets (2 conns, 2 in flight), 6 clients", &hard);
    println!("  requests shed with B\\n: {}", hard.shed_requests);

    // Every admission decision is a counter in the registry.
    let snap = MetricsSnapshot::collect(&sys);
    for leaf in ["syn_drops", "accept_overflows", "accept_prunes"] {
        println!(
            "  dimm0.stack.tcp.{leaf} = {}",
            snap.get_u64(&format!("dimm0.stack.tcp.{leaf}"))
        );
    }
    assert!(hard.busy > 0, "overload must shed");
    assert_eq!(hard.completed_clients, 6, "shedding must not strand clients");

    // --- Act 3: a failure domain dies mid-benchmark ---------------------
    // 2 servers x 2 DIMMs; each server's DIMM riser is one failure
    // domain. Every key range is replicated across both risers, so when
    // riser0 (both DIMMs of server 0) crashes at 2 ms, every key still
    // has a live replica — the resilient fleet rides it out.
    let report = ServeReport::shared(SimTime::from_us(200));
    report
        .lock()
        .set_fault_window(SimTime::from_ms(2), SimTime::from_ms(7));
    let mut rack = McnRack::new(&SystemConfig::default(), 2, 2, McnConfig::level(3));
    let mut plan = OutagePlan::new(0xACE);
    for s in 0..2 {
        plan.define_domain(
            &format!("riser{s}"),
            &[
                &McnRack::dimm_outage_component(s, 0),
                &McnRack::dimm_outage_component(s, 1),
            ],
        );
    }
    plan.at(
        "riser0",
        SimTime::from_ms(2),
        OutageKind::DomainDown {
            down_for: SimTime::from_ms(5),
        },
    );
    rack.set_outage_plan(&plan);

    let mut backends = Vec::new();
    for s in 0..2 {
        for d in 0..2 {
            rack.spawn_dimm(
                s,
                d,
                Box::new(KvServer::new(KvServerConfig::default(), report.clone())),
                0,
            );
            backends.push(Backend {
                addr: rack.server(s).dimm_ip(d),
                port: 11211,
                domain: format!("riser{s}"),
                rack: 0,
            });
        }
    }
    let map = ReplicaMap::new(backends, 8, 2).expect("placement");
    for s in 0..2 {
        for c in 0..2u64 {
            let i = s as u64 * 2 + c;
            let mut cfg = ResilientClientConfig::new(map.clone());
            cfg.seed = 0xCAFE + i;
            cfg.n_requests = 150;
            cfg.mean_gap = SimTime::from_us(40);
            cfg.set_pct = 20;
            cfg.retry_budget = 32;
            cfg.retry_earn_tenths = 5;
            if i % 2 == 1 {
                cfg.hedge_delay = None; // half the fleet: timeout failover only
            }
            rack.spawn_host(
                s,
                Box::new(ResilientKvClient::new(cfg, report.clone())),
                (c % 2) as usize,
            );
        }
    }
    rack.run_parallel(SimTime::from_ms(40), 2);

    let r = report.lock();
    println!("\nreplicated tier, riser0 domain crash at 2 ms for 5 ms:");
    println!(
        "  issued {} = answered {} + gave_up {} (nothing silent)",
        r.issued,
        r.latency.count(),
        r.gave_up
    );
    println!(
        "  fault window: {}/{} answered (availability {:.3})",
        r.fault_answered,
        r.fault_issued,
        r.fault_availability()
    );
    println!(
        "  recovery: {} failovers, {} hedges launched ({} won), \
         {} retry tokens spent ({} refused), {} breaker opens ({} probes)",
        r.failovers,
        r.hedges_launched,
        r.hedges_won,
        r.retry_budget_spent,
        r.retry_budget_exhausted,
        r.breaker_opens,
        r.breaker_half_open_probes
    );
    println!("  latency histogram (scheduled arrival -> answer):");
    for (tag, p) in [("p50", 50.0), ("p90", 90.0), ("p99", 99.0), ("p99.9", 99.9)] {
        println!(
            "    {tag:>5}  {}",
            r.latency.percentile(p).unwrap_or(SimTime::ZERO)
        );
    }
    println!(
        "    {:>5}  {}",
        "max",
        r.latency.max().unwrap_or(SimTime::ZERO)
    );
    println!(
        "    in-window p99 {} vs steady p99 {}",
        r.fault_latency.percentile(99.0).unwrap_or(SimTime::ZERO),
        r.steady_latency.percentile(99.0).unwrap_or(SimTime::ZERO)
    );
    let snap = MetricsSnapshot::collect(&rack);
    println!(
        "  domain counters: riser0 crashes={} heals={}",
        snap.get_u64("rack.outage.domain.riser0.crashes"),
        snap.get_u64("rack.outage.domain.riser0.heals")
    );
    assert_eq!(r.issued, r.latency.count() + r.gave_up, "silent loss");
    assert!(r.failovers > 0, "the crash must have engaged failover");
    assert_eq!(r.completed_clients, 4, "the resilient fleet must drain");
}
