//! Serving quickstart: a memcached-style KV server on an MCN DIMM under
//! an open-loop client fleet, with the overload machinery visible.
//!
//! Two acts:
//!
//! 1. **Comfortable load** — three clients, heavy-tailed arrivals and
//!    skewed keys, against a default-budget server: everything is
//!    answered, latency percentiles come from the shared `ServeReport`.
//! 2. **Overload** — the same fleet against a server with a tiny
//!    in-flight budget: excess requests are shed with `B\n` (counted
//!    server-side as `shed_requests`, observed client-side as `busy`)
//!    instead of queueing without bound, and the fleet still finishes.
//!
//! Run with: `cargo run --release --example serving`

use mcn::{ComponentExt, McnConfig, McnSystem, MetricsSnapshot, SystemConfig};
use mcn_serve::{KvClient, KvClientConfig, KvServer, KvServerConfig, ServeReport};
use mcn_sim::SimTime;

/// Builds a 1-DIMM system with a KV server on the DIMM and `n` clients
/// on host cores, then runs it for `sim_ms` simulated milliseconds.
fn run_fleet(
    server: KvServerConfig,
    n: u64,
    gap: SimTime,
    pipeline: usize,
    sim_ms: u64,
) -> (McnSystem, ServeReportSnapshot) {
    let report = ServeReport::shared(SimTime::from_us(200));
    let mut sys = McnSystem::new(&SystemConfig::default(), 1, McnConfig::level(3));
    let dimm = sys.dimm_ip(0);
    sys.spawn_dimm(0, Box::new(KvServer::new(server, report.clone())), 0);
    for i in 0..n {
        sys.spawn_host(
            Box::new(KvClient::new(
                KvClientConfig {
                    server: dimm,
                    seed: 0xFEED + i,
                    n_requests: 200,
                    mean_gap: gap,
                    set_pct: 20,
                    pipeline,
                    ..KvClientConfig::default()
                },
                report.clone(),
            )),
            (i % 2) as usize,
        );
    }
    sys.run_until(SimTime::from_ms(sim_ms));
    let snap = {
        let r = report.lock();
        ServeReportSnapshot {
            answered: r.latency.count(),
            ok: r.ok,
            miss: r.miss,
            busy: r.busy,
            shed_requests: r.shed_requests,
            completed_clients: r.completed_clients,
            p50: r.latency.percentile(50.0).unwrap_or(SimTime::ZERO),
            p99: r.latency.percentile(99.0).unwrap_or(SimTime::ZERO),
        }
    };
    (sys, snap)
}

/// The handful of report fields the demo prints.
struct ServeReportSnapshot {
    answered: u64,
    ok: u64,
    miss: u64,
    busy: u64,
    shed_requests: u64,
    completed_clients: u64,
    p50: SimTime,
    p99: SimTime,
}

fn print_report(tag: &str, r: &ServeReportSnapshot) {
    println!("{tag}:");
    println!("  answered {} (ok {}, miss {}, busy {})", r.answered, r.ok, r.miss, r.busy);
    println!("  latency p50 {} / p99 {}", r.p50, r.p99);
    println!("  clients finished: {}", r.completed_clients);
}

fn main() {
    // --- Act 1: comfortable load ---------------------------------------
    let (_, easy) = run_fleet(KvServerConfig::default(), 3, SimTime::from_us(25), 4, 40);
    print_report("default budgets, 3 clients x 200 requests", &easy);
    assert_eq!(easy.busy, 0, "no shedding expected at this load");

    // --- Act 2: overload ------------------------------------------------
    let tight = KvServerConfig {
        inflight_budget: 2,
        max_conns: 2,
        accept_backlog: 2,
        ..KvServerConfig::default()
    };
    let (sys, hard) = run_fleet(tight, 6, SimTime::from_us(5), 16, 60);
    print_report("\ntight budgets (2 conns, 2 in flight), 6 clients", &hard);
    println!("  requests shed with B\\n: {}", hard.shed_requests);

    // Every admission decision is a counter in the registry.
    let snap = MetricsSnapshot::collect(&sys);
    for leaf in ["syn_drops", "accept_overflows", "accept_prunes"] {
        println!(
            "  dimm0.stack.tcp.{leaf} = {}",
            snap.get_u64(&format!("dimm0.stack.tcp.{leaf}"))
        );
    }
    assert!(hard.busy > 0, "overload must shed");
    assert_eq!(hard.completed_clients, 6, "shedding must not strand clients");
}
