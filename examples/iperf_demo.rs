//! iperf over the memory channel vs 10GbE — a miniature of Fig. 8(a).
//!
//! Two clients stream 4 MiB each into one server, with identical
//! application code on three different "wires": a 3-node 10GbE
//! `EthernetCluster` (the paper's baseline, wire-limited at ~10 Gbps),
//! then a 2-DIMM `McnSystem` at optimisation levels mcn0 (unoptimised),
//! mcn3 (+ALERT_N, checksum bypass, 9 KB MTU) and mcn5 (+TSO, MCN-DMA)
//! — Table I's ladder. The printout shows each MCN level's bandwidth as
//! a multiple of the 10GbE run, the paper's Fig. 8(a) normalisation.
//! The full figure (1 server + 4 clients, every level, host↔MCN and
//! MCN↔MCN) is `cargo run --release -p mcn-bench --bin fig8a`.
//!
//! Run with: `cargo run --release --example iperf_demo`

use mcn::{ComponentExt, EthernetCluster, McnConfig, McnSystem, SystemConfig};
use mcn_mpi::{IperfClient, IperfReport, IperfServer};
use mcn_sim::SimTime;

const BYTES: u64 = 4 << 20;

fn over_mcn(level: u32) -> f64 {
    let mut sys = McnSystem::new(&SystemConfig::default(), 2, McnConfig::level(level));
    let srv = IperfReport::shared();
    sys.spawn_host(
        Box::new(IperfServer::new(5001, 2, SimTime::from_ms(1), srv.clone())),
        0,
    );
    let dst = sys.host_rank_ip();
    for d in 0..2 {
        sys.spawn_dimm(
            d,
            Box::new(IperfClient::new(dst, 5001, BYTES, IperfReport::shared())),
            1,
        );
    }
    assert!(sys.run_until_procs_done(SimTime::from_secs(5)));
    let g = srv.lock().meter.gbps();
    g
}

fn over_10gbe() -> f64 {
    let mut c = EthernetCluster::new(&SystemConfig::default(), 3);
    let srv = IperfReport::shared();
    c.spawn(
        0,
        Box::new(IperfServer::new(5001, 2, SimTime::from_ms(1), srv.clone())),
        0,
    );
    for i in 1..=2 {
        c.spawn(
            i,
            Box::new(IperfClient::new(
                EthernetCluster::ip_of(0),
                5001,
                BYTES,
                IperfReport::shared(),
            )),
            1,
        );
    }
    assert!(c.run_until_procs_done(SimTime::from_secs(5)));
    let g = srv.lock().meter.gbps();
    g
}

fn main() {
    println!("iperf, 2 clients -> 1 server, {} MB per client:\n", BYTES >> 20);
    let eth = over_10gbe();
    println!("10GbE cluster:        {eth:>6.2} Gbps   (wire-limited)");
    for level in [0u32, 3, 5] {
        let g = over_mcn(level);
        println!(
            "MCN server at mcn{level}:  {g:>6.2} Gbps   ({:.2}x of 10GbE)",
            g / eth
        );
    }
    println!("\nSame iperf code everywhere; only the 'wire' changed.");
}
