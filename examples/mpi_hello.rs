//! MPI "Hello World" across host and MCN DIMMs — the analogue of the
//! paper's Fig. 12 proof-of-concept demo (OpenMPI on a POWER8 host plus a
//! NIOS II MCN DIMM). The point, as in the paper, is *application
//! transparency*: the same unmodified rank program runs on the host and on
//! the DIMMs, which are ordinary TCP peers from its point of view.
//!
//! Run with: `cargo run --release --example mpi_hello`

use std::sync::Arc;

use mcn::{ComponentExt, McnConfig, McnSystem, SystemConfig};
use mcn_mpi::MpiRank;
use mcn_node::{Poll, ProcCtx, Process};
use mcn_sim::SimTime;
use parking_lot::Mutex;

/// Every rank sends a greeting to rank 0; rank 0 prints them (like
/// `mpirun -np N ./hello`).
struct Hello {
    mpi: MpiRank,
    where_am_i: &'static str,
    sent: bool,
    received: usize,
    log: Arc<Mutex<Vec<String>>>,
}

impl Process for Hello {
    fn poll(&mut self, ctx: &mut ProcCtx<'_>) -> Poll {
        self.mpi.progress(ctx);
        if !self.sent {
            let msg = format!(
                "Hello world from rank {} of {} (running on the {})",
                self.mpi.rank(),
                self.mpi.size(),
                self.where_am_i
            );
            self.mpi.isend(ctx, 0, 1, msg.as_bytes());
            self.sent = true;
        }
        if self.mpi.rank() == 0 {
            while let Some((_, payload)) = self.mpi.try_recv(None, 1) {
                self.log
                    .lock()
                    .push(String::from_utf8_lossy(&payload).into_owned());
                self.received += 1;
            }
            if self.received < self.mpi.size() {
                return Poll::Wait(self.mpi.wakes());
            }
        }
        if !self.mpi.flushed() {
            return Poll::Wait(self.mpi.wakes());
        }
        Poll::Done
    }

    fn name(&self) -> &str {
        "mpi-hello"
    }
}

fn main() {
    let mut sys = McnSystem::new(&SystemConfig::default(), 2, McnConfig::level(1));
    let size = 3; // rank 0 on the host, ranks 1-2 on the DIMMs
    let peers = vec![sys.host_rank_ip(), sys.dimm_ip(0), sys.dimm_ip(1)];
    let log = Arc::new(Mutex::new(Vec::new()));

    let mk = |rank: usize, place: &'static str, log: &Arc<Mutex<Vec<String>>>| Hello {
        mpi: MpiRank::new(rank, size, peers.clone(), 40000),
        where_am_i: place,
        sent: false,
        received: 0,
        log: log.clone(),
    };
    sys.spawn_host(Box::new(mk(0, "host processor", &log)), 0);
    sys.spawn_dimm(0, Box::new(mk(1, "MCN processor of DIMM 0", &log)), 1);
    sys.spawn_dimm(1, Box::new(mk(2, "MCN processor of DIMM 1", &log)), 1);

    assert!(
        sys.run_until_procs_done(SimTime::from_ms(100)),
        "hello world stalled at {}",
        sys.now()
    );

    println!("$ mpirun -np {size} ./hello   # host + 2 MCN DIMMs");
    for line in log.lock().iter() {
        println!("{line}");
    }
    println!();
    // The tcpdump-flavoured epilogue of Fig. 12: what actually crossed the
    // memory channels.
    println!("--- memory-channel traffic (the 'tcpdump' view) ---");
    println!(
        "host driver: {} frames written to DIMM RX rings, {} read from TX rings",
        sys.hdrv.stats.tx_frames.get(),
        sys.hdrv.stats.rx_frames.get()
    );
    for d in 0..sys.dimms() {
        let st = &sys.dimm(d).stats;
        println!(
            "DIMM {d}: {} frames sent, {} received, {} interface IRQs",
            st.tx_frames.get(),
            st.rx_frames.get(),
            st.irqs.get()
        );
    }
    println!(
        "completed at t={} — no application code knew it was running in a DIMM",
        sys.now()
    );
}
