//! Quickstart: build an MCN-enabled server, move real bytes across the
//! memory channel, and look at the driver statistics.
//!
//! Three acts, mirroring the paper's data path end to end:
//!
//! 1. **UDP host → DIMM** — a datagram leaves the host stack, is chunked
//!    into the DIMM's SRAM RX ring by the host driver (`memcpy_to_mcn`),
//!    and surfaces in the MCN node's stack (forwarding case F2).
//! 2. **TCP DIMM → DIMM** — a byte-exact stream between two MCN nodes,
//!    relayed through the host's forwarding engine (case F3); the ACKs
//!    ride the same rings back.
//! 3. **Statistics** — the driver's frame/forward/ALERT_N counters and
//!    the DDR4 channels' SRAM-vs-DRAM transaction mix, read straight off
//!    the structs. (For the full tree of every counter in the system as
//!    stable dotted paths, see `mcn::MetricsSnapshot` and the
//!    `fault_injection` example's `--json` mode.)
//!
//! Run with: `cargo run --release --example quickstart`

use bytes::Bytes;
use mcn::{ComponentExt, McnConfig, McnSystem, SystemConfig};
use mcn_sim::SimTime;

fn main() {
    // A server with two MCN DIMMs at optimisation level mcn1
    // (ALERT_N interrupts instead of HR-timer polling).
    let mut sys = McnSystem::new(&SystemConfig::default(), 2, McnConfig::level(1));
    println!("built an MCN server with {} DIMMs ({})", sys.dimms(), sys.config());
    println!("  host-side interface 0: {}", McnSystem::host_if_ip(0));
    println!("  DIMM 0 (MCN node):     {}", sys.dimm_ip(0));

    // --- UDP host → DIMM ------------------------------------------------
    let us = sys.host.stack.udp_bind(5000).expect("bind");
    let ud = sys.dimm_mut(0).node.stack.udp_bind(6000).expect("bind");
    let dimm_ip = sys.dimm_ip(0);
    sys.host
        .stack
        .udp_send(us, dimm_ip, 6000, Bytes::from(vec![42u8; 1200]), sys.now())
        .expect("send");
    sys.run_until(SimTime::from_us(100));
    let (from, port, data) = sys
        .dimm_mut(0)
        .node
        .stack
        .udp_recv(ud)
        .expect("datagram crossed the memory channel");
    println!(
        "\nUDP: DIMM 0 received {} bytes from {}:{} at t={}",
        data.len(),
        from,
        port,
        sys.now()
    );

    // --- TCP DIMM → DIMM (through the host forwarding engine, F3) -------
    let lst = sys.dimm_mut(1).node.stack.tcp_listen(7777).expect("listen");
    let dimm1_ip = sys.dimm_ip(1);
    let cs = sys
        .dimm_mut(0)
        .node
        .stack
        .tcp_connect(dimm1_ip, 7777, SimTime::ZERO)
        .expect("connect");
    sys.run_until(sys.now() + SimTime::from_ms(1));
    let ss = sys.dimm_mut(1).node.stack.tcp_accept(lst).expect("accept");

    let message = b"memory channel network says hello".repeat(100);
    let mut sent = 0;
    let mut got = Vec::new();
    let mut buf = vec![0u8; 16384];
    while got.len() < message.len() {
        let now = sys.now();
        if sent < message.len() {
            sent += sys
                .dimm_mut(0)
                .node
                .stack
                .tcp_send(cs, &message[sent..], now)
                .expect("send");
        }
        sys.run_until(sys.now() + SimTime::from_us(50));
        loop {
            let now = sys.now();
            let n = sys
                .dimm_mut(1)
                .node
                .stack
                .tcp_recv(ss, &mut buf, now)
                .expect("recv");
            if n == 0 {
                break;
            }
            got.extend_from_slice(&buf[..n]);
        }
    }
    assert_eq!(got, message, "byte-exact delivery");
    println!(
        "TCP: moved {} bytes DIMM0 → host (F3 forward) → DIMM1 by t={}",
        got.len(),
        sys.now()
    );

    // --- statistics ------------------------------------------------------
    println!("\nhost-side driver:");
    println!("  frames into DIMM RX rings: {}", sys.hdrv.stats.tx_frames.get());
    println!("  frames out of TX rings:    {}", sys.hdrv.stats.rx_frames.get());
    println!("  F1 host deliveries:        {}", sys.hdrv.stats.f1_host.get());
    println!("  F3 dimm-to-dimm forwards:  {}", sys.hdrv.stats.f3_forward.get());
    println!("  ALERT_N interrupts:        {}", sys.hdrv.stats.alerts.get());
    for ch in sys.host.mem.channels() {
        println!(
            "  host channel: {} SRAM transactions, {} DRAM reads, {} writes",
            ch.stats().sram_ops.get(),
            ch.stats().reads.get(),
            ch.stats().writes.get()
        );
    }
}
