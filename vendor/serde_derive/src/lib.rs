//! No-op `Serialize`/`Deserialize` derives for the offline serde stub.
//!
//! The workspace never serializes anything; the derives exist so struct
//! definitions carrying `#[derive(Serialize, Deserialize)]` compile
//! without the crates.io registry.

use proc_macro::TokenStream;

/// Emits nothing: types merely carry the derive as a marker.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Emits nothing: types merely carry the derive as a marker.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
