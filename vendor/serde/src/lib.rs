//! Offline stand-in for the `serde` facade.
//!
//! The workspace uses serde only as `#[derive(Serialize, Deserialize)]`
//! markers on config structs — nothing serializes at runtime and no
//! `#[serde(...)]` attributes are used. This crate provides importable
//! trait names plus the no-op derive macros from the sibling
//! `serde_derive` stub so the workspace builds hermetically without a
//! crates.io registry (see `vendor/README.md`).

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

/// Marker trait standing in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}

/// Namespace parity with the real crate (`serde::de`).
pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}

/// Namespace parity with the real crate (`serde::ser`).
pub mod ser {
    pub use crate::Serialize;
}
