//! Offline stand-in for `criterion`.
//!
//! Provides the macro/type surface `benches/` uses (`criterion_group!`,
//! `criterion_main!`, `Criterion`, benchmark groups, `Throughput`,
//! `BatchSize`, `iter`/`iter_batched`) backed by a simple wall-clock
//! timer: each benchmark runs a short warm-up then a fixed measurement
//! batch and prints mean ns/iteration. No statistics, plots or saved
//! baselines — enough to smoke-run the benches offline.

use std::time::Instant;

/// How batched inputs are grouped between setup calls.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small inputs: many per setup.
    SmallInput,
    /// Large inputs: few per setup.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Declared throughput of one iteration, used to report rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iteration processes this many bytes.
    Bytes(u64),
    /// Iteration processes this many logical elements.
    Elements(u64),
}

/// Passed to benchmark closures; runs and times the routine.
pub struct Bencher {
    iters: u64,
    elapsed_ns: u128,
}

impl Bencher {
    /// Times `routine` over the measurement batch.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed_ns = start.elapsed().as_nanos();
    }

    /// Times `routine` with per-batch `setup` excluded from the timing.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = 0u128;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed().as_nanos();
        }
        self.elapsed_ns = total;
    }
}

/// A named group of benchmarks sharing a throughput declaration.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Declares per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Sets the target sample count (accepted for API parity; the stub's
    /// fixed two-pass measurement ignores it).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        // Warm-up pass, then the measured batch.
        let mut b = Bencher {
            iters: 3,
            elapsed_ns: 0,
        };
        f(&mut b);
        let iters = 20u64;
        let mut b = Bencher {
            iters,
            elapsed_ns: 0,
        };
        f(&mut b);
        let per_iter_ns = b.elapsed_ns as f64 / iters as f64;
        let rate = match self.throughput {
            Some(Throughput::Bytes(n)) => {
                format!(" ({:.1} MiB/s)", n as f64 / per_iter_ns * 1e9 / (1 << 20) as f64)
            }
            Some(Throughput::Elements(n)) => {
                format!(" ({:.0} elem/s)", n as f64 / per_iter_ns * 1e9)
            }
            None => String::new(),
        };
        println!("{}/{id}: {per_iter_ns:.0} ns/iter{rate}", self.name);
        self
    }

    /// Ends the group (no-op; parity with the real API).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion;

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
