//! Offline stand-in for the `bytes` crate.
//!
//! Implements the subset the workspace uses: an immutable, cheaply
//! cloneable, sliceable byte buffer with the same constructor and
//! comparison surface as `bytes::Bytes`. Backed by `Arc<[u8]>` plus a
//! window, so `clone()` and `slice()` are O(1) exactly like the real
//! crate (packet payloads are cloned on every hop in the simulator).

use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, immutable slice of bytes.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Self {
        Bytes::from_vec(Vec::new())
    }

    /// Wraps a static byte slice (copied once; the real crate borrows, but
    /// the observable behaviour is identical).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::copy_from_slice(bytes)
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        let data: Arc<[u8]> = Arc::from(data);
        Bytes {
            start: 0,
            end: data.len(),
            data,
        }
    }

    fn from_vec(v: Vec<u8>) -> Self {
        let data: Arc<[u8]> = Arc::from(v.into_boxed_slice());
        Bytes {
            start: 0,
            end: data.len(),
            data,
        }
    }

    /// Number of bytes in the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True if the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a sub-view sharing the same backing storage (O(1)).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or inverted.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(begin <= end && end <= len, "slice out of range");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + begin,
            end: self.start + end,
        }
    }

    /// Splits off and returns the first `at` bytes, leaving the rest.
    ///
    /// # Panics
    ///
    /// Panics if `at > len`.
    pub fn split_to(&mut self, at: usize) -> Self {
        let head = self.slice(..at);
        self.start += at;
        head
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes::from_vec(v)
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::copy_from_slice(s)
    }
}

impl<const N: usize> From<&'static [u8; N]> for Bytes {
    fn from(s: &'static [u8; N]) -> Self {
        Bytes::copy_from_slice(s)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from_vec(s.into_bytes())
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(b: Bytes) -> Self {
        b.to_vec()
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter().take(32) {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        if self.len() > 32 {
            write!(f, "..{} bytes", self.len())?;
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self[..] == *other
    }
}
impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self[..] == other[..]
    }
}
impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self[..] == **other
    }
}
impl<const N: usize> PartialEq<&[u8; N]> for Bytes {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self[..] == other[..]
    }
}
impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other[..]
    }
}
impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        *self == other[..]
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self[..].hash(state);
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    // The owned iterator genuinely needs the copy: the window borrows from
    // the shared Arc, so there is no owned buffer to move out of.
    #[allow(clippy::unnecessary_to_owned)]
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        Bytes::from_vec(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_shares_storage_and_compares() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(s, vec![2u8, 3, 4]);
        assert_eq!(s.len(), 3);
        let c = s.clone();
        assert_eq!(c, s);
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn split_to_advances_view() {
        let mut b = Bytes::from(vec![9u8, 8, 7, 6]);
        let head = b.split_to(2);
        assert_eq!(head, vec![9u8, 8]);
        assert_eq!(b, vec![7u8, 6]);
    }
}
