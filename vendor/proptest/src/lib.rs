//! Offline stand-in for `proptest`.
//!
//! Implements the subset the workspace's property tests use as a
//! deterministic random-sampling runner: the `proptest!` macro, range /
//! `any` / tuple / `prop::collection::vec` / `prop::option::of` /
//! `prop::bool::ANY` strategies, `.prop_map`, and the `prop_assert*`
//! macros. Differences from the real crate, chosen deliberately for a
//! hermetic offline build:
//!
//! - **No shrinking.** A failing case reports its inputs (via the
//!   assertion message) and the case index, but is not minimized.
//! - **Fixed seeding.** Case `i` of test `f` derives its RNG from
//!   `hash(name(f)) ⊕ splitmix(i)`, so runs are bit-reproducible across
//!   machines — which the determinism-sensitive simulator tests rely on.
//! - Default case count is 64 (the real crate's 256 is slower than these
//!   simulation-heavy tests want under `opt-level = 2`).

/// Error carried out of a failing property body by `prop_assert!`.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Builds a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Runner configuration (case count only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

pub mod test_runner {
    //! Deterministic RNG driving case generation.

    /// splitmix64 step.
    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Per-case deterministic RNG (splitmix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for case `case` of the test named `name`.
        pub fn for_case(name: &str, case: u32) -> Self {
            // FNV-1a over the test name decorrelates sibling tests.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h = (h ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3);
            }
            let mut state = h ^ u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            // Warm up so low-entropy inputs decorrelate.
            splitmix(&mut state);
            TestRng { state }
        }

        /// Next raw 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            splitmix(&mut self.state)
        }

        /// Uniform value in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            // Multiply-shift; bias is irrelevant for test sampling.
            ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
        }

        /// Uniform f64 in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Fair coin.
        pub fn coin(&mut self) -> bool {
            self.next_u64() & 1 == 1
        }
    }
}

use test_runner::TestRng;

/// A generator of test-case values (sampling only; no shrink tree).
pub trait Strategy {
    /// The value type produced.
    type Value;

    /// Samples one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span) as $t
            }
        }
    )*};
}
int_range_strategies!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategies {
    ($($t:ty : $u:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                lo.wrapping_add(rng.below(span.wrapping_add(1).max(1)) as $t)
            }
        }
    )*};
}
signed_range_strategies!(i8: u8, i16: u16, i32: u32, i64: u64, isize: usize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        // Sampling [lo, hi] vs [lo, hi) is indistinguishable for tests.
        self.start() + rng.unit_f64() * (self.end() - self.start())
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary {
    /// Samples an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.coin()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut TestRng) -> [u8; N] {
        let mut out = [0u8; N];
        for b in &mut out {
            *b = rng.next_u64() as u8;
        }
        out
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (`any::<u8>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Strategy producing a constant value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! tuple_strategies {
    ($(($($s:ident $i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategies! {
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8, J 9)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8, J 9, K 10)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8, J 9, K 10, L 11)
}

pub mod strategy {
    //! Namespace parity with the real crate.
    pub use crate::{Just, Map, Strategy};
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max_exclusive: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.max_exclusive - self.min).max(1) as u64;
            let len = self.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `vec(element, len_range)`: vectors with a sampled length.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy {
            element,
            min: len.start,
            max_exclusive: len.end,
        }
    }
}

pub mod option {
    //! Option strategies.

    use super::{Strategy, TestRng};

    /// Strategy for `Option<S::Value>` (50% `Some`).
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            rng.coin().then(|| self.0.generate(rng))
        }
    }

    /// `of(element)`: half `None`, half `Some(sample)`.
    pub fn of<S: Strategy>(element: S) -> OptionStrategy<S> {
        OptionStrategy(element)
    }
}

pub mod bool {
    //! Bool strategies.

    use super::{Strategy, TestRng};

    /// The strategy type of [`ANY`].
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.coin()
        }
    }

    /// Uniformly random booleans.
    pub const ANY: AnyBool = AnyBool;
}

pub mod prop {
    //! The `prop::` namespace (`prop::collection::vec`, `prop::bool::ANY`,
    //! `prop::option::of`).
    pub use crate::bool;
    pub use crate::collection;
    pub use crate::option;
}

pub mod prelude {
    //! Everything the property tests import.
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// item becomes a `#[test]` running `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    (@impl ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                for case in 0..cfg.cases {
                    let mut __rng =
                        $crate::test_runner::TestRng::for_case(stringify!($name), case);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    let result: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = result {
                        panic!("proptest case {case}/{} failed: {e}", cfg.cases);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// `assert!` that fails the current proptest case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` that fails the current proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `left == right`\n  left: `{l:?}`\n right: `{r:?}`"
                    )));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `left == right` ({})\n  left: `{l:?}`\n right: `{r:?}`",
                        format!($($fmt)+)
                    )));
                }
            }
        }
    };
}

/// `assert_ne!` that fails the current proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l == *r {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `left != right`\n  both: `{l:?}`"
                    )));
                }
            }
        }
    };
}

/// Skips the rest of the case when the assumption fails (counted as a
/// pass; the stub does not re-draw).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn determinism_same_name_same_stream() {
        let mut a = crate::test_runner::TestRng::for_case("x", 3);
        let mut b = crate::test_runner::TestRng::for_case("x", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_runner::TestRng::for_case("y", 3);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Ranges stay in bounds; tuples, vec, option and map compose.
        #[test]
        fn strategies_compose(
            x in 3u64..10,
            y in 0.0f64..=1.0,
            v in prop::collection::vec(any::<u8>(), 2..5),
            o in prop::option::of(1u16..4),
            b in prop::bool::ANY,
            (p, q) in (0u32..4, 10usize..=12),
            m in (0u8..4).prop_map(|n| n * 2),
        ) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.0..=1.0).contains(&y));
            prop_assert!(v.len() >= 2 && v.len() < 5);
            if let Some(i) = o { prop_assert!((1..4).contains(&i)); }
            let _ = b;
            prop_assert!(p < 4 && (10..=12).contains(&q));
            prop_assert!(m % 2 == 0 && m <= 6);
        }
    }
}
