//! Determinism contract of the quantum-synchronized parallel engine:
//! for the same seed and workload, `run_parallel` with *any* thread
//! count must produce byte-identical results — the same final
//! [`SimTime`] and the same full-registry [`MetricsSnapshot`] JSON,
//! down to the last counter.
//!
//! The windowed scheduler promises this by construction (frames carry
//! exact timestamps, the barrier mailbox merges in `(time, shard)`
//! order, and worker threads never share mutable state), but the
//! promise is only worth anything under fire. These tests replay the
//! nastiest workloads the repo has — hard outages from an
//! [`OutagePlan`] (DIMM crash, switch partition-and-heal), seeded
//! transient faults from a [`FaultPlan`] (frame loss, bit flips,
//! dropped ALERT_N edges, stalled DMA), and impaired 10GbE uplinks —
//! and diff the snapshots of 1-, 2-, 4- and 8-thread runs.

use mcn::{
    ComponentExt, EthernetCluster, Instrumented, McnConfig, McnRack, MetricSink, SystemConfig,
};
use mcn_mpi::{IperfClient, IperfReport, IperfServer};
use mcn_sim::fault::{FaultKind, FaultPlan};
use mcn_sim::{OutageKind, OutagePlan, SimTime};

/// Full-registry JSON of a component tree: the byte-identity witness.
fn snapshot(root: &dyn Instrumented) -> String {
    let mut sink = MetricSink::new();
    sink.absorb("root", root);
    sink.finish().to_json()
}

/// Builds a 2x2 rack with cross-server iperf traffic: one server process
/// per host, each DIMM streaming into its own host, plus one stream from
/// server 0's DIMM 0 into server 1's host (so the ToR switch carries
/// real load while the chaos hits).
fn iperf_rack(cfg: McnConfig, plan: &FaultPlan) -> McnRack {
    let mut rack = McnRack::with_faults(&SystemConfig::default(), 2, 2, cfg, plan);
    rack.spawn_host(
        0,
        Box::new(IperfServer::new(5001, 2, SimTime::from_ms(1), IperfReport::shared())),
        0,
    );
    rack.spawn_host(
        1,
        Box::new(IperfServer::new(5001, 3, SimTime::from_ms(1), IperfReport::shared())),
        0,
    );
    for s in 0..2 {
        let dst = rack.server(s).host_rank_ip();
        for d in 0..2 {
            rack.spawn_dimm(
                s,
                d,
                Box::new(IperfClient::new(dst, 5001, 512 * 1024, IperfReport::shared())),
                1,
            );
        }
    }
    let remote = rack.server(1).host_rank_ip();
    rack.spawn_dimm(
        0,
        0,
        Box::new(IperfClient::new(remote, 5001, 512 * 1024, IperfReport::shared())),
        2,
    );
    rack
}

#[test]
fn rack_chaos_mix_is_thread_count_invariant() {
    // Hard outages mid-stream: server 1's DIMM 0 crashes and reboots,
    // and the ToR switch partitions the two servers for 2 ms while the
    // cross-server stream is in flight.
    let mut plan = OutagePlan::new(0xC0FFEE);
    plan.at(
        &McnRack::dimm_outage_component(1, 0),
        SimTime::from_us(800),
        OutageKind::DimmCrash {
            down_for: SimTime::from_ms(5),
        },
    );
    plan.at(
        McnRack::SWITCH_OUTAGE_COMPONENT,
        SimTime::from_ms(1),
        OutageKind::SwitchPartition {
            groups: vec![vec![0], vec![1]],
            heal_at: SimTime::from_ms(3),
        },
    );

    let run = |threads: usize| {
        let mut rack = iperf_rack(McnConfig::level(3), &FaultPlan::default());
        rack.set_outage_plan(&plan);
        let done = rack.run_parallel(SimTime::from_secs(10), threads);
        assert!(
            done,
            "chaos mix stalled on {threads} thread(s) at {}\n{}",
            rack.now(),
            rack.stall_report("parallel chaos stalled")
        );
        (rack.now(), snapshot(&rack))
    };

    let serial = run(1);
    assert_eq!(serial, run(2), "2-thread run diverged from serial");
    assert_eq!(serial, run(4), "4-thread run diverged from serial");
    assert_eq!(serial, run(8), "8-thread run diverged from serial");
    // The chaos must actually have happened for the comparison to mean
    // anything.
    assert!(serial.1.contains("\"root.rack.partitions\": 1"));
    assert!(serial.1.contains("crashes\": 1"));
}

#[test]
fn rack_fault_plan_is_thread_count_invariant() {
    // Seeded transient faults on server 0's data path: frame loss and
    // ECC-escape corruption on both SRAM ring directions, dropped
    // ALERT_N edges, stalled MCN-DMA transfers. Checksums stay on so
    // the corruption is detected (and retransmitted), not absorbed.
    let cfg = McnConfig {
        checksum_bypass: false,
        ..McnConfig::level(3)
    };
    let mut plan = FaultPlan::new(0xFAB);
    for comp in [
        mcn::McnSystem::sram_host_fault_component(0, 0),
        mcn::McnSystem::sram_dimm_fault_component(0, 0),
    ] {
        plan.rate(&comp, FaultKind::Drop, 0.01);
        plan.rate(&comp, FaultKind::BitFlip, 0.005);
    }
    plan.rate(&mcn::McnSystem::alert_fault_component(0), FaultKind::Drop, 0.1);
    plan.rate(&mcn::McnSystem::dma_fault_component(0), FaultKind::Stall, 0.02);

    let run = |threads: usize| {
        let mut rack = iperf_rack(cfg, &plan);
        // Generous sim-time budget: 25% dropped alerts plus stalled DMA
        // can push TCP into long RTO backoff; idle waits are cheap.
        let done = rack.run_parallel(SimTime::from_secs(120), threads);
        assert!(
            done,
            "faulted run stalled on {threads} thread(s) at {}\n{}",
            rack.now(),
            rack.stall_report("parallel fault run stalled")
        );
        (rack.now(), snapshot(&rack))
    };

    let serial = run(1);
    assert_eq!(serial, run(2), "2-thread run diverged from serial");
}

#[test]
fn cluster_with_impaired_uplink_is_thread_count_invariant() {
    // The 10GbE baseline under the same contract: three nodes, iperf
    // fan-in to node 0, with node 1's uplink dropping and corrupting
    // frames (seeded), so TCP loss recovery runs on every path.
    let run = |threads: usize| {
        let mut c = EthernetCluster::new(&SystemConfig::default(), 3);
        c.impair_uplink(1, 0.02, 0.01, 0x5EED);
        let srv = IperfReport::shared();
        c.spawn(
            0,
            Box::new(IperfServer::new(5001, 2, SimTime::from_ms(1), srv)),
            0,
        );
        for i in 1..3 {
            c.spawn(
                i,
                Box::new(IperfClient::new(
                    EthernetCluster::ip_of(0),
                    5001,
                    256 * 1024,
                    IperfReport::shared(),
                )),
                1,
            );
        }
        let done = c.run_parallel(SimTime::from_secs(10), threads);
        assert!(
            done,
            "cluster iperf stalled on {threads} thread(s) at {}\n{}",
            c.now(),
            c.stall_report("parallel cluster stalled")
        );
        (c.now(), snapshot(&c))
    };

    let serial = run(1);
    assert_eq!(serial, run(2), "2-thread run diverged from serial");
    assert_eq!(serial, run(3), "3-thread run diverged from serial");
}

#[test]
fn deadline_runs_agree_with_component_trait_driver() {
    // `run_parallel_until` on N threads must land exactly where the
    // serial Component::advance path (run_until) lands: same clock,
    // same simulation counters. Only the scheduler's own bookkeeping
    // (`sched.windows`/`sched.messages`) may differ, because the trait
    // driver issues many small drives where `run_parallel_until` issues
    // one big one — so those lines are excluded from the diff.
    let build = || iperf_rack(McnConfig::level(3), &FaultPlan::default());
    let sim_lines = |rack: &McnRack| {
        snapshot(rack)
            .lines()
            .filter(|l| !l.contains("\"root.sched."))
            .map(str::to_owned)
            .collect::<Vec<_>>()
    };

    let mut via_trait = build();
    via_trait.run_until(SimTime::from_ms(2));

    let mut via_parallel = build();
    via_parallel.run_parallel_until(SimTime::from_ms(2), 2);

    assert_eq!(via_trait.now(), via_parallel.now());
    assert_eq!(
        sim_lines(&via_trait),
        sim_lines(&via_parallel),
        "trait-driven and parallel deadline runs diverged"
    );
}

#[test]
fn datacenter_chaos_mix_is_thread_count_invariant() {
    // The same contract one level up: a 2-pod Clos fabric with
    // cross-pod iperf streams, an agg switch loss, a rack-scale power
    // event and seeded SRAM frame loss on every server — byte-identical
    // at 1, 2, 4 and 8 outer threads.
    use mcn::fabric::ClosConfig;
    use mcn::{Datacenter, McnSystem};

    let mut faults = FaultPlan::new(0xDC0);
    faults.rate(
        &mcn::McnSystem::sram_host_fault_component(0, 0),
        FaultKind::Drop,
        0.01,
    );
    let mut plan = OutagePlan::new(0xDC1);
    plan.at(
        &Datacenter::agg_outage_component(0, 0),
        SimTime::from_us(200),
        OutageKind::SwitchDown { down_for: SimTime::from_ms(1) },
    );
    plan.at(
        &Datacenter::rack_outage_component(3),
        SimTime::from_us(400),
        OutageKind::NodeReboot { down_for: SimTime::from_ms(1) },
    );

    let run = |threads: usize| {
        let clos = ClosConfig {
            servers_per_rack: 2,
            ..ClosConfig::default()
        };
        let mut dc = Datacenter::with_faults(
            &SystemConfig::default(),
            McnConfig::level(3),
            &clos,
            &faults,
        );
        dc.set_outage_plan(&plan);
        for r in 0..2 {
            dc.spawn_host(
                r,
                0,
                Box::new(IperfServer::new(5001, 1, SimTime::from_ms(1), IperfReport::shared())),
                0,
            );
            dc.spawn_host(
                r + 2,
                1,
                Box::new(IperfClient::new(
                    McnSystem::nic_ip_in(r, 0),
                    5001,
                    128 * 1024,
                    IperfReport::shared(),
                )),
                1,
            );
        }
        let done = dc.run_parallel(SimTime::from_secs(30), threads);
        assert!(done, "datacenter chaos stalled on {threads} thread(s) at {}", dc.now());
        (dc.now(), snapshot(&dc))
    };

    let serial = run(1);
    assert_eq!(serial, run(2), "2-thread run diverged from serial");
    assert_eq!(serial, run(4), "4-thread run diverged from serial");
    assert_eq!(serial, run(8), "8-thread run diverged from serial");
    assert!(serial.1.contains("\"root.fabric.switch_downs\": 1"));
    assert!(serial.1.contains("\"root.rack3.rack.node_reboots\": 2"));
}
