//! Contract tests for the declarative sweep runner (DESIGN.md §4g):
//! byte-identical output across reruns, worker counts, and
//! kill-and-resume splits, plus the energy-figure invariants every cell
//! reports.

use std::fs;
use std::path::{Path, PathBuf};

use mcn_sweep::runner::{run_sweep, SweepConfig};
use mcn_sweep::scenarios::run_cell;
use mcn_sweep::spec::{Axes, Cell, FaultAxis, OptFlags, Scale, SweepSpec, Topology, Workload};

fn tmp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("mcn-sweep-it-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&d);
    d
}

/// A 4-cell spec that exercises two engines (single-system and rack)
/// and both a clean and a chaos fault plan, at smoke scale.
fn spec() -> SweepSpec {
    let axes = Axes {
        workloads: vec![Workload::Iperf, Workload::Kv],
        topologies: vec![Topology::Single, Topology::Rack],
        faults: vec![FaultAxis::None, FaultAxis::Domains],
        opts: vec![OptFlags { level: 3, threads: 1 }],
    };
    SweepSpec { seed: 0x7357, scale: Scale::smoke(), cells: axes.expand() }
}

fn sweep_json(dir: &Path) -> String {
    fs::read_to_string(dir.join("sweep.json")).expect("sweep.json written")
}

#[test]
fn same_seed_is_byte_identical_across_runs_and_worker_counts() {
    let spec = spec();
    let d1 = tmp_dir("jobs1");
    let d4 = tmp_dir("jobs4");
    run_sweep(&spec, &SweepConfig::new(1, &d1)).expect("jobs=1");
    run_sweep(&spec, &SweepConfig::new(4, &d4)).expect("jobs=4");
    let (a, b) = (sweep_json(&d1), sweep_json(&d4));
    assert!(!a.is_empty());
    assert_eq!(a, b, "jobs=1 and jobs=4 sweeps must render byte-identically");

    // A rerun over the existing markers must change nothing.
    let again = run_sweep(&spec, &SweepConfig::new(4, &d4)).expect("rerun");
    assert_eq!(again.executed, 0, "rerun must reuse every marker");
    assert_eq!(sweep_json(&d4), a);
    let _ = fs::remove_dir_all(&d1);
    let _ = fs::remove_dir_all(&d4);
}

#[test]
fn killed_and_resumed_sweep_matches_uninterrupted() {
    let spec = spec();
    let whole = tmp_dir("whole");
    run_sweep(&spec, &SweepConfig::new(2, &whole)).expect("uninterrupted");

    // "Kill" after each single cell: run with limit=1 until done.
    let parts = tmp_dir("parts");
    let mut cfg = SweepConfig::new(2, &parts);
    cfg.limit = Some(1);
    let mut rounds = 0;
    loop {
        let out = run_sweep(&spec, &cfg).expect("partial");
        rounds += 1;
        assert!(rounds <= 16, "sweep never converged");
        if out.executed == 0 && out.remaining == 0 {
            break;
        }
    }
    assert!(rounds > 2, "limit=1 must actually split the sweep");
    assert_eq!(
        sweep_json(&whole),
        sweep_json(&parts),
        "resumed sweep must be byte-identical to uninterrupted"
    );
    let _ = fs::remove_dir_all(&whole);
    let _ = fs::remove_dir_all(&parts);
}

#[test]
fn every_cell_reports_nonzero_energy_figures() {
    let spec = spec();
    let dir = tmp_dir("energy");
    let out = run_sweep(&spec, &SweepConfig::new(2, &dir)).expect("sweep");
    let mut cells_seen = 0;
    for cell in &spec.cells {
        if cell.supported().is_err() {
            continue;
        }
        cells_seen += 1;
        let id = cell.id();
        for leaf in [
            "energy.total_j",
            "energy.energy_per_request_nj",
            "energy.perf_per_watt",
            "energy.avg_power_w",
            "perf",
        ] {
            let v = out
                .merged
                .get(&format!("cells.{id}.{leaf}"))
                .unwrap_or_else(|| panic!("{id} missing {leaf}"))
                .as_f64();
            assert!(v > 0.0, "{id}.{leaf} = {v}, want > 0");
        }
        assert!(out.merged.get_u64(&format!("cells.{id}.requests")) > 0, "{id} did no work");
    }
    assert!(cells_seen >= 3, "support matrix left too few cells to test");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn energy_grows_with_request_count() {
    let cell = Cell {
        workload: Workload::Iperf,
        topology: Topology::Single,
        fault: FaultAxis::None,
        opt: OptFlags { level: 3, threads: 1 },
    };
    let small = Scale::smoke();
    let big = Scale { iperf_bytes: small.iperf_bytes * 4, ..small };
    let a = run_cell(&cell, &small, 1);
    let b = run_cell(&cell, &big, 1);
    let (req_a, req_b) = (a.get_u64("requests"), b.get_u64("requests"));
    assert!(req_b > req_a, "4x the bytes must mean more delivered KiB");
    let energy = |s: &mcn_sim::MetricsSnapshot| s.get("energy.total_j").unwrap().as_f64();
    assert!(
        energy(&b) > energy(&a),
        "more requests must cost more energy: {} J for {req_a} vs {} J for {req_b}",
        energy(&a),
        energy(&b)
    );
}
