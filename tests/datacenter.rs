//! The multi-rack Clos datacenter end to end: a ≥64-server fabric under
//! a spine-loss outage must complete real cross-pod traffic and produce
//! **byte-identical** full-registry snapshots at 1, 2 and 4 threads,
//! with ECMP spreading flows over every live equal-cost path and the
//! hierarchical quantum domains doing their job (cross-pod barriers far
//! rarer than intra-rack windows).

use mcn::fabric::ClosConfig;
use mcn::{
    Datacenter, Instrumented, McnConfig, McnSystem, MetricSink, MetricsSnapshot, SystemConfig,
};
use mcn_mpi::{IperfClient, IperfReport, IperfServer};
use mcn_sim::{OutageKind, OutagePlan, SimTime};

/// Full-registry JSON of a component tree: the byte-identity witness.
fn snapshot(root: &dyn Instrumented) -> String {
    let mut sink = MetricSink::new();
    sink.absorb("root", root);
    sink.finish().to_json()
}

/// An 8-rack / 64-server datacenter (2 pods × 4 racks × 8 servers) with
/// cross-rack iperf traffic: every pod-0 rack streams into the matching
/// pod-1 rack (cross-pod, over the spines) and into its pod neighbour
/// (intra-pod, agg turnaround), so both fabric tiers carry real load.
fn iperf_datacenter(bytes: u64) -> Datacenter {
    let clos = ClosConfig {
        pods: 2,
        racks_per_pod: 4,
        servers_per_rack: 8,
        dimms_per_server: 1,
        aggs_per_pod: 2,
        spines: 2,
        ..ClosConfig::default()
    };
    let mut dc = Datacenter::new(&SystemConfig::default(), McnConfig::level(3), &clos);
    assert_eq!(dc.clos().servers(), 64);
    // One iperf sink per rack, two inbound streams each.
    for r in 0..8 {
        dc.spawn_host(
            r,
            0,
            Box::new(IperfServer::new(5001, 2, SimTime::from_ms(1), IperfReport::shared())),
            0,
        );
    }
    for r in 0..4 {
        // Cross-pod partner (rack r+4) and intra-pod neighbour, both
        // directions so every rack sources and sinks.
        for (src, dst) in [(r, r + 4), (r + 4, r), (r, (r + 1) % 4), (r + 4, 4 + (r + 1) % 4)] {
            dc.spawn_host(
                src,
                1 + dst % 4,
                Box::new(IperfClient::new(
                    McnSystem::nic_ip_in(dst, 0),
                    5001,
                    bytes,
                    IperfReport::shared(),
                )),
                1,
            );
        }
    }
    dc
}

#[test]
fn spine_loss_is_thread_count_invariant_at_64_servers() {
    // Spine 0 goes dark mid-transfer for 2 ms: in-flight frames die,
    // ECMP re-hashes the affected flows onto spine 1, TCP retransmits.
    let mut plan = OutagePlan::new(0xD0C);
    plan.at(
        &Datacenter::spine_outage_component(0),
        SimTime::from_us(300),
        OutageKind::SwitchDown { down_for: SimTime::from_ms(2) },
    );

    let run = |threads: usize| {
        let mut dc = iperf_datacenter(96 * 1024);
        dc.set_outage_plan(&plan);
        let done = dc.run_parallel(SimTime::from_secs(10), threads);
        assert!(done, "datacenter stalled on {threads} thread(s) at {}", dc.now());
        (dc.now(), snapshot(&dc))
    };

    let serial = run(1);
    assert_eq!(serial, run(2), "2-thread run diverged from serial");
    assert_eq!(serial, run(4), "4-thread run diverged from serial");

    // The outage and both fabric tiers must actually have been
    // exercised for the identity to mean anything.
    assert!(serial.1.contains("\"root.fabric.switch_downs\": 1"));
    assert!(!serial.1.contains("\"root.fabric.ecmp.routed\": 0"));
    assert!(!serial.1.contains("\"root.fabric.cross_pod\": 0"));
}

#[test]
fn hierarchical_quanta_make_cross_pod_barriers_rare() {
    let mut dc = iperf_datacenter(32 * 1024);
    assert!(dc.run_parallel(SimTime::from_secs(10), 2), "stalled at {}", dc.now());
    let snap = MetricsSnapshot::collect(&dc);
    let barriers = snap.get_u64("sched.domain.cross_pod.barriers");
    let windows = snap.get_u64("sched.domain.intra_rack.windows");
    assert!(barriers > 0, "outer engine never synchronized");
    assert!(
        barriers < windows,
        "cross-pod barriers ({barriers}) should be strictly rarer than \
         intra-rack windows ({windows})"
    );
    // The two quanta really are different tiers.
    assert!(
        snap.get_u64("sched.domain.cross_pod.quantum_ps")
            > snap.get_u64("sched.domain.intra_rack.quantum_ps")
    );
}

#[test]
fn ecmp_spreads_flows_and_is_deterministic_across_threads() {
    // A smaller fabric, many distinct flows (different source ports):
    // every agg and spine path must carry traffic, with identical
    // per-path counts at 1, 2, 4 and 8 threads.
    let run = |threads: usize| {
        let clos = ClosConfig::default(); // 2 pods × 2 racks × 4 servers
        let mut dc = Datacenter::new(&SystemConfig::default(), McnConfig::level(3), &clos);
        for r in 0..4 {
            dc.spawn_host(
                r,
                0,
                Box::new(IperfServer::new(5001, 3, SimTime::from_ms(1), IperfReport::shared())),
                0,
            );
        }
        // 12 flows: every rack streams to every other rack (each
        // connection gets its own ephemeral source port, so ECMP sees
        // distinct flows to hash).
        for src in 0..4usize {
            for dst in 0..4usize {
                if src != dst {
                    dc.spawn_host(
                        src,
                        1 + dst % 3,
                        Box::new(IperfClient::new(
                            McnSystem::nic_ip_in(dst, 0),
                            5001,
                            16 * 1024,
                            IperfReport::shared(),
                        )),
                        1,
                    );
                }
            }
        }
        assert!(dc.run_parallel(SimTime::from_secs(10), threads), "stalled at {}", dc.now());
        let snap = MetricsSnapshot::collect(&dc);
        let paths: Vec<u64> = [
            "fabric.ecmp.path.pod0.agg0",
            "fabric.ecmp.path.pod0.agg1",
            "fabric.ecmp.path.pod1.agg0",
            "fabric.ecmp.path.pod1.agg1",
            "fabric.ecmp.path.spine0",
            "fabric.ecmp.path.spine1",
        ]
        .iter()
        .map(|k| snap.get_u64(k))
        .collect();
        (paths, snapshot(&dc))
    };

    let (paths, serial) = run(1);
    for (i, &n) in paths.iter().enumerate() {
        assert!(n > 0, "equal-cost path {i} carried no flows: {paths:?}");
    }
    for threads in [2, 4, 8] {
        let (p, snap) = run(threads);
        assert_eq!(paths, p, "per-path flow counts diverged at {threads} threads");
        assert_eq!(serial, snap, "{threads}-thread snapshot diverged");
    }
}

#[test]
fn pod_scale_domain_outage_fells_aggs_and_rack_together() {
    // A correlated pod-0 power event: both aggs and rack 0 on one
    // breaker. Pod-0 racks lose fabric reachability until the heal;
    // rack 0's servers all reboot. Traffic from the surviving pod keeps
    // flowing and everything drains after the heal.
    let clos = ClosConfig::default();
    let mut dc = Datacenter::new(&SystemConfig::default(), McnConfig::level(3), &clos);
    let mut plan = OutagePlan::new(0xBAD);
    let (a0, a1, r0) = (
        Datacenter::agg_outage_component(0, 0),
        Datacenter::agg_outage_component(0, 1),
        Datacenter::rack_outage_component(0),
    );
    plan.define_domain("pod0.breaker", &[a0.as_str(), a1.as_str(), r0.as_str()]);
    plan.domain_crash("pod0.breaker", SimTime::from_us(150), SimTime::from_ms(3));
    dc.set_outage_plan(&plan);

    dc.spawn_host(
        3,
        0,
        Box::new(IperfServer::new(5001, 1, SimTime::from_ms(1), IperfReport::shared())),
        0,
    );
    dc.spawn_host(
        1,
        1,
        Box::new(IperfClient::new(
            McnSystem::nic_ip_in(3, 0),
            5001,
            256 * 1024,
            IperfReport::shared(),
        )),
        1,
    );
    assert!(dc.run_parallel(SimTime::from_secs(10), 2), "stalled at {}", dc.now());
    let snap = MetricsSnapshot::collect(&dc);
    assert_eq!(snap.get_u64("fabric.outage.domain.pod0.breaker.crashes"), 1);
    assert_eq!(snap.get_u64("fabric.outage.domain.pod0.breaker.heals"), 1);
    assert_eq!(snap.get_u64("fabric.switch_downs"), 2, "both pod-0 aggs fell");
    assert!(snap.get_u64("rack0.rack.node_reboots") > 0, "rack 0 servers rebooted");
}
