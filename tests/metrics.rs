//! Registry-level guarantees of `mcn_sim::metrics`: every layer's paths
//! are unique, stable across `McnSystem` vs `McnRack` embeddings, and the
//! snapshot/diff/JSON machinery is deterministic on real traffic.

use mcn::{
    ComponentExt, EthernetCluster, Instrumented, McnConfig, McnRack, McnSystem, MetricSink,
    MetricsSnapshot, SystemConfig,
};
use mcn_mpi::{IperfClient, IperfReport, IperfServer};
use mcn_sim::fault::{FaultKind, FaultPlan};
use mcn_sim::SimTime;

const BYTES: u64 = 256 * 1024;

/// A 1-DIMM system running one iperf stream DIMM -> host to completion.
fn run_iperf_system(plan: Option<&FaultPlan>) -> McnSystem {
    let cfg = McnConfig::level(3);
    let sys_cfg = SystemConfig::default();
    let mut sys = match plan {
        Some(p) => McnSystem::with_faults(&sys_cfg, 1, cfg, p),
        None => McnSystem::new(&sys_cfg, 1, cfg),
    };
    let report = IperfReport::shared();
    sys.spawn_host(
        Box::new(IperfServer::new(5001, 1, SimTime::ZERO, report.clone())),
        0,
    );
    let dst = sys.host_rank_ip();
    sys.spawn_dimm(
        0,
        Box::new(IperfClient::new(dst, 5001, BYTES, IperfReport::shared())),
        1,
    );
    assert!(sys.run_until_procs_done(SimTime::from_secs(10)));
    sys
}

#[test]
fn paths_are_unique_and_stable_across_embeddings() {
    // `MetricsSnapshot::collect` panics on duplicate paths, so collecting
    // is itself the uniqueness assertion for each orchestrator shape.
    let sys = McnSystem::new(&SystemConfig::default(), 2, McnConfig::level(3));
    let sys_snap = MetricsSnapshot::collect(&sys);
    let rack = McnRack::new(&SystemConfig::default(), 1, 2, McnConfig::level(3));
    let rack_snap = MetricsSnapshot::collect(&rack);
    let cluster = EthernetCluster::new(&SystemConfig::default(), 2);
    MetricsSnapshot::collect(&cluster);

    // The embedding contract: a server inside a rack registers exactly
    // the standalone system's paths, shifted under `srv0.` — nothing
    // renamed, nothing dropped, nothing added.
    let sys_paths: Vec<&str> = sys_snap.iter().map(|(p, _)| p).collect();
    let embedded: Vec<&str> = rack_snap
        .iter()
        .filter_map(|(p, _)| p.strip_prefix("srv0."))
        .collect();
    assert_eq!(sys_paths, embedded, "srv0 subtree must mirror McnSystem");

    // The documented spine paths of the naming scheme.
    for path in [
        "now_ps",
        "host.cpu.busy_ps",
        "host.stack.frames_in",
        "host.stack.tcp.retransmits",
        "driver.ring_resets",
        "driver.ports_up",
        "dimm0.driver.crashes",
        "dimm1.stack.tcp.bytes_delivered",
        "dimm1.mem.ch0.reads",
        "engine.component_polls",
    ] {
        assert!(sys_snap.get(path).is_some(), "missing spine path {path}");
        assert!(
            rack_snap.get(&format!("srv0.{path}")).is_some(),
            "missing embedded spine path srv0.{path}"
        );
    }
    for path in ["rack.partitions", "switch.flooded", "nic0.irqs", "link0.down.bytes"] {
        assert!(rack_snap.get(path).is_some(), "missing rack path {path}");
    }
}

#[test]
fn diff_and_rate_track_real_traffic() {
    let sys = run_iperf_system(None);
    let before = MetricsSnapshot::collect(&McnSystem::new(
        &SystemConfig::default(),
        1,
        McnConfig::level(3),
    ));
    let after = MetricsSnapshot::collect(&sys);
    let delta = after.diff(&before);

    // The whole stream is visible in the diff at every layer.
    assert_eq!(delta.get_u64("host.stack.tcp.bytes_delivered"), BYTES);
    assert!(delta.get_u64("dimm0.driver.tx_frames") > 0);
    assert!(delta.get_u64("driver.rx_frames") > 0);
    assert!(delta.get_u64("host.stack.frames_in") > 0);
    assert!(delta.get_u64("engine.advances") > 0);
    let elapsed = SimTime::from_ps(delta.get_u64("now_ps"));
    assert!(elapsed > SimTime::ZERO);

    // Rate-over-window: bytes/s over the run must equal bytes / elapsed.
    let rate = after.rate_per_sec(&before, elapsed);
    let bps = rate.get("host.stack.tcp.bytes_delivered").unwrap().as_f64();
    let expect = BYTES as f64 / elapsed.as_secs_f64();
    assert!(
        (bps - expect).abs() / expect < 1e-9,
        "rate {bps} != {expect}"
    );
}

#[test]
fn same_seed_fault_runs_render_identical_json() {
    let mut plan = FaultPlan::new(0x5EED);
    for comp in [
        McnSystem::sram_host_fault_component(0, 0),
        McnSystem::sram_dimm_fault_component(0, 0),
    ] {
        plan.rate(&comp, FaultKind::Drop, 0.01);
    }
    let a = MetricsSnapshot::collect(&run_iperf_system(Some(&plan))).to_json();
    let b = MetricsSnapshot::collect(&run_iperf_system(Some(&plan))).to_json();
    assert!(!a.is_empty());
    assert_eq!(a, b, "same-seed runs must serialize byte-identically");
}

#[test]
fn workload_layers_join_the_registry() {
    // Harness-side components (here the iperf report) absorb into the
    // same tree as the system, under a caller-chosen scope.
    let sys = McnSystem::new(&SystemConfig::default(), 1, McnConfig::level(3));
    let report = IperfReport::shared();
    let mut sink = MetricSink::new();
    sys.metrics(&mut sink);
    sink.absorb("iperf_server", &*report.lock());
    let snap = sink.finish();
    assert_eq!(snap.get_u64("iperf_server.goodput.bytes"), 0);
    assert_eq!(snap.get_u64("iperf_server.done"), 0);
    assert!(snap.get("driver.polls").is_some());
}
