//! Chaos harness: crash–restart lifecycle and partition-and-heal across the
//! whole MCN stack.
//!
//! Where `fault_recovery.rs` exercises *transient* faults (dropped frames,
//! bit flips, stalled DMA), these tests exercise *hard* outages from an
//! [`OutagePlan`]: DIMMs crash and reboot (SRAM rings wiped, host↔DIMM
//! re-init handshake), the ToR switch partitions and heals, and peers die
//! for good. The invariants:
//!
//! * TCP streams that span an outage are byte-complete after the heal —
//!   retransmission plus the re-init handshake recover everything,
//! * every outage and every recovery step is visible in a counter,
//! * a peer that never comes back yields a terminal error
//!   ([`TcpError::TimedOut`] at the transport, [`MpiError::RankFailed`] at
//!   the MPI layer) instead of a hang,
//! * the same seed replays the same chaos: two runs produce byte-identical
//!   full-registry JSON snapshots ([`MetricsSnapshot`] over the whole
//!   rack; `chaos_smoke_snapshot` prints them as `SNAP|`-prefixed lines so
//!   CI can diff two invocations).

use mcn::{ComponentExt, McnConfig, McnRack, McnSystem, MetricsSnapshot, SystemConfig};
use mcn_mpi::mpi::MpiRank;
use mcn_mpi::placement::{spawn_on_mcn, MPI_BASE_PORT};
use mcn_mpi::workloads::{RankProgram, WorkloadReport};
use mcn_mpi::{CommPattern, MpiError, WorkloadSpec};
use mcn_net::tcp::{TcpError, TcpState};
use mcn_sim::{Backoff, OutageKind, OutagePlan, SimTime};

/// Fixed per-slice pacing: a [`Backoff`] whose delay never grows.
fn pace(slice: SimTime, attempts: u32) -> Backoff {
    Backoff::new(slice, slice, attempts)
}

#[test]
fn dimm_crash_and_reboot_keeps_tcp_byte_complete() {
    // A DIMM crashes mid-stream and powers back on 30 ms later. The SRAM
    // rings and every queued descriptor are gone; the host walks the
    // probe → ring-reset → MAC-announce handshake and TCP retransmission
    // repairs the stream. The application sees a hiccup, not data loss.
    let mut plan = OutagePlan::new(0xD1);
    plan.at(
        &McnSystem::dimm_outage_component(0, 0),
        SimTime::from_us(1500),
        OutageKind::DimmCrash {
            down_for: SimTime::from_ms(30),
        },
    );
    let mut sys = McnSystem::new(&SystemConfig::default(), 1, McnConfig::level(3));
    sys.set_outage_plan(&plan);

    let lst = sys.dimm_mut(0).node.stack.tcp_listen(6000).unwrap();
    let dimm_ip = sys.dimm_ip(0);
    let cs = sys
        .host
        .stack
        .tcp_connect(dimm_ip, 6000, SimTime::ZERO)
        .unwrap();
    sys.run_until(SimTime::from_ms(1));
    assert_eq!(sys.host.stack.tcp_state(cs), TcpState::Established);
    let ss = sys.dimm_mut(0).node.stack.tcp_accept(lst).unwrap();

    // Big enough (~2 ms at simulated MCN bandwidth) that the 1.5 ms crash
    // lands mid-stream, not after completion.
    let data: Vec<u8> = (0..4 * 1024 * 1024u32).map(|i| (i % 251) as u8).collect();
    let mut sent = 0;
    let mut got = Vec::new();
    let mut buf = vec![0u8; 65536];
    // Drain often enough that the sender streams continuously instead of
    // parking in a zero-window stall: the crash must land with data in
    // flight, or nothing dies in the rings and the persist timer (not
    // retransmission) would repair the stream.
    let mut pacing = pace(SimTime::from_us(20), 500_000);
    let done = sys.run_with_backoff(&mut pacing, |sys| {
        let now = sys.now();
        if sent < data.len() {
            sent += sys.host.stack.tcp_send(cs, &data[sent..], now).unwrap();
        }
        loop {
            let now = sys.now();
            let n = sys
                .dimm_mut(0)
                .node
                .stack
                .tcp_recv(ss, &mut buf, now)
                .unwrap();
            if n == 0 {
                break;
            }
            got.extend_from_slice(&buf[..n]);
        }
        got.len() >= data.len()
    });
    assert!(
        done,
        "stalled at {} bytes\n{}",
        got.len(),
        sys.stall_report("crash-and-reboot stream stalled")
    );
    assert_eq!(got, data, "byte-exact across a crash and reboot");

    // The lifecycle must be fully visible in counters.
    let d = &sys.dimm(0).stats;
    assert_eq!(d.crashes.get(), 1, "exactly one crash");
    assert_eq!(d.reboots.get(), 1, "exactly one reboot");
    let h = &sys.hdrv.stats;
    assert!(h.port_downs.get() >= 1, "the port went down");
    assert!(h.ring_resets.get() >= 1, "the handshake reset the rings");
    assert!(
        h.reinits_completed.get() >= 1,
        "the handshake completed: {h:?}"
    );
    assert!(sys.hdrv.port_is_up(0), "the port healed");
    assert!(
        sys.host.stack.tcp_totals().retransmits > 0,
        "in-flight data died in the rings; TCP must have retransmitted"
    );
}

#[test]
fn switch_partition_heals_and_stream_completes() {
    // The ToR switch partitions the two servers 3 ms into a cross-server
    // stream and heals at 250 ms. Frames the switch refuses are counted;
    // after the heal, retransmission completes the stream byte-exact.
    let mut plan = OutagePlan::new(0xAB);
    plan.at(
        McnRack::SWITCH_OUTAGE_COMPONENT,
        SimTime::from_us(2500),
        OutageKind::SwitchPartition {
            groups: vec![vec![0], vec![1]],
            heal_at: SimTime::from_ms(250),
        },
    );
    let mut rack = McnRack::new(&SystemConfig::default(), 2, 1, McnConfig::level(3));
    rack.set_outage_plan(&plan);

    let dst_ip = rack.server(1).dimm_ip(0);
    let lst = rack
        .server_mut(1)
        .dimm_mut(0)
        .node
        .stack
        .tcp_listen(9000)
        .unwrap();
    let cs = rack
        .server_mut(0)
        .dimm_mut(0)
        .node
        .stack
        .tcp_connect(dst_ip, 9000, SimTime::ZERO)
        .unwrap();
    rack.run_until(SimTime::from_ms(2));
    assert_eq!(
        rack.server(0).dimm(0).node.stack.tcp_state(cs),
        TcpState::Established,
        "handshake completes before the partition"
    );
    let ss = rack
        .server_mut(1)
        .dimm_mut(0)
        .node
        .stack
        .tcp_accept(lst)
        .unwrap();

    // ~1.7 ms of cross-rack traffic: the 2.5 ms partition interrupts it.
    let data: Vec<u8> = (0..2 * 1024 * 1024u32).map(|i| (i % 247) as u8).collect();
    let mut sent = 0;
    let mut got = Vec::new();
    let mut buf = vec![0u8; 32768];
    let mut pacing = pace(SimTime::from_ms(1), 20_000);
    let done = rack.run_with_backoff(&mut pacing, |rack| {
        let now = rack.now();
        if sent < data.len() {
            sent += rack
                .server_mut(0)
                .dimm_mut(0)
                .node
                .stack
                .tcp_send(cs, &data[sent..], now)
                .unwrap();
        }
        loop {
            let now = rack.now();
            let n = rack
                .server_mut(1)
                .dimm_mut(0)
                .node
                .stack
                .tcp_recv(ss, &mut buf, now)
                .unwrap();
            if n == 0 {
                break;
            }
            got.extend_from_slice(&buf[..n]);
        }
        got.len() >= data.len()
    });
    assert!(
        done,
        "stalled at {} bytes\n{}",
        got.len(),
        rack.stall_report("partitioned stream stalled")
    );
    assert_eq!(got, data, "byte-exact across a partition and heal");
    assert_eq!(rack.stats.partitions.get(), 1);
    assert!(
        rack.stats.partition_drops.get() > 0,
        "the partition must have eaten frames"
    );
    assert!(!rack.is_partitioned(), "healed at 250ms");
    assert!(
        rack.server(0)
            .dimm(0)
            .node
            .stack
            .tcp_totals()
            .retransmits
            > 0,
        "partitioned frames must have been retransmitted"
    );
}

#[test]
fn unreachable_peer_times_out_instead_of_hanging() {
    // The DIMM crashes and never comes back. The host driver's probe
    // budget exhausts and parks the port; the TCP connection exhausts its
    // RTO budget and fails with TimedOut. Nothing hangs.
    let mut sys = McnSystem::new(&SystemConfig::default(), 1, McnConfig::level(3));
    let lst = sys.dimm_mut(0).node.stack.tcp_listen(6000).unwrap();
    let dimm_ip = sys.dimm_ip(0);
    let cs = sys
        .host
        .stack
        .tcp_connect(dimm_ip, 6000, SimTime::ZERO)
        .unwrap();
    sys.run_until(SimTime::from_ms(1));
    assert_eq!(sys.host.stack.tcp_state(cs), TcpState::Established);
    let _ss = sys.dimm_mut(0).node.stack.tcp_accept(lst).unwrap();

    // Put unacknowledged data in flight, then kill the DIMM for good.
    let now = sys.now();
    sys.host
        .stack
        .tcp_send(cs, &[0x5A; 32 * 1024], now)
        .unwrap();
    sys.crash_dimm(0, now);

    let mut waiting = Backoff::new(SimTime::from_ms(500), SimTime::from_secs(5), 64);
    let failed = sys.run_with_backoff(&mut waiting, |sys| sys.host.stack.tcp_failed(cs));
    assert!(
        failed,
        "a dead peer must surface as an error, not a hang\n{}",
        sys.stall_report("dead peer undetected")
    );
    assert_eq!(sys.host.stack.tcp_error(cs), Some(TcpError::TimedOut));
    assert!(sys.host.stack.tcp_totals().rto_giveups >= 1);
    // The driver's re-init probes also gave up and parked the port.
    assert_eq!(sys.hdrv.stats.reinit_failures.get(), 1);
    assert!(!sys.hdrv.port_is_up(0), "port parked down, not retrying forever");
}

#[test]
fn dead_rank_yields_rank_failed_not_a_hang() {
    // An MPI barrier against a rank whose DIMM died at t=0: the surviving
    // rank's dials time out, the reconnect budget exhausts, and the rank
    // aborts with RankFailed instead of spinning in the collective.
    let mut sys = McnSystem::new(&SystemConfig::default(), 1, McnConfig::level(3));
    let spec = WorkloadSpec {
        name: "chaos-barrier",
        suite: "test",
        iterations: 0, // straight to the final barrier
        mem_bytes_per_iter: 1 << 20,
        read_frac: 0.8,
        random_access: false,
        compute_ns_per_iter: 1_000,
        comm: CommPattern::None,
    };
    let peers = vec![sys.host_rank_ip(), sys.dimm_ip(0)];
    let report = WorkloadReport::shared(2);
    let mut r0 = MpiRank::new(0, 2, peers.clone(), MPI_BASE_PORT);
    r0.set_max_reconnects(0); // first timeout is fatal: one detection cycle
    sys.spawn_host(
        Box::new(RankProgram::new(r0, spec, 8 << 30, 1, report.clone())),
        0,
    );
    let mut r1 = MpiRank::new(1, 2, peers, MPI_BASE_PORT);
    r1.set_max_reconnects(0);
    sys.spawn_dimm(
        0,
        Box::new(RankProgram::new(r1, spec, 8 << 30, 1, report.clone())),
        1,
    );
    // The DIMM (and rank 1 with it) dies before any traffic flows.
    sys.crash_dimm(0, SimTime::ZERO);

    let mut waiting = Backoff::new(SimTime::from_ms(500), SimTime::from_secs(5), 64);
    let failed = sys.run_with_backoff(&mut waiting, |_| report.lock().first_failure().is_some());
    assert!(
        failed,
        "rank 0 must detect the dead peer, not hang\n{}",
        sys.stall_report("dead rank undetected")
    );
    assert_eq!(
        report.lock().first_failure(),
        Some(MpiError::RankFailed(1)),
        "the failure names the dead rank"
    );
    assert!(
        sys.host.stack.tcp_totals().rto_giveups >= 1,
        "detection came from the transport's RTO give-up"
    );
}

/// The chaos mix: a 2-server rack where server 1's DIMM crashes twice at
/// randomized (seeded) times while the switch partitions and heals, under
/// a cross-server TCP stream plus an intra-server allreduce. Returns the
/// full-registry JSON snapshot (`SNAP|`-prefixed lines).
fn chaos_mix_snapshot(seed: u64) -> String {
    let mut plan = OutagePlan::new(seed);
    plan.random_crashes(
        &McnRack::dimm_outage_component(1, 0),
        2,
        (SimTime::from_ms(1), SimTime::from_ms(80)),
        (SimTime::from_ms(5), SimTime::from_ms(20)),
    );
    plan.at(
        McnRack::SWITCH_OUTAGE_COMPONENT,
        SimTime::from_ms(2),
        OutageKind::SwitchPartition {
            groups: vec![vec![0], vec![1]],
            heal_at: SimTime::from_ms(230),
        },
    );
    // The snapshot opens with the schedule the seed drew: crashes that
    // land while the rack is partitioned shift timings without moving any
    // final counter, so the schedule itself is part of the chaos history.
    let mut snap = String::new();
    let mut sched = plan.schedule(&McnRack::dimm_outage_component(1, 0));
    for (t, kind) in sched.pop_due(SimTime::MAX) {
        use std::fmt::Write;
        writeln!(snap, "SNAP|plan srv1.dimm0 at={t} {kind:?}").unwrap();
    }

    let mut rack = McnRack::new(&SystemConfig::default(), 2, 1, McnConfig::level(3));
    rack.set_outage_plan(&plan);

    // An intra-server allreduce on server 0 rides along, untouched by the
    // cross-server chaos — transparency means it must verify regardless.
    let spec = WorkloadSpec {
        name: "chaos-allreduce",
        suite: "test",
        iterations: 2,
        mem_bytes_per_iter: 1 << 20,
        read_frac: 0.8,
        random_access: false,
        compute_ns_per_iter: 10_000,
        comm: CommPattern::AllReduce { elems: 32 },
    };
    let mpi_report = spawn_on_mcn(rack.server_mut(0), spec, 1, 1, 42);

    // Cross-server stream into the crashing DIMM, through the partition.
    let dst_ip = rack.server(1).dimm_ip(0);
    let lst = rack
        .server_mut(1)
        .dimm_mut(0)
        .node
        .stack
        .tcp_listen(9000)
        .unwrap();
    let cs = rack
        .server_mut(0)
        .dimm_mut(0)
        .node
        .stack
        .tcp_connect(dst_ip, 9000, SimTime::ZERO)
        .unwrap();
    let mut hs = Backoff::new(SimTime::from_ms(1), SimTime::from_ms(50), 100);
    let established = rack.run_with_backoff(&mut hs, |rack| {
        rack.server(0).dimm(0).node.stack.tcp_state(cs) == TcpState::Established
    });
    assert!(
        established,
        "handshake must survive the chaos\n{}",
        rack.stall_report("chaos handshake stalled")
    );
    let ss = rack
        .server_mut(1)
        .dimm_mut(0)
        .node
        .stack
        .tcp_accept(lst)
        .unwrap();

    // Large enough that the stream cannot complete before the 230 ms heal:
    // it is forced through both crashes and the whole partition window.
    let data: Vec<u8> = (0..3 * 1024 * 1024u32).map(|i| (i % 239) as u8).collect();
    let mut sent = 0;
    let mut got = Vec::new();
    let mut buf = vec![0u8; 32768];
    let mut pacing = pace(SimTime::from_ms(1), 20_000);
    let done = rack.run_with_backoff(&mut pacing, |rack| {
        let now = rack.now();
        if sent < data.len() {
            sent += rack
                .server_mut(0)
                .dimm_mut(0)
                .node
                .stack
                .tcp_send(cs, &data[sent..], now)
                .unwrap();
        }
        loop {
            let now = rack.now();
            let n = rack
                .server_mut(1)
                .dimm_mut(0)
                .node
                .stack
                .tcp_recv(ss, &mut buf, now)
                .unwrap();
            if n == 0 {
                break;
            }
            got.extend_from_slice(&buf[..n]);
        }
        got.len() >= data.len()
    });
    assert!(
        done,
        "chaos stream stalled at {} bytes\n{}",
        got.len(),
        rack.stall_report("chaos stream stalled")
    );
    assert_eq!(got, data, "byte-exact through crashes and the partition");
    assert!(
        rack.run_until_procs_done(rack.now() + SimTime::from_secs(10)),
        "allreduce under chaos must finish\n{}",
        rack.stall_report("chaos allreduce stalled")
    );
    {
        let r = mpi_report.lock();
        assert!(r.verified, "allreduce must verify under chaos");
        assert!(r.first_failure().is_none(), "no rank died in this scenario");
    }
    // The scheduled chaos must actually have happened. A crash drawn
    // while the DIMM is still down from the previous one coalesces (the
    // alive-guard ignores it), so the count is seed-dependent but every
    // crash that landed must have been followed by a reboot.
    let crashes = rack.server(1).dimm(0).stats.crashes.get();
    assert!((1..=2).contains(&crashes), "got {crashes} crashes");
    assert_eq!(rack.server(1).dimm(0).stats.reboots.get(), crashes);
    assert_eq!(rack.stats.partitions.get(), 1);

    snap.push_str(&rack_snapshot(&rack));
    snap
}

/// The rack's *entire* metrics registry as `SNAP|`-prefixed JSON lines
/// (CI greps the prefix, reassembles the JSON and diffs two same-seed
/// runs). A registry walk replaces the old hand-picked `writeln!` block:
/// any counter a layer registers is part of the determinism gate from the
/// moment it exists.
fn rack_snapshot(rack: &McnRack) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    for line in MetricsSnapshot::collect(rack).to_json().lines() {
        writeln!(s, "SNAP|{line}").unwrap();
    }
    s
}

#[test]
fn same_seed_chaos_runs_are_identical() {
    // One seed, one history: the randomized outage schedule, the crashes,
    // the handshake, the retransmissions — all of it must replay exactly,
    // down to a byte-identical full-registry JSON snapshot.
    let a = chaos_mix_snapshot(0xC4A05);
    let b = chaos_mix_snapshot(0xC4A05);
    assert_eq!(a, b, "same-seed chaos must produce identical snapshots");
}

#[test]
fn different_seeds_draw_different_chaos() {
    let a = chaos_mix_snapshot(3);
    let b = chaos_mix_snapshot(4);
    assert_ne!(a, b, "distinct seeds should perturb the chaos history");
}

#[test]
fn chaos_smoke_snapshot() {
    // CI's chaos-smoke gate runs this test twice with --nocapture and
    // diffs the SNAP| lines — the rack's whole registry in JSON, not a
    // hand-picked subset: any nondeterminism in the chaos machinery fails
    // the build even if every in-process assertion still passes.
    let snap = chaos_mix_snapshot(0x5EED_CAFE);
    // Leading newline: the libtest harness prints `test <name> ... ` with
    // no newline, which would glue itself to the first SNAP| line and
    // hide it from CI's `grep '^SNAP|'`.
    print!("\n{snap}");
    assert!(snap.lines().all(|l| l.starts_with("SNAP|")));
    // The registry walk covers both servers end to end: spine paths from
    // every layer must be present in the JSON body.
    for path in [
        "srv0.driver.ring_resets",
        "srv1.dimm0.driver.crashes",
        "srv1.host.stack.tcp.retransmits",
        "rack.partitions",
        "switch.forwarded",
        "nic1.tx_frames",
        "link0.up.sent",
        "engine.advances",
        // The windowed scheduler's coarsening, batching and frame-pool
        // machinery must engage (and stay deterministic) even on the
        // serial drive path — the coordinator computes these from the
        // same schedule at any thread count, so they are part of the
        // byte-identity diff CI runs on this snapshot.
        "sched.lookahead.windows_coalesced",
        "sched.batch.jobs",
        "sched.pool.reused",
    ] {
        assert!(
            snap.contains(&format!("\"{path}\":")),
            "registry snapshot is missing {path}"
        );
    }
    assert!(snap.lines().count() >= 100, "full registry, not a subset");
}
