//! Overload-resilience of the serving tier (ISSUE 6 acceptance tests).
//!
//! The paper sells MCN DIMMs as *servers* for "heavy traffic from
//! millions of users"; a server that melts under a connection flood or
//! leaks a socket slot per churned connection proves nothing. These
//! tests put the KV-on-DIMM serving tier ([`KvServer`] / [`KvClient`])
//! and the stack's admission machinery under deliberate abuse:
//!
//! * a SYN flood against a bounded listener — drops are *counted*
//!   (`tcp.syn_drops`), the listener keeps serving, nothing panics,
//! * connection churn — TIME_WAIT quarantine expires, socket slots and
//!   ports are recycled (`tcp.time_wait_reaped` / `tcp.slots_reaped`),
//!   the socket table returns to its baseline size,
//! * overload — requests beyond the in-flight budget are shed with
//!   `B\n` instead of queueing without bound, connections beyond the
//!   accept budget are refused fast, and the fleet still finishes,
//! * a [`DimmCrash`](OutageKind::DimmCrash) that never heals — the
//!   half-open connections it leaves behind are reaped by TCP
//!   keepalive (`tcp.keepalive_giveups`), not leaked,
//! * the full chaos mix under `run_parallel` — byte-identical
//!   full-registry snapshots at 1 and 2 threads, including the shared
//!   [`ServeReport`] (whose fields are all commutative by contract).

use std::net::Ipv4Addr;
use std::sync::Arc;

use bytes::Bytes;
use mcn::{
    ComponentExt, McnConfig, McnRack, McnSystem, MetricSink, MetricsSnapshot, SystemConfig,
};
use mcn_net::tcp::{TcpConfig, TcpState};
use mcn_net::{
    EthernetFrame, IpProto, Ipv4Packet, MacAddr, NetConfig, NetStack, SockId, TcpFlags, TcpSegment,
};
use mcn_node::{Poll, ProcCtx, Process, Wake};
use mcn_serve::{
    parse_request, Backend, KvClient, KvClientConfig, KvServer, KvServerConfig, ReplicaMap,
    Request, ResilientClientConfig, ResilientKvClient, ServeReport,
};
use mcn_sim::{OutageKind, OutagePlan, SimTime};
use parking_lot::Mutex;

// ---------------------------------------------------------------------------
// Stack-level harness (public API only): two nodes on one zero-latency wire.

const IP_A: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
const IP_B: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

fn stack_pair() -> (NetStack, NetStack) {
    let mut a = NetStack::new(TcpConfig::default());
    let mut b = NetStack::new(TcpConfig::default());
    a.add_interface(NetConfig::ethernet(MacAddr::from_id(1), IP_A));
    b.add_interface(NetConfig::ethernet(MacAddr::from_id(2), IP_B));
    let mask = Ipv4Addr::new(255, 255, 255, 0);
    a.add_route(IP_B, mask, 0, None);
    b.add_route(IP_A, mask, 0, None);
    a.add_neighbor(IP_B, MacAddr::from_id(2));
    b.add_neighbor(IP_A, MacAddr::from_id(1));
    (a, b)
}

/// Moves all queued frames both ways; returns true if anything moved.
fn shuttle(a: &mut NetStack, b: &mut NetStack, now: SimTime) -> bool {
    let mut moved = false;
    while let Some(f) = a.poll_output(0) {
        b.on_frame(0, f, now);
        moved = true;
    }
    while let Some(f) = b.poll_output(0) {
        a.on_frame(0, f, now);
        moved = true;
    }
    moved
}

/// Shuttles until quiescent, advancing to the next stack timer when the
/// wire goes idle (so TIME_WAIT / keepalive / rto clocks actually run).
fn settle(a: &mut NetStack, b: &mut NetStack, now: &mut SimTime) {
    for _ in 0..5000 {
        if !shuttle(a, b, *now) {
            let t = [a.next_timer(), b.next_timer()].into_iter().flatten().min();
            match t {
                Some(t) => {
                    *now = (*now).max(t);
                    a.on_timer(*now);
                    b.on_timer(*now);
                }
                None => break,
            }
        }
    }
}

/// Crafts a bare SYN as it would arrive off the wire — the attacker's
/// packet, not a socket: nothing on the sending side remembers it.
fn spoofed_syn(sport: u16, dport: u16, ident: u16) -> EthernetFrame {
    let seg = TcpSegment {
        src_port: sport,
        dst_port: dport,
        seq: 1,
        ack: 0,
        flags: TcpFlags::SYN,
        window: 65535,
        mss: Some(1460),
        wscale: Some(7),
        payload: Bytes::new(),
        checksum_ok: true,
    };
    let pkt = Ipv4Packet::new(
        IP_A,
        IP_B,
        IpProto::Tcp,
        ident,
        Bytes::from(seg.encode(IP_A, IP_B, true)),
    );
    EthernetFrame::ipv4(
        MacAddr::from_id(2), // dst: the victim
        MacAddr::from_id(1),
        Bytes::from(pkt.encode()),
    )
}

#[test]
fn syn_flood_leaves_listener_serving_within_backlog_bounds() {
    let (mut a, mut b) = stack_pair();
    let mut now = SimTime::ZERO;
    let lst = b.tcp_listen_with_backlog(80, 4, 64).unwrap();

    // 24 spoofed SYNs from distinct source ports: 4 fill the SYN backlog,
    // the remaining 20 are dropped silently — counted, never panicking,
    // and never allocating state (classic SYN-flood posture).
    for i in 0..24u16 {
        b.on_frame(0, spoofed_syn(41_000 + i, 80, i), now);
    }
    assert_eq!(b.stats.syn_drops.get(), 20);

    // The counter is wired through the metrics registry under the path
    // the bench/CI tooling reads.
    let mut sink = MetricSink::new();
    sink.absorb("victim", &b);
    let snap = sink.finish();
    assert_eq!(snap.get_u64("victim.tcp.syn_drops"), 20);

    // Let the flood resolve: the SYN-ACKs go to a host that never opened
    // those connections, so it RSTs them and the embryonic entries die.
    settle(&mut a, &mut b, &mut now);

    // The listener must still serve a legitimate client afterwards. The
    // four embryonic connections the flood left in the accept queue died
    // to the spoofed host's RSTs; `tcp_accept` must prune those corpses
    // (reclaiming their slots) and hand out the real connection.
    let cs = a.tcp_connect(IP_B, 80, now).unwrap();
    settle(&mut a, &mut b, &mut now);
    assert_eq!(a.tcp_state(cs), TcpState::Established);
    let ss = b.tcp_accept(lst).expect("listener accepts after the flood");
    assert_eq!(b.tcp_state(ss), TcpState::Established);
    assert_eq!(b.stats.accept_prunes.get(), 4, "flood corpses pruned at accept");
    a.tcp_send(cs, b"still serving", now).unwrap();
    settle(&mut a, &mut b, &mut now);
    let mut buf = [0u8; 64];
    let n = b.tcp_recv(ss, &mut buf, now).unwrap();
    assert_eq!(&buf[..n], b"still serving");
    assert_eq!(b.stats.syn_drops.get(), 20, "no drops after the flood ended");
    assert_eq!(
        b.socket_states().len(),
        2,
        "victim holds exactly the listener and the served connection"
    );
}

// ---------------------------------------------------------------------------
// KV-on-DIMM harness.

/// One MCN system with a [`KvServer`] on DIMM 0 and the given client
/// fleet on the host, all reporting into `report`.
fn kv_system(
    server_cfg: KvServerConfig,
    clients: Vec<KvClientConfig>,
    report: &Arc<Mutex<ServeReport>>,
) -> McnSystem {
    let mut sys = McnSystem::new(&SystemConfig::default(), 1, McnConfig::level(3));
    sys.spawn_dimm(0, Box::new(KvServer::new(server_cfg, report.clone())), 0);
    for (i, cfg) in clients.into_iter().enumerate() {
        sys.spawn_host(Box::new(KvClient::new(cfg, report.clone())), i % 2);
    }
    sys
}

#[test]
fn kv_churn_reaps_time_wait_and_recycles_slots() {
    let report = ServeReport::shared(SimTime::from_us(500));
    let mut sys = McnSystem::new(&SystemConfig::default(), 1, McnConfig::level(3));
    let dimm = sys.dimm_ip(0);
    sys.spawn_dimm(
        0,
        Box::new(KvServer::new(KvServerConfig::default(), report.clone())),
        0,
    );
    // Staggered short-lived clients: connect, a handful of requests,
    // close — the churny end of a memcached front line. Each close walks
    // the full active-close lifecycle on the host (FIN → TIME_WAIT →
    // 2MSL expiry) and the passive close on the DIMM.
    const CLIENTS: u64 = 12;
    for i in 0..CLIENTS {
        sys.spawn_host(
            Box::new(KvClient::new(
                KvClientConfig {
                    server: dimm,
                    seed: 0x1000 + i,
                    n_requests: 8,
                    mean_gap: SimTime::from_us(10),
                    set_pct: 25,
                    start_at: SimTime::from_us(300 * i),
                    ..KvClientConfig::default()
                },
                report.clone(),
            )),
            (i % 2) as usize,
        );
    }
    sys.run_until(SimTime::from_ms(25));

    let rep = report.lock();
    assert_eq!(rep.completed_clients, CLIENTS);
    assert_eq!(rep.conn_failures, 0);
    assert!(rep.ok > 0, "some GET/SET traffic must have succeeded");
    assert_eq!(rep.latency.count(), rep.ok + rep.miss);
    drop(rep);

    // Lifecycle hygiene: every churned connection's slot was recycled on
    // both ends — TIME_WAIT expiry on the active closer (host), clean
    // LAST_ACK close on the passive closer (DIMM) — and the socket
    // tables are back to baseline (empty host, listener-only DIMM).
    let snap = MetricsSnapshot::collect(&sys);
    assert_eq!(snap.get_u64("host.stack.tcp.time_wait_reaped"), CLIENTS);
    assert_eq!(snap.get_u64("host.stack.tcp.slots_reaped"), CLIENTS);
    assert_eq!(snap.get_u64("dimm0.stack.tcp.slots_reaped"), CLIENTS);
    assert_eq!(snap.get_u64("dimm0.stack.tcp.time_wait_reaped"), 0);
    assert!(sys.host.stack.socket_states().is_empty(), "host leaked sockets");
    assert_eq!(
        sys.dimm_mut(0).node.stack.socket_states().len(),
        1,
        "DIMM should hold exactly the listener"
    );
}

#[test]
fn overload_sheds_requests_and_connections_instead_of_collapsing() {
    // A deliberately tiny server (2 connections, 2 requests in flight)
    // against 6 aggressive pipelining clients. Layered admission control
    // must shed — `B\n` for excess requests, RST/drop for excess
    // connections — and the fleet must still run to completion.
    let report = ServeReport::shared(SimTime::from_us(500));
    let server = KvServerConfig {
        syn_backlog: 64,
        accept_backlog: 2,
        max_conns: 2,
        inflight_budget: 2,
        ..KvServerConfig::default()
    };
    let clients = (0..6)
        .map(|i| KvClientConfig {
            server: Ipv4Addr::UNSPECIFIED, // patched below
            seed: 0x51 + i,
            n_requests: 40,
            mean_gap: SimTime::from_us(2),
            pipeline: 16,
            val_len: 1024,
            set_pct: 25,
            reconnect_backoff: SimTime::from_us(50),
            ..KvClientConfig::default()
        })
        .collect::<Vec<_>>();
    let mut sys = kv_system(server, Vec::new(), &report);
    let dimm = sys.dimm_ip(0);
    for (i, mut cfg) in clients.into_iter().enumerate() {
        cfg.server = dimm;
        sys.spawn_host(Box::new(KvClient::new(cfg, report.clone())), i % 2);
    }
    sys.run_until(SimTime::from_ms(60));

    let snap = MetricsSnapshot::collect(&sys);
    let rep = report.lock();
    assert_eq!(rep.completed_clients, 6, "overloaded fleet must still finish");
    assert!(rep.ok > 0, "the server must serve *something* while shedding");
    assert!(rep.busy > 0, "clients must observe B\\n rejections");
    assert!(
        rep.shed_requests >= rep.busy,
        "server-side shed count covers every observed rejection"
    );
    assert!(
        rep.shed_conns + snap.get_u64("dimm0.stack.tcp.accept_overflows") > 0,
        "connection-level admission control must have fired"
    );
}

#[test]
fn dimm_crash_half_open_connections_are_reaped_by_keepalive() {
    // Two clients finish their budgets and linger on idle connections;
    // then the DIMM crashes and never comes back. Nothing will ever send
    // a FIN or RST for those connections — only keepalive can tell the
    // hosts their peer is gone. Without it, the sockets leak forever.
    let report = ServeReport::shared(SimTime::from_us(500));
    let clients = (0..2)
        .map(|i| KvClientConfig {
            server: Ipv4Addr::UNSPECIFIED, // patched below
            seed: 7 + i,
            n_requests: 5,
            mean_gap: SimTime::from_us(10),
            linger: true,
            keepalive: Some((SimTime::from_ms(2), SimTime::from_us(500), 3)),
            ..KvClientConfig::default()
        })
        .collect::<Vec<_>>();
    let mut sys = kv_system(KvServerConfig::default(), Vec::new(), &report);
    let dimm = sys.dimm_ip(0);
    for (i, mut cfg) in clients.into_iter().enumerate() {
        cfg.server = dimm;
        sys.spawn_host(Box::new(KvClient::new(cfg, report.clone())), i % 2);
    }
    let mut plan = OutagePlan::new(0xDEAD);
    plan.at(
        &McnSystem::dimm_outage_component(0, 0),
        SimTime::from_ms(2),
        OutageKind::DimmCrash {
            down_for: SimTime::from_secs(5), // never returns within the run
        },
    );
    sys.set_outage_plan(&plan);
    sys.run_until(SimTime::from_ms(30));

    let snap = MetricsSnapshot::collect(&sys);
    assert_eq!(
        snap.get_u64("host.stack.tcp.keepalive_giveups"),
        2,
        "both half-open connections must be declared dead"
    );
    assert!(
        snap.get_u64("host.stack.tcp.keepalive_probes_out") >= 6,
        "each connection gets its full probe budget before giving up"
    );
    let rep = report.lock();
    assert_eq!(rep.conn_failures, 2, "both clients must report the reap");
    assert_eq!(rep.completed_clients, 2, "lingering clients still terminate");
    assert!(
        sys.host.stack.socket_states().is_empty(),
        "reaped connections must not leak host socket slots"
    );
}

#[test]
fn chaos_mix_serving_is_thread_count_invariant() {
    // The full serving tier — 2 servers x 2 DIMMs, a KV server per DIMM,
    // a client fleet per host — with a DIMM crash-and-reboot and a ToR
    // switch partition landing mid-traffic. The determinism contract:
    // same seed, same final clock and byte-identical full-registry
    // snapshot (including the shared ServeReport, whose fields are all
    // commutative) at any run_parallel thread count.
    let mut plan = OutagePlan::new(0xC0DE);
    plan.at(
        &McnRack::dimm_outage_component(1, 0),
        SimTime::from_us(800),
        OutageKind::DimmCrash {
            down_for: SimTime::from_ms(5),
        },
    );
    plan.at(
        McnRack::SWITCH_OUTAGE_COMPONENT,
        SimTime::from_ms(1),
        OutageKind::SwitchPartition {
            groups: vec![vec![0], vec![1]],
            heal_at: SimTime::from_ms(3),
        },
    );

    let run = |threads: usize| {
        let report = ServeReport::shared(SimTime::from_us(500));
        let mut rack = McnRack::new(&SystemConfig::default(), 2, 2, McnConfig::level(3));
        for s in 0..2 {
            for d in 0..2 {
                rack.spawn_dimm(
                    s,
                    d,
                    Box::new(KvServer::new(KvServerConfig::default(), report.clone())),
                    0,
                );
            }
        }
        for s in 0..2 {
            for d in 0..2 {
                let ip = rack.server(s).dimm_ip(d);
                rack.spawn_host(
                    s,
                    Box::new(KvClient::new(
                        KvClientConfig {
                            server: ip,
                            seed: 0xA0 + (s * 2 + d) as u64,
                            n_requests: 30,
                            mean_gap: SimTime::from_us(20),
                            set_pct: 20,
                            keepalive: Some((SimTime::from_ms(2), SimTime::from_us(500), 3)),
                            ..KvClientConfig::default()
                        },
                        report.clone(),
                    )),
                    d,
                );
            }
        }
        rack.set_outage_plan(&plan);
        // KvServer is a daemon — it never reports Done — so the run ends
        // at the deadline (or earlier quiescence), and `run_parallel`'s
        // all-procs-done flag is deliberately not asserted here.
        rack.run_parallel(SimTime::from_ms(200), threads);
        let mut sink = MetricSink::new();
        sink.absorb("root", &rack);
        sink.absorb("serve", &*report.lock());
        let rep = report.lock();
        (rack.now(), sink.finish().to_json(), rep.ok, rep.completed_clients)
    };

    let serial = run(1);
    let threaded = run(2);
    assert_eq!(
        (&serial.0, &serial.1),
        (&threaded.0, &threaded.1),
        "2-thread chaos serving run diverged from serial"
    );
    // The comparison only means something if the chaos and the serving
    // actually happened.
    assert!(serial.1.contains("\"root.rack.partitions\": 1"));
    assert!(serial.1.contains("crashes\": 1"));
    assert!(serial.2 > 0, "KV traffic must have been served");
    // All four clients terminate: three serve their full budget, and the
    // one whose DIMM crashed fails *cleanly* — keepalive declares the
    // half-open connection dead instead of letting the client hang.
    assert_eq!(serial.3, 4, "every client must finish despite the chaos");
    assert!(serial.1.contains("\"root.srv1.host.stack.tcp.keepalive_giveups\": 1"));
}

// ---------------------------------------------------------------------------
// Resilient replicated serving (ISSUE 8).

/// A KV server that accepts connections but reads *nothing* until
/// `resume_at`: its receive buffer fills and TCP advertises a zero window
/// to the fleet. After `resume_at` it drains and answers normally — the
/// stall was backpressure, never death.
struct StallServer {
    port: u16,
    resume_at: SimTime,
    lst: Option<SockId>,
    conns: Vec<(SockId, Vec<u8>)>,
}

impl StallServer {
    fn new(port: u16, resume_at: SimTime) -> Self {
        StallServer {
            port,
            resume_at,
            lst: None,
            conns: Vec::new(),
        }
    }
}

impl Process for StallServer {
    fn poll(&mut self, ctx: &mut ProcCtx<'_>) -> Poll {
        let lst = *self.lst.get_or_insert_with(|| ctx.tcp_listen(self.port));
        while let Some(s) = ctx.tcp_accept(lst) {
            self.conns.push((s, Vec::new()));
        }
        let mut wakes = vec![Wake::Sock(lst)];
        if ctx.now < self.resume_at {
            // Stall phase: the stack keeps ACKing (it buffers what fits),
            // but the application never reads, so the advertised window
            // shrinks to zero and the senders must wait on persist probes.
            wakes.push(Wake::Timer(self.resume_at));
            return Poll::Wait(wakes);
        }
        let mut buf = [0u8; 65536];
        self.conns.retain_mut(|(s, pending)| {
            loop {
                let n = ctx.tcp_recv(*s, &mut buf);
                if n == 0 {
                    break;
                }
                pending.extend_from_slice(&buf[..n]);
            }
            while let Some((req, used)) = parse_request(pending) {
                pending.drain(..used);
                match req {
                    Request::Set { .. } => ctx.tcp_send(*s, b"K\n"),
                    Request::Get { .. } => ctx.tcp_send(*s, b"M\n"),
                };
            }
            if ctx.tcp_at_eof(*s) || ctx.tcp_failed(*s) {
                ctx.tcp_close(*s);
                false
            } else {
                true
            }
        });
        for (s, _) in &self.conns {
            wakes.push(Wake::Sock(*s));
        }
        Poll::Wait(wakes)
    }

    fn name(&self) -> &str {
        "stall-server"
    }
}

#[test]
fn zero_window_stall_waits_on_persist_probes_without_spurious_failover() {
    // A stalled-but-alive server is the failure-detection trap: it stops
    // answering (looks dead to a naive timeout) while its stack still
    // ACKs (is provably alive). The resilient client must classify it as
    // backpressure — wait on TCP persist probing, spend no retry budget,
    // open no breaker, fail over to nobody — and complete once the
    // server drains.
    let report = ServeReport::shared(SimTime::from_us(500));
    let mut sys = McnSystem::new(&SystemConfig::default(), 1, McnConfig::level(3));
    let dimm_ip = sys.dimm_ip(0);
    sys.spawn_dimm(
        0,
        Box::new(StallServer::new(7000, SimTime::from_ms(300))),
        0,
    );
    let map = ReplicaMap::new(
        vec![Backend {
            addr: dimm_ip,
            port: 7000,
            domain: "riser0".into(),
            rack: 0,
        }],
        1,
        1,
    )
    .expect("placement");
    let mut cfg = ResilientClientConfig::new(map);
    cfg.seed = 0x5A;
    cfg.n_requests = 8;
    cfg.mean_gap = SimTime::from_us(20);
    cfg.keyspace = 8;
    cfg.set_pct = 100; // writes: big payloads that fill the stalled buffer
    cfg.val_len = 60_000;
    cfg.pipeline = 8;
    cfg.hedge_delay = None;
    // The stall (300 ms) far exceeds the soft timeout (2 ms): without the
    // zero-window suppression every request would burn its whole retry
    // budget against the only replica. The hard deadline must outlive the
    // stall, or the requests are *correctly* abandoned.
    cfg.give_up_after = SimTime::from_ms(600);
    sys.spawn_host(Box::new(ResilientKvClient::new(cfg, report.clone())), 0);
    sys.run_until(SimTime::from_ms(800));

    let snap = MetricsSnapshot::collect(&sys);
    assert!(
        snap.get_u64("host.stack.tcp.zero_window_stalls") >= 1,
        "the stall must have closed the advertised window"
    );
    assert!(
        snap.get_u64("host.stack.tcp.persist_probes_out") >= 1,
        "the stall must be carried by persist probes"
    );
    assert_eq!(
        snap.get_u64("host.stack.tcp.rto_giveups"),
        0,
        "backpressure must never be declared a dead peer"
    );
    let rep = report.lock();
    assert_eq!(rep.completed_clients, 1, "the client must finish");
    assert_eq!(
        rep.failovers, 0,
        "zero-window backpressure must not be mistaken for a dead backend"
    );
    assert_eq!(rep.breaker_opens, 0, "no breaker may open on backpressure");
    assert_eq!(rep.retry_budget_spent, 0, "no retry tokens spent");
    assert_eq!(rep.gave_up, 0, "every request completes after the drain");
    assert_eq!(rep.conn_failures, 0, "the connection never died");
    assert_eq!(
        rep.issued,
        rep.latency.count(),
        "accounting identity: everything issued was answered"
    );
}

#[test]
fn replicated_failover_is_thread_count_invariant() {
    // The full resilient tier — R=2 replication across two DIMM-riser
    // failure domains, hedging and non-hedging clients, a mid-run domain
    // crash — must produce a byte-identical full-registry snapshot at 1,
    // 2 and 4 threads, with failover provably engaged and no request
    // lost silently. Hedges, retries and breaker probes all draw on
    // per-client seeded RNGs and window-boundary outage application, so
    // thread count must be unobservable.
    let riser = |s: usize| format!("riser{s}");
    let mut plan = OutagePlan::new(0xFA11);
    for s in 0..2 {
        plan.define_domain(
            &riser(s),
            &[
                &McnRack::dimm_outage_component(s, 0),
                &McnRack::dimm_outage_component(s, 1),
            ],
        );
    }
    plan.at(
        &riser(0),
        SimTime::from_ms(2),
        OutageKind::DomainDown {
            down_for: SimTime::from_ms(4),
        },
    );

    let run = |threads: usize| {
        let report = ServeReport::shared(SimTime::from_us(500));
        report
            .lock()
            .set_fault_window(SimTime::from_ms(2), SimTime::from_ms(6));
        let mut rack = McnRack::new(&SystemConfig::default(), 2, 2, McnConfig::level(3));
        let mut backends = Vec::new();
        for s in 0..2 {
            for d in 0..2 {
                rack.spawn_dimm(
                    s,
                    d,
                    Box::new(KvServer::new(KvServerConfig::default(), report.clone())),
                    0,
                );
                backends.push(Backend {
                    addr: rack.server(s).dimm_ip(d),
                    port: 11211,
                    domain: riser(s),
                    rack: 0,
                });
            }
        }
        let map = ReplicaMap::new(backends, 8, 2).expect("placement");
        for s in 0..2 {
            for c in 0..2u64 {
                let i = s as u64 * 2 + c;
                let mut cfg = ResilientClientConfig::new(map.clone());
                cfg.seed = 0xF00 + i;
                cfg.n_requests = 120;
                cfg.mean_gap = SimTime::from_us(40);
                cfg.keyspace = 256;
                cfg.set_pct = 20;
                cfg.retry_budget = 32;
                cfg.retry_earn_tenths = 5;
                if i % 2 == 1 {
                    cfg.hedge_delay = None;
                }
                rack.spawn_host(
                    s,
                    Box::new(ResilientKvClient::new(cfg, report.clone())),
                    (c % 2) as usize,
                );
            }
        }
        rack.set_outage_plan(&plan);
        rack.run_parallel(SimTime::from_ms(40), threads);
        let mut sink = MetricSink::new();
        sink.absorb("root", &rack);
        sink.absorb("serve", &*report.lock());
        let rep = report.lock();
        (
            rack.now(),
            sink.finish().to_json(),
            rep.failovers,
            rep.issued,
            rep.latency.count() + rep.gave_up,
        )
    };

    let serial = run(1);
    for threads in [2, 4] {
        let threaded = run(threads);
        assert_eq!(
            (&serial.0, &serial.1),
            (&threaded.0, &threaded.1),
            "{threads}-thread replicated failover run diverged from serial"
        );
    }
    assert!(
        serial.2 > 0,
        "the domain crash must have engaged failover (serve.failovers)"
    );
    assert_eq!(
        serial.3, serial.4,
        "silent request loss: issued != answered + gave_up"
    );
    assert!(
        serial.1.contains("\"root.rack.outage.domain.riser0.crashes\": 1"),
        "the domain crash must be visible in the snapshot"
    );
    assert!(
        serial.1.contains("\"root.rack.outage.domain.riser0.heals\": 1"),
        "the domain heal must be visible in the snapshot"
    );
}
