//! The paper's central claim: application transparency. The *same*
//! unmodified rank programs run on a scale-up server, an MCN-enabled
//! server, and a 10GbE cluster, and produce numerically verified results
//! on all three. Failure injection on the Ethernet baseline checks that
//! correctness does not depend on a clean wire.

use mcn::{ComponentExt, EthernetCluster, McnConfig, McnSystem, SystemConfig};
use mcn_mpi::placement::{spawn_on_cluster, spawn_on_mcn};
use mcn_mpi::{CommPattern, WorkloadSpec};
use mcn_sim::SimTime;

fn spec(comm: CommPattern) -> WorkloadSpec {
    WorkloadSpec {
        name: "transparency",
        suite: "test",
        iterations: 2,
        mem_bytes_per_iter: 2 << 20,
        read_frac: 0.7,
        random_access: false,
        compute_ns_per_iter: 40_000,
        comm,
    }
}

#[test]
fn same_program_three_systems() {
    for comm in [
        CommPattern::AllReduce { elems: 256 },
        CommPattern::AllToAll { total_bytes: 64 * 1024 },
    ] {
        let w = spec(comm);
        // Scale-up (loopback).
        let mut sys = McnSystem::new(&SystemConfig::default(), 0, McnConfig::level(0));
        let r = spawn_on_mcn(&mut sys, w, 4, 0, 1);
        assert!(sys.run_until_procs_done(SimTime::from_secs(20)), "{comm:?} scale-up");
        assert!(r.lock().verified, "{comm:?} scale-up verification");

        // MCN server.
        let mut sys = McnSystem::new(&SystemConfig::default(), 2, McnConfig::level(4));
        let r = spawn_on_mcn(&mut sys, w, 2, 1, 1);
        assert!(sys.run_until_procs_done(SimTime::from_secs(20)), "{comm:?} mcn");
        assert!(r.lock().verified, "{comm:?} mcn verification");

        // 10GbE cluster.
        let mut c = EthernetCluster::new(&SystemConfig::default(), 2);
        let r = spawn_on_cluster(&mut c, w, 2, 1);
        assert!(c.run_until_procs_done(SimTime::from_secs(20)), "{comm:?} cluster");
        assert!(r.lock().verified, "{comm:?} cluster verification");
    }
}

#[test]
fn cluster_workload_survives_packet_loss_and_corruption() {
    // MPI over a dirty wire: TCP absorbs the damage, the allreduce result
    // still verifies exactly. (On MCN the channel is ECC-protected; on
    // Ethernet this is why checksums/FCS exist — paper Sec. IV-A.)
    let w = spec(CommPattern::AllReduce { elems: 512 });
    let mut c = EthernetCluster::new(&SystemConfig::default(), 3);
    // Only ~20 frames cross this uplink during the exchange, so the rates
    // are high enough that the seeded stream provably fires on them.
    c.impair_uplink(1, 0.2, 0.05, 1234);
    let r = spawn_on_cluster(&mut c, w, 1, 5);
    assert!(
        c.run_until_procs_done(SimTime::from_secs(25)),
        "stalled at {} under loss",
        c.now()
    );
    assert!(r.lock().verified, "loss must not corrupt results");
    // The impairment must actually have bitten: the link counted what it
    // injected, and the endpoints show the recovery work.
    let injected = c.uplink(1).dropped.get() + c.uplink(1).corrupted.get();
    assert!(injected > 0, "the impaired link never fired a fault");
    let drops: u64 = (0..3).map(|i| c.node(i).nic.fcs_drops.get()).sum();
    let retransmits: u64 = (0..3)
        .map(|i| c.node(i).node.stack.tcp_totals().retransmits)
        .sum();
    assert!(
        drops + retransmits > 0,
        "impairments should be visible (drops {drops}, rtx {retransmits})"
    );
}

#[test]
fn mixed_placement_all_npb_signatures_run_on_mcn() {
    // Every NPB signature completes and verifies on an MCN server
    // (miniaturised: fewer bytes, fewer iterations via the real specs'
    // structure but a smaller communicator).
    for base in WorkloadSpec::npb() {
        let w = WorkloadSpec {
            iterations: 1,
            mem_bytes_per_iter: base.mem_bytes_per_iter / 8,
            compute_ns_per_iter: base.compute_ns_per_iter / 8,
            ..base
        };
        let mut sys = McnSystem::new(&SystemConfig::default(), 2, McnConfig::level(3));
        let r = spawn_on_mcn(&mut sys, w, 2, 1, 3);
        assert!(
            sys.run_until_procs_done(SimTime::from_secs(20)),
            "{} stalled at {}",
            w.name,
            sys.now()
        );
        let rep = r.lock();
        assert!(rep.verified, "{} verification", w.name);
        assert!(rep.completion().is_some());
    }
}

#[test]
fn mpi_allreduce_across_rack_of_mcn_servers() {
    // The abstract's unification claim end-to-end: one MPI job whose ranks
    // live on the hosts and DIMMs of *two different MCN servers*; traffic
    // crosses SRAM rings, host forwarding engines, the conventional NICs
    // and the ToR switch — and the allreduce still verifies numerically.
    use mcn::McnRack;
    use mcn_mpi::{MpiRank, RankProgram, WorkloadReport};

    let mut rack = McnRack::new(&SystemConfig::default(), 2, 1, McnConfig::level(3));
    let peers = vec![
        rack.server(0).host_rank_ip(),
        rack.server(0).dimm_ip(0),
        rack.server(1).host_rank_ip(),
        rack.server(1).dimm_ip(0),
    ];
    let size = peers.len();
    let w = spec(CommPattern::AllReduce { elems: 128 });
    let report = WorkloadReport::shared(size);
    let mk = |rank: usize| {
        RankProgram::new(
            MpiRank::new(rank, size, peers.clone(), 40_000),
            w,
            (8u64 << 30) + rank as u64 * (128 << 20),
            7,
            report.clone(),
        )
    };
    rack.spawn_host(0, Box::new(mk(0)), 0);
    rack.spawn_dimm(0, 0, Box::new(mk(1)), 1);
    rack.spawn_host(1, Box::new(mk(2)), 0);
    rack.spawn_dimm(1, 0, Box::new(mk(3)), 1);
    assert!(
        rack.run_until_procs_done(SimTime::from_secs(30)),
        "rack-wide MPI stalled at {}",
        rack.now()
    );
    let r = report.lock();
    assert!(r.verified, "allreduce across the rack must verify");
    assert!(r.completion().is_some());
    // The wire was genuinely used.
    assert!(rack.server(0).hdrv.stats.f4_external.get() > 0);
}

#[test]
fn mapreduce_wordcount_verifies_on_mcn() {
    // A real computation (not a signature): map → shuffle → reduce with
    // bit-exact verification against a recomputed ground truth.
    use mcn_mpi::mapreduce::{MapReduceReport, MapReduceWorker};
    use mcn_mpi::MpiRank;

    let mut sys = McnSystem::new(&SystemConfig::default(), 2, McnConfig::level(4));
    let peers = vec![sys.host_rank_ip(), sys.dimm_ip(0), sys.dimm_ip(1)];
    let size = peers.len();
    let report = MapReduceReport::shared(size);
    for rank in 0..size {
        let w = MapReduceWorker::new(
            MpiRank::new(rank, size, peers.clone(), 42_000),
            99,
            30_000,
            (8u64 << 30) + rank as u64 * (128 << 20),
            report.clone(),
        );
        if rank == 0 {
            sys.spawn_host(Box::new(w), 0);
        } else {
            sys.spawn_dimm(rank - 1, Box::new(w), 1);
        }
    }
    assert!(
        sys.run_until_procs_done(SimTime::from_secs(10)),
        "wordcount stalled at {}",
        sys.now()
    );
    let r = report.lock();
    assert!(r.verified, "reduced partitions must match ground truth");
    assert!(r.distinct_words > 0);
}
