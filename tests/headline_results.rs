//! Cross-crate integration tests asserting the *directions* of the paper's
//! headline results at test-friendly scales (the full-size numbers come
//! from the `fig*` binaries in `mcn-bench`).

use mcn::{ComponentExt, EthernetCluster, McnConfig, McnSystem, SystemConfig};
use mcn_mpi::placement::spawn_on_mcn;
use mcn_mpi::{IperfClient, IperfReport, IperfServer, PingReport, Pinger, WorkloadSpec};
use mcn_sim::fault::{FaultKind, FaultPlan};
use mcn_sim::SimTime;

const BYTES: u64 = 1 << 20;

/// Aggregate iperf goodput of an MCN server with `dimms` clients at `level`.
fn mcn_iperf(level: u32, dimms: usize) -> f64 {
    let mut sys = McnSystem::new(&SystemConfig::default(), dimms, McnConfig::level(level));
    let srv = IperfReport::shared();
    sys.spawn_host(
        Box::new(IperfServer::new(5001, dimms, SimTime::from_ms(1), srv.clone())),
        0,
    );
    let dst = sys.host_rank_ip();
    for d in 0..dimms {
        sys.spawn_dimm(
            d,
            Box::new(IperfClient::new(dst, 5001, BYTES, IperfReport::shared())),
            1,
        );
    }
    assert!(
        sys.run_until_procs_done(SimTime::from_secs(5)),
        "iperf mcn{level} stalled at {}",
        sys.now()
    );
    let g = srv.lock().meter.gbps();
    g
}

fn eth_iperf(clients: usize) -> f64 {
    let mut c = EthernetCluster::new(&SystemConfig::default(), clients + 1);
    let srv = IperfReport::shared();
    c.spawn(
        0,
        Box::new(IperfServer::new(5001, clients, SimTime::from_ms(1), srv.clone())),
        0,
    );
    for i in 0..clients {
        c.spawn(
            i + 1,
            Box::new(IperfClient::new(
                EthernetCluster::ip_of(0),
                5001,
                BYTES,
                IperfReport::shared(),
            )),
            1,
        );
    }
    assert!(c.run_until_procs_done(SimTime::from_secs(5)));
    let g = srv.lock().meter.gbps();
    g
}

#[test]
fn optimised_mcn_beats_10gbe_bandwidth() {
    // Fig 8(a) headline: the optimised MCN far exceeds 10GbE; even the
    // 2-client miniature should clear the wire rate comfortably at mcn5.
    let eth = eth_iperf(2);
    let mcn5 = mcn_iperf(5, 2);
    assert!(
        mcn5 > 1.5 * eth,
        "mcn5 ({mcn5:.2} Gbps) should dominate 10GbE ({eth:.2} Gbps)"
    );
}

#[test]
fn optimisation_levels_are_ordered() {
    // Monotone gains across the big steps of Table I.
    let g0 = mcn_iperf(0, 2);
    let g3 = mcn_iperf(3, 2);
    let g5 = mcn_iperf(5, 2);
    assert!(g3 > 1.3 * g0, "jumbo MTU should be a large gain: {g0:.2} -> {g3:.2}");
    assert!(g5 >= g3 * 0.95, "mcn5 should not regress: {g3:.2} -> {g5:.2}");
}

#[test]
fn mcn_ping_latency_beats_10gbe() {
    // Fig 8(b): "MCN significantly reduces the latency between the nodes".
    let mut c = EthernetCluster::new(&SystemConfig::default(), 2);
    let rep = PingReport::shared();
    c.spawn(
        0,
        Box::new(Pinger::new(EthernetCluster::ip_of(1), 56, 10, 1, rep.clone())),
        1,
    );
    assert!(c.run_until_procs_done(SimTime::from_ms(100)));
    let eth_rtt = rep.lock().rtts.mean().unwrap();

    for level in [0u32, 1, 5] {
        let mut sys = McnSystem::new(&SystemConfig::default(), 1, McnConfig::level(level));
        let rep = PingReport::shared();
        let dst = sys.dimm_ip(0);
        sys.spawn_host(Box::new(Pinger::new(dst, 56, 10, 1, rep.clone())), 0);
        assert!(sys.run_until_procs_done(SimTime::from_ms(100)));
        let rtt = rep.lock().rtts.mean().unwrap();
        assert!(
            rtt.as_ns_f64() < 0.6 * eth_rtt.as_ns_f64(),
            "mcn{level} RTT {rtt} should be well below 10GbE {eth_rtt}"
        );
    }
}

#[test]
fn aggregate_bandwidth_scales_with_dimms() {
    // Fig 9 mechanism: each DIMM brings private local channels.
    let spec = WorkloadSpec {
        name: "bwtest",
        suite: "test",
        iterations: 2,
        mem_bytes_per_iter: 48 << 20,
        read_frac: 0.8,
        random_access: false,
        compute_ns_per_iter: 10_000,
        comm: mcn_mpi::CommPattern::AllReduce { elems: 8 },
    };
    let run = |dimms: usize| -> f64 {
        let mut sys = McnSystem::new(&SystemConfig::default(), dimms, McnConfig::level(3));
        let report = spawn_on_mcn(&mut sys, spec, 4, if dimms > 0 { 3 } else { 0 }, 1);
        assert!(sys.run_until_procs_done(SimTime::from_secs(20)));
        let done = report.lock().completion().unwrap();
        let bytes: u64 = sys.host.mem.total_bytes()
            + (0..dimms).map(|d| sys.dimm(d).node.mem.total_bytes()).sum::<u64>();
        assert!(report.lock().verified);
        bytes as f64 / done.as_secs_f64()
    };
    let conv = run(0);
    let two = run(2);
    let four = run(4);
    assert!(two > 1.2 * conv, "2 DIMMs: {:.1} vs {:.1} GB/s", two / 1e9, conv / 1e9);
    assert!(four > two, "4 DIMMs {:.1} should beat 2 {:.1}", four / 1e9, two / 1e9);
}

#[test]
fn whole_system_runs_are_deterministic() {
    let run = || {
        let g = mcn_iperf(2, 2);
        let mut sys = McnSystem::new(&SystemConfig::default(), 2, McnConfig::level(2));
        let rep = PingReport::shared();
        let dst = sys.dimm_ip(1);
        sys.spawn_host(Box::new(Pinger::new(dst, 128, 5, 9, rep.clone())), 2);
        assert!(sys.run_until_procs_done(SimTime::from_ms(50)));
        let rtt = rep.lock().rtts.mean().unwrap();
        (g.to_bits(), rtt)
    };
    assert_eq!(run(), run(), "same seed, same wiring => identical results");
}

/// Every observable counter of a system in one string, for byte-exact
/// golden-trace comparison across runs.
fn trace_snapshot(sys: &McnSystem) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    writeln!(s, "now={}", sys.now()).unwrap();
    writeln!(s, "hdrv={:?}", sys.hdrv.stats).unwrap();
    writeln!(
        s,
        "host: busy={:?} mem_bytes={} tcp={:?} frames_in={}",
        sys.host.cpus.total_busy(),
        sys.host.mem.total_bytes(),
        sys.host.stack.tcp_totals(),
        sys.host.stack.stats.frames_in.get(),
    )
    .unwrap();
    for d in 0..sys.dimms() {
        let dimm = sys.dimm(d);
        writeln!(
            s,
            "dimm{d}: busy={:?} mem_bytes={} tcp={:?} frames_in={}",
            dimm.node.cpus.total_busy(),
            dimm.node.mem.total_bytes(),
            dimm.node.stack.tcp_totals(),
            dimm.node.stack.stats.frames_in.get(),
        )
        .unwrap();
    }
    s
}

#[test]
fn golden_trace_is_reproducible_under_faults() {
    // The engine refactor must not cost reproducibility: the dirty-list
    // order and the wakeup index are deterministic, so a fig9-style mixed
    // workload (iperf streams + an MPI allreduce) under an active fault
    // plan must produce byte-identical counter traces and the same final
    // simulated time on every run.
    let run = || {
        let mut plan = FaultPlan::new(0xC0FFEE);
        plan.rate(&McnSystem::sram_host_fault_component(0, 0), FaultKind::Drop, 0.02);
        plan.rate(&McnSystem::alert_fault_component(0), FaultKind::Drop, 0.10);
        plan.rate(&McnSystem::dma_fault_component(0), FaultKind::Stall, 0.01);
        let mut sys =
            McnSystem::with_faults(&SystemConfig::default(), 2, McnConfig::level(3), &plan);

        // Phase 1: iperf from both DIMMs into the host.
        let srv = IperfReport::shared();
        sys.spawn_host(
            Box::new(IperfServer::new(5001, 2, SimTime::from_ms(1), srv.clone())),
            0,
        );
        let dst = sys.host_rank_ip();
        for d in 0..2 {
            sys.spawn_dimm(
                d,
                Box::new(IperfClient::new(dst, 5001, 256 << 10, IperfReport::shared())),
                1,
            );
        }
        assert!(
            sys.run_until_procs_done(SimTime::from_secs(5)),
            "golden iperf stalled\n{}",
            sys.stall_report("golden iperf")
        );

        // Phase 2: a small MPI allreduce across host + DIMM ranks.
        let spec = WorkloadSpec {
            name: "golden",
            suite: "test",
            iterations: 2,
            mem_bytes_per_iter: 4 << 20,
            read_frac: 0.8,
            random_access: false,
            compute_ns_per_iter: 5_000,
            comm: mcn_mpi::CommPattern::AllReduce { elems: 16 },
        };
        let report = spawn_on_mcn(&mut sys, spec, 2, 1, 7);
        assert!(
            sys.run_until_procs_done(SimTime::from_secs(20)),
            "golden allreduce stalled\n{}",
            sys.stall_report("golden allreduce")
        );
        assert!(report.lock().verified, "allreduce must verify");

        trace_snapshot(&sys)
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "same seed and wiring must give a byte-identical trace");
}

#[test]
fn energy_model_tracks_runtime_and_hardware() {
    // Fig 10 mechanism: an MCN server has no NIC/switch power and mobile
    // cores; at equal core counts and equal elapsed time its power floor
    // is lower than the cluster's.
    let p = mcn_energy::PowerParams::default();
    let sys = McnSystem::new(&SystemConfig::default(), 2, McnConfig::level(3));
    let c = EthernetCluster::new(&SystemConfig::default(), 2);
    let t = SimTime::from_ms(10);
    let e_mcn = mcn_energy::mcn_system_energy(&p, &sys, t);
    let e_cl = mcn_energy::cluster_energy(&p, &c, t);
    assert!(
        e_mcn.total() < e_cl.total(),
        "idle floor: MCN {} vs cluster {}",
        e_mcn,
        e_cl
    );
}
