//! Fault-injection integration tests: the full MCN data path (iperf and an
//! MPI collective) under seeded frame loss, ECC-escape corruption, dropped
//! ALERT_N edges and stalled MCN-DMA transfers. The runs must complete
//! with byte-correct payloads, every injected fault must be visible in a
//! counter, every recovery mechanism must show work done — and the whole
//! ordeal must be bit-reproducible from the plan's seed.

use bytes::Bytes;
use mcn::{ComponentExt, McnConfig, McnSystem, SystemConfig};
use mcn_mpi::placement::spawn_on_mcn;
use mcn_mpi::{IperfClient, IperfReport, IperfServer, WorkloadSpec};
use mcn_sim::fault::{FaultKind, FaultPlan};
use mcn_sim::SimTime;

/// All optimisations on *except* checksum bypassing, so the stacks verify
/// what the fault injector corrupts (the ECC-escape experiment of
/// EXPERIMENTS.md runs the bypassing variant).
fn checked_cfg() -> McnConfig {
    McnConfig {
        alert_interrupt: true,
        checksum_bypass: false,
        jumbo_mtu: true,
        tso: true,
        dma: true,
    }
}

/// Like [`checked_cfg`] but at the conventional MTU without TSO: each TCP
/// segment is its own SRAM push, so per-frame fault rates mean what they
/// do on a real wire and fast retransmit (not RTO backoff) drives loss
/// recovery.
fn checked_wire_cfg() -> McnConfig {
    McnConfig {
        jumbo_mtu: false,
        tso: false,
        ..checked_cfg()
    }
}

/// The stress plan: ~1% frame loss and ~0.5% ECC-escape corruption on both
/// SRAM ring directions, a quarter of all ALERT_N edges lost, and ~2% of
/// MCN-DMA transfers stalling.
fn stress_plan(seed: u64) -> FaultPlan {
    let mut plan = FaultPlan::new(seed);
    for comp in [
        McnSystem::sram_host_fault_component(0, 0),
        McnSystem::sram_dimm_fault_component(0, 0),
    ] {
        plan.rate(&comp, FaultKind::Drop, 0.01);
        plan.rate(&comp, FaultKind::BitFlip, 0.005);
    }
    plan.rate(&McnSystem::alert_fault_component(0), FaultKind::Drop, 0.25);
    plan.rate(&McnSystem::dma_fault_component(0), FaultKind::Stall, 0.02);
    plan
}

const IPERF_BYTES: u64 = 2 << 20;

/// Runs the iperf scenario under `plan` and returns the system for
/// counter inspection, plus the server's byte count.
fn run_iperf(plan: &FaultPlan) -> (McnSystem, u64) {
    let mut sys = McnSystem::with_faults(&SystemConfig::default(), 1, checked_wire_cfg(), plan);
    let srv = IperfReport::shared();
    // Zero warmup: the meter must account every payload byte, because the
    // test asserts exact byte-completeness under loss.
    sys.spawn_host(
        Box::new(IperfServer::new(5001, 1, SimTime::ZERO, srv.clone())),
        0,
    );
    let dst = sys.host_rank_ip();
    sys.spawn_dimm(
        0,
        Box::new(IperfClient::new(dst, 5001, IPERF_BYTES, IperfReport::shared())),
        1,
    );
    assert!(
        sys.run_until_procs_done(SimTime::from_secs(30)),
        "iperf under faults must finish\n{}",
        sys.stall_report("faulted iperf stalled")
    );
    let bytes = {
        let s = srv.lock();
        assert!(s.done, "server must see the stream end");
        s.meter.bytes()
    };
    (sys, bytes)
}

#[test]
fn iperf_stream_survives_injected_faults_intact() {
    let (sys, bytes) = run_iperf(&stress_plan(0xFA_57));

    // TCP must deliver every byte exactly once despite drops and flips.
    assert_eq!(bytes, IPERF_BYTES, "stream must be byte-complete");

    // Every fault class was actually injected...
    let h = &sys.hdrv.stats;
    let d = &sys.dimm(0).stats;
    let injected_sram = h.frames_dropped.get()
        + h.ecc_escapes.get()
        + d.frames_dropped.get()
        + d.ecc_escapes.get();
    assert!(injected_sram > 0, "no SRAM faults fired; weaken the plan check");
    assert!(h.alerts_dropped.get() > 0, "no ALERT_N drops fired");
    assert!(h.dma_stalls.get() > 0, "no DMA stalls fired");

    // ...and every recovery mechanism did work.
    assert!(
        h.fallback_polls.get() > 0,
        "fallback poller must arm when alert faults are active"
    );
    assert!(
        h.alert_recoveries.get() > 0,
        "dropped alerts must be recovered by the fallback poller"
    );
    assert!(
        h.dma_retries.get() > 0,
        "stalled DMA transfers must be retried by the watchdog"
    );

    // Corrupted frames were *caught*, not delivered: with checksum
    // verification on, flips surface as checksum drops (or as malformed
    // headers) on whichever stack received them.
    let caught = sys.host.stack.stats.drop_checksum.get()
        + sys.host.stack.stats.malformed.get()
        + sys.dimm(0).node.stack.stats.drop_checksum.get()
        + sys.dimm(0).node.stack.stats.malformed.get()
        + h.malformed.get()
        + d.malformed.get();
    let flips = h.ecc_escapes.get() + d.ecc_escapes.get();
    assert!(
        flips == 0 || caught > 0,
        "{flips} bit flips escaped the checksums unnoticed"
    );
}

#[test]
fn mpi_collective_verifies_under_injected_faults() {
    let plan = stress_plan(0xC0_11);
    let mut sys = McnSystem::with_faults(&SystemConfig::default(), 1, checked_cfg(), &plan);
    let spec = WorkloadSpec {
        name: "fault-allreduce",
        suite: "test",
        iterations: 2,
        mem_bytes_per_iter: 1 << 20,
        read_frac: 0.8,
        random_access: false,
        compute_ns_per_iter: 50_000,
        comm: mcn_mpi::CommPattern::AllReduce { elems: 64 },
    };
    let report = spawn_on_mcn(&mut sys, spec, 2, 2, 42);
    assert!(
        sys.run_until_procs_done(SimTime::from_secs(10)),
        "collective under faults must finish\n{}",
        sys.stall_report("faulted allreduce stalled")
    );
    let r = report.lock();
    assert!(
        r.verified,
        "allreduce results must be numerically exact under faults"
    );
    assert!(r.completion().is_some());
}

#[test]
fn direct_udp_payloads_cross_faulty_rings_byte_identical() {
    // UDP has no retransmission: datagrams either arrive exactly as sent
    // (checksum-verified) or are dropped and counted. No third outcome.
    let plan = stress_plan(0xBEEF);
    let mut sys = McnSystem::with_faults(&SystemConfig::default(), 1, checked_cfg(), &plan);
    let dimm_ip = sys.dimm_ip(0);
    let ud = sys.dimm_mut(0).node.stack.udp_bind(6000).unwrap();
    let us = sys.host.stack.udp_bind(5000).unwrap();
    let sent = 60u64;
    for i in 0..sent {
        let now = sys.now();
        let payload: Vec<u8> = (0..700u32).map(|j| (j as u64 * 31 + i) as u8).collect();
        sys.host
            .stack
            .udp_send(us, dimm_ip, 6000, Bytes::from(payload), now)
            .unwrap();
        sys.run_until(now + SimTime::from_us(50));
    }
    sys.run_until(sys.now() + SimTime::from_ms(1));
    let mut delivered = 0u64;
    while let Some((_, _, data)) = sys.dimm_mut(0).node.stack.udp_recv(ud) {
        assert_eq!(data.len(), 700);
        let i = u64::from(data[0]); // j=0 term: payload[0] = i as u8
        for (j, &b) in data.iter().enumerate() {
            assert_eq!(
                u64::from(b),
                (j as u64 * 31 + i) & 0xFF,
                "datagram {i} corrupted at byte {j}"
            );
        }
        delivered += 1;
    }
    assert!(delivered > 0, "some datagrams must survive");
    assert!(
        delivered < sent || sys.hdrv.stats.frames_dropped.get() == 0,
        "drops must be reflected in delivery"
    );
}

#[test]
fn checksum_bypass_lets_ecc_escapes_reach_the_application() {
    // The contrast case for EXPERIMENTS.md: `mcn2`'s checksum bypassing is
    // safe *because* the memory channel is ECC-protected. Inject ECC
    // escapes (which real ECC would catch) with verification bypassed and
    // corrupted payloads reach the application silently — the measured
    // rationale for why bypassing leans on the channel's ECC.
    let mut plan = FaultPlan::new(0x5EED);
    plan.rate(
        &McnSystem::sram_host_fault_component(0, 0),
        FaultKind::BitFlip,
        0.4,
    );
    let cfg = McnConfig {
        checksum_bypass: true,
        ..checked_wire_cfg()
    };
    let mut sys = McnSystem::with_faults(&SystemConfig::default(), 1, cfg, &plan);
    let dimm_ip = sys.dimm_ip(0);
    let ud = sys.dimm_mut(0).node.stack.udp_bind(6000).unwrap();
    let us = sys.host.stack.udp_bind(5000).unwrap();
    for _ in 0..40 {
        let now = sys.now();
        sys.host
            .stack
            .udp_send(us, dimm_ip, 6000, Bytes::from(vec![0x55u8; 700]), now)
            .unwrap();
        sys.run_until(now + SimTime::from_us(50));
    }
    sys.run_until(sys.now() + SimTime::from_ms(1));
    assert!(sys.hdrv.stats.ecc_escapes.get() > 0, "no flips injected");
    let mut corrupted = 0;
    while let Some((_, _, data)) = sys.dimm_mut(0).node.stack.udp_recv(ud) {
        if data.iter().any(|&b| b != 0x55) {
            corrupted += 1;
        }
    }
    assert!(
        corrupted > 0,
        "with checksums bypassed, some ECC escapes must surface as \
         corrupted application payloads"
    );
    assert_eq!(
        sys.dimm(0).node.stack.stats.drop_checksum.get(),
        0,
        "bypassing means nothing is checksum-verified on receive"
    );
}

#[test]
fn same_seed_reproduces_the_same_faulted_run() {
    let fingerprint = || {
        let (sys, bytes) = run_iperf(&stress_plan(0xFA_57));
        let h = &sys.hdrv.stats;
        let d = &sys.dimm(0).stats;
        (
            bytes,
            sys.now(),
            h.frames_dropped.get(),
            h.ecc_escapes.get(),
            h.alerts_dropped.get(),
            h.dma_stalls.get(),
            h.dma_retries.get(),
            h.dma_fallbacks.get(),
            h.fallback_polls.get(),
            h.alert_recoveries.get(),
            d.frames_dropped.get(),
            d.ecc_escapes.get(),
        )
    };
    assert_eq!(
        fingerprint(),
        fingerprint(),
        "one seed, one history: faulted runs must be deterministic"
    );
}

#[test]
fn different_seeds_draw_different_fault_histories() {
    let (a, _) = run_iperf(&stress_plan(1));
    let (b, _) = run_iperf(&stress_plan(2));
    let sig = |s: &McnSystem| {
        (
            s.hdrv.stats.frames_dropped.get(),
            s.hdrv.stats.ecc_escapes.get(),
            s.hdrv.stats.alerts_dropped.get(),
            s.hdrv.stats.dma_stalls.get(),
            s.now(),
        )
    };
    assert_ne!(sig(&a), sig(&b), "distinct seeds should perturb the run");
}
