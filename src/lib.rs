//! Facade crate: re-exports the MCN reproduction workspace crates.
#![forbid(unsafe_code)]
pub use mcn;
pub use mcn_dram as dram;
pub use mcn_energy as energy;
pub use mcn_mpi as mpi;
pub use mcn_net as net;
pub use mcn_node as node;
pub use mcn_serve as serve;
pub use mcn_sim as sim;
