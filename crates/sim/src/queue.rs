//! Time-ordered event queue.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

use crate::SimTime;

/// Handle to a scheduled event, used to cancel it before it fires.
///
/// Returned by [`EventQueue::schedule_cancellable`]. Handles are unique per
/// queue for the lifetime of the queue (a monotonically increasing sequence
/// number), so a stale handle never cancels a different event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventHandle(u64);

/// A deterministic, time-ordered event queue.
///
/// * Events fire in nondecreasing time order.
/// * Events scheduled for the **same** timestamp fire in the order they were
///   scheduled (stable FIFO) — crucial for reproducibility, since hash-order
///   or heap-order ties would make runs non-deterministic.
/// * Events can be cancelled via the handle returned by
///   [`schedule_cancellable`](Self::schedule_cancellable); cancellation is
///   O(1) (tombstoning) and cancelled events are skipped on pop.
///
/// The payload type `E` is chosen by the system crate driving the queue;
/// this kernel imposes no actor or component model.
///
/// ```
/// use mcn_sim::{EventQueue, SimTime};
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_ns(2), "b");
/// q.schedule(SimTime::from_ns(1), "a");
/// q.schedule(SimTime::from_ns(2), "c"); // same time as "b": FIFO
/// let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
/// assert_eq!(order, ["a", "b", "c"]);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    next_seq: u64,
    cancelled: HashSet<u64>,
    /// Seqs of cancellable events still in the heap; only events created via
    /// `schedule_cancellable` pay this bookkeeping cost.
    live_cancellable: HashSet<u64>,
    now: SimTime,
    popped: u64,
}

/// Below this many tombstones compaction is not worth the heap rebuild.
const COMPACT_MIN: usize = 64;

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time.cmp(&other.time).then(self.seq.cmp(&other.seq))
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue positioned at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            cancelled: HashSet::new(),
            live_cancellable: HashSet::new(),
            now: SimTime::ZERO,
            popped: 0,
        }
    }

    /// The timestamp of the most recently popped event (time zero before the
    /// first pop). The simulation's notion of "now".
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events delivered so far (excluding cancelled ones).
    #[inline]
    pub fn delivered(&self) -> u64 {
        self.popped
    }

    /// Schedules `payload` to fire at absolute time `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than [`now`](Self::now): scheduling into
    /// the past is always a model bug and silently reordering it would
    /// corrupt causality.
    pub fn schedule(&mut self, time: SimTime, payload: E) {
        assert!(
            time >= self.now,
            "event scheduled in the past: {} < now {}",
            time,
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry { time, seq, payload }));
    }

    /// Schedules `payload` to fire `delay` after [`now`](Self::now).
    pub fn schedule_in(&mut self, delay: SimTime, payload: E) {
        self.schedule(self.now + delay, payload);
    }

    /// Schedules a cancellable event; see [`cancel`](Self::cancel).
    pub fn schedule_cancellable(&mut self, time: SimTime, payload: E) -> EventHandle {
        let handle = EventHandle(self.next_seq);
        self.schedule(time, payload);
        self.live_cancellable.insert(handle.0);
        handle
    }

    /// Cancels a previously scheduled event. Returns `true` if the event had
    /// not yet fired (and is now guaranteed never to fire), `false` if it
    /// already fired or was already cancelled.
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        if !self.live_cancellable.remove(&handle.0) {
            return false; // already fired, already cancelled, or bogus
        }
        let fresh = self.cancelled.insert(handle.0);
        // Tombstoned entries occupy the heap until their timestamp comes
        // up; under schedule/cancel churn (the engine's wakeup index
        // reschedules deadlines constantly) that would grow without bound.
        // Compact once tombstones outnumber live events.
        if self.cancelled.len() > COMPACT_MIN && self.cancelled.len() > self.heap.len() / 2 {
            self.compact();
        }
        fresh
    }

    /// Rebuilds the heap without tombstoned entries. O(n); amortised away
    /// by the growth trigger in [`cancel`](Self::cancel).
    fn compact(&mut self) {
        let entries = std::mem::take(&mut self.heap).into_vec();
        self.heap = entries
            .into_iter()
            .filter(|Reverse(e)| !self.cancelled.remove(&e.seq))
            .collect();
        debug_assert!(
            self.cancelled.is_empty(),
            "every tombstone names a heap entry"
        );
    }

    /// Number of tombstoned (cancelled, not yet reclaimed) heap entries.
    /// Bounded by `max(COMPACT_MIN, live events)` thanks to the compaction
    /// trigger in [`cancel`](Self::cancel).
    pub fn tombstones(&self) -> usize {
        self.cancelled.len()
    }

    /// Removes and returns the next event `(time, payload)`, advancing
    /// [`now`](Self::now) to its timestamp. Cancelled events are skipped.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(Reverse(entry)) = self.heap.pop() {
            if self.cancelled.remove(&entry.seq) {
                continue;
            }
            self.live_cancellable.remove(&entry.seq);
            self.now = entry.time;
            self.popped += 1;
            return Some((entry.time, entry.payload));
        }
        None
    }

    /// Pops the next event only if it is due at or before `deadline`.
    /// The standard shape of every drain loop
    /// (`while let Some((t, e)) = q.pop_if_due(now) { … }`) without the
    /// separate peek/pop dance.
    pub fn pop_if_due(&mut self, deadline: SimTime) -> Option<(SimTime, E)> {
        if self.peek_time()? <= deadline {
            self.pop()
        } else {
            None
        }
    }

    /// The timestamp of the next live event without removing it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(Reverse(entry)) = self.heap.peek() {
            if self.cancelled.contains(&entry.seq) {
                let seq = entry.seq;
                self.heap.pop();
                self.cancelled.remove(&seq);
                continue;
            }
            return Some(entry.time);
        }
        None
    }

    /// Number of live (non-cancelled) events still queued.
    pub fn len(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    /// `true` when no live events remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(30), 3);
        q.schedule(SimTime::from_ns(10), 1);
        q.schedule(SimTime::from_ns(20), 2);
        assert_eq!(q.pop(), Some((SimTime::from_ns(10), 1)));
        assert_eq!(q.pop(), Some((SimTime::from_ns(20), 2)));
        assert_eq!(q.pop(), Some((SimTime::from_ns(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn pop_if_due_respects_the_deadline() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(10), 1);
        q.schedule(SimTime::from_ns(30), 3);
        assert_eq!(q.pop_if_due(SimTime::from_ns(5)), None);
        assert_eq!(q.pop_if_due(SimTime::from_ns(10)), Some((SimTime::from_ns(10), 1)));
        assert_eq!(q.pop_if_due(SimTime::from_ns(20)), None, "future events stay queued");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop_if_due(SimTime::MAX), Some((SimTime::from_ns(30), 3)));
        assert_eq!(q.pop_if_due(SimTime::MAX), None);
    }

    #[test]
    fn fifo_tiebreak_at_equal_times() {
        let mut q = EventQueue::new();
        let t = SimTime::from_ns(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn now_advances_and_schedule_in() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(10), "a");
        q.pop();
        assert_eq!(q.now(), SimTime::from_ns(10));
        q.schedule_in(SimTime::from_ns(5), "b");
        assert_eq!(q.pop(), Some((SimTime::from_ns(15), "b")));
        assert_eq!(q.delivered(), 2);
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(10), ());
        q.pop();
        q.schedule(SimTime::from_ns(5), ());
    }

    #[test]
    fn cancellation() {
        let mut q = EventQueue::new();
        let h1 = q.schedule_cancellable(SimTime::from_ns(1), 1);
        let h2 = q.schedule_cancellable(SimTime::from_ns(2), 2);
        q.schedule(SimTime::from_ns(3), 3);
        assert!(q.cancel(h2));
        assert!(!q.cancel(h2), "double cancel reports false");
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some((SimTime::from_ns(1), 1)));
        assert!(!q.cancel(h1), "cancelling a fired event reports false");
        assert_eq!(q.pop(), Some((SimTime::from_ns(3), 3)));
        assert!(q.is_empty());
    }

    #[test]
    fn peek_skips_cancelled() {
        let mut q = EventQueue::new();
        let h = q.schedule_cancellable(SimTime::from_ns(1), 1);
        q.schedule(SimTime::from_ns(2), 2);
        q.cancel(h);
        assert_eq!(q.peek_time(), Some(SimTime::from_ns(2)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn bogus_handle_is_rejected() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventHandle(42)));
    }

    #[test]
    fn tombstones_stay_bounded_under_schedule_cancel_churn() {
        // The wakeup-index pattern: perpetually reschedule a handful of
        // deadlines that never (or rarely) fire. Without compaction the
        // heap and the cancelled set both grow linearly with churn.
        let mut q = EventQueue::new();
        let mut handles: Vec<Option<EventHandle>> = vec![None; 8];
        for k in 0..50_000u64 {
            let id = (k % 8) as usize;
            if let Some(h) = handles[id].take() {
                q.cancel(h);
            }
            handles[id] = Some(q.schedule_cancellable(SimTime::from_ns(1_000_000 + k), id));
            if k % 1000 == 999 {
                // Occasionally consume an event, as a real run would.
                let (_, id) = q.pop().expect("eight live events exist");
                handles[id] = None;
            }
        }
        let live = handles.iter().flatten().count();
        assert_eq!(q.len(), live);
        assert!(
            q.tombstones() <= COMPACT_MIN.max(q.len()),
            "tombstones {} exceed bound (live {})",
            q.tombstones(),
            q.len()
        );
        // The heap itself is also bounded: live entries + tombstones.
        assert!(q.heap.len() <= q.len() + q.tombstones());
        // Everything still pops in order with correct payloads.
        let mut last = q.now();
        while let Some((t, _)) = q.pop() {
            assert!(t >= last);
            last = t;
        }
    }

    #[test]
    fn compaction_preserves_live_events_and_order() {
        let mut q = EventQueue::new();
        let mut keep = Vec::new();
        for i in 0..300u64 {
            let h = q.schedule_cancellable(SimTime::from_ns(1000 - (i % 500)), i);
            if i % 3 == 0 {
                keep.push((1000 - (i % 500), i));
            } else {
                q.cancel(h); // drives repeated compactions
            }
        }
        assert_eq!(q.len(), keep.len());
        keep.sort(); // time, then schedule (seq) order — matches FIFO ties
        let popped: Vec<(u64, u64)> = std::iter::from_fn(|| q.pop())
            .map(|(t, v)| (t.as_ns(), v))
            .collect();
        assert_eq!(popped, keep);
    }
}
