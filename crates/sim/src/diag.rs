//! Stall diagnostics.
//!
//! Simulation drive loops of the form `while !procs_done { advance() }`
//! guard against livelock with iteration counters. When such a guard
//! trips, a bare `assert!` hides everything a person needs to debug the
//! hang: which processes are blocked, what state their sockets are in,
//! how full the SRAM rings are. A [`StallReport`] collects that state as
//! titled sections of lines and renders it as one readable block, so the
//! guard can `panic!("{report}")` (or a test can print it) instead of
//! "advance did not converge".
//!
//! ```
//! use mcn_sim::StallReport;
//!
//! let mut r = StallReport::new("transfer stalled at 1.5 ms");
//! r.line("sockets", "sock1 tcp Established in_flight=1448 rtx_at=2.1ms");
//! r.line("rings", "dimm0: tx_used=12 rx_used=0");
//! let text = r.to_string();
//! assert!(text.contains("=== transfer stalled at 1.5 ms ==="));
//! assert!(text.contains("[sockets]"));
//! assert!(text.contains("rtx_at=2.1ms"));
//! ```

use std::fmt;

/// A structured snapshot of why a simulation appears stalled.
///
/// Build with [`new`](StallReport::new), append lines into named sections
/// with [`line`](StallReport::line), and render via `Display`. Sections
/// appear in first-insertion order; empty reports still render the title
/// so a guard never panics with an empty message.
#[derive(Debug, Clone)]
pub struct StallReport {
    title: String,
    sections: Vec<(String, Vec<String>)>,
}

impl StallReport {
    /// An empty report with a headline (e.g. `"cluster advance stalled"`).
    pub fn new(title: impl Into<String>) -> Self {
        StallReport {
            title: title.into(),
            sections: Vec::new(),
        }
    }

    /// Appends one line under `section`, creating the section on first use.
    pub fn line(&mut self, section: &str, text: impl Into<String>) -> &mut Self {
        match self.sections.iter_mut().find(|(s, _)| s == section) {
            Some((_, lines)) => lines.push(text.into()),
            None => self.sections.push((section.to_string(), vec![text.into()])),
        }
        self
    }

    /// Folds another report's sections into this one, prefixing each
    /// section name with `prefix` (e.g. `"srv0."`). The other report's
    /// title is dropped — the composite keeps its own headline. Lets a
    /// rack or cluster aggregate per-server reports into one block.
    pub fn absorb(&mut self, prefix: &str, other: &StallReport) -> &mut Self {
        for (section, lines) in &other.sections {
            let name = format!("{prefix}{section}");
            for l in lines {
                self.line(&name, l.clone());
            }
        }
        self
    }

    /// True if no lines have been recorded (only the title would render).
    pub fn is_empty(&self) -> bool {
        self.sections.is_empty()
    }

    /// Number of lines across all sections.
    pub fn len(&self) -> usize {
        self.sections.iter().map(|(_, l)| l.len()).sum()
    }
}

impl fmt::Display for StallReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "=== {} ===", self.title)?;
        for (section, lines) in &self.sections {
            writeln!(f, "[{section}]")?;
            for line in lines {
                writeln!(f, "  {line}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_sections_in_insertion_order() {
        let mut r = StallReport::new("system stalled");
        r.line("procs", "rank0: Waiting([Recv])")
            .line("rings", "dimm0 tx: 12/160KiB")
            .line("procs", "rank1: Ready");
        let s = r.to_string();
        assert!(s.starts_with("=== system stalled ==="));
        let procs_at = s.find("[procs]").unwrap();
        let rings_at = s.find("[rings]").unwrap();
        assert!(procs_at < rings_at);
        assert!(s.contains("  rank1: Ready"));
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn absorb_prefixes_sections_and_keeps_own_title() {
        let mut inner = StallReport::new("srv0 stalled");
        inner.line("procs", "rank0: Ready");
        let mut outer = StallReport::new("rack stalled");
        outer.absorb("srv0.", &inner);
        let s = outer.to_string();
        assert!(s.starts_with("=== rack stalled ==="));
        assert!(s.contains("[srv0.procs]"));
        assert!(s.contains("  rank0: Ready"));
        assert!(!s.contains("srv0 stalled"));
    }

    #[test]
    fn empty_report_still_has_a_headline() {
        let r = StallReport::new("idle");
        assert!(r.is_empty());
        assert!(r.to_string().contains("idle"));
    }
}
