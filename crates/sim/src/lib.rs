//! # mcn-sim — discrete-event simulation kernel
//!
//! Substrate crate for the Memory Channel Network (MCN) reproduction. It
//! provides the pieces every other crate in the workspace builds on:
//!
//! * [`SimTime`] — simulated time as integer picoseconds (fine enough for
//!   DDR4-3200 command timing, wide enough for hours of simulated time),
//! * [`EventQueue`] — a time-ordered event queue with stable FIFO ordering
//!   for simultaneous events and O(log n) scheduling,
//! * [`DetRng`] — a small, fast, fully deterministic random number
//!   generator (xoshiro256++) that can be forked into independent streams,
//! * [`stats`] — counters, rate meters and log-linear histograms used to
//!   collect every number reported in the paper's figures.
//!
//! The kernel is deliberately *passive*: it owns no component registry and
//! forces no actor model. System crates (`mcn`, `mcn-node`) define their own
//! event enums and drive the queue in a plain `while let Some(..) = q.pop()`
//! loop, which keeps components unit-testable as ordinary structs.
//!
//! ```
//! use mcn_sim::{EventQueue, SimTime};
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev { Ping, Pong }
//!
//! let mut q = EventQueue::new();
//! q.schedule(SimTime::from_ns(10), Ev::Pong);
//! q.schedule(SimTime::from_ns(5), Ev::Ping);
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!((t, ev), (SimTime::from_ns(5), Ev::Ping));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod queue;
mod rng;
mod time;

pub mod diag;
pub mod engine;
pub mod fault;
pub mod metrics;
pub mod outage;
pub mod pool;
pub mod shard;
pub mod stats;

pub use diag::StallReport;
pub use engine::{Activity, Component, ComponentExt, Engine, EngineStats, Wakeup, WakeupIndex};
pub use fault::{FaultInjector, FaultKind, FaultPlan};
pub use metrics::{Instrumented, MetricSink, MetricValue, MetricsSnapshot};
pub use outage::{Backoff, FailureDomain, OutageKind, OutagePlan, OutageSchedule};
pub use pool::{FramePool, PoolStats};
pub use shard::{Fabric, Outbox, ParallelEngine, Quantum, RunGoal, RunReport, Shard, ShardStats};
pub use queue::{EventHandle, EventQueue};
pub use rng::DetRng;
pub use time::SimTime;
