//! Shared event-driven simulation engine.
//!
//! Orchestrators used to re-derive "what happens next" by scanning every
//! host, DIMM, NIC and link on every step, then fixed-point-polling all of
//! them inside `advance()`. This module centralises both halves:
//!
//! * [`Component`] / [`ComponentExt`] — the single implementation of
//!   `step` / `run_until` / `run_until_procs_done` shared by every
//!   orchestrator (system, rack, cluster),
//! * [`Wakeup`] — a passive source of pending work (a node, NIC or link)
//!   that reports its earliest internal deadline,
//! * [`WakeupIndex`] — a per-component deadline index backed by
//!   [`EventQueue`] with cancellable handles, so the next event is found in
//!   O(log n) instead of O(components),
//! * [`Engine`] — dirty-list bookkeeping for `advance()`: only components
//!   named on the list (seeded by due wakeups and delivered effects) are
//!   re-polled each convergence round, instead of sweeping everything.
//!
//! Determinism: the wakeup index inherits the queue's stable FIFO ordering
//! for equal timestamps, and the dirty list is a FIFO deduplicated by id,
//! so two runs that deliver the same effects in the same order poll
//! components in the same order. No hash-ordered iteration is involved
//! anywhere on the hot path.
//!
//! A minimal orchestrator is one [`Component`] impl away from the shared
//! drivers:
//!
//! ```
//! use mcn_sim::{Activity, Component, ComponentExt, SimTime};
//!
//! /// Fires every 10 ns until it has ticked 5 times.
//! struct Ticker { now: SimTime, ticks: u32 }
//!
//! impl Component for Ticker {
//!     fn now(&self) -> SimTime { self.now }
//!     fn next_event(&mut self) -> Option<SimTime> {
//!         (self.ticks < 5).then(|| self.now + SimTime::from_ns(10))
//!     }
//!     fn advance(&mut self, t: SimTime) -> Activity {
//!         self.now = t;
//!         self.ticks += 1;
//!         Activity::Active
//!     }
//!     fn procs_done(&self) -> bool { self.ticks >= 5 }
//! }
//!
//! let mut c = Ticker { now: SimTime::ZERO, ticks: 0 };
//! assert!(c.run_until_procs_done(SimTime::from_us(1)));
//! assert_eq!(c.ticks, 5);
//! assert_eq!(c.now(), SimTime::from_ns(50));
//! ```
//!
//! For running the *shards of one orchestrator* on several worker
//! threads (instead of stepping whole orchestrators like this), see
//! [`crate::shard`].

use std::collections::VecDeque;

use crate::metrics::{Instrumented, MetricSink};
use crate::queue::{EventHandle, EventQueue};
use crate::stats::Counter;
use crate::SimTime;

/// What a call to [`Component::advance`] accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activity {
    /// Nothing was due; the component state is unchanged.
    Idle,
    /// At least one event, job or process made progress.
    Active,
}

impl Activity {
    /// Converts the classic `changed` flag.
    #[inline]
    pub fn from_flag(changed: bool) -> Self {
        if changed {
            Activity::Active
        } else {
            Activity::Idle
        }
    }

    /// `true` for [`Activity::Active`].
    #[inline]
    pub fn is_active(self) -> bool {
        matches!(self, Activity::Active)
    }
}

/// A passive source of pending work: something that can say *when* it next
/// needs attention but is advanced by its owner (a node, a NIC pipeline, a
/// link's in-flight frames, TCP retransmit timers).
///
/// `SimTime::ZERO` means "work is ready right now"; drivers clamp it to
/// their own clock.
pub trait Wakeup {
    /// Earliest pending internal deadline, `None` when fully idle.
    fn next_wakeup(&self) -> Option<SimTime>;
}

/// A drivable simulated system: owns a clock, can report its next event
/// and process everything due at a given time.
///
/// The provided run loops live on [`ComponentExt`]; implementors only
/// supply the three primitives (plus [`procs_done`](Component::procs_done)
/// when they host application processes).
pub trait Component {
    /// Current simulated time.
    fn now(&self) -> SimTime;
    /// Earliest pending activity, clamped to [`now`](Component::now);
    /// `None` when fully idle.
    fn next_event(&mut self) -> Option<SimTime>;
    /// Processes everything due at `t` (which must be `>= now`).
    fn advance(&mut self, t: SimTime) -> Activity;
    /// All application processes finished? Components that host none
    /// report `true`.
    fn procs_done(&self) -> bool {
        true
    }

    /// Engine accounting for this component tree: implementors that own
    /// an [`Engine`] push `(its stats, its component count)` — their own
    /// entry first — then recurse into embedded engine-driven children.
    /// The shared [`ComponentExt::engine_stats`] /
    /// [`ComponentExt::poll_accounting`] accessors read this; leaf
    /// components without an engine keep the default no-op.
    fn engine_accounting(&self, out: &mut Vec<(EngineStats, usize)>) {
        let _ = out;
    }
}

/// The one shared implementation of the drive loops. Blanket-implemented
/// for every [`Component`]; orchestrators must not duplicate these.
pub trait ComponentExt: Component {
    /// Advances to the next event; returns `false` when fully idle.
    fn step(&mut self) -> bool {
        let Some(t) = self.next_event() else {
            return false;
        };
        self.advance(t);
        true
    }

    /// Runs until `deadline` (inclusive); the clock ends at `deadline`
    /// even if the system goes idle before it.
    fn run_until(&mut self, deadline: SimTime) {
        loop {
            match self.next_event() {
                Some(t) if t <= deadline => {
                    self.advance(t);
                }
                _ => break,
            }
        }
        if self.now() < deadline {
            self.advance(deadline);
        }
    }

    /// Runs until every spawned process finished or `max` is reached;
    /// returns `true` on completion.
    fn run_until_procs_done(&mut self, max: SimTime) -> bool {
        while !self.procs_done() {
            match self.next_event() {
                Some(t) if t <= max => {
                    self.advance(t);
                }
                _ => return false,
            }
        }
        true
    }

    /// Bounded retry: runs in slices whose lengths follow `backoff` until
    /// `done` holds, returning `false` (instead of hanging or panicking)
    /// once the attempt budget is exhausted. The replacement for ad-hoc
    /// guard-counter loops in tests that wait for a condition under loss.
    fn run_with_backoff<F>(&mut self, backoff: &mut crate::Backoff, mut done: F) -> bool
    where
        F: FnMut(&mut Self) -> bool,
    {
        loop {
            if done(self) {
                return true;
            }
            let Some(delay) = backoff.next_delay() else {
                return false;
            };
            let deadline = self.now() + delay;
            self.run_until(deadline);
        }
    }

    /// This component's own engine work counters (the first
    /// [`Component::engine_accounting`] entry; zeros for engine-less
    /// components). The single implementation of the accessor the
    /// orchestrators used to copy-paste.
    fn engine_stats(&self) -> EngineStats {
        let mut v = Vec::new();
        self.engine_accounting(&mut v);
        v.first().map(|(s, _)| *s).unwrap_or_default()
    }

    /// Poll-efficiency accounting over the whole component tree:
    /// `(actual component polls, scan-equivalent polls)` summed across
    /// every engine reported by [`Component::engine_accounting`]. The
    /// scan-equivalent is what the pre-engine scan-everything loops would
    /// have issued for the same work.
    fn poll_accounting(&self) -> (u64, u64) {
        let mut v = Vec::new();
        self.engine_accounting(&mut v);
        v.iter().fold((0, 0), |(actual, scan), (stats, n)| {
            (
                actual + stats.component_polls.get(),
                scan + stats.scan_equivalent(*n),
            )
        })
    }
}

impl<C: Component + ?Sized> ComponentExt for C {}

/// A per-component deadline index: the earliest wakeup across all
/// components is a heap peek, not a scan.
///
/// Each component id holds at most one entry; [`set`](WakeupIndex::set)
/// cancels the previous entry before scheduling the new one (a no-op when
/// the deadline is unchanged, which is the common case). Deadlines in the
/// past are clamped to the index clock — components report
/// `SimTime::ZERO` for "ready now".
#[derive(Debug)]
pub struct WakeupIndex {
    queue: EventQueue<usize>,
    entries: Vec<Option<(SimTime, EventHandle)>>,
}

impl WakeupIndex {
    /// An index for component ids `0..n`.
    pub fn new(n: usize) -> Self {
        WakeupIndex {
            queue: EventQueue::new(),
            entries: vec![None; n],
        }
    }

    /// Number of component slots.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the index has no component slots.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The deadline currently recorded for `id`.
    pub fn get(&self, id: usize) -> Option<SimTime> {
        self.entries[id].map(|(t, _)| t)
    }

    /// Records `id`'s earliest deadline (`None` = idle), replacing any
    /// previous entry.
    pub fn set(&mut self, id: usize, deadline: Option<SimTime>) {
        let deadline = deadline.map(|t| t.max(self.queue.now()));
        if self.entries[id].map(|(t, _)| t) == deadline {
            return;
        }
        if let Some((_, h)) = self.entries[id].take() {
            self.queue.cancel(h);
        }
        if let Some(t) = deadline {
            let h = self.queue.schedule_cancellable(t, id);
            self.entries[id] = Some((t, h));
        }
    }

    /// Earliest recorded deadline across all components.
    pub fn earliest(&mut self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Pops the next component whose deadline is `<= t`, clearing its
    /// entry (the driver re-records it after advancing the component).
    pub fn pop_due(&mut self, t: SimTime) -> Option<usize> {
        if self.queue.peek_time().is_some_and(|pt| pt <= t) {
            let (_, id) = self.queue.pop().expect("peeked");
            self.entries[id] = None;
            return Some(id);
        }
        None
    }

    /// Tombstoned (cancelled but not yet compacted) entries — exposed so
    /// churn tests can assert boundedness.
    pub fn tombstones(&self) -> usize {
        self.queue.tombstones()
    }
}

/// Counters describing how much work the engine did; the basis of the
/// `BENCH_engine.json` poll-efficiency numbers.
#[derive(Debug, Default, Clone, Copy)]
pub struct EngineStats {
    /// Individual component `advance` polls issued from the dirty list.
    pub component_polls: Counter,
    /// Convergence rounds that performed work.
    pub rounds: Counter,
    /// `advance()` calls on the owning orchestrator.
    pub advances: Counter,
}

impl EngineStats {
    /// Polls the pre-refactor scan-everything loop would have issued for
    /// the same work: every round — plus the final quiescent round of each
    /// `advance` — swept all `n` components.
    pub fn scan_equivalent(&self, n: usize) -> u64 {
        (self.rounds.get() + self.advances.get()) * n as u64
    }
}

impl Instrumented for EngineStats {
    fn metrics(&self, out: &mut MetricSink) {
        out.counter("component_polls", self.component_polls.get());
        out.counter("rounds", self.rounds.get());
        out.counter("advances", self.advances.get());
    }
}

/// Dirty-list bookkeeping for an orchestrator's `advance()` plus the
/// wakeup index feeding its `next_event()`.
///
/// Lifecycle per `advance(t)` call:
///
/// 1. [`begin`](Engine::begin) seeds the dirty list with every component
///    whose indexed wakeup is due at `t`.
/// 2. Each convergence round, [`start_round`](Engine::start_round) makes
///    the marks accumulated so far drainable via
///    [`pop_dirty`](Engine::pop_dirty); delivering an effect to a
///    component marks it dirty for the *next* round, as does a component
///    reporting activity (it may have enabled more of its own work).
/// 3. After convergence, [`drain_touched`](Engine::drain_touched) lists
///    every component whose wakeup entry must be refreshed.
///
/// External mutation (a test poking a component between calls) is handled
/// by [`mark_stale`](Engine::mark_stale): stale entries are re-queried at
/// the next `next_event()`/`advance()` entry point.
#[derive(Debug)]
pub struct Engine {
    index: WakeupIndex,
    /// Drainable this round.
    current: VecDeque<usize>,
    /// Accumulating for the next round.
    next: Vec<usize>,
    queued: Vec<bool>,
    touched_ids: Vec<usize>,
    touched: Vec<bool>,
    stale_ids: Vec<usize>,
    stale: Vec<bool>,
    /// Work counters (public: orchestrators expose them to benches).
    pub stats: EngineStats,
}

impl Engine {
    /// An engine for component ids `0..n`, with every wakeup initially
    /// stale (unknown).
    pub fn new(n: usize) -> Self {
        let mut e = Engine {
            index: WakeupIndex::new(n),
            current: VecDeque::new(),
            next: Vec::new(),
            queued: vec![false; n],
            touched_ids: Vec::new(),
            touched: vec![false; n],
            stale_ids: Vec::new(),
            stale: vec![false; n],
            stats: EngineStats::default(),
        };
        for id in 0..n {
            e.mark_stale(id);
        }
        e
    }

    /// Number of components.
    pub fn components(&self) -> usize {
        self.index.len()
    }

    /// Flags `id`'s cached wakeup as untrustworthy (external mutation).
    pub fn mark_stale(&mut self, id: usize) {
        if !self.stale[id] {
            self.stale[id] = true;
            self.stale_ids.push(id);
        }
    }

    /// Returns (and clears) the set of stale ids; the owner re-queries
    /// each component and calls [`set_wakeup`](Engine::set_wakeup).
    pub fn drain_stale(&mut self) -> Vec<usize> {
        self.drain_stale_into(Vec::new())
    }

    /// Like [`drain_stale`](Self::drain_stale), but recycles `buf`
    /// (cleared) as the new backing storage, so steady-state refresh
    /// loops allocate nothing. The caller hands the returned `Vec` back
    /// on the next call.
    pub fn drain_stale_into(&mut self, mut buf: Vec<usize>) -> Vec<usize> {
        for &id in &self.stale_ids {
            self.stale[id] = false;
        }
        buf.clear();
        std::mem::replace(&mut self.stale_ids, buf)
    }

    /// Records `id`'s earliest deadline in the wakeup index.
    pub fn set_wakeup(&mut self, id: usize, deadline: Option<SimTime>) {
        self.index.set(id, deadline);
    }

    /// Earliest indexed wakeup across all components (O(log n)).
    pub fn earliest(&mut self) -> Option<SimTime> {
        self.index.earliest()
    }

    /// Opens an `advance(t)` call: counts it and seeds the dirty list
    /// from every wakeup due at `t`.
    pub fn begin(&mut self, t: SimTime) {
        self.stats.advances.inc();
        while let Some(id) = self.index.pop_due(t) {
            self.mark_dirty(id);
        }
    }

    /// Marks `id` for (re-)polling in the next round and remembers that
    /// its wakeup needs refreshing.
    pub fn mark_dirty(&mut self, id: usize) {
        self.touch(id);
        if !self.queued[id] {
            self.queued[id] = true;
            self.next.push(id);
        }
    }

    /// Remembers that `id`'s wakeup entry must be refreshed after this
    /// `advance` (without forcing a re-poll).
    pub fn touch(&mut self, id: usize) {
        if !self.touched[id] {
            self.touched[id] = true;
            self.touched_ids.push(id);
        }
    }

    /// Promotes marks accumulated since the last round to the drainable
    /// list; `false` when no component is waiting (the round can only do
    /// effect work).
    pub fn start_round(&mut self) -> bool {
        debug_assert!(self.current.is_empty(), "previous round not drained");
        for &id in &self.next {
            self.queued[id] = false;
        }
        self.current.extend(self.next.drain(..));
        !self.current.is_empty()
    }

    /// Pops the next dirty component of the current round.
    pub fn pop_dirty(&mut self) -> Option<usize> {
        let id = self.current.pop_front()?;
        self.stats.component_polls.inc();
        Some(id)
    }

    /// Counts a convergence round that performed work.
    pub fn note_round(&mut self) {
        self.stats.rounds.inc();
    }

    /// Returns (and clears) every component touched during this
    /// `advance`; the owner refreshes their wakeup index entries.
    pub fn drain_touched(&mut self) -> Vec<usize> {
        self.drain_touched_into(Vec::new())
    }

    /// Like [`drain_touched`](Self::drain_touched), but recycles `buf`
    /// (cleared) as the new backing storage — the allocation-free
    /// variant for the per-advance hot path.
    pub fn drain_touched_into(&mut self, mut buf: Vec<usize>) -> Vec<usize> {
        for &id in &self.touched_ids {
            self.touched[id] = false;
        }
        buf.clear();
        std::mem::replace(&mut self.touched_ids, buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A component that becomes ready every `period` and needs `work`
    /// advances to finish.
    struct Ticker {
        now: SimTime,
        period: SimTime,
        remaining: u32,
        advances: u32,
    }

    impl Component for Ticker {
        fn now(&self) -> SimTime {
            self.now
        }
        fn next_event(&mut self) -> Option<SimTime> {
            (self.remaining > 0).then(|| (self.now + self.period).max(self.now))
        }
        fn advance(&mut self, t: SimTime) -> Activity {
            assert!(t >= self.now);
            let due = self.remaining > 0 && t >= self.now + self.period;
            self.now = t;
            self.advances += 1;
            if due {
                self.remaining -= 1;
                Activity::Active
            } else {
                Activity::Idle
            }
        }
        fn procs_done(&self) -> bool {
            self.remaining == 0
        }
    }

    fn ticker(n: u32) -> Ticker {
        Ticker {
            now: SimTime::ZERO,
            period: SimTime::from_ns(10),
            remaining: n,
            advances: 0,
        }
    }

    #[test]
    fn step_returns_false_when_idle() {
        let mut t = ticker(2);
        assert!(t.step());
        assert!(t.step());
        assert!(!t.step(), "no work left");
        assert_eq!(t.now, SimTime::from_ns(20));
    }

    #[test]
    fn run_until_lands_on_deadline_even_when_idle() {
        let mut t = ticker(1);
        t.run_until(SimTime::from_us(1));
        assert_eq!(t.now, SimTime::from_us(1));
        assert_eq!(t.remaining, 0);
    }

    #[test]
    fn run_until_procs_done_reports_timeout() {
        let mut t = ticker(100);
        assert!(!t.run_until_procs_done(SimTime::from_ns(55)));
        let mut t = ticker(3);
        assert!(t.run_until_procs_done(SimTime::from_us(1)));
        assert_eq!(t.now, SimTime::from_ns(30), "stops at completion");
    }

    #[test]
    fn wakeup_index_tracks_earliest_and_pops_due() {
        let mut ix = WakeupIndex::new(3);
        ix.set(0, Some(SimTime::from_ns(30)));
        ix.set(1, Some(SimTime::from_ns(10)));
        ix.set(2, None);
        assert_eq!(ix.earliest(), Some(SimTime::from_ns(10)));
        // Re-set replaces the old entry.
        ix.set(0, Some(SimTime::from_ns(5)));
        assert_eq!(ix.earliest(), Some(SimTime::from_ns(5)));
        assert_eq!(ix.pop_due(SimTime::from_ns(10)), Some(0));
        assert_eq!(ix.pop_due(SimTime::from_ns(10)), Some(1));
        assert_eq!(ix.pop_due(SimTime::from_ns(10)), None);
        assert_eq!(ix.get(0), None, "popped entries are cleared");
    }

    #[test]
    fn wakeup_index_clamps_past_deadlines() {
        let mut ix = WakeupIndex::new(2);
        ix.set(0, Some(SimTime::from_ns(50)));
        assert_eq!(ix.pop_due(SimTime::from_ns(50)), Some(0));
        // The index clock is now 50 ns; a "ready now" (ZERO) wakeup must
        // not panic the underlying queue.
        ix.set(1, Some(SimTime::ZERO));
        assert_eq!(ix.earliest(), Some(SimTime::from_ns(50)));
    }

    #[test]
    fn engine_dirty_list_dedupes_and_rounds_are_fifo() {
        let mut e = Engine::new(4);
        e.drain_stale();
        e.mark_dirty(2);
        e.mark_dirty(0);
        e.mark_dirty(2); // duplicate
        assert!(e.start_round());
        assert_eq!(e.pop_dirty(), Some(2));
        assert_eq!(e.pop_dirty(), Some(0));
        assert_eq!(e.pop_dirty(), None);
        // Marks during a round accumulate for the next one.
        e.mark_dirty(1);
        assert!(e.start_round());
        assert_eq!(e.pop_dirty(), Some(1));
        assert_eq!(e.pop_dirty(), None);
        assert!(!e.start_round());
        let mut touched = e.drain_touched();
        touched.sort_unstable();
        assert_eq!(touched, vec![0, 1, 2]);
        assert!(e.drain_touched().is_empty());
    }

    #[test]
    fn engine_begin_seeds_from_due_wakeups() {
        let mut e = Engine::new(3);
        e.drain_stale();
        e.set_wakeup(0, Some(SimTime::from_ns(10)));
        e.set_wakeup(1, Some(SimTime::from_ns(99)));
        e.set_wakeup(2, Some(SimTime::from_ns(10)));
        e.begin(SimTime::from_ns(20));
        assert!(e.start_round());
        assert_eq!(e.pop_dirty(), Some(0));
        assert_eq!(e.pop_dirty(), Some(2));
        assert_eq!(e.pop_dirty(), None);
        assert_eq!(e.earliest(), Some(SimTime::from_ns(99)));
        assert_eq!(e.stats.advances.get(), 1);
        assert_eq!(e.stats.component_polls.get(), 2);
    }

    #[test]
    fn engine_starts_with_everything_stale() {
        let mut e = Engine::new(3);
        let mut stale = e.drain_stale();
        stale.sort_unstable();
        assert_eq!(stale, vec![0, 1, 2]);
        assert!(e.drain_stale().is_empty());
        e.mark_stale(1);
        e.mark_stale(1);
        assert_eq!(e.drain_stale(), vec![1]);
    }

    #[test]
    fn hoisted_accounting_sums_nested_engines() {
        /// Two-level tree: an orchestrator with its own engine embedding
        /// one child orchestrator (the system-inside-rack shape).
        struct Nested {
            own: EngineStats,
            child: EngineStats,
        }
        impl Component for Nested {
            fn now(&self) -> SimTime {
                SimTime::ZERO
            }
            fn next_event(&mut self) -> Option<SimTime> {
                None
            }
            fn advance(&mut self, _t: SimTime) -> Activity {
                Activity::Idle
            }
            fn engine_accounting(&self, out: &mut Vec<(EngineStats, usize)>) {
                out.push((self.own, 4));
                out.push((self.child, 2));
            }
        }
        let mut n = Nested {
            own: EngineStats::default(),
            child: EngineStats::default(),
        };
        n.own.component_polls.add(10);
        n.own.rounds.add(3);
        n.own.advances.add(2);
        n.child.component_polls.add(5);
        n.child.rounds.add(1);
        n.child.advances.add(1);
        assert_eq!(n.engine_stats().component_polls.get(), 10, "own entry first");
        let (actual, scan) = n.poll_accounting();
        assert_eq!(actual, 15);
        assert_eq!(scan, (3 + 2) * 4 + (1 + 1) * 2);
        // Engine-less components report zeros, not a panic.
        assert_eq!(ticker(1).poll_accounting(), (0, 0));
        assert_eq!(ticker(1).engine_stats().rounds.get(), 0);
    }

    #[test]
    fn wakeup_index_tombstones_stay_bounded_under_churn() {
        let mut ix = WakeupIndex::new(8);
        for k in 0..10_000u64 {
            let id = (k % 8) as usize;
            ix.set(id, Some(SimTime::from_ns(1000 + k)));
        }
        assert!(
            ix.tombstones() <= 512,
            "tombstones grew to {}",
            ix.tombstones()
        );
    }
}
