//! Simulated time.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A point in simulated time (equivalently, a duration since time zero),
/// stored as integer **picoseconds**.
///
/// Picosecond resolution is needed because DDR4-3200 runs a 1.6 GHz command
/// clock (tCK = 625 ps) and half-cycle timing parameters appear in the DRAM
/// model. A `u64` of picoseconds covers ~213 days of simulated time, far
/// beyond any experiment in the paper.
///
/// `SimTime` is used both as an absolute timestamp and as a duration; the
/// arithmetic impls (`+`, `-`, scalar `*`, `/`) are the usual ones. Overflow
/// in arithmetic panics in debug builds and wraps in release builds like any
/// other integer arithmetic; simulations stay many orders of magnitude below
/// the limit.
///
/// ```
/// use mcn_sim::SimTime;
/// let t = SimTime::from_us(1) + SimTime::from_ns(500);
/// assert_eq!(t.as_ns(), 1_500);
/// assert_eq!(t * 2, SimTime::from_ns(3_000));
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// Time zero / the zero duration.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable time; useful as an "infinity" sentinel when
    /// picking the minimum of several optional deadlines.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        SimTime(ps)
    }

    /// Creates a time from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns * 1_000)
    }

    /// Creates a time from microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * 1_000_000)
    }

    /// Creates a time from milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * 1_000_000_000)
    }

    /// Creates a time from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000_000)
    }

    /// Creates a time from a floating-point number of seconds, rounding to
    /// the nearest picosecond. Negative inputs clamp to zero.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        SimTime((s.max(0.0) * 1e12).round() as u64)
    }

    /// Creates a time from a floating-point number of nanoseconds, rounding
    /// to the nearest picosecond. Negative inputs clamp to zero.
    #[inline]
    pub fn from_ns_f64(ns: f64) -> Self {
        SimTime((ns.max(0.0) * 1e3).round() as u64)
    }

    /// This time as picoseconds.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// This time as whole nanoseconds (truncating).
    #[inline]
    pub const fn as_ns(self) -> u64 {
        self.0 / 1_000
    }

    /// This time as whole microseconds (truncating).
    #[inline]
    pub const fn as_us(self) -> u64 {
        self.0 / 1_000_000
    }

    /// This time as a floating-point number of seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// This time as a floating-point number of microseconds.
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// This time as a floating-point number of nanoseconds.
    #[inline]
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Saturating subtraction: `self - rhs`, or zero if `rhs > self`.
    #[inline]
    pub const fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition; `None` on overflow.
    #[inline]
    pub const fn checked_add(self, rhs: SimTime) -> Option<SimTime> {
        match self.0.checked_add(rhs.0) {
            Some(v) => Some(SimTime(v)),
            None => None,
        }
    }

    /// The duration needed to move `bytes` bytes at `bytes_per_sec`.
    ///
    /// This helper appears throughout the link, DMA and memory-copy models.
    /// A zero rate yields [`SimTime::MAX`] ("never completes").
    #[inline]
    pub fn for_bytes(bytes: u64, bytes_per_sec: f64) -> SimTime {
        if bytes_per_sec <= 0.0 {
            SimTime::MAX
        } else {
            SimTime::from_secs_f64(bytes as f64 / bytes_per_sec)
        }
    }

    /// Returns the earlier of two times.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Returns the later of two times.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl SubAssign for SimTime {
    #[inline]
    fn sub_assign(&mut self, rhs: SimTime) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn mul(self, rhs: u64) -> SimTime {
        SimTime(self.0 * rhs)
    }
}

impl Div<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn div(self, rhs: u64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    /// Formats with an auto-selected unit: `1.234 us`, `625 ps`, ...
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ps = self.0;
        if ps == u64::MAX {
            write!(f, "inf")
        } else if ps >= 1_000_000_000_000 {
            write!(f, "{:.3} s", ps as f64 / 1e12)
        } else if ps >= 1_000_000_000 {
            write!(f, "{:.3} ms", ps as f64 / 1e9)
        } else if ps >= 1_000_000 {
            write!(f, "{:.3} us", ps as f64 / 1e6)
        } else if ps >= 1_000 {
            write!(f, "{:.3} ns", ps as f64 / 1e3)
        } else {
            write!(f, "{ps} ps")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_constructors_agree() {
        assert_eq!(SimTime::from_ns(1), SimTime::from_ps(1_000));
        assert_eq!(SimTime::from_us(1), SimTime::from_ns(1_000));
        assert_eq!(SimTime::from_ms(1), SimTime::from_us(1_000));
        assert_eq!(SimTime::from_secs(1), SimTime::from_ms(1_000));
    }

    #[test]
    fn float_roundtrip() {
        let t = SimTime::from_secs_f64(1.5e-6);
        assert_eq!(t, SimTime::from_ns(1_500));
        assert!((t.as_secs_f64() - 1.5e-6).abs() < 1e-18);
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_ns(100);
        let b = SimTime::from_ns(30);
        assert_eq!(a + b, SimTime::from_ns(130));
        assert_eq!(a - b, SimTime::from_ns(70));
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        assert_eq!(a * 3, SimTime::from_ns(300));
        assert_eq!(a / 4, SimTime::from_ns(25));
        let mut c = a;
        c += b;
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn for_bytes_rate() {
        // 10 GbE = 1.25e9 B/s; a 1250-byte frame takes exactly 1 us on the wire.
        let t = SimTime::for_bytes(1250, 1.25e9);
        assert_eq!(t, SimTime::from_us(1));
        assert_eq!(SimTime::for_bytes(1, 0.0), SimTime::MAX);
    }

    #[test]
    fn min_max_sum() {
        let a = SimTime::from_ns(5);
        let b = SimTime::from_ns(9);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        let total: SimTime = [a, b, a].into_iter().sum();
        assert_eq!(total, SimTime::from_ns(19));
    }

    #[test]
    fn display_units() {
        assert_eq!(SimTime::from_ps(625).to_string(), "625 ps");
        assert_eq!(SimTime::from_ns(1500).to_string(), "1.500 us");
        assert_eq!(SimTime::MAX.to_string(), "inf");
    }

    #[test]
    fn checked_add_overflow() {
        assert_eq!(SimTime::MAX.checked_add(SimTime::from_ps(1)), None);
        assert_eq!(
            SimTime::ZERO.checked_add(SimTime::from_ns(1)),
            Some(SimTime::from_ns(1))
        );
    }
}
