//! Deterministic random number generation.

/// A deterministic pseudo-random number generator (xoshiro256++ seeded via
/// SplitMix64).
///
/// All randomness in the simulator flows through `DetRng` so that a run is a
/// pure function of its seed — the determinism integration test depends on
/// this. The generator can be [`fork`](Self::fork)ed into statistically
/// independent child streams (one per node, per workload, ...) so that adding
/// a consumer does not perturb the draws seen by existing consumers.
///
/// Not cryptographically secure; this is a simulation RNG.
///
/// ```
/// use mcn_sim::DetRng;
/// let mut a = DetRng::new(7);
/// let mut b = DetRng::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct DetRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl DetRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        DetRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Derives an independent child stream identified by `stream`.
    ///
    /// Forking with distinct `stream` values from the same parent state
    /// yields streams that do not overlap in practice; forking twice with the
    /// same value yields identical children (useful for replay).
    pub fn fork(&self, stream: u64) -> DetRng {
        let mut sm = self.s[0] ^ self.s[3] ^ stream.wrapping_mul(0xD1342543DE82EF95);
        DetRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform integer in `[0, bound)` using Lemire's method.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below bound must be positive");
        // Widening multiply rejection sampling (Lemire 2019).
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "range lo must not exceed hi");
        if lo == 0 && hi == u64::MAX {
            return self.next_u64();
        }
        lo + self.next_below(hi - lo + 1)
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.next_f64() < p
        }
    }

    /// Exponentially distributed sample with the given mean.
    pub fn exp(&mut self, mean: f64) -> f64 {
        // Inverse CDF; 1 - next_f64() avoids ln(0).
        -mean * (1.0 - self.next_f64()).ln()
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Fills `buf` with pseudo-random bytes (used to generate packet
    /// payloads whose integrity is later verified).
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = DetRng::new(123);
        let mut b = DetRng::new(123);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = DetRng::new(124);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn forked_streams_differ_and_replay() {
        let root = DetRng::new(1);
        let mut x = root.fork(0);
        let mut y = root.fork(1);
        let mut x2 = root.fork(0);
        assert_ne!(x.next_u64(), y.next_u64());
        x = root.fork(0);
        assert_eq!(x.next_u64(), x2.next_u64());
    }

    #[test]
    fn next_below_in_bounds_and_roughly_uniform() {
        let mut rng = DetRng::new(42);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            let v = rng.next_below(10);
            assert!(v < 10);
            counts[v as usize] += 1;
        }
        for &c in &counts {
            // Each bucket should get ~10_000; allow +-10%.
            assert!((9_000..=11_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn range_endpoints_reachable() {
        let mut rng = DetRng::new(7);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..10_000 {
            match rng.range(3, 5) {
                3 => saw_lo = true,
                5 => saw_hi = true,
                4 => {}
                v => panic!("out of range {v}"),
            }
        }
        assert!(saw_lo && saw_hi);
        assert_eq!(rng.range(9, 9), 9);
    }

    #[test]
    fn f64_in_unit_interval_with_sane_mean() {
        let mut rng = DetRng::new(11);
        let mut sum = 0.0;
        for _ in 0..100_000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 100_000.0;
        assert!((0.49..0.51).contains(&mean), "mean {mean}");
    }

    #[test]
    fn chance_extremes() {
        let mut rng = DetRng::new(5);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        let hits = (0..10_000).filter(|_| rng.chance(0.25)).count();
        assert!((2_200..2_800).contains(&hits), "hits {hits}");
    }

    #[test]
    fn exp_mean() {
        let mut rng = DetRng::new(9);
        let n = 200_000;
        let mean = (0..n).map(|_| rng.exp(3.0)).sum::<f64>() / n as f64;
        assert!((2.9..3.1).contains(&mean), "mean {mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = DetRng::new(3);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely to be identity");
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = DetRng::new(8);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
