//! Reusable buffer pools for scheduler hot paths.
//!
//! The windowed scheduler ([`shard`](crate::shard)) moves per-shard
//! `Vec`s across the barrier every round: delivery batches in, outbox
//! batches out. Allocating those fresh each round dominated the
//! parallel engine's constant factor, so the coordinator now draws them
//! from a [`FramePool`] and returns them once drained. The pool is a
//! plain free list — no locking, no sharing — because every take and
//! put happens on the coordinator thread in deterministic shard order,
//! which keeps the `pool.*` counters byte-identical across thread
//! counts (they are part of the snapshot-diff determinism contract).

use crate::metrics::{Instrumented, MetricSink};
use crate::stats::Counter;

/// Deterministic accounting for one [`FramePool`].
#[derive(Debug, Default, Clone, Copy)]
pub struct PoolStats {
    /// Buffers handed out fresh because the free list was empty.
    pub allocated: Counter,
    /// Buffers handed out from the free list (an allocation avoided,
    /// once the recycled buffer has grown capacity).
    pub reused: Counter,
    /// Buffers accepted back into the free list.
    pub returned: Counter,
    /// Buffers dropped on return because the free list was full.
    pub discarded: Counter,
}

impl PoolStats {
    /// Folds another pool's counters into this one (aggregation across
    /// the engines of a quantum hierarchy).
    pub fn accumulate(&mut self, other: &PoolStats) {
        self.allocated.add(other.allocated.get());
        self.reused.add(other.reused.get());
        self.returned.add(other.returned.get());
        self.discarded.add(other.discarded.get());
    }
}

impl Instrumented for PoolStats {
    fn metrics(&self, out: &mut MetricSink) {
        out.counter("allocated", self.allocated.get());
        out.counter("reused", self.reused.get());
        out.counter("returned", self.returned.get());
        out.counter("discarded", self.discarded.get());
    }
}

/// A bounded free list of `Vec<T>` buffers.
///
/// Ownership rule: a buffer taken from the pool is owned outright by
/// the taker — it may cross threads inside a job, grow, or be dropped —
/// and re-enters the pool only through an explicit [`put`](Self::put)
/// on the owning (coordinator) thread. `put` clears the buffer, so a
/// pooled buffer is always empty but keeps its grown capacity; that
/// capacity is what makes reuse pay.
#[derive(Debug)]
pub struct FramePool<T> {
    free: Vec<Vec<T>>,
    cap: usize,
    /// Take/put accounting (deterministic; safe to snapshot).
    pub stats: PoolStats,
}

impl<T> FramePool<T> {
    /// A pool retaining at most `cap` idle buffers.
    pub fn new(cap: usize) -> Self {
        FramePool { free: Vec::with_capacity(cap), cap, stats: PoolStats::default() }
    }

    /// An empty buffer: recycled if one is idle, fresh otherwise.
    pub fn take(&mut self) -> Vec<T> {
        match self.free.pop() {
            Some(buf) => {
                self.stats.reused.inc();
                buf
            }
            None => {
                self.stats.allocated.inc();
                Vec::new()
            }
        }
    }

    /// Returns a buffer to the free list (clearing it), or drops it if
    /// the list is full.
    pub fn put(&mut self, mut buf: Vec<T>) {
        buf.clear();
        if self.free.len() < self.cap {
            self.stats.returned.inc();
            self.free.push(buf);
        } else {
            self.stats.discarded.inc();
        }
    }

    /// Idle buffers currently held.
    pub fn idle(&self) -> usize {
        self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_put_recycles_capacity() {
        let mut pool: FramePool<u32> = FramePool::new(4);
        let mut a = pool.take();
        assert_eq!(pool.stats.allocated.get(), 1);
        a.extend([1, 2, 3]);
        let cap = a.capacity();
        pool.put(a);
        assert_eq!(pool.stats.returned.get(), 1);
        assert_eq!(pool.idle(), 1);

        let b = pool.take();
        assert!(b.is_empty(), "pooled buffers come back cleared");
        assert!(b.capacity() >= cap, "pooled buffers keep their capacity");
        assert_eq!(pool.stats.reused.get(), 1);
    }

    #[test]
    fn full_pool_discards_returns() {
        let mut pool: FramePool<u8> = FramePool::new(1);
        pool.put(Vec::new());
        pool.put(Vec::new());
        assert_eq!(pool.idle(), 1);
        assert_eq!(pool.stats.returned.get(), 1);
        assert_eq!(pool.stats.discarded.get(), 1);
    }
}
