//! Measurement instruments used by every model in the workspace.
//!
//! Three instruments cover everything the paper reports:
//!
//! * [`Counter`] — monotone event/byte counters,
//! * [`RateMeter`] — bytes-over-time bandwidth measurement with optional
//!   warm-up exclusion (iperf-style),
//! * [`Histogram`] — log-linear latency histogram with percentile queries
//!   (ping/RTT distributions, queueing delays).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::SimTime;

/// A monotonically increasing counter.
///
/// ```
/// use mcn_sim::stats::Counter;
/// let mut c = Counter::default();
/// c.add(3);
/// c.inc();
/// assert_eq!(c.get(), 4);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counter(u64);

impl Counter {
    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Adds one.
    #[inline]
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Measures achieved throughput: bytes recorded between a start and an end
/// timestamp.
///
/// The `start` defaults to the first record but can be pinned later to
/// exclude a warm-up interval — iperf-style measurements in the harness skip
/// TCP slow start this way (the paper notes congestion control "sometimes
/// takes several seconds to reach full bandwidth utilization").
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct RateMeter {
    bytes: u64,
    first: Option<SimTime>,
    last: Option<SimTime>,
}

impl RateMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `bytes` transferred at time `now`.
    pub fn record(&mut self, now: SimTime, bytes: u64) {
        self.bytes += bytes;
        if self.first.is_none() {
            self.first = Some(now);
        }
        self.last = Some(now);
    }

    /// Discards everything recorded so far and restarts the measurement
    /// window at `now` (warm-up exclusion).
    pub fn restart(&mut self, now: SimTime) {
        self.bytes = 0;
        self.first = Some(now);
        self.last = Some(now);
    }

    /// Total bytes recorded in the current window.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Elapsed measurement time.
    pub fn elapsed(&self) -> SimTime {
        match (self.first, self.last) {
            (Some(a), Some(b)) => b - a,
            _ => SimTime::ZERO,
        }
    }

    /// Achieved rate in bytes/second over the window (0 if the window is
    /// empty or instantaneous).
    pub fn bytes_per_sec(&self) -> f64 {
        let secs = self.elapsed().as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.bytes as f64 / secs
        }
    }

    /// Achieved rate in gigabits/second.
    pub fn gbps(&self) -> f64 {
        self.bytes_per_sec() * 8.0 / 1e9
    }
}

/// Log-linear histogram of [`SimTime`] samples.
///
/// Buckets are arranged as `SUB` linear sub-buckets per power-of-two decade
/// of picoseconds, giving a bounded relative error of `1/SUB` on percentile
/// queries across the full range — the standard HDR-histogram layout.
///
/// ```
/// use mcn_sim::{stats::Histogram, SimTime};
/// let mut h = Histogram::new();
/// for us in 1..=100 {
///     h.record(SimTime::from_us(us));
/// }
/// let p50 = h.percentile(50.0).unwrap();
/// assert!(p50 >= SimTime::from_us(45) && p50 <= SimTime::from_us(56));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    /// counts[decade * SUB + sub]
    counts: Vec<u64>,
    total: u64,
    sum_ps: u128,
    min: SimTime,
    max: SimTime,
}

impl Histogram {
    const SUB_BITS: u32 = 5;
    const SUB: usize = 1 << Self::SUB_BITS; // 32 sub-buckets => <= ~3% error
    const DECADES: usize = 64;

    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: vec![0; Self::SUB * Self::DECADES],
            total: 0,
            sum_ps: 0,
            min: SimTime::MAX,
            max: SimTime::ZERO,
        }
    }

    fn bucket_of(ps: u64) -> usize {
        if ps < Self::SUB as u64 {
            return ps as usize;
        }
        let decade = 63 - ps.leading_zeros(); // floor(log2)
        let shift = decade - Self::SUB_BITS;
        let sub = ((ps >> shift) as usize) & (Self::SUB - 1);
        ((decade - Self::SUB_BITS + 1) as usize) * Self::SUB + sub
    }

    fn bucket_low(index: usize) -> u64 {
        let decade = index / Self::SUB;
        let sub = (index % Self::SUB) as u64;
        if decade == 0 {
            return sub;
        }
        let shift = (decade - 1) as u32;
        ((Self::SUB as u64) << shift) | (sub << shift)
    }

    /// Records one sample.
    pub fn record(&mut self, value: SimTime) {
        let ps = value.as_ps();
        self.counts[Self::bucket_of(ps)] += 1;
        self.total += 1;
        self.sum_ps += ps as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Arithmetic mean of all samples, or `None` when empty.
    pub fn mean(&self) -> Option<SimTime> {
        if self.total == 0 {
            None
        } else {
            Some(SimTime::from_ps((self.sum_ps / self.total as u128) as u64))
        }
    }

    /// Smallest recorded sample, or `None` when empty.
    pub fn min(&self) -> Option<SimTime> {
        (self.total > 0).then_some(self.min)
    }

    /// Largest recorded sample, or `None` when empty.
    pub fn max(&self) -> Option<SimTime> {
        (self.total > 0).then_some(self.max)
    }

    /// Value at or below which `p` percent of samples fall (`0 < p <= 100`),
    /// reported as the lower bound of the containing bucket (≤ ~3% relative
    /// error). Returns `None` when empty.
    pub fn percentile(&self, p: f64) -> Option<SimTime> {
        if self.total == 0 || !(0.0..=100.0).contains(&p) {
            return None;
        }
        let rank = ((p / 100.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(SimTime::from_ps(Self::bucket_low(i)));
            }
        }
        Some(self.max)
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.min(), self.mean(), self.percentile(99.0), self.max()) {
            (Some(min), Some(mean), Some(p99), Some(max)) => write!(
                f,
                "n={} min={} mean={} p99={} max={}",
                self.total, min, mean, p99, max
            ),
            _ => write!(f, "n=0 (empty)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::default();
        assert_eq!(c.get(), 0);
        c.inc();
        c.add(10);
        assert_eq!(c.get(), 11);
        assert_eq!(c.to_string(), "11");
    }

    #[test]
    fn rate_meter_bandwidth() {
        let mut m = RateMeter::new();
        m.record(SimTime::ZERO, 0);
        m.record(SimTime::from_secs(1), 1_250_000_000);
        // 1.25 GB over 1 s = 10 Gbit/s.
        assert!((m.gbps() - 10.0).abs() < 1e-9);
        assert_eq!(m.bytes(), 1_250_000_000);
    }

    #[test]
    fn rate_meter_restart_excludes_warmup() {
        let mut m = RateMeter::new();
        m.record(SimTime::ZERO, 999);
        m.restart(SimTime::from_secs(1));
        m.record(SimTime::from_secs(2), 100);
        assert_eq!(m.bytes(), 100);
        assert_eq!(m.elapsed(), SimTime::from_secs(1));
    }

    #[test]
    fn rate_meter_empty_is_zero() {
        let m = RateMeter::new();
        assert_eq!(m.bytes_per_sec(), 0.0);
        assert_eq!(m.elapsed(), SimTime::ZERO);
    }

    #[test]
    fn histogram_empty() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), None);
        assert_eq!(h.percentile(50.0), None);
        assert_eq!(h.to_string(), "n=0 (empty)");
    }

    #[test]
    fn histogram_stats() {
        let mut h = Histogram::new();
        for us in [10u64, 20, 30, 40, 50] {
            h.record(SimTime::from_us(us));
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.mean(), Some(SimTime::from_us(30)));
        assert_eq!(h.min(), Some(SimTime::from_us(10)));
        assert_eq!(h.max(), Some(SimTime::from_us(50)));
    }

    #[test]
    fn histogram_percentile_error_bound() {
        let mut h = Histogram::new();
        for ns in 1..=10_000u64 {
            h.record(SimTime::from_ns(ns));
        }
        for p in [1.0, 25.0, 50.0, 90.0, 99.0, 100.0] {
            let exact = SimTime::from_ns((p / 100.0 * 10_000.0) as u64);
            let got = h.percentile(p).unwrap();
            let err = (got.as_ps() as f64 - exact.as_ps() as f64).abs() / exact.as_ps() as f64;
            assert!(err < 0.05, "p{p}: got {got}, exact {exact}, err {err}");
        }
    }

    #[test]
    fn bucket_mapping_monotone() {
        let mut last = 0;
        for ps in (0..10_000_000u64).step_by(997) {
            let b = Histogram::bucket_of(ps);
            assert!(b >= last, "bucket index must be monotone in value");
            last = b;
            let low = Histogram::bucket_low(b);
            assert!(low <= ps, "bucket_low({b})={low} > value {ps}");
        }
    }

    #[test]
    fn histogram_single_sample_everywhere() {
        for scale in [1u64, 1_000, 1_000_000, 1_000_000_000] {
            let mut h = Histogram::new();
            h.record(SimTime::from_ps(scale * 7));
            let p = h.percentile(50.0).unwrap();
            assert!(p <= SimTime::from_ps(scale * 7));
            assert!(p.as_ps() as f64 >= scale as f64 * 7.0 * 0.9);
        }
    }
}
