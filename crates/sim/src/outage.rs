//! Deterministic hard-failure scheduling (crash, partition, reboot).
//!
//! Where [`fault`](crate::fault) models *transient* faults a component rolls
//! for on its hot path (bit flips, drops, stalls), an [`OutagePlan`] models
//! *hard* lifecycle events: a component goes away at a known simulated time
//! and — usually — comes back later. Outages are declarative and seeded the
//! same way fault plans are: events are declared against free-form component
//! names, randomized schedules draw from a per-component stream forked from
//! the plan's single seed (`DetRng::new(seed).fork(hash(component))`), so
//! adding an outage to one component never perturbs another's schedule and
//! two runs of the same plan produce identical chaos.
//!
//! System crates pull a component's slice of the plan with
//! [`schedule`](OutagePlan::schedule) and fold the resulting
//! [`OutageSchedule`] into their event loop: `next_at` participates in the
//! wakeup computation, `pop_due` yields the events to apply.
//!
//! ```
//! use mcn_sim::outage::{OutageKind, OutagePlan};
//! use mcn_sim::SimTime;
//!
//! let mut plan = OutagePlan::new(42);
//! plan.at("dimm0", SimTime::from_ms(2), OutageKind::DimmCrash {
//!     down_for: SimTime::from_ms(1),
//! });
//! let mut sched = plan.schedule("dimm0");
//! assert_eq!(sched.next_at(), Some(SimTime::from_ms(2)));
//! assert!(sched.pop_due(SimTime::from_ms(1)).is_empty());
//! assert_eq!(sched.pop_due(SimTime::from_ms(3)).len(), 1);
//! assert!(sched.is_empty());
//! ```

use std::collections::HashMap;
use std::collections::VecDeque;

use crate::{DetRng, SimTime};

/// The hard events an [`OutagePlan`] can schedule. As with
/// [`FaultKind`](crate::fault::FaultKind), the *meaning* is up to the
/// component the event is declared against.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OutageKind {
    /// An MCN DIMM's processor resets: SRAM rings, in-flight DMA and driver
    /// port state are lost; power returns after `down_for` and the host
    /// driver must re-initialise the DIMM before traffic flows again.
    DimmCrash {
        /// How long the DIMM stays dark before power returns.
        down_for: SimTime,
    },
    /// A network link goes dark (frames in flight are lost, new sends are
    /// dropped) and heals after `down_for`.
    LinkDown {
        /// How long the link stays dark.
        down_for: SimTime,
    },
    /// The switch partitions its ports into isolated groups; forwarding
    /// between groups drops until `heal_at` (an absolute time).
    SwitchPartition {
        /// Port groups; forwarding is allowed only within a group. Ports
        /// not listed form an implicit extra group.
        groups: Vec<Vec<usize>>,
        /// Absolute simulated time the partition heals.
        heal_at: SimTime,
    },
    /// A whole node (server) reboots: its uplink goes dark and every MCN
    /// DIMM it hosts crashes; everything powers back on after `down_for`.
    NodeReboot {
        /// How long the node stays down.
        down_for: SimTime,
    },
    /// A whole [`FailureDomain`] fails at once (a PDU trips, a DIMM riser
    /// loses power, a ToR uplink bundle is cut): every member component
    /// crashes at the same instant and heals together after `down_for`.
    /// Scheduled against the *domain's* name; system crates expand the
    /// membership into per-component events with identical timestamps, so
    /// the whole domain lands atomically at one scheduler window boundary.
    DomainDown {
        /// How long the domain stays dark.
        down_for: SimTime,
    },
    /// A fabric switch (an aggregation or spine switch in a Clos
    /// datacenter) goes dark: frames crossing it are dropped and its
    /// peers must route around it (ECMP re-hashes flows onto the
    /// surviving equal-cost paths) until it returns `down_for` later.
    /// Scheduled against the switch's component name (`"spine0"`,
    /// `"pod1.agg0"`); meaningless for single-switch topologies, which
    /// model switch trouble as a [`SwitchPartition`](Self::SwitchPartition)
    /// instead.
    SwitchDown {
        /// How long the switch stays dark.
        down_for: SimTime,
    },
}

/// FNV-1a; stable component-name → fork-stream mapping (identical to the
/// fault plan's, so `"dimm0"` names the same seed-tree leaf in both).
fn stream_of(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// A named group of component streams that fail *together*: all the DIMMs
/// on one riser, every server behind one PDU, the servers sharing a ToR
/// uplink bundle. A [`OutageKind::DomainDown`] event scheduled against the
/// domain's name crashes and heals every member atomically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailureDomain {
    /// Domain name (free-form; also the component name its events are
    /// scheduled against).
    pub name: String,
    /// Member component names (the same names individual outages use,
    /// e.g. `server0.dimm1`, `server2.link`, `server3`).
    pub members: Vec<String>,
}

/// A seeded, declarative schedule of hard failures for a whole system.
///
/// Build one, declare events against *component names* (free-form strings;
/// system crates document the names they query), then hand each component
/// its slice with [`schedule`](Self::schedule). Correlated failures are
/// declared by [defining a domain](Self::define_domain) and scheduling
/// [`OutageKind::DomainDown`] against the domain's name.
#[derive(Debug, Clone, Default)]
pub struct OutagePlan {
    seed: u64,
    events: HashMap<String, Vec<(SimTime, OutageKind)>>,
    domains: Vec<FailureDomain>,
}

impl OutagePlan {
    /// An empty (inert) plan with the given seed.
    pub fn new(seed: u64) -> Self {
        OutagePlan {
            seed,
            events: HashMap::new(),
            domains: Vec::new(),
        }
    }

    /// The seed every randomized schedule derives from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// True when no component has any event scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.values().all(|v| v.is_empty())
    }

    /// Schedules `kind` against `component` at absolute time `at`.
    pub fn at(&mut self, component: &str, at: SimTime, kind: OutageKind) -> &mut Self {
        self.events
            .entry(component.to_string())
            .or_default()
            .push((at, kind));
        self
    }

    /// Schedules `count` crashes of `component` at deterministic random
    /// times in `window`, each down for a random duration in `down`. Times
    /// and durations come from the component's forked stream, so schedules
    /// for different components are independent and replayable.
    pub fn random_crashes(
        &mut self,
        component: &str,
        count: usize,
        window: (SimTime, SimTime),
        down: (SimTime, SimTime),
    ) -> &mut Self {
        let mut rng = DetRng::new(self.seed).fork(stream_of(component));
        for _ in 0..count {
            let at = SimTime::from_ps(rng.range(window.0.as_ps(), window.1.as_ps()));
            let down_for = SimTime::from_ps(rng.range(down.0.as_ps(), down.1.as_ps()));
            self.at(component, at, OutageKind::DimmCrash { down_for });
        }
        self
    }

    /// Carves out the schedule for `component`, sorted by time (ties keep
    /// declaration order). Calling twice yields identical schedules.
    pub fn schedule(&self, component: &str) -> OutageSchedule {
        let mut events: Vec<(SimTime, OutageKind)> =
            self.events.get(component).cloned().unwrap_or_default();
        events.sort_by_key(|(t, _)| *t);
        OutageSchedule {
            events: events.into(),
        }
    }

    /// Defines (or redefines) a correlated [`FailureDomain`]: `members`
    /// are the component names that fail together when a
    /// [`OutageKind::DomainDown`] fires against `name`.
    ///
    /// # Panics
    ///
    /// Panics on an empty membership — a domain that groups nothing is
    /// always a plan-authoring bug.
    pub fn define_domain(&mut self, name: &str, members: &[&str]) -> &mut Self {
        assert!(!members.is_empty(), "failure domain {name:?} has no members");
        let domain = FailureDomain {
            name: name.to_string(),
            members: members.iter().map(|m| m.to_string()).collect(),
        };
        match self.domains.iter_mut().find(|d| d.name == name) {
            Some(d) => *d = domain,
            None => self.domains.push(domain),
        }
        self
    }

    /// The defined domains, in declaration order.
    pub fn domains(&self) -> &[FailureDomain] {
        &self.domains
    }

    /// Looks up a domain by name.
    pub fn domain(&self, name: &str) -> Option<&FailureDomain> {
        self.domains.iter().find(|d| d.name == name)
    }

    /// Schedules a correlated crash of the whole domain at `at`, healing
    /// after `down_for`. Sugar for `at(name, at, DomainDown { down_for })`
    /// with a membership check.
    ///
    /// # Panics
    ///
    /// Panics when `name` was not [defined](Self::define_domain) first.
    pub fn domain_crash(&mut self, name: &str, at: SimTime, down_for: SimTime) -> &mut Self {
        assert!(
            self.domain(name).is_some(),
            "domain {name:?} not defined; call define_domain first"
        );
        self.at(name, at, OutageKind::DomainDown { down_for })
    }

    /// Schedules `count` correlated crashes of domain `name` at
    /// deterministic random times in `window`, each down for a random
    /// duration in `down`. Times draw from the domain's own forked stream
    /// (same scheme as [`random_crashes`](Self::random_crashes)), so domain
    /// chaos never perturbs any component's independent schedule.
    ///
    /// # Panics
    ///
    /// Panics when `name` was not [defined](Self::define_domain) first.
    pub fn random_domain_crashes(
        &mut self,
        name: &str,
        count: usize,
        window: (SimTime, SimTime),
        down: (SimTime, SimTime),
    ) -> &mut Self {
        assert!(
            self.domain(name).is_some(),
            "domain {name:?} not defined; call define_domain first"
        );
        let mut rng = DetRng::new(self.seed).fork(stream_of(name));
        for _ in 0..count {
            let at = SimTime::from_ps(rng.range(window.0.as_ps(), window.1.as_ps()));
            let down_for = SimTime::from_ps(rng.range(down.0.as_ps(), down.1.as_ps()));
            self.at(name, at, OutageKind::DomainDown { down_for });
        }
        self
    }

    /// The component names with at least one event.
    pub fn components(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self
            .events
            .iter()
            .filter(|(_, v)| !v.is_empty())
            .map(|(k, _)| k.as_str())
            .collect();
        names.sort_unstable();
        names
    }
}

/// A component's slice of an [`OutagePlan`]: a time-ordered queue of hard
/// events. Fold [`next_at`](Self::next_at) into the component's wakeup and
/// apply what [`pop_due`](Self::pop_due) returns.
#[derive(Debug, Clone, Default)]
pub struct OutageSchedule {
    events: VecDeque<(SimTime, OutageKind)>,
}

impl OutageSchedule {
    /// An empty schedule (no outages ever).
    pub fn none() -> Self {
        Self::default()
    }

    /// When the next event is due, if any.
    pub fn next_at(&self) -> Option<SimTime> {
        self.events.front().map(|(t, _)| *t)
    }

    /// Pops every event due at or before `now`, in time order.
    pub fn pop_due(&mut self, now: SimTime) -> Vec<(SimTime, OutageKind)> {
        let mut due = Vec::new();
        while self.events.front().is_some_and(|&(t, _)| t <= now) {
            due.push(self.events.pop_front().expect("peeked"));
        }
        due
    }

    /// True once every event has been consumed.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events still pending.
    pub fn len(&self) -> usize {
        self.events.len()
    }
}

/// Bounded exponential retry/backoff: the workspace's one implementation of
/// "try, wait a doubling delay, give up after N attempts". The host driver's
/// DIMM re-init handshake uses it for probe retries, and tests use it (via
/// [`ComponentExt::run_with_backoff`](crate::ComponentExt::run_with_backoff))
/// instead of hand-rolled guard-counter loops.
#[derive(Debug, Clone)]
pub struct Backoff {
    initial: SimTime,
    max_delay: SimTime,
    max_attempts: u32,
    attempts: u32,
}

impl Backoff {
    /// A policy starting at `initial`, doubling per attempt up to
    /// `max_delay`, allowing at most `max_attempts` delays.
    pub fn new(initial: SimTime, max_delay: SimTime, max_attempts: u32) -> Self {
        Backoff {
            initial,
            max_delay,
            max_attempts,
            attempts: 0,
        }
    }

    /// The delay before the next attempt, or `None` once the attempt budget
    /// is exhausted. Each call consumes one attempt.
    pub fn next_delay(&mut self) -> Option<SimTime> {
        if self.attempts >= self.max_attempts {
            return None;
        }
        let shift = self.attempts.min(20);
        self.attempts += 1;
        let delay = SimTime::from_ps(
            self.initial
                .as_ps()
                .saturating_mul(1u64 << shift)
                .min(self.max_delay.as_ps()),
        );
        Some(delay)
    }

    /// Attempts consumed so far.
    pub fn attempts(&self) -> u32 {
        self.attempts
    }

    /// Whether the attempt budget is exhausted.
    pub fn exhausted(&self) -> bool {
        self.attempts >= self.max_attempts
    }

    /// Resets the policy to attempt zero (e.g. after a success).
    pub fn reset(&mut self) {
        self.attempts = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut plan = OutagePlan::new(1);
        plan.at(
            "c",
            SimTime::from_us(10),
            OutageKind::LinkDown {
                down_for: SimTime::from_us(1),
            },
        );
        plan.at(
            "c",
            SimTime::from_us(5),
            OutageKind::DimmCrash {
                down_for: SimTime::from_us(2),
            },
        );
        let mut s = plan.schedule("c");
        assert_eq!(s.len(), 2);
        let due = s.pop_due(SimTime::from_us(7));
        assert_eq!(due.len(), 1);
        assert!(matches!(due[0].1, OutageKind::DimmCrash { .. }));
        assert_eq!(s.next_at(), Some(SimTime::from_us(10)));
        assert_eq!(s.pop_due(SimTime::from_secs(1)).len(), 1);
        assert!(s.is_empty());
    }

    #[test]
    fn random_schedules_replay_and_are_independent() {
        let mk = |seed| {
            let mut plan = OutagePlan::new(seed);
            plan.random_crashes(
                "a",
                3,
                (SimTime::from_ms(1), SimTime::from_ms(10)),
                (SimTime::from_us(100), SimTime::from_ms(1)),
            );
            plan.random_crashes(
                "b",
                3,
                (SimTime::from_ms(1), SimTime::from_ms(10)),
                (SimTime::from_us(100), SimTime::from_ms(1)),
            );
            plan
        };
        let p1 = mk(7);
        let p2 = mk(7);
        let times = |p: &OutagePlan, c: &str| {
            let mut s = p.schedule(c);
            s.pop_due(SimTime::from_secs(1))
        };
        assert_eq!(times(&p1, "a"), times(&p2, "a"), "same seed replays");
        assert_ne!(
            times(&p1, "a"),
            times(&p1, "b"),
            "components draw independent streams"
        );
        let p3 = mk(8);
        assert_ne!(times(&p1, "a"), times(&p3, "a"), "seed changes schedule");
        assert!(!p1.is_empty());
        assert_eq!(p1.components(), vec!["a", "b"]);
    }

    #[test]
    fn inert_plan_has_empty_schedules() {
        let plan = OutagePlan::new(9);
        assert!(plan.is_empty());
        let s = plan.schedule("anything");
        assert!(s.is_empty());
        assert_eq!(s.next_at(), None);
    }

    #[test]
    fn domain_events_schedule_against_the_domain_name() {
        let mut plan = OutagePlan::new(3);
        plan.define_domain("rack.pdu0", &["server0", "server1"]);
        plan.domain_crash("rack.pdu0", SimTime::from_ms(1), SimTime::from_ms(2));
        assert_eq!(
            plan.domain("rack.pdu0").unwrap().members,
            vec!["server0".to_string(), "server1".to_string()]
        );
        assert!(plan.domain("other").is_none());
        let mut s = plan.schedule("rack.pdu0");
        let due = s.pop_due(SimTime::from_secs(1));
        assert_eq!(due.len(), 1);
        assert_eq!(
            due[0],
            (
                SimTime::from_ms(1),
                OutageKind::DomainDown {
                    down_for: SimTime::from_ms(2)
                }
            )
        );
        // Members have no events of their own: expansion is the system
        // crate's job, keyed off the membership.
        assert!(plan.schedule("server0").is_empty());
        // Redefinition replaces the membership in place.
        plan.define_domain("rack.pdu0", &["server0"]);
        assert_eq!(plan.domains().len(), 1);
        assert_eq!(plan.domain("rack.pdu0").unwrap().members, vec!["server0"]);
    }

    #[test]
    fn random_domain_crashes_replay_and_fork_independently() {
        let mk = |seed| {
            let mut plan = OutagePlan::new(seed);
            plan.define_domain("pdu", &["a", "b"]);
            plan.random_domain_crashes(
                "pdu",
                3,
                (SimTime::from_ms(1), SimTime::from_ms(10)),
                (SimTime::from_us(100), SimTime::from_ms(1)),
            );
            // A component's independent stream is untouched by domain chaos.
            plan.random_crashes(
                "a",
                2,
                (SimTime::from_ms(1), SimTime::from_ms(10)),
                (SimTime::from_us(100), SimTime::from_ms(1)),
            );
            plan
        };
        let times = |p: &OutagePlan, c: &str| p.schedule(c).pop_due(SimTime::from_secs(1));
        let p1 = mk(5);
        let p2 = mk(5);
        assert_eq!(times(&p1, "pdu"), times(&p2, "pdu"), "same seed replays");
        assert_ne!(times(&p1, "pdu"), times(&p1, "a"), "independent streams");
        let p3 = mk(6);
        assert_ne!(times(&p1, "pdu"), times(&p3, "pdu"), "seed changes schedule");
        assert!(times(&p1, "pdu")
            .iter()
            .all(|(_, k)| matches!(k, OutageKind::DomainDown { .. })));
    }

    #[test]
    #[should_panic(expected = "not defined")]
    fn domain_crash_requires_definition() {
        let mut plan = OutagePlan::new(1);
        plan.domain_crash("ghost", SimTime::from_ms(1), SimTime::from_ms(1));
    }

    #[test]
    fn backoff_doubles_caps_and_exhausts() {
        let mut b = Backoff::new(SimTime::from_us(10), SimTime::from_us(35), 4);
        assert_eq!(b.next_delay(), Some(SimTime::from_us(10)));
        assert_eq!(b.next_delay(), Some(SimTime::from_us(20)));
        assert_eq!(b.next_delay(), Some(SimTime::from_us(35)), "capped");
        assert_eq!(b.next_delay(), Some(SimTime::from_us(35)));
        assert_eq!(b.attempts(), 4);
        assert!(b.exhausted());
        assert_eq!(b.next_delay(), None);
        b.reset();
        assert_eq!(b.next_delay(), Some(SimTime::from_us(10)));
    }
}
