//! Conservative parallel discrete-event execution (the dist-gem5 rule).
//!
//! The single-threaded [`Engine`](crate::engine::Engine) drives every
//! component of a system from one loop. This module adds the classic
//! conservative alternative used by dist-gem5 (the paper's evaluation
//! substrate): partition the system into **shards** that only interact
//! through links with a known minimum latency, run each shard
//! independently up to a synchronization **quantum** derived from that
//! latency, and exchange cross-shard frames at barrier points through a
//! deterministic, sender-ordered mailbox.
//!
//! # The quantum rule
//!
//! If every cross-shard effect emitted at time `t` reaches its
//! destination shard no earlier than `t + Q` (for the MCN rack, `Q` =
//! switch forwarding latency + egress link latency), then a window
//! `[t1, t1 + Q)` can be simulated by all shards **without any
//! communication**: nothing emitted inside the window can land inside
//! it. [`ParallelEngine`] plans closed windows `[t1, t1 + Q − 1 ps]`
//! (the `− 1 ps` makes the bound strict), runs every shard to the window
//! end, then routes the collected emissions through the
//! [`Fabric`] at the barrier.
//!
//! # Determinism
//!
//! Emissions are merged in `(time, shard index, per-shard emission
//! order)` order before routing, and routed frames are handed back to
//! the owning shard at the start of its next window. Because frames
//! carry exact timestamps and links tolerate future-dated sends, the
//! final state is **independent of the window size and thread count**:
//! `threads = 1` and `threads = N` produce byte-identical metrics
//! snapshots. The serial path is the same windowed algorithm run
//! inline, so there is exactly one scheduler to trust.
//!
//! ```
//! use mcn_sim::shard::{Fabric, Outbox, ParallelEngine, Quantum, RunGoal, Shard};
//! use mcn_sim::SimTime;
//!
//! /// A shard that fires one local event per pending token and then
//! /// forwards the token to the next shard in the ring.
//! struct Ring {
//!     tokens: Vec<(SimTime, u32)>,
//!     seen: u32,
//! }
//!
//! impl Shard for Ring {
//!     type Frame = u32;
//!     type Cmd = ();
//!     fn next_event(&mut self) -> Option<SimTime> {
//!         self.tokens.iter().map(|&(t, _)| t).min()
//!     }
//!     fn apply(&mut self, _at: SimTime, _cmd: ()) {}
//!     fn deliver(&mut self, at: SimTime, hops: u32) {
//!         self.tokens.push((at, hops));
//!     }
//!     fn run_window(&mut self, end: SimTime, outbox: &mut Outbox<u32>) -> u64 {
//!         let mut steps = 0;
//!         while let Some(i) = (0..self.tokens.len()).find(|&i| self.tokens[i].0 <= end) {
//!             let (t, hops) = self.tokens.remove(i);
//!             self.seen += 1;
//!             steps += 1;
//!             if hops > 0 {
//!                 outbox.emit(t, hops - 1); // arrives at t + link latency
//!             }
//!         }
//!         steps
//!     }
//! }
//!
//! /// Ring topology: shard `s` forwards to `s + 1`, one µs per hop.
//! struct RingFabric {
//!     n: usize,
//! }
//!
//! impl Fabric<Ring> for RingFabric {
//!     fn next_control(&mut self) -> Option<SimTime> {
//!         None
//!     }
//!     fn pop_controls(&mut self, _now: SimTime, _out: &mut Vec<(usize, SimTime, ())>) {}
//!     fn route(&mut self, from: usize, at: SimTime, hops: u32, out: &mut Vec<(usize, SimTime, u32)>) {
//!         out.push(((from + 1) % self.n, at + SimTime::from_us(1), hops));
//!     }
//! }
//!
//! let run = |threads: usize| {
//!     let mut shards: Vec<Ring> = (0..3)
//!         .map(|_| Ring { tokens: vec![], seen: 0 })
//!         .collect();
//!     shards[0].tokens.push((SimTime::ZERO, 7)); // 7 hops around the ring
//!     let mut fabric = RingFabric { n: 3 };
//!     let mut eng = ParallelEngine::new(Quantum::new(SimTime::from_us(1)));
//!     let mut now = SimTime::ZERO;
//!     let rep = eng.run(
//!         &mut shards,
//!         &mut fabric,
//!         &mut now,
//!         SimTime::from_ms(1),
//!         RunGoal::Deadline,
//!         threads,
//!     );
//!     assert!(rep.completed);
//!     (now, shards.iter().map(|s| s.seen).collect::<Vec<_>>())
//! };
//! // Serial and parallel runs agree exactly: same token counts, same clock.
//! assert_eq!(run(1), run(2));
//! assert_eq!(run(1).1.iter().sum::<u32>(), 8);
//! ```

use std::sync::mpsc;
use std::thread;

use crate::metrics::{Instrumented, MetricSink};
use crate::stats::Counter;
use crate::time::SimTime;

/// The synchronization window width: a conservative lower bound on the
/// time a cross-shard effect takes to reach another shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Quantum(SimTime);

impl Quantum {
    /// A quantum of `window` picoseconds-of-`SimTime`. Panics if zero:
    /// a zero-latency boundary cannot be sharded conservatively.
    pub fn new(window: SimTime) -> Self {
        assert!(
            window > SimTime::ZERO,
            "quantum must be positive: zero-latency cross-shard paths cannot be windowed"
        );
        Quantum(window)
    }

    /// The dist-gem5 rule for a switched fabric: any frame leaving a
    /// shard first pays the switch forwarding latency, then the egress
    /// link latency, before it can touch another shard.
    pub fn from_path(switch_latency: SimTime, link_latency: SimTime) -> Self {
        Self::new(switch_latency + link_latency)
    }

    /// The window width.
    pub fn window(&self) -> SimTime {
        self.0
    }
}

/// Cross-shard emissions collected during one window, in emission order.
#[derive(Debug)]
pub struct Outbox<F> {
    items: Vec<(SimTime, F)>,
}

impl<F> Outbox<F> {
    /// An empty outbox.
    pub fn new() -> Self {
        Outbox { items: Vec::new() }
    }

    /// Records a frame leaving the shard at time `at` (the time it hits
    /// the shard boundary, *before* any fabric latency).
    pub fn emit(&mut self, at: SimTime, frame: F) {
        self.items.push((at, frame));
    }

    /// Number of queued emissions.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if nothing was emitted.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

impl<F> Default for Outbox<F> {
    fn default() -> Self {
        Self::new()
    }
}

/// One independently-schedulable partition of a system: everything that
/// interacts at zero (or sub-quantum) latency must live in one shard.
///
/// The contract mirrors [`Component`](crate::engine::Component) but adds
/// the two channels a windowed scheduler needs: frames arriving from
/// other shards ([`deliver`](Shard::deliver)) and control commands from
/// the coordinator ([`apply`](Shard::apply)). Both are handed to the
/// shard at the **start** of a window and carry exact timestamps, so a
/// late hand-off cannot skew results.
pub trait Shard: Send {
    /// A cross-shard message (e.g. an Ethernet frame).
    type Frame: Send;
    /// A coordinator-issued control command (e.g. "crash DIMM 0").
    type Cmd: Send;

    /// Earliest pending local event, if any (clamped to the shard's own
    /// clock). Used by the coordinator to plan the next window.
    fn next_event(&mut self) -> Option<SimTime>;

    /// Applies a control command effective at `at` (always within or
    /// before the shard's next window).
    fn apply(&mut self, at: SimTime, cmd: Self::Cmd);

    /// Accepts a frame from another shard that enters this shard's
    /// ingress path at `at` (e.g. starts serialization on the downlink).
    fn deliver(&mut self, at: SimTime, frame: Self::Frame);

    /// Runs every local event with `time ≤ end`, pushing cross-shard
    /// emissions into `outbox` stamped with their emission time.
    /// Returns the number of event times processed (for activity and
    /// progress accounting).
    fn run_window(&mut self, end: SimTime, outbox: &mut Outbox<Self::Frame>) -> u64;

    /// True when every process owned by the shard has finished. The
    /// default claims completion, matching components that host none.
    fn procs_done(&self) -> bool {
        true
    }
}

/// The coordinator-side boundary logic: scheduled control events (e.g.
/// an [`OutagePlan`](crate::outage::OutagePlan)) and frame routing
/// between shards (e.g. the ToR switch). Runs only at barriers, on the
/// coordinator thread, in deterministic merged order — which is what
/// keeps stateful boundary components (a learning switch, a partition
/// filter) byte-identical across thread counts.
pub trait Fabric<S: Shard> {
    /// Earliest scheduled control event, if any.
    fn next_control(&mut self) -> Option<SimTime>;

    /// Pops every control event due at or before `now`, translating
    /// shard-directed ones into `(shard index, effective time, cmd)`
    /// entries. Coordinator-only effects (e.g. a switch partition) are
    /// applied internally.
    fn pop_controls(&mut self, now: SimTime, out: &mut Vec<(usize, SimTime, S::Cmd)>);

    /// Routes one frame emitted by shard `from` at time `at`, pushing
    /// `(destination shard, ingress time, frame)` deliveries. Dropping
    /// the frame (dead link, partition) is expressed by pushing nothing.
    fn route(&mut self, from: usize, at: SimTime, frame: S::Frame, out: &mut Vec<(usize, SimTime, S::Frame)>);
}

/// What [`ParallelEngine::run`] is asked to achieve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunGoal {
    /// Run every event up to the target time, then set the clock to it
    /// (the windowed analogue of
    /// [`ComponentExt::run_until`](crate::engine::ComponentExt::run_until)).
    Deadline,
    /// Run until every shard reports its processes done, failing if the
    /// target time passes first (the analogue of
    /// [`run_until_procs_done`](crate::engine::ComponentExt::run_until_procs_done)).
    ProcsDone,
}

/// Outcome of one [`ParallelEngine::run`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunReport {
    /// Whether the goal was met (`Deadline` always completes; `ProcsDone`
    /// fails on timeout, leaving the clock at the last barrier).
    pub completed: bool,
    /// Local event times processed plus control events applied — zero
    /// means the run was a pure clock advance.
    pub events: u64,
}

/// Deterministic counters for the windowed scheduler itself.
#[derive(Debug, Default, Clone, Copy)]
pub struct ShardStats {
    /// Synchronization windows executed (barrier count).
    pub windows: Counter,
    /// Cross-shard frames routed through the fabric.
    pub messages: Counter,
}

impl Instrumented for ShardStats {
    fn metrics(&self, out: &mut MetricSink) {
        out.counter("windows", self.windows.get());
        out.counter("messages", self.messages.get());
    }
}

/// What one shard reports back at a barrier.
struct ShardReport<F> {
    next_event: Option<SimTime>,
    procs_done: bool,
    emitted: Vec<(SimTime, F)>,
    steps: u64,
}

/// Per-shard work shipped with a window job.
struct ShardWork<C, F> {
    cmds: Vec<(SimTime, C)>,
    deliveries: Vec<(SimTime, F)>,
}

enum Job<C, F> {
    Round {
        end: Option<SimTime>,
        work: Vec<ShardWork<C, F>>,
    },
    Stop,
}

/// Applies pending work to one shard and (optionally) runs one window.
/// Shared verbatim by the serial and the threaded paths, so both drive
/// shards identically.
fn run_one<S: Shard>(
    shard: &mut S,
    end: Option<SimTime>,
    work: ShardWork<S::Cmd, S::Frame>,
) -> ShardReport<S::Frame> {
    for (at, cmd) in work.cmds {
        shard.apply(at, cmd);
    }
    for (at, frame) in work.deliveries {
        shard.deliver(at, frame);
    }
    let mut outbox = Outbox::new();
    let steps = match end {
        Some(end) => shard.run_window(end, &mut outbox),
        None => 0,
    };
    ShardReport {
        next_event: shard.next_event(),
        procs_done: shard.procs_done(),
        emitted: outbox.items,
        steps,
    }
}

/// The windowed conservative scheduler: plans quantum-bounded windows,
/// dispatches them to shards (inline or on worker threads), and merges
/// cross-shard traffic deterministically at each barrier. See the
/// [module docs](self) for the synchronization rule and the determinism
/// argument.
#[derive(Debug)]
pub struct ParallelEngine {
    quantum: Quantum,
    /// Scheduler counters (deterministic; safe to snapshot).
    pub stats: ShardStats,
}

impl ParallelEngine {
    /// A scheduler with the given synchronization quantum.
    pub fn new(quantum: Quantum) -> Self {
        ParallelEngine { quantum, stats: ShardStats::default() }
    }

    /// The configured quantum.
    pub fn quantum(&self) -> Quantum {
        self.quantum
    }

    /// Drives `shards` toward `target` under `goal` using `threads`
    /// worker threads (clamped to `[1, shards.len()]`; `1` runs the same
    /// windowed algorithm inline). `now` is the system clock, advanced
    /// to each barrier as windows complete.
    pub fn run<S, F>(
        &mut self,
        shards: &mut [S],
        fabric: &mut F,
        now: &mut SimTime,
        target: SimTime,
        goal: RunGoal,
        threads: usize,
    ) -> RunReport
    where
        S: Shard,
        F: Fabric<S>,
    {
        let n = shards.len();
        if n == 0 {
            if goal == RunGoal::Deadline {
                *now = target.max(*now);
            }
            return RunReport { completed: true, events: 0 };
        }
        let threads = threads.clamp(1, n);
        if threads == 1 {
            let mut dispatch = |end, cmds: Vec<Vec<(SimTime, S::Cmd)>>, dels: Vec<Vec<(SimTime, S::Frame)>>| {
                shards
                    .iter_mut()
                    .zip(cmds.into_iter().zip(dels))
                    .map(|(s, (cmds, deliveries))| run_one(s, end, ShardWork { cmds, deliveries }))
                    .collect()
            };
            return self.coordinate::<S, F>(n, fabric, now, target, goal, &mut dispatch);
        }

        let chunk = n.div_ceil(threads);
        let workers = n.div_ceil(chunk);
        thread::scope(|scope| {
            let (res_tx, res_rx) = mpsc::channel();
            let mut job_txs = Vec::with_capacity(workers);
            for (w, shard_chunk) in shards.chunks_mut(chunk).enumerate() {
                let (job_tx, job_rx) = mpsc::channel::<Job<S::Cmd, S::Frame>>();
                job_txs.push(job_tx);
                let res_tx = res_tx.clone();
                scope.spawn(move || {
                    while let Ok(job) = job_rx.recv() {
                        match job {
                            Job::Stop => break,
                            Job::Round { end, work } => {
                                let reports: Vec<_> = shard_chunk
                                    .iter_mut()
                                    .zip(work)
                                    .map(|(s, work)| run_one(s, end, work))
                                    .collect();
                                if res_tx.send((w, reports)).is_err() {
                                    break;
                                }
                            }
                        }
                    }
                });
            }
            let mut dispatch = |end, mut cmds: Vec<Vec<(SimTime, S::Cmd)>>, mut dels: Vec<Vec<(SimTime, S::Frame)>>| {
                for (w, job_tx) in job_txs.iter().enumerate() {
                    let lo = w * chunk;
                    let hi = n.min(lo + chunk);
                    let work = (lo..hi)
                        .map(|g| ShardWork {
                            cmds: std::mem::take(&mut cmds[g]),
                            deliveries: std::mem::take(&mut dels[g]),
                        })
                        .collect();
                    job_tx
                        .send(Job::Round { end, work })
                        .expect("shard worker exited early");
                }
                let mut out: Vec<Option<ShardReport<S::Frame>>> = (0..n).map(|_| None).collect();
                for _ in 0..workers {
                    let (w, reports) = res_rx.recv().expect("shard worker panicked");
                    for (i, r) in reports.into_iter().enumerate() {
                        out[w * chunk + i] = Some(r);
                    }
                }
                out.into_iter().map(|r| r.expect("missing shard report")).collect()
            };
            let report = self.coordinate::<S, F>(n, fabric, now, target, goal, &mut dispatch);
            for job_tx in &job_txs {
                let _ = job_tx.send(Job::Stop);
            }
            report
        })
    }

    /// The coordinator loop, shared by the inline and threaded paths.
    /// `dispatch` applies per-shard work and optionally runs one window
    /// on every shard, returning reports in shard order.
    #[allow(clippy::type_complexity)]
    fn coordinate<S, F>(
        &mut self,
        n: usize,
        fabric: &mut F,
        now: &mut SimTime,
        target: SimTime,
        goal: RunGoal,
        dispatch: &mut dyn FnMut(
            Option<SimTime>,
            Vec<Vec<(SimTime, S::Cmd)>>,
            Vec<Vec<(SimTime, S::Frame)>>,
        ) -> Vec<ShardReport<S::Frame>>,
    ) -> RunReport
    where
        S: Shard,
        F: Fabric<S>,
    {
        let one_ps = SimTime::from_ps(1);
        let span = self.quantum.window().saturating_sub(one_ps);
        let empty_cmds = || (0..n).map(|_| Vec::new()).collect::<Vec<_>>();
        let empty_dels = || (0..n).map(|_| Vec::new()).collect::<Vec<_>>();

        let mut pending: Vec<Vec<(SimTime, S::Frame)>> = empty_dels();
        let mut cmds: Vec<Vec<(SimTime, S::Cmd)>> = empty_cmds();
        let mut ctl_buf: Vec<(usize, SimTime, S::Cmd)> = Vec::new();
        let mut route_buf: Vec<(usize, SimTime, S::Frame)> = Vec::new();
        let mut events = 0u64;
        let mut idle_windows = 0u32;

        // Initial probe: learn every shard's next event and done flag
        // without running a window.
        let mut reports = dispatch(None, empty_cmds(), empty_dels());

        let completed = loop {
            if goal == RunGoal::ProcsDone && reports.iter().all(|r| r.procs_done) {
                break true;
            }

            // Plan the next window start: the earliest local event,
            // pending delivery, or scheduled control event.
            let mut t1: Option<SimTime> = None;
            let mut merge = |t: Option<SimTime>| {
                t1 = match (t1, t) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, b) => a.or(b),
                }
            };
            for r in &reports {
                merge(r.next_event);
            }
            for dels in &pending {
                merge(dels.iter().map(|&(at, _)| at).min());
            }
            merge(fabric.next_control());

            let t1 = match t1 {
                Some(t) if t.max(*now) <= target => t.max(*now),
                _ => {
                    // Nothing left inside the horizon.
                    if goal == RunGoal::Deadline {
                        *now = target.max(*now);
                    }
                    break goal == RunGoal::Deadline;
                }
            };
            *now = t1;

            // Controls due at the window start become per-shard commands
            // (and coordinator-side state changes) before any shard runs
            // past them — outages only ever land on window boundaries.
            fabric.pop_controls(t1, &mut ctl_buf);
            for (shard, at, cmd) in ctl_buf.drain(..) {
                events += 1;
                cmds[shard].push((at.max(t1), cmd));
            }

            // Close the window one picosecond short of the quantum so
            // every in-window emission lands strictly after it, and
            // never straddle the target or the next control event.
            let mut end = t1.checked_add(span).unwrap_or(SimTime::MAX).min(target);
            if let Some(ctl) = fabric.next_control() {
                end = end.min(ctl.saturating_sub(one_ps));
            }

            let events_before = events;
            let had_pending = pending.iter().any(|p| !p.is_empty());
            reports = dispatch(Some(end), std::mem::replace(&mut cmds, empty_cmds()), std::mem::replace(&mut pending, empty_dels()));
            self.stats.windows.inc();
            *now = end;

            // Barrier: merge emissions in (time, shard, emission order)
            // and route each through the fabric exactly once.
            let mut merged: Vec<(SimTime, usize, S::Frame)> = Vec::new();
            for (s, r) in reports.iter_mut().enumerate() {
                events += r.steps;
                for (at, frame) in r.emitted.drain(..) {
                    merged.push((at, s, frame));
                }
            }
            merged.sort_by_key(|&(at, s, _)| (at, s));
            for (at, s, frame) in merged {
                self.stats.messages.inc();
                fabric.route(s, at, frame, &mut route_buf);
            }
            for (dest, at, frame) in route_buf.drain(..) {
                pending[dest].push((at, frame));
            }

            // A window that applied nothing and processed nothing cannot
            // repeat forever: that is a shard advertising an event it
            // never consumes.
            if events == events_before && !had_pending {
                idle_windows += 1;
                assert!(
                    idle_windows < 10_000,
                    "windowed scheduler stalled at {now}: a shard reports a next event it never processes"
                );
            } else {
                idle_windows = 0;
            }
        };

        // Hand leftover in-flight deliveries to their shards before
        // returning so no frame is lost between run() calls.
        if pending.iter().any(|p| !p.is_empty()) {
            dispatch(None, empty_cmds(), std::mem::take(&mut pending));
        }
        RunReport { completed, events }
    }
}

impl Instrumented for ParallelEngine {
    fn metrics(&self, out: &mut MetricSink) {
        self.stats.metrics(out);
        out.counter("quantum_ps", self.quantum.window().as_ps());
    }
}
