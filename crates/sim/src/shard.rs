//! Conservative parallel discrete-event execution (the dist-gem5 rule).
//!
//! The single-threaded [`Engine`](crate::engine::Engine) drives every
//! component of a system from one loop. This module adds the classic
//! conservative alternative used by dist-gem5 (the paper's evaluation
//! substrate): partition the system into **shards** that only interact
//! through links with a known minimum latency, run each shard
//! independently up to a synchronization **quantum** derived from that
//! latency, and exchange cross-shard frames at barrier points through a
//! deterministic, sender-ordered mailbox.
//!
//! # The quantum rule
//!
//! If every cross-shard effect emitted at time `t` reaches its
//! destination shard no earlier than `t + Q` (for the MCN rack, `Q` =
//! switch forwarding latency + egress link latency), then a window
//! `[t1, t1 + Q)` can be simulated by all shards **without any
//! communication**: nothing emitted inside the window can land inside
//! it. [`ParallelEngine`] plans closed windows `[t1, t1 + Q − 1 ps]`
//! (the `− 1 ps` makes the bound strict), runs every shard to the window
//! end, then routes the collected emissions through the
//! [`Fabric`] at the barrier.
//!
//! # Lookahead coarsening and batched dispatch
//!
//! One barrier per quantum is correct but slow: a mostly idle system
//! (TCP timers, retransmission backoff) pays a full sync round every
//! 1.5 µs of simulated time. The coordinator therefore computes a
//! **lookahead horizon** each round: every shard reports a lower bound
//! on its next possible emission ([`Shard::next_emission`]), pending
//! deliveries are charged the shard's minimum ingress→egress
//! [`turnaround`](Shard::turnaround), and the window batch is extended
//! to `min_emission + Q − 1 ps` — the last instant provably free of
//! cross-shard effects. The extended batch ships as **one job** of
//! consecutive quantum sub-windows (a window plan), so channel and
//! barrier cost is paid once per batch instead of once per quantum.
//! Rounds in which a control event fired never extend (a command can
//! create emissions the pre-command bound did not account for), and no
//! batch ever crosses the next scheduled control event.
//!
//! Delivery and outbox buffers are recycled through a
//! [`FramePool`] owned by the coordinator, and
//! every 64 rounds the coordinator rebalances the static shard→worker
//! assignment from observed per-shard step counts (longest-processing-
//! time greedy). Neither affects results: the pool only hands out empty
//! buffers, and the assignment only decides *which thread* runs a
//! shard.
//!
//! # Determinism
//!
//! Emissions are merged with a single stable sort on `(time, shard
//! index)` per batch — per-shard emission order (`seq`) breaks the
//! remaining ties — and routed frames are handed back to the owning
//! shard at the start of its next batch. Because frames carry exact
//! timestamps and links tolerate future-dated sends, the final state is
//! **independent of the window size, batch size, and thread count**:
//! `threads = 1` and `threads = N` produce byte-identical metrics
//! snapshots, including every `sched.*` counter (lookahead, batching,
//! pooling, and rebalancing are all decided on the coordinator from
//! deterministic data). The serial path is the same batched algorithm
//! run inline, so there is exactly one scheduler to trust.
//!
//! # Hierarchical quantum domains
//!
//! The quantum rule composes: a [`Shard`] may itself *contain* a whole
//! [`ParallelEngine`] and drive it inside [`Shard::run_window`]. The
//! outer engine's quantum is derived from the slow inter-shard paths
//! (a datacenter fabric hop), the inner engines' quanta from the fast
//! intra-shard paths (a ToR hop), and each level is sound on its own
//! terms — the inner engine never sees the outer fabric, and the outer
//! engine only needs the containing shard's emission lower bounds to be
//! honest about anything that *leaves* it. Two invariants make the
//! nesting correct:
//!
//! 1. **Containment** — the inner engine is driven with
//!    [`RunGoal::Deadline`] to exactly the outer window end, so inner
//!    barriers are invisible from outside and the outer clock never
//!    runs ahead of an inner one.
//! 2. **Monotone hand-off** — frames entering the shard are delivered
//!    with their exact arrival timestamps (future-dated relative to the
//!    outer barrier), and frames leaving it keep the timestamps of
//!    their inner barriers, so neither direction loses precision at the
//!    domain boundary.
//!
//! Each level is a synchronization *domain* with its own window/barrier
//! cadence: intra-rack traffic syncs on the short quantum many times
//! per outer window, while cross-domain traffic pays the long quantum's
//! barrier only when it must. [`ParallelEngine::domain_metrics`]
//! renders any level's counters under a shared `domain.<name>.*`
//! schema so a hierarchy's cost split (e.g. `domain.cross_pod.barriers`
//! vs `domain.intra_rack.windows`) is visible in every snapshot, and
//! [`ShardStats::accumulate`] folds the many inner engines of one level
//! into a single figure first.
//!
//! ```
//! use mcn_sim::shard::{Fabric, Outbox, ParallelEngine, Quantum, RunGoal, Shard};
//! use mcn_sim::SimTime;
//!
//! /// A shard that fires one local event per pending token and then
//! /// forwards the token to the next shard in the ring.
//! struct Ring {
//!     tokens: Vec<(SimTime, u32)>,
//!     seen: u32,
//! }
//!
//! impl Shard for Ring {
//!     type Frame = u32;
//!     type Cmd = ();
//!     fn next_event(&mut self) -> Option<SimTime> {
//!         self.tokens.iter().map(|&(t, _)| t).min()
//!     }
//!     fn apply(&mut self, _at: SimTime, _cmd: ()) {}
//!     fn deliver(&mut self, at: SimTime, hops: u32) {
//!         self.tokens.push((at, hops));
//!     }
//!     fn run_window(&mut self, end: SimTime, outbox: &mut Outbox<u32>) -> u64 {
//!         let mut steps = 0;
//!         while let Some(i) = (0..self.tokens.len()).find(|&i| self.tokens[i].0 <= end) {
//!             let (t, hops) = self.tokens.remove(i);
//!             self.seen += 1;
//!             steps += 1;
//!             if hops > 0 {
//!                 outbox.emit(t, hops - 1); // arrives at t + link latency
//!             }
//!         }
//!         steps
//!     }
//! }
//!
//! /// Ring topology: shard `s` forwards to `s + 1`, one µs per hop.
//! struct RingFabric {
//!     n: usize,
//! }
//!
//! impl Fabric<Ring> for RingFabric {
//!     fn next_control(&mut self) -> Option<SimTime> {
//!         None
//!     }
//!     fn pop_controls(&mut self, _now: SimTime, _out: &mut Vec<(usize, SimTime, ())>) {}
//!     fn route(&mut self, from: usize, at: SimTime, hops: u32, out: &mut Vec<(usize, SimTime, u32)>) {
//!         out.push(((from + 1) % self.n, at + SimTime::from_us(1), hops));
//!     }
//! }
//!
//! let run = |threads: usize| {
//!     let mut shards: Vec<Ring> = (0..3)
//!         .map(|_| Ring { tokens: vec![], seen: 0 })
//!         .collect();
//!     shards[0].tokens.push((SimTime::ZERO, 7)); // 7 hops around the ring
//!     let mut fabric = RingFabric { n: 3 };
//!     let mut eng = ParallelEngine::new(Quantum::new(SimTime::from_us(1)));
//!     let mut now = SimTime::ZERO;
//!     let rep = eng.run(
//!         &mut shards,
//!         &mut fabric,
//!         &mut now,
//!         SimTime::from_ms(1),
//!         RunGoal::Deadline,
//!         threads,
//!     );
//!     assert!(rep.completed);
//!     (now, shards.iter().map(|s| s.seen).collect::<Vec<_>>())
//! };
//! // Serial and parallel runs agree exactly: same token counts, same clock.
//! assert_eq!(run(1), run(2));
//! assert_eq!(run(1).1.iter().sum::<u32>(), 8);
//! ```

use std::sync::{mpsc, Mutex};
use std::thread;

use crate::metrics::{Instrumented, MetricSink};
use crate::pool::{FramePool, PoolStats};
use crate::stats::Counter;
use crate::time::SimTime;

/// The synchronization window width: a conservative lower bound on the
/// time a cross-shard effect takes to reach another shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Quantum(SimTime);

impl Quantum {
    /// A quantum of `window` picoseconds-of-`SimTime`. Panics if zero:
    /// a zero-latency boundary cannot be sharded conservatively.
    pub fn new(window: SimTime) -> Self {
        assert!(
            window > SimTime::ZERO,
            "quantum must be positive: zero-latency cross-shard paths cannot be windowed"
        );
        Quantum(window)
    }

    /// The dist-gem5 rule for a switched fabric: any frame leaving a
    /// shard first pays the switch forwarding latency, then the egress
    /// link latency, before it can touch another shard.
    pub fn from_path(switch_latency: SimTime, link_latency: SimTime) -> Self {
        Self::new(switch_latency + link_latency)
    }

    /// The window width.
    pub fn window(&self) -> SimTime {
        self.0
    }
}

/// Cross-shard emissions collected during one window, in emission order.
#[derive(Debug)]
pub struct Outbox<F> {
    items: Vec<(SimTime, F)>,
}

impl<F> Outbox<F> {
    /// An empty outbox.
    pub fn new() -> Self {
        Outbox { items: Vec::new() }
    }

    /// An outbox backed by a recycled (empty) buffer from the frame
    /// pool, so steady-state rounds emit without allocating.
    fn seeded(items: Vec<(SimTime, F)>) -> Self {
        debug_assert!(items.is_empty(), "pooled outbox seeds must be cleared");
        Outbox { items }
    }

    /// Records a frame leaving the shard at time `at` (the time it hits
    /// the shard boundary, *before* any fabric latency).
    pub fn emit(&mut self, at: SimTime, frame: F) {
        self.items.push((at, frame));
    }

    /// Number of queued emissions.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if nothing was emitted.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

impl<F> Default for Outbox<F> {
    fn default() -> Self {
        Self::new()
    }
}

/// One independently-schedulable partition of a system: everything that
/// interacts at zero (or sub-quantum) latency must live in one shard.
///
/// The contract mirrors [`Component`](crate::engine::Component) but adds
/// the two channels a windowed scheduler needs: frames arriving from
/// other shards ([`deliver`](Shard::deliver)) and control commands from
/// the coordinator ([`apply`](Shard::apply)). Both are handed to the
/// shard at the **start** of a window and carry exact timestamps, so a
/// late hand-off cannot skew results.
pub trait Shard: Send {
    /// A cross-shard message (e.g. an Ethernet frame).
    type Frame: Send;
    /// A coordinator-issued control command (e.g. "crash DIMM 0").
    type Cmd: Send;

    /// Earliest pending local event, if any (clamped to the shard's own
    /// clock). Used by the coordinator to plan the next window.
    fn next_event(&mut self) -> Option<SimTime>;

    /// A **lower bound** on the time of the shard's next cross-shard
    /// emission, given its current state and no further deliveries or
    /// commands. `None` means the shard provably cannot emit again on
    /// its own. The coordinator uses the minimum of these bounds to
    /// coarsen windows: any window ending before `bound + Q` is free of
    /// cross-shard effects. Soundness requires *under*-estimating only
    /// — a bound that is too low merely wastes coarsening. The default
    /// reuses [`next_event`](Shard::next_event): an emission can only
    /// happen while an event is being processed, so the earliest event
    /// is always a sound (if conservative) bound.
    fn next_emission(&mut self) -> Option<SimTime> {
        self.next_event()
    }

    /// A **lower bound** on the delay between a cross-shard frame
    /// entering this shard ([`deliver`](Shard::deliver) ingress time)
    /// and the earliest emission that frame can cause. Used to keep the
    /// lookahead horizon sound when deliveries are pending at a window
    /// start. The default of zero is always sound.
    fn turnaround(&self) -> SimTime {
        SimTime::ZERO
    }

    /// Applies a control command effective at `at` (always within or
    /// before the shard's next window).
    fn apply(&mut self, at: SimTime, cmd: Self::Cmd);

    /// Accepts a frame from another shard that enters this shard's
    /// ingress path at `at` (e.g. starts serialization on the downlink).
    fn deliver(&mut self, at: SimTime, frame: Self::Frame);

    /// Runs every local event with `time ≤ end`, pushing cross-shard
    /// emissions into `outbox` stamped with their emission time.
    /// Returns the number of event times processed (for activity and
    /// progress accounting).
    fn run_window(&mut self, end: SimTime, outbox: &mut Outbox<Self::Frame>) -> u64;

    /// True when every process owned by the shard has finished. The
    /// default claims completion, matching components that host none.
    fn procs_done(&self) -> bool {
        true
    }
}

/// The coordinator-side boundary logic: scheduled control events (e.g.
/// an [`OutagePlan`](crate::outage::OutagePlan)) and frame routing
/// between shards (e.g. the ToR switch). Runs only at barriers, on the
/// coordinator thread, in deterministic merged order — which is what
/// keeps stateful boundary components (a learning switch, a partition
/// filter) byte-identical across thread counts.
pub trait Fabric<S: Shard> {
    /// Earliest scheduled control event, if any.
    fn next_control(&mut self) -> Option<SimTime>;

    /// Pops every control event due at or before `now`, translating
    /// shard-directed ones into `(shard index, effective time, cmd)`
    /// entries. Coordinator-only effects (e.g. a switch partition) are
    /// applied internally.
    fn pop_controls(&mut self, now: SimTime, out: &mut Vec<(usize, SimTime, S::Cmd)>);

    /// Routes one frame emitted by shard `from` at time `at`, pushing
    /// `(destination shard, ingress time, frame)` deliveries. Dropping
    /// the frame (dead link, partition) is expressed by pushing nothing.
    fn route(&mut self, from: usize, at: SimTime, frame: S::Frame, out: &mut Vec<(usize, SimTime, S::Frame)>);
}

/// What [`ParallelEngine::run`] is asked to achieve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunGoal {
    /// Run every event up to the target time, then set the clock to it
    /// (the windowed analogue of
    /// [`ComponentExt::run_until`](crate::engine::ComponentExt::run_until)).
    Deadline,
    /// Run until every shard reports its processes done, failing if the
    /// target time passes first (the analogue of
    /// [`run_until_procs_done`](crate::engine::ComponentExt::run_until_procs_done)).
    ProcsDone,
}

/// Outcome of one [`ParallelEngine::run`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunReport {
    /// Whether the goal was met (`Deadline` always completes; `ProcsDone`
    /// fails on timeout, leaving the clock at the last barrier).
    pub completed: bool,
    /// Local event times processed plus control events applied — zero
    /// means the run was a pure clock advance.
    pub events: u64,
}

/// Deterministic counters for the windowed scheduler itself. Every one
/// is computed on the coordinator from deterministic data, so they are
/// part of the byte-identity contract like any simulation counter.
#[derive(Debug, Default, Clone, Copy)]
pub struct ShardStats {
    /// Quantum sub-windows executed (including coalesced ones).
    pub windows: Counter,
    /// Cross-shard frames routed through the fabric.
    pub messages: Counter,
    /// Dispatch rounds (barriers): one batched job per shard each.
    pub batch_jobs: Counter,
    /// Extra sub-windows run without a barrier thanks to lookahead
    /// coarsening (`windows − batch_jobs`, summed per round).
    pub windows_coalesced: Counter,
    /// Scheduled load-rebalance points reached (every 64 rounds). The
    /// count is schedule-driven so it stays thread-count invariant.
    pub rebalances: Counter,
    /// Delivery/outbox buffer recycling through the coordinator's
    /// [`FramePool`].
    pub pool: PoolStats,
}

impl ShardStats {
    /// Folds another scheduler's counters into this one. Used to
    /// aggregate the many inner engines of one hierarchical quantum
    /// domain (every rack of a datacenter) into a single domain-level
    /// figure; see the [module docs](self). The pool counters are
    /// per-engine plumbing and fold along with the rest.
    pub fn accumulate(&mut self, other: &ShardStats) {
        self.windows.add(other.windows.get());
        self.messages.add(other.messages.get());
        self.batch_jobs.add(other.batch_jobs.get());
        self.windows_coalesced.add(other.windows_coalesced.get());
        self.rebalances.add(other.rebalances.get());
        self.pool.accumulate(&other.pool);
    }
}

impl Instrumented for ShardStats {
    fn metrics(&self, out: &mut MetricSink) {
        out.counter("windows", self.windows.get());
        out.counter("messages", self.messages.get());
        out.scoped("batch", |out| out.counter("jobs", self.batch_jobs.get()));
        out.scoped("lookahead", |out| {
            out.counter("windows_coalesced", self.windows_coalesced.get());
        });
        out.scoped("balance", |out| out.counter("rebalances", self.rebalances.get()));
        out.absorb("pool", &self.pool);
    }
}

/// The batch of consecutive quantum sub-windows one dispatch round
/// covers: ends at `first_end`, `first_end + step`, …, capped at `end`
/// (always at least one window). Shipped whole to each shard so the
/// barrier is paid once per batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct WindowPlan {
    first_end: SimTime,
    step: SimTime,
    end: SimTime,
}

impl WindowPlan {
    /// Number of sub-windows the plan executes (mirrors the loop in
    /// [`run_one`] exactly, for honest `sched.windows` accounting).
    fn windows(&self) -> u64 {
        if self.end <= self.first_end {
            return 1;
        }
        let extra_ps = (self.end - self.first_end).as_ps();
        1 + extra_ps.div_ceil(self.step.as_ps().max(1))
    }
}

/// What one shard reports back at a barrier.
struct ShardReport<F> {
    next_event: Option<SimTime>,
    next_emission: Option<SimTime>,
    turnaround: SimTime,
    procs_done: bool,
    emitted: Vec<(SimTime, F)>,
    /// The drained delivery buffer, handed back for pooling.
    scratch: Vec<(SimTime, F)>,
    steps: u64,
}

/// Per-shard work shipped with a window job. The `deliveries` and
/// `outbox` buffers come from the coordinator's frame pool and return
/// to it via the report.
struct ShardWork<C, F> {
    cmds: Vec<(SimTime, C)>,
    deliveries: Vec<(SimTime, F)>,
    outbox: Vec<(SimTime, F)>,
}

enum Job<C, F> {
    Round {
        plan: Option<WindowPlan>,
        work: Vec<(usize, ShardWork<C, F>)>,
    },
    Stop,
}

/// Applies pending work to one shard and (optionally) runs one batch of
/// windows. Shared verbatim by the serial and the threaded paths, so
/// both drive shards identically.
fn run_one<S: Shard>(
    shard: &mut S,
    plan: Option<WindowPlan>,
    mut work: ShardWork<S::Cmd, S::Frame>,
) -> ShardReport<S::Frame> {
    for (at, cmd) in work.cmds.drain(..) {
        shard.apply(at, cmd);
    }
    for (at, frame) in work.deliveries.drain(..) {
        shard.deliver(at, frame);
    }
    let mut outbox = Outbox::seeded(work.outbox);
    let mut steps = 0;
    if let Some(plan) = plan {
        let mut sub = plan.first_end.min(plan.end);
        loop {
            steps += shard.run_window(sub, &mut outbox);
            if sub >= plan.end {
                break;
            }
            sub = match sub.checked_add(plan.step) {
                Some(t) => t.min(plan.end),
                None => plan.end,
            };
        }
    }
    ShardReport {
        next_event: shard.next_event(),
        next_emission: shard.next_emission(),
        turnaround: shard.turnaround(),
        procs_done: shard.procs_done(),
        emitted: outbox.items,
        scratch: work.deliveries,
        steps,
    }
}

/// Builds this round's per-shard work, drawing delivery and outbox
/// buffers from the pool (pending buffers rotate out as deliveries and
/// rotate back via the report's scratch).
fn gather<C, F>(
    n: usize,
    pool: &mut FramePool<(SimTime, F)>,
    pending: &mut [Vec<(SimTime, F)>],
    cmds: &mut [Vec<(SimTime, C)>],
) -> Vec<ShardWork<C, F>> {
    (0..n)
        .map(|s| ShardWork {
            cmds: std::mem::take(&mut cmds[s]),
            deliveries: std::mem::replace(&mut pending[s], pool.take()),
            outbox: pool.take(),
        })
        .collect()
}

/// Contiguous near-even shard→worker split (the starting assignment,
/// matching serial iteration order).
fn split_even(n: usize, workers: usize) -> Vec<Vec<usize>> {
    let chunk = n.div_ceil(workers);
    (0..workers).map(|w| (w * chunk..n.min((w + 1) * chunk)).collect()).collect()
}

/// Longest-processing-time greedy rebalance: heaviest shards first,
/// each to the least-loaded worker, ties broken by lower index on both
/// sides. Purely a thread→shard mapping — results never depend on it.
fn balance(loads: &[u64], workers: usize) -> Vec<Vec<usize>> {
    let mut order: Vec<usize> = (0..loads.len()).collect();
    order.sort_by_key(|&s| (std::cmp::Reverse(loads[s]), s));
    let mut totals = vec![0u64; workers];
    let mut out = vec![Vec::new(); workers];
    for s in order {
        let w = (0..workers).min_by_key(|&w| (totals[w], w)).expect("workers >= 1");
        // +1 so idle shards still spread their fixed dispatch cost.
        totals[w] += loads[s] + 1;
        out[w].push(s);
    }
    out
}

/// How often (in dispatch rounds) the coordinator recomputes the
/// shard→worker assignment from observed step counts.
const REBALANCE_EVERY: u64 = 64;

/// The windowed conservative scheduler: plans quantum-bounded window
/// batches with lookahead coarsening, dispatches them to shards (inline
/// or on worker threads), and merges cross-shard traffic
/// deterministically at each barrier. See the [module docs](self) for
/// the synchronization rule and the determinism argument.
#[derive(Debug)]
pub struct ParallelEngine {
    quantum: Quantum,
    /// Scheduler counters (deterministic; safe to snapshot).
    pub stats: ShardStats,
}

impl ParallelEngine {
    /// A scheduler with the given synchronization quantum.
    pub fn new(quantum: Quantum) -> Self {
        ParallelEngine { quantum, stats: ShardStats::default() }
    }

    /// The configured quantum.
    pub fn quantum(&self) -> Quantum {
        self.quantum
    }

    /// Renders this engine's counters as one named synchronization
    /// *domain* of a quantum hierarchy (see the [module docs](self))
    /// under `domain.<name>.*`: the domain's quantum, its sub-windows
    /// executed, its barriers paid, and its cross-shard messages. The
    /// shared schema is what lets a snapshot compare levels directly
    /// (`domain.cross_pod.barriers` vs `domain.intra_rack.windows`).
    pub fn domain_metrics(&self, name: &str, out: &mut MetricSink) {
        Self::domain_metrics_for(name, self.quantum, &self.stats, out);
    }

    /// [`domain_metrics`](Self::domain_metrics) for counters that were
    /// first folded across many engines with [`ShardStats::accumulate`]
    /// (every rack-level engine of a datacenter forms *one* intra-rack
    /// domain). `quantum` is the shared window width of those engines.
    pub fn domain_metrics_for(name: &str, quantum: Quantum, stats: &ShardStats, out: &mut MetricSink) {
        out.scoped("domain", |out| {
            out.scoped(name, |out| {
                out.counter("quantum_ps", quantum.window().as_ps());
                out.counter("windows", stats.windows.get());
                out.counter("barriers", stats.batch_jobs.get());
                out.counter("messages", stats.messages.get());
            });
        });
    }

    /// Drives `shards` toward `target` under `goal` using `threads`
    /// worker threads (clamped to `[1, shards.len()]`; `1` runs the same
    /// batched algorithm inline). `now` is the system clock, advanced
    /// to each barrier as window batches complete.
    pub fn run<S, F>(
        &mut self,
        shards: &mut [S],
        fabric: &mut F,
        now: &mut SimTime,
        target: SimTime,
        goal: RunGoal,
        threads: usize,
    ) -> RunReport
    where
        S: Shard,
        F: Fabric<S>,
    {
        let n = shards.len();
        if n == 0 {
            if goal == RunGoal::Deadline {
                *now = target.max(*now);
            }
            return RunReport { completed: true, events: 0 };
        }
        let threads = threads.clamp(1, n);
        if threads == 1 {
            let mut dispatch = |plan, work: Vec<ShardWork<S::Cmd, S::Frame>>, _assign: Option<Vec<Vec<usize>>>| {
                shards
                    .iter_mut()
                    .zip(work)
                    .map(|(s, w)| run_one(s, plan, w))
                    .collect()
            };
            return self.coordinate::<S, F>(n, fabric, now, target, goal, threads, &mut dispatch);
        }

        // Shards sit behind shared mutex slots so the shard→worker
        // assignment can move between rounds without moving shard data.
        // Assignments are always disjoint, so locks never contend; the
        // mutex exists to satisfy the borrow checker across threads.
        let slots: Vec<Mutex<&mut S>> = shards.iter_mut().map(Mutex::new).collect();
        let slots = &slots;
        thread::scope(|scope| {
            let (res_tx, res_rx) = mpsc::channel();
            // The coordinator doubles as worker 0 and runs its share
            // inline while the spawned workers chew on theirs, so only
            // `threads − 1` job channels exist.
            let mut job_txs = Vec::with_capacity(threads - 1);
            for _ in 1..threads {
                let (job_tx, job_rx) = mpsc::channel::<Job<S::Cmd, S::Frame>>();
                job_txs.push(job_tx);
                let res_tx = res_tx.clone();
                scope.spawn(move || {
                    while let Ok(job) = job_rx.recv() {
                        match job {
                            Job::Stop => break,
                            Job::Round { plan, work } => {
                                let reports: Vec<_> = work
                                    .into_iter()
                                    .map(|(idx, w)| {
                                        let mut shard =
                                            slots[idx].lock().expect("shard mutex poisoned");
                                        (idx, run_one(&mut **shard, plan, w))
                                    })
                                    .collect();
                                if res_tx.send(reports).is_err() {
                                    break;
                                }
                            }
                        }
                    }
                });
            }
            let mut assign = split_even(n, threads);
            let mut dispatch = |plan, work: Vec<ShardWork<S::Cmd, S::Frame>>, new_assign: Option<Vec<Vec<usize>>>| {
                if let Some(a) = new_assign {
                    assign = a;
                }
                let mut work: Vec<Option<_>> = work.into_iter().map(Some).collect();
                for (w, job_tx) in job_txs.iter().enumerate() {
                    let batch: Vec<_> = assign[w + 1]
                        .iter()
                        .map(|&s| (s, work[s].take().expect("shard assigned twice")))
                        .collect();
                    job_tx
                        .send(Job::Round { plan, work: batch })
                        .expect("shard worker exited early");
                }
                let mut out: Vec<Option<ShardReport<S::Frame>>> = (0..n).map(|_| None).collect();
                for &s in &assign[0] {
                    let w = work[s].take().expect("shard assigned twice");
                    let mut shard = slots[s].lock().expect("shard mutex poisoned");
                    out[s] = Some(run_one(&mut **shard, plan, w));
                }
                for _ in 1..threads {
                    for (s, r) in res_rx.recv().expect("shard worker panicked") {
                        out[s] = Some(r);
                    }
                }
                out.into_iter().map(|r| r.expect("missing shard report")).collect()
            };
            let report = self.coordinate::<S, F>(n, fabric, now, target, goal, threads, &mut dispatch);
            for job_tx in &job_txs {
                let _ = job_tx.send(Job::Stop);
            }
            report
        })
    }

    /// The coordinator loop, shared by the inline and threaded paths.
    /// `dispatch` applies per-shard work, optionally runs one window
    /// batch on every shard, and optionally installs a new shard→worker
    /// assignment; it returns reports in shard order.
    #[allow(clippy::type_complexity, clippy::too_many_arguments)]
    fn coordinate<S, F>(
        &mut self,
        n: usize,
        fabric: &mut F,
        now: &mut SimTime,
        target: SimTime,
        goal: RunGoal,
        workers: usize,
        dispatch: &mut dyn FnMut(
            Option<WindowPlan>,
            Vec<ShardWork<S::Cmd, S::Frame>>,
            Option<Vec<Vec<usize>>>,
        ) -> Vec<ShardReport<S::Frame>>,
    ) -> RunReport
    where
        S: Shard,
        F: Fabric<S>,
    {
        let one_ps = SimTime::from_ps(1);
        let quantum = self.quantum.window();
        let span = quantum.saturating_sub(one_ps);

        // Enough capacity that the 2·n buffers in flight each round all
        // come back without discards.
        let mut pool: FramePool<(SimTime, S::Frame)> = FramePool::new(2 * n + 4);
        let mut pending: Vec<Vec<(SimTime, S::Frame)>> = (0..n).map(|_| Vec::new()).collect();
        let mut cmds: Vec<Vec<(SimTime, S::Cmd)>> = (0..n).map(|_| Vec::new()).collect();
        let mut ctl_buf: Vec<(usize, SimTime, S::Cmd)> = Vec::new();
        let mut route_buf: Vec<(usize, SimTime, S::Frame)> = Vec::new();
        // The barrier merge scratch, reused across rounds (one stable
        // sort per batch, zero steady-state allocation).
        let mut merged: Vec<(SimTime, usize, S::Frame)> = Vec::new();
        // Per-shard steps since the last rebalance point.
        let mut loads: Vec<u64> = vec![0; n];
        let mut events = 0u64;
        let mut idle_rounds = 0u32;
        let mut round = 0u64;

        // Initial probe: learn every shard's next event, emission bound
        // and done flag without running a window.
        let mut reports = dispatch(None, gather(n, &mut pool, &mut pending, &mut cmds), None);
        for r in reports.iter_mut() {
            pool.put(std::mem::take(&mut r.emitted));
            pool.put(std::mem::take(&mut r.scratch));
        }

        let completed = loop {
            if goal == RunGoal::ProcsDone && reports.iter().all(|r| r.procs_done) {
                break true;
            }

            // Plan the next window start: the earliest local event,
            // pending delivery, or scheduled control event.
            let mut t1: Option<SimTime> = None;
            let mut merge = |t: Option<SimTime>| {
                t1 = match (t1, t) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, b) => a.or(b),
                }
            };
            for r in &reports {
                merge(r.next_event);
            }
            for dels in &pending {
                merge(dels.iter().map(|&(at, _)| at).min());
            }
            merge(fabric.next_control());

            let t1 = match t1 {
                Some(t) if t.max(*now) <= target => t.max(*now),
                _ => {
                    // Nothing left inside the horizon.
                    if goal == RunGoal::Deadline {
                        *now = target.max(*now);
                    }
                    break goal == RunGoal::Deadline;
                }
            };
            *now = t1;

            // Controls due at the window start become per-shard commands
            // (and coordinator-side state changes) before any shard runs
            // past them — outages only ever land on window boundaries.
            fabric.pop_controls(t1, &mut ctl_buf);
            let controls_fired = !ctl_buf.is_empty();
            for (shard, at, cmd) in ctl_buf.drain(..) {
                events += 1;
                cmds[shard].push((at.max(t1), cmd));
            }

            // Base window: one quantum, closed one picosecond short so
            // every in-window emission lands strictly after it.
            let base_end = t1.checked_add(span).unwrap_or(SimTime::MAX).min(target);
            let mut end = base_end;

            // Lookahead coarsening: extend the batch to the last instant
            // provably free of cross-shard effects. `min_emit` is the
            // earliest any shard could emit — from its own reported
            // bound, or from a pending delivery plus its turnaround. A
            // frame emitted at `e` lands no earlier than `e + Q`, so
            // every window ending by `min_emit + Q − 1 ps` is safe.
            // Rounds with control commands never extend: a command can
            // create emissions the pre-command bounds did not see.
            if !controls_fired {
                let mut min_emit: Option<SimTime> = None;
                for (s, r) in reports.iter().enumerate() {
                    let mut bound = r.next_emission;
                    if let Some(pmin) = pending[s].iter().map(|&(at, _)| at).min() {
                        let via = pmin.checked_add(r.turnaround).unwrap_or(SimTime::MAX);
                        bound = Some(bound.map_or(via, |b| b.min(via)));
                    }
                    if let Some(b) = bound {
                        min_emit = Some(min_emit.map_or(b, |m| m.min(b)));
                    }
                }
                let horizon = match min_emit {
                    // No shard can ever emit again: the rest of the run
                    // is one barrier-free batch.
                    None => target,
                    Some(e) => e.checked_add(span).unwrap_or(SimTime::MAX).min(target),
                };
                end = end.max(horizon);
            }
            // Never straddle the next control event (outages must land
            // on batch boundaries) — this clamp wins over coarsening.
            if let Some(ctl) = fabric.next_control() {
                end = end.min(ctl.saturating_sub(one_ps));
            }
            debug_assert!(end >= t1, "window end before its start");

            let plan = WindowPlan { first_end: base_end.min(end), step: quantum, end };
            let wins = plan.windows();
            round += 1;
            self.stats.windows.add(wins);
            self.stats.batch_jobs.inc();
            if wins > 1 {
                self.stats.windows_coalesced.add(wins - 1);
            }
            // Rebalance on a fixed round schedule so the decision (and
            // its counter) is thread-count invariant; the assignment
            // itself only matters when real workers exist.
            let new_assign = if round.is_multiple_of(REBALANCE_EVERY) {
                self.stats.rebalances.inc();
                let a = (workers > 1).then(|| balance(&loads, workers));
                loads.iter_mut().for_each(|l| *l = 0);
                a
            } else {
                None
            };

            let events_before = events;
            let had_pending = pending.iter().any(|p| !p.is_empty());
            reports = dispatch(Some(plan), gather(n, &mut pool, &mut pending, &mut cmds), new_assign);
            *now = end;

            // Barrier: merge emissions with one stable sort on
            // (time, shard) — per-shard emission order breaks ties —
            // and route each through the fabric exactly once.
            merged.clear();
            for (s, r) in reports.iter_mut().enumerate() {
                events += r.steps;
                loads[s] += r.steps;
                merged.extend(r.emitted.drain(..).map(|(at, frame)| (at, s, frame)));
                pool.put(std::mem::take(&mut r.emitted));
                pool.put(std::mem::take(&mut r.scratch));
            }
            merged.sort_by_key(|&(at, s, _)| (at, s));
            for (at, s, frame) in merged.drain(..) {
                self.stats.messages.inc();
                fabric.route(s, at, frame, &mut route_buf);
            }
            for (dest, at, frame) in route_buf.drain(..) {
                pending[dest].push((at, frame));
            }

            // A round that applied nothing and processed nothing cannot
            // repeat forever: that is a shard advertising an event it
            // never consumes.
            if events == events_before && !had_pending {
                idle_rounds += 1;
                assert!(
                    idle_rounds < 10_000,
                    "windowed scheduler stalled at {now}: a shard reports a next event it never processes"
                );
            } else {
                idle_rounds = 0;
            }
        };

        // Hand leftover in-flight deliveries to their shards before
        // returning so no frame is lost between run() calls.
        if pending.iter().any(|p| !p.is_empty()) {
            dispatch(None, gather(n, &mut pool, &mut pending, &mut cmds), None);
        }
        // Fold this run's pool accounting into the persistent counters.
        self.stats.pool.allocated.add(pool.stats.allocated.get());
        self.stats.pool.reused.add(pool.stats.reused.get());
        self.stats.pool.returned.add(pool.stats.returned.get());
        self.stats.pool.discarded.add(pool.stats.discarded.get());
        RunReport { completed, events }
    }
}

impl Instrumented for ParallelEngine {
    fn metrics(&self, out: &mut MetricSink) {
        self.stats.metrics(out);
        out.counter("quantum_ps", self.quantum.window().as_ps());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Emits `(shard id, seq)` tokens at scripted times; never delivers.
    struct Emitter {
        id: u32,
        script: Vec<(SimTime, u32)>,
        cursor: usize,
    }

    impl Shard for Emitter {
        type Frame = (u32, u32);
        type Cmd = ();
        fn next_event(&mut self) -> Option<SimTime> {
            self.script.get(self.cursor).map(|&(t, _)| t)
        }
        fn apply(&mut self, _at: SimTime, _cmd: ()) {}
        fn deliver(&mut self, _at: SimTime, _frame: (u32, u32)) {}
        fn run_window(&mut self, end: SimTime, outbox: &mut Outbox<(u32, u32)>) -> u64 {
            let mut steps = 0;
            while let Some(&(t, seq)) = self.script.get(self.cursor) {
                if t > end {
                    break;
                }
                outbox.emit(t, (self.id, seq));
                self.cursor += 1;
                steps += 1;
            }
            steps
        }
    }

    /// Sink fabric: records the exact order frames reach `route`.
    #[derive(Default)]
    struct Recorder {
        order: Vec<(SimTime, u32, u32)>,
    }

    impl Fabric<Emitter> for Recorder {
        fn next_control(&mut self) -> Option<SimTime> {
            None
        }
        fn pop_controls(&mut self, _now: SimTime, _out: &mut Vec<(usize, SimTime, ())>) {}
        fn route(
            &mut self,
            _from: usize,
            at: SimTime,
            frame: (u32, u32),
            _out: &mut Vec<(usize, SimTime, (u32, u32))>,
        ) {
            self.order.push((at, frame.0, frame.1));
        }
    }

    fn merge_order(threads: usize) -> Vec<(SimTime, u32, u32)> {
        // Three shards emitting two frames per 100 ns tick, all at the
        // same timestamps, so the batched merge has real ties to break:
        // across shards (by index) and within a shard (by emission seq).
        let mut shards: Vec<Emitter> = (0..3)
            .map(|id| Emitter {
                id,
                script: (0u32..40).map(|i| (SimTime::from_ns(100 * u64::from(i / 2)), i)).collect(),
                cursor: 0,
            })
            .collect();
        let mut fabric = Recorder::default();
        let mut eng = ParallelEngine::new(Quantum::new(SimTime::from_us(1)));
        let mut now = SimTime::ZERO;
        let rep = eng.run(
            &mut shards,
            &mut fabric,
            &mut now,
            SimTime::from_ms(1),
            RunGoal::Deadline,
            threads,
        );
        assert!(rep.completed);
        assert_eq!(fabric.order.len(), 3 * 40);
        fabric.order
    }

    #[test]
    fn batched_merge_keeps_time_shard_seq_order() {
        let serial = merge_order(1);
        // The merged route order is fully sorted by (time, shard, seq):
        // the stable per-batch sort must not reorder equal keys.
        let mut expected = serial.clone();
        expected.sort();
        assert_eq!(serial, expected, "merge order is not (time, shard, seq)");
        // And it is identical on every thread count.
        assert_eq!(serial, merge_order(2), "2-thread merge order diverged");
        assert_eq!(serial, merge_order(3), "3-thread merge order diverged");
    }

    /// Fires local events every 50 ns but never emits, so lookahead
    /// wants to coalesce the whole run into one batch.
    struct Ticker {
        times: Vec<SimTime>,
        cursor: usize,
        cmd_at: Option<SimTime>,
        processed_before_cmd: Vec<SimTime>,
    }

    impl Shard for Ticker {
        type Frame = ();
        type Cmd = u8;
        fn next_event(&mut self) -> Option<SimTime> {
            self.times.get(self.cursor).copied()
        }
        fn next_emission(&mut self) -> Option<SimTime> {
            None // provably silent: this shard never emits
        }
        fn apply(&mut self, at: SimTime, _cmd: u8) {
            self.cmd_at = Some(at);
        }
        fn deliver(&mut self, _at: SimTime, _frame: ()) {}
        fn run_window(&mut self, end: SimTime, _outbox: &mut Outbox<()>) -> u64 {
            let mut steps = 0;
            while let Some(&t) = self.times.get(self.cursor) {
                if t > end {
                    break;
                }
                if self.cmd_at.is_none() {
                    self.processed_before_cmd.push(t);
                }
                self.cursor += 1;
                steps += 1;
            }
            steps
        }
    }

    /// One scheduled control command for shard 0.
    struct OneShot {
        fire: Option<SimTime>,
    }

    impl Fabric<Ticker> for OneShot {
        fn next_control(&mut self) -> Option<SimTime> {
            self.fire
        }
        fn pop_controls(&mut self, now: SimTime, out: &mut Vec<(usize, SimTime, u8)>) {
            if let Some(t) = self.fire {
                if t <= now {
                    self.fire = None;
                    out.push((0, t, 1));
                }
            }
        }
        fn route(&mut self, _from: usize, _at: SimTime, _frame: (), _out: &mut Vec<(usize, SimTime, ())>) {}
    }

    #[test]
    fn lookahead_never_admits_a_window_past_the_next_control() {
        let ctl = SimTime::from_us(1);
        let mut shards = vec![Ticker {
            times: (0..100).map(|i| SimTime::from_ns(50 * i)).collect(),
            cursor: 0,
            cmd_at: None,
            processed_before_cmd: Vec::new(),
        }];
        let mut fabric = OneShot { fire: Some(ctl) };
        let mut eng = ParallelEngine::new(Quantum::new(SimTime::from_ns(200)));
        let mut now = SimTime::ZERO;
        let rep = eng.run(
            &mut shards,
            &mut fabric,
            &mut now,
            SimTime::from_us(5),
            RunGoal::Deadline,
            1,
        );
        assert!(rep.completed);

        // Coarsening actually fired (the silent shard invites huge
        // batches)…
        assert!(
            eng.stats.windows_coalesced.get() > 0,
            "lookahead never coalesced: the test exercises nothing"
        );
        // …but the command still landed exactly at its scheduled time,
        // and no event at or past the control ran before it: the batch
        // was clamped to end strictly before the control.
        assert_eq!(shards[0].cmd_at, Some(ctl), "control command missed or shifted");
        let before = &shards[0].processed_before_cmd;
        assert!(
            before.iter().all(|&t| t < ctl),
            "an event at or past the control ran before the command applied"
        );
        // Every pre-control event did run before the command (events at
        // 0, 50 ns, …, 950 ns).
        assert_eq!(before.len(), 20);
    }

    #[test]
    fn balance_is_deterministic_lpt() {
        let loads = [10, 1, 1, 1, 7, 3];
        let a = balance(&loads, 2);
        assert_eq!(a, balance(&loads, 2), "balance is not deterministic");
        // LPT with +1 dispatch cost: 0→w0 (11), 4→w1 (8), 5→w1 (12),
        // 1→w0 (13), 2→w1 (14), 3→w0 (15).
        assert_eq!(a, vec![vec![0, 1, 3], vec![4, 5, 2]]);
        // Every shard appears exactly once.
        let mut seen: Vec<usize> = a.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..loads.len()).collect::<Vec<_>>());
    }

    #[test]
    fn window_plan_counts_match_run_one_loop() {
        let q = SimTime::from_ns(200);
        let plan = |first: u64, end: u64| WindowPlan {
            first_end: SimTime::from_ns(first),
            step: q,
            end: SimTime::from_ns(end),
        };
        assert_eq!(plan(199, 199).windows(), 1);
        assert_eq!(plan(199, 150).windows(), 1); // clamped batch: end < first
        assert_eq!(plan(199, 399).windows(), 2);
        assert_eq!(plan(199, 400).windows(), 3); // partial final window
        assert_eq!(plan(199, 999).windows(), 5);
    }
}
