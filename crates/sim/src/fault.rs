//! Deterministic fault injection.
//!
//! A [`FaultPlan`] is a declarative description of every fault a run should
//! experience: per-component *rates* (a Bernoulli probability rolled each
//! time the component reaches an injection point) and *scheduled one-shot
//! events* (a fault that fires the first time the component passes an
//! injection point at or after a given simulated time). Components receive
//! a [`FaultInjector`] handle carved out of the plan and query it on their
//! hot paths.
//!
//! Everything is reproducible from the plan's single seed:
//!
//! * each component's random stream is derived as
//!   `DetRng::new(seed).fork(hash(component))`, so streams are independent
//!   of each other and of the order in which injectors are created, and
//! * a rate of zero never consumes a draw ([`DetRng::chance`] short-cuts),
//!   so an *inert* plan is behaviourally identical to no plan at all —
//!   the determinism tests that compare instrumented and plain runs hold.
//!
//! ```
//! use mcn_sim::fault::{FaultKind, FaultPlan};
//! use mcn_sim::SimTime;
//!
//! let mut plan = FaultPlan::new(42);
//! plan.rate("link.up0", FaultKind::Drop, 0.01);
//! plan.at("alert", FaultKind::Drop, SimTime::from_us(5));
//! let mut link = plan.injector("link.up0");
//! let mut alert = plan.injector("alert");
//! assert!(!alert.fires(FaultKind::Drop, SimTime::ZERO));
//! assert!(alert.fires(FaultKind::Drop, SimTime::from_us(7))); // one-shot due
//! assert!(!alert.fires(FaultKind::Drop, SimTime::from_us(7))); // consumed
//! let _ = link.fires(FaultKind::Drop, SimTime::ZERO); // 1% roll
//! ```

use std::collections::HashMap;
use std::collections::VecDeque;

use crate::{DetRng, SimTime};

/// The kinds of faults a plan can inject. What each kind *means* is up to
/// the component: a link interprets `Drop` as frame loss, an interrupt line
/// as a lost edge, a DMA engine interprets `Stall` as a descriptor that
/// never completes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultKind {
    /// Flip one bit of some payload (ECC/CRC escape, wire corruption).
    BitFlip,
    /// Lose the event or message entirely.
    Drop,
    /// Deliver late.
    Delay,
    /// Hang: the operation makes no progress until externally recovered.
    Stall,
}

impl FaultKind {
    const ALL: [FaultKind; 4] = [
        FaultKind::BitFlip,
        FaultKind::Drop,
        FaultKind::Delay,
        FaultKind::Stall,
    ];

    fn idx(self) -> usize {
        match self {
            FaultKind::BitFlip => 0,
            FaultKind::Drop => 1,
            FaultKind::Delay => 2,
            FaultKind::Stall => 3,
        }
    }
}

/// A seeded, declarative fault schedule for a whole system.
///
/// Build one, declare rates and one-shot events against *component names*
/// (free-form strings; system crates document the names they query), then
/// hand each component an injector with [`injector`](Self::injector).
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    seed: u64,
    rates: HashMap<(String, FaultKind), f64>,
    oneshots: HashMap<String, Vec<(SimTime, FaultKind)>>,
}

/// FNV-1a; stable component-name → fork-stream mapping.
fn stream_of(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

impl FaultPlan {
    /// An empty (inert) plan with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            rates: HashMap::new(),
            oneshots: HashMap::new(),
        }
    }

    /// The seed every injector stream derives from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Declares that `component` suffers a `kind` fault with probability
    /// `p` (clamped to `[0, 1]`) at each injection point it reaches.
    pub fn rate(&mut self, component: &str, kind: FaultKind, p: f64) -> &mut Self {
        self.rates
            .insert((component.to_string(), kind), p.clamp(0.0, 1.0));
        self
    }

    /// Schedules a one-shot `kind` fault: it fires the first time
    /// `component` queries that kind at or after `at`.
    pub fn at(&mut self, component: &str, kind: FaultKind, at: SimTime) -> &mut Self {
        self.oneshots
            .entry(component.to_string())
            .or_default()
            .push((at, kind));
        self
    }

    /// Carves out the injector for `component`. Calling twice with the same
    /// name yields injectors with identical streams (replay), and the
    /// stream does not depend on what other components exist.
    pub fn injector(&self, component: &str) -> FaultInjector {
        let mut rates = [0.0f64; 4];
        for kind in FaultKind::ALL {
            if let Some(&p) = self.rates.get(&(component.to_string(), kind)) {
                rates[kind.idx()] = p;
            }
        }
        let mut oneshots: [VecDeque<SimTime>; 4] = Default::default();
        if let Some(evs) = self.oneshots.get(component) {
            let mut evs = evs.clone();
            evs.sort();
            for (at, kind) in evs {
                oneshots[kind.idx()].push_back(at);
            }
        }
        FaultInjector {
            rng: DetRng::new(self.seed).fork(stream_of(component)),
            rates,
            oneshots,
        }
    }
}

/// A component's handle into a [`FaultPlan`]: owns the component's derived
/// random stream and its slice of the schedule.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    rng: DetRng,
    rates: [f64; 4],
    oneshots: [VecDeque<SimTime>; 4],
}

impl Default for FaultInjector {
    fn default() -> Self {
        Self::none()
    }
}

impl FaultInjector {
    /// An inert injector: nothing ever fires and no draws are consumed.
    /// The default wiring for systems built without a fault plan.
    pub fn none() -> Self {
        FaultInjector {
            rng: DetRng::new(0),
            rates: [0.0; 4],
            oneshots: Default::default(),
        }
    }

    /// `true` if this injector can ever fire (any nonzero rate or pending
    /// one-shot). Systems use this to decide whether to arm recovery
    /// machinery (e.g. a fallback poller) without perturbing fault-free
    /// baselines.
    pub fn is_active(&self) -> bool {
        self.rates.iter().any(|&p| p > 0.0) || self.oneshots.iter().any(|q| !q.is_empty())
    }

    /// Should a `kind` fault fire at this injection point? Consumes at most
    /// one due one-shot; otherwise rolls the declared rate. A zero rate
    /// consumes no randomness.
    pub fn fires(&mut self, kind: FaultKind, now: SimTime) -> bool {
        let q = &mut self.oneshots[kind.idx()];
        if q.front().is_some_and(|&at| at <= now) {
            q.pop_front();
            return true;
        }
        self.rng.chance(self.rates[kind.idx()])
    }

    /// The injector's random stream, for picking fault *details* (which
    /// bit, how long a delay) deterministically.
    pub fn rng(&mut self) -> &mut DetRng {
        &mut self.rng
    }

    /// Flips one uniformly chosen bit of `bytes` (no-op on an empty slice).
    /// Returns the flipped byte index.
    pub fn flip_bit(&mut self, bytes: &mut [u8]) -> Option<usize> {
        if bytes.is_empty() {
            return None;
        }
        let idx = self.rng.next_below(bytes.len() as u64) as usize;
        let bit = self.rng.next_below(8) as u8;
        bytes[idx] ^= 1 << bit;
        Some(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_decisions() {
        let mut plan = FaultPlan::new(7);
        plan.rate("x", FaultKind::Drop, 0.3);
        let mut a = plan.injector("x");
        let mut b = plan.injector("x");
        for _ in 0..1000 {
            assert_eq!(
                a.fires(FaultKind::Drop, SimTime::ZERO),
                b.fires(FaultKind::Drop, SimTime::ZERO)
            );
        }
    }

    #[test]
    fn components_are_independent_of_each_other_and_of_creation_order() {
        let mut plan = FaultPlan::new(9);
        plan.rate("a", FaultKind::Drop, 0.5);
        plan.rate("b", FaultKind::Drop, 0.5);
        let mut a1 = plan.injector("a");
        let seq_a1: Vec<bool> = (0..64).map(|_| a1.fires(FaultKind::Drop, SimTime::ZERO)).collect();
        // Recreate "a" *after* "b" — its stream must be unchanged.
        let mut b = plan.injector("b");
        let mut a2 = plan.injector("a");
        let seq_b: Vec<bool> = (0..64).map(|_| b.fires(FaultKind::Drop, SimTime::ZERO)).collect();
        let seq_a2: Vec<bool> = (0..64).map(|_| a2.fires(FaultKind::Drop, SimTime::ZERO)).collect();
        assert_eq!(seq_a1, seq_a2);
        assert_ne!(seq_a1, seq_b, "distinct components see distinct streams");
    }

    #[test]
    fn rates_are_approximately_honored() {
        let mut plan = FaultPlan::new(3);
        plan.rate("l", FaultKind::BitFlip, 0.25);
        let mut inj = plan.injector("l");
        let hits = (0..10_000)
            .filter(|_| inj.fires(FaultKind::BitFlip, SimTime::ZERO))
            .count();
        assert!((2_200..2_800).contains(&hits), "hits {hits}");
    }

    #[test]
    fn oneshots_fire_once_in_time_order() {
        let mut plan = FaultPlan::new(1);
        plan.at("c", FaultKind::Stall, SimTime::from_us(10));
        plan.at("c", FaultKind::Stall, SimTime::from_us(5));
        plan.at("c", FaultKind::Drop, SimTime::from_us(1));
        let mut inj = plan.injector("c");
        assert!(inj.is_active());
        // Not due yet.
        assert!(!inj.fires(FaultKind::Stall, SimTime::from_us(4)));
        // Both stalls now due; consumed one query at a time.
        assert!(inj.fires(FaultKind::Stall, SimTime::from_us(20)));
        assert!(inj.fires(FaultKind::Stall, SimTime::from_us(20)));
        assert!(!inj.fires(FaultKind::Stall, SimTime::from_us(20)));
        // Kinds are independent queues.
        assert!(inj.fires(FaultKind::Drop, SimTime::from_us(20)));
        assert!(!inj.fires(FaultKind::Drop, SimTime::from_us(20)));
    }

    #[test]
    fn inert_plan_consumes_no_randomness() {
        let plan = FaultPlan::new(5);
        let mut inj = plan.injector("anything");
        assert!(!inj.is_active());
        let before = inj.rng.clone().next_u64();
        for _ in 0..100 {
            assert!(!inj.fires(FaultKind::Drop, SimTime::from_ms(1)));
        }
        assert_eq!(inj.rng.next_u64(), before, "zero rates must not draw");
    }

    #[test]
    fn flip_bit_changes_exactly_one_bit() {
        let mut plan = FaultPlan::new(11);
        plan.rate("f", FaultKind::BitFlip, 1.0);
        let mut inj = plan.injector("f");
        let mut buf = vec![0u8; 64];
        let idx = inj.flip_bit(&mut buf).unwrap();
        assert!(idx < 64);
        let ones: u32 = buf.iter().map(|b| b.count_ones()).sum();
        assert_eq!(ones, 1);
        assert_eq!(inj.flip_bit(&mut []), None);
    }
}
