//! Hierarchical metrics registry with first-class snapshot, diff and
//! rate-over-window.
//!
//! Every layer of the reproduction keeps its counters as plain struct
//! fields ([`Counter`](crate::stats::Counter), [`Histogram`],
//! [`RateMeter`]) — cheap to bump on
//! the hot path and directly assertable in unit tests. This module adds
//! the *read side* real serving stacks have: each layer implements
//! [`Instrumented`] once, naming its instruments into a [`MetricSink`],
//! and every consumer (chaos snapshots, example printouts, bench JSON, CI
//! determinism gates) walks the resulting [`MetricsSnapshot`] instead of
//! hand-formatting its own subset of fields.
//!
//! ## Paths
//!
//! Metrics are addressed by stable dotted paths assembled from nested
//! scopes: a rack absorbs each server under `srv{N}`, a server absorbs
//! each DIMM under `dimm{M}` and its driver stats under `driver`, so the
//! host driver's ring-reset counter of DIMM 1 on server 0 is
//! `srv0.driver.ring_resets` and the DIMM-side crash counter is
//! `srv0.dimm1.driver.crashes`. Paths are unique — [`MetricSink::finish`]
//! panics on a duplicate, so a registration bug fails loudly in every
//! test that takes a snapshot.
//!
//! ## Snapshot, diff, rate
//!
//! ```
//! use mcn_sim::metrics::{Instrumented, MetricSink, MetricsSnapshot};
//! use mcn_sim::SimTime;
//!
//! struct Port { frames: u64 }
//! impl Instrumented for Port {
//!     fn metrics(&self, out: &mut MetricSink) {
//!         out.counter("frames", self.frames);
//!     }
//! }
//!
//! let before = MetricsSnapshot::collect(&Port { frames: 10 });
//! let after = MetricsSnapshot::collect(&Port { frames: 70 });
//! let delta = after.diff(&before);
//! assert_eq!(delta.get_u64("frames"), 60);
//! let rate = after.rate_per_sec(&before, SimTime::from_secs(2));
//! assert_eq!(rate.get("frames").unwrap().as_f64(), 30.0);
//! ```
//!
//! Both renderers are deterministic: entries are sorted by path and
//! formatted without any ambient state, so two same-seed simulation runs
//! produce byte-identical text and JSON (the CI chaos gate diffs them).

use std::fmt;

use crate::stats::{Histogram, RateMeter};
use crate::SimTime;

/// A single metric reading.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// A monotone count (events, bytes, picoseconds).
    U64(u64),
    /// A derived measurement (a rate, a ratio, seconds of wall time).
    F64(f64),
    /// A label riding along with the numbers (a workload name).
    Text(String),
}

impl MetricValue {
    /// The value as `f64` (text labels read as 0).
    pub fn as_f64(&self) -> f64 {
        match self {
            MetricValue::U64(v) => *v as f64,
            MetricValue::F64(v) => *v,
            MetricValue::Text(_) => 0.0,
        }
    }

    /// JSON rendering of just the value (numbers bare, text quoted,
    /// non-finite floats as `null`).
    fn render_json(&self, out: &mut String) {
        use std::fmt::Write;
        match self {
            MetricValue::U64(v) => write!(out, "{v}").unwrap(),
            MetricValue::F64(v) if v.is_finite() => write!(out, "{v}").unwrap(),
            MetricValue::F64(_) => out.push_str("null"),
            MetricValue::Text(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        c if (c as u32) < 0x20 => {
                            write!(out, "\\u{:04x}", c as u32).unwrap()
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
        }
    }
}

impl fmt::Display for MetricValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetricValue::U64(v) => write!(f, "{v}"),
            MetricValue::F64(v) => write!(f, "{v}"),
            MetricValue::Text(s) => write!(f, "{s}"),
        }
    }
}

/// A layer that can name its instruments into a [`MetricSink`].
///
/// Implementations emit paths *relative to their own scope*; owners embed
/// them under a segment with [`MetricSink::absorb`]. That is what makes
/// paths stable across embeddings: a standalone `McnSystem` and the same
/// system inside a rack's `srv0` scope register the identical relative
/// tree.
pub trait Instrumented {
    /// Registers every instrument of this layer (and its children) into
    /// `out`.
    fn metrics(&self, out: &mut MetricSink);
}

/// Collects `(dotted path, value)` pairs while walking an
/// [`Instrumented`] tree.
///
/// The sink keeps the current scope prefix; leaf methods
/// ([`counter`](MetricSink::counter), [`value`](MetricSink::value),
/// [`histogram`](MetricSink::histogram), ...) record under it and
/// [`scoped`](MetricSink::scoped)/[`absorb`](MetricSink::absorb) push a
/// path segment for the duration of a closure or child walk.
#[derive(Debug, Default)]
pub struct MetricSink {
    prefix: String,
    entries: Vec<(String, MetricValue)>,
}

impl MetricSink {
    /// An empty sink with no scope prefix.
    pub fn new() -> Self {
        Self::default()
    }

    fn path(&self, name: &str) -> String {
        debug_assert!(
            !name.is_empty() && name.chars().all(|c| c.is_ascii_graphic() && c != '"'),
            "metric name {name:?} must be non-empty printable ASCII"
        );
        if self.prefix.is_empty() {
            name.to_string()
        } else {
            format!("{}.{name}", self.prefix)
        }
    }

    /// Records a monotone counter reading.
    pub fn counter(&mut self, name: &str, value: u64) {
        let p = self.path(name);
        self.entries.push((p, MetricValue::U64(value)));
    }

    /// Records a derived floating-point measurement.
    pub fn value(&mut self, name: &str, value: f64) {
        let p = self.path(name);
        self.entries.push((p, MetricValue::F64(value)));
    }

    /// Records a text label.
    pub fn text(&mut self, name: &str, value: &str) {
        let p = self.path(name);
        self.entries.push((p, MetricValue::Text(value.to_string())));
    }

    /// Records a [`Histogram`] as its deterministic summary:
    /// `name.count`, `name.min_ps`, `name.mean_ps`, `name.p50_ps`,
    /// `name.p99_ps`, `name.p999_ps`, `name.max_ps` (the time points are 0
    /// when the histogram is empty).
    pub fn histogram(&mut self, name: &str, h: &Histogram) {
        let ps = |t: Option<SimTime>| t.map_or(0, |t| t.as_ps());
        self.scoped(name, |out| {
            out.counter("count", h.count());
            out.counter("min_ps", ps(h.min()));
            out.counter("mean_ps", ps(h.mean()));
            out.counter("p50_ps", ps(h.percentile(50.0)));
            out.counter("p99_ps", ps(h.percentile(99.0)));
            out.counter("p999_ps", ps(h.percentile(99.9)));
            out.counter("max_ps", ps(h.max()));
        });
    }

    /// Records a [`RateMeter`] window as `name.bytes` and
    /// `name.elapsed_ps` (the achieved rate is derivable and kept out of
    /// the registry so snapshots stay integer-exact).
    pub fn meter(&mut self, name: &str, m: &RateMeter) {
        self.scoped(name, |out| {
            out.counter("bytes", m.bytes());
            out.counter("elapsed_ps", m.elapsed().as_ps());
        });
    }

    /// Runs `f` with `segment` pushed onto the scope prefix.
    pub fn scoped<F: FnOnce(&mut MetricSink)>(&mut self, segment: &str, f: F) {
        let saved = self.prefix.len();
        if !self.prefix.is_empty() {
            self.prefix.push('.');
        }
        self.prefix.push_str(segment);
        f(self);
        self.prefix.truncate(saved);
    }

    /// Registers `child`'s whole tree under `segment`.
    pub fn absorb(&mut self, segment: &str, child: &dyn Instrumented) {
        self.scoped(segment, |out| child.metrics(out));
    }

    /// Replays every entry of an already-sealed snapshot under `segment`.
    ///
    /// This is the merge primitive of the sweep runner: per-cell result
    /// trees (loaded back from their done-marker files) are mounted into
    /// one merged registry under disjoint `cells.<id>` prefixes. Because
    /// [`finish`](MetricSink::finish) sorts by path and panics on
    /// duplicates, mounting disjoint subtrees is commutative — any mount
    /// order produces the identical sealed snapshot.
    pub fn absorb_snapshot(&mut self, segment: &str, snap: &MetricsSnapshot) {
        self.scoped(segment, |out| {
            for (path, value) in snap.iter() {
                let p = out.path(path);
                out.entries.push((p, value.clone()));
            }
        });
    }

    /// Seals the sink into a sorted snapshot.
    ///
    /// Panics if two registrations produced the same path — duplicate
    /// paths are a wiring bug and must not silently shadow each other.
    pub fn finish(mut self) -> MetricsSnapshot {
        self.entries.sort_by(|a, b| a.0.cmp(&b.0));
        for w in self.entries.windows(2) {
            assert!(
                w[0].0 != w[1].0,
                "duplicate metric path registered: {}",
                w[0].0
            );
        }
        MetricsSnapshot {
            entries: self.entries,
        }
    }
}

/// An immutable, path-sorted reading of a whole [`Instrumented`] tree.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Sorted by path, paths unique.
    entries: Vec<(String, MetricValue)>,
}

impl MetricsSnapshot {
    /// Walks `root` and seals the result (see [`MetricSink::finish`]).
    pub fn collect(root: &dyn Instrumented) -> Self {
        let mut sink = MetricSink::new();
        root.metrics(&mut sink);
        sink.finish()
    }

    /// Number of registered paths.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing was registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates `(path, value)` in path order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &MetricValue)> {
        self.entries.iter().map(|(p, v)| (p.as_str(), v))
    }

    /// Looks up one path.
    pub fn get(&self, path: &str) -> Option<&MetricValue> {
        self.entries
            .binary_search_by(|(p, _)| p.as_str().cmp(path))
            .ok()
            .map(|i| &self.entries[i].1)
    }

    /// Looks up a counter by path.
    ///
    /// Panics when the path is missing or not a [`MetricValue::U64`]:
    /// consumers name exact registry paths, and a typo must fail loudly
    /// rather than read as zero.
    pub fn get_u64(&self, path: &str) -> u64 {
        match self.get(path) {
            Some(MetricValue::U64(v)) => *v,
            Some(other) => panic!("metric {path} is {other:?}, not a counter"),
            None => panic!("metric path {path} not registered"),
        }
    }

    /// Per-path difference `self - baseline` (counters saturate at zero,
    /// floats subtract, text is carried over from `self`). Paths missing
    /// from `baseline` diff against zero; paths only in `baseline` are
    /// dropped.
    pub fn diff(&self, baseline: &MetricsSnapshot) -> MetricsSnapshot {
        let entries = self
            .entries
            .iter()
            .map(|(p, v)| {
                let d = match (v, baseline.get(p)) {
                    (MetricValue::U64(a), Some(MetricValue::U64(b))) => {
                        MetricValue::U64(a.saturating_sub(*b))
                    }
                    (MetricValue::F64(a), Some(MetricValue::F64(b))) => MetricValue::F64(a - b),
                    (v, _) => v.clone(),
                };
                (p.clone(), d)
            })
            .collect();
        MetricsSnapshot { entries }
    }

    /// Rate-over-window: `(self - baseline) / window` per numeric path,
    /// as [`MetricValue::F64`] per-second rates (text entries are
    /// dropped; an empty window yields zeros).
    pub fn rate_per_sec(&self, baseline: &MetricsSnapshot, window: SimTime) -> MetricsSnapshot {
        let secs = window.as_secs_f64();
        let entries = self
            .diff(baseline)
            .entries
            .into_iter()
            .filter(|(_, v)| !matches!(v, MetricValue::Text(_)))
            .map(|(p, v)| {
                let rate = if secs > 0.0 { v.as_f64() / secs } else { 0.0 };
                (p, MetricValue::F64(rate))
            })
            .collect();
        MetricsSnapshot { entries }
    }

    /// Deterministic `path = value` lines, one per entry, sorted by path.
    pub fn render_text(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        for (p, v) in &self.entries {
            writeln!(s, "{p} = {v}").unwrap();
        }
        s
    }

    /// Parses the flat JSON produced by [`to_json`](Self::to_json) back
    /// into a snapshot.
    ///
    /// This is deliberately a parser for *our own renderer's* output —
    /// one flat object, one `"path": value` entry per line — not a
    /// general JSON reader (the workspace vendors no JSON crate). It is
    /// the read side of the sweep runner's done-marker files: a cell
    /// result written by `to_json` round-trips byte-identically through
    /// `parse_flat_json(...).to_json()`. Integer-valued floats that the
    /// renderer printed without a decimal point read back as counters;
    /// that is fine because every consumer of a reloaded snapshot either
    /// re-renders it (identical bytes either way) or reads counters.
    ///
    /// Returns `Err` with a line-numbered message on anything the
    /// renderer could not have produced.
    pub fn parse_flat_json(text: &str) -> Result<MetricsSnapshot, String> {
        let mut entries = Vec::new();
        let mut lines = text.lines().enumerate();
        match lines.next() {
            Some((_, "{")) => {}
            other => return Err(format!("expected '{{' on line 1, got {other:?}")),
        }
        let mut closed = false;
        for (i, line) in lines {
            let err = |what: &str| format!("line {}: {what}: {line:?}", i + 1);
            if closed {
                return Err(err("content after closing '}'"));
            }
            if line == "}" {
                closed = true;
                continue;
            }
            let body = line
                .strip_prefix("  \"")
                .ok_or_else(|| err("expected two-space-indented \"path\""))?;
            let body = body.strip_suffix(',').unwrap_or(body);
            let (path, value) = body
                .split_once("\": ")
                .ok_or_else(|| err("expected '\": ' separator"))?;
            let value = if let Some(text) = value
                .strip_prefix('"')
                .and_then(|v| v.strip_suffix('"'))
            {
                MetricValue::Text(Self::unescape(text).map_err(|e| err(&e))?)
            } else if value == "null" {
                // The renderer writes non-finite floats as null.
                MetricValue::F64(f64::NAN)
            } else if value.bytes().all(|b| b.is_ascii_digit()) {
                MetricValue::U64(value.parse().map_err(|_| err("bad counter"))?)
            } else {
                MetricValue::F64(value.parse().map_err(|_| err("bad number"))?)
            };
            entries.push((path.to_string(), value));
        }
        if !closed {
            return Err("missing closing '}'".into());
        }
        // Re-seal with the same sortedness and path-uniqueness rules that
        // finish() enforces, but fail softly: a mangled marker file must
        // read as "invalid, re-run the cell", not abort the whole sweep.
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        if let Some(w) = entries.windows(2).find(|w| w[0].0 == w[1].0) {
            return Err(format!("duplicate path {}", w[0].0));
        }
        Ok(MetricsSnapshot { entries })
    }

    fn unescape(s: &str) -> Result<String, String> {
        let mut out = String::with_capacity(s.len());
        let mut chars = s.chars();
        while let Some(c) = chars.next() {
            if c != '\\' {
                if c == '"' {
                    return Err("bare quote inside text value".into());
                }
                out.push(c);
                continue;
            }
            match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('n') => out.push('\n'),
                Some('u') => {
                    let hex: String = chars.by_ref().take(4).collect();
                    let code = u32::from_str_radix(&hex, 16)
                        .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                    out.push(
                        char::from_u32(code).ok_or_else(|| format!("bad codepoint {code}"))?,
                    );
                }
                other => return Err(format!("bad escape {other:?}")),
            }
        }
        Ok(out)
    }

    /// Deterministic JSON: one flat object, keys sorted, one entry per
    /// line, trailing newline. Hand-rolled (the workspace vendors no JSON
    /// crate) and byte-stable for identical readings.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        for (i, (p, v)) in self.entries.iter().enumerate() {
            s.push_str("  \"");
            s.push_str(p);
            s.push_str("\": ");
            v.render_json(&mut s);
            if i + 1 < self.entries.len() {
                s.push(',');
            }
            s.push('\n');
        }
        s.push_str("}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Leaf {
        a: u64,
        b: u64,
    }

    impl Instrumented for Leaf {
        fn metrics(&self, out: &mut MetricSink) {
            out.counter("a", self.a);
            out.counter("b", self.b);
        }
    }

    struct Tree {
        left: Leaf,
        right: Leaf,
    }

    impl Instrumented for Tree {
        fn metrics(&self, out: &mut MetricSink) {
            out.absorb("left", &self.left);
            out.absorb("right", &self.right);
            out.counter("total", self.left.a + self.right.a);
        }
    }

    fn tree() -> Tree {
        Tree {
            left: Leaf { a: 1, b: 2 },
            right: Leaf { a: 30, b: 40 },
        }
    }

    #[test]
    fn paths_nest_and_sort() {
        let snap = MetricsSnapshot::collect(&tree());
        let paths: Vec<&str> = snap.iter().map(|(p, _)| p).collect();
        assert_eq!(
            paths,
            vec!["left.a", "left.b", "right.a", "right.b", "total"]
        );
        assert_eq!(snap.get_u64("right.b"), 40);
        assert!(snap.get("nope").is_none());
    }

    #[test]
    #[should_panic(expected = "duplicate metric path")]
    fn duplicate_paths_panic() {
        let mut sink = MetricSink::new();
        sink.counter("x", 1);
        sink.counter("x", 2);
        sink.finish();
    }

    #[test]
    #[should_panic(expected = "not registered")]
    fn get_u64_panics_on_missing_path() {
        MetricsSnapshot::collect(&tree()).get_u64("left.typo");
    }

    #[test]
    fn diff_saturates_and_drops_stale_paths() {
        let before = MetricsSnapshot::collect(&tree());
        let after = MetricsSnapshot::collect(&Tree {
            left: Leaf { a: 5, b: 1 },
            right: Leaf { a: 31, b: 45 },
        });
        let d = after.diff(&before);
        assert_eq!(d.get_u64("left.a"), 4);
        assert_eq!(d.get_u64("left.b"), 0, "counters saturate, never wrap");
        assert_eq!(d.get_u64("right.b"), 5);
    }

    #[test]
    fn rate_over_window() {
        let before = MetricsSnapshot::collect(&Leaf { a: 0, b: 0 });
        let after = MetricsSnapshot::collect(&Leaf { a: 100, b: 7 });
        let r = after.rate_per_sec(&before, SimTime::from_ms(500));
        assert_eq!(r.get("a").unwrap().as_f64(), 200.0);
        assert_eq!(r.get("b").unwrap().as_f64(), 14.0);
        let z = after.rate_per_sec(&before, SimTime::ZERO);
        assert_eq!(z.get("a").unwrap().as_f64(), 0.0);
    }

    #[test]
    fn renderers_are_deterministic_and_sorted() {
        let a = MetricsSnapshot::collect(&tree());
        let b = MetricsSnapshot::collect(&tree());
        assert_eq!(a.render_text(), b.render_text());
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(
            a.render_text(),
            "left.a = 1\nleft.b = 2\nright.a = 30\nright.b = 40\ntotal = 31\n"
        );
        assert_eq!(
            a.to_json(),
            "{\n  \"left.a\": 1,\n  \"left.b\": 2,\n  \"right.a\": 30,\n  \
             \"right.b\": 40,\n  \"total\": 31\n}\n"
        );
    }

    #[test]
    fn flat_json_round_trips_byte_identically() {
        let mut sink = MetricSink::new();
        sink.counter("a.count", 7);
        sink.value("a.ratio", 2.5);
        sink.value("a.nan", f64::NAN);
        sink.text("a.label", "line\none \"quoted\\thing\"\u{1}");
        let snap = sink.finish();
        let json = snap.to_json();
        let back = MetricsSnapshot::parse_flat_json(&json).expect("parses");
        assert_eq!(back.to_json(), json, "round trip is byte-identical");
        assert_eq!(back.get_u64("a.count"), 7);
        assert_eq!(back.get("a.ratio").unwrap().as_f64(), 2.5);
    }

    #[test]
    fn flat_json_parser_rejects_mangled_markers() {
        for bad in [
            "",
            "{\n}\n trailing",
            "{\n  \"a\": 1\n",
            "{\n  \"a\" 1\n}\n",
            "{\n\"a\": 1\n}\n",
            "{\n  \"a\": 1,\n  \"a\": 2\n}\n",
            "{\n  \"a\": zz\n}\n",
        ] {
            assert!(
                MetricsSnapshot::parse_flat_json(bad).is_err(),
                "accepted {bad:?}"
            );
        }
    }

    #[test]
    fn absorb_snapshot_mounts_are_commutative() {
        let left = MetricsSnapshot::collect(&Leaf { a: 1, b: 2 });
        let right = MetricsSnapshot::collect(&Leaf { a: 30, b: 40 });
        let mount = |order: &[(&str, &MetricsSnapshot)]| {
            let mut sink = MetricSink::new();
            for (seg, snap) in order {
                sink.absorb_snapshot(&format!("cells.{seg}"), snap);
            }
            sink.finish()
        };
        let ab = mount(&[("l", &left), ("r", &right)]);
        let ba = mount(&[("r", &right), ("l", &left)]);
        assert_eq!(ab.to_json(), ba.to_json(), "mount order cannot matter");
        assert_eq!(ab.get_u64("cells.l.a"), 1);
        assert_eq!(ab.get_u64("cells.r.b"), 40);
    }

    #[test]
    fn json_escapes_text_and_guards_non_finite() {
        let mut sink = MetricSink::new();
        sink.text("label", "a \"quoted\\path\"\n");
        sink.value("bad", f64::NAN);
        sink.value("ratio", 2.5);
        let json = sink.finish().to_json();
        assert!(json.contains("\"label\": \"a \\\"quoted\\\\path\\\"\\n\""));
        assert!(json.contains("\"bad\": null"));
        assert!(json.contains("\"ratio\": 2.5"));
    }

    #[test]
    fn histogram_and_meter_expand_to_summaries() {
        let mut h = Histogram::new();
        h.record(SimTime::from_us(10));
        h.record(SimTime::from_us(20));
        let mut m = RateMeter::new();
        m.record(SimTime::ZERO, 0);
        m.record(SimTime::from_secs(1), 1000);
        let mut sink = MetricSink::new();
        sink.histogram("lat", &h);
        sink.meter("goodput", &m);
        let snap = sink.finish();
        assert_eq!(snap.get_u64("lat.count"), 2);
        assert_eq!(snap.get_u64("lat.min_ps"), SimTime::from_us(10).as_ps());
        assert_eq!(snap.get_u64("lat.max_ps"), SimTime::from_us(20).as_ps());
        assert_eq!(snap.get_u64("goodput.bytes"), 1000);
        assert_eq!(
            snap.get_u64("goodput.elapsed_ps"),
            SimTime::from_secs(1).as_ps()
        );
        // Empty instruments still register (as zeros) so the path set is
        // stable from the first snapshot on.
        let mut sink = MetricSink::new();
        sink.histogram("lat", &Histogram::new());
        assert_eq!(sink.finish().get_u64("lat.count"), 0);
    }
}
