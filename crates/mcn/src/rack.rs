//! A rack of MCN-enabled servers joined by conventional 10GbE NICs and a
//! top-of-rack switch.
//!
//! The paper's network organisation "supports the communication between
//! MCN nodes connected to different hosts by having the source host forward
//! the packet to the host of the destination MCN node through a
//! conventional NIC" (Sec. III-B, forwarding case F4), and Sec. VII
//! proposes replacing a rack of servers with MCN-enabled servers. This
//! module makes F4 functional: an MCN node sending to an address that
//! matches no local interface emits a frame with the "external" MAC; the
//! host forwarding engine classifies it F4 and hands it to the NIC; the
//! destination host receives it and injects it into its own MCN fabric.

use mcn_net::link::{Link, Switch};
use mcn_node::nic::{Nic, NicConfig, NicEvent, NIC_WAITER};
use mcn_node::ProcId;
use mcn_node::Process;
use mcn_sim::stats::Counter;
use mcn_sim::metrics::{Instrumented, MetricSink};
use mcn_sim::{
    Activity, Component, Engine, EngineStats, EventQueue, OutageKind, OutagePlan, SimTime,
    StallReport, Wakeup,
};

use crate::config::{McnConfig, SystemConfig};
use crate::system::McnSystem;

/// A scheduled hard event at the rack layer (expanded from an
/// [`OutagePlan`] by [`McnRack::set_outage_plan`]).
#[derive(Debug)]
enum RackOutage {
    /// Crash DIMM `dimm` of server `server`.
    DimmCrash { server: usize, dimm: usize },
    /// Power that DIMM back on.
    DimmPowerOn { server: usize, dimm: usize },
    /// Sever server `server`'s ToR uplink (both directions).
    LinkDown { server: usize },
    /// Restore it.
    LinkUp { server: usize },
    /// Partition the switch: servers may only reach servers in their own
    /// group (group id per server; servers not listed keep group 0).
    Partition { group_of: Vec<usize> },
    /// Heal the partition.
    Heal,
    /// Whole-node reboot: uplink down + every DIMM crashes.
    NodeDown { server: usize },
    /// Node comes back: uplink up + every DIMM powers on.
    NodeUp { server: usize },
}

/// Rack-layer outage statistics.
#[derive(Debug, Default)]
pub struct RackStats {
    /// Frames the partitioned switch refused to forward.
    pub partition_drops: Counter,
    /// Frames lost on a severed server uplink (either direction).
    pub uplink_drops: Counter,
    /// Uplink outages applied.
    pub link_downs: Counter,
    /// Switch partitions applied.
    pub partitions: Counter,
    /// Whole-node reboots applied.
    pub node_reboots: Counter,
}

/// A rack: N MCN servers, one ToR switch.
///
/// Engine component `s` is the whole per-server block: the server, its
/// NIC, and its up/down links (their combined earliest deadline is one
/// wakeup-index entry).
#[derive(Debug)]
pub struct McnRack {
    servers: Vec<McnSystem>,
    nics: Vec<Nic>,
    up: Vec<Link>,
    down: Vec<Link>,
    switch: Switch,
    now: SimTime,
    engine: Engine,
    /// Scheduled hard events (crashes, partitions, reboots).
    outages: EventQueue<RackOutage>,
    /// Per-server switch group while partitioned; `None` = fully connected.
    partition: Option<Vec<usize>>,
    /// Per-server uplink carrier (false = severed).
    link_up: Vec<bool>,
    /// Outage statistics.
    pub stats: RackStats,
}

impl McnRack {
    /// Builds `n_servers` servers of `dimms_per_server` DIMMs each at the
    /// given optimisation level, fully routed.
    pub fn new(
        sys: &SystemConfig,
        n_servers: usize,
        dimms_per_server: usize,
        cfg: McnConfig,
    ) -> Self {
        assert!((1..=10).contains(&n_servers), "address plan supports 1-10 servers");
        let mut servers: Vec<McnSystem> = (0..n_servers)
            .map(|s| {
                let mut m = McnSystem::new_in_rack(sys, dimms_per_server, cfg, s);
                m.attach_nic_iface();
                m
            })
            .collect();
        // Cross-server routes: every remote MCN-node and host-side address
        // routes out the NIC towards the owning server's NIC.
        for (s, srv) in servers.iter_mut().enumerate() {
            for r in 0..n_servers {
                if r == s {
                    continue;
                }
                let gw = McnSystem::nic_ip(r);
                let gw_mac = McnSystem::nic_mac(r);
                for d in 0..dimms_per_server {
                    let dimm_ip = crate::McnDimm::ip_for(r, d);
                    let host_if = McnSystem::host_if_ip_for(r, d);
                    srv.add_remote_route(dimm_ip, gw, gw_mac);
                    srv.add_remote_route(host_if, gw, gw_mac);
                }
                srv.add_remote_route(gw, gw, gw_mac);
            }
        }
        let mk_link = || Link::new(sys.eth_bytes_per_sec, sys.eth_latency);
        McnRack {
            nics: (0..n_servers).map(|_| Nic::new(NicConfig::default())).collect(),
            up: (0..n_servers).map(|_| mk_link()).collect(),
            down: (0..n_servers).map(|_| mk_link()).collect(),
            switch: Switch::new(n_servers),
            now: SimTime::ZERO,
            servers,
            engine: Engine::new(n_servers),
            outages: EventQueue::new(),
            partition: None,
            link_up: vec![true; n_servers],
            stats: RackStats::default(),
        }
    }

    /// Outage-plan component name for DIMM `d` of server `s`.
    pub fn dimm_outage_component(s: usize, d: usize) -> String {
        format!("server{s}.dimm{d}")
    }

    /// Outage-plan component name for server `s`'s ToR uplink.
    pub fn link_outage_component(s: usize) -> String {
        format!("server{s}.link")
    }

    /// Outage-plan component name for whole-node reboots of server `s`.
    pub fn node_outage_component(s: usize) -> String {
        format!("server{s}")
    }

    /// Outage-plan component name for the ToR switch (partitions).
    pub const SWITCH_OUTAGE_COMPONENT: &'static str = "switch";

    /// Installs a hard-outage plan. Component names understood:
    ///
    /// * `server{s}.dimm{d}` + [`OutageKind::DimmCrash`] — crash/reboot one
    ///   DIMM (the host↔DIMM re-init handshake heals it),
    /// * `server{s}.link` + [`OutageKind::LinkDown`] — sever the server's
    ///   ToR uplink for the duration,
    /// * `server{s}` + [`OutageKind::NodeReboot`] — uplink down and every
    ///   DIMM crashed until the node comes back,
    /// * `switch` + [`OutageKind::SwitchPartition`] — servers may only
    ///   reach their own group until `heal_at`.
    pub fn set_outage_plan(&mut self, plan: &OutagePlan) {
        for s in 0..self.servers.len() {
            for d in 0..self.servers[s].dimms() {
                let mut sched = plan.schedule(&Self::dimm_outage_component(s, d));
                for (t, kind) in sched.pop_due(SimTime::MAX) {
                    let OutageKind::DimmCrash { down_for } = kind else {
                        continue;
                    };
                    self.outages.schedule(t, RackOutage::DimmCrash { server: s, dimm: d });
                    self.outages
                        .schedule(t + down_for, RackOutage::DimmPowerOn { server: s, dimm: d });
                }
            }
            let mut links = plan.schedule(&Self::link_outage_component(s));
            for (t, kind) in links.pop_due(SimTime::MAX) {
                let OutageKind::LinkDown { down_for } = kind else {
                    continue;
                };
                self.outages.schedule(t, RackOutage::LinkDown { server: s });
                self.outages.schedule(t + down_for, RackOutage::LinkUp { server: s });
            }
            let mut nodes = plan.schedule(&Self::node_outage_component(s));
            for (t, kind) in nodes.pop_due(SimTime::MAX) {
                let OutageKind::NodeReboot { down_for } = kind else {
                    continue;
                };
                self.outages.schedule(t, RackOutage::NodeDown { server: s });
                self.outages.schedule(t + down_for, RackOutage::NodeUp { server: s });
            }
        }
        let mut sw = plan.schedule(Self::SWITCH_OUTAGE_COMPONENT);
        for (t, kind) in sw.pop_due(SimTime::MAX) {
            let OutageKind::SwitchPartition { groups, heal_at } = kind else {
                continue;
            };
            let mut group_of = vec![0usize; self.servers.len()];
            for (g, members) in groups.iter().enumerate() {
                for &m in members {
                    if m < group_of.len() {
                        group_of[m] = g;
                    }
                }
            }
            self.outages.schedule(t, RackOutage::Partition { group_of });
            self.outages.schedule(heal_at.max(t), RackOutage::Heal);
        }
    }

    /// Partitions the switch now: server `s` belongs to `group_of[s]` and
    /// can only reach its own group. Prefer [`set_outage_plan`] for
    /// scheduled chaos; this is the immediate form.
    pub fn partition_now(&mut self, group_of: Vec<usize>) {
        assert_eq!(group_of.len(), self.servers.len());
        self.stats.partitions.inc();
        self.partition = Some(group_of);
    }

    /// Heals a partition now: full connectivity is restored and every
    /// server block is woken so stalled retransmissions move immediately.
    pub fn heal_now(&mut self) {
        self.partition = None;
        for s in 0..self.servers.len() {
            self.engine.mark_dirty(s);
            self.engine.mark_stale(s);
        }
    }

    /// Whether the switch is currently partitioned.
    pub fn is_partitioned(&self) -> bool {
        self.partition.is_some()
    }

    fn apply_outage(&mut self, o: RackOutage, t: SimTime) {
        let touched = |engine: &mut Engine, s: usize| {
            engine.mark_dirty(s);
            engine.mark_stale(s);
        };
        match o {
            RackOutage::DimmCrash { server, dimm } => {
                self.servers[server].crash_dimm(dimm, t);
                touched(&mut self.engine, server);
            }
            RackOutage::DimmPowerOn { server, dimm } => {
                self.servers[server].power_on_dimm(dimm, t);
                touched(&mut self.engine, server);
            }
            RackOutage::LinkDown { server } => {
                self.stats.link_downs.inc();
                self.link_up[server] = false;
                touched(&mut self.engine, server);
            }
            RackOutage::LinkUp { server } => {
                self.link_up[server] = true;
                touched(&mut self.engine, server);
            }
            RackOutage::Partition { group_of } => self.partition_now(group_of),
            RackOutage::Heal => self.heal_now(),
            RackOutage::NodeDown { server } => {
                self.stats.node_reboots.inc();
                self.stats.link_downs.inc();
                self.link_up[server] = false;
                for d in 0..self.servers[server].dimms() {
                    self.servers[server].crash_dimm(d, t);
                }
                touched(&mut self.engine, server);
            }
            RackOutage::NodeUp { server } => {
                self.link_up[server] = true;
                for d in 0..self.servers[server].dimms() {
                    self.servers[server].power_on_dimm(d, t);
                }
                touched(&mut self.engine, server);
            }
        }
    }

    /// Number of servers.
    pub fn len(&self) -> usize {
        self.servers.len()
    }

    /// True for an empty rack (never constructed by [`new`](Self::new)).
    pub fn is_empty(&self) -> bool {
        self.servers.is_empty()
    }

    /// Access server `s`.
    pub fn server(&self, s: usize) -> &McnSystem {
        &self.servers[s]
    }

    /// Mutable access to server `s`. Marks the server block's cached
    /// wakeup stale: callers may inject work the engine cannot observe.
    pub fn server_mut(&mut self, s: usize) -> &mut McnSystem {
        self.engine.mark_stale(s);
        &mut self.servers[s]
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Spawns a process on a host core of server `s`.
    pub fn spawn_host(&mut self, s: usize, proc: Box<dyn Process>, core: usize) -> ProcId {
        self.server_mut(s).spawn_host(proc, core)
    }

    /// Spawns a process on DIMM `d` of server `s`.
    pub fn spawn_dimm(
        &mut self,
        s: usize,
        d: usize,
        proc: Box<dyn Process>,
        core: usize,
    ) -> ProcId {
        self.server_mut(s).spawn_dimm(d, proc, core)
    }

    /// All processes on all servers finished?
    pub fn all_procs_done(&self) -> bool {
        self.servers.iter().all(|s| s.all_procs_done())
    }

    /// The combined wakeup of server block `s`: the server itself, its
    /// NIC pipeline, and frames in flight on its links.
    fn wakeup_of(&mut self, s: usize) -> Option<SimTime> {
        [
            self.servers[s].next_event(),
            self.nics[s].next_wakeup(),
            self.up[s].next_wakeup(),
            self.down[s].next_wakeup(),
        ]
        .into_iter()
        .flatten()
        .min()
    }

    /// Re-queries stale server blocks' deadlines.
    fn refresh_wakeups(&mut self) {
        for s in self.engine.drain_stale() {
            let w = self.wakeup_of(s);
            self.engine.set_wakeup(s, w);
        }
    }

    /// Earliest pending activity in the rack — one heap peek over the
    /// per-server wakeup index, plus the next scheduled outage (a crash or
    /// heal is activity even when every server is idle).
    pub fn next_event(&mut self) -> Option<SimTime> {
        self.refresh_wakeups();
        let t = match (self.engine.earliest(), self.outages.peek_time()) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        t.map(|x| x.max(self.now))
    }

    /// A structured snapshot of the whole rack for stall debugging: every
    /// server's [`McnSystem::stall_report`] folded in under a `srv{s}.`
    /// prefix, plus a `wire` section with NIC/link timers.
    pub fn stall_report(&self, title: &str) -> StallReport {
        let mut r = StallReport::new(format!("{title} (rack of {} @ {})", self.len(), self.now));
        for (s, srv) in self.servers.iter().enumerate() {
            r.absorb(&format!("srv{s}."), &srv.stall_report("server"));
        }
        for s in 0..self.servers.len() {
            r.line(
                "wire",
                format!(
                    "srv{s}: link_up={} nic_next={:?} up_next={:?} down_next={:?}",
                    self.link_up[s],
                    self.nics[s].next_event(),
                    self.up[s].next_arrival(),
                    self.down[s].next_arrival()
                ),
            );
        }
        if let Some(groups) = &self.partition {
            r.line("wire", format!("switch partitioned: groups={groups:?}"));
        }
        if !self.outages.is_empty() {
            r.line("wire", format!("{} scheduled outages pending", self.outages.len()));
        }
        r
    }

    /// Who owns `ip` (by the rack address plan)?
    fn owner_of(&self, ip: std::net::Ipv4Addr) -> Option<usize> {
        let o = ip.octets();
        if o == [192, 168, 0, 0] {
            return None;
        }
        if o[0] == 192 && o[1] == 168 && o[2] == 0 {
            let s = (o[3] as usize).checked_sub(1)?;
            return (s < self.servers.len()).then_some(s);
        }
        if o[0] == 10 && o[1] >= 1 {
            let s = (o[1] as usize - 1) / 24;
            return (s < self.servers.len()).then_some(s);
        }
        None
    }

    /// Processes everything due at `t`, polling only dirty server blocks.
    pub fn advance(&mut self, t: SimTime) -> Activity {
        assert!(t >= self.now, "time must not go backwards");
        self.now = t;
        self.refresh_wakeups();
        self.engine.begin(t);
        let mut any = false;
        for round in 0.. {
            if round >= 100_000 {
                panic!("{}", self.stall_report("rack advance did not converge"));
            }
            let mut changed = false;
            // Due hard events first: a crash at `t` must precede `t`'s
            // traffic rounds so the data path sees consistent state.
            while self.outages.peek_time().is_some_and(|pt| pt <= t) {
                let (at, o) = self.outages.pop().expect("peeked");
                self.apply_outage(o, at.max(t));
                changed = true;
            }
            if self.engine.start_round() {
                while let Some(s) = self.engine.pop_dirty() {
                    if self.advance_server_block(s, t) {
                        self.engine.mark_dirty(s);
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
            any = true;
            self.engine.note_round();
        }
        for s in self.engine.drain_touched() {
            let w = self.wakeup_of(s);
            self.engine.set_wakeup(s, w);
        }
        Activity::from_flag(any)
    }

    /// One round of progress for server block `s`: the server itself, its
    /// NIC pipeline, its uplink into the switch, and its downlink into the
    /// NIC. Cross-server frames mark the destination block dirty.
    fn advance_server_block(&mut self, s: usize, t: SimTime) -> bool {
        let mut changed = false;
        self.servers[s].advance(t);
        // NIC DMA completions the server collected for us.
        for (waiter, job) in std::mem::take(&mut self.servers[s].foreign_jobs) {
            debug_assert_eq!(waiter, NIC_WAITER);
            let srv = &mut self.servers[s];
            self.nics[s].on_job_done(job, t, &mut srv.host.cpus, &srv.host.cost, false);
            changed = true;
        }
        // F4 frames → NIC transmit, addressed to the owning server.
        for mut frame in self.servers[s].take_external() {
            changed = true;
            let Some(dst_ip) = mcn_net::Ipv4Packet::decode(&frame.payload)
                .ok()
                .map(|p| p.dst)
            else {
                continue;
            };
            let Some(owner) = self.owner_of(dst_ip) else {
                continue; // truly external: leaves the rack (dropped)
            };
            frame.dst = McnSystem::nic_mac(owner);
            frame.src = McnSystem::nic_mac(s);
            let srv = &mut self.servers[s];
            let core = srv.host.cpus.least_loaded();
            self.nics[s].xmit(frame, t, core, &mut srv.host.cpus, &srv.host.cost);
        }
        // NIC pipeline.
        let srv = &mut self.servers[s];
        for ev in self.nics[s].advance(t, &mut srv.host.mem) {
            changed = true;
            match ev {
                NicEvent::TxWire(frame) => {
                    if self.link_up[s] {
                        self.up[s].send(frame, t);
                    } else {
                        // Severed uplink: the frame leaves the NIC and dies
                        // on the wire. Transport retransmits after the heal.
                        self.stats.uplink_drops.inc();
                    }
                }
                NicEvent::RxDeliver(frame) => {
                    self.servers[s].ingress_external(frame, t);
                }
            }
        }
        // Switch fabric.
        for frame in self.up[s].poll(t) {
            changed = true;
            if !self.link_up[s] {
                // In flight when the link was cut: lost.
                self.stats.uplink_drops.inc();
                continue;
            }
            let fwd_at = t + self.switch.forward_latency;
            for p in self.switch.route(&frame, s) {
                if let Some(groups) = &self.partition {
                    if groups[p] != groups[s] {
                        // Partitioned: the switch has no path between the
                        // groups. Silent loss, exactly like a real fabric.
                        self.stats.partition_drops.inc();
                        continue;
                    }
                }
                if !self.link_up[p] {
                    self.stats.uplink_drops.inc();
                    continue;
                }
                self.down[p].send(frame.clone(), fwd_at);
                // The arrival belongs to block `p`; wake it (now for the
                // poll below, or later via its refreshed wakeup entry).
                self.engine.mark_dirty(p);
            }
        }
        for frame in self.down[s].poll(t) {
            changed = true;
            if !self.link_up[s] {
                self.stats.uplink_drops.inc();
                continue;
            }
            let srv = &mut self.servers[s];
            self.nics[s].wire_rx(frame, t, &mut srv.host.mem);
        }
        changed
    }
}

impl Component for McnRack {
    fn now(&self) -> SimTime {
        McnRack::now(self)
    }
    fn next_event(&mut self) -> Option<SimTime> {
        McnRack::next_event(self)
    }
    fn advance(&mut self, t: SimTime) -> Activity {
        McnRack::advance(self, t)
    }
    fn procs_done(&self) -> bool {
        self.all_procs_done()
    }
    fn engine_accounting(&self, out: &mut Vec<(EngineStats, usize)>) {
        out.push((self.engine.stats, self.servers.len()));
        for srv in &self.servers {
            srv.engine_accounting(out);
        }
    }
}

impl Instrumented for McnRack {
    /// The whole rack tree: each server's [`McnSystem`] registry under
    /// `srv{N}.*` (identical to its standalone paths), the rack-layer
    /// outage counters under `rack.*`, the ToR switch, each server's NIC
    /// (`nic{N}.*`) and uplink/downlink (`link{N}.up/.down`), the rack
    /// engine and the clock.
    fn metrics(&self, out: &mut MetricSink) {
        out.counter("now_ps", self.now.as_ps());
        out.scoped("rack", |out| {
            out.counter("partition_drops", self.stats.partition_drops.get());
            out.counter("uplink_drops", self.stats.uplink_drops.get());
            out.counter("link_downs", self.stats.link_downs.get());
            out.counter("partitions", self.stats.partitions.get());
            out.counter("node_reboots", self.stats.node_reboots.get());
        });
        out.absorb("switch", &self.switch);
        for (s, srv) in self.servers.iter().enumerate() {
            out.absorb(&format!("srv{s}"), srv);
        }
        for s in 0..self.servers.len() {
            out.absorb(&format!("nic{s}"), &self.nics[s]);
            out.scoped(&format!("link{s}"), |out| {
                out.absorb("up", &self.up[s]);
                out.absorb("down", &self.down[s]);
            });
        }
        out.absorb("engine", &self.engine.stats);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use mcn_sim::ComponentExt;

    fn mk(servers: usize, dimms: usize, level: u32) -> McnRack {
        McnRack::new(&SystemConfig::default(), servers, dimms, McnConfig::level(level))
    }

    #[test]
    fn address_plan_is_disjoint() {
        let rack = mk(3, 2, 1);
        let mut all = std::collections::HashSet::new();
        for s in 0..3 {
            assert!(all.insert(McnSystem::nic_ip(s)));
            for d in 0..2 {
                assert!(all.insert(rack.server(s).dimm_ip(d)));
                assert!(all.insert(McnSystem::host_if_ip_for(s, d)));
            }
        }
        assert_eq!(rack.owner_of(rack.server(2).dimm_ip(1)), Some(2));
        assert_eq!(rack.owner_of(McnSystem::nic_ip(0)), Some(0));
        assert_eq!(rack.owner_of(std::net::Ipv4Addr::new(8, 8, 8, 8)), None);
    }

    #[test]
    fn udp_between_mcn_nodes_of_different_servers() {
        // DIMM 0 of server 0 → DIMM 1 of server 1: SRAM ring → host →
        // F4 → NIC → switch → NIC → host → T1-T3 → SRAM ring.
        let mut rack = mk(2, 2, 1);
        let dst_ip = rack.server(1).dimm_ip(1);
        let u_src = rack
            .server_mut(0)
            .dimm_mut(0)
            .node
            .stack
            .udp_bind(7000)
            .unwrap();
        let u_dst = rack
            .server_mut(1)
            .dimm_mut(1)
            .node
            .stack
            .udp_bind(7001)
            .unwrap();
        rack.server_mut(0)
            .dimm_mut(0)
            .node
            .stack
            .udp_send(u_src, dst_ip, 7001, Bytes::from(vec![0xE4u8; 900]), SimTime::ZERO)
            .unwrap();
        rack.run_until(SimTime::from_ms(1));
        let (from, _, data) = rack
            .server_mut(1)
            .dimm_mut(1)
            .node
            .stack
            .udp_recv(u_dst)
            .expect("datagram crossed two memory channels and the wire");
        assert_eq!(from, crate::McnDimm::ip_for(0, 0));
        assert_eq!(data.len(), 900);
        assert_eq!(rack.server(0).hdrv.stats.f4_external.get(), 1);
    }

    #[test]
    fn tcp_across_the_rack() {
        let mut rack = mk(2, 1, 3);
        let dst_ip = rack.server(1).dimm_ip(0);
        let lst = rack
            .server_mut(1)
            .dimm_mut(0)
            .node
            .stack
            .tcp_listen(9000)
            .unwrap();
        let cs = rack
            .server_mut(0)
            .dimm_mut(0)
            .node
            .stack
            .tcp_connect(dst_ip, 9000, SimTime::ZERO)
            .unwrap();
        rack.run_until(SimTime::from_ms(5));
        assert_eq!(
            rack.server(0).dimm(0).node.stack.tcp_state(cs),
            mcn_net::tcp::TcpState::Established,
            "handshake across the rack"
        );
        let ss = rack
            .server_mut(1)
            .dimm_mut(0)
            .node
            .stack
            .tcp_accept(lst)
            .unwrap();
        let data: Vec<u8> = (0..64 * 1024u32).map(|i| (i % 247) as u8).collect();
        let mut sent = 0;
        let mut got = Vec::new();
        let mut buf = vec![0u8; 32768];
        let mut guard = 0;
        while got.len() < data.len() {
            let now = rack.now();
            if sent < data.len() {
                sent += rack
                    .server_mut(0)
                    .dimm_mut(0)
                    .node
                    .stack
                    .tcp_send(cs, &data[sent..], now)
                    .unwrap();
            }
            rack.run_until(rack.now() + SimTime::from_us(200));
            loop {
                let now = rack.now();
                let n = rack
                    .server_mut(1)
                    .dimm_mut(0)
                    .node
                    .stack
                    .tcp_recv(ss, &mut buf, now)
                    .unwrap();
                if n == 0 {
                    break;
                }
                got.extend_from_slice(&buf[..n]);
            }
            guard += 1;
            if guard >= 20_000 {
                panic!(
                    "stalled at {} bytes\n{}",
                    got.len(),
                    rack.stall_report("tcp_across_the_rack stalled")
                );
            }
        }
        assert_eq!(got, data, "byte-exact across two MCN fabrics + Ethernet");
    }

    #[test]
    fn partition_blocks_cross_group_traffic_until_heal() {
        let mut rack = mk(2, 1, 1);
        let dst_ip = rack.server(1).dimm_ip(0);
        let u0 = rack
            .server_mut(0)
            .dimm_mut(0)
            .node
            .stack
            .udp_bind(7000)
            .unwrap();
        let u1 = rack
            .server_mut(1)
            .dimm_mut(0)
            .node
            .stack
            .udp_bind(7001)
            .unwrap();
        rack.partition_now(vec![0, 1]);
        rack.server_mut(0)
            .dimm_mut(0)
            .node
            .stack
            .udp_send(u0, dst_ip, 7001, Bytes::from(vec![9u8; 200]), SimTime::ZERO)
            .unwrap();
        rack.run_until(SimTime::from_ms(2));
        assert!(
            rack.server_mut(1)
                .dimm_mut(0)
                .node
                .stack
                .udp_recv(u1)
                .is_none(),
            "partitioned switch must not forward"
        );
        assert!(rack.stats.partition_drops.get() > 0);
        // Heal, resend: delivery works again.
        rack.heal_now();
        let now = rack.now();
        rack.server_mut(0)
            .dimm_mut(0)
            .node
            .stack
            .udp_send(u0, dst_ip, 7001, Bytes::from(vec![8u8; 200]), now)
            .unwrap();
        rack.run_until(now + SimTime::from_ms(2));
        assert!(rack
            .server_mut(1)
            .dimm_mut(0)
            .node
            .stack
            .udp_recv(u1)
            .is_some());
    }

    #[test]
    fn scheduled_node_reboot_heals_itself() {
        use mcn_sim::OutagePlan;
        let mut rack = mk(2, 1, 1);
        let mut plan = OutagePlan::new(11);
        plan.at(
            &McnRack::node_outage_component(1),
            SimTime::from_us(100),
            mcn_sim::OutageKind::NodeReboot {
                down_for: SimTime::from_us(300),
            },
        );
        rack.set_outage_plan(&plan);
        rack.run_until(SimTime::from_us(200));
        assert!(!rack.server(1).dimm(0).alive(), "node down at 100us");
        rack.run_until(SimTime::from_ms(10));
        assert!(rack.server(1).dimm(0).alive(), "node back at 400us");
        assert!(rack.server(1).hdrv.port_is_up(0), "reinit handshake healed");
        assert_eq!(rack.stats.node_reboots.get(), 1);
    }

    #[test]
    fn intra_server_traffic_stays_off_the_wire() {
        let mut rack = mk(2, 2, 1);
        let dst = rack.server(0).dimm_ip(1);
        let u0 = rack
            .server_mut(0)
            .dimm_mut(0)
            .node
            .stack
            .udp_bind(7000)
            .unwrap();
        let u1 = rack
            .server_mut(0)
            .dimm_mut(1)
            .node
            .stack
            .udp_bind(7001)
            .unwrap();
        rack.server_mut(0)
            .dimm_mut(0)
            .node
            .stack
            .udp_send(u0, dst, 7001, Bytes::from(vec![1u8; 100]), SimTime::ZERO)
            .unwrap();
        rack.run_until(SimTime::from_ms(1));
        assert!(rack
            .server_mut(0)
            .dimm_mut(1)
            .node
            .stack
            .udp_recv(u1)
            .is_some());
        assert_eq!(rack.server(0).hdrv.stats.f3_forward.get(), 1);
        assert_eq!(rack.server(0).hdrv.stats.f4_external.get(), 0);
        assert_eq!(rack.nics[0].tx_frames.get(), 0, "nothing on the wire");
    }
}

#[cfg(test)]
mod direct_tests {
    use crate::{McnConfig, McnSystem, SystemConfig};
    use bytes::Bytes;
    use mcn_sim::{ComponentExt, SimTime};

    #[test]
    fn direct_messages_bypass_the_stack_both_ways() {
        // Sec. VII future work: the shared-memory-style channel moves a
        // message with no TCP/IP segments at all.
        let mut sys = McnSystem::new(&SystemConfig::default(), 1, McnConfig::level(1));
        let host_mac = sys.hdrv.ports[0].mac;

        // Host → DIMM.
        sys.direct_send(0, Bytes::from(vec![7u8; 3000]), SimTime::ZERO);
        sys.run_until(SimTime::from_us(100));
        let (at, payload) = sys
            .dimm_mut(0)
            .direct_rx
            .pop_front()
            .expect("direct message delivered");
        assert_eq!(payload.len(), 3000);
        assert!(at > SimTime::ZERO && at < SimTime::from_us(100));

        // DIMM → host.
        let now = sys.now();
        sys.dimm_mut(0)
            .direct_send(host_mac, Bytes::from(vec![9u8; 500]), now);
        sys.run_until(sys.now() + SimTime::from_us(100));
        let (_, src, payload) = sys.direct_rx.pop().expect("reverse direct message");
        assert_eq!(src, 0);
        assert_eq!(payload.len(), 500);

        // Nothing went through TCP.
        let t = sys.host.stack.tcp_totals();
        assert_eq!(t.data_segs_out + t.acks_out, 0);
        assert_eq!(sys.host.stack.stats.frames_in.get(), 0);
    }

    #[test]
    fn direct_round_trip_beats_tcp_latency() {
        // Measure a direct ping-pong vs the ICMP ping at the same level.
        let mut sys = McnSystem::new(&SystemConfig::default(), 1, McnConfig::level(1));
        let host_mac = sys.hdrv.ports[0].mac;
        let t0 = sys.now();
        sys.direct_send(0, Bytes::from(vec![1u8; 56]), t0);
        // Wait for delivery, then bounce back.
        let mut guard = 0;
        while sys.dimm_mut(0).direct_rx.is_empty() {
            assert!(sys.step(), "idle before delivery");
            guard += 1;
            if guard >= 100_000 {
                panic!("{}", sys.stall_report("direct delivery stalled"));
            }
        }
        let now = sys.now();
        sys.dimm_mut(0)
            .direct_send(host_mac, Bytes::from(vec![2u8; 56]), now);
        while sys.direct_rx.is_empty() {
            assert!(sys.step(), "idle before reply");
            guard += 1;
            if guard >= 200_000 {
                panic!("{}", sys.stall_report("direct reply stalled"));
            }
        }
        let direct_rtt = sys.now() - t0;
        // Compare with an ICMP ping over the full stack on the same system.
        let t1 = sys.now();
        let dimm_ip = sys.dimm_ip(0);
        sys.host
            .stack
            .send_ping(dimm_ip, 3, 1, Bytes::from(vec![0u8; 56]), t1)
            .unwrap();
        while sys.host.stack.pop_ping_reply().is_none() {
            assert!(sys.step(), "idle before echo reply");
            guard += 1;
            if guard >= 400_000 {
                panic!("{}", sys.stall_report("icmp echo stalled"));
            }
        }
        let icmp_rtt = sys.now() - t1;
        assert!(
            direct_rtt < icmp_rtt,
            "bypass {direct_rtt} should beat the stack path {icmp_rtt}"
        );
    }
}
