//! A rack of MCN-enabled servers joined by conventional 10GbE NICs and a
//! top-of-rack switch.
//!
//! The paper's network organisation "supports the communication between
//! MCN nodes connected to different hosts by having the source host forward
//! the packet to the host of the destination MCN node through a
//! conventional NIC" (Sec. III-B, forwarding case F4), and Sec. VII
//! proposes replacing a rack of servers with MCN-enabled servers. This
//! module makes F4 functional: an MCN node sending to an address that
//! matches no local interface emits a frame with the "external" MAC; the
//! host forwarding engine classifies it F4 and hands it to the NIC; the
//! destination host receives it and injects it into its own MCN fabric.
//!
//! # Execution model
//!
//! Each server block (the [`McnSystem`], its NIC, and its up/down links)
//! is one [`Shard`] of the quantum-synchronized scheduler in
//! [`mcn_sim::shard`] — the generic wrapper lives in `crate::block`
//! and is shared with the baseline cluster and the Clos fabric. The ToR
//! switch is the only cross-shard boundary, and any frame leaving a
//! server pays the switch forwarding latency plus the downlink
//! propagation latency before it can touch another server — that path is
//! the synchronization [`Quantum`]. The same windowed algorithm drives
//! the rack whether [`run_parallel`](McnRack::run_parallel) is given one
//! thread or many, so serial and parallel runs produce byte-identical
//! metric snapshots.
//!
//! # Datacenter mode
//!
//! Inside a [`Datacenter`](crate::fabric::Datacenter) the rack gains a
//! fabric uplink: frames the host stacks resolve to the well-known
//! [gateway MAC](McnSystem::GATEWAY_MAC) (remote-rack `192.168.r.x`
//! addresses, via the `/16` gateway route) are claimed at the ToR and
//! handed upward instead of being switched locally, and frames arriving
//! from the fabric are re-addressed to the owning server's NIC and sent
//! down its link. A standalone rack never sees either path.

use mcn_net::link::{Link, Switch};
use mcn_net::EthernetFrame;
use mcn_node::nic::{Nic, NicConfig, NIC_WAITER};
use mcn_node::{MemorySystem, ProcId, Process};
use mcn_sim::metrics::{Instrumented, MetricSink};
use mcn_sim::stats::Counter;
use mcn_sim::{
    Activity, Component, EngineStats, EventQueue, Fabric, FaultPlan, OutageKind, OutagePlan,
    ParallelEngine, Quantum, RunGoal, RunReport, Shard, SimTime, StallReport,
};

use crate::block::{route_switched, Endpoint, EndpointBlock, SwitchPolicy};
use crate::config::{McnConfig, SystemConfig};
use crate::system::McnSystem;

/// A scheduled hard event at the rack layer (expanded from an
/// [`OutagePlan`] by [`McnRack::set_outage_plan`]).
#[derive(Debug)]
enum RackOutage {
    /// Crash DIMM `dimm` of server `server`.
    DimmCrash { server: usize, dimm: usize },
    /// Power that DIMM back on.
    DimmPowerOn { server: usize, dimm: usize },
    /// Sever server `server`'s ToR uplink (both directions).
    LinkDown { server: usize },
    /// Restore it.
    LinkUp { server: usize },
    /// Partition the switch: servers may only reach servers in their own
    /// group (group id per server; servers not listed keep group 0).
    Partition { group_of: Vec<usize> },
    /// Heal the partition.
    Heal,
    /// Whole-node reboot: uplink down + every DIMM crashes.
    NodeDown { server: usize },
    /// Node comes back: uplink up + every DIMM powers on.
    NodeUp { server: usize },
    /// Accounting marker: failure domain `domain` crashes now (the
    /// member events are scheduled at the same instant right after it).
    DomainCrash { domain: usize },
    /// Accounting marker: failure domain `domain` heals now.
    DomainHeal { domain: usize },
}

/// A control command the coordinator hands to one server block at a
/// window boundary (the shard-side half of a [`RackOutage`]).
#[derive(Debug)]
pub(crate) enum BlockCmd {
    /// Crash DIMM `d`.
    DimmCrash(usize),
    /// Power DIMM `d` back on.
    DimmPowerOn(usize),
    /// Uplink carrier lost.
    LinkDown,
    /// Uplink carrier restored.
    LinkUp,
    /// Uplink down + every DIMM crashes.
    NodeDown,
    /// Uplink up + every DIMM powers on.
    NodeUp,
}

/// Per-failure-domain outage accounting (one entry per domain defined in
/// the installed [`OutagePlan`], in definition order).
#[derive(Debug)]
pub struct DomainStats {
    /// Domain name from the plan.
    pub name: String,
    /// Whole-domain crashes applied.
    pub crashes: Counter,
    /// Whole-domain heals applied.
    pub heals: Counter,
}

/// Rack-layer outage statistics.
#[derive(Debug, Default)]
pub struct RackStats {
    /// Frames the partitioned switch refused to forward.
    pub partition_drops: Counter,
    /// Frames lost on a severed server uplink (routed towards it while
    /// down; each block also counts its own local drops).
    pub uplink_drops: Counter,
    /// Uplink outages applied.
    pub link_downs: Counter,
    /// Switch partitions applied.
    pub partitions: Counter,
    /// Whole-node reboots applied.
    pub node_reboots: Counter,
    /// Frames the ToR handed up to the datacenter fabric.
    pub fabric_tx: Counter,
    /// Fabric frames delivered down into this rack.
    pub fabric_rx: Counter,
    /// Fabric-bound or fabric-delivered frames with nowhere to go
    /// (standalone rack, unknown owner, undecodable payload).
    pub fabric_drops: Counter,
    /// Correlated failure-domain accounting.
    pub domains: Vec<DomainStats>,
}

/// The machine behind one rack shard: an [`McnSystem`] and its
/// conventional NIC. The wire machinery (links, event pump, emission
/// bounds) is the shared [`EndpointBlock`].
#[derive(Debug)]
pub(crate) struct McnEndpoint {
    /// This block's server index (for F4 source addressing).
    id: usize,
    /// This rack's id in the datacenter address plan (0 standalone).
    rack_id: usize,
    /// Rack size (for the F4 owner lookup).
    n_servers: usize,
    /// Whether a Clos fabric sits above the ToR: remote-rack addresses
    /// escape via the gateway MAC instead of being dropped.
    dc_mode: bool,
    pub(crate) sys: McnSystem,
    pub(crate) nic: Nic,
}

/// Who owns `ip` under the rack address plan? Remote racks' NIC
/// addresses (`192.168.r.x` with `r != rack_id`) are *not* owned — they
/// belong to the fabric.
fn owner_of(ip: std::net::Ipv4Addr, rack_id: usize, n_servers: usize) -> Option<usize> {
    let o = ip.octets();
    if o[0] == 192 && o[1] == 168 {
        if o[2] as usize != rack_id {
            return None; // remote rack, or the gateway plane
        }
        let s = (o[3] as usize).checked_sub(1)?;
        return (s < n_servers).then_some(s);
    }
    if o[0] == 10 && o[1] >= 1 {
        let s = (o[1] as usize - 1) / 24;
        return (s < n_servers).then_some(s);
    }
    None
}

/// The remote rack `ip` belongs to, if it is a NIC-plane address of a
/// rack other than `rack_id` (the gateway subnet `192.168.255.0/24` and
/// network addresses are excluded).
fn remote_rack_of(ip: std::net::Ipv4Addr, rack_id: usize) -> Option<usize> {
    let o = ip.octets();
    (o[0] == 192 && o[1] == 168 && o[2] != 255 && o[2] as usize != rack_id && o[3] >= 1)
        .then_some(o[2] as usize)
}

impl Endpoint for McnEndpoint {
    type Cmd = BlockCmd;

    fn wire(&mut self) -> (&mut Nic, &mut MemorySystem) {
        (&mut self.nic, &mut self.sys.host.mem)
    }

    fn nic(&self) -> &Nic {
        &self.nic
    }

    fn advance_pre(&mut self, t: SimTime) -> bool {
        let mut changed = false;
        // Fold the server's own activity into the convergence flag so
        // `rounds` counts real work (the internal advance runs to its own
        // fixed point and reports Idle once quiescent, so this cannot
        // livelock the loop in `run_window`).
        if self.sys.advance(t).is_active() {
            changed = true;
        }
        // NIC DMA completions the server collected for us.
        for (waiter, job) in std::mem::take(&mut self.sys.foreign_jobs) {
            debug_assert_eq!(waiter, NIC_WAITER);
            self.nic
                .on_job_done(job, t, &mut self.sys.host.cpus, &self.sys.host.cost, false);
            changed = true;
        }
        // F4 frames → NIC transmit, addressed to the owning server (or
        // to the datacenter gateway when the owner lives in another
        // rack and a fabric exists to carry the frame there).
        for mut frame in self.sys.take_external() {
            changed = true;
            let Some(dst_ip) = mcn_net::Ipv4Packet::decode(&frame.payload)
                .ok()
                .map(|p| p.dst)
            else {
                continue;
            };
            let dst_mac = match owner_of(dst_ip, self.rack_id, self.n_servers) {
                Some(owner) => McnSystem::nic_mac_in(self.rack_id, owner),
                None if self.dc_mode && remote_rack_of(dst_ip, self.rack_id).is_some() => {
                    McnSystem::GATEWAY_MAC
                }
                None => continue, // truly external: leaves the world (dropped)
            };
            frame.dst = dst_mac;
            frame.src = McnSystem::nic_mac_in(self.rack_id, self.id);
            let core = self.sys.host.cpus.least_loaded();
            self.nic
                .xmit(frame, t, core, &mut self.sys.host.cpus, &self.sys.host.cost);
        }
        changed
    }

    fn advance_post(&mut self, _t: SimTime) -> bool {
        // The McnSystem's own advance (in `advance_pre` next round)
        // covers stack service and processes; nothing extra here.
        false
    }

    fn rx(&mut self, frame: EthernetFrame, t: SimTime) {
        self.sys.ingress_external(frame, t);
    }

    fn next_wakeup(&mut self) -> Option<SimTime> {
        self.sys.next_event()
    }

    fn apply(&mut self, at: SimTime, cmd: BlockCmd, link_up: &mut bool) {
        match cmd {
            BlockCmd::DimmCrash(d) => self.sys.crash_dimm(d, at),
            BlockCmd::DimmPowerOn(d) => self.sys.power_on_dimm(d, at),
            BlockCmd::LinkDown => *link_up = false,
            BlockCmd::LinkUp => *link_up = true,
            BlockCmd::NodeDown => {
                *link_up = false;
                for d in 0..self.sys.dimms() {
                    self.sys.crash_dimm(d, at);
                }
            }
            BlockCmd::NodeUp => {
                *link_up = true;
                for d in 0..self.sys.dimms() {
                    self.sys.power_on_dimm(d, at);
                }
            }
        }
    }

    fn procs_done(&self) -> bool {
        self.sys.all_procs_done()
    }

    fn stall_panic(&self, _t: SimTime) -> String {
        format!("{}", self.sys.stall_report("server block did not converge"))
    }
}

/// The admission/claim policy of the ToR: partitions, severed uplinks,
/// and (in datacenter mode) the fabric gateway.
struct RackPolicy<'a> {
    partition: &'a Option<Vec<usize>>,
    link_up: &'a [bool],
    stats: &'a mut RackStats,
    dc_uplink: Option<&'a mut Vec<(SimTime, EthernetFrame)>>,
}

impl SwitchPolicy for RackPolicy<'_> {
    fn claim(&mut self, at: SimTime, frame: &EthernetFrame) -> bool {
        if frame.dst != McnSystem::GATEWAY_MAC {
            return false;
        }
        match &mut self.dc_uplink {
            Some(up) => {
                self.stats.fabric_tx.inc();
                up.push((at, frame.clone()));
            }
            None => {
                // Standalone rack: there is nothing above the ToR; the
                // frame leaves the simulated world.
                self.stats.fabric_drops.inc();
            }
        }
        true
    }

    fn admit(&mut self, from: usize, to: usize) -> bool {
        if let Some(groups) = self.partition {
            if groups[to] != groups[from] {
                // Partitioned: the switch has no path between the
                // groups. Silent loss, exactly like a real fabric.
                self.stats.partition_drops.inc();
                return false;
            }
        }
        if !self.link_up[to] {
            self.stats.uplink_drops.inc();
            return false;
        }
        true
    }
}

/// The coordinator-side boundary: the ToR switch, the outage schedule,
/// and the partition / carrier state that routing consults.
struct RackFabric<'a> {
    switch: &'a mut Switch,
    outages: &'a mut EventQueue<RackOutage>,
    partition: &'a mut Option<Vec<usize>>,
    link_up: &'a mut [bool],
    stats: &'a mut RackStats,
    dc_uplink: Option<&'a mut Vec<(SimTime, EthernetFrame)>>,
}

impl Fabric<EndpointBlock<McnEndpoint>> for RackFabric<'_> {
    fn next_control(&mut self) -> Option<SimTime> {
        self.outages.peek_time()
    }

    fn pop_controls(&mut self, now: SimTime, out: &mut Vec<(usize, SimTime, BlockCmd)>) {
        while let Some((at, o)) = self.outages.pop_if_due(now) {
            let at = at.max(now);
            match o {
                RackOutage::DimmCrash { server, dimm } => {
                    out.push((server, at, BlockCmd::DimmCrash(dimm)));
                }
                RackOutage::DimmPowerOn { server, dimm } => {
                    out.push((server, at, BlockCmd::DimmPowerOn(dimm)));
                }
                RackOutage::LinkDown { server } => {
                    self.stats.link_downs.inc();
                    self.link_up[server] = false;
                    out.push((server, at, BlockCmd::LinkDown));
                }
                RackOutage::LinkUp { server } => {
                    self.link_up[server] = true;
                    out.push((server, at, BlockCmd::LinkUp));
                }
                RackOutage::Partition { group_of } => {
                    self.stats.partitions.inc();
                    *self.partition = Some(group_of);
                }
                RackOutage::Heal => {
                    *self.partition = None;
                }
                RackOutage::NodeDown { server } => {
                    self.stats.node_reboots.inc();
                    self.stats.link_downs.inc();
                    self.link_up[server] = false;
                    out.push((server, at, BlockCmd::NodeDown));
                }
                RackOutage::NodeUp { server } => {
                    self.link_up[server] = true;
                    out.push((server, at, BlockCmd::NodeUp));
                }
                RackOutage::DomainCrash { domain } => {
                    self.stats.domains[domain].crashes.inc();
                }
                RackOutage::DomainHeal { domain } => {
                    self.stats.domains[domain].heals.inc();
                }
            }
        }
    }

    fn route(
        &mut self,
        from: usize,
        at: SimTime,
        frame: EthernetFrame,
        out: &mut Vec<(usize, SimTime, EthernetFrame)>,
    ) {
        let mut policy = RackPolicy {
            partition: self.partition,
            link_up: self.link_up,
            stats: self.stats,
            dc_uplink: self.dc_uplink.as_deref_mut(),
        };
        route_switched(self.switch, &mut policy, from, at, frame, out);
    }
}

/// A rack: N MCN servers, one ToR switch.
///
/// Shard `s` of the windowed scheduler is the whole per-server block:
/// the server, its NIC, and its up/down links. The switch and the
/// outage schedule live on the coordinator and run only at barriers.
#[derive(Debug)]
pub struct McnRack {
    blocks: Vec<EndpointBlock<McnEndpoint>>,
    switch: Switch,
    now: SimTime,
    /// The quantum-synchronized scheduler (serial = 1 thread).
    sched: ParallelEngine,
    /// Scheduled hard events (crashes, partitions, reboots).
    outages: EventQueue<RackOutage>,
    /// Per-server switch group while partitioned; `None` = fully connected.
    partition: Option<Vec<usize>>,
    /// Per-server uplink carrier (false = severed); authoritative copy
    /// for route-time checks, mirrored into the blocks for poll-time.
    link_up: Vec<bool>,
    /// This rack's id in the datacenter address plan (0 standalone).
    rack_id: usize,
    /// Whether a Clos fabric sits above the ToR.
    dc_mode: bool,
    /// Frames claimed by the gateway since the last
    /// [`take_dc_uplink`](Self::take_dc_uplink), with their
    /// cleared-the-ToR timestamps.
    dc_uplink_out: Vec<(SimTime, EthernetFrame)>,
    /// Outage statistics.
    pub stats: RackStats,
}

impl McnRack {
    /// Builds `n_servers` servers of `dimms_per_server` DIMMs each at the
    /// given optimisation level, fully routed.
    pub fn new(
        sys: &SystemConfig,
        n_servers: usize,
        dimms_per_server: usize,
        cfg: McnConfig,
    ) -> Self {
        Self::with_faults(sys, n_servers, dimms_per_server, cfg, &FaultPlan::default())
    }

    /// Like [`new`](Self::new), but every server shares the same
    /// deterministic [`FaultPlan`] (component names are already
    /// per-server — `srv{s}.alert`, `srv{s}.dma`, `srv{s}.sram.*` — so
    /// one plan can target any server in the rack).
    pub fn with_faults(
        sys: &SystemConfig,
        n_servers: usize,
        dimms_per_server: usize,
        cfg: McnConfig,
        plan: &FaultPlan,
    ) -> Self {
        Self::build(sys, n_servers, dimms_per_server, cfg, plan, 0, false)
    }

    /// Builds rack `rack_id` of a datacenter: NIC addresses shift into
    /// the rack's `/24`, every server gets the `/16` gateway route, and
    /// the ToR claims gateway-bound frames onto the fabric uplink.
    pub(crate) fn new_in_dc(
        sys: &SystemConfig,
        n_servers: usize,
        dimms_per_server: usize,
        cfg: McnConfig,
        plan: &FaultPlan,
        rack_id: usize,
    ) -> Self {
        Self::build(sys, n_servers, dimms_per_server, cfg, plan, rack_id, true)
    }

    fn build(
        sys: &SystemConfig,
        n_servers: usize,
        dimms_per_server: usize,
        cfg: McnConfig,
        plan: &FaultPlan,
        rack_id: usize,
        dc: bool,
    ) -> Self {
        assert!((1..=10).contains(&n_servers), "address plan supports 1-10 servers");
        assert!(rack_id < 64, "NIC MAC plan supports 64 racks");
        let mut servers: Vec<McnSystem> = (0..n_servers)
            .map(|s| {
                let mut m =
                    McnSystem::with_faults_in_dc(sys, dimms_per_server, cfg, rack_id, s, plan);
                m.attach_nic_iface();
                if dc {
                    // /16 towards the fabric; the /32 same-rack routes
                    // below win by longest-prefix match.
                    m.add_dc_gateway_route();
                }
                m
            })
            .collect();
        // Cross-server routes: every remote MCN-node and host-side address
        // routes out the NIC towards the owning server's NIC.
        for (s, srv) in servers.iter_mut().enumerate() {
            for r in 0..n_servers {
                if r == s {
                    continue;
                }
                let gw = McnSystem::nic_ip_in(rack_id, r);
                let gw_mac = McnSystem::nic_mac_in(rack_id, r);
                for d in 0..dimms_per_server {
                    let dimm_ip = crate::McnDimm::ip_for(r, d);
                    let host_if = McnSystem::host_if_ip_for(r, d);
                    srv.add_remote_route(dimm_ip, gw, gw_mac);
                    srv.add_remote_route(host_if, gw, gw_mac);
                }
                srv.add_remote_route(gw, gw, gw_mac);
            }
        }
        let mk_link = || Link::new(sys.eth_bytes_per_sec, sys.eth_latency);
        let switch = Switch::new(n_servers);
        // The dist-gem5 quantum: the fastest cross-shard path is switch
        // store-and-forward plus one downlink propagation delay.
        let quantum = Quantum::from_path(switch.forward_latency, sys.eth_latency);
        McnRack {
            blocks: servers
                .into_iter()
                .enumerate()
                .map(|(id, srv)| {
                    EndpointBlock::new(
                        McnEndpoint {
                            id,
                            rack_id,
                            n_servers,
                            dc_mode: dc,
                            sys: srv,
                            nic: Nic::new(NicConfig::default()),
                        },
                        mk_link(),
                        mk_link(),
                    )
                })
                .collect(),
            switch,
            now: SimTime::ZERO,
            sched: ParallelEngine::new(quantum),
            outages: EventQueue::new(),
            partition: None,
            link_up: vec![true; n_servers],
            rack_id,
            dc_mode: dc,
            dc_uplink_out: Vec::new(),
            stats: RackStats::default(),
        }
    }

    /// Outage-plan component name for DIMM `d` of server `s`.
    pub fn dimm_outage_component(s: usize, d: usize) -> String {
        format!("server{s}.dimm{d}")
    }

    /// Outage-plan component name for server `s`'s ToR uplink.
    pub fn link_outage_component(s: usize) -> String {
        format!("server{s}.link")
    }

    /// Outage-plan component name for whole-node reboots of server `s`.
    pub fn node_outage_component(s: usize) -> String {
        format!("server{s}")
    }

    /// Outage-plan component name for the ToR switch (partitions).
    pub const SWITCH_OUTAGE_COMPONENT: &'static str = "switch";

    /// Expands one failure-domain member name into its (crash, heal)
    /// event pair. Understands the same component shapes as
    /// [`set_outage_plan`](Self::set_outage_plan): `server{s}.dimm{d}`,
    /// `server{s}.link`, and `server{s}` (whole-node reboot).
    fn member_outages(&self, domain: &str, member: &str) -> (RackOutage, RackOutage) {
        let bad = || -> ! {
            panic!(
                "failure domain '{domain}': member '{member}' names no component \
                 of this rack ({} servers)",
                self.blocks.len()
            )
        };
        let Some(rest) = member.strip_prefix("server") else { bad() };
        let (s, tail) = match rest.split_once('.') {
            Some((s, tail)) => (s, Some(tail)),
            None => (rest, None),
        };
        let Ok(s) = s.parse::<usize>() else { bad() };
        if s >= self.blocks.len() {
            bad();
        }
        match tail {
            None => (RackOutage::NodeDown { server: s }, RackOutage::NodeUp { server: s }),
            Some("link") => {
                (RackOutage::LinkDown { server: s }, RackOutage::LinkUp { server: s })
            }
            Some(t) => {
                let Some(d) = t.strip_prefix("dimm").and_then(|d| d.parse::<usize>().ok())
                else {
                    bad()
                };
                if d >= self.blocks[s].ep.sys.dimms() {
                    bad();
                }
                (
                    RackOutage::DimmCrash { server: s, dimm: d },
                    RackOutage::DimmPowerOn { server: s, dimm: d },
                )
            }
        }
    }

    /// Installs a hard-outage plan. Component names understood:
    ///
    /// * `server{s}.dimm{d}` + [`OutageKind::DimmCrash`] — crash/reboot one
    ///   DIMM (the host↔DIMM re-init handshake heals it),
    /// * `server{s}.link` + [`OutageKind::LinkDown`] — sever the server's
    ///   ToR uplink for the duration,
    /// * `server{s}` + [`OutageKind::NodeReboot`] — uplink down and every
    ///   DIMM crashed until the node comes back,
    /// * `switch` + [`OutageKind::SwitchPartition`] — servers may only
    ///   reach their own group until `heal_at`.
    ///
    /// Failure domains defined on the plan
    /// ([`OutagePlan::define_domain`](mcn_sim::OutagePlan::define_domain))
    /// expand too: a [`OutageKind::DomainDown`] scheduled against the
    /// domain name crashes every member (each member name uses the
    /// component shapes above) at one instant and heals them all
    /// `down_for` later. Both edges land at window boundaries on the
    /// coordinator, so the whole domain flips atomically and
    /// deterministically at any thread count. Per-domain accounting is
    /// exported as `rack.outage.domain.<name>.{crashes,heals}`.
    ///
    /// # Panics
    ///
    /// Panics if a domain member names a component outside this rack —
    /// always a chaos-wiring bug, never a runtime condition.
    pub fn set_outage_plan(&mut self, plan: &OutagePlan) {
        for (di, dom) in plan.domains().iter().enumerate() {
            if self.stats.domains.len() <= di {
                self.stats.domains.push(DomainStats {
                    name: dom.name.clone(),
                    crashes: Counter::default(),
                    heals: Counter::default(),
                });
            }
            let mut sched = plan.schedule(&dom.name);
            for (t, kind) in sched.pop_due(SimTime::MAX) {
                let OutageKind::DomainDown { down_for } = kind else {
                    continue;
                };
                // Markers first: stable FIFO ordering for simultaneous
                // events means the accounting fires before (crash) and
                // after (heal edge at t + down_for) the member commands
                // of the same instant.
                self.outages.schedule(t, RackOutage::DomainCrash { domain: di });
                self.outages.schedule(t + down_for, RackOutage::DomainHeal { domain: di });
                for m in &dom.members {
                    let (down, up) = self.member_outages(&dom.name, m);
                    self.outages.schedule(t, down);
                    self.outages.schedule(t + down_for, up);
                }
            }
        }
        for s in 0..self.blocks.len() {
            for d in 0..self.blocks[s].ep.sys.dimms() {
                let mut sched = plan.schedule(&Self::dimm_outage_component(s, d));
                for (t, kind) in sched.pop_due(SimTime::MAX) {
                    let OutageKind::DimmCrash { down_for } = kind else {
                        continue;
                    };
                    self.outages.schedule(t, RackOutage::DimmCrash { server: s, dimm: d });
                    self.outages
                        .schedule(t + down_for, RackOutage::DimmPowerOn { server: s, dimm: d });
                }
            }
            let mut links = plan.schedule(&Self::link_outage_component(s));
            for (t, kind) in links.pop_due(SimTime::MAX) {
                let OutageKind::LinkDown { down_for } = kind else {
                    continue;
                };
                self.outages.schedule(t, RackOutage::LinkDown { server: s });
                self.outages.schedule(t + down_for, RackOutage::LinkUp { server: s });
            }
            let mut nodes = plan.schedule(&Self::node_outage_component(s));
            for (t, kind) in nodes.pop_due(SimTime::MAX) {
                let OutageKind::NodeReboot { down_for } = kind else {
                    continue;
                };
                self.outages.schedule(t, RackOutage::NodeDown { server: s });
                self.outages.schedule(t + down_for, RackOutage::NodeUp { server: s });
            }
        }
        let mut sw = plan.schedule(Self::SWITCH_OUTAGE_COMPONENT);
        for (t, kind) in sw.pop_due(SimTime::MAX) {
            let OutageKind::SwitchPartition { groups, heal_at } = kind else {
                continue;
            };
            let mut group_of = vec![0usize; self.blocks.len()];
            for (g, members) in groups.iter().enumerate() {
                for &m in members {
                    if m < group_of.len() {
                        group_of[m] = g;
                    }
                }
            }
            self.outages.schedule(t, RackOutage::Partition { group_of });
            self.outages.schedule(heal_at.max(t), RackOutage::Heal);
        }
    }

    /// Partitions the switch now: server `s` belongs to `group_of[s]` and
    /// can only reach its own group. Prefer [`Self::set_outage_plan`] for
    /// scheduled chaos; this is the immediate form.
    pub fn partition_now(&mut self, group_of: Vec<usize>) {
        assert_eq!(group_of.len(), self.blocks.len());
        self.stats.partitions.inc();
        self.partition = Some(group_of);
    }

    /// Heals a partition now: full connectivity is restored. Stalled
    /// retransmissions resume at their own pending timers.
    pub fn heal_now(&mut self) {
        self.partition = None;
    }

    /// Whether the switch is currently partitioned.
    pub fn is_partitioned(&self) -> bool {
        self.partition.is_some()
    }

    /// Number of servers.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// True for an empty rack (never constructed by [`new`](Self::new)).
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Access server `s`.
    pub fn server(&self, s: usize) -> &McnSystem {
        &self.blocks[s].ep.sys
    }

    /// Mutable access to server `s` (e.g. to spawn work or open sockets;
    /// the scheduler re-queries every block's deadline each window).
    pub fn server_mut(&mut self, s: usize) -> &mut McnSystem {
        &mut self.blocks[s].ep.sys
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The synchronization quantum the scheduler derived from the
    /// switch + downlink latency.
    pub fn quantum(&self) -> Quantum {
        self.sched.quantum()
    }

    /// Spawns a process on a host core of server `s`.
    pub fn spawn_host(&mut self, s: usize, proc: Box<dyn Process>, core: usize) -> ProcId {
        self.server_mut(s).spawn_host(proc, core)
    }

    /// Spawns a process on DIMM `d` of server `s`.
    pub fn spawn_dimm(
        &mut self,
        s: usize,
        d: usize,
        proc: Box<dyn Process>,
        core: usize,
    ) -> ProcId {
        self.server_mut(s).spawn_dimm(d, proc, core)
    }

    /// All processes on all servers finished?
    pub fn all_procs_done(&self) -> bool {
        self.blocks.iter().all(|b| b.ep.sys.all_procs_done())
    }

    /// Earliest pending activity in the rack: the earliest block event
    /// plus the next scheduled outage (a crash or heal is activity even
    /// when every server is idle).
    pub fn next_event(&mut self) -> Option<SimTime> {
        let mut t = self.outages.peek_time();
        for b in self.blocks.iter_mut() {
            t = match (t, Shard::next_event(b)) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
        }
        t.map(|x| x.max(self.now))
    }

    /// A structured snapshot of the whole rack for stall debugging: every
    /// server's [`McnSystem::stall_report`] folded in under a `srv{s}.`
    /// prefix, plus a `wire` section with NIC/link timers.
    pub fn stall_report(&self, title: &str) -> StallReport {
        let mut r = StallReport::new(format!("{title} (rack of {} @ {})", self.len(), self.now));
        for (s, b) in self.blocks.iter().enumerate() {
            r.absorb(&format!("srv{s}."), &b.ep.sys.stall_report("server"));
        }
        for (s, b) in self.blocks.iter().enumerate() {
            r.line(
                "wire",
                format!(
                    "srv{s}: link_up={} nic_next={:?} up_next={:?} down_next={:?}",
                    b.link_up,
                    b.ep.nic.next_event(),
                    b.up.next_arrival(),
                    b.down.next_arrival()
                ),
            );
        }
        if let Some(groups) = &self.partition {
            r.line("wire", format!("switch partitioned: groups={groups:?}"));
        }
        if !self.outages.is_empty() {
            r.line("wire", format!("{} scheduled outages pending", self.outages.len()));
        }
        r
    }

    /// Who owns `ip` (by the rack address plan)?
    #[cfg(test)]
    fn owner_of(&self, ip: std::net::Ipv4Addr) -> Option<usize> {
        owner_of(ip, self.rack_id, self.blocks.len())
    }

    /// Drives the rack with the windowed scheduler on `threads` workers.
    fn drive(&mut self, target: SimTime, goal: RunGoal, threads: usize) -> RunReport {
        let McnRack {
            blocks,
            switch,
            now,
            sched,
            outages,
            partition,
            link_up,
            dc_mode,
            dc_uplink_out,
            stats,
            ..
        } = self;
        let mut fabric = RackFabric {
            switch,
            outages,
            partition,
            link_up,
            stats,
            dc_uplink: if *dc_mode { Some(dc_uplink_out) } else { None },
        };
        sched.run(blocks, &mut fabric, now, target, goal, threads)
    }

    /// Runs until every process on every server finishes, or `deadline`
    /// passes (returns false). With `threads >= 2` the server blocks run
    /// on worker threads under the synchronization quantum; the result —
    /// final clock and every counter — is byte-identical to `threads = 1`.
    pub fn run_parallel(&mut self, deadline: SimTime, threads: usize) -> bool {
        self.drive(deadline, RunGoal::ProcsDone, threads).completed
    }

    /// Runs every event up to `deadline` on `threads` workers, then sets
    /// the clock to it — the parallel analogue of
    /// [`run_until`](mcn_sim::ComponentExt::run_until).
    pub fn run_parallel_until(&mut self, deadline: SimTime, threads: usize) {
        self.drive(deadline, RunGoal::Deadline, threads);
    }

    /// Drives every event up to exactly `end` serially and returns the
    /// event count — the inner step of a hierarchical quantum domain
    /// (the datacenter engine calls this inside each outer window).
    pub(crate) fn drive_window(&mut self, end: SimTime) -> u64 {
        self.drive(end, RunGoal::Deadline, 1).events
    }

    /// Drains the gateway-claimed frames bound for the Clos fabric.
    pub(crate) fn take_dc_uplink(&mut self) -> Vec<(SimTime, EthernetFrame)> {
        std::mem::take(&mut self.dc_uplink_out)
    }

    /// Delivers a frame that arrived from the fabric at the ToR at `at`:
    /// re-addressed to the owning server's NIC and sent down its link.
    /// Returns whether a server accepted it.
    pub(crate) fn deliver_from_fabric(&mut self, at: SimTime, frame: EthernetFrame) -> bool {
        let Some(dst_ip) = mcn_net::Ipv4Packet::decode(&frame.payload)
            .ok()
            .map(|p| p.dst)
        else {
            self.stats.fabric_drops.inc();
            return false;
        };
        let Some(owner) = owner_of(dst_ip, self.rack_id, self.blocks.len()) else {
            self.stats.fabric_drops.inc();
            return false;
        };
        if !self.link_up[owner] {
            self.stats.uplink_drops.inc();
            return false;
        }
        let mut f = frame;
        f.dst = McnSystem::nic_mac_in(self.rack_id, owner);
        self.stats.fabric_rx.inc();
        Shard::deliver(&mut self.blocks[owner], at, f);
        true
    }

    /// The rack's inner scheduler (quantum + per-domain accounting for
    /// the datacenter's hierarchical metrics).
    pub(crate) fn engine(&self) -> &ParallelEngine {
        &self.sched
    }

    /// Schedules a whole-node reboot of `server` directly (the
    /// datacenter expands rack-scale outage components into these).
    pub(crate) fn schedule_node_outage(&mut self, server: usize, at: SimTime, up_at: SimTime) {
        self.outages.schedule(at, RackOutage::NodeDown { server });
        self.outages.schedule(up_at, RackOutage::NodeUp { server });
    }

    /// Event-loop accounting summed over the server blocks.
    fn summed_stats(&self) -> EngineStats {
        let mut s = EngineStats::default();
        for b in &self.blocks {
            s.component_polls.add(b.stats.component_polls.get());
            s.rounds.add(b.stats.rounds.get());
            s.advances.add(b.stats.advances.get());
        }
        s
    }
}

impl Component for McnRack {
    fn now(&self) -> SimTime {
        McnRack::now(self)
    }
    fn next_event(&mut self) -> Option<SimTime> {
        McnRack::next_event(self)
    }
    fn advance(&mut self, t: SimTime) -> Activity {
        assert!(t >= self.now, "time must not go backwards");
        let rep = self.drive(t, RunGoal::Deadline, 1);
        Activity::from_flag(rep.events > 0)
    }
    fn procs_done(&self) -> bool {
        self.all_procs_done()
    }
    fn engine_accounting(&self, out: &mut Vec<(EngineStats, usize)>) {
        out.push((self.summed_stats(), self.blocks.len()));
        for b in &self.blocks {
            b.ep.sys.engine_accounting(out);
        }
    }
}

impl Instrumented for McnRack {
    /// The whole rack tree: each server's [`McnSystem`] registry under
    /// `srv{N}.*` (identical to its standalone paths), the rack-layer
    /// outage counters under `rack.*`, the ToR switch, each server's NIC
    /// (`nic{N}.*`) and uplink/downlink (`link{N}.up/.down`), the summed
    /// block event-loop accounting (`engine.*`), the windowed scheduler
    /// (`sched.*`) and the clock.
    fn metrics(&self, out: &mut MetricSink) {
        out.counter("now_ps", self.now.as_ps());
        out.scoped("rack", |out| {
            out.counter("partition_drops", self.stats.partition_drops.get());
            let block_drops: u64 = self.blocks.iter().map(|b| b.uplink_drops.get()).sum();
            out.counter("uplink_drops", self.stats.uplink_drops.get() + block_drops);
            out.counter("link_downs", self.stats.link_downs.get());
            out.counter("partitions", self.stats.partitions.get());
            out.counter("node_reboots", self.stats.node_reboots.get());
            out.counter("fabric_tx", self.stats.fabric_tx.get());
            out.counter("fabric_rx", self.stats.fabric_rx.get());
            out.counter("fabric_drops", self.stats.fabric_drops.get());
            for d in &self.stats.domains {
                out.scoped(&format!("outage.domain.{}", d.name), |out| {
                    out.counter("crashes", d.crashes.get());
                    out.counter("heals", d.heals.get());
                });
            }
        });
        out.absorb("switch", &self.switch);
        for (s, b) in self.blocks.iter().enumerate() {
            out.absorb(&format!("srv{s}"), &b.ep.sys);
        }
        for (s, b) in self.blocks.iter().enumerate() {
            out.absorb(&format!("nic{s}"), &b.ep.nic);
            out.scoped(&format!("link{s}"), |out| {
                out.absorb("up", &b.up);
                out.absorb("down", &b.down);
            });
        }
        out.absorb("engine", &self.summed_stats());
        out.absorb("sched", &self.sched);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use mcn_sim::ComponentExt;

    fn mk(servers: usize, dimms: usize, level: u32) -> McnRack {
        McnRack::new(&SystemConfig::default(), servers, dimms, McnConfig::level(level))
    }

    #[test]
    fn address_plan_is_disjoint() {
        let rack = mk(3, 2, 1);
        let mut all = std::collections::HashSet::new();
        for s in 0..3 {
            assert!(all.insert(McnSystem::nic_ip(s)));
            for d in 0..2 {
                assert!(all.insert(rack.server(s).dimm_ip(d)));
                assert!(all.insert(McnSystem::host_if_ip_for(s, d)));
            }
        }
        assert_eq!(rack.owner_of(rack.server(2).dimm_ip(1)), Some(2));
        assert_eq!(rack.owner_of(McnSystem::nic_ip(0)), Some(0));
        assert_eq!(rack.owner_of(std::net::Ipv4Addr::new(8, 8, 8, 8)), None);
    }

    #[test]
    fn dc_address_plan_is_disjoint_across_racks() {
        let mut ips = std::collections::HashSet::new();
        let mut macs = std::collections::HashSet::new();
        for r in 0..8 {
            for s in 0..8 {
                assert!(ips.insert(McnSystem::nic_ip_in(r, s)), "nic ip {r}/{s}");
                assert!(macs.insert(McnSystem::nic_mac_in(r, s).0), "nic mac {r}/{s}");
            }
        }
        // Remote-rack addresses are owned by nobody locally but resolve
        // to their rack for the gateway escape.
        assert_eq!(owner_of(McnSystem::nic_ip_in(3, 2), 1, 8), None);
        assert_eq!(remote_rack_of(McnSystem::nic_ip_in(3, 2), 1), Some(3));
        assert_eq!(remote_rack_of(McnSystem::nic_ip_in(1, 2), 1), None);
        assert_eq!(remote_rack_of(McnSystem::GATEWAY_IP, 1), None);
    }

    #[test]
    fn udp_between_mcn_nodes_of_different_servers() {
        // DIMM 0 of server 0 → DIMM 1 of server 1: SRAM ring → host →
        // F4 → NIC → switch → NIC → host → T1-T3 → SRAM ring.
        let mut rack = mk(2, 2, 1);
        let dst_ip = rack.server(1).dimm_ip(1);
        let u_src = rack
            .server_mut(0)
            .dimm_mut(0)
            .node
            .stack
            .udp_bind(7000)
            .unwrap();
        let u_dst = rack
            .server_mut(1)
            .dimm_mut(1)
            .node
            .stack
            .udp_bind(7001)
            .unwrap();
        rack.server_mut(0)
            .dimm_mut(0)
            .node
            .stack
            .udp_send(u_src, dst_ip, 7001, Bytes::from(vec![0xE4u8; 900]), SimTime::ZERO)
            .unwrap();
        rack.run_until(SimTime::from_ms(1));
        let (from, _, data) = rack
            .server_mut(1)
            .dimm_mut(1)
            .node
            .stack
            .udp_recv(u_dst)
            .expect("datagram crossed two memory channels and the wire");
        assert_eq!(from, crate::McnDimm::ip_for(0, 0));
        assert_eq!(data.len(), 900);
        assert_eq!(rack.server(0).hdrv.stats.f4_external.get(), 1);
    }

    #[test]
    fn tcp_across_the_rack() {
        let mut rack = mk(2, 1, 3);
        let dst_ip = rack.server(1).dimm_ip(0);
        let lst = rack
            .server_mut(1)
            .dimm_mut(0)
            .node
            .stack
            .tcp_listen(9000)
            .unwrap();
        let cs = rack
            .server_mut(0)
            .dimm_mut(0)
            .node
            .stack
            .tcp_connect(dst_ip, 9000, SimTime::ZERO)
            .unwrap();
        rack.run_until(SimTime::from_ms(5));
        assert_eq!(
            rack.server(0).dimm(0).node.stack.tcp_state(cs),
            mcn_net::tcp::TcpState::Established,
            "handshake across the rack"
        );
        let ss = rack
            .server_mut(1)
            .dimm_mut(0)
            .node
            .stack
            .tcp_accept(lst)
            .unwrap();
        let data: Vec<u8> = (0..64 * 1024u32).map(|i| (i % 247) as u8).collect();
        let mut sent = 0;
        let mut got = Vec::new();
        let mut buf = vec![0u8; 32768];
        let mut guard = 0;
        while got.len() < data.len() {
            let now = rack.now();
            if sent < data.len() {
                sent += rack
                    .server_mut(0)
                    .dimm_mut(0)
                    .node
                    .stack
                    .tcp_send(cs, &data[sent..], now)
                    .unwrap();
            }
            rack.run_until(rack.now() + SimTime::from_us(200));
            loop {
                let now = rack.now();
                let n = rack
                    .server_mut(1)
                    .dimm_mut(0)
                    .node
                    .stack
                    .tcp_recv(ss, &mut buf, now)
                    .unwrap();
                if n == 0 {
                    break;
                }
                got.extend_from_slice(&buf[..n]);
            }
            guard += 1;
            if guard >= 20_000 {
                panic!(
                    "stalled at {} bytes\n{}",
                    got.len(),
                    rack.stall_report("tcp_across_the_rack stalled")
                );
            }
        }
        assert_eq!(got, data, "byte-exact across two MCN fabrics + Ethernet");
    }

    #[test]
    fn partition_blocks_cross_group_traffic_until_heal() {
        let mut rack = mk(2, 1, 1);
        let dst_ip = rack.server(1).dimm_ip(0);
        let u0 = rack
            .server_mut(0)
            .dimm_mut(0)
            .node
            .stack
            .udp_bind(7000)
            .unwrap();
        let u1 = rack
            .server_mut(1)
            .dimm_mut(0)
            .node
            .stack
            .udp_bind(7001)
            .unwrap();
        rack.partition_now(vec![0, 1]);
        rack.server_mut(0)
            .dimm_mut(0)
            .node
            .stack
            .udp_send(u0, dst_ip, 7001, Bytes::from(vec![9u8; 200]), SimTime::ZERO)
            .unwrap();
        rack.run_until(SimTime::from_ms(2));
        assert!(
            rack.server_mut(1)
                .dimm_mut(0)
                .node
                .stack
                .udp_recv(u1)
                .is_none(),
            "partitioned switch must not forward"
        );
        assert!(rack.stats.partition_drops.get() > 0);
        // Heal, resend: delivery works again.
        rack.heal_now();
        let now = rack.now();
        rack.server_mut(0)
            .dimm_mut(0)
            .node
            .stack
            .udp_send(u0, dst_ip, 7001, Bytes::from(vec![8u8; 200]), now)
            .unwrap();
        rack.run_until(now + SimTime::from_ms(2));
        assert!(rack
            .server_mut(1)
            .dimm_mut(0)
            .node
            .stack
            .udp_recv(u1)
            .is_some());
    }

    #[test]
    fn scheduled_node_reboot_heals_itself() {
        use mcn_sim::OutagePlan;
        let mut rack = mk(2, 1, 1);
        let mut plan = OutagePlan::new(11);
        plan.at(
            &McnRack::node_outage_component(1),
            SimTime::from_us(100),
            mcn_sim::OutageKind::NodeReboot {
                down_for: SimTime::from_us(300),
            },
        );
        rack.set_outage_plan(&plan);
        rack.run_until(SimTime::from_us(200));
        assert!(!rack.server(1).dimm(0).alive(), "node down at 100us");
        rack.run_until(SimTime::from_ms(10));
        assert!(rack.server(1).dimm(0).alive(), "node back at 400us");
        assert!(rack.server(1).hdrv.port_is_up(0), "reinit handshake healed");
        assert_eq!(rack.stats.node_reboots.get(), 1);
    }

    #[test]
    fn domain_crash_fells_and_heals_all_members_atomically() {
        use mcn_sim::OutagePlan;
        let mut rack = mk(2, 2, 1);
        let mut plan = OutagePlan::new(7);
        plan.define_domain(
            "riser0",
            &[
                &McnRack::dimm_outage_component(0, 0),
                &McnRack::dimm_outage_component(0, 1),
            ],
        );
        plan.domain_crash(
            "riser0",
            SimTime::from_us(100),
            SimTime::from_us(300),
        );
        rack.set_outage_plan(&plan);
        rack.run_until(SimTime::from_us(200));
        // Both members fell at the same boundary; the other server's
        // DIMMs are untouched.
        assert!(!rack.server(0).dimm(0).alive(), "member 0 down");
        assert!(!rack.server(0).dimm(1).alive(), "member 1 down");
        assert!(rack.server(1).dimm(0).alive(), "other domain untouched");
        assert_eq!(rack.stats.domains[0].crashes.get(), 1);
        assert_eq!(rack.stats.domains[0].heals.get(), 0);
        rack.run_until(SimTime::from_ms(10));
        assert!(rack.server(0).dimm(0).alive(), "member 0 healed");
        assert!(rack.server(0).dimm(1).alive(), "member 1 healed");
        assert_eq!(rack.stats.domains[0].heals.get(), 1);
        // The per-domain counters are in the registry under rack.*.
        let snap = mcn_sim::MetricsSnapshot::collect(&rack);
        assert_eq!(snap.get_u64("rack.outage.domain.riser0.crashes"), 1);
        assert_eq!(snap.get_u64("rack.outage.domain.riser0.heals"), 1);
    }

    #[test]
    #[should_panic(expected = "names no component")]
    fn domain_with_unknown_member_panics_at_install() {
        use mcn_sim::OutagePlan;
        let mut rack = mk(2, 1, 1);
        let mut plan = OutagePlan::new(7);
        plan.define_domain("bogus", &["server9.dimm0"]);
        plan.domain_crash("bogus", SimTime::from_us(1), SimTime::from_us(1));
        rack.set_outage_plan(&plan);
    }

    #[test]
    fn intra_server_traffic_stays_off_the_wire() {
        let mut rack = mk(2, 2, 1);
        let dst = rack.server(0).dimm_ip(1);
        let u0 = rack
            .server_mut(0)
            .dimm_mut(0)
            .node
            .stack
            .udp_bind(7000)
            .unwrap();
        let u1 = rack
            .server_mut(0)
            .dimm_mut(1)
            .node
            .stack
            .udp_bind(7001)
            .unwrap();
        rack.server_mut(0)
            .dimm_mut(0)
            .node
            .stack
            .udp_send(u0, dst, 7001, Bytes::from(vec![1u8; 100]), SimTime::ZERO)
            .unwrap();
        rack.run_until(SimTime::from_ms(1));
        assert!(rack
            .server_mut(0)
            .dimm_mut(1)
            .node
            .stack
            .udp_recv(u1)
            .is_some());
        assert_eq!(rack.server(0).hdrv.stats.f3_forward.get(), 1);
        assert_eq!(rack.server(0).hdrv.stats.f4_external.get(), 0);
        assert_eq!(rack.blocks[0].ep.nic.tx_frames.get(), 0, "nothing on the wire");
    }
}

#[cfg(test)]
mod direct_tests {
    use crate::{McnConfig, McnSystem, SystemConfig};
    use bytes::Bytes;
    use mcn_sim::{ComponentExt, SimTime};

    #[test]
    fn direct_messages_bypass_the_stack_both_ways() {
        // Sec. VII future work: the shared-memory-style channel moves a
        // message with no TCP/IP segments at all.
        let mut sys = McnSystem::new(&SystemConfig::default(), 1, McnConfig::level(1));
        let host_mac = sys.hdrv.ports[0].mac;

        // Host → DIMM.
        sys.direct_send(0, Bytes::from(vec![7u8; 3000]), SimTime::ZERO);
        sys.run_until(SimTime::from_us(100));
        let (at, payload) = sys
            .dimm_mut(0)
            .direct_rx
            .pop_front()
            .expect("direct message delivered");
        assert_eq!(payload.len(), 3000);
        assert!(at > SimTime::ZERO && at < SimTime::from_us(100));

        // DIMM → host.
        let now = sys.now();
        sys.dimm_mut(0)
            .direct_send(host_mac, Bytes::from(vec![9u8; 500]), now);
        sys.run_until(sys.now() + SimTime::from_us(100));
        let (_, src, payload) = sys.direct_rx.pop().expect("reverse direct message");
        assert_eq!(src, 0);
        assert_eq!(payload.len(), 500);

        // Nothing went through TCP.
        let t = sys.host.stack.tcp_totals();
        assert_eq!(t.data_segs_out + t.acks_out, 0);
        assert_eq!(sys.host.stack.stats.frames_in.get(), 0);
    }

    #[test]
    fn direct_round_trip_beats_tcp_latency() {
        // Measure a direct ping-pong vs the ICMP ping at the same level.
        let mut sys = McnSystem::new(&SystemConfig::default(), 1, McnConfig::level(1));
        let host_mac = sys.hdrv.ports[0].mac;
        let t0 = sys.now();
        sys.direct_send(0, Bytes::from(vec![1u8; 56]), t0);
        // Wait for delivery, then bounce back.
        let mut guard = 0;
        while sys.dimm_mut(0).direct_rx.is_empty() {
            assert!(sys.step(), "idle before delivery");
            guard += 1;
            if guard >= 100_000 {
                panic!("{}", sys.stall_report("direct delivery stalled"));
            }
        }
        let now = sys.now();
        sys.dimm_mut(0)
            .direct_send(host_mac, Bytes::from(vec![2u8; 56]), now);
        while sys.direct_rx.is_empty() {
            assert!(sys.step(), "idle before reply");
            guard += 1;
            if guard >= 200_000 {
                panic!("{}", sys.stall_report("direct reply stalled"));
            }
        }
        let direct_rtt = sys.now() - t0;
        // Compare with an ICMP ping over the full stack on the same system.
        let t1 = sys.now();
        let dimm_ip = sys.dimm_ip(0);
        sys.host
            .stack
            .send_ping(dimm_ip, 3, 1, Bytes::from(vec![0u8; 56]), t1)
            .unwrap();
        while sys.host.stack.pop_ping_reply().is_none() {
            assert!(sys.step(), "idle before echo reply");
            guard += 1;
            if guard >= 400_000 {
                panic!("{}", sys.stall_report("icmp echo stalled"));
            }
        }
        let icmp_rtt = sys.now() - t1;
        assert!(
            direct_rtt < icmp_rtt,
            "bypass {direct_rtt} should beat the stack path {icmp_rtt}"
        );
    }
}
