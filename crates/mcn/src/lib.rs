//! # mcn — Memory Channel Network
//!
//! The core crate of this reproduction: the paper's contribution
//! (MICRO 2018, *Application-Transparent Near-Memory Processing
//! Architecture with Memory Channel Network*, Alian et al.), built on the
//! workspace substrates (`mcn-sim`, `mcn-dram`, `mcn-net`, `mcn-node`).
//!
//! ## What MCN is
//!
//! An **MCN DIMM** is a buffered DIMM whose buffer device contains a small
//! mobile-class processor (the *MCN processor*) with its own local memory
//! channels, plus an SRAM communication buffer exposed to both the host and
//! the MCN processor. Symmetric **MCN drivers** on the host and on each
//! DIMM present the memory channel as a virtual Ethernet link, so
//! unmodified distributed applications (MPI, Spark, iperf, ping) run across
//! host + DIMMs. This crate implements:
//!
//! * [`SramBuffer`] — the interface SRAM of Fig. 4, with `tx-start` /
//!   `tx-end` / `tx-poll` / `rx-*` control words and the two circular
//!   message rings stored in *real bytes*,
//! * [`McnDimm`] — an MCN node: 4 cores, local LPDDR channels, its own
//!   network stack and the MCN-side driver (interrupt-driven),
//! * [`HostDriver`] — the host-side driver: one virtual interface per
//!   DIMM, the polling agent (HR-timer `mcn0` or ALERT_N interrupt
//!   `mcn1`+), the packet forwarding engine F1–F4, and the memory-mapping
//!   unit whose `memcpy_to_mcn`/`memcpy_from_mcn` compensate for host
//!   channel interleaving (Fig. 6),
//! * [`McnConfig`] — the optimisation levels of Table I (`mcn0`..`mcn5`),
//! * [`SystemConfig`] — the simulated machine of Table II,
//! * [`McnSystem`] — a full MCN-enabled server (host + N DIMMs) with its
//!   deterministic event loop,
//! * [`EthernetCluster`] — the 10GbE scale-out baseline (N conventional
//!   nodes, NICs, links, a switch) every figure compares against.
//!
//! ## Quick start
//!
//! ```
//! use mcn::{McnConfig, McnSystem, SystemConfig};
//!
//! // A server with 2 MCN DIMMs at optimisation level mcn3 (9 KB MTU).
//! let sys = McnSystem::new(&SystemConfig::default(), 2, McnConfig::level(3));
//! assert_eq!(sys.dimms(), 2);
//! // Addresses: host-side interface i is 10.(i+1).0.1, its DIMM 10.(i+1).0.2.
//! assert_eq!(sys.dimm_ip(0), std::net::Ipv4Addr::new(10, 1, 0, 2));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod block;
pub mod cluster;
pub mod config;
pub mod dimm;
pub mod driver;
pub mod error;
pub mod fabric;
pub mod rack;
pub mod sram;
pub mod system;

pub use cluster::EthernetCluster;
pub use config::{McnConfig, SystemConfig};
pub use dimm::McnDimm;
pub use driver::HostDriver;
pub use error::{McnError, McnSide};
pub use fabric::{ClosConfig, Datacenter};
pub use rack::McnRack;
pub use sram::SramBuffer;

/// Re-export of the SRAM module under a bench-friendly name (the module
/// itself is public as [`sram`]).
pub use sram as sram_mod;
pub use system::McnSystem;

// Engine traits every driver of a system/rack/cluster needs in scope:
// `Component` for `advance`/`next_event`, `ComponentExt` for the shared
// `step`/`run_until`/`run_until_procs_done` drivers (and the hoisted
// `engine_stats`/`poll_accounting` accessors). The metrics registry types
// ride along so harnesses can snapshot any orchestrator without naming
// `mcn_sim` directly.
pub use mcn_sim::{
    Activity, Component, ComponentExt, Instrumented, MetricSink, MetricValue, MetricsSnapshot,
};

