//! The MCN DIMM: an MCN node and its MCN-side driver.
//!
//! An MCN DIMM couples a small mobile-class processor (4 cores), its own
//! local LPDDR channels, and the interface [`SramBuffer`] shared with the
//! host. The **MCN-side driver** implemented here is interrupt-driven
//! (paper Sec. III-A: the MCN interface raises an IRQ when a packet lands
//! in the SRAM RX buffer) and symmetric to the host-side driver:
//!
//! * **transmit** (MCN → host): the stack's outbound frame is charged
//!   protocol + driver time on core 0, copied from kernel memory (a real
//!   read job on the local channels; the SRAM write itself is on-chip) into
//!   the SRAM TX ring, and `tx-poll` is set — which the host observes by
//!   polling (`mcn0`) or via ALERT_N (`mcn1`+),
//! * **receive** (host → MCN): the interface IRQ costs interrupt time on
//!   core 0, the driver copies the RX ring into kernel memory (a write job
//!   on the local channels), then each message is charged receive-path
//!   protocol processing and delivered to the stack.
//!
//! With `mcn5` the copies move to the MCN-DMA engine and the cores only pay
//! the setup cost.

use std::collections::{HashMap, VecDeque};
use std::net::Ipv4Addr;

use mcn_dram::MemKind;
use mcn_net::tcp::TcpConfig;
use mcn_net::{EthernetFrame, MacAddr, NetConfig};
use mcn_node::mem::{Pattern, Transfer};
use mcn_node::{CostModel, JobId, Node, WaiterId};
use mcn_sim::fault::{FaultInjector, FaultKind};
use mcn_sim::metrics::{Instrumented, MetricSink};
use mcn_sim::stats::{Counter, Histogram};
use mcn_sim::SimTime;

use crate::config::{McnConfig, SystemConfig};
use crate::error::{McnError, McnSide};
use crate::sram::{Dir, SramBuffer};

/// EtherType of the experimental direct-message channel (Sec. VII future
/// work: an mTCP-like user-space path that "resembles a shared memory
/// communication channel between the host and MCN nodes"). Frames of this
/// type bypass the TCP/IP stack entirely on both ends.
pub const DIRECT_ETHERTYPE: u16 = 0x88B5; // IEEE 802 local experimental

/// Waiter id for MCN-side driver jobs on the DIMM's local memory system.
pub const DIMM_DRV_WAITER: WaiterId = 1 << 42;

/// Core the MCN-side driver runs on (IRQs, copies, receive processing).
const DRV_CORE: usize = 0;

/// Core transmit-path protocol work runs on: `tcp_sendmsg` and the direct
/// xmit path execute on the *sending application's* core, which placement
/// puts on core 1 (core 0 is reserved for the driver when possible).
const TX_CORE: usize = 1;

/// Signals the DIMM reports to the system layer after an
/// [`advance`](McnDimm::advance).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DimmSignal {
    /// `tx-poll` went from clear to set at this time (drives ALERT_N).
    TxPollRaised(SimTime),
    /// The RX ring gained free space at this time (host retries blocked
    /// transmissions).
    RxSpaceFreed(SimTime),
}

#[derive(Debug)]
enum DrvOp {
    /// Reading the outbound packet out of local kernel memory.
    TxCopy { frame: EthernetFrame, started: SimTime },
    /// Writing the received ring contents into local kernel memory.
    RxCopy { started: SimTime },
}

#[derive(Debug)]
enum Staged {
    /// Start the RX copy (after the IRQ entry cost).
    StartRxCopy,
    /// Deliver a received, fully-charged frame to the stack.
    Deliver(EthernetFrame),
    /// Try to start the next queued transmit.
    TryTx,
}

/// Driver statistics and latency components.
#[derive(Debug, Default)]
pub struct DimmDriverStats {
    /// Frames sent into the SRAM TX ring.
    pub tx_frames: Counter,
    /// Frames delivered from the SRAM RX ring to the stack.
    pub rx_frames: Counter,
    /// Interrupts taken from the MCN interface.
    pub irqs: Counter,
    /// Transmissions deferred for lack of TX-ring space (NETDEV_TX_BUSY).
    pub tx_busy_events: Counter,
    /// Driver transmit time per frame (charge start → data in SRAM).
    pub driver_tx: Histogram,
    /// Driver receive time per frame (IRQ → delivered to stack).
    pub driver_rx: Histogram,
    /// Injected SRAM bit flips on this DIMM's TX push path (ECC escapes).
    pub ecc_escapes: Counter,
    /// Injected frame drops on this DIMM's TX push path.
    pub frames_dropped: Counter,
    /// Undecodable messages popped from the RX ring and dropped.
    pub malformed: Counter,
    /// Frames dropped on an unexpectedly full TX ring.
    pub ring_full_drops: Counter,
    /// Memory completions for jobs the driver no longer tracks.
    pub unknown_jobs: Counter,
    /// Hard crashes ([`McnDimm::crash`]) this DIMM has taken.
    pub crashes: Counter,
    /// Power-ons ([`McnDimm::power_on`]) after a crash.
    pub reboots: Counter,
}

/// One MCN DIMM: node + SRAM + MCN-side driver. See the module docs.
#[derive(Debug)]
pub struct McnDimm {
    /// The MCN node (cores, local channels, stack, processes).
    pub node: Node,
    /// The interface SRAM, shared with the host (the host side accesses it
    /// through the system layer, with timing from the host channel model).
    pub sram: SramBuffer,
    index: usize,
    channel: u32,
    mac: MacAddr,
    ip: Ipv4Addr,
    cfg: McnConfig,
    dma_setup: SimTime,

    tx_queue: VecDeque<EthernetFrame>,
    tx_busy: bool,
    rx_busy: bool,
    pending: HashMap<u64, DrvOp>,
    staged: Vec<(SimTime, Staged)>,
    signals: Vec<DimmSignal>,
    scratch: u64,
    /// Received direct messages (Sec. VII bypass path): (arrival, payload).
    pub direct_rx: VecDeque<(SimTime, bytes::Bytes)>,
    /// (Retained for layout stability; flow steering is hash-based.)
    rx_steer: usize,
    /// Whether the device is powered. A crashed DIMM is frozen: it takes no
    /// interrupts, schedules nothing, and reports no deadlines until
    /// [`power_on`](Self::power_on).
    alive: bool,
    /// Fault injector for this DIMM's SRAM push path (inert by default).
    faults: FaultInjector,
    /// Driver statistics.
    pub stats: DimmDriverStats,
}

impl McnDimm {
    /// Builds DIMM `index`, attached to host channel `channel`, peering
    /// with the host-side interface at `host_ip`/`host_mac`.
    pub fn new(
        index: usize,
        channel: u32,
        sys: &SystemConfig,
        cfg: McnConfig,
        host_ip: Ipv4Addr,
        host_mac: MacAddr,
    ) -> Self {
        Self::new_in_server(0, index, channel, sys, cfg, host_ip, host_mac)
    }

    /// [`new`](Self::new) for a DIMM inside server `server` of a rack
    /// (shifts the address plan so servers don't collide).
    pub fn new_in_server(
        server: usize,
        index: usize,
        channel: u32,
        sys: &SystemConfig,
        cfg: McnConfig,
        host_ip: Ipv4Addr,
        host_mac: MacAddr,
    ) -> Self {
        let mut tcp = TcpConfig::default();
        let mtu = cfg.mtu();
        tcp.mss = mtu - mcn_net::IPV4_HEADER_BYTES - mcn_net::TCP_HEADER_BYTES;
        let mut node = Node::new(
            sys.mcn_cores,
            CostModel::mcn(),
            &sys.mcn_dram,
            sys.mcn_channels,
            tcp,
        );
        let mac = Self::mac_for(server, index);
        let ip = Self::ip_for(server, index);
        let ifidx = node.stack.add_interface(NetConfig {
            mac,
            ip,
            mtu,
            tx_checksum: !cfg.checksum_bypass,
            rx_checksum: !cfg.checksum_bypass,
            tso: cfg.tso,
        });
        debug_assert_eq!(ifidx, 0);
        // Paper Sec. III-B: the MCN-side interface uses subnet mask 0.0.0.0
        // so every outgoing packet leaves through it; the route is on-link,
        // so frames carry the *destination's* MAC (the host's for host
        // traffic, another MCN node's for mcn-mcn traffic — the host
        // forwarding engine dispatches on it, F1/F3) and unknown
        // destinations fall back to the "external" MAC (F4).
        node.stack.add_route(
            Ipv4Addr::new(0, 0, 0, 0),
            Ipv4Addr::new(0, 0, 0, 0),
            0,
            None,
        );
        node.stack.add_neighbor(host_ip, host_mac);
        node.stack.set_fallback_neighbor(MacAddr::from_id(0xFFFE));
        McnDimm {
            node,
            sram: SramBuffer::new(sys.sram_ring_bytes),
            index,
            channel,
            mac,
            ip,
            cfg,
            dma_setup: sys.dma_setup,
            tx_queue: VecDeque::new(),
            tx_busy: false,
            rx_busy: false,
            pending: HashMap::new(),
            staged: Vec::new(),
            signals: Vec::new(),
            scratch: 0,
            direct_rx: VecDeque::new(),
            rx_steer: 0,
            alive: true,
            faults: FaultInjector::none(),
            stats: DimmDriverStats::default(),
        }
    }

    /// Installs the fault injector covering this DIMM's SRAM TX push path
    /// (`Drop` loses the frame, `BitFlip` corrupts one bit of it).
    pub fn set_fault_injector(&mut self, faults: FaultInjector) {
        self.faults = faults;
    }

    /// The IP address scheme of the paper's network organisation: DIMM `i`
    /// is `10.(i+1).0.2` (its host-side peer is `10.(i+1).0.1`).
    pub fn ip_of(index: usize) -> Ipv4Addr {
        Self::ip_for(0, index)
    }

    /// Rack addressing: server `s` uses second-octet block `s*24`
    /// (up to 10 servers of up to 23 DIMMs without collisions).
    pub fn ip_for(server: usize, index: usize) -> Ipv4Addr {
        Ipv4Addr::new(10, (server * 24 + index + 1) as u8, 0, 2)
    }

    /// MAC plan matching [`ip_for`](Self::ip_for).
    pub fn mac_for(server: usize, index: usize) -> MacAddr {
        MacAddr::from_id(0x0200 + (server as u16) * 0x40 + index as u16)
    }

    /// This DIMM's interface MAC.
    pub fn mac(&self) -> MacAddr {
        self.mac
    }

    /// This DIMM's IP.
    pub fn ip(&self) -> Ipv4Addr {
        self.ip
    }

    /// Index of this DIMM in the system.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Host memory channel this DIMM is installed on.
    pub fn channel(&self) -> u32 {
        self.channel
    }

    fn scratch_addr(&mut self, bytes: u64) -> u64 {
        const BASE: u64 = 1 << 30;
        const SPAN: u64 = 64 << 20;
        let lines = bytes.div_ceil(64);
        if self.scratch + lines * 64 > SPAN {
            self.scratch = 0;
        }
        let a = BASE + self.scratch;
        self.scratch += lines * 64;
        a
    }

    /// Debug dump: (tx_busy, rx_busy, tx_queue length, sram tx used, sram
    /// rx used, staged items, pending jobs).
    pub fn debug_state(&self) -> (bool, bool, usize, usize, usize, usize, usize) {
        (
            self.tx_busy,
            self.rx_busy,
            self.tx_queue.len(),
            self.sram.used(crate::sram::Dir::Tx),
            self.sram.used(crate::sram::Dir::Rx),
            self.staged.len(),
            self.pending.len(),
        )
    }

    /// Whether the device is powered (see [`crash`](Self::crash)).
    pub fn alive(&self) -> bool {
        self.alive
    }

    /// Hard power failure. Device state is lost: the interface SRAM resets
    /// to all-zeroes (indices, poll flags, ring data), queued and in-flight
    /// driver transfers vanish, and the stack's link goes down (queued
    /// egress frames are lost). Software state — processes, DRAM contents,
    /// TCP connections — survives, a deliberate modeling simplification:
    /// this models a device/driver reset, and the transport's retransmission
    /// is what makes traffic byte-complete after the heal.
    pub fn crash(&mut self, _now: SimTime) {
        if !self.alive {
            return;
        }
        self.alive = false;
        self.sram.reset();
        self.tx_queue.clear();
        self.tx_busy = false;
        self.rx_busy = false;
        self.pending.clear();
        self.staged.clear();
        self.signals.clear();
        self.node.stack.link_down(0);
        self.stats.crashes.inc();
    }

    /// Powers the device back on after a [`crash`](Self::crash). The SRAM is
    /// already zeroed; the link stays down until the host-side re-init
    /// handshake completes and calls [`link_restored`](Self::link_restored).
    pub fn power_on(&mut self, _now: SimTime) {
        if self.alive {
            return;
        }
        self.alive = true;
        self.stats.reboots.inc();
    }

    /// The host's re-init handshake finished: bring the stack's link up so
    /// retransmissions can flow again.
    pub fn link_restored(&mut self, now: SimTime) {
        self.node.stack.link_up(0);
        self.node.service_stack(now);
    }

    /// The MCN interface interrupt: the host set `rx-poll` at `now`.
    pub fn on_rx_poll(&mut self, now: SimTime) {
        if !self.alive {
            return;
        }
        self.rx_kick(now, true);
    }

    /// Starts (or continues) draining the RX ring. `from_irq` distinguishes
    /// a fresh interrupt from a NAPI-style poll continuation: while the
    /// driver is actively draining, further arrivals cost only the softirq
    /// re-schedule, not a full interrupt (interrupt mitigation, Sec. II-B).
    fn rx_kick(&mut self, now: SimTime, from_irq: bool) {
        if self.rx_busy || self.sram.used(Dir::Rx) == 0 {
            return; // already draining, or spurious
        }
        self.rx_busy = true;
        let cost = if from_irq {
            self.stats.irqs.inc();
            self.node.cost.irq() + self.node.cost.softirq()
        } else {
            self.node.cost.softirq()
        };
        let (_, end) = self.node.cpus.run_on(DRV_CORE, now, cost);
        self.staged.push((end, Staged::StartRxCopy));
    }

    /// The host drained the SRAM TX ring: retry queued transmissions.
    pub fn kick_tx(&mut self, now: SimTime) {
        if !self.alive {
            return;
        }
        self.staged.push((now, Staged::TryTx));
    }

    /// Sends a direct (stack-bypassing) message to the host: only driver
    /// transmit costs apply — no TCP/IP processing, no checksums.
    pub fn direct_send(&mut self, host_mac: MacAddr, payload: bytes::Bytes, now: SimTime) {
        let frame = EthernetFrame {
            dst: host_mac,
            src: self.mac,
            ethertype: mcn_net::EtherType::Other(DIRECT_ETHERTYPE),
            payload,
            fcs_ok: true,
        };
        let (_, end) = self
            .node
            .cpus
            .run_on(DRV_CORE, now, self.node.cost.driver_tx());
        self.tx_queue.push_back(frame);
        self.staged.push((end, Staged::TryTx));
    }

    /// Earliest internal deadline (driver staging + node). A crashed DIMM
    /// reports none: it is frozen until powered back on.
    pub fn next_event(&self) -> Option<SimTime> {
        if !self.alive {
            return None;
        }
        let staged = self.staged.iter().map(|(t, _)| *t).min();
        [staged, self.node.next_event()].into_iter().flatten().min()
    }

    /// Advances the DIMM to `now`; returns signals for the system layer.
    pub fn advance(&mut self, now: SimTime) -> Vec<DimmSignal> {
        if !self.alive {
            self.signals.clear();
            return Vec::new();
        }
        for _ in 0..10_000 {
            let mut changed = false;
            // Local memory-job completions → driver ops. Errors are
            // counted and the simulation keeps running: a fault injector
            // can legitimately produce both conditions.
            for (waiter, job) in self.node.advance_mem(now) {
                debug_assert_eq!(waiter, DIMM_DRV_WAITER);
                match self.on_job_done(job, now) {
                    Ok(()) => {}
                    Err(McnError::UnknownJob { .. }) => self.stats.unknown_jobs.inc(),
                    Err(McnError::RingFull { .. }) => self.stats.ring_full_drops.inc(),
                }
                changed = true;
            }
            // Due staged driver work.
            let mut rest = Vec::new();
            for (t, item) in std::mem::take(&mut self.staged) {
                if t <= now {
                    self.apply(item, t.max(now));
                    changed = true;
                } else {
                    rest.push((t, item));
                }
            }
            self.staged.extend(rest);
            // Stack timers, process runs, and outbound frames.
            self.node.service_stack(now);
            if self.node.run_procs(now) {
                changed = true;
            }
            if self.drain_stack(now) {
                changed = true;
            }
            if !changed {
                break;
            }
        }
        std::mem::take(&mut self.signals)
    }

    /// Pulls outbound frames from the stack into the driver; returns true
    /// if any were taken.
    fn drain_stack(&mut self, now: SimTime) -> bool {
        let mut any = false;
        let tx_core = TX_CORE.min(self.node.cpus.cores() - 1);
        while let Some(frame) = self.node.stack.poll_output(0) {
            any = true;
            // Data segments are charged on the sending application's core;
            // pure ACKs are generated in softirq context on the driver core.
            let sw_csum = !self.cfg.checksum_bypass;
            let proto = mcn_node::nic::tx_protocol_cost(&self.node.cost, &frame, sw_csum);
            let work = proto + self.node.cost.driver_tx();
            let core = if mcn_node::nic::is_pure_ack(&frame) {
                DRV_CORE
            } else {
                tx_core
            };
            let (_, end) = self.node.cpus.run_on(core, now, work);
            self.tx_queue.push_back(frame);
            self.staged.push((end, Staged::TryTx));
        }
        any
    }

    fn apply(&mut self, item: Staged, now: SimTime) {
        match item {
            Staged::TryTx => self.try_tx(now),
            Staged::StartRxCopy => {
                let used = self.sram.used(Dir::Rx) as u64;
                if used == 0 {
                    self.rx_busy = false;
                    return;
                }
                let dst = self.scratch_addr(used);
                let start = if self.cfg.dma {
                    let (_, end) = self.node.cpus.run_on(DRV_CORE, now, self.dma_setup);
                    end
                } else {
                    let (_, end) = self.node.cpus.run_on(
                        DRV_CORE,
                        now,
                        self.node.cost.small_copy(used as usize),
                    );
                    end
                };
                let job = self.node.mem.start(
                    Transfer::Single {
                        pat: Pattern::dram(dst),
                        kind: MemKind::Write,
                        bytes: used,
                    },
                    DIMM_DRV_WAITER,
                    start,
                );
                self.pending
                    .insert(job.0, DrvOp::RxCopy { started: now });
            }
            Staged::Deliver(frame) => {
                self.stats.rx_frames.inc();
                if frame.ethertype == mcn_net::EtherType::Other(DIRECT_ETHERTYPE) {
                    // Bypass path: straight to the user-space queue.
                    self.direct_rx.push_back((now, frame.payload));
                } else {
                    self.node.stack.on_frame(0, frame, now);
                    self.node.drain_stack_events();
                }
            }
        }
    }

    fn try_tx(&mut self, now: SimTime) {
        if self.tx_busy {
            return;
        }
        let Some(frame) = self.tx_queue.front() else {
            return;
        };
        let bytes = frame.encode().len();
        if self.sram.free_space(Dir::Tx) < bytes + 4 {
            self.stats.tx_busy_events.inc();
            return; // NETDEV_TX_BUSY: kick_tx retries when the host drains
        }
        let frame = self.tx_queue.pop_front().expect("checked");
        self.tx_busy = true;
        // DMA: the core only programs the engine. CPU copy: charge the
        // per-byte issue work up front (the job models the channel time).
        let work = if self.cfg.dma {
            self.dma_setup
        } else {
            self.node.cost.small_copy(bytes + 4)
        };
        let (_, start) = self.node.cpus.run_on(DRV_CORE, now, work);
        let src = self.scratch_addr(bytes as u64);
        let job = self.node.mem.start(
            Transfer::Single {
                pat: Pattern::dram(src),
                kind: MemKind::Read,
                bytes: bytes as u64,
            },
            DIMM_DRV_WAITER,
            start.max(now),
        );
        self.pending
            .insert(job.0, DrvOp::TxCopy { frame, started: now });
    }

    fn on_job_done(&mut self, job: JobId, now: SimTime) -> Result<(), McnError> {
        match self.pending.remove(&job.0) {
            Some(DrvOp::TxCopy { frame, started }) => {
                // The copy into the interface SRAM is the injection point
                // for memory-channel faults on this side: a dropped frame
                // (transport recovers) or an ECC-escaped bit flip.
                self.tx_busy = false;
                self.staged.push((now, Staged::TryTx));
                if self.faults.fires(FaultKind::Drop, now) {
                    self.stats.frames_dropped.inc();
                    return Ok(());
                }
                let mut encoded = frame.encode();
                if self.faults.fires(FaultKind::BitFlip, now) {
                    self.faults.flip_bit(&mut encoded);
                    self.stats.ecc_escapes.inc();
                }
                let was_empty = !self.sram.poll_flag(Dir::Tx);
                if self.sram.push(Dir::Tx, &encoded).is_err() {
                    return Err(McnError::RingFull {
                        side: McnSide::Dimm(self.index),
                        len: encoded.len(),
                    });
                }
                self.stats.tx_frames.inc();
                self.stats.driver_tx.record(now.saturating_sub(started));
                if was_empty {
                    self.signals.push(DimmSignal::TxPollRaised(now));
                }
            }
            Some(DrvOp::RxCopy { started }) => {
                let msgs = self.sram.pop_all(Dir::Rx);
                self.signals.push(DimmSignal::RxSpaceFreed(now));
                let sw_csum = !self.cfg.checksum_bypass;
                let cores = self.node.cpus.cores();
                for msg in msgs {
                    match EthernetFrame::decode(&msg) {
                        Ok(frame) => {
                            // Driver ring work on the IRQ core; protocol
                            // processing steered across the other cores
                            // (RPS), like the host side.
                            let (_, handoff) = self
                                .node
                                .cpus
                                .run_on(DRV_CORE, now, self.node.cost.driver_rx());
                            let proto = mcn_node::nic::rx_protocol_cost(
                                &self.node.cost,
                                &frame,
                                sw_csum,
                            );
                            // Per-flow steering (hash of the source MAC):
                            // frames of one flow stay in order on one core,
                            // different senders spread across cores.
                            let flow = frame.src.0.iter().fold(0usize, |a, &b| {
                                a.wrapping_mul(31).wrapping_add(b as usize)
                            });
                            let proto_core = if cores > 1 {
                                1 + flow % (cores - 1)
                            } else {
                                0
                            };
                            let _ = self.rx_steer;
                            let (_, end) = self.node.cpus.run_on(proto_core, handoff, proto);
                            self.stats.driver_rx.record(end.saturating_sub(started));
                            self.staged.push((end, Staged::Deliver(frame)));
                        }
                        Err(_) => {
                            // Undecodable ring message (possible under
                            // injected corruption): count and drop.
                            self.stats.malformed.inc();
                        }
                    }
                }
                self.rx_busy = false;
                // More data may have landed while we were copying: keep
                // polling without a new interrupt (NAPI).
                if self.sram.used(Dir::Rx) > 0 {
                    self.rx_kick(now, false);
                }
            }
            None => {
                return Err(McnError::UnknownJob {
                    job,
                    side: McnSide::Dimm(self.index),
                })
            }
        }
        Ok(())
    }
}

impl mcn_sim::Wakeup for McnDimm {
    /// Earliest staged driver deadline or node-level event.
    fn next_wakeup(&self) -> Option<SimTime> {
        self.next_event()
    }
}

impl Instrumented for DimmDriverStats {
    fn metrics(&self, out: &mut MetricSink) {
        out.counter("tx_frames", self.tx_frames.get());
        out.counter("rx_frames", self.rx_frames.get());
        out.counter("irqs", self.irqs.get());
        out.counter("tx_busy_events", self.tx_busy_events.get());
        out.histogram("driver_tx", &self.driver_tx);
        out.histogram("driver_rx", &self.driver_rx);
        out.counter("ecc_escapes", self.ecc_escapes.get());
        out.counter("frames_dropped", self.frames_dropped.get());
        out.counter("malformed", self.malformed.get());
        out.counter("ring_full_drops", self.ring_full_drops.get());
        out.counter("unknown_jobs", self.unknown_jobs.get());
        out.counter("crashes", self.crashes.get());
        out.counter("reboots", self.reboots.get());
    }
}

impl Instrumented for McnDimm {
    /// The node's tree (cpu/mem/stack) at this scope plus the MCN-side
    /// driver under `driver.*`.
    fn metrics(&self, out: &mut MetricSink) {
        self.node.metrics(out);
        out.absorb("driver", &self.stats);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn mk() -> McnDimm {
        McnDimm::new(
            0,
            0,
            &SystemConfig::default(),
            McnConfig::level(0),
            Ipv4Addr::new(10, 1, 0, 1),
            MacAddr::from_id(0x0100),
        )
    }

    fn drive(d: &mut McnDimm, mut now: SimTime, horizon: SimTime) -> (Vec<DimmSignal>, SimTime) {
        let mut signals = Vec::new();
        loop {
            signals.extend(d.advance(now));
            match d.next_event() {
                Some(t) if t <= horizon => now = now.max(t),
                _ => break,
            }
        }
        (signals, now)
    }

    fn frame_to(dst: MacAddr, src: MacAddr, len: usize) -> EthernetFrame {
        // A syntactically valid IPv4/UDP frame so protocol costing works.
        let pkt = mcn_net::Ipv4Packet::new(
            Ipv4Addr::new(10, 1, 0, 1),
            Ipv4Addr::new(10, 1, 0, 2),
            mcn_net::IpProto::Udp,
            1,
            Bytes::from(
                mcn_net::UdpDatagram::new(9, 9, Bytes::from(vec![7u8; len])).encode(
                    Ipv4Addr::new(10, 1, 0, 1),
                    Ipv4Addr::new(10, 1, 0, 2),
                    true,
                ),
            ),
        );
        EthernetFrame::ipv4(dst, src, Bytes::from(pkt.encode()))
    }

    #[test]
    fn rx_path_delivers_to_stack() {
        let mut d = mk();
        let sock = d.node.stack.udp_bind(9).unwrap();
        // "Host" writes a message into the RX ring and raises the IRQ.
        let f = frame_to(d.mac(), MacAddr::from_id(0x0100), 200);
        d.sram.push(Dir::Rx, &f.encode()).unwrap();
        d.on_rx_poll(SimTime::ZERO);
        let (signals, end) = drive(&mut d, SimTime::ZERO, SimTime::from_ms(1));
        assert!(signals.contains(&DimmSignal::RxSpaceFreed(
            signals
                .iter()
                .find_map(|s| match s {
                    DimmSignal::RxSpaceFreed(t) => Some(*t),
                    _ => None,
                })
                .unwrap()
        )));
        assert_eq!(d.stats.rx_frames.get(), 1);
        assert_eq!(d.stats.irqs.get(), 1);
        let (_, _, data) = d.node.stack.udp_recv(sock).expect("datagram delivered");
        assert_eq!(data.len(), 200);
        // Takes real time: IRQ + copy + protocol.
        assert!(end > SimTime::from_us(1), "rx path took {end}");
    }

    #[test]
    fn tx_path_lands_in_sram_and_raises_poll() {
        let mut d = mk();
        let sock = d.node.stack.udp_bind(1000).unwrap();
        d.node
            .stack
            .udp_send(
                sock,
                Ipv4Addr::new(10, 9, 0, 2), // another MCN node: default route
                7,
                Bytes::from(vec![1u8; 300]),
                SimTime::ZERO,
            )
            .unwrap();
        let (signals, _) = drive(&mut d, SimTime::ZERO, SimTime::from_ms(1));
        assert!(matches!(signals[..], [DimmSignal::TxPollRaised(_)]));
        assert!(d.sram.poll_flag(Dir::Tx));
        let msg = d.sram.pop(Dir::Tx).expect("message in TX ring");
        let f = EthernetFrame::decode(&msg).unwrap();
        // 10.9.0.2 matches no neighbor: the frame carries the "external"
        // fallback MAC, which the host forwarding engine classifies as F4.
        assert_eq!(f.dst, MacAddr::from_id(0xFFFE));
        assert_eq!(d.stats.tx_frames.get(), 1);
    }

    #[test]
    fn tx_blocks_on_full_ring_and_recovers_on_kick() {
        let sys_cfg = SystemConfig {
            sram_ring_bytes: 2048, // tiny ring
            ..SystemConfig::default()
        };
        let mut d = McnDimm::new(
            0,
            0,
            &sys_cfg,
            McnConfig::level(0),
            Ipv4Addr::new(10, 1, 0, 1),
            MacAddr::from_id(0x0100),
        );
        let sock = d.node.stack.udp_bind(1000).unwrap();
        for _ in 0..4 {
            d.node
                .stack
                .udp_send(
                    sock,
                    Ipv4Addr::new(10, 9, 0, 2),
                    7,
                    Bytes::from(vec![2u8; 700]),
                    SimTime::ZERO,
                )
                .unwrap();
        }
        let (_, t) = drive(&mut d, SimTime::ZERO, SimTime::from_ms(1));
        // Ring holds at most 2 x 700B messages.
        assert!(d.stats.tx_busy_events.get() > 0, "should hit NETDEV_TX_BUSY");
        let before = d.stats.tx_frames.get();
        assert!(before < 4);
        // Host drains, then kicks.
        d.sram.pop_all(Dir::Tx);
        d.kick_tx(t);
        drive(&mut d, t, t + SimTime::from_ms(1));
        assert!(d.stats.tx_frames.get() > before);
    }

    #[test]
    fn dma_level_keeps_cores_freer() {
        let run = |cfg: McnConfig| -> SimTime {
            let mut d = McnDimm::new(
                0,
                0,
                &SystemConfig::default(),
                cfg,
                Ipv4Addr::new(10, 1, 0, 1),
                MacAddr::from_id(0x0100),
            );
            // 64 inbound frames.
            for _ in 0..64 {
                let f = frame_to(d.mac(), MacAddr::from_id(0x0100), 1400);
                d.sram.push(Dir::Rx, &f.encode()).unwrap();
            }
            d.on_rx_poll(SimTime::ZERO);
            drive(&mut d, SimTime::ZERO, SimTime::from_ms(10));
            d.node.cpus.total_busy()
        };
        let no_dma = run(McnConfig::level(2));
        let dma = run(McnConfig::level(5));
        assert!(
            dma < no_dma,
            "DMA should reduce CPU busy time: {dma} vs {no_dma}"
        );
    }

    #[test]
    fn crash_wipes_rings_and_freezes_until_power_on() {
        let mut d = mk();
        let sock = d.node.stack.udp_bind(1000).unwrap();
        // Leave a frame sitting in the TX ring and more queued behind it.
        for _ in 0..2 {
            d.node
                .stack
                .udp_send(
                    sock,
                    Ipv4Addr::new(10, 9, 0, 2),
                    7,
                    Bytes::from(vec![3u8; 400]),
                    SimTime::ZERO,
                )
                .unwrap();
        }
        let (_, t) = drive(&mut d, SimTime::ZERO, SimTime::from_ms(1));
        assert!(d.sram.used(Dir::Tx) > 0);

        d.crash(t);
        assert!(!d.alive());
        assert_eq!(d.stats.crashes.get(), 1);
        // SRAM fully reset: indices, poll flags and data all zero.
        assert_eq!(d.sram.used(Dir::Tx), 0);
        assert_eq!(d.sram.used(Dir::Rx), 0);
        assert!(!d.sram.poll_flag(Dir::Tx));
        assert!(!d.sram.poll_flag(Dir::Rx));
        // Driver state gone, and the DIMM is frozen.
        let (tx_busy, rx_busy, q, _, _, staged, pending) = d.debug_state();
        assert!(!tx_busy && !rx_busy);
        assert_eq!((q, staged, pending), (0, 0, 0));
        assert_eq!(d.next_event(), None);
        // Interrupts while dead are ignored.
        d.on_rx_poll(t);
        assert_eq!(d.next_event(), None);

        d.power_on(t + SimTime::from_ms(1));
        d.link_restored(t + SimTime::from_ms(1));
        assert!(d.alive());
        assert_eq!(d.stats.reboots.get(), 1);
        // The reborn device can transmit again.
        d.node
            .stack
            .udp_send(
                sock,
                Ipv4Addr::new(10, 9, 0, 2),
                7,
                Bytes::from(vec![4u8; 100]),
                t + SimTime::from_ms(1),
            )
            .unwrap();
        let (signals, _) = drive(&mut d, t + SimTime::from_ms(1), t + SimTime::from_ms(2));
        assert!(signals.iter().any(|s| matches!(s, DimmSignal::TxPollRaised(_))));
    }

    #[test]
    fn ip_scheme_matches_paper_layout() {
        assert_eq!(McnDimm::ip_of(0), Ipv4Addr::new(10, 1, 0, 2));
        assert_eq!(McnDimm::ip_of(7), Ipv4Addr::new(10, 8, 0, 2));
        let d = mk();
        assert_eq!(d.ip(), Ipv4Addr::new(10, 1, 0, 2));
        assert_eq!(d.mac(), MacAddr::from_id(0x0200));
    }
}
