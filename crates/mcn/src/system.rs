//! The MCN-enabled server: host + MCN DIMMs + the host-side driver logic.
//!
//! This is where the paper's Sec. III-B/IV flows run end-to-end:
//!
//! * **transmit** (host→DIMM, steps T1–T3): protocol processing charged on
//!   the sending port's core, driver work, then `memcpy_to_mcn` — a real
//!   copy job whose destination pattern is strided by `64 × channels`
//!   (Fig. 6) so it lands entirely on the DIMM's channel, contending with
//!   every other use of that channel. At completion the frame lands in
//!   the DIMM's SRAM RX ring and the MCN interface interrupt fires.
//! * **polling agent** (mcn0): an HR timer per memory channel fires every
//!   `poll_interval`, pays the timer cost, and issues one uncached line
//!   read per DIMM to check `tx-poll` (steps R1–R5 follow on a hit).
//! * **ALERT_N** (mcn1+): a DIMM raising `tx-poll` interrupts the host
//!   after `alert_latency`; only then does the driver poll that channel.
//! * **receive** (R1–R5) and the **packet forwarding engine** (F1–F4):
//!   `memcpy_from_mcn` drains the TX ring, then each message is classified
//!   by destination MAC — up the host stack (F1), copied into another
//!   DIMM's RX ring (F3), both plus replication (F2), or counted as
//!   external (F4; the single-server system has no conventional NIC).
//! * **MCN-DMA** (mcn5): the same copy jobs run, but the cores pay only
//!   the engine setup cost instead of being blocked for the duration.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use mcn_dram::Target;
use mcn_net::tcp::TcpConfig;
use mcn_net::{EthernetFrame, MacAddr, NetConfig};
use mcn_node::mem::{Pattern, Transfer};
use mcn_node::nic::{rx_protocol_cost, tx_protocol_cost};
use mcn_node::{CostModel, JobId, Node, ProcId, Process};
use mcn_sim::fault::{FaultInjector, FaultKind, FaultPlan};
use mcn_sim::metrics::{Instrumented, MetricSink};
use mcn_sim::{
    Activity, Component, Engine, EngineStats, EventQueue, OutageKind, OutagePlan, SimTime,
    StallReport, Wakeup,
};

use crate::config::{McnConfig, SystemConfig};
use crate::dimm::{DimmSignal, McnDimm};
use crate::driver::{
    classify, sram_window, ForwardClass, HostDriver, HostOp, Port, PortLink, HOST_DRV_WAITER,
};
use crate::error::{McnError, McnSide};
use crate::sram::Dir;

/// Watchdog retry budget before a stalled MCN-DMA transfer degrades to the
/// CPU-copy path (per transfer, not globally).
const DMA_MAX_ATTEMPTS: u32 = 2;

/// The fallback poller covers dropped ALERT_N edges at a coarse interval:
/// frequent enough to bound the hang, rare enough not to recreate `mcn0`.
const FALLBACK_POLL_MULT: u64 = 16;

/// Engine component id of the host node; DIMM `d` is `HOST_ID + 1 + d`.
const HOST_ID: usize = 0;

/// Engine component id of DIMM `d`.
const fn dimm_id(d: usize) -> usize {
    HOST_ID + 1 + d
}

#[derive(Debug)]
enum Effect {
    /// Frame finished host TX protocol processing; hand to the port driver.
    PortXmit { port: usize, frame: EthernetFrame },
    /// Retry the head of a port's transmit queue.
    TryPortTx { port: usize },
    /// Driver work done; start the `memcpy_to_mcn` job.
    StartTxCopy { port: usize, frame: EthernetFrame },
    /// HR-timer polling round on a channel (mcn0).
    PollFire { channel: u32 },
    /// ALERT_N delivered to the host for a channel (mcn1+).
    HostAlert { channel: u32 },
    /// Begin draining a DIMM's TX ring.
    StartHostRx { port: usize },
    /// Deliver a fully-charged frame to the host stack.
    HostDeliver { ifidx: usize, frame: EthernetFrame },
    /// The MCN interface IRQ on a DIMM (rx-poll set).
    DimmIrq { dimm: usize },
    /// Tell a DIMM its TX ring was drained.
    DimmKick { dimm: usize },
    /// Watchdog deadline for a possibly-stalled MCN-DMA transfer.
    DmaWatchdog { key: u64 },
    /// Coarse safety-net polling round; armed only when ALERT_N faults are
    /// active, so fault-free interrupt-mode runs never poll.
    FallbackPoll { channel: u32 },
    /// Hard-crash DIMM `dimm` (scheduled outage or explicit call).
    Crash { dimm: usize },
    /// Power DIMM `dimm` back on and start the re-init handshake.
    PowerOn { dimm: usize },
    /// One step of the host↔DIMM re-init handshake for `dimm`'s port.
    Reinit { dimm: usize },
}

/// A DMA transfer the watchdog is holding because its descriptor stalled.
#[derive(Debug)]
enum StalledOp {
    /// A host→DIMM `memcpy_to_mcn` that never completed.
    Tx {
        port: usize,
        frame: EthernetFrame,
        attempt: u32,
    },
    /// A DIMM→host `memcpy_from_mcn` that never completed.
    Rx { port: usize, attempt: u32 },
}

/// A full MCN-enabled server; see the module docs.
///
/// Construct with [`McnSystem::new`], attach application processes with
/// [`spawn_host`](Self::spawn_host) / [`spawn_dimm`](Self::spawn_dimm),
/// then drive with [`run_until`](mcn_sim::ComponentExt::run_until) or
/// [`run_until_procs_done`](mcn_sim::ComponentExt::run_until_procs_done).
#[derive(Debug)]
pub struct McnSystem {
    sys: SystemConfig,
    cfg: McnConfig,
    now: SimTime,
    server_id: usize,
    rack_id: usize,
    /// The host node (public for instrumentation in harnesses/tests).
    pub host: Node,
    dimms: Vec<McnDimm>,
    /// Host-side driver state (public for harness statistics access).
    pub hdrv: HostDriver,
    effects: EventQueue<Effect>,
    scratch: u64,
    /// Interface index of the conventional NIC (rack servers only).
    nic_ifidx: Option<usize>,
    /// Host memory-job completions owned by devices outside this system
    /// (the rack's NIC DMA); drained by the orchestrator.
    pub foreign_jobs: Vec<(mcn_node::WaiterId, JobId)>,
    /// Received direct (stack-bypassing) messages on the host side:
    /// (arrival time, source DIMM, payload). Sec. VII future work.
    pub direct_rx: Vec<(SimTime, usize, bytes::Bytes)>,
    /// Frames the forwarding engine classified F4 (external): destined for
    /// the conventional NIC. A rack orchestrator drains these; a standalone
    /// server counts them in `hdrv.stats.f4_external` and drops them here.
    pub external_out: Vec<EthernetFrame>,
    /// ALERT_N edge faults (drop/delay).
    alert_faults: FaultInjector,
    /// MCN-DMA descriptor faults (stall).
    dma_faults: FaultInjector,
    /// Host-side SRAM push faults per DIMM (drop/bit-flip into the RX ring).
    sram_faults: Vec<FaultInjector>,
    /// Stalled DMA transfers awaiting their watchdog deadline.
    stalled: HashMap<u64, StalledOp>,
    stall_seq: u64,
    /// Wakeup index + dirty-list bookkeeping for the event loop.
    engine: Engine,
    /// Recycled id buffer for the engine's stale/touched drains (the
    /// per-advance hot path allocates nothing).
    engine_scratch: Vec<usize>,
}

impl McnSystem {
    /// Builds a server with `n_dimms` MCN DIMMs at optimisation level
    /// `cfg`, spreading DIMMs evenly across host channels.
    pub fn new(sys: &SystemConfig, n_dimms: usize, cfg: McnConfig) -> Self {
        Self::new_in_rack(sys, n_dimms, cfg, 0)
    }

    /// [`new`](Self::new) with a fault plan wired into the data path; see
    /// the `*_fault_component` helpers for the component names queried.
    pub fn with_faults(sys: &SystemConfig, n_dimms: usize, cfg: McnConfig, plan: &FaultPlan) -> Self {
        Self::with_faults_in_rack(sys, n_dimms, cfg, 0, plan)
    }

    /// Builds server `server_id` of a rack (shifted address plan; see
    /// [`crate::rack::McnRack`]).
    pub fn new_in_rack(
        sys: &SystemConfig,
        n_dimms: usize,
        cfg: McnConfig,
        server_id: usize,
    ) -> Self {
        Self::with_faults_in_rack(sys, n_dimms, cfg, server_id, &FaultPlan::default())
    }

    /// Fault-plan component name for server `s`'s ALERT_N line (`Drop`
    /// loses an edge, `Delay` delivers it late).
    pub fn alert_fault_component(s: usize) -> String {
        format!("srv{s}.alert")
    }

    /// Fault-plan component name for server `s`'s MCN-DMA engines
    /// (`Stall` hangs a descriptor until the watchdog recovers it).
    pub fn dma_fault_component(s: usize) -> String {
        format!("srv{s}.dma")
    }

    /// Fault-plan component name for the host-side SRAM push path into
    /// DIMM `d`'s RX ring (`Drop` loses the frame, `BitFlip` corrupts one
    /// bit — an ECC escape the `mcn2` checksum bypass cannot catch).
    pub fn sram_host_fault_component(s: usize, d: usize) -> String {
        format!("srv{s}.sram.host{d}")
    }

    /// Fault-plan component name for DIMM `d`'s push path into its SRAM
    /// TX ring (same kinds as the host side).
    pub fn sram_dimm_fault_component(s: usize, d: usize) -> String {
        format!("srv{s}.sram.dimm{d}")
    }

    /// [`new_in_rack`](Self::new_in_rack) with a fault plan.
    pub fn with_faults_in_rack(
        sys: &SystemConfig,
        n_dimms: usize,
        cfg: McnConfig,
        server_id: usize,
        plan: &FaultPlan,
    ) -> Self {
        Self::with_faults_in_dc(sys, n_dimms, cfg, 0, server_id, plan)
    }

    /// [`with_faults_in_rack`](Self::with_faults_in_rack) for server
    /// `server_id` of rack `rack_id` in a multi-rack datacenter: the
    /// conventional-NIC address plan shifts per rack
    /// ([`nic_ip_in`](Self::nic_ip_in)) so host NICs stay unique across
    /// the whole fabric. DIMM and host-interface addresses (`10.x`) are
    /// rack-private and do not shift.
    pub fn with_faults_in_dc(
        sys: &SystemConfig,
        n_dimms: usize,
        cfg: McnConfig,
        rack_id: usize,
        server_id: usize,
        plan: &FaultPlan,
    ) -> Self {
        let tcp = TcpConfig {
            mss: cfg.mtu() - mcn_net::IPV4_HEADER_BYTES - mcn_net::TCP_HEADER_BYTES,
            ..TcpConfig::default()
        };
        let mut host = Node::new(
            sys.host_cores,
            CostModel::host(),
            &sys.host_dram,
            sys.host_channels,
            tcp,
        );
        let mut hdrv = HostDriver::new();
        let mut dimms = Vec::new();
        if n_dimms == 0 {
            // Pure scale-up server (Fig. 11 baseline): no MCN interfaces
            // exist, but local MPI ranks still talk over loopback; give the
            // stack one address to bind/connect through. Loopback-class
            // interface: 64 KB MTU, no checksums, TSO-style big segments.
            host.stack.add_interface(NetConfig {
                mac: MacAddr::from_id(1),
                ip: Self::loopback_ip(),
                mtu: 65536 - mcn_net::IPV4_HEADER_BYTES,
                tx_checksum: false,
                rx_checksum: false,
                tso: true,
            });
            host.stack.add_route(
                Self::loopback_ip(),
                Ipv4Addr::new(255, 255, 255, 255),
                0,
                None,
            );
        }
        for d in 0..n_dimms {
            let channel = (d as u32) % sys.host_channels;
            let mac = MacAddr::from_id(0x0100 + (server_id as u16) * 0x40 + d as u16);
            let ip = Self::host_if_ip_for(server_id, d);
            let ifidx = host.stack.add_interface(NetConfig {
                mac,
                ip,
                mtu: cfg.mtu(),
                tx_checksum: !cfg.checksum_bypass,
                rx_checksum: !cfg.checksum_bypass,
                tso: cfg.tso,
            });
            let mut dimm = McnDimm::new_in_server(server_id, d, channel, sys, cfg, ip, mac);
            dimm.set_fault_injector(
                plan.injector(&Self::sram_dimm_fault_component(server_id, d)),
            );
            // Host-side /32 route: forward to this interface iff the entire
            // destination IP matches the DIMM (paper Sec. III-B).
            host.stack.add_route(
                dimm.ip(),
                Ipv4Addr::new(255, 255, 255, 255),
                ifidx,
                None,
            );
            host.stack.add_neighbor(dimm.ip(), dimm.mac());
            let (sram_base, sram_stride) = sram_window(d, channel, sys.host_channels);
            let tx_cores = sys.host_cores.saturating_sub(sys.host_channels as usize).max(1);
            hdrv.ports.push(Port {
                ifidx,
                dimm: d,
                channel,
                core: d % tx_cores,
                mac,
                ip,
                tx_queue: Default::default(),
                tx_busy: false,
                rx_busy: false,
                sram_base,
                sram_stride,
                link: PortLink::Up,
            });
            dimms.push(dimm);
        }
        // Every MCN node knows every other MCN node's MAC and every
        // host-side interface's MAC (static neighbor tables stand in for
        // ARP; the host still arbitrates all the traffic).
        let pairs: Vec<(Ipv4Addr, MacAddr)> =
            dimms.iter().map(|d| (d.ip(), d.mac())).collect();
        let host_pairs: Vec<(Ipv4Addr, MacAddr)> = hdrv
            .ports
            .iter()
            .map(|p| (p.ip, p.mac))
            .collect();
        for d in dimms.iter_mut() {
            let own = d.ip();
            for (ip, mac) in pairs.iter().chain(host_pairs.iter()) {
                if *ip != own {
                    d.node.stack.add_neighbor(*ip, *mac);
                }
            }
        }
        let mut effects = EventQueue::new();
        if !cfg.alert_interrupt && n_dimms > 0 {
            for channel in 0..sys.host_channels {
                effects.schedule(sys.poll_interval, Effect::PollFire { channel });
            }
        }
        let alert_faults = plan.injector(&Self::alert_fault_component(server_id));
        // Safety net for lost ALERT_N edges: a coarse poller, armed only
        // when alert faults can actually occur so that fault-free
        // interrupt-mode baselines stay bit-identical (zero polls).
        if cfg.alert_interrupt && n_dimms > 0 && alert_faults.is_active() {
            for channel in 0..sys.host_channels {
                effects.schedule(
                    sys.poll_interval * FALLBACK_POLL_MULT,
                    Effect::FallbackPoll { channel },
                );
            }
        }
        let sram_faults = (0..n_dimms)
            .map(|d| plan.injector(&Self::sram_host_fault_component(server_id, d)))
            .collect();
        McnSystem {
            sys: sys.clone(),
            cfg,
            now: SimTime::ZERO,
            server_id,
            rack_id,
            host,
            dimms,
            hdrv,
            effects,
            scratch: 0,
            nic_ifidx: None,
            foreign_jobs: Vec::new(),
            direct_rx: Vec::new(),
            external_out: Vec::new(),
            alert_faults,
            dma_faults: plan.injector(&Self::dma_fault_component(server_id)),
            sram_faults,
            stalled: HashMap::new(),
            stall_seq: 0,
            engine: Engine::new(1 + n_dimms),
            engine_scratch: Vec::new(),
        }
    }

    /// Outage-plan component name for DIMM `d` of server `s`: schedule
    /// [`OutageKind::DimmCrash`] events on it and pass the plan to
    /// [`set_outage_plan`](Self::set_outage_plan).
    pub fn dimm_outage_component(s: usize, d: usize) -> String {
        format!("srv{s}.dimm{d}")
    }

    /// Installs a hard-outage plan: every scheduled event on this server's
    /// DIMM components becomes a timed crash/power-on pair in the effect
    /// queue. `LinkDown` and `NodeReboot` on a DIMM component degrade to a
    /// crash of that DIMM (a single server has no switch or uplink);
    /// `SwitchPartition` is a rack-level event and is ignored here.
    pub fn set_outage_plan(&mut self, plan: &OutagePlan) {
        for d in 0..self.dimms.len() {
            let mut sched =
                plan.schedule(&Self::dimm_outage_component(self.server_id, d));
            for (t, kind) in sched.pop_due(SimTime::MAX) {
                let down_for = match kind {
                    OutageKind::DimmCrash { down_for }
                    | OutageKind::LinkDown { down_for }
                    | OutageKind::NodeReboot { down_for }
                    | OutageKind::DomainDown { down_for } => down_for,
                    OutageKind::SwitchPartition { .. }
                    | OutageKind::SwitchDown { .. } => continue,
                };
                self.effects.schedule(t, Effect::Crash { dimm: d });
                self.effects
                    .schedule(t + down_for, Effect::PowerOn { dimm: d });
            }
        }
    }

    /// Enables TCP keepalive (`SO_KEEPALIVE`) for connections opened from
    /// now on by the *host* stack: probing starts after `idle` without
    /// traffic, probes repeat every `intvl`, and `probes` unanswered probes
    /// declare the peer dead. Serving workloads use this to reap half-open
    /// connections left by crashed DIMMs instead of leaking sockets.
    pub fn set_host_keepalive(&mut self, idle: SimTime, intvl: SimTime, probes: u32) {
        self.host.stack.set_keepalive(idle, intvl, probes);
    }

    /// [`set_host_keepalive`](Self::set_host_keepalive) for DIMM `d`'s
    /// stack (the near-memory server side).
    pub fn set_dimm_keepalive(&mut self, d: usize, idle: SimTime, intvl: SimTime, probes: u32) {
        self.dimms[d].node.stack.set_keepalive(idle, intvl, probes);
    }

    /// Hard-crashes DIMM `d` now (see [`McnDimm::crash`]): the device
    /// freezes, its SRAM zeroes, the host port goes down and queued frames
    /// on both sides are lost.
    pub fn crash_dimm(&mut self, d: usize, now: SimTime) {
        assert!(now >= self.now);
        self.now = self.now.max(now);
        self.effects.schedule(now, Effect::Crash { dimm: d });
        self.advance(now);
    }

    /// Powers DIMM `d` back on now and kicks off the host-side re-init
    /// handshake (probe → ring reset → MAC re-announce → link up).
    pub fn power_on_dimm(&mut self, d: usize, now: SimTime) {
        assert!(now >= self.now);
        self.now = self.now.max(now);
        self.effects.schedule(now, Effect::PowerOn { dimm: d });
        self.advance(now);
    }

    /// Sends a direct (stack-bypassing) message to DIMM `d` — the Sec. VII
    /// mTCP-style path: one driver handoff plus the SRAM copy, no TCP/IP.
    pub fn direct_send(&mut self, d: usize, payload: bytes::Bytes, now: SimTime) {
        assert!(now >= self.now);
        self.now = self.now.max(now);
        let frame = EthernetFrame {
            dst: self.dimms[d].mac(),
            src: self.hdrv.ports[d].mac,
            ethertype: mcn_net::EtherType::Other(crate::dimm::DIRECT_ETHERTYPE),
            payload,
            fcs_ok: true,
        };
        self.effects.schedule(now, Effect::PortXmit { port: d, frame });
        self.advance(now);
    }

    /// Attaches a conventional NIC interface to the host stack (rack
    /// servers). Returns the interface index; the rack wires routes with
    /// [`add_remote_route`](Self::add_remote_route).
    pub fn attach_nic_iface(&mut self) -> usize {
        let ifidx = self.host.stack.add_interface(NetConfig {
            mac: Self::nic_mac_in(self.rack_id, self.server_id),
            ip: Self::nic_ip_in(self.rack_id, self.server_id),
            mtu: mcn_net::MTU_ETHERNET,
            tx_checksum: false,
            rx_checksum: false,
            tso: false,
        });
        self.nic_ifidx = Some(ifidx);
        ifidx
    }

    /// The conventional NIC's MAC for rack server `s`
    /// ([`nic_mac_in`](Self::nic_mac_in) for rack 0).
    pub fn nic_mac(s: usize) -> MacAddr {
        Self::nic_mac_in(0, s)
    }

    /// The conventional NIC's IP for rack server `s`
    /// ([`nic_ip_in`](Self::nic_ip_in) for rack 0).
    pub fn nic_ip(s: usize) -> Ipv4Addr {
        Self::nic_ip_in(0, s)
    }

    /// The conventional NIC's MAC for server `s` of rack `rack`: 0x20
    /// ids per rack keep every NIC distinct (and clear of the DIMM MAC
    /// range) for up to 64 racks of 10 servers.
    pub fn nic_mac_in(rack: usize, s: usize) -> MacAddr {
        MacAddr::from_id(0x0400 + rack as u16 * 0x20 + s as u16)
    }

    /// The conventional NIC's IP for server `s` of rack `rack`: one /24
    /// per rack inside `192.168.0.0/16`, so the rack id is readable off
    /// the third octet everywhere frames are routed.
    pub fn nic_ip_in(rack: usize, s: usize) -> Ipv4Addr {
        Ipv4Addr::new(192, 168, rack as u8, (s + 1) as u8)
    }

    /// Well-known MAC of a rack's datacenter gateway (its ToR fabric
    /// uplink). Frames the host stack resolves to this MAC are claimed
    /// by the ToR and handed to the Clos fabric instead of a local port.
    pub const GATEWAY_MAC: MacAddr = MacAddr([0x02, 0x4D, 0x43, 0x4E, 0xFF, 0xF0]);

    /// Next-hop IP the gateway route resolves through (never a real
    /// interface; exists so the stack has a neighbor entry yielding
    /// [`GATEWAY_MAC`](Self::GATEWAY_MAC)).
    pub const GATEWAY_IP: Ipv4Addr = Ipv4Addr::new(192, 168, 255, 254);

    /// Routes the whole `192.168.0.0/16` NIC plane out the conventional
    /// NIC via the datacenter gateway. Installed *before* the rack's
    /// /32 same-rack routes, which win by longest-prefix match, so only
    /// genuinely remote-rack traffic escapes to the fabric.
    pub fn add_dc_gateway_route(&mut self) {
        let ifidx = self.nic_ifidx.expect("attach_nic_iface first");
        self.host.stack.add_route(
            Ipv4Addr::new(192, 168, 0, 0),
            Ipv4Addr::new(255, 255, 0, 0),
            ifidx,
            Some(Self::GATEWAY_IP),
        );
        self.host.stack.add_neighbor(Self::GATEWAY_IP, Self::GATEWAY_MAC);
    }

    /// Routes `dst` out the conventional NIC towards `gw` (a remote
    /// server's NIC address/MAC).
    pub fn add_remote_route(&mut self, dst: Ipv4Addr, gw: Ipv4Addr, gw_mac: MacAddr) {
        let ifidx = self.nic_ifidx.expect("attach_nic_iface first");
        self.host
            .stack
            .add_route(dst, Ipv4Addr::new(255, 255, 255, 255), ifidx, Some(gw));
        self.host.stack.add_neighbor(gw, gw_mac);
    }

    /// IP of host-side interface `i` (`10.(i+1).0.1`).
    pub fn host_if_ip(i: usize) -> Ipv4Addr {
        Self::host_if_ip_for(0, i)
    }

    /// Rack variant of [`host_if_ip`](Self::host_if_ip).
    pub fn host_if_ip_for(server: usize, i: usize) -> Ipv4Addr {
        Ipv4Addr::new(10, (server * 24 + i + 1) as u8, 0, 1)
    }

    /// This server's id within its rack (0 standalone).
    pub fn server_id(&self) -> usize {
        self.server_id
    }

    /// This server's rack id within its datacenter (0 standalone).
    pub fn rack_id(&self) -> usize {
        self.rack_id
    }

    /// The host's self-address in a system with zero DIMMs (scale-up
    /// baseline): local ranks connect to each other through it.
    pub fn loopback_ip() -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, 1)
    }

    /// The address other ranks (and local ranks) use to reach processes on
    /// the host.
    pub fn host_rank_ip(&self) -> Ipv4Addr {
        if self.dimms.is_empty() {
            Self::loopback_ip()
        } else {
            Self::host_if_ip_for(self.server_id, 0)
        }
    }

    /// IP of DIMM `i` (`10.(i+1).0.2`, shifted in racks).
    pub fn dimm_ip(&self, i: usize) -> Ipv4Addr {
        McnDimm::ip_for(self.server_id, i)
    }

    /// Number of MCN DIMMs installed.
    pub fn dimms(&self) -> usize {
        self.dimms.len()
    }

    /// Access a DIMM.
    pub fn dimm(&self, d: usize) -> &McnDimm {
        &self.dimms[d]
    }

    /// Mutable access to a DIMM. Marks the DIMM's cached wakeup stale:
    /// callers may inject work (e.g. `udp_send` straight into its stack)
    /// that changes its next deadline.
    pub fn dimm_mut(&mut self, d: usize) -> &mut McnDimm {
        self.engine.mark_stale(dimm_id(d));
        &mut self.dimms[d]
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The active optimisation configuration.
    pub fn config(&self) -> McnConfig {
        self.cfg
    }

    /// The system configuration.
    pub fn system_config(&self) -> &SystemConfig {
        &self.sys
    }

    /// Spawns an application process on a host core.
    pub fn spawn_host(&mut self, proc: Box<dyn Process>, core: usize) -> ProcId {
        self.host.runner.spawn(proc, core)
    }

    /// Spawns an application process on a core of DIMM `d`.
    pub fn spawn_dimm(&mut self, d: usize, proc: Box<dyn Process>, core: usize) -> ProcId {
        self.engine.mark_stale(dimm_id(d));
        self.dimms[d].node.runner.spawn(proc, core)
    }

    /// All application processes (host + DIMMs) finished?
    pub fn all_procs_done(&self) -> bool {
        self.host.runner.all_done() && self.dimms.iter().all(|d| d.node.runner.all_done())
    }

    /// Snapshot of why the system appears stalled: blocked processes,
    /// socket states, port/ring occupancy, in-flight driver jobs. Used by
    /// the convergence guard and by drive loops whose process set
    /// quiesced without finishing.
    pub fn stall_report(&self, title: &str) -> StallReport {
        let mut r = StallReport::new(format!("{title} (srv{} @ {})", self.server_id, self.now));
        for line in self.host.runner.stalled_procs() {
            r.line("host procs", line);
        }
        for line in self.host.stack.socket_states() {
            r.line("host sockets", line);
        }
        for (i, (tx_busy, rx_busy, txq)) in self.hdrv.debug_ports().iter().enumerate() {
            let link = self.hdrv.ports[i].link;
            r.line(
                "ports",
                format!(
                    "port{i}: link={link:?} tx_busy={tx_busy} rx_busy={rx_busy} tx_queue={txq}"
                ),
            );
        }
        for (d, dimm) in self.dimms.iter().enumerate() {
            r.line(
                "rings",
                format!(
                    "dimm{d}: tx_used={} tx_poll={} rx_used={} rx_poll={}",
                    dimm.sram.used(Dir::Tx),
                    dimm.sram.poll_flag(Dir::Tx),
                    dimm.sram.used(Dir::Rx),
                    dimm.sram.poll_flag(Dir::Rx),
                ),
            );
            let (tx_busy, rx_busy, txq, _, _, staged, pending) = dimm.debug_state();
            r.line(
                "dimm drivers",
                format!(
                    "dimm{d}: tx_busy={tx_busy} rx_busy={rx_busy} tx_queue={txq} \
                     staged={staged} pending_jobs={pending}"
                ),
            );
            for line in dimm.node.runner.stalled_procs() {
                r.line("dimm procs", format!("dimm{d}: {line}"));
            }
            for line in dimm.node.stack.socket_states() {
                r.line("dimm sockets", format!("dimm{d}: {line}"));
            }
        }
        r.line(
            "driver jobs",
            format!(
                "host pending={} stalled_dma={} effects_queued={}",
                self.hdrv.pending.len(),
                self.stalled.len(),
                self.effects.len(),
            ),
        );
        r
    }

    fn poll_core(&self, channel: u32) -> usize {
        if self.sys.host_cores > self.sys.host_channels as usize {
            self.sys.host_cores - 1 - channel as usize
        } else {
            channel as usize % self.sys.host_cores
        }
    }

    fn scratch_addr(&mut self, bytes: u64) -> u64 {
        const BASE: u64 = 2 << 30;
        const SPAN: u64 = 256 << 20;
        let lines = bytes.div_ceil(64);
        if self.scratch + lines * 64 > SPAN {
            self.scratch = 0;
        }
        let a = BASE + self.scratch;
        self.scratch += lines * 64;
        a
    }

    // ------------------------------------------------------------------
    // Event loop
    // ------------------------------------------------------------------

    /// The wakeup of engine component `id`, queried live.
    fn wakeup_of(&self, id: usize) -> Option<SimTime> {
        if id == HOST_ID {
            self.host.next_wakeup()
        } else {
            self.dimms[id - 1 - HOST_ID].next_wakeup()
        }
    }

    /// Re-queries every stale component's deadline. The host is *always*
    /// treated as stale: it is a public field, so harnesses and tests can
    /// inject work (binds, sends, spawns) the engine cannot observe.
    fn refresh_wakeups(&mut self) {
        self.engine.mark_stale(HOST_ID);
        let ids = self.engine.drain_stale_into(std::mem::take(&mut self.engine_scratch));
        for &id in &ids {
            let w = self.wakeup_of(id);
            self.engine.set_wakeup(id, w);
        }
        self.engine_scratch = ids;
    }

    /// Earliest pending activity anywhere in the system: the staged-effect
    /// queue head or the earliest indexed component wakeup — a heap peek,
    /// not a scan over host + every DIMM.
    pub fn next_event(&mut self) -> Option<SimTime> {
        self.refresh_wakeups();
        let t = match (self.effects.peek_time(), self.engine.earliest()) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        t.map(|x| x.max(self.now))
    }

    /// Processes everything due at time `t`.
    ///
    /// Convergence is driven by a dirty list instead of a full sweep: the
    /// wakeup index seeds the components whose deadlines are due, each
    /// delivered effect marks its target, and a component reporting
    /// [`Activity::Active`] is re-polled next round until it quiesces.
    pub fn advance(&mut self, t: SimTime) -> Activity {
        assert!(t >= self.now, "time must not go backwards");
        self.now = t;
        self.refresh_wakeups();
        self.engine.begin(t);
        let mut any = false;
        for round in 0.. {
            if round >= 100_000 {
                panic!("{}", self.stall_report("system advance did not converge"));
            }
            if round > 0 && round % 1000 == 0 && std::env::var("MCN_SYS_DEBUG").is_ok() {
                eprintln!("advance({t}) round {round}");
            }
            let mut changed = false;

            // Due staged effects; each delivery marks its target dirty.
            while let Some((_, e)) = self.effects.pop_if_due(t) {
                self.apply(e, t);
                changed = true;
            }

            // Poll only the components named on the dirty list.
            if self.engine.start_round() {
                while let Some(id) = self.engine.pop_dirty() {
                    let active = if id == HOST_ID {
                        self.advance_host(t)
                    } else {
                        self.advance_dimm(id - 1 - HOST_ID, t)
                    };
                    if active {
                        // It made progress; it may have enabled more of
                        // its own work at `t`. Re-poll next round.
                        self.engine.mark_dirty(id);
                        changed = true;
                    }
                }
            }

            if !changed {
                break;
            }
            any = true;
            self.engine.note_round();
        }
        let ids = self.engine.drain_touched_into(std::mem::take(&mut self.engine_scratch));
        for &id in &ids {
            let w = self.wakeup_of(id);
            self.engine.set_wakeup(id, w);
        }
        self.engine_scratch = ids;
        Activity::from_flag(any)
    }

    /// Host progress at `t`: memory-job completions → driver ops (NIC DMA
    /// jobs belong to the rack orchestrator), stack timers, processes,
    /// outbound frames. Errors are counted and the run continues — fault
    /// injection can legitimately produce them.
    fn advance_host(&mut self, t: SimTime) -> bool {
        let mut changed = false;
        for (waiter, job) in self.host.advance_mem(t) {
            if waiter == HOST_DRV_WAITER {
                match self.on_host_job(job, t) {
                    Ok(()) => {}
                    Err(McnError::UnknownJob { .. }) => self.hdrv.stats.unknown_jobs.inc(),
                    Err(McnError::RingFull { .. }) => self.hdrv.stats.ring_full_drops.inc(),
                }
            } else {
                self.foreign_jobs.push((waiter, job));
            }
            changed = true;
        }
        self.host.service_stack(t);
        if self.host.run_procs(t) {
            changed = true;
        }
        if self.drain_host_stack(t) {
            changed = true;
        }
        changed
    }

    /// DIMM progress at `t`; its signals feed the host side.
    fn advance_dimm(&mut self, d: usize, t: SimTime) -> bool {
        let mut changed = false;
        for sig in self.dimms[d].advance(t) {
            changed = true;
            match sig {
                DimmSignal::TxPollRaised(at) => {
                    if self.cfg.alert_interrupt {
                        if self.alert_faults.fires(FaultKind::Drop, t) {
                            // Lost interrupt edge: nothing is scheduled;
                            // the fallback poller (armed iff alert faults
                            // are active) finds the pending ring data
                            // later.
                            self.hdrv.stats.alerts_dropped.inc();
                            continue;
                        }
                        let mut latency = self.sys.alert_latency;
                        if self.alert_faults.fires(FaultKind::Delay, t) {
                            self.hdrv.stats.alerts_delayed.inc();
                            latency +=
                                SimTime::from_us(1 + self.alert_faults.rng().next_below(4));
                        }
                        let channel = self.dimms[d].channel();
                        self.effects
                            .schedule((at + latency).max(t), Effect::HostAlert { channel });
                    }
                }
                DimmSignal::RxSpaceFreed(_) => {
                    let port = d; // port index == dimm index
                    self.effects.schedule(t, Effect::TryPortTx { port });
                }
            }
        }
        changed
    }

    /// Charges TX protocol processing for frames the host stack queued on
    /// MCN interfaces and stages them into the driver.
    fn drain_host_stack(&mut self, now: SimTime) -> bool {
        let mut any = false;
        if let Some(nic_if) = self.nic_ifidx {
            while let Some(frame) = self.host.stack.poll_output(nic_if) {
                let proto = tx_protocol_cost(&self.host.cost, &frame, false);
                let core = self.host.cpus.least_loaded();
                self.host.cpus.run_on(core, now, proto);
                self.external_out.push(frame);
                any = true;
            }
        }
        for p in 0..self.hdrv.ports.len() {
            let (ifidx, core) = (self.hdrv.ports[p].ifidx, self.hdrv.ports[p].core);
            while let Some(frame) = self.host.stack.poll_output(ifidx) {
                let sw_csum = !self.cfg.checksum_bypass;
                let proto = tx_protocol_cost(&self.host.cost, &frame, sw_csum);
                let (_, end) = self.host.cpus.run_on(core, now, proto);
                self.effects.schedule(end, Effect::PortXmit { port: p, frame });
                any = true;
            }
        }
        any
    }

    fn apply(&mut self, e: Effect, now: SimTime) {
        // Mark the component this effect lands on: DIMM-side deliveries
        // touch the DIMM, everything else runs host CPUs / memory / stack.
        match &e {
            Effect::DimmIrq { dimm } | Effect::DimmKick { dimm } => {
                self.engine.mark_dirty(dimm_id(*dimm));
            }
            Effect::Crash { dimm } | Effect::PowerOn { dimm } | Effect::Reinit { dimm } => {
                // Lifecycle events touch both sides of the channel.
                self.engine.mark_dirty(dimm_id(*dimm));
                self.engine.mark_dirty(HOST_ID);
            }
            _ => self.engine.mark_dirty(HOST_ID),
        }
        match e {
            Effect::PortXmit { port, frame } => {
                self.hdrv.ports[port].tx_queue.push_back(frame);
                self.try_port_tx(port, now);
            }
            Effect::TryPortTx { port } => self.try_port_tx(port, now),
            Effect::StartTxCopy { port, frame } => self.issue_tx_copy(port, frame, now, 0),
            Effect::PollFire { channel } => {
                self.hdrv.stats.polls.inc();
                let core = self.poll_core(channel);
                let (_, end) = self.host.cpus.run_on(core, now, self.host.cost.hrtimer());
                self.issue_poll_checks(channel, end, false);
                // Pace the next poll by the core, not just the timer: a
                // busy core takes its timer interrupt late, it does not
                // accumulate an unbounded backlog of polling work.
                let next = (now + self.sys.poll_interval).max(end);
                self.effects.schedule(next, Effect::PollFire { channel });
            }
            Effect::HostAlert { channel } => {
                self.hdrv.stats.alerts.inc();
                let core = self.poll_core(channel);
                let (_, end) = self.host.cpus.run_on(core, now, self.host.cost.irq());
                self.issue_poll_checks(channel, end, false);
            }
            Effect::FallbackPoll { channel } => {
                self.hdrv.stats.fallback_polls.inc();
                let core = self.poll_core(channel);
                let (_, end) = self.host.cpus.run_on(core, now, self.host.cost.hrtimer());
                self.issue_poll_checks(channel, end, true);
                let next = (now + self.sys.poll_interval * FALLBACK_POLL_MULT).max(end);
                self.effects.schedule(next, Effect::FallbackPoll { channel });
            }
            Effect::DmaWatchdog { key } => self.on_dma_watchdog(key, now),
            Effect::StartHostRx { port } => self.start_host_rx(port, now),
            Effect::HostDeliver { ifidx, frame } => {
                if frame.ethertype == mcn_net::EtherType::Other(crate::dimm::DIRECT_ETHERTYPE) {
                    // Sec. VII bypass: straight to user space.
                    let src = self
                        .dimms
                        .iter()
                        .position(|x| x.mac() == frame.src)
                        .unwrap_or(0);
                    self.direct_rx.push((now, src, frame.payload));
                } else {
                    self.host.stack.on_frame(ifidx, frame, now);
                    self.host.drain_stack_events();
                }
            }
            Effect::DimmIrq { dimm } => self.dimms[dimm].on_rx_poll(now),
            Effect::DimmKick { dimm } => self.dimms[dimm].kick_tx(now),
            Effect::Crash { dimm } => self.do_crash(dimm, now),
            Effect::PowerOn { dimm } => self.do_power_on(dimm, now),
            Effect::Reinit { dimm } => self.reinit_step(dimm, now),
        }
    }

    /// A DIMM dies: device state wiped, host port down, both links down,
    /// parked DMA transfers for that port discarded. The host driver starts
    /// probing the dead port immediately (exponential backoff, bounded by
    /// `reinit_max_probes`), so a device that powers back on inside the
    /// probe budget re-initialises with no further intervention.
    fn do_crash(&mut self, d: usize, now: SimTime) {
        if !self.dimms[d].alive() {
            return;
        }
        // A Reinit timer chain is alive exactly while the link is in a
        // handshake state; only start a new one when the port was Up, so a
        // crash that lands mid-handshake reuses the existing chain.
        let was_up = self.hdrv.ports[d].link == PortLink::Up;
        self.dimms[d].crash(now);
        self.hdrv.port_down(d);
        let ifidx = self.hdrv.ports[d].ifidx;
        self.host.stack.link_down(ifidx);
        self.hdrv.ports[d].link = PortLink::Probe { attempt: 0 };
        if was_up {
            self.effects.schedule(
                now + self.sys.reinit_probe_interval,
                Effect::Reinit { dimm: d },
            );
        }
        // Watchdog-parked DMA transfers targeting the dead port are stale:
        // drop them (their DmaWatchdog effects will find nothing to retry).
        let before = self.stalled.len();
        self.stalled.retain(|_, op| {
            !matches!(
                op,
                StalledOp::Tx { port, .. } | StalledOp::Rx { port, .. } if *port == d
            )
        });
        self.hdrv
            .stats
            .stale_desc_dropped
            .add((before - self.stalled.len()) as u64);
    }

    /// A crashed DIMM powers back on: the device wakes with clean state.
    /// If the probe loop started at crash time is still running, its next
    /// probe finds the device; if it already exhausted its budget and
    /// parked the port, the power-on restarts the handshake.
    fn do_power_on(&mut self, d: usize, now: SimTime) {
        if self.dimms[d].alive() {
            return;
        }
        self.dimms[d].power_on(now);
        if self.hdrv.ports[d].link == PortLink::Down {
            self.hdrv.ports[d].link = PortLink::Probe { attempt: 0 };
            self.effects
                .schedule(now + self.sys.reinit_step, Effect::Reinit { dimm: d });
        }
    }

    /// One step of the re-init handshake: probe (with exponential backoff
    /// against a still-dead device, bounded by `reinit_max_probes`), then
    /// ring reset, then MAC re-announce, then link up on both sides.
    fn reinit_step(&mut self, d: usize, now: SimTime) {
        let channel = self.hdrv.ports[d].channel;
        let core = self.poll_core(channel);
        match self.hdrv.ports[d].link {
            PortLink::Probe { attempt } => {
                self.hdrv.stats.probes_sent.inc();
                self.host
                    .cpus
                    .run_on(core, now, self.host.cost.poll_check());
                if self.dimms[d].alive() {
                    self.hdrv.ports[d].link = PortLink::RingReset;
                    self.effects
                        .schedule(now + self.sys.reinit_step, Effect::Reinit { dimm: d });
                } else if attempt + 1 >= self.sys.reinit_max_probes {
                    // Probe budget exhausted: park the port down. A later
                    // power-on restarts the handshake from scratch.
                    self.hdrv.stats.reinit_failures.inc();
                    self.hdrv.ports[d].link = PortLink::Down;
                } else {
                    self.hdrv.stats.probe_retries.inc();
                    self.hdrv.ports[d].link = PortLink::Probe { attempt: attempt + 1 };
                    let delay = self
                        .sys
                        .reinit_probe_interval
                        .as_ps()
                        .saturating_mul(1u64 << attempt.min(20));
                    self.effects.schedule(
                        now + SimTime::from_ps(delay),
                        Effect::Reinit { dimm: d },
                    );
                }
            }
            PortLink::RingReset => {
                // The host re-zeroes both rings' control words through the
                // SRAM window: whatever either side believed pre-crash is
                // now definitively gone.
                self.hdrv.stats.ring_resets.inc();
                self.dimms[d].sram.reset();
                self.hdrv.ports[d].link = PortLink::MacAnnounce;
                self.effects
                    .schedule(now + self.sys.reinit_step, Effect::Reinit { dimm: d });
            }
            PortLink::MacAnnounce => {
                self.hdrv.stats.mac_announces.inc();
                self.hdrv.stats.reinits_completed.inc();
                self.hdrv.ports[d].link = PortLink::Up;
                let ifidx = self.hdrv.ports[d].ifidx;
                self.host.stack.link_up(ifidx);
                self.host.service_stack(now);
                self.dimms[d].link_restored(now);
                // Both sides may have retransmissions queued behind RTOs;
                // kick the data path so pending work moves immediately.
                self.effects.schedule(now, Effect::TryPortTx { port: d });
                self.effects.schedule(now, Effect::DimmKick { dimm: d });
            }
            PortLink::Up | PortLink::Down => {} // stale handshake timer
        }
    }

    /// One uncached `tx-poll` line read per DIMM on the channel.
    fn issue_poll_checks(&mut self, channel: u32, at: SimTime, via_fallback: bool) {
        let core = self.poll_core(channel);
        for port in self.hdrv.ports_on_channel(channel) {
            if self.hdrv.ports[port].link != PortLink::Up {
                continue; // dead or re-initialising: nothing to poll
            }
            self.host
                .cpus
                .run_on(core, at, self.host.cost.poll_check());
            let p = &self.hdrv.ports[port];
            let job = self.host.mem.start(
                Transfer::Single {
                    pat: Pattern {
                        start: p.sram_base,
                        stride: p.sram_stride,
                        target: Target::Sram,
                    },
                    kind: mcn_dram::MemKind::Read,
                    bytes: 64,
                },
                HOST_DRV_WAITER,
                at,
            );
            self.hdrv
                .pending
                .insert(job.0, HostOp::PollCheck { port, via_fallback });
        }
    }

    /// Issues the `memcpy_to_mcn` job for one frame, or parks it behind the
    /// watchdog if the DMA descriptor stalls. `attempt` 0 is the normal
    /// path; the watchdog re-enters with higher attempts, and once the
    /// retry budget is spent the transfer degrades to a CPU copy.
    fn issue_tx_copy(&mut self, port: usize, frame: EthernetFrame, now: SimTime, attempt: u32) {
        if self.cfg.dma
            && attempt < DMA_MAX_ATTEMPTS
            && self.dma_faults.fires(FaultKind::Stall, now)
        {
            self.hdrv.stats.dma_stalls.inc();
            let key = self.stall_seq;
            self.stall_seq += 1;
            self.stalled.insert(key, StalledOp::Tx { port, frame, attempt });
            // Exponential backoff: each retry doubles the deadline.
            let deadline = self.sys.dma_watchdog_deadline * (1u64 << attempt);
            self.effects.schedule(now + deadline, Effect::DmaWatchdog { key });
            return;
        }
        let cpu_fallback = self.cfg.dma && attempt >= DMA_MAX_ATTEMPTS;
        let bytes = frame.encode().len() as u64 + 4 + 64; // msg + ctrl line
        let src = self.scratch_addr(bytes);
        let p = &self.hdrv.ports[port];
        let (sram_base, sram_stride, core) = (p.sram_base, p.sram_stride, p.core);
        // CPU copies to uncached/WC windows sustain limited memory-level
        // parallelism; the MCN-DMA engine pipelines deeply (the mcn5 gain).
        // A transfer that exhausted its DMA retries runs as a CPU copy —
        // slower, but it completes.
        let start = if cpu_fallback {
            self.hdrv.stats.dma_fallbacks.inc();
            let (_, end) =
                self.host
                    .cpus
                    .run_on(core, now, self.host.cost.sram_write_copy(bytes as usize));
            end
        } else {
            now
        };
        let mlp = if self.cfg.dma && !cpu_fallback { 16 } else { 4 };
        let job = self.host.mem.start_with_mlp(
            Transfer::Copy {
                src: Pattern::dram(src),
                dst: Pattern {
                    start: sram_base,
                    stride: sram_stride,
                    target: Target::Sram,
                },
                bytes,
            },
            HOST_DRV_WAITER,
            mlp,
            start,
        );
        self.hdrv.pending.insert(
            job.0,
            HostOp::TxCopy {
                port,
                frame,
                started: now,
            },
        );
    }

    /// A watchdog deadline fired: the parked transfer is retried (the
    /// descriptor is re-issued) or, out of retries, degraded to a CPU copy.
    fn on_dma_watchdog(&mut self, key: u64, now: SimTime) {
        let Some(op) = self.stalled.remove(&key) else {
            return; // already recovered
        };
        self.hdrv.stats.dma_retries.inc();
        match op {
            StalledOp::Tx { port, frame, attempt } => {
                self.issue_tx_copy(port, frame, now, attempt + 1);
            }
            StalledOp::Rx { port, attempt } => {
                self.issue_rx_copy(port, now, attempt + 1);
            }
        }
    }

    fn try_port_tx(&mut self, port: usize, now: SimTime) {
        let p = &mut self.hdrv.ports[port];
        if p.link != PortLink::Up {
            // Frames staged before the crash landed on a dead port: discard
            // them — the transport retransmits once the link heals.
            let lost = p.tx_queue.len() as u64;
            p.tx_queue.clear();
            self.hdrv.stats.stale_desc_dropped.add(lost);
            return;
        }
        if p.tx_busy {
            return;
        }
        let Some(frame) = p.tx_queue.front() else {
            return;
        };
        let need = frame.encode().len() + 4;
        if self.dimms[p.dimm].sram.free_space(Dir::Rx) < need {
            self.hdrv.stats.tx_busy_events.inc();
            return; // retried on RxSpaceFreed
        }
        let frame = p.tx_queue.pop_front().expect("checked");
        p.tx_busy = true;
        // CPU involvement: driver bookkeeping plus, for CPU-driven copies,
        // the per-byte memcpy issue work. The channel occupancy itself is
        // modelled by the copy job; charging the job's *elapsed* time on the
        // core would double-count wall-clock the core already spent on
        // other work, so the CPU share is charged up front instead.
        let work = if self.cfg.dma {
            self.host.cost.driver_tx() + self.sys.dma_setup
        } else {
            self.host.cost.driver_tx() + self.host.cost.sram_write_copy(need)
        };
        let core = p.core;
        let (_, end) = self.host.cpus.run_on(core, now, work);
        self.effects
            .schedule(end, Effect::StartTxCopy { port, frame });
    }

    fn start_host_rx(&mut self, port: usize, now: SimTime) {
        let p = &mut self.hdrv.ports[port];
        if p.rx_busy {
            return;
        }
        if self.dimms[p.dimm].sram.used(Dir::Tx) == 0 {
            return;
        }
        p.rx_busy = true;
        self.issue_rx_copy(port, now, 0);
    }

    /// Issues the `memcpy_from_mcn` drain of a TX ring (the port's
    /// `rx_busy` must already be held), parking it behind the watchdog on
    /// a DMA stall — same retry/degrade policy as the transmit side.
    fn issue_rx_copy(&mut self, port: usize, now: SimTime, attempt: u32) {
        if self.cfg.dma
            && attempt < DMA_MAX_ATTEMPTS
            && self.dma_faults.fires(FaultKind::Stall, now)
        {
            self.hdrv.stats.dma_stalls.inc();
            let key = self.stall_seq;
            self.stall_seq += 1;
            self.stalled.insert(key, StalledOp::Rx { port, attempt });
            let deadline = self.sys.dma_watchdog_deadline * (1u64 << attempt);
            self.effects.schedule(now + deadline, Effect::DmaWatchdog { key });
            return;
        }
        let cpu_fallback = self.cfg.dma && attempt >= DMA_MAX_ATTEMPTS;
        let p = &self.hdrv.ports[port];
        let used = self.dimms[p.dimm].sram.used(Dir::Tx) as u64;
        let bytes = used + 64; // + control line
        let sram_base = p.sram_base;
        let sram_stride = p.sram_stride;
        let channel = p.channel;
        let dst = self.scratch_addr(bytes);
        // memcpy_from_mcn CPU issue work (skipped under working MCN-DMA);
        // the copy job starts once the core gets to it.
        let start = if self.cfg.dma && !cpu_fallback {
            now
        } else {
            if cpu_fallback {
                self.hdrv.stats.dma_fallbacks.inc();
            }
            let core = self.poll_core(channel);
            let (_, end) = self
                .host
                .cpus
                .run_on(core, now, self.host.cost.sram_read_copy(bytes as usize));
            end
        };
        let mlp = if self.cfg.dma && !cpu_fallback { 16 } else { 4 };
        let job = self.host.mem.start_with_mlp(
            Transfer::Copy {
                src: Pattern {
                    start: sram_base,
                    stride: sram_stride,
                    target: Target::Sram,
                },
                dst: Pattern::dram(dst),
                bytes,
            },
            HOST_DRV_WAITER,
            mlp,
            start,
        );
        self.hdrv
            .pending
            .insert(job.0, HostOp::RxCopy { port, started: now });
    }

    fn on_host_job(&mut self, job: JobId, now: SimTime) -> Result<(), McnError> {
        // A copy or poll job that completes against a port the crash took
        // down read (or would write) pre-crash ring state the device no
        // longer owns: discard the result instead of consuming it.
        if let Some(op) = self.hdrv.pending.get(&job.0) {
            let port = match op {
                HostOp::PollCheck { port, .. }
                | HostOp::RxCopy { port, .. }
                | HostOp::TxCopy { port, .. } => *port,
            };
            if self.hdrv.ports[port].link != PortLink::Up {
                self.hdrv.pending.remove(&job.0);
                self.hdrv.stats.stale_desc_dropped.inc();
                return Ok(());
            }
        }
        match self.hdrv.pending.remove(&job.0) {
            Some(HostOp::PollCheck { port, via_fallback }) => {
                let d = self.hdrv.ports[port].dimm;
                if self.dimms[d].sram.poll_flag(Dir::Tx) && !self.hdrv.ports[port].rx_busy {
                    if via_fallback {
                        // Pending TX data with no alert in flight: a dropped
                        // ALERT_N that would have hung the ring forever.
                        self.hdrv.stats.alert_recoveries.inc();
                    }
                    self.start_host_rx(port, now);
                }
            }
            Some(HostOp::TxCopy {
                port,
                frame,
                started,
            }) => {
                let p = &mut self.hdrv.ports[port];
                let d = p.dimm;
                p.tx_busy = false;
                self.effects.schedule(now, Effect::TryPortTx { port });
                // The write into the interface SRAM is the injection point
                // for memory-channel faults: a lost frame, or an
                // ECC-escaped bit flip landing in ring *data* bytes (the
                // checksum-bypass exposure; the 4-byte length prefix is
                // written by the ring itself and stays intact).
                if self.sram_faults[d].fires(FaultKind::Drop, now) {
                    self.hdrv.stats.frames_dropped.inc();
                    return Ok(());
                }
                let mut encoded = frame.encode();
                if self.sram_faults[d].fires(FaultKind::BitFlip, now) {
                    self.sram_faults[d].flip_bit(&mut encoded);
                    self.hdrv.stats.ecc_escapes.inc();
                }
                if self.dimms[d].sram.push(Dir::Rx, &encoded).is_err() {
                    return Err(McnError::RingFull {
                        side: McnSide::Host,
                        len: encoded.len(),
                    });
                }
                self.hdrv.stats.tx_frames.inc();
                self.hdrv.stats.driver_tx.record(now.saturating_sub(started));
                self.effects.schedule(now, Effect::DimmIrq { dimm: d });
            }
            Some(HostOp::RxCopy { port, started }) => {
                let channel = self.hdrv.ports[port].channel;
                let core = self.poll_core(channel);
                let d = self.hdrv.ports[port].dimm;
                let msgs = self.dimms[d].sram.pop_all(Dir::Tx);
                self.effects.schedule(now, Effect::DimmKick { dimm: d });
                let host_macs = self.hdrv.host_macs();
                let dimm_macs: Vec<MacAddr> = self.dimms.iter().map(|x| x.mac()).collect();
                let sw_csum = !self.cfg.checksum_bypass;
                for msg in msgs {
                    let Ok(frame) = EthernetFrame::decode(&msg) else {
                        // Undecodable ring message (possible under injected
                        // corruption): count and drop.
                        self.hdrv.stats.malformed.inc();
                        continue;
                    };
                    self.hdrv.stats.rx_frames.inc();
                    match classify(&frame, &host_macs, &dimm_macs) {
                        ForwardClass::Host => {
                            self.hdrv.stats.f1_host.inc();
                            self.deliver_to_host(port, frame, core, started, now);
                        }
                        ForwardClass::Dimm(j) => {
                            self.hdrv.stats.f3_forward.inc();
                            let (_, end) =
                                self.host
                                    .cpus
                                    .run_on(core, now, self.host.cost.driver_rx());
                            self.effects
                                .schedule(end, Effect::PortXmit { port: j, frame });
                        }
                        ForwardClass::Broadcast => {
                            self.hdrv.stats.f2_broadcast.inc();
                            self.deliver_to_host(port, frame.clone(), core, started, now);
                            for j in 0..self.dimms.len() {
                                if j != d {
                                    self.effects.schedule(
                                        now,
                                        Effect::PortXmit {
                                            port: j,
                                            frame: frame.clone(),
                                        },
                                    );
                                }
                            }
                        }
                        ForwardClass::External => {
                            // F4: out the conventional NIC (paper
                            // `dev_queue_xmit`). A rack orchestrator drains
                            // `external_out`; standalone servers drop.
                            self.hdrv.stats.f4_external.inc();
                            self.external_out.push(frame);
                        }
                    }
                    let _ = sw_csum;
                }
                self.hdrv.ports[port].rx_busy = false;
                if self.dimms[d].sram.poll_flag(Dir::Tx) {
                    self.effects.schedule(now, Effect::StartHostRx { port });
                }
            }
            None => {
                return Err(McnError::UnknownJob {
                    job,
                    side: McnSide::Host,
                })
            }
        }
        Ok(())
    }

    /// Delivers a frame that arrived from outside (another server's host,
    /// via the conventional NIC): routed by destination IP — to a local
    /// DIMM through the normal T1–T3 transmit path, or up the host stack.
    /// Receive-side NIC costs are the caller's (rack) business.
    pub fn ingress_external(&mut self, frame: EthernetFrame, now: SimTime) {
        assert!(now >= self.now, "ingress in the past");
        self.now = self.now.max(now);
        let Ok(pkt) = mcn_net::Ipv4Packet::decode(&frame.payload) else {
            return;
        };
        if let Some(port) = self
            .dimms
            .iter()
            .position(|d| d.ip() == pkt.dst)
        {
            // Re-address at L2 for the point-to-point hop and transmit.
            let mut f = frame;
            f.dst = self.dimms[port].mac();
            f.src = self.hdrv.ports[port].mac;
            self.effects.schedule(now, Effect::PortXmit { port, frame: f });
        } else {
            // Host-local (or dropped by the stack's own checks): deliver on
            // the NIC interface it physically arrived on.
            let ifidx = self.nic_ifidx.unwrap_or(0);
            let mut f = frame;
            f.dst = Self::nic_mac_in(self.rack_id, self.server_id);
            self.effects
                .schedule(now, Effect::HostDeliver { ifidx, frame: f });
        }
        self.advance(now);
    }

    /// Drains frames the forwarding engine sent to the conventional NIC.
    pub fn take_external(&mut self) -> Vec<EthernetFrame> {
        std::mem::take(&mut self.external_out)
    }

    fn deliver_to_host(
        &mut self,
        port: usize,
        frame: EthernetFrame,
        core: usize,
        started: SimTime,
        now: SimTime,
    ) {
        let sw_csum = !self.cfg.checksum_bypass;
        // Driver work (ring cleanup, sk_buff) stays on the polling core;
        // protocol processing is steered to the port's core (RPS-style),
        // sequenced after the driver hands the packet off.
        let (_, handoff) = self
            .host
            .cpus
            .run_on(core, now, self.host.cost.driver_rx());
        let proto = rx_protocol_cost(&self.host.cost, &frame, sw_csum);
        let proto_core = self.hdrv.ports[port].core;
        let (_, end) = self.host.cpus.run_on(proto_core, handoff, proto);
        self.hdrv.stats.driver_rx.record(end.saturating_sub(started));
        // F1 frames may target *any* host-side interface's MAC (an MCN node
        // reaches all host addresses through its one link); hand the frame
        // to the interface it names, not the port it arrived on.
        let ifidx = self
            .hdrv
            .ports
            .iter()
            .find(|p| p.mac == frame.dst)
            .map(|p| p.ifidx)
            .unwrap_or(self.hdrv.ports[port].ifidx);
        self.effects
            .schedule(end, Effect::HostDeliver { ifidx, frame });
    }
}

impl Component for McnSystem {
    fn now(&self) -> SimTime {
        McnSystem::now(self)
    }
    fn next_event(&mut self) -> Option<SimTime> {
        McnSystem::next_event(self)
    }
    fn advance(&mut self, t: SimTime) -> Activity {
        McnSystem::advance(self, t)
    }
    fn procs_done(&self) -> bool {
        self.all_procs_done()
    }
    fn engine_accounting(&self, out: &mut Vec<(EngineStats, usize)>) {
        out.push((self.engine.stats, 1 + self.dimms.len()));
    }
}

impl Instrumented for McnSystem {
    /// The server's whole counter tree, rooted at this scope: `host.*`
    /// (CPU, memory channels, stack + TCP), `driver.*` (the host-side MCN
    /// driver), `dimm{M}.*` per DIMM, `engine.*` scheduler work and the
    /// current clock as `now_ps` — so a snapshot diff carries elapsed
    /// simulated time alongside the counters. A rack absorbs this same
    /// tree under `srv{N}`, which is what keeps paths stable across
    /// standalone and embedded use.
    fn metrics(&self, out: &mut MetricSink) {
        out.counter("now_ps", self.now.as_ps());
        out.absorb("host", &self.host);
        out.absorb("driver", &self.hdrv);
        for (d, dimm) in self.dimms.iter().enumerate() {
            out.absorb(&format!("dimm{d}"), dimm);
        }
        out.absorb("engine", &self.engine.stats);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use mcn_sim::ComponentExt;

    fn mk(n_dimms: usize, level: u32) -> McnSystem {
        McnSystem::new(&SystemConfig::default(), n_dimms, McnConfig::level(level))
    }

    #[test]
    fn builds_with_paper_addressing() {
        let sys = mk(4, 0);
        assert_eq!(sys.dimms(), 4);
        assert_eq!(McnSystem::host_if_ip(0), Ipv4Addr::new(10, 1, 0, 1));
        assert_eq!(sys.dimm_ip(3), Ipv4Addr::new(10, 4, 0, 2));
        // DIMMs spread across 2 host channels.
        assert_eq!(sys.dimm(0).channel(), 0);
        assert_eq!(sys.dimm(1).channel(), 1);
        assert_eq!(sys.dimm(2).channel(), 0);
    }

    #[test]
    fn host_to_dimm_udp_roundtrip() {
        // The full path: host app → stack → port driver → memcpy_to_mcn →
        // SRAM → DIMM IRQ → DIMM driver → DIMM stack → (UDP echo app would
        // reply; here we check one-way delivery) — all at mcn0.
        let mut sys = mk(1, 0);
        let dimm_ip = sys.dimm_ip(0);
        let us = sys.host.stack.udp_bind(5000).unwrap();
        let ud = sys.dimm_mut(0).node.stack.udp_bind(6000).unwrap();
        sys.host
            .stack
            .udp_send(us, dimm_ip, 6000, Bytes::from(vec![9u8; 1000]), SimTime::ZERO)
            .unwrap();
        sys.run_until(SimTime::from_us(200));
        let (src, sport, data) = sys
            .dimm_mut(0)
            .node
            .stack
            .udp_recv(ud)
            .expect("datagram crossed the memory channel");
        assert_eq!(src, Ipv4Addr::new(10, 1, 0, 1));
        assert_eq!(sport, 5000);
        assert_eq!(data.len(), 1000);
        assert_eq!(sys.hdrv.stats.tx_frames.get(), 1);
        assert_eq!(sys.dimm(0).stats.rx_frames.get(), 1);
    }

    #[test]
    fn dimm_to_host_udp_with_polling() {
        let mut sys = mk(1, 0);
        let uh = sys.host.stack.udp_bind(5000).unwrap();
        let ud = sys.dimm_mut(0).node.stack.udp_bind(6000).unwrap();
        let host_ip = McnSystem::host_if_ip(0);
        sys.dimm_mut(0)
            .node
            .stack
            .udp_send(ud, host_ip, 5000, Bytes::from(vec![3u8; 500]), SimTime::ZERO)
            .unwrap();
        sys.run_until(SimTime::from_us(200));
        let (src, _, data) = sys.host.stack.udp_recv(uh).expect("delivered via polling");
        assert_eq!(src, sys.dimm_ip(0));
        assert_eq!(data.len(), 500);
        assert!(sys.hdrv.stats.polls.get() > 0, "mcn0 must poll");
        assert_eq!(sys.hdrv.stats.alerts.get(), 0);
        assert_eq!(sys.hdrv.stats.f1_host.get(), 1);
    }

    #[test]
    fn dimm_to_host_with_alert_interrupt() {
        let mut sys = mk(1, 1);
        let uh = sys.host.stack.udp_bind(5000).unwrap();
        let ud = sys.dimm_mut(0).node.stack.udp_bind(6000).unwrap();
        sys.dimm_mut(0)
            .node
            .stack
            .udp_send(
                ud,
                McnSystem::host_if_ip(0),
                5000,
                Bytes::from(vec![4u8; 500]),
                SimTime::ZERO,
            )
            .unwrap();
        sys.run_until(SimTime::from_us(200));
        assert!(sys.host.stack.udp_recv(uh).is_some());
        assert_eq!(sys.hdrv.stats.polls.get(), 0, "mcn1 must not poll");
        assert!(sys.hdrv.stats.alerts.get() > 0);
    }

    #[test]
    fn dimm_to_dimm_forwarded_by_host_f3() {
        let mut sys = mk(2, 1);
        let u1 = sys.dimm_mut(1).node.stack.udp_bind(7000).unwrap();
        let u0 = sys.dimm_mut(0).node.stack.udp_bind(6000).unwrap();
        let dimm1_ip = sys.dimm_ip(1);
        sys.dimm_mut(0)
            .node
            .stack
            .udp_send(u0, dimm1_ip, 7000, Bytes::from(vec![5u8; 800]), SimTime::ZERO)
            .unwrap();
        sys.run_until(SimTime::from_us(500));
        let (src, _, data) = sys
            .dimm_mut(1)
            .node
            .stack
            .udp_recv(u1)
            .expect("mcn-mcn via host forwarding engine");
        assert_eq!(src, sys.dimm_ip(0));
        assert_eq!(data.len(), 800);
        assert_eq!(sys.hdrv.stats.f3_forward.get(), 1);
        assert_eq!(sys.hdrv.stats.f1_host.get(), 0);
    }

    #[test]
    fn host_dimm_ping_rtt_is_microseconds() {
        let mut sys = mk(1, 0);
        let dimm_ip = sys.dimm_ip(0);
        sys.host
            .stack
            .send_ping(dimm_ip, 7, 1, Bytes::from(vec![0u8; 56]), SimTime::ZERO)
            .unwrap();
        sys.run_until(SimTime::from_ms(1));
        let (from, ident, seq, len) = sys
            .host
            .stack
            .pop_ping_reply()
            .expect("echo reply should return");
        assert_eq!((from, ident, seq, len), (dimm_ip, 7, 1, 56));
    }

    #[test]
    fn tcp_across_the_memory_channel() {
        let mut sys = mk(1, 3);
        let dimm_ip = sys.dimm_ip(0);
        let lst = sys.dimm_mut(0).node.stack.tcp_listen(5001).unwrap();
        let cs = sys
            .host
            .stack
            .tcp_connect(dimm_ip, 5001, SimTime::ZERO)
            .unwrap();
        sys.run_until(SimTime::from_ms(1));
        assert_eq!(
            sys.host.stack.tcp_state(cs),
            mcn_net::tcp::TcpState::Established
        );
        let ss = sys.dimm_mut(0).node.stack.tcp_accept(lst).unwrap();
        // Move 256 KB host → DIMM.
        let data: Vec<u8> = (0..256 * 1024u32).map(|i| (i % 251) as u8).collect();
        let mut sent = 0;
        let mut got = Vec::new();
        let mut buf = vec![0u8; 65536];
        let mut guard = 0;
        while got.len() < data.len() {
            let now = sys.now();
            if sent < data.len() {
                sent += sys.host.stack.tcp_send(cs, &data[sent..], now).unwrap();
            }
            let next = sys.now() + SimTime::from_us(50);
            sys.run_until(next);
            loop {
                let now = sys.now();
                let n = sys
                    .dimm_mut(0)
                    .node
                    .stack
                    .tcp_recv(ss, &mut buf, now)
                    .unwrap();
                if n == 0 {
                    break;
                }
                got.extend_from_slice(&buf[..n]);
            }
            guard += 1;
            assert!(
                guard < 20_000,
                "transfer stalled at {} bytes\n{}",
                got.len(),
                sys.stall_report("tcp transfer stalled")
            );
        }
        assert_eq!(got, data, "byte-exact delivery over the memory channel");
    }

    #[test]
    fn dropped_alerts_recovered_by_fallback_poller() {
        use mcn_sim::fault::{FaultKind, FaultPlan};
        // Every ALERT_N edge is lost; without the fallback poller the TX
        // ring data would sit forever (mcn1 has no HR-timer poller).
        let mut plan = FaultPlan::new(17);
        plan.rate(
            &McnSystem::alert_fault_component(0),
            FaultKind::Drop,
            1.0,
        );
        let mut sys = McnSystem::with_faults(
            &SystemConfig::default(),
            1,
            McnConfig::level(1),
            &plan,
        );
        let uh = sys.host.stack.udp_bind(5000).unwrap();
        let ud = sys.dimm_mut(0).node.stack.udp_bind(6000).unwrap();
        sys.dimm_mut(0)
            .node
            .stack
            .udp_send(
                ud,
                McnSystem::host_if_ip(0),
                5000,
                Bytes::from(vec![4u8; 500]),
                SimTime::ZERO,
            )
            .unwrap();
        sys.run_until(SimTime::from_us(500));
        assert!(
            sys.host.stack.udp_recv(uh).is_some(),
            "fallback poller must deliver despite 100% alert loss\n{}",
            sys.stall_report("alert-drop recovery failed")
        );
        assert!(sys.hdrv.stats.alerts_dropped.get() > 0);
        assert!(sys.hdrv.stats.fallback_polls.get() > 0);
        assert!(sys.hdrv.stats.alert_recoveries.get() > 0);
        assert_eq!(sys.hdrv.stats.alerts.get(), 0, "all edges were dropped");
        assert_eq!(sys.hdrv.stats.polls.get(), 0, "mcn1 HR-timer stays off");
    }

    #[test]
    fn fault_free_alert_runs_never_arm_the_fallback_poller() {
        let mut sys = mk(1, 1);
        sys.run_until(SimTime::from_ms(1));
        assert_eq!(sys.hdrv.stats.fallback_polls.get(), 0);
    }

    #[test]
    fn dma_stalls_retry_then_degrade_to_cpu_copy() {
        use mcn_sim::fault::{FaultKind, FaultPlan};
        // Every DMA descriptor stalls: each transfer burns its full retry
        // budget and completes via the CPU-copy path instead of hanging.
        let mut plan = FaultPlan::new(23);
        plan.rate(&McnSystem::dma_fault_component(0), FaultKind::Stall, 1.0);
        let mut sys = McnSystem::with_faults(
            &SystemConfig::default(),
            1,
            McnConfig::level(5),
            &plan,
        );
        let dimm_ip = sys.dimm_ip(0);
        let ud = sys.dimm_mut(0).node.stack.udp_bind(6000).unwrap();
        sys.host.stack.udp_bind(5000).unwrap();
        let us = sys.host.stack.udp_bind(5001).unwrap();
        sys.host
            .stack
            .udp_send(us, dimm_ip, 6000, Bytes::from(vec![9u8; 1000]), SimTime::ZERO)
            .unwrap();
        sys.run_until(SimTime::from_ms(2));
        assert!(
            sys.dimm_mut(0).node.stack.udp_recv(ud).is_some(),
            "transfer must complete via CPU fallback\n{}",
            sys.stall_report("dma-stall recovery failed")
        );
        assert!(sys.hdrv.stats.dma_stalls.get() > 0);
        assert!(sys.hdrv.stats.dma_retries.get() > 0);
        assert!(sys.hdrv.stats.dma_fallbacks.get() > 0);
    }

    #[test]
    fn sram_faults_are_counted_and_survived() {
        use mcn_sim::fault::{FaultKind, FaultPlan};
        // Host→DIMM pushes suffer heavy loss and corruption; UDP loses
        // datagrams but the system must neither panic nor wedge, and every
        // injected fault must be accounted.
        let mut plan = FaultPlan::new(29);
        plan.rate(
            &McnSystem::sram_host_fault_component(0, 0),
            FaultKind::Drop,
            0.3,
        );
        plan.rate(
            &McnSystem::sram_host_fault_component(0, 0),
            FaultKind::BitFlip,
            0.3,
        );
        let mut sys = McnSystem::with_faults(
            &SystemConfig::default(),
            1,
            McnConfig::level(0),
            &plan,
        );
        let dimm_ip = sys.dimm_ip(0);
        sys.dimm_mut(0).node.stack.udp_bind(6000).unwrap();
        let us = sys.host.stack.udp_bind(5000).unwrap();
        for i in 0..40 {
            let now = sys.now();
            sys.host
                .stack
                .udp_send(us, dimm_ip, 6000, Bytes::from(vec![i as u8; 600]), now)
                .unwrap();
            sys.run_until(now + SimTime::from_us(50));
        }
        let dropped = sys.hdrv.stats.frames_dropped.get();
        let flipped = sys.hdrv.stats.ecc_escapes.get();
        assert!(dropped > 0, "expected injected drops");
        assert!(flipped > 0, "expected injected bit flips");
        // Conservation: every accepted frame was pushed or counted dropped.
        assert_eq!(sys.hdrv.stats.tx_frames.get() + dropped, 40);
    }

    #[test]
    fn stall_report_names_the_blockage() {
        let mut sys = mk(1, 0);
        let _l = sys.dimm_mut(0).node.stack.tcp_listen(5001).unwrap();
        let _c = sys
            .host
            .stack
            .tcp_connect(sys.dimm_ip(0), 5001, SimTime::ZERO)
            .unwrap();
        sys.run_until(SimTime::from_us(100));
        let report = sys.stall_report("probe").to_string();
        assert!(report.contains("probe"), "{report}");
        assert!(report.contains("host sockets"), "{report}");
        assert!(report.contains("tcp"), "{report}");
        assert!(report.contains("rings"), "{report}");
    }

    #[test]
    fn crash_and_power_on_walks_the_reinit_handshake() {
        let mut sys = mk(1, 1);
        let dimm_ip = sys.dimm_ip(0);
        let uh = sys.host.stack.udp_bind(5000).unwrap();
        let ud = sys.dimm_mut(0).node.stack.udp_bind(6000).unwrap();
        let us = sys.host.stack.udp_bind(5001).unwrap();
        // Healthy round trip first.
        sys.dimm_mut(0)
            .node
            .stack
            .udp_send(
                ud,
                McnSystem::host_if_ip(0),
                5000,
                Bytes::from(vec![1u8; 300]),
                SimTime::ZERO,
            )
            .unwrap();
        sys.run_until(SimTime::from_us(200));
        assert!(sys.host.stack.udp_recv(uh).is_some());

        let t = sys.now();
        sys.crash_dimm(0, t);
        assert!(!sys.dimm(0).alive());
        assert!(!sys.hdrv.port_is_up(0));
        assert_eq!(sys.hdrv.stats.port_downs.get(), 1);
        // Traffic into the dead port is dropped at the host link, not hung.
        sys.host
            .stack
            .udp_send(us, dimm_ip, 6000, Bytes::from(vec![2u8; 300]), sys.now())
            .unwrap();
        let t2 = sys.now() + SimTime::from_us(100);
        sys.run_until(t2);
        assert!(sys.host.stack.stats.link_drops.get() > 0);
        assert!(sys.hdrv.stats.probes_sent.get() >= 1, "probing started");
        assert!(sys.hdrv.stats.probe_retries.get() >= 1, "device still dead");

        // Power back on inside the probe budget: the handshake completes.
        let t3 = sys.now();
        sys.power_on_dimm(0, t3);
        sys.run_until(t3 + SimTime::from_ms(3));
        assert!(sys.hdrv.port_is_up(0), "handshake must bring the port up");
        assert!(sys.dimm(0).alive());
        assert_eq!(sys.dimm(0).stats.crashes.get(), 1);
        assert_eq!(sys.dimm(0).stats.reboots.get(), 1);
        assert_eq!(sys.hdrv.stats.ring_resets.get(), 1);
        assert_eq!(sys.hdrv.stats.mac_announces.get(), 1);
        assert_eq!(sys.hdrv.stats.reinits_completed.get(), 1);
        assert_eq!(sys.hdrv.stats.reinit_failures.get(), 0);

        // Traffic flows again in both directions.
        let t4 = sys.now();
        sys.host
            .stack
            .udp_send(us, dimm_ip, 6000, Bytes::from(vec![3u8; 300]), t4)
            .unwrap();
        sys.dimm_mut(0)
            .node
            .stack
            .udp_send(
                ud,
                McnSystem::host_if_ip(0),
                5000,
                Bytes::from(vec![4u8; 300]),
                t4,
            )
            .unwrap();
        sys.run_until(t4 + SimTime::from_ms(1));
        assert!(sys.dimm_mut(0).node.stack.udp_recv(ud).is_some());
        assert!(sys.host.stack.udp_recv(uh).is_some());
    }

    #[test]
    fn outage_longer_than_probe_budget_parks_then_recovers_on_power_on() {
        let sys_cfg = SystemConfig {
            reinit_max_probes: 3,
            ..SystemConfig::default()
        };
        let mut sys = McnSystem::new(&sys_cfg, 1, McnConfig::level(1));
        sys.run_until(SimTime::from_us(10));
        let t = sys.now();
        sys.crash_dimm(0, t);
        // Budget: 10 + 20 + 40 µs of probes, all failing.
        sys.run_until(t + SimTime::from_ms(1));
        assert_eq!(sys.hdrv.stats.reinit_failures.get(), 1);
        assert!(!sys.hdrv.port_is_up(0));
        assert_eq!(sys.hdrv.stats.probes_sent.get(), 3);
        // A later power-on restarts the handshake from scratch.
        let t2 = sys.now();
        sys.power_on_dimm(0, t2);
        sys.run_until(t2 + SimTime::from_ms(1));
        assert!(sys.hdrv.port_is_up(0));
        assert_eq!(sys.hdrv.stats.reinits_completed.get(), 1);
    }

    #[test]
    fn outage_plan_schedules_crash_and_reboot() {
        use mcn_sim::OutagePlan;
        let mut plan = OutagePlan::new(7);
        plan.at(
            &McnSystem::dimm_outage_component(0, 0),
            SimTime::from_us(50),
            mcn_sim::OutageKind::DimmCrash {
                down_for: SimTime::from_us(200),
            },
        );
        let mut sys = mk(1, 1);
        sys.set_outage_plan(&plan);
        sys.run_until(SimTime::from_us(100));
        assert!(!sys.dimm(0).alive(), "crash fires at 50us");
        sys.run_until(SimTime::from_ms(5));
        assert!(sys.dimm(0).alive(), "reboot fires at 250us");
        assert!(sys.hdrv.port_is_up(0), "handshake heals the port");
        assert_eq!(sys.dimm(0).stats.crashes.get(), 1);
        assert_eq!(sys.dimm(0).stats.reboots.get(), 1);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut sys = mk(2, 0);
            let ud = sys.dimm_mut(0).node.stack.udp_bind(6000).unwrap();
            let _uh = sys.host.stack.udp_bind(5000).unwrap();
            sys.dimm_mut(0)
                .node
                .stack
                .udp_send(
                    ud,
                    McnSystem::host_if_ip(0),
                    5000,
                    Bytes::from(vec![1u8; 1200]),
                    SimTime::ZERO,
                )
                .unwrap();
            sys.run_until(SimTime::from_us(300));
            (
                sys.hdrv.stats.polls.get(),
                sys.host.cpus.total_busy(),
                sys.host.mem.total_bytes(),
            )
        };
        assert_eq!(run(), run());
    }
}
