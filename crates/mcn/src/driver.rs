//! Host-side MCN driver state: ports, polling agents, the forwarding
//! engine's classification, and the memory-mapping unit's address math.
//!
//! The *logic* that moves packets runs in [`crate::system::McnSystem`]
//! (it needs simultaneous access to the host node, the DIMMs and this
//! state); this module owns the data and the pure decision functions so
//! they are unit-testable in isolation.

use std::collections::{HashMap, VecDeque};
use std::net::Ipv4Addr;

use mcn_net::{EthernetFrame, MacAddr};
use mcn_node::WaiterId;
use mcn_sim::metrics::{Instrumented, MetricSink};
use mcn_sim::stats::{Counter, Histogram};
use mcn_sim::SimTime;

/// Waiter id for host-side driver jobs on the host memory system.
pub const HOST_DRV_WAITER: WaiterId = 1 << 41;

/// Host physical region where the MCN SRAM windows are mapped (reserved at
/// "boot" via the device tree, paper Sec. II-A: `reserved_memory`).
pub const SRAM_REGION_BASE: u64 = 3 << 30;
/// Size of each DIMM's strided SRAM window.
pub const SRAM_WINDOW_SPAN: u64 = 32 << 20;

/// Where the host-side driver decides to send a packet read from an SRAM
/// TX ring — the paper's forwarding cases F1–F4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForwardClass {
    /// F1: destination MAC matches the receiving host-side interface.
    Host,
    /// F3: destination MAC matches another MCN-side interface.
    Dimm(usize),
    /// F2: broadcast — host plus every other DIMM.
    Broadcast,
    /// F4: neither — out the conventional NIC.
    External,
}

/// The memory-mapping unit's address math (paper Fig. 6): the host sees
/// DIMM `d`'s SRAM as a window whose consecutive 64-byte lines are strided
/// by `64 × channels` so that every line lands on the DIMM's channel.
///
/// Returns `(base, stride)` for `memcpy_to_mcn`/`memcpy_from_mcn` patterns.
pub fn sram_window(dimm: usize, dimm_channel: u32, host_channels: u32) -> (u64, u64) {
    let raw = SRAM_REGION_BASE + dimm as u64 * SRAM_WINDOW_SPAN;
    // Align the base onto the DIMM's channel under line interleaving.
    let line = raw / 64;
    let misalign = (dimm_channel as u64 + host_channels as u64
        - (line % host_channels as u64))
        % host_channels as u64;
    (raw + misalign * 64, 64 * host_channels as u64)
}

/// Classifies a frame pulled from DIMM `src`'s TX ring (steps R3–R4).
pub fn classify(
    frame: &EthernetFrame,
    host_macs: &[MacAddr],
    dimm_macs: &[MacAddr],
) -> ForwardClass {
    if frame.dst.is_broadcast() {
        return ForwardClass::Broadcast;
    }
    if host_macs.contains(&frame.dst) {
        return ForwardClass::Host;
    }
    if let Some(i) = dimm_macs.iter().position(|m| *m == frame.dst) {
        return ForwardClass::Dimm(i);
    }
    ForwardClass::External
}

/// Link lifecycle of a host-side port, driven by the re-init handshake in
/// the system layer. Normal operation is `Up`; a DIMM crash moves the port
/// to `Down`, and power-on walks it back up through the handshake:
///
/// `Down` → `Probe` (read the SRAM control words until the device answers)
/// → `RingReset` (zero both rings' indices and poll flags) → `MacAnnounce`
/// (re-announce the host-side MAC/IP pairing to the forwarding tables) →
/// `Up`. A probe against a still-dead device retries with bounded
/// exponential backoff; exhausting the budget parks the port in `Down`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortLink {
    /// Normal operation.
    Up,
    /// The peer DIMM is dead (or the handshake gave up); no traffic moves.
    Down,
    /// Probing the powered-on device, on the given attempt (0-based).
    Probe {
        /// Probe attempt number (0-based).
        attempt: u32,
    },
    /// Device answered; resetting ring indices and poll flags.
    RingReset,
    /// Rings clean; re-announcing the interface MAC before going up.
    MacAnnounce,
}

/// Per-DIMM host-side state: the virtual Ethernet interface ("host-side
/// interface") and its transmit/receive machinery.
#[derive(Debug)]
pub struct Port {
    /// Interface index on the host stack.
    pub ifidx: usize,
    /// The DIMM this port talks to.
    pub dimm: usize,
    /// Host memory channel the DIMM is on.
    pub channel: u32,
    /// Host core that runs this port's transmit work.
    pub core: usize,
    /// MAC of the host-side interface.
    pub mac: MacAddr,
    /// IP of the host-side interface.
    pub ip: Ipv4Addr,
    /// Frames awaiting transmission into the DIMM's RX ring.
    pub tx_queue: VecDeque<EthernetFrame>,
    /// A TX copy is in flight (ring pushes are serialized per DIMM).
    pub tx_busy: bool,
    /// An RX copy is in flight.
    pub rx_busy: bool,
    /// SRAM window base for this DIMM.
    pub sram_base: u64,
    /// SRAM window stride.
    pub sram_stride: u64,
    /// Link lifecycle state (see [`PortLink`]).
    pub link: PortLink,
}

/// Host-side driver job bookkeeping.
#[derive(Debug)]
pub enum HostOp {
    /// Uncached read of a DIMM's `tx-poll` word (one line).
    PollCheck {
        /// Port being checked.
        port: usize,
        /// Issued by the watchdog fallback poller (covering for dropped
        /// ALERT_N edges) rather than the HR-timer/interrupt path.
        via_fallback: bool,
    },
    /// `memcpy_from_mcn` of the TX ring contents.
    RxCopy {
        /// Port being drained.
        port: usize,
        /// Copy start time (for the core-blocking charge and Table III).
        started: SimTime,
    },
    /// `memcpy_to_mcn` of one frame into the DIMM's RX ring.
    TxCopy {
        /// Destination port.
        port: usize,
        /// The frame (applied functionally at completion).
        frame: EthernetFrame,
        /// Copy start time.
        started: SimTime,
    },
}

/// Aggregate host-side driver statistics (the `table3`/`fig8` harnesses
/// read the histograms).
#[derive(Debug, Default)]
pub struct HostDriverStats {
    /// Frames copied into DIMM RX rings.
    pub tx_frames: Counter,
    /// Frames read out of DIMM TX rings.
    pub rx_frames: Counter,
    /// F1 deliveries to the host stack.
    pub f1_host: Counter,
    /// F2 broadcasts.
    pub f2_broadcast: Counter,
    /// F3 DIMM-to-DIMM forwards.
    pub f3_forward: Counter,
    /// F4 external (conventional NIC) forwards.
    pub f4_external: Counter,
    /// HR-timer poll rounds.
    pub polls: Counter,
    /// ALERT_N interrupts taken.
    pub alerts: Counter,
    /// Transmissions deferred on a full DIMM RX ring.
    pub tx_busy_events: Counter,
    /// Driver transmit time per frame (driver entry → data in SRAM).
    pub driver_tx: Histogram,
    /// Driver receive time per frame (poll/alert hit → delivered).
    pub driver_rx: Histogram,

    // --- fault-injection and recovery accounting -----------------------
    /// Injected SRAM bit flips that slipped past ECC into ring words
    /// (quantifies the checksum-bypass exposure at `mcn2+`).
    pub ecc_escapes: Counter,
    /// Injected frame drops on the SRAM push path.
    pub frames_dropped: Counter,
    /// Injected ALERT_N interrupt drops.
    pub alerts_dropped: Counter,
    /// Injected ALERT_N delivery delays.
    pub alerts_delayed: Counter,
    /// Injected MCN-DMA descriptor stalls.
    pub dma_stalls: Counter,
    /// Fallback-poller rounds (armed only when ALERT_N faults are active;
    /// separate from `polls` so interrupt-mode baselines stay zero-poll).
    pub fallback_polls: Counter,
    /// Pending TX work discovered by the fallback poller after a dropped
    /// ALERT_N (each is a hang averted).
    pub alert_recoveries: Counter,
    /// Stalled DMA transfers re-issued by the watchdog.
    pub dma_retries: Counter,
    /// Stalled DMA transfers that exhausted retries and degraded to the
    /// CPU-copy (`memcpy_to_mcn`/`from_mcn`) path for that transfer.
    pub dma_fallbacks: Counter,
    /// Undecodable messages popped from SRAM TX rings and dropped.
    pub malformed: Counter,
    /// Frames dropped because a ring filled despite the space pre-check
    /// (only possible under fault injection).
    pub ring_full_drops: Counter,
    /// Memory-system completions for jobs the driver no longer tracks.
    pub unknown_jobs: Counter,

    // --- crash / re-init handshake accounting --------------------------
    /// Ports taken down by a DIMM crash or link outage.
    pub port_downs: Counter,
    /// Probe reads issued against a (re)powered device.
    pub probes_sent: Counter,
    /// Probes that found the device still dead and backed off.
    pub probe_retries: Counter,
    /// Ring-reset steps completed (indices and poll flags re-zeroed).
    pub ring_resets: Counter,
    /// MAC re-announce steps completed.
    pub mac_announces: Counter,
    /// Re-init handshakes that completed and brought a port back up.
    pub reinits_completed: Counter,
    /// Re-init handshakes abandoned after the probe budget ran out.
    pub reinit_failures: Counter,
    /// Stale descriptors (pre-crash SRAM state the host still believed in)
    /// discarded instead of consumed during recovery.
    pub stale_desc_dropped: Counter,
}

impl Instrumented for HostDriverStats {
    fn metrics(&self, out: &mut MetricSink) {
        out.counter("tx_frames", self.tx_frames.get());
        out.counter("rx_frames", self.rx_frames.get());
        out.counter("f1_host", self.f1_host.get());
        out.counter("f2_broadcast", self.f2_broadcast.get());
        out.counter("f3_forward", self.f3_forward.get());
        out.counter("f4_external", self.f4_external.get());
        out.counter("polls", self.polls.get());
        out.counter("alerts", self.alerts.get());
        out.counter("tx_busy_events", self.tx_busy_events.get());
        out.histogram("driver_tx", &self.driver_tx);
        out.histogram("driver_rx", &self.driver_rx);
        out.counter("ecc_escapes", self.ecc_escapes.get());
        out.counter("frames_dropped", self.frames_dropped.get());
        out.counter("alerts_dropped", self.alerts_dropped.get());
        out.counter("alerts_delayed", self.alerts_delayed.get());
        out.counter("dma_stalls", self.dma_stalls.get());
        out.counter("fallback_polls", self.fallback_polls.get());
        out.counter("alert_recoveries", self.alert_recoveries.get());
        out.counter("dma_retries", self.dma_retries.get());
        out.counter("dma_fallbacks", self.dma_fallbacks.get());
        out.counter("malformed", self.malformed.get());
        out.counter("ring_full_drops", self.ring_full_drops.get());
        out.counter("unknown_jobs", self.unknown_jobs.get());
        out.counter("port_downs", self.port_downs.get());
        out.counter("probes_sent", self.probes_sent.get());
        out.counter("probe_retries", self.probe_retries.get());
        out.counter("ring_resets", self.ring_resets.get());
        out.counter("mac_announces", self.mac_announces.get());
        out.counter("reinits_completed", self.reinits_completed.get());
        out.counter("reinit_failures", self.reinit_failures.get());
        out.counter("stale_desc_dropped", self.stale_desc_dropped.get());
    }
}

impl Instrumented for HostDriver {
    /// All the driver counters plus the current port link states (a gauge:
    /// `ports_up` can go down as well as up).
    fn metrics(&self, out: &mut MetricSink) {
        self.stats.metrics(out);
        out.counter("ports", self.ports.len() as u64);
        out.counter(
            "ports_up",
            (0..self.ports.len())
                .filter(|&p| self.port_is_up(p))
                .count() as u64,
        );
    }
}

/// Host-side driver state for all DIMMs.
#[derive(Debug)]
pub struct HostDriver {
    /// One port per MCN DIMM.
    pub ports: Vec<Port>,
    /// In-flight memory jobs.
    pub pending: HashMap<u64, HostOp>,
    /// Statistics.
    pub stats: HostDriverStats,
}

impl HostDriver {
    /// Creates an empty driver (ports added by the system builder).
    pub fn new() -> Self {
        HostDriver {
            ports: Vec::new(),
            pending: HashMap::new(),
            stats: HostDriverStats::default(),
        }
    }

    /// MACs of all host-side interfaces.
    pub fn host_macs(&self) -> Vec<MacAddr> {
        self.ports.iter().map(|p| p.mac).collect()
    }

    /// Debug dump: per-port (tx_busy, rx_busy, tx_queue length).
    pub fn debug_ports(&self) -> Vec<(bool, bool, usize)> {
        self.ports
            .iter()
            .map(|p| (p.tx_busy, p.rx_busy, p.tx_queue.len()))
            .collect()
    }

    /// Takes port `port` down after its DIMM crashed: queued frames are
    /// lost, busy flags clear (their in-flight jobs will complete against a
    /// down port and be discarded as stale). Returns the number of queued
    /// frames dropped. Idempotent for an already-down port.
    pub fn port_down(&mut self, port: usize) -> usize {
        let p = &mut self.ports[port];
        if p.link == PortLink::Down {
            return 0;
        }
        p.link = PortLink::Down;
        let lost = p.tx_queue.len();
        p.tx_queue.clear();
        p.tx_busy = false;
        p.rx_busy = false;
        self.stats.port_downs.inc();
        lost
    }

    /// Whether port `port` is fully up (traffic may move).
    pub fn port_is_up(&self, port: usize) -> bool {
        self.ports[port].link == PortLink::Up
    }

    /// Ports installed on `channel`.
    pub fn ports_on_channel(&self, channel: u32) -> Vec<usize> {
        self.ports
            .iter()
            .enumerate()
            .filter(|(_, p)| p.channel == channel)
            .map(|(i, _)| i)
            .collect()
    }
}

impl Default for HostDriver {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    #[test]
    fn sram_window_lands_on_the_right_channel() {
        for host_channels in [1u32, 2, 4] {
            for dimm in 0..8usize {
                let ch = dimm as u32 % host_channels;
                let (base, stride) = sram_window(dimm, ch, host_channels);
                assert_eq!(stride, 64 * host_channels as u64);
                // Every line of the window maps to channel `ch` under
                // cache-line interleaving.
                for k in 0..64u64 {
                    let addr = base + k * stride;
                    assert_eq!(
                        (addr / 64) % host_channels as u64,
                        ch as u64,
                        "dimm {dimm} line {k}"
                    );
                }
            }
        }
    }

    #[test]
    fn windows_do_not_overlap() {
        let mut spans: Vec<(u64, u64)> = Vec::new();
        for dimm in 0..8usize {
            let (base, stride) = sram_window(dimm, dimm as u32 % 2, 2);
            let end = base + (512 * 1024) * stride / 64; // generous ring size
            for (b, e) in &spans {
                assert!(end <= *b || base >= *e, "windows overlap");
            }
            spans.push((base, end));
        }
    }

    #[test]
    fn forwarding_classification_f1_to_f4() {
        let host_macs = vec![MacAddr::from_id(0x0100), MacAddr::from_id(0x0101)];
        let dimm_macs = vec![MacAddr::from_id(0x0200), MacAddr::from_id(0x0201)];
        let mk = |dst: MacAddr| {
            EthernetFrame::ipv4(dst, MacAddr::from_id(0x0200), Bytes::from_static(b""))
        };
        assert_eq!(
            classify(&mk(host_macs[1]), &host_macs, &dimm_macs),
            ForwardClass::Host
        );
        assert_eq!(
            classify(&mk(dimm_macs[1]), &host_macs, &dimm_macs),
            ForwardClass::Dimm(1)
        );
        assert_eq!(
            classify(&mk(MacAddr::BROADCAST), &host_macs, &dimm_macs),
            ForwardClass::Broadcast
        );
        assert_eq!(
            classify(&mk(MacAddr::from_id(0x0999)), &host_macs, &dimm_macs),
            ForwardClass::External
        );
    }
}
