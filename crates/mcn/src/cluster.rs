//! The conventional scale-out baseline: N nodes with 10GbE NICs connected
//! through a store-and-forward switch (paper Table II: 10GbE, 1 µs link
//! latency). Every figure's "10GbE" series comes from this system.
//!
//! Node parameters mirror the host of Table II (8 cores @ 3.4 GHz,
//! DDR4-3200). NICs use hardware checksum offload (standard for 10GbE
//! adapters), so the stack charges no software checksum time; wire
//! integrity is the Ethernet FCS, checked by the receiving MAC.
//!
//! Like [`crate::McnRack`], the cluster runs on the quantum-synchronized
//! scheduler in [`mcn_sim::shard`]: each node block (node + NIC + links)
//! is one shard, the switch routes at barriers, and
//! [`run_parallel`](EthernetCluster::run_parallel) with any thread count
//! reproduces the single-threaded results byte for byte.

use std::net::Ipv4Addr;

use mcn_net::link::{Link, Switch};
use mcn_net::tcp::TcpConfig;
use mcn_net::{EthernetFrame, MacAddr, NetConfig};
use mcn_node::nic::{Nic, NicConfig, NIC_WAITER};
use mcn_node::{CostModel, MemorySystem, Node, ProcId, Process};
use mcn_sim::metrics::{Instrumented, MetricSink};
use mcn_sim::{
    Activity, Component, EngineStats, Fabric, ParallelEngine, Quantum, RunGoal, RunReport, Shard,
    SimTime, StallReport, Wakeup,
};

use crate::block::{route_switched, Endpoint, EndpointBlock, OpenSwitch};
use crate::config::SystemConfig;

/// One baseline node: a host-class machine plus its NIC.
#[derive(Debug)]
pub struct ClusterNode {
    /// The machine.
    pub node: Node,
    /// Its 10GbE NIC.
    pub nic: Nic,
}

/// The cluster issues no control commands; its shards only exchange
/// frames.
#[derive(Debug)]
pub(crate) enum NoCmd {}

impl Endpoint for ClusterNode {
    type Cmd = NoCmd;

    fn wire(&mut self) -> (&mut Nic, &mut MemorySystem) {
        (&mut self.nic, &mut self.node.mem)
    }

    fn nic(&self) -> &Nic {
        &self.nic
    }

    fn advance_pre(&mut self, t: SimTime) -> bool {
        // Memory completions → NIC DMA bookkeeping.
        let mut changed = false;
        for (waiter, job) in self.node.advance_mem(t) {
            debug_assert_eq!(waiter, NIC_WAITER);
            self.nic
                .on_job_done(job, t, &mut self.node.cpus, &self.node.cost, false);
            changed = true;
        }
        changed
    }

    fn advance_post(&mut self, t: SimTime) -> bool {
        // Stack timers, processes, outbound frames.
        self.node.service_stack(t);
        let mut changed = self.node.run_procs(t);
        while let Some(frame) = self.node.stack.poll_output(0) {
            // TX protocol processing (checksum offloaded), then the
            // driver handoff.
            let proto = mcn_node::nic::tx_protocol_cost(&self.node.cost, &frame, false);
            let core = self.node.cpus.least_loaded();
            let (_, end) = self.node.cpus.run_on(core, t, proto);
            self.nic
                .xmit(frame, end, core, &mut self.node.cpus, &self.node.cost);
            changed = true;
        }
        changed
    }

    fn rx(&mut self, frame: EthernetFrame, t: SimTime) {
        self.node.stack.on_frame(0, frame, t);
        self.node.drain_stack_events();
    }

    fn next_wakeup(&mut self) -> Option<SimTime> {
        self.node.next_wakeup()
    }

    fn apply(&mut self, _at: SimTime, cmd: NoCmd, _link_up: &mut bool) {
        match cmd {}
    }

    fn procs_done(&self) -> bool {
        self.node.runner.all_done()
    }

    fn stall_panic(&self, t: SimTime) -> String {
        format!("node block did not converge at {t}")
    }
}

/// One shard of the cluster: a node behind the shared wire pipeline.
type NodeBlock = EndpointBlock<ClusterNode>;

/// The coordinator-side boundary for the cluster: just the switch, with
/// no admission restrictions.
struct ClusterFabric<'a> {
    switch: &'a mut Switch,
}

impl Fabric<NodeBlock> for ClusterFabric<'_> {
    fn next_control(&mut self) -> Option<SimTime> {
        None
    }

    fn pop_controls(&mut self, _now: SimTime, _out: &mut Vec<(usize, SimTime, NoCmd)>) {}

    fn route(
        &mut self,
        from: usize,
        at: SimTime,
        frame: EthernetFrame,
        out: &mut Vec<(usize, SimTime, EthernetFrame)>,
    ) {
        route_switched(self.switch, &mut OpenSwitch, from, at, frame, out);
    }
}

/// The 10GbE scale-out cluster; drive like [`crate::McnSystem`].
///
/// Shard `i` of the windowed scheduler is the whole per-node block: the
/// node, its NIC, and its up/down links.
#[derive(Debug)]
pub struct EthernetCluster {
    now: SimTime,
    blocks: Vec<NodeBlock>,
    switch: Switch,
    /// The quantum-synchronized scheduler (serial = 1 thread).
    sched: ParallelEngine,
}

impl EthernetCluster {
    /// Builds a cluster of `n` Table-II-class nodes on one switch.
    pub fn new(sys: &SystemConfig, n: usize) -> Self {
        Self::with_cores(sys, n, sys.host_cores)
    }

    /// Builds a cluster whose nodes have `cores` cores each (the Fig. 11
    /// scale-up baseline uses a single node with 4–16 cores).
    pub fn with_cores(sys: &SystemConfig, n: usize, cores: usize) -> Self {
        let mut nodes = Vec::new();
        for i in 0..n {
            let mut node = Node::new(
                cores,
                CostModel::host(),
                &sys.host_dram,
                sys.host_channels,
                TcpConfig::default(),
            );
            let mac = MacAddr::from_id(0x0300 + i as u16);
            let ip = Self::ip_of(i);
            node.stack.add_interface(NetConfig {
                mac,
                ip,
                mtu: mcn_net::MTU_ETHERNET,
                // Hardware checksum offload: no CPU checksum charges, no
                // software verification; FCS covers the wire.
                tx_checksum: false,
                rx_checksum: false,
                tso: false,
            });
            node.stack.add_route(
                Ipv4Addr::new(10, 0, 0, 0),
                Ipv4Addr::new(255, 255, 255, 0),
                0,
                None,
            );
            nodes.push(ClusterNode {
                node,
                nic: Nic::new(NicConfig::default()),
            });
        }
        // Static neighbor tables (ARP substitute): everyone knows everyone.
        for (i, node) in nodes.iter_mut().enumerate() {
            for j in 0..n {
                if i != j {
                    let (ip, mac) = (Self::ip_of(j), MacAddr::from_id(0x0300 + j as u16));
                    node.node.stack.add_neighbor(ip, mac);
                }
            }
        }
        let mk_link = || Link::new(sys.eth_bytes_per_sec, sys.eth_latency);
        let switch = Switch::new(n.max(1));
        let quantum = Quantum::from_path(switch.forward_latency, sys.eth_latency);
        EthernetCluster {
            now: SimTime::ZERO,
            switch,
            blocks: nodes
                .into_iter()
                .map(|cn| EndpointBlock::new(cn, mk_link(), mk_link()))
                .collect(),
            sched: ParallelEngine::new(quantum),
        }
    }

    /// Enables frame loss/corruption on node `i`'s uplink (failure
    /// injection for TCP-recovery tests).
    pub fn impair_uplink(&mut self, i: usize, drop: f64, corrupt: f64, seed: u64) {
        self.blocks[i].up =
            Link::new(1.25e9, SimTime::from_us(1)).with_impairments(drop, corrupt, seed);
    }

    /// The uplink (node `i` → switch), e.g. to read impairment counters.
    pub fn uplink(&self, i: usize) -> &Link {
        &self.blocks[i].up
    }

    /// IP of node `i` (`10.0.0.(i+1)`).
    pub fn ip_of(i: usize) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, (i + 1) as u8)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// True for an empty cluster.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Access node `i`.
    pub fn node(&self, i: usize) -> &ClusterNode {
        &self.blocks[i].ep
    }

    /// Mutable access to node `i` (e.g. to bind sockets or spawn work;
    /// the scheduler re-queries every block's deadline each window).
    pub fn node_mut(&mut self, i: usize) -> &mut ClusterNode {
        &mut self.blocks[i].ep
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The synchronization quantum the scheduler derived from the
    /// switch + downlink latency.
    pub fn quantum(&self) -> Quantum {
        self.sched.quantum()
    }

    /// Spawns a process on a core of node `i`.
    pub fn spawn(&mut self, i: usize, proc: Box<dyn Process>, core: usize) -> ProcId {
        self.node_mut(i).node.runner.spawn(proc, core)
    }

    /// All processes on all nodes finished?
    pub fn all_procs_done(&self) -> bool {
        self.blocks.iter().all(|b| b.ep.node.runner.all_done())
    }

    /// Earliest pending activity across the node blocks.
    pub fn next_event(&mut self) -> Option<SimTime> {
        self.blocks
            .iter_mut()
            .filter_map(Shard::next_event)
            .min()
            .map(|x| x.max(self.now))
    }

    /// A structured snapshot of the cluster for stall debugging: each
    /// node's blocked processes and socket states, plus NIC/link timers.
    pub fn stall_report(&self, title: &str) -> StallReport {
        let mut r =
            StallReport::new(format!("{title} (cluster of {} @ {})", self.len(), self.now));
        for (i, b) in self.blocks.iter().enumerate() {
            for line in b.ep.node.runner.stalled_procs() {
                r.line(&format!("node{i} procs"), line);
            }
            for line in b.ep.node.stack.socket_states() {
                r.line(&format!("node{i} sockets"), line);
            }
            r.line(
                "wire",
                format!(
                    "node{i}: nic_next={:?} up_next={:?} down_next={:?}",
                    b.ep.nic.next_event(),
                    b.up.next_arrival(),
                    b.down.next_arrival()
                ),
            );
        }
        r
    }

    /// Drives the cluster with the windowed scheduler on `threads`
    /// workers.
    fn drive(&mut self, target: SimTime, goal: RunGoal, threads: usize) -> RunReport {
        let EthernetCluster { blocks, switch, now, sched } = self;
        let mut fabric = ClusterFabric { switch };
        sched.run(blocks, &mut fabric, now, target, goal, threads)
    }

    /// Runs until every process on every node finishes, or `deadline`
    /// passes (returns false). Results are byte-identical for any
    /// `threads` value.
    pub fn run_parallel(&mut self, deadline: SimTime, threads: usize) -> bool {
        self.drive(deadline, RunGoal::ProcsDone, threads).completed
    }

    /// Runs every event up to `deadline` on `threads` workers, then sets
    /// the clock to it.
    pub fn run_parallel_until(&mut self, deadline: SimTime, threads: usize) {
        self.drive(deadline, RunGoal::Deadline, threads);
    }

    /// Event-loop accounting summed over the node blocks.
    fn summed_stats(&self) -> EngineStats {
        let mut s = EngineStats::default();
        for b in &self.blocks {
            s.component_polls.add(b.stats.component_polls.get());
            s.rounds.add(b.stats.rounds.get());
            s.advances.add(b.stats.advances.get());
        }
        s
    }
}

impl Component for EthernetCluster {
    fn now(&self) -> SimTime {
        EthernetCluster::now(self)
    }
    fn next_event(&mut self) -> Option<SimTime> {
        EthernetCluster::next_event(self)
    }
    fn advance(&mut self, t: SimTime) -> Activity {
        assert!(t >= self.now, "time must not go backwards");
        let rep = self.drive(t, RunGoal::Deadline, 1);
        Activity::from_flag(rep.events > 0)
    }
    fn procs_done(&self) -> bool {
        self.all_procs_done()
    }
    fn engine_accounting(&self, out: &mut Vec<(EngineStats, usize)>) {
        out.push((self.summed_stats(), self.blocks.len()));
    }
}

impl Instrumented for EthernetCluster {
    /// The baseline cluster tree: per node `node{N}.*` (the node's
    /// cpu/mem/stack plus its NIC under `node{N}.nic.*`), per-node
    /// uplink/downlink under `link{N}.up/.down`, the switch, the summed
    /// block accounting (`engine.*`), the windowed scheduler (`sched.*`)
    /// and the clock.
    fn metrics(&self, out: &mut MetricSink) {
        out.counter("now_ps", self.now.as_ps());
        out.absorb("switch", &self.switch);
        for (i, b) in self.blocks.iter().enumerate() {
            out.scoped(&format!("node{i}"), |out| {
                b.ep.node.metrics(out);
                out.absorb("nic", &b.ep.nic);
            });
            out.scoped(&format!("link{i}"), |out| {
                out.absorb("up", &b.up);
                out.absorb("down", &b.down);
            });
        }
        out.absorb("engine", &self.summed_stats());
        out.absorb("sched", &self.sched);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use mcn_sim::{Backoff, ComponentExt};

    fn mk(n: usize) -> EthernetCluster {
        EthernetCluster::new(&SystemConfig::default(), n)
    }

    #[test]
    fn udp_between_nodes() {
        let mut c = mk(3);
        let u0 = c.node_mut(0).node.stack.udp_bind(5000).unwrap();
        let u2 = c.node_mut(2).node.stack.udp_bind(7000).unwrap();
        c.node_mut(0)
            .node
            .stack
            .udp_send(
                u0,
                EthernetCluster::ip_of(2),
                7000,
                Bytes::from(vec![8u8; 1000]),
                SimTime::ZERO,
            )
            .unwrap();
        c.run_until(SimTime::from_us(100));
        let (src, _, data) = c
            .node_mut(2)
            .node
            .stack
            .udp_recv(u2)
            .expect("datagram crossed the switch");
        assert_eq!(src, EthernetCluster::ip_of(0));
        assert_eq!(data.len(), 1000);
    }

    #[test]
    fn ping_rtt_reflects_wire_and_stack() {
        let mut c = mk(2);
        c.node_mut(0)
            .node
            .stack
            .send_ping(
                EthernetCluster::ip_of(1),
                9,
                1,
                Bytes::from(vec![0u8; 16]),
                SimTime::ZERO,
            )
            .unwrap();
        c.run_until(SimTime::from_ms(1));
        let reply = c.node_mut(0).node.stack.pop_ping_reply();
        assert!(reply.is_some(), "echo reply must arrive");
        // The RTT floor: 4 link traversals (1 us each) + switch + NIC/driver.
        // With all costs, expect tens of microseconds — well below 1 ms.
        assert!(c.now() <= SimTime::from_ms(1));
    }

    #[test]
    fn tcp_bulk_transfer_between_nodes() {
        let mut c = mk(2);
        let lst = c.node_mut(1).node.stack.tcp_listen(5001).unwrap();
        let cs = c
            .node_mut(0)
            .node
            .stack
            .tcp_connect(EthernetCluster::ip_of(1), 5001, SimTime::ZERO)
            .unwrap();
        c.run_until(SimTime::from_ms(1));
        assert_eq!(
            c.node(0).node.stack.tcp_state(cs),
            mcn_net::tcp::TcpState::Established
        );
        let ss = c.node_mut(1).node.stack.tcp_accept(lst).unwrap();
        let data: Vec<u8> = (0..128 * 1024u32).map(|i| (i % 253) as u8).collect();
        let mut sent = 0;
        let mut got = Vec::new();
        let mut buf = vec![0u8; 65536];
        // Fixed 100 µs pacing (initial == max_delay), bounded attempts.
        let mut pacing = Backoff::new(SimTime::from_us(100), SimTime::from_us(100), 10_000);
        let done = c.run_with_backoff(&mut pacing, |c| {
            let now = c.now();
            if sent < data.len() {
                sent += c
                    .node_mut(0)
                    .node
                    .stack
                    .tcp_send(cs, &data[sent..], now)
                    .unwrap();
            }
            loop {
                let now = c.now();
                let n = c
                    .node_mut(1)
                    .node
                    .stack
                    .tcp_recv(ss, &mut buf, now)
                    .unwrap();
                if n == 0 {
                    break;
                }
                got.extend_from_slice(&buf[..n]);
            }
            got.len() >= data.len()
        });
        assert!(
            done,
            "stalled at {} bytes\n{}",
            got.len(),
            c.stall_report("tcp bulk transfer stalled")
        );
        assert_eq!(got, data);
    }

    #[test]
    fn tcp_recovers_from_lossy_uplink() {
        let mut c = mk(2);
        c.impair_uplink(0, 0.05, 0.01, 99);
        let lst = c.node_mut(1).node.stack.tcp_listen(5001).unwrap();
        let cs = c
            .node_mut(0)
            .node
            .stack
            .tcp_connect(EthernetCluster::ip_of(1), 5001, SimTime::ZERO)
            .unwrap();
        c.run_until(SimTime::from_ms(5));
        // Handshake may need retries under loss: exponential backoff from
        // 1 ms to 50 ms slices, bounded attempts instead of a guard counter.
        let mut hs = Backoff::new(SimTime::from_ms(1), SimTime::from_ms(50), 100);
        let established = c.run_with_backoff(&mut hs, |c| {
            c.node(0).node.stack.tcp_state(cs) == mcn_net::tcp::TcpState::Established
        });
        assert!(
            established,
            "handshake never completed under loss\n{}",
            c.stall_report("tcp handshake stalled")
        );
        let ss = c.node_mut(1).node.stack.tcp_accept(lst).unwrap();
        let data: Vec<u8> = (0..64 * 1024u32).map(|i| (i % 249) as u8).collect();
        let mut sent = 0;
        let mut got = Vec::new();
        let mut buf = vec![0u8; 65536];
        let mut pacing = Backoff::new(SimTime::from_ms(1), SimTime::from_ms(1), 50_000);
        let done = c.run_with_backoff(&mut pacing, |c| {
            let now = c.now();
            if sent < data.len() {
                sent += c
                    .node_mut(0)
                    .node
                    .stack
                    .tcp_send(cs, &data[sent..], now)
                    .unwrap();
            }
            loop {
                let now = c.now();
                let n = c
                    .node_mut(1)
                    .node
                    .stack
                    .tcp_recv(ss, &mut buf, now)
                    .unwrap();
                if n == 0 {
                    break;
                }
                got.extend_from_slice(&buf[..n]);
            }
            got.len() >= data.len()
        });
        assert!(
            done,
            "stalled at {} bytes\n{}",
            got.len(),
            c.stall_report("lossy tcp transfer stalled")
        );
        assert_eq!(got, data, "loss and corruption must not corrupt the stream");
        assert!(
            c.node(1).nic.fcs_drops.get() > 0
                || c.node(0)
                    .node
                    .stack
                    .tcp_stats(cs)
                    .is_some_and(|s| s.retransmits > 0),
            "impairments should be visible in counters"
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut c = mk(2);
            let u0 = c.node_mut(0).node.stack.udp_bind(5000).unwrap();
            let _u1 = c.node_mut(1).node.stack.udp_bind(7000).unwrap();
            for k in 0..10 {
                let now = c.now();
                c.node_mut(0)
                    .node
                    .stack
                    .udp_send(
                        u0,
                        EthernetCluster::ip_of(1),
                        7000,
                        Bytes::from(vec![k as u8; 900]),
                        now,
                    )
                    .unwrap();
                c.run_until(c.now() + SimTime::from_us(30));
            }
            (
                c.node(0).node.cpus.total_busy(),
                c.node(1).node.cpus.total_busy(),
                c.node(1).node.mem.total_bytes(),
            )
        };
        assert_eq!(run(), run());
    }
}
