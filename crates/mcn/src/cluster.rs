//! The conventional scale-out baseline: N nodes with 10GbE NICs connected
//! through a store-and-forward switch (paper Table II: 10GbE, 1 µs link
//! latency). Every figure's "10GbE" series comes from this system.
//!
//! Node parameters mirror the host of Table II (8 cores @ 3.4 GHz,
//! DDR4-3200). NICs use hardware checksum offload (standard for 10GbE
//! adapters), so the stack charges no software checksum time; wire
//! integrity is the Ethernet FCS, checked by the receiving MAC.

use std::net::Ipv4Addr;

use mcn_net::link::{Link, Switch};
use mcn_net::tcp::TcpConfig;
use mcn_net::{MacAddr, NetConfig};
use mcn_node::nic::{Nic, NicConfig, NicEvent, NIC_WAITER};
use mcn_node::{CostModel, Node, ProcId, Process};
use mcn_sim::metrics::{Instrumented, MetricSink};
use mcn_sim::{Activity, Component, Engine, EngineStats, SimTime, StallReport, Wakeup};

use crate::config::SystemConfig;

/// One baseline node: a host-class machine plus its NIC.
#[derive(Debug)]
pub struct ClusterNode {
    /// The machine.
    pub node: Node,
    /// Its 10GbE NIC.
    pub nic: Nic,
}

/// The 10GbE scale-out cluster; drive like [`crate::McnSystem`].
///
/// Engine component `i` is the whole per-node block: the node, its NIC,
/// and its up/down links (their combined earliest deadline is one
/// wakeup-index entry).
#[derive(Debug)]
pub struct EthernetCluster {
    now: SimTime,
    nodes: Vec<ClusterNode>,
    switch: Switch,
    /// Per-node uplink (node → switch).
    up: Vec<Link>,
    /// Per-node downlink (switch → node).
    down: Vec<Link>,
    engine: Engine,
}

impl EthernetCluster {
    /// Builds a cluster of `n` Table-II-class nodes on one switch.
    pub fn new(sys: &SystemConfig, n: usize) -> Self {
        Self::with_cores(sys, n, sys.host_cores)
    }

    /// Builds a cluster whose nodes have `cores` cores each (the Fig. 11
    /// scale-up baseline uses a single node with 4–16 cores).
    pub fn with_cores(sys: &SystemConfig, n: usize, cores: usize) -> Self {
        let mut nodes = Vec::new();
        for i in 0..n {
            let mut node = Node::new(
                cores,
                CostModel::host(),
                &sys.host_dram,
                sys.host_channels,
                TcpConfig::default(),
            );
            let mac = MacAddr::from_id(0x0300 + i as u16);
            let ip = Self::ip_of(i);
            node.stack.add_interface(NetConfig {
                mac,
                ip,
                mtu: mcn_net::MTU_ETHERNET,
                // Hardware checksum offload: no CPU checksum charges, no
                // software verification; FCS covers the wire.
                tx_checksum: false,
                rx_checksum: false,
                tso: false,
            });
            node.stack.add_route(
                Ipv4Addr::new(10, 0, 0, 0),
                Ipv4Addr::new(255, 255, 255, 0),
                0,
                None,
            );
            nodes.push(ClusterNode {
                node,
                nic: Nic::new(NicConfig::default()),
            });
        }
        // Static neighbor tables (ARP substitute): everyone knows everyone.
        for (i, node) in nodes.iter_mut().enumerate() {
            for j in 0..n {
                if i != j {
                    let (ip, mac) = (Self::ip_of(j), MacAddr::from_id(0x0300 + j as u16));
                    node.node.stack.add_neighbor(ip, mac);
                }
            }
        }
        let mk_link = || Link::new(sys.eth_bytes_per_sec, sys.eth_latency);
        EthernetCluster {
            now: SimTime::ZERO,
            switch: Switch::new(n.max(1)),
            up: (0..n).map(|_| mk_link()).collect(),
            down: (0..n).map(|_| mk_link()).collect(),
            engine: Engine::new(n),
            nodes,
        }
    }

    /// Enables frame loss/corruption on node `i`'s uplink (failure
    /// injection for TCP-recovery tests).
    pub fn impair_uplink(&mut self, i: usize, drop: f64, corrupt: f64, seed: u64) {
        let old = std::mem::replace(&mut self.up[i], Link::ten_gbe());
        let _ = old;
        self.up[i] = Link::new(1.25e9, SimTime::from_us(1)).with_impairments(drop, corrupt, seed);
        self.engine.mark_stale(i);
    }

    /// The uplink (node `i` → switch), e.g. to read impairment counters.
    pub fn uplink(&self, i: usize) -> &Link {
        &self.up[i]
    }

    /// IP of node `i` (`10.0.0.(i+1)`).
    pub fn ip_of(i: usize) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, (i + 1) as u8)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True for an empty cluster.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Access node `i`.
    pub fn node(&self, i: usize) -> &ClusterNode {
        &self.nodes[i]
    }

    /// Mutable access to node `i`. Marks the node block's cached wakeup
    /// stale: callers may inject work the engine cannot observe.
    pub fn node_mut(&mut self, i: usize) -> &mut ClusterNode {
        self.engine.mark_stale(i);
        &mut self.nodes[i]
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Spawns a process on a core of node `i`.
    pub fn spawn(&mut self, i: usize, proc: Box<dyn Process>, core: usize) -> ProcId {
        self.node_mut(i).node.runner.spawn(proc, core)
    }

    /// All processes on all nodes finished?
    pub fn all_procs_done(&self) -> bool {
        self.nodes.iter().all(|n| n.node.runner.all_done())
    }

    /// The combined wakeup of node block `i`: the node itself, its NIC
    /// pipeline, and frames in flight on its links.
    fn wakeup_of(&mut self, i: usize) -> Option<SimTime> {
        [
            self.nodes[i].node.next_wakeup(),
            self.nodes[i].nic.next_wakeup(),
            self.up[i].next_wakeup(),
            self.down[i].next_wakeup(),
        ]
        .into_iter()
        .flatten()
        .min()
    }

    /// Re-queries stale node blocks' deadlines.
    fn refresh_wakeups(&mut self) {
        for i in self.engine.drain_stale() {
            let w = self.wakeup_of(i);
            self.engine.set_wakeup(i, w);
        }
    }

    /// Earliest pending activity — one heap peek over the per-node
    /// wakeup index.
    pub fn next_event(&mut self) -> Option<SimTime> {
        self.refresh_wakeups();
        self.engine.earliest().map(|x| x.max(self.now))
    }

    /// A structured snapshot of the cluster for stall debugging: each
    /// node's blocked processes and socket states, plus NIC/link timers.
    pub fn stall_report(&self, title: &str) -> StallReport {
        let mut r =
            StallReport::new(format!("{title} (cluster of {} @ {})", self.len(), self.now));
        for (i, cn) in self.nodes.iter().enumerate() {
            for line in cn.node.runner.stalled_procs() {
                r.line(&format!("node{i} procs"), line);
            }
            for line in cn.node.stack.socket_states() {
                r.line(&format!("node{i} sockets"), line);
            }
            r.line(
                "wire",
                format!(
                    "node{i}: nic_next={:?} up_next={:?} down_next={:?}",
                    cn.nic.next_event(),
                    self.up[i].next_arrival(),
                    self.down[i].next_arrival()
                ),
            );
        }
        r
    }

    /// Processes everything due at `t`, polling only dirty node blocks.
    pub fn advance(&mut self, t: SimTime) -> Activity {
        assert!(t >= self.now, "time must not go backwards");
        self.now = t;
        self.refresh_wakeups();
        self.engine.begin(t);
        let mut any = false;
        for round in 0.. {
            if round >= 100_000 {
                panic!("{}", self.stall_report("cluster advance did not converge"));
            }
            let mut changed = false;
            if self.engine.start_round() {
                while let Some(i) = self.engine.pop_dirty() {
                    if self.advance_node_block(i, t) {
                        self.engine.mark_dirty(i);
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
            any = true;
            self.engine.note_round();
        }
        for i in self.engine.drain_touched() {
            let w = self.wakeup_of(i);
            self.engine.set_wakeup(i, w);
        }
        Activity::from_flag(any)
    }

    /// One round of progress for node block `i`: memory completions, the
    /// NIC pipeline, its uplink into the switch, its downlink, stack
    /// timers/processes, and outbound frames. Cross-node frames mark the
    /// destination block dirty.
    fn advance_node_block(&mut self, i: usize, t: SimTime) -> bool {
        let mut changed = false;
        // Memory completions → NIC DMA bookkeeping.
        let foreign = self.nodes[i].node.advance_mem(t);
        for (waiter, job) in foreign {
            debug_assert_eq!(waiter, NIC_WAITER);
            let cn = &mut self.nodes[i];
            cn.nic
                .on_job_done(job, t, &mut cn.node.cpus, &cn.node.cost, false);
            changed = true;
        }
        // NIC pipeline events.
        let cn = &mut self.nodes[i];
        for ev in cn.nic.advance(t, &mut cn.node.mem) {
            changed = true;
            match ev {
                NicEvent::TxWire(frame) => self.up[i].send(frame, t),
                NicEvent::RxDeliver(frame) => {
                    self.nodes[i].node.stack.on_frame(0, frame, t);
                    self.nodes[i].node.drain_stack_events();
                }
            }
        }
        // Frames arriving at the switch from node i.
        for frame in self.up[i].poll(t) {
            changed = true;
            let fwd_at = t + self.switch.forward_latency;
            for p in self.switch.route(&frame, i) {
                self.down[p].send(frame.clone(), fwd_at);
                // The arrival belongs to block `p`; wake it (now for the
                // poll below, or later via its refreshed wakeup entry).
                self.engine.mark_dirty(p);
            }
        }
        // Frames arriving at node i from the switch.
        for frame in self.down[i].poll(t) {
            changed = true;
            let cn = &mut self.nodes[i];
            cn.nic.wire_rx(frame, t, &mut cn.node.mem);
        }
        // Stack timers, processes, outbound frames.
        self.nodes[i].node.service_stack(t);
        if self.nodes[i].node.run_procs(t) {
            changed = true;
        }
        loop {
            let cn = &mut self.nodes[i];
            let Some(frame) = cn.node.stack.poll_output(0) else {
                break;
            };
            // TX protocol processing (checksum offloaded), then the
            // driver handoff.
            let proto = mcn_node::nic::tx_protocol_cost(&cn.node.cost, &frame, false);
            let core = cn.node.cpus.least_loaded();
            let (_, end) = cn.node.cpus.run_on(core, t, proto);
            cn.nic.xmit(frame, end, core, &mut cn.node.cpus, &cn.node.cost);
            changed = true;
        }
        changed
    }
}

impl Component for EthernetCluster {
    fn now(&self) -> SimTime {
        EthernetCluster::now(self)
    }
    fn next_event(&mut self) -> Option<SimTime> {
        EthernetCluster::next_event(self)
    }
    fn advance(&mut self, t: SimTime) -> Activity {
        EthernetCluster::advance(self, t)
    }
    fn procs_done(&self) -> bool {
        self.all_procs_done()
    }
    fn engine_accounting(&self, out: &mut Vec<(EngineStats, usize)>) {
        out.push((self.engine.stats, self.nodes.len()));
    }
}

impl Instrumented for EthernetCluster {
    /// The baseline cluster tree: per node `node{N}.*` (the node's
    /// cpu/mem/stack plus its NIC under `node{N}.nic.*`), per-node
    /// uplink/downlink under `link{N}.up/.down`, the switch, the engine
    /// and the clock.
    fn metrics(&self, out: &mut MetricSink) {
        out.counter("now_ps", self.now.as_ps());
        out.absorb("switch", &self.switch);
        for (i, cn) in self.nodes.iter().enumerate() {
            out.scoped(&format!("node{i}"), |out| {
                cn.node.metrics(out);
                out.absorb("nic", &cn.nic);
            });
            out.scoped(&format!("link{i}"), |out| {
                out.absorb("up", &self.up[i]);
                out.absorb("down", &self.down[i]);
            });
        }
        out.absorb("engine", &self.engine.stats);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use mcn_sim::{Backoff, ComponentExt};

    fn mk(n: usize) -> EthernetCluster {
        EthernetCluster::new(&SystemConfig::default(), n)
    }

    #[test]
    fn udp_between_nodes() {
        let mut c = mk(3);
        let u0 = c.node_mut(0).node.stack.udp_bind(5000).unwrap();
        let u2 = c.node_mut(2).node.stack.udp_bind(7000).unwrap();
        c.node_mut(0)
            .node
            .stack
            .udp_send(
                u0,
                EthernetCluster::ip_of(2),
                7000,
                Bytes::from(vec![8u8; 1000]),
                SimTime::ZERO,
            )
            .unwrap();
        c.run_until(SimTime::from_us(100));
        let (src, _, data) = c
            .node_mut(2)
            .node
            .stack
            .udp_recv(u2)
            .expect("datagram crossed the switch");
        assert_eq!(src, EthernetCluster::ip_of(0));
        assert_eq!(data.len(), 1000);
    }

    #[test]
    fn ping_rtt_reflects_wire_and_stack() {
        let mut c = mk(2);
        c.node_mut(0)
            .node
            .stack
            .send_ping(
                EthernetCluster::ip_of(1),
                9,
                1,
                Bytes::from(vec![0u8; 16]),
                SimTime::ZERO,
            )
            .unwrap();
        c.run_until(SimTime::from_ms(1));
        let reply = c.node_mut(0).node.stack.pop_ping_reply();
        assert!(reply.is_some(), "echo reply must arrive");
        // The RTT floor: 4 link traversals (1 us each) + switch + NIC/driver.
        // With all costs, expect tens of microseconds — well below 1 ms.
        assert!(c.now() <= SimTime::from_ms(1));
    }

    #[test]
    fn tcp_bulk_transfer_between_nodes() {
        let mut c = mk(2);
        let lst = c.node_mut(1).node.stack.tcp_listen(5001).unwrap();
        let cs = c
            .node_mut(0)
            .node
            .stack
            .tcp_connect(EthernetCluster::ip_of(1), 5001, SimTime::ZERO)
            .unwrap();
        c.run_until(SimTime::from_ms(1));
        assert_eq!(
            c.node(0).node.stack.tcp_state(cs),
            mcn_net::tcp::TcpState::Established
        );
        let ss = c.node_mut(1).node.stack.tcp_accept(lst).unwrap();
        let data: Vec<u8> = (0..128 * 1024u32).map(|i| (i % 253) as u8).collect();
        let mut sent = 0;
        let mut got = Vec::new();
        let mut buf = vec![0u8; 65536];
        // Fixed 100 µs pacing (initial == max_delay), bounded attempts.
        let mut pacing = Backoff::new(SimTime::from_us(100), SimTime::from_us(100), 10_000);
        let done = c.run_with_backoff(&mut pacing, |c| {
            let now = c.now();
            if sent < data.len() {
                sent += c
                    .node_mut(0)
                    .node
                    .stack
                    .tcp_send(cs, &data[sent..], now)
                    .unwrap();
            }
            loop {
                let now = c.now();
                let n = c
                    .node_mut(1)
                    .node
                    .stack
                    .tcp_recv(ss, &mut buf, now)
                    .unwrap();
                if n == 0 {
                    break;
                }
                got.extend_from_slice(&buf[..n]);
            }
            got.len() >= data.len()
        });
        assert!(
            done,
            "stalled at {} bytes\n{}",
            got.len(),
            c.stall_report("tcp bulk transfer stalled")
        );
        assert_eq!(got, data);
    }

    #[test]
    fn tcp_recovers_from_lossy_uplink() {
        let mut c = mk(2);
        c.impair_uplink(0, 0.05, 0.01, 99);
        let lst = c.node_mut(1).node.stack.tcp_listen(5001).unwrap();
        let cs = c
            .node_mut(0)
            .node
            .stack
            .tcp_connect(EthernetCluster::ip_of(1), 5001, SimTime::ZERO)
            .unwrap();
        c.run_until(SimTime::from_ms(5));
        // Handshake may need retries under loss: exponential backoff from
        // 1 ms to 50 ms slices, bounded attempts instead of a guard counter.
        let mut hs = Backoff::new(SimTime::from_ms(1), SimTime::from_ms(50), 100);
        let established = c.run_with_backoff(&mut hs, |c| {
            c.node(0).node.stack.tcp_state(cs) == mcn_net::tcp::TcpState::Established
        });
        assert!(
            established,
            "handshake never completed under loss\n{}",
            c.stall_report("tcp handshake stalled")
        );
        let ss = c.node_mut(1).node.stack.tcp_accept(lst).unwrap();
        let data: Vec<u8> = (0..64 * 1024u32).map(|i| (i % 249) as u8).collect();
        let mut sent = 0;
        let mut got = Vec::new();
        let mut buf = vec![0u8; 65536];
        let mut pacing = Backoff::new(SimTime::from_ms(1), SimTime::from_ms(1), 50_000);
        let done = c.run_with_backoff(&mut pacing, |c| {
            let now = c.now();
            if sent < data.len() {
                sent += c
                    .node_mut(0)
                    .node
                    .stack
                    .tcp_send(cs, &data[sent..], now)
                    .unwrap();
            }
            loop {
                let now = c.now();
                let n = c
                    .node_mut(1)
                    .node
                    .stack
                    .tcp_recv(ss, &mut buf, now)
                    .unwrap();
                if n == 0 {
                    break;
                }
                got.extend_from_slice(&buf[..n]);
            }
            got.len() >= data.len()
        });
        assert!(
            done,
            "stalled at {} bytes\n{}",
            got.len(),
            c.stall_report("lossy tcp transfer stalled")
        );
        assert_eq!(got, data, "loss and corruption must not corrupt the stream");
        assert!(
            c.node(1).nic.fcs_drops.get() > 0
                || c.node(0)
                    .node
                    .stack
                    .tcp_stats(cs)
                    .is_some_and(|s| s.retransmits > 0),
            "impairments should be visible in counters"
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut c = mk(2);
            let u0 = c.node_mut(0).node.stack.udp_bind(5000).unwrap();
            let _u1 = c.node_mut(1).node.stack.udp_bind(7000).unwrap();
            for k in 0..10 {
                let now = c.now();
                c.node_mut(0)
                    .node
                    .stack
                    .udp_send(
                        u0,
                        EthernetCluster::ip_of(1),
                        7000,
                        Bytes::from(vec![k as u8; 900]),
                        now,
                    )
                    .unwrap();
                c.run_until(c.now() + SimTime::from_us(30));
            }
            (
                c.node(0).node.cpus.total_busy(),
                c.node(1).node.cpus.total_busy(),
                c.node(1).node.mem.total_bytes(),
            )
        };
        assert_eq!(run(), run());
    }
}
