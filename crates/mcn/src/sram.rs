//! The MCN interface SRAM buffer (paper Fig. 4).
//!
//! A real byte array holding two circular message rings plus their control
//! words. Directions are named from the MCN node's perspective, as in the
//! paper: the **TX** ring carries MCN→host messages (the host-side polling
//! agent watches `tx-poll`), the **RX** ring carries host→MCN messages (the
//! MCN interface raises an interrupt to the MCN processor when `rx-poll`
//! is set).
//!
//! An *MCN message* is a 4-byte little-endian length followed by that many
//! bytes of Ethernet frame (paper Sec. III-B: "we call the combination of a
//! packet length and data an MCN message"); this framing is what lets MCN
//! carry any MTU, including unsegmented 64 KB TSO chunks.
//!
//! The control words genuinely live in the byte array — tests can corrupt
//! them and observe the consequences, and the drivers' control-word
//! *timing* is modelled as channel transactions by the system layer while
//! the *functional* effect happens here.

use serde::{Deserialize, Serialize};

/// Ring direction, from the MCN node's perspective.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Dir {
    /// MCN → host.
    Tx,
    /// Host → MCN.
    Rx,
}

/// Error: not enough free space in the ring for the message
/// (the driver returns `NETDEV_TX_BUSY` and retries, paper step T2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SramFull {
    /// Bytes the message needed (including the length prefix).
    pub needed: usize,
    /// Bytes currently free.
    pub free: usize,
}

impl std::fmt::Display for SramFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sram ring full: need {}, free {}", self.needed, self.free)
    }
}

impl std::error::Error for SramFull {}

const RX_START: usize = 0;
const RX_END: usize = 4;
const RX_POLL: usize = 8;
const TX_START: usize = 64;
const TX_END: usize = 68;
const TX_POLL: usize = 72;
const CTRL_BYTES: usize = 128;
const LEN_PREFIX: usize = 4;

/// The interface SRAM: control words + two message rings, all real bytes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SramBuffer {
    bytes: Vec<u8>,
    ring_cap: usize,
}

impl SramBuffer {
    /// Creates a buffer with `ring_cap` bytes per direction.
    ///
    /// # Panics
    ///
    /// Panics if `ring_cap < 64` (too small for any frame).
    pub fn new(ring_cap: usize) -> Self {
        assert!(ring_cap >= 64, "ring capacity unusably small");
        SramBuffer {
            bytes: vec![0; CTRL_BYTES + 2 * ring_cap],
            ring_cap,
        }
    }

    /// Ring capacity per direction in bytes.
    pub fn ring_cap(&self) -> usize {
        self.ring_cap
    }

    /// Total SRAM size in bytes (control area + both rings).
    pub fn total_bytes(&self) -> usize {
        self.bytes.len()
    }

    fn ctrl(dir: Dir) -> (usize, usize, usize) {
        match dir {
            Dir::Rx => (RX_START, RX_END, RX_POLL),
            Dir::Tx => (TX_START, TX_END, TX_POLL),
        }
    }

    fn region(&self, dir: Dir) -> usize {
        match dir {
            Dir::Rx => CTRL_BYTES,
            Dir::Tx => CTRL_BYTES + self.ring_cap,
        }
    }

    fn read_u32(&self, off: usize) -> u32 {
        u32::from_le_bytes(self.bytes[off..off + 4].try_into().expect("4 bytes"))
    }

    fn write_u32(&mut self, off: usize, v: u32) {
        self.bytes[off..off + 4].copy_from_slice(&v.to_le_bytes());
    }

    /// The poll flag of a ring (what the host polling agent / the MCN
    /// interface interrupt line observe).
    pub fn poll_flag(&self, dir: Dir) -> bool {
        let (_, _, poll) = Self::ctrl(dir);
        self.read_u32(poll) != 0
    }

    /// Bytes of valid data currently in the ring.
    pub fn used(&self, dir: Dir) -> usize {
        let (s, e, _) = Self::ctrl(dir);
        let start = self.read_u32(s) as usize % self.ring_cap;
        let end = self.read_u32(e) as usize % self.ring_cap;
        (end + self.ring_cap - start) % self.ring_cap
    }

    /// Bytes of free space (one byte is reserved to distinguish full from
    /// empty).
    pub fn free_space(&self, dir: Dir) -> usize {
        self.ring_cap - 1 - self.used(dir)
    }

    fn ring_write(&mut self, dir: Dir, at: usize, data: &[u8]) {
        let base = self.region(dir);
        let cap = self.ring_cap;
        let at = at % cap;
        // At most two contiguous segments (wrap at the ring boundary).
        let first = data.len().min(cap - at);
        self.bytes[base + at..base + at + first].copy_from_slice(&data[..first]);
        let rest = &data[first..];
        self.bytes[base..base + rest.len()].copy_from_slice(rest);
    }

    fn ring_read_into(&self, dir: Dir, at: usize, out: &mut [u8]) {
        let base = self.region(dir);
        let cap = self.ring_cap;
        let at = at % cap;
        let first = out.len().min(cap - at);
        out[..first].copy_from_slice(&self.bytes[base + at..base + at + first]);
        let wrapped = out.len() - first;
        out[first..].copy_from_slice(&self.bytes[base..base + wrapped]);
    }

    /// Enqueues one MCN message (steps T1–T3 of the paper): checks space,
    /// writes `len ‖ data` at `*-end`, advances `*-end`, and sets `*-poll`.
    ///
    /// # Errors
    ///
    /// [`SramFull`] when the ring lacks space (caller retries later —
    /// `NETDEV_TX_BUSY`).
    pub fn push(&mut self, dir: Dir, data: &[u8]) -> Result<(), SramFull> {
        let needed = LEN_PREFIX + data.len();
        let free = self.free_space(dir);
        if needed > free {
            return Err(SramFull { needed, free });
        }
        let (_, e, poll) = Self::ctrl(dir);
        let end = self.read_u32(e) as usize % self.ring_cap;
        self.ring_write(dir, end, &(data.len() as u32).to_le_bytes());
        self.ring_write(dir, (end + LEN_PREFIX) % self.ring_cap, data);
        self.write_u32(e, ((end + needed) % self.ring_cap) as u32);
        self.write_u32(poll, 1);
        Ok(())
    }

    /// Dequeues one MCN message (steps R1–R5): reads the length at
    /// `*-start`, copies the data out, advances `*-start`, and clears
    /// `*-poll` once the ring drains.
    pub fn pop(&mut self, dir: Dir) -> Option<Vec<u8>> {
        let used = self.used(dir);
        if used < LEN_PREFIX {
            return None;
        }
        let (s, _, poll) = Self::ctrl(dir);
        let start = self.read_u32(s) as usize % self.ring_cap;
        let mut len_bytes = [0u8; LEN_PREFIX];
        self.ring_read_into(dir, start, &mut len_bytes);
        let len = u32::from_le_bytes(len_bytes) as usize;
        if used < LEN_PREFIX + len {
            // Corrupt or half-written message; leave it (fences in the
            // driver prevent this in practice, paper T3).
            return None;
        }
        // Single copy, straight from the ring into the returned buffer.
        let mut data = vec![0u8; len];
        self.ring_read_into(dir, (start + LEN_PREFIX) % self.ring_cap, &mut data);
        self.write_u32(s, ((start + LEN_PREFIX + len) % self.ring_cap) as u32);
        if self.used(dir) == 0 {
            self.write_u32(poll, 0);
        }
        Some(data)
    }

    /// Dequeues every complete message (the host-side R5 loop: keep reading
    /// until `tx-start == tx-end`).
    pub fn pop_all(&mut self, dir: Dir) -> Vec<Vec<u8>> {
        std::iter::from_fn(|| self.pop(dir)).collect()
    }

    /// Power-on reset: zeroes the control words (producer/consumer indices
    /// and both poll flags) *and* the ring data. Everything in flight is
    /// lost; a descriptor a stale peer still believes in reads back as a
    /// zero-length region, never as old data.
    pub fn reset(&mut self) {
        self.bytes.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn push_pop_roundtrip_both_rings() {
        let mut s = SramBuffer::new(4096);
        for dir in [Dir::Tx, Dir::Rx] {
            assert!(!s.poll_flag(dir));
            s.push(dir, b"hello mcn").unwrap();
            assert!(s.poll_flag(dir));
            assert_eq!(s.used(dir), 13);
            assert_eq!(s.pop(dir).unwrap(), b"hello mcn");
            assert!(!s.poll_flag(dir), "poll clears when drained");
            assert_eq!(s.pop(dir), None);
        }
    }

    #[test]
    fn rings_are_independent() {
        let mut s = SramBuffer::new(1024);
        s.push(Dir::Tx, b"to host").unwrap();
        assert!(!s.poll_flag(Dir::Rx));
        assert_eq!(s.pop(Dir::Rx), None);
        assert_eq!(s.pop(Dir::Tx).unwrap(), b"to host");
    }

    #[test]
    fn fifo_order_preserved() {
        let mut s = SramBuffer::new(4096);
        for i in 0..10u8 {
            s.push(Dir::Rx, &[i; 100]).unwrap();
        }
        for i in 0..10u8 {
            assert_eq!(s.pop(Dir::Rx).unwrap(), vec![i; 100]);
        }
    }

    #[test]
    fn full_ring_rejects_and_recovers() {
        let mut s = SramBuffer::new(256);
        s.push(Dir::Tx, &[1u8; 100]).unwrap();
        s.push(Dir::Tx, &[2u8; 100]).unwrap();
        let err = s.push(Dir::Tx, &[3u8; 100]).unwrap_err();
        assert_eq!(err.needed, 104);
        assert!(err.free < 104);
        // Draining one message frees space.
        s.pop(Dir::Tx).unwrap();
        s.push(Dir::Tx, &[3u8; 100]).unwrap();
        assert_eq!(s.pop(Dir::Tx).unwrap(), vec![2u8; 100]);
        assert_eq!(s.pop(Dir::Tx).unwrap(), vec![3u8; 100]);
    }

    #[test]
    fn wraparound_preserves_data() {
        let mut s = SramBuffer::new(256);
        // Advance the cursors close to the end, then push a message that
        // wraps.
        for _ in 0..5 {
            s.push(Dir::Rx, &[9u8; 40]).unwrap();
            s.pop(Dir::Rx).unwrap();
        }
        let msg: Vec<u8> = (0..200).map(|i| i as u8).collect();
        s.push(Dir::Rx, &msg).unwrap();
        assert_eq!(s.pop(Dir::Rx).unwrap(), msg);
    }

    #[test]
    fn pop_all_drains() {
        let mut s = SramBuffer::new(4096);
        for i in 0..5u8 {
            s.push(Dir::Tx, &[i]).unwrap();
        }
        let all = s.pop_all(Dir::Tx);
        assert_eq!(all.len(), 5);
        assert!(!s.poll_flag(Dir::Tx));
    }

    #[test]
    fn jumbo_tso_message_fits_default_sizing() {
        let mut s = SramBuffer::new(160 * 1024);
        let chunk = vec![0x5Au8; 64 * 1024];
        s.push(Dir::Tx, &chunk).unwrap();
        s.push(Dir::Tx, &chunk).unwrap(); // double buffering
        assert_eq!(s.pop(Dir::Tx).unwrap().len(), 64 * 1024);
    }

    #[test]
    #[should_panic(expected = "unusably small")]
    fn tiny_ring_rejected() {
        SramBuffer::new(32);
    }

    proptest! {
        /// Any interleaving of pushes and pops preserves message contents
        /// and order (the rings are real circular buffers, so wraparound
        /// bugs would corrupt data, not just timing).
        #[test]
        fn ring_vs_model(
            ops in prop::collection::vec((any::<bool>(), 1usize..300), 1..200)
        ) {
            let mut s = SramBuffer::new(1024);
            let mut model: std::collections::VecDeque<Vec<u8>> = Default::default();
            let mut counter = 0u8;
            for (is_push, len) in ops {
                if is_push {
                    counter = counter.wrapping_add(1);
                    let msg = vec![counter; len];
                    match s.push(Dir::Tx, &msg) {
                        Ok(()) => model.push_back(msg),
                        Err(_) => {
                            // Model agrees it would not fit.
                            let used: usize =
                                model.iter().map(|m| m.len() + 4).sum();
                            prop_assert!(used + msg.len() + 4 > 1024 - 1);
                        }
                    }
                } else {
                    prop_assert_eq!(s.pop(Dir::Tx), model.pop_front());
                }
            }
            // Drain and compare the tails.
            prop_assert_eq!(s.pop_all(Dir::Tx), Vec::from(model));
        }
    }
}
