//! Typed errors for the MCN data path.
//!
//! The packet-ingest and ring hot paths used to `panic!`/`expect` on
//! conditions that a fault injector (or a buggy peer) can legitimately
//! produce — a completion for an untracked job, a ring that filled despite
//! the space pre-check. Those paths now return [`McnError`]; the drive
//! loops count the error on the relevant stats struct and keep the
//! simulation running (graceful degradation instead of a dead process).

use mcn_node::JobId;

/// Which side of the memory channel an error was raised on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum McnSide {
    /// The host-side driver.
    Host,
    /// A DIMM-side driver (by DIMM index).
    Dimm(usize),
}

/// A recoverable fault on the MCN data path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum McnError {
    /// A memory-system completion arrived for a job the driver is not
    /// tracking (lost/duplicated bookkeeping under fault injection).
    UnknownJob {
        /// The completed job.
        job: JobId,
        /// Where it surfaced.
        side: McnSide,
    },
    /// An SRAM ring push found the ring full even though space was checked
    /// before the copy was issued; the frame is dropped and the transport
    /// layer is left to recover.
    RingFull {
        /// Where the push failed.
        side: McnSide,
        /// Encoded message length that did not fit.
        len: usize,
    },
}

impl std::fmt::Display for McnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            McnError::UnknownJob { job, side } => {
                write!(f, "completion for unknown job {job:?} on {side:?}")
            }
            McnError::RingFull { side, len } => {
                write!(f, "ring full on {side:?} pushing {len} bytes")
            }
        }
    }
}

impl std::error::Error for McnError {}
