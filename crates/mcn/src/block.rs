//! The shared per-endpoint shard wrapper and switch routing rule every
//! topology level instantiates.
//!
//! [`McnRack`](crate::McnRack) shards an MCN server behind its NIC and
//! uplink; [`EthernetCluster`](crate::EthernetCluster) shards a baseline
//! node behind the same wire; the Clos fabric of [`crate::fabric`]
//! composes whole racks. All three used to carry near-identical copies
//! of the same wire-pipeline code (NIC events → uplink → switch →
//! downlink → NIC) and the same switched-routing rule. This module is
//! the single copy:
//!
//! * [`Endpoint`] is the small surface a machine must expose (its NIC,
//!   its memory, and pre/post-wire progress hooks); [`EndpointBlock`]
//!   wraps any endpoint into a [`Shard`] with the uplink/downlink
//!   machinery, the emission lower bounds, and the convergence loop.
//! * [`SwitchPolicy`] + [`route_switched`] are the one switched-boundary
//!   routing rule: MAC learning and store-and-forward on a
//!   [`Switch`], with per-topology admission (partitions, dead
//!   uplinks) and an escape hatch that claims frames leaving the
//!   topology entirely (the rack's datacenter gateway).

use mcn_net::link::{Link, Switch};
use mcn_net::EthernetFrame;
use mcn_node::nic::{Nic, NicEvent};
use mcn_node::MemorySystem;
use mcn_sim::stats::Counter;
use mcn_sim::{EngineStats, Outbox, Shard, SimTime, Wakeup};

/// The machine-specific half of a shard: what sits behind the NIC.
///
/// The wire half (NIC event pump, uplink/downlink, emission bounds) is
/// identical across topologies and lives in [`EndpointBlock`]; an
/// endpoint only provides device/stack progress and frame ingestion.
pub(crate) trait Endpoint: Send {
    /// Control command the coordinator can apply at window boundaries.
    type Cmd: Send;

    /// The NIC and the host memory it DMAs into, borrowed together
    /// (the pump needs both at once).
    fn wire(&mut self) -> (&mut Nic, &mut MemorySystem);

    /// Read-only NIC access (emission bounds, metrics, stall reports).
    fn nic(&self) -> &Nic;

    /// Machine progress *before* the wire pump at time `t`: device
    /// advance, memory completions, frames staged for transmission.
    /// Returns whether anything changed.
    fn advance_pre(&mut self, t: SimTime) -> bool;

    /// Machine progress *after* the wire pump at time `t` (stack
    /// service, processes, outbound protocol work). Returns whether
    /// anything changed.
    fn advance_post(&mut self, t: SimTime) -> bool;

    /// A frame the NIC delivered up the host side.
    fn rx(&mut self, frame: EthernetFrame, t: SimTime);

    /// Earliest pending event inside the machine (excluding the NIC and
    /// links, which the block tracks itself).
    fn next_wakeup(&mut self) -> Option<SimTime>;

    /// Applies a control command; `link_up` is the block's carrier flag
    /// so link-level commands can flip it.
    fn apply(&mut self, at: SimTime, cmd: Self::Cmd, link_up: &mut bool);

    /// Every process on this machine finished?
    fn procs_done(&self) -> bool;

    /// Diagnostic for a non-converging fixed-point loop at time `t`.
    fn stall_panic(&self, t: SimTime) -> String;
}

/// One shard: an [`Endpoint`] plus its NIC's uplink and downlink into
/// the topology's switch. Everything inside interacts at local latency;
/// the only way out is the uplink.
#[derive(Debug)]
pub(crate) struct EndpointBlock<E: Endpoint> {
    /// The machine.
    pub(crate) ep: E,
    /// Uplink towards the switch.
    pub(crate) up: Link,
    /// Downlink from the switch.
    pub(crate) down: Link,
    /// Shard-local mirror of the uplink carrier (the coordinator holds
    /// the authoritative copy for route-time checks).
    pub(crate) link_up: bool,
    /// Block-local clock: the last event time processed.
    pub(crate) clock: SimTime,
    /// Event-loop accounting (advances = event times, rounds =
    /// convergence iterations with work, polls = block polls).
    pub(crate) stats: EngineStats,
    /// Frames this block dropped on its own severed uplink.
    pub(crate) uplink_drops: Counter,
    /// Recycled buffers for the per-tick NIC/link drains.
    nic_events: Vec<NicEvent>,
    frame_scratch: Vec<EthernetFrame>,
}

impl<E: Endpoint> EndpointBlock<E> {
    /// Wraps `ep` with fresh links and a live carrier.
    pub(crate) fn new(ep: E, up: Link, down: Link) -> Self {
        EndpointBlock {
            ep,
            up,
            down,
            link_up: true,
            clock: SimTime::ZERO,
            stats: EngineStats::default(),
            uplink_drops: Counter::default(),
            nic_events: Vec::new(),
            frame_scratch: Vec::new(),
        }
    }

    /// One round of progress at time `t`: the endpoint's pre-wire work,
    /// the NIC pipeline, the uplink into the switch (emissions go to
    /// `outbox`), the downlink into the NIC, and the endpoint's
    /// post-wire work.
    fn advance_block(&mut self, t: SimTime, outbox: &mut Outbox<EthernetFrame>) -> bool {
        let mut changed = self.ep.advance_pre(t);
        // NIC pipeline (events drain through the block's recycled
        // buffer: this loop runs every fixed-point round).
        let mut evs = std::mem::take(&mut self.nic_events);
        {
            let (nic, mem) = self.ep.wire();
            nic.advance_into(t, mem, &mut evs);
        }
        for ev in evs.drain(..) {
            changed = true;
            match ev {
                NicEvent::TxWire(frame) => {
                    if self.link_up {
                        self.up.send(frame, t);
                    } else {
                        // Severed uplink: the frame leaves the NIC and dies
                        // on the wire. Transport retransmits after the heal.
                        self.uplink_drops.inc();
                    }
                }
                NicEvent::RxDeliver(frame) => self.ep.rx(frame, t),
            }
        }
        self.nic_events = evs;
        // Frames reaching the switch leave the shard; the coordinator
        // routes them at the next barrier.
        let mut frames = std::mem::take(&mut self.frame_scratch);
        self.up.poll_into(t, &mut frames);
        for frame in frames.drain(..) {
            changed = true;
            if !self.link_up {
                // In flight when the link was cut: lost.
                self.uplink_drops.inc();
                continue;
            }
            outbox.emit(t, frame);
        }
        // Frames arriving from the switch.
        self.down.poll_into(t, &mut frames);
        for frame in frames.drain(..) {
            changed = true;
            if !self.link_up {
                self.uplink_drops.inc();
                continue;
            }
            let (nic, mem) = self.ep.wire();
            nic.wire_rx(frame, t, mem);
        }
        self.frame_scratch = frames;
        if self.ep.advance_post(t) {
            changed = true;
        }
        changed
    }
}

impl<E: Endpoint> Shard for EndpointBlock<E> {
    type Frame = EthernetFrame;
    type Cmd = E::Cmd;

    fn next_event(&mut self) -> Option<SimTime> {
        let nic = self.ep.nic().next_wakeup();
        [
            self.ep.next_wakeup(),
            nic,
            mcn_sim::Wakeup::next_wakeup(&self.up),
            mcn_sim::Wakeup::next_wakeup(&self.down),
        ]
        .into_iter()
        .flatten()
        .min()
        .map(|t| t.max(self.clock))
    }

    fn next_emission(&mut self) -> Option<SimTime> {
        // Lower bound on the next frame reaching the switch: (a) frames
        // already in flight on the uplink arrive as-is; (b) frames
        // staged in the NIC TX pipeline still pay uplink propagation;
        // (c) anything else starts from a local event and crosses PCIe
        // and the uplink first. Under-estimating is always sound (it
        // only shortens coarsened windows).
        let up_lat = self.up.latency();
        let pcie = self.ep.nic().pcie_latency();
        let staged = self.ep.nic().earliest_tx_staged();
        [
            self.up.next_arrival(),
            staged.map(|t| t + up_lat),
            Shard::next_event(self).map(|t| t + pcie + up_lat),
        ]
        .into_iter()
        .flatten()
        .min()
    }

    fn turnaround(&self) -> SimTime {
        // A delivered frame pays downlink propagation, one PCIe
        // crossing, and uplink propagation before any response it
        // causes can reach the switch.
        self.down.latency() + self.ep.nic().pcie_latency() + self.up.latency()
    }

    fn apply(&mut self, at: SimTime, cmd: E::Cmd) {
        self.ep.apply(at, cmd, &mut self.link_up);
    }

    fn deliver(&mut self, at: SimTime, frame: EthernetFrame) {
        // `at` is the time the frame left the switch towards us; the
        // downlink adds serialization + propagation on its own clock, so
        // a barrier-late hand-off still yields the exact arrival time.
        self.down.send(frame, at);
    }

    fn run_window(&mut self, end: SimTime, outbox: &mut Outbox<EthernetFrame>) -> u64 {
        let mut steps = 0;
        while let Some(t) = Shard::next_event(self) {
            if t > end {
                break;
            }
            self.clock = t;
            steps += 1;
            self.stats.advances.inc();
            let mut iters = 0u32;
            loop {
                self.stats.component_polls.inc();
                if !self.advance_block(t, outbox) {
                    break;
                }
                self.stats.rounds.inc();
                iters += 1;
                if iters >= 100_000 {
                    panic!("{}", self.ep.stall_panic(t));
                }
            }
        }
        steps
    }

    fn procs_done(&self) -> bool {
        self.ep.procs_done()
    }
}

/// Per-topology hooks on the shared switched-routing rule.
///
/// The default implementations make a trivially permissive policy (the
/// baseline cluster's fully connected switch).
pub(crate) trait SwitchPolicy {
    /// Claims a frame *before* MAC switching; returning `true` consumes
    /// it (the rack's datacenter gateway pulls frames addressed to the
    /// well-known gateway MAC onto the fabric uplink this way). `at` is
    /// the time the frame has cleared the switch's forwarding stage.
    fn claim(&mut self, _at: SimTime, _frame: &EthernetFrame) -> bool {
        false
    }

    /// Admission check for egress port `to` on a frame that arrived on
    /// `from`; returning `false` drops the copy (partition, dead
    /// uplink).
    fn admit(&mut self, _from: usize, _to: usize) -> bool {
        true
    }
}

/// A [`SwitchPolicy`] with no restrictions.
pub(crate) struct OpenSwitch;

impl SwitchPolicy for OpenSwitch {}

/// The switched-boundary routing rule shared by rack, cluster and
/// datacenter: store-and-forward latency, then either the policy claims
/// the frame (it leaves this switching domain) or the learning switch
/// picks egress ports, each gated by the policy's admission check.
pub(crate) fn route_switched<P: SwitchPolicy>(
    switch: &mut Switch,
    policy: &mut P,
    from: usize,
    at: SimTime,
    frame: EthernetFrame,
    out: &mut Vec<(usize, SimTime, EthernetFrame)>,
) {
    let fwd_at = at + switch.forward_latency;
    if policy.claim(fwd_at, &frame) {
        return;
    }
    for p in switch.route(&frame, from) {
        if policy.admit(from, p) {
            out.push((p, fwd_at, frame.clone()));
        }
    }
}
