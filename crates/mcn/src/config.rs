//! Configuration: the paper's Table I (optimisation levels) and Table II
//! (system parameters).

use std::fmt;

use serde::{Deserialize, Serialize};

use mcn_dram::DramConfig;
use mcn_sim::SimTime;

/// MCN optimisation configuration — the knobs of Table I.
///
/// `mcn0` is the software-only baseline; each level adds one optimisation
/// cumulatively:
///
/// | level | adds |
/// |-------|------|
/// | mcn0  | HR-timer polling implementation |
/// | mcn1  | MCN DIMM interrupt mechanism (re-purposed ALERT_N) |
/// | mcn2  | IPv4 checksum bypassing |
/// | mcn3  | MTU increased to 9 KB |
/// | mcn4  | TCP segmentation offload |
/// | mcn5  | MCN-DMA engines |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct McnConfig {
    /// ALERT_N-based interrupt from DIMM to host instead of periodic
    /// HR-timer polling (`mcn1`).
    pub alert_interrupt: bool,
    /// Skip software checksum generation and verification on MCN
    /// interfaces; the memory channel's ECC/CRC protects the data (`mcn2`).
    pub checksum_bypass: bool,
    /// 9 KB jumbo MTU on MCN interfaces (`mcn3`).
    pub jumbo_mtu: bool,
    /// TCP segmentation offload: the stack emits up to 64 KB segments and
    /// the MCN driver transmits them unsegmented (`mcn4`).
    pub tso: bool,
    /// MCN-DMA engines copy packets between DRAM and SRAM instead of the
    /// CPUs (`mcn5`).
    pub dma: bool,
}

impl McnConfig {
    /// The cumulative optimisation level `n` (0..=5) from Table I.
    ///
    /// # Panics
    ///
    /// Panics if `n > 5`.
    pub fn level(n: u32) -> Self {
        assert!(n <= 5, "Table I defines mcn0..mcn5");
        McnConfig {
            alert_interrupt: n >= 1,
            checksum_bypass: n >= 2,
            jumbo_mtu: n >= 3,
            tso: n >= 4,
            dma: n >= 5,
        }
    }

    /// Inverse of [`level`](Self::level) for cumulative configs; `None`
    /// for mixed (ablation) configs.
    pub fn level_number(&self) -> Option<u32> {
        (0..=5).find(|&n| Self::level(n) == *self)
    }

    /// The MTU this configuration runs with.
    pub fn mtu(&self) -> usize {
        if self.jumbo_mtu {
            mcn_net::MTU_JUMBO
        } else {
            mcn_net::MTU_ETHERNET
        }
    }
}

impl Default for McnConfig {
    /// `mcn0`.
    fn default() -> Self {
        Self::level(0)
    }
}

impl fmt::Display for McnConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.level_number() {
            Some(n) => write!(f, "mcn{n}"),
            None => write!(
                f,
                "mcn-custom(alert={},csum_bypass={},jumbo={},tso={},dma={})",
                self.alert_interrupt, self.checksum_bypass, self.jumbo_mtu, self.tso, self.dma
            ),
        }
    }
}

/// The simulated machine of Table II plus the MCN-specific parameters the
/// paper leaves to the implementation (polling interval, SRAM sizing).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Host cores (Table II: 8).
    pub host_cores: usize,
    /// MCN processor cores per DIMM (Table II: 4).
    pub mcn_cores: usize,
    /// Host memory channels (DIMMs spread evenly across them).
    pub host_channels: u32,
    /// Local memory channels per MCN DIMM (the MCN processor has two local
    /// MCs, Fig. 3(a)).
    pub mcn_channels: u32,
    /// Host DRAM configuration (Table II: DDR4-3200).
    pub host_dram: DramConfig,
    /// MCN-local DRAM configuration. Table II gives DDR4-3200 for the
    /// DRAM on the MCN DIMM (the DIMM carries commodity DDR4 devices that
    /// the MCN processor reaches through its local channels, Fig. 3).
    pub mcn_dram: DramConfig,
    /// HR-timer polling interval for the `mcn0` polling agent.
    pub poll_interval: SimTime,
    /// MC-to-core delivery latency of a re-purposed ALERT_N (`mcn1`+).
    pub alert_latency: SimTime,
    /// SRAM ring capacity per direction, in bytes. The paper's prototype
    /// uses a 96 KB SRAM; we default to 160 KB per direction so TSO's
    /// 64 KB chunks double-buffer (documented substitution in DESIGN.md).
    pub sram_ring_bytes: usize,
    /// MCN-DMA engine setup cost per transfer (`mcn5`).
    pub dma_setup: SimTime,
    /// Deadline the host driver's watchdog gives an MCN-DMA transfer
    /// before declaring it stalled and retrying (doubling per attempt,
    /// then degrading that transfer to the CPU-copy path).
    pub dma_watchdog_deadline: SimTime,
    /// Baseline Ethernet bandwidth in bytes/second (Table II: 10GbE).
    pub eth_bytes_per_sec: f64,
    /// Baseline Ethernet link latency (Table II: 1 µs).
    pub eth_latency: SimTime,
    /// Re-init handshake: initial delay between probe reads of a
    /// (re)powered DIMM's SRAM control words (doubles per failed probe).
    pub reinit_probe_interval: SimTime,
    /// Re-init handshake: probe budget before the host gives up and parks
    /// the port down.
    pub reinit_max_probes: u32,
    /// Re-init handshake: latency of each post-probe step (ring reset, MAC
    /// re-announce).
    pub reinit_step: SimTime,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            host_cores: 8,
            mcn_cores: 4,
            host_channels: 2,
            mcn_channels: 2,
            host_dram: DramConfig::ddr4_3200(),
            mcn_dram: DramConfig::ddr4_3200(),
            poll_interval: SimTime::from_us(1),
            alert_latency: SimTime::from_ns(200),
            sram_ring_bytes: 160 * 1024,
            dma_setup: SimTime::from_ns(150),
            dma_watchdog_deadline: SimTime::from_us(5),
            eth_bytes_per_sec: 1.25e9,
            eth_latency: SimTime::from_us(1),
            reinit_probe_interval: SimTime::from_us(10),
            reinit_max_probes: 8,
            reinit_step: SimTime::from_us(2),
        }
    }
}

impl SystemConfig {
    /// Renders Table I (the `table1` harness prints this).
    pub fn render_table1() -> String {
        let rows = [
            "mcn0 | baseline MCN with HR-timer polling implementation",
            "mcn1 | mcn0 + MCN DIMM interrupt mechanism",
            "mcn2 | mcn1 + IPv4 checksum bypassing",
            "mcn3 | mcn2 + MTU increasing to 9KB",
            "mcn4 | mcn3 + enabling TSO",
            "mcn5 | mcn4 + enabling MCN-DMA",
        ];
        let mut s = String::from("TABLE I: DIFFERENT MCN CONFIGURATIONS\n");
        for r in rows {
            s.push_str(r);
            s.push('\n');
        }
        s
    }

    /// Renders Table II from the live configuration.
    pub fn render_table2(&self) -> String {
        format!(
            "TABLE II: SYSTEM CONFIGURATION\n\
             Cores (# cores, freq): MCN/Host | ({}, 2.45GHz)/({}, 3.4GHz)\n\
             Host memory channels           | {}\n\
             MCN local memory channels      | {}\n\
             DRAM                           | DDR4-{}MHz (host), LPDDR4-class (MCN)\n\
             Network                        | {:.0}GbE/{} link latency\n\
             Polling interval (mcn0)        | {}\n\
             SRAM ring capacity             | {} KB per direction\n",
            self.mcn_cores,
            self.host_cores,
            self.host_channels,
            self.mcn_channels,
            2_000_000 / self.host_dram.tck_ps, // MT/s from tCK
            self.eth_bytes_per_sec * 8.0 / 1e9,
            self.eth_latency,
            self.poll_interval,
            self.sram_ring_bytes / 1024,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_are_cumulative() {
        let l0 = McnConfig::level(0);
        assert!(!l0.alert_interrupt && !l0.checksum_bypass && !l0.jumbo_mtu && !l0.tso && !l0.dma);
        let l5 = McnConfig::level(5);
        assert!(l5.alert_interrupt && l5.checksum_bypass && l5.jumbo_mtu && l5.tso && l5.dma);
        for n in 0..=5u32 {
            assert_eq!(McnConfig::level(n).level_number(), Some(n));
        }
    }

    #[test]
    fn display_names_match_table1() {
        assert_eq!(McnConfig::level(0).to_string(), "mcn0");
        assert_eq!(McnConfig::level(5).to_string(), "mcn5");
        let mixed = McnConfig {
            alert_interrupt: false,
            checksum_bypass: true,
            jumbo_mtu: false,
            tso: false,
            dma: false,
        };
        assert_eq!(mixed.level_number(), None);
        assert!(mixed.to_string().starts_with("mcn-custom"));
    }

    #[test]
    fn mtu_follows_jumbo_flag() {
        assert_eq!(McnConfig::level(2).mtu(), 1500);
        assert_eq!(McnConfig::level(3).mtu(), 9000);
    }

    #[test]
    #[should_panic(expected = "Table I")]
    fn level_6_rejected() {
        McnConfig::level(6);
    }

    #[test]
    fn tables_render() {
        let t1 = SystemConfig::render_table1();
        assert!(t1.contains("mcn5 | mcn4 + enabling MCN-DMA"));
        let t2 = SystemConfig::default().render_table2();
        assert!(t2.contains("(4, 2.45GHz)/(8, 3.4GHz)"));
        assert!(t2.contains("DDR4-3200MHz"));
        assert!(t2.contains("10GbE"));
    }
}
