//! A multi-rack Clos datacenter of MCN racks: pods of aggregation
//! switches under a spine tier, with ECMP flow hashing and hierarchical
//! quantum domains.
//!
//! The paper stops at one rack (Sec. VII proposes "replacing a rack of
//! servers with MCN-enabled servers"); this module composes many
//! [`McnRack`]s into the shape the disaggregated-memory successor work
//! assumes — many hosts reaching MCN memory across a switched fabric:
//!
//! ```text
//!              spine0   spine1           (spine tier)
//!             /  |  \  /  |  \
//!        pod0.agg0  pod0.agg1   pod1.agg0  pod1.agg1
//!          /    \    /    \       /   \     /   \
//!       rack0   rack1  ...      rack2  rack3     (ToRs + servers)
//! ```
//!
//! * Every rack's ToR claims frames addressed to the well-known
//!   [gateway MAC](McnSystem::GATEWAY_MAC) and hands them up here;
//!   remote-rack `192.168.r.x` addresses resolve to that MAC through
//!   each server's `/16` gateway route.
//! * Aggregation and spine switches are first-class [`Shard`]s of the
//!   outer scheduler: each owns a serializing ingress `Pipe` whose
//!   capacity models the tier's (oversubscribed) aggregate bandwidth,
//!   plus a store-and-forward delay.
//! * Next-hop choice among equal-cost paths (which agg out of a pod,
//!   which spine) is a deterministic FNV-1a **flow hash** over the
//!   5-tuple, filtered by switch liveness — so a spine loss re-hashes
//!   exactly the affected flows onto the survivors, identically at any
//!   thread count.
//!
//! # Hierarchical quantum domains
//!
//! The datacenter runs the two-level scheme described in
//! [`mcn_sim::shard`]: the **outer** engine synchronizes racks and
//! fabric switches on the long spine-hop quantum (ToR forward +
//! fabric latency), while each rack advances its servers with its own
//! **inner** engine on the short ToR-hop quantum, driven to exactly the
//! outer window edge (`McnRack::drive_window` inside
//! [`Shard::run_window`]). Both engines export the shared domain schema
//! (`sched.domain.cross_pod.*` outer, `sched.domain.intra_rack.*`
//! accumulated inner), so a snapshot shows directly that cross-pod
//! barriers are far rarer than intra-rack windows. Byte-identity at any
//! thread count holds at every level: the outer engine's barrier merge
//! is deterministic, and each inner engine runs serially inside its
//! shard.

use std::collections::VecDeque;

use mcn_net::link::Switch;
use mcn_net::EthernetFrame;
use mcn_node::{ProcId, Process};
use mcn_sim::metrics::{Instrumented, MetricSink};
use mcn_sim::stats::Counter;
use mcn_sim::{
    Activity, Component, EngineStats, EventQueue, Fabric, FaultPlan, OutageKind, OutagePlan,
    Outbox, ParallelEngine, Quantum, RunGoal, RunReport, Shard, ShardStats, SimTime,
};

use crate::config::{McnConfig, SystemConfig};
use crate::rack::{DomainStats, McnRack};
use crate::system::McnSystem;

/// Shape of the Clos fabric. Total racks (`pods * racks_per_pod`) must
/// stay within the 64-rack NIC address plan; each rack within the
/// 10-server rack plan.
#[derive(Debug, Clone)]
pub struct ClosConfig {
    /// Number of pods.
    pub pods: usize,
    /// Racks per pod.
    pub racks_per_pod: usize,
    /// Servers per rack (1..=10).
    pub servers_per_rack: usize,
    /// MCN DIMMs per server.
    pub dimms_per_server: usize,
    /// Aggregation switches per pod (equal-cost paths within a pod).
    pub aggs_per_pod: usize,
    /// Spine switches (equal-cost paths between pods).
    pub spines: usize,
    /// Oversubscription ratio per tier: a switch's aggregate capacity is
    /// the tier's offered load divided by this (1.0 = non-blocking,
    /// 2.0 = classic 2:1).
    pub oversubscription: f64,
    /// One-hop fabric propagation latency (rack→agg, agg→spine, …).
    pub fabric_latency: SimTime,
}

impl Default for ClosConfig {
    /// A small 2×2 Clos: 2 pods × 2 racks × 4 servers × 1 DIMM, two
    /// aggs per pod, two spines, 2:1 oversubscribed, 5 µs hops.
    fn default() -> Self {
        ClosConfig {
            pods: 2,
            racks_per_pod: 2,
            servers_per_rack: 4,
            dimms_per_server: 1,
            aggs_per_pod: 2,
            spines: 2,
            oversubscription: 2.0,
            fabric_latency: SimTime::from_us(5),
        }
    }
}

impl ClosConfig {
    /// Total racks.
    pub fn racks(&self) -> usize {
        self.pods * self.racks_per_pod
    }

    /// Total servers.
    pub fn servers(&self) -> usize {
        self.racks() * self.servers_per_rack
    }

    /// Total fabric switches (aggs + spines).
    pub fn switches(&self) -> usize {
        self.pods * self.aggs_per_pod + self.spines
    }
}

/// A serializing one-way fabric pipe: the same transmit-serialization
/// rule as [`Link`](mcn_net::link::Link) (back-to-back frames queue
/// behind `tx_free`), used for switch ingress so a tier's aggregate
/// capacity is honoured deterministically.
#[derive(Debug)]
struct Pipe {
    bytes_per_sec: u64,
    latency: SimTime,
    tx_free: SimTime,
    /// Frames serialized.
    sent: Counter,
    /// Payload bytes serialized.
    bytes: Counter,
}

impl Pipe {
    fn new(bytes_per_sec: u64, latency: SimTime) -> Self {
        Pipe {
            bytes_per_sec: bytes_per_sec.max(1),
            latency,
            tx_free: SimTime::ZERO,
            sent: Counter::default(),
            bytes: Counter::default(),
        }
    }

    /// Accepts a frame of `wire_len` bytes at `now`; returns its arrival
    /// time at the far end (serialization + propagation).
    fn send(&mut self, wire_len: u64, now: SimTime) -> SimTime {
        let start = self.tx_free.max(now);
        let ser = SimTime::for_bytes(wire_len, self.bytes_per_sec as f64);
        self.tx_free = start + ser;
        self.sent.inc();
        self.bytes.add(wire_len);
        self.tx_free + self.latency
    }
}

impl Instrumented for Pipe {
    fn metrics(&self, out: &mut MetricSink) {
        out.counter("sent", self.sent.get());
        out.counter("bytes", self.bytes.get());
    }
}

/// FNV-1a over the flow 5-tuple (src ip, dst ip, proto, src/dst port for
/// TCP/UDP). Undecodable payloads fall back to the MAC pair. Purely a
/// function of frame bytes, so the same flow always picks the same
/// equal-cost path at any thread count.
fn flow_hash(frame: &EthernetFrame) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    fn eat(h: u64, b: u8) -> u64 {
        (h ^ b as u64).wrapping_mul(PRIME)
    }
    let mut h = OFFSET;
    match mcn_net::Ipv4Packet::decode(&frame.payload) {
        Ok(p) => {
            for b in p.src.octets() {
                h = eat(h, b);
            }
            for b in p.dst.octets() {
                h = eat(h, b);
            }
            let proto = p.proto.to_u8();
            h = eat(h, proto);
            if proto == 6 || proto == 17 {
                // TCP/UDP: the first four payload bytes are the ports.
                for &b in p.payload.iter().take(4) {
                    h = eat(h, b);
                }
            }
        }
        Err(_) => {
            for &b in frame.src.0.iter().chain(frame.dst.0.iter()) {
                h = eat(h, b);
            }
        }
    }
    h
}

/// The destination rack a fabric frame is headed for (third octet of
/// the NIC-plane destination address).
fn dst_rack_of(frame: &EthernetFrame) -> Option<usize> {
    let p = mcn_net::Ipv4Packet::decode(&frame.payload).ok()?;
    let o = p.dst.octets();
    (o[0] == 192 && o[1] == 168 && o[2] != 255).then_some(o[2] as usize)
}

/// A control command the datacenter coordinator hands to one shard at a
/// window boundary.
#[derive(Debug)]
pub(crate) enum DcCmd {
    /// The switch goes dark: staged frames die, arrivals are dropped.
    Down,
    /// The switch returns (with empty buffers and a cold pipe).
    Up,
}

/// A scheduled hard event at the datacenter layer.
#[derive(Debug)]
enum DcOutage {
    /// Fabric switch (shard index) goes dark.
    SwitchDown { sw: usize },
    /// It comes back.
    SwitchUp { sw: usize },
    /// Accounting marker: failure domain `domain` crashes now.
    DomainCrash { domain: usize },
    /// Accounting marker: failure domain `domain` heals now.
    DomainHeal { domain: usize },
}

/// One rack as an outer-level shard: the rack (with its own inner
/// engine), its fabric ingress pipe, and the latency constants the
/// emission bounds need.
#[derive(Debug)]
struct RackShard {
    rack: McnRack,
    /// Fabric → ToR ingress (the agg→rack downlink's share of capacity).
    ingress: Pipe,
    /// ToR store-and-forward latency (stamped on gateway claims).
    tor_fwd: SimTime,
    /// Server link propagation latency (part of the turnaround bound).
    eth_latency: SimTime,
}

impl Shard for RackShard {
    type Frame = EthernetFrame;
    type Cmd = DcCmd;

    fn next_event(&mut self) -> Option<SimTime> {
        self.rack.next_event()
    }

    fn next_emission(&mut self) -> Option<SimTime> {
        // Any gateway claim needs an inner event first, then pays the
        // ToR forward latency. Under-estimating is sound.
        self.rack.next_event().map(|t| t + self.tor_fwd)
    }

    fn turnaround(&self) -> SimTime {
        // A delivered fabric frame pays the ingress pipe's propagation,
        // one server downlink/uplink round and the ToR forward stage
        // before any response can leave; this under-estimates that path.
        self.ingress.latency + self.eth_latency + self.tor_fwd
    }

    fn apply(&mut self, _at: SimTime, _cmd: DcCmd) {
        // Rack-scale outages are pre-expanded into the rack's own
        // schedule at install time; no datacenter command targets racks.
        debug_assert!(false, "DcCmd routed to a rack shard");
    }

    fn deliver(&mut self, at: SimTime, frame: EthernetFrame) {
        let arrival = self.ingress.send(frame.wire_len() as u64, at);
        self.rack.deliver_from_fabric(arrival, frame);
    }

    fn run_window(&mut self, end: SimTime, outbox: &mut Outbox<EthernetFrame>) -> u64 {
        // Hierarchical quantum domains: the rack's inner engine runs its
        // own short-quantum windows serially up to exactly the outer
        // window edge (containment), then hands its gateway claims —
        // stamped with exact ToR-forward times — to the outer barrier
        // (monotone hand-off).
        let steps = self.rack.drive_window(end);
        for (at, frame) in self.rack.take_dc_uplink() {
            outbox.emit(at, frame);
        }
        steps
    }

    fn procs_done(&self) -> bool {
        self.rack.all_procs_done()
    }
}

/// A fabric switch (aggregation or spine) as an outer-level shard: an
/// ingress pipe modeling the tier's aggregate capacity, a
/// store-and-forward stage, and a liveness flag.
#[derive(Debug)]
struct SwitchShard {
    /// Registry name (`pod1.agg0`, `spine2`).
    name: String,
    alive: bool,
    ingress: Pipe,
    /// Store-and-forward latency added to every arrival.
    fwd: SimTime,
    /// Frames that cleared ingress + forwarding, in arrival order
    /// (the serializing pipe makes arrivals monotone).
    staged: VecDeque<(SimTime, EthernetFrame)>,
    /// Frames forwarded onward.
    forwarded: Counter,
    /// Frames lost because the switch was dark (arrivals while down +
    /// staged frames at the moment it went down).
    dead_drops: Counter,
}

impl Shard for SwitchShard {
    type Frame = EthernetFrame;
    type Cmd = DcCmd;

    fn next_event(&mut self) -> Option<SimTime> {
        self.staged.front().map(|&(t, _)| t)
    }

    fn next_emission(&mut self) -> Option<SimTime> {
        // The switch only ever emits staged frames; empty = provably
        // silent until the next delivery.
        self.staged.front().map(|&(t, _)| t)
    }

    fn turnaround(&self) -> SimTime {
        self.ingress.latency + self.fwd
    }

    fn apply(&mut self, _at: SimTime, cmd: DcCmd) {
        match cmd {
            DcCmd::Down => {
                self.alive = false;
                // In flight when the lights went out: lost. Transport
                // retransmits onto a surviving path after re-hash.
                self.dead_drops.add(self.staged.len() as u64);
                self.staged.clear();
            }
            DcCmd::Up => self.alive = true,
        }
    }

    fn deliver(&mut self, at: SimTime, frame: EthernetFrame) {
        if !self.alive {
            self.dead_drops.inc();
            return;
        }
        let arrival = self.ingress.send(frame.wire_len() as u64, at) + self.fwd;
        self.staged.push_back((arrival, frame));
    }

    fn run_window(&mut self, end: SimTime, outbox: &mut Outbox<EthernetFrame>) -> u64 {
        let mut steps = 0;
        while let Some(&(t, _)) = self.staged.front() {
            if t > end {
                break;
            }
            let (t, frame) = self.staged.pop_front().expect("peeked");
            self.forwarded.inc();
            steps += 1;
            outbox.emit(t, frame);
        }
        steps
    }
}

/// One outer-level shard: a whole rack or a fabric switch.
#[derive(Debug)]
enum DcShard {
    // Boxed: a rack (whole inner engine) dwarfs a switch shard.
    Rack(Box<RackShard>),
    Switch(SwitchShard),
}

impl Shard for DcShard {
    type Frame = EthernetFrame;
    type Cmd = DcCmd;

    fn next_event(&mut self) -> Option<SimTime> {
        match self {
            DcShard::Rack(r) => r.next_event(),
            DcShard::Switch(s) => s.next_event(),
        }
    }

    fn next_emission(&mut self) -> Option<SimTime> {
        match self {
            DcShard::Rack(r) => r.next_emission(),
            DcShard::Switch(s) => s.next_emission(),
        }
    }

    fn turnaround(&self) -> SimTime {
        match self {
            DcShard::Rack(r) => r.turnaround(),
            DcShard::Switch(s) => s.turnaround(),
        }
    }

    fn apply(&mut self, at: SimTime, cmd: DcCmd) {
        match self {
            DcShard::Rack(r) => Shard::apply(&mut **r, at, cmd),
            DcShard::Switch(s) => Shard::apply(s, at, cmd),
        }
    }

    fn deliver(&mut self, at: SimTime, frame: EthernetFrame) {
        match self {
            DcShard::Rack(r) => Shard::deliver(&mut **r, at, frame),
            DcShard::Switch(s) => Shard::deliver(s, at, frame),
        }
    }

    fn run_window(&mut self, end: SimTime, outbox: &mut Outbox<EthernetFrame>) -> u64 {
        match self {
            DcShard::Rack(r) => r.run_window(end, outbox),
            DcShard::Switch(s) => s.run_window(end, outbox),
        }
    }

    fn procs_done(&self) -> bool {
        match self {
            DcShard::Rack(r) => Shard::procs_done(&**r),
            DcShard::Switch(s) => Shard::procs_done(s),
        }
    }
}

/// ECMP + fabric routing statistics (deterministic; part of the
/// byte-identity contract).
#[derive(Debug, Default)]
pub struct DcStats {
    /// Equal-cost next-hop decisions made.
    pub routed: Counter,
    /// Frames dropped because no alive equal-cost candidate remained
    /// (or the destination could not be decoded).
    pub dropped: Counter,
    /// Frames handed down into a destination rack.
    pub to_rack: Counter,
    /// Frames an agg forwarded up to the spine tier (cross-pod).
    pub cross_pod: Counter,
    /// Frames an agg turned around inside its pod (intra-pod).
    pub intra_pod: Counter,
    /// Per-switch ECMP path counters (indexed like the switch shards).
    pub per_switch: Vec<Counter>,
    /// Switch outages applied.
    pub switch_downs: Counter,
    /// Correlated failure-domain accounting.
    pub domains: Vec<DomainStats>,
}

/// The coordinator-side routing of the Clos fabric: adjacency from the
/// [`ClosConfig`], ECMP over alive candidates, and the outage schedule.
struct DcFabric<'a> {
    clos: &'a ClosConfig,
    n_racks: usize,
    /// Liveness per shard (racks always `true`; switches mirror the
    /// shard-side flag so route-time checks need no shard access).
    alive: &'a mut [bool],
    outages: &'a mut EventQueue<DcOutage>,
    stats: &'a mut DcStats,
}

impl DcFabric<'_> {
    /// Shard index of `pod`'s `agg`-th aggregation switch.
    fn agg_idx(&self, pod: usize, agg: usize) -> usize {
        self.n_racks + pod * self.clos.aggs_per_pod + agg
    }

    /// Shard index of spine `j`.
    fn spine_idx(&self, j: usize) -> usize {
        self.n_racks + self.clos.pods * self.clos.aggs_per_pod + j
    }

    /// Picks one alive candidate by flow hash and pushes the delivery;
    /// counts a drop if every candidate is dark.
    fn pick(
        &mut self,
        candidates: Vec<usize>,
        at: SimTime,
        frame: EthernetFrame,
        out: &mut Vec<(usize, SimTime, EthernetFrame)>,
    ) {
        let alive: Vec<usize> = candidates.into_iter().filter(|&c| self.alive[c]).collect();
        if alive.is_empty() {
            self.stats.dropped.inc();
            return;
        }
        let pick = alive[(flow_hash(&frame) % alive.len() as u64) as usize];
        self.stats.routed.inc();
        self.stats.per_switch[pick - self.n_racks].inc();
        out.push((pick, at, frame));
    }
}

impl Fabric<DcShard> for DcFabric<'_> {
    fn next_control(&mut self) -> Option<SimTime> {
        self.outages.peek_time()
    }

    fn pop_controls(&mut self, now: SimTime, out: &mut Vec<(usize, SimTime, DcCmd)>) {
        while let Some((at, o)) = self.outages.pop_if_due(now) {
            let at = at.max(now);
            match o {
                DcOutage::SwitchDown { sw } => {
                    self.stats.switch_downs.inc();
                    self.alive[sw] = false;
                    out.push((sw, at, DcCmd::Down));
                }
                DcOutage::SwitchUp { sw } => {
                    self.alive[sw] = true;
                    out.push((sw, at, DcCmd::Up));
                }
                DcOutage::DomainCrash { domain } => {
                    self.stats.domains[domain].crashes.inc();
                }
                DcOutage::DomainHeal { domain } => {
                    self.stats.domains[domain].heals.inc();
                }
            }
        }
    }

    fn route(
        &mut self,
        from: usize,
        at: SimTime,
        frame: EthernetFrame,
        out: &mut Vec<(usize, SimTime, EthernetFrame)>,
    ) {
        let Some(dst_rack) = dst_rack_of(&frame) else {
            self.stats.dropped.inc();
            return;
        };
        if dst_rack >= self.n_racks {
            self.stats.dropped.inc();
            return;
        }
        let rpp = self.clos.racks_per_pod;
        let app = self.clos.aggs_per_pod;
        if from < self.n_racks {
            // Rack uplink: onto one of its pod's aggs.
            let pod = from / rpp;
            let aggs: Vec<usize> = (0..app).map(|a| self.agg_idx(pod, a)).collect();
            self.pick(aggs, at, frame, out);
        } else if from < self.n_racks + self.clos.pods * app {
            // Aggregation switch: down into its pod, or up to a spine.
            let pod = (from - self.n_racks) / app;
            if dst_rack / rpp == pod {
                self.stats.intra_pod.inc();
                self.stats.to_rack.inc();
                out.push((dst_rack, at, frame));
            } else {
                self.stats.cross_pod.inc();
                let spines: Vec<usize> =
                    (0..self.clos.spines).map(|j| self.spine_idx(j)).collect();
                self.pick(spines, at, frame, out);
            }
        } else {
            // Spine: down to the destination pod's aggs.
            let pod = dst_rack / rpp;
            let aggs: Vec<usize> = (0..app).map(|a| self.agg_idx(pod, a)).collect();
            self.pick(aggs, at, frame, out);
        }
    }
}

/// A Clos datacenter of MCN racks, driven by the outer engine of a
/// hierarchical quantum-domain scheduler; see the [module docs](self).
#[derive(Debug)]
pub struct Datacenter {
    shards: Vec<DcShard>,
    clos: ClosConfig,
    now: SimTime,
    /// The outer (cross-pod) scheduler.
    sched: ParallelEngine,
    /// The inner (intra-rack) quantum every rack engine shares.
    rack_quantum: Quantum,
    outages: EventQueue<DcOutage>,
    /// Route-time liveness per shard.
    alive: Vec<bool>,
    /// Fabric statistics.
    pub stats: DcStats,
}

impl Datacenter {
    /// Builds the fabric of `clos` with every server at optimisation
    /// level `cfg`.
    pub fn new(sys: &SystemConfig, cfg: McnConfig, clos: &ClosConfig) -> Self {
        Self::with_faults(sys, cfg, clos, &FaultPlan::default())
    }

    /// [`new`](Self::new) with a deterministic [`FaultPlan`] shared by
    /// every server (fault component names are per-server, so one plan
    /// reaches any server of any rack).
    pub fn with_faults(
        sys: &SystemConfig,
        cfg: McnConfig,
        clos: &ClosConfig,
        plan: &FaultPlan,
    ) -> Self {
        assert!(clos.pods >= 1 && clos.racks_per_pod >= 1, "need at least one rack");
        assert!(clos.racks() <= 64, "NIC MAC plan supports 64 racks");
        assert!(
            (1..=10).contains(&clos.servers_per_rack),
            "address plan supports 1-10 servers per rack"
        );
        assert!(clos.aggs_per_pod >= 1 && clos.spines >= 1, "need switches on both tiers");
        assert!(clos.oversubscription >= 1.0, "oversubscription is a ratio >= 1");
        let n_racks = clos.racks();
        // The ToR parameters every rack shares (the fabric reuses the
        // same store-and-forward stage for its own switches).
        let tor_fwd = Switch::new(clos.servers_per_rack).forward_latency;
        // Aggregate capacity per tier: offered load over oversubscription,
        // split across the tier's equal-cost switches.
        let rack_load = clos.servers_per_rack as f64 * sys.eth_bytes_per_sec;
        let rack_bps = (rack_load / clos.oversubscription) as u64;
        let agg_bps = (rack_load * clos.racks_per_pod as f64
            / (clos.oversubscription * clos.aggs_per_pod as f64)) as u64;
        let spine_bps = (rack_load * n_racks as f64
            / (clos.oversubscription * clos.oversubscription * clos.spines as f64))
            as u64;
        let mut shards = Vec::with_capacity(n_racks + clos.switches());
        let mut rack_quantum = None;
        for r in 0..n_racks {
            let rack = McnRack::new_in_dc(
                sys,
                clos.servers_per_rack,
                clos.dimms_per_server,
                cfg,
                plan,
                r,
            );
            rack_quantum.get_or_insert(rack.quantum());
            shards.push(DcShard::Rack(Box::new(RackShard {
                rack,
                ingress: Pipe::new(rack_bps, clos.fabric_latency),
                tor_fwd,
                eth_latency: sys.eth_latency,
            })));
        }
        let mut per_switch = Vec::new();
        for p in 0..clos.pods {
            for a in 0..clos.aggs_per_pod {
                shards.push(DcShard::Switch(SwitchShard {
                    name: Self::agg_outage_component(p, a),
                    alive: true,
                    ingress: Pipe::new(agg_bps, clos.fabric_latency),
                    fwd: tor_fwd,
                    staged: VecDeque::new(),
                    forwarded: Counter::default(),
                    dead_drops: Counter::default(),
                }));
                per_switch.push(Counter::default());
            }
        }
        for j in 0..clos.spines {
            shards.push(DcShard::Switch(SwitchShard {
                name: Self::spine_outage_component(j),
                alive: true,
                ingress: Pipe::new(spine_bps, clos.fabric_latency),
                fwd: tor_fwd,
                staged: VecDeque::new(),
                forwarded: Counter::default(),
                dead_drops: Counter::default(),
            }));
            per_switch.push(Counter::default());
        }
        let alive = vec![true; shards.len()];
        // The outer quantum: the fastest cross-shard path is one ToR
        // forward stage plus one fabric-hop propagation delay.
        let quantum = Quantum::from_path(tor_fwd, clos.fabric_latency);
        Datacenter {
            shards,
            clos: clos.clone(),
            now: SimTime::ZERO,
            sched: ParallelEngine::new(quantum),
            rack_quantum: rack_quantum.expect("at least one rack"),
            outages: EventQueue::new(),
            alive,
            stats: DcStats { per_switch, ..DcStats::default() },
        }
    }

    /// Outage-plan component name for spine `j`
    /// ([`OutageKind::SwitchDown`]).
    pub fn spine_outage_component(j: usize) -> String {
        format!("spine{j}")
    }

    /// Outage-plan component name for aggregation switch `a` of pod `p`
    /// ([`OutageKind::SwitchDown`]).
    pub fn agg_outage_component(p: usize, a: usize) -> String {
        format!("pod{p}.agg{a}")
    }

    /// Outage-plan component name for whole-rack power events on rack
    /// `r` ([`OutageKind::NodeReboot`] reboots every server at once).
    pub fn rack_outage_component(r: usize) -> String {
        format!("rack{r}")
    }

    /// Expands one failure-domain member name into its (down, up) event
    /// schedulers. Understands `spine{j}`, `pod{p}.agg{a}` and
    /// `rack{r}`.
    fn member_shard(&self, domain: &str, member: &str) -> MemberKind {
        let bad = || -> ! {
            panic!(
                "failure domain '{domain}': member '{member}' names no component \
                 of this datacenter ({} racks, {} aggs/pod, {} spines)",
                self.clos.racks(),
                self.clos.aggs_per_pod,
                self.clos.spines
            )
        };
        if let Some(j) = member.strip_prefix("spine").and_then(|j| j.parse::<usize>().ok()) {
            if j >= self.clos.spines {
                bad();
            }
            return MemberKind::Switch(
                self.clos.racks() + self.clos.pods * self.clos.aggs_per_pod + j,
            );
        }
        if let Some(r) = member.strip_prefix("rack").and_then(|r| r.parse::<usize>().ok()) {
            if r >= self.clos.racks() {
                bad();
            }
            return MemberKind::Rack(r);
        }
        if let Some(rest) = member.strip_prefix("pod") {
            if let Some((p, a)) = rest.split_once(".agg") {
                if let (Ok(p), Ok(a)) = (p.parse::<usize>(), a.parse::<usize>()) {
                    if p < self.clos.pods && a < self.clos.aggs_per_pod {
                        return MemberKind::Switch(
                            self.clos.racks() + p * self.clos.aggs_per_pod + a,
                        );
                    }
                }
            }
            bad();
        }
        bad()
    }

    /// Installs a hard-outage plan at the datacenter layer. Component
    /// names understood:
    ///
    /// * `spine{j}` / `pod{p}.agg{a}` + [`OutageKind::SwitchDown`] — the
    ///   fabric switch goes dark for the duration; ECMP re-hashes flows
    ///   onto the survivors,
    /// * `rack{r}` + [`OutageKind::NodeReboot`] — a rack-scale power
    ///   event: every server of the rack reboots at once (expanded into
    ///   the rack's own inner schedule),
    /// * failure domains whose members use the shapes above +
    ///   [`OutageKind::DomainDown`] — pod-scale correlated events (e.g.
    ///   a pod losing both aggs and a rack to one breaker), counted
    ///   under `fabric.outage.domain.<name>.*`.
    ///
    /// Per-DIMM / per-link chaos *within* a rack still goes through
    /// [`McnRack::set_outage_plan`] on [`rack_mut`](Self::rack_mut).
    ///
    /// # Panics
    ///
    /// Panics if a domain member names a component outside this fabric.
    pub fn set_outage_plan(&mut self, plan: &OutagePlan) {
        for (di, dom) in plan.domains().iter().enumerate() {
            if self.stats.domains.len() <= di {
                self.stats.domains.push(DomainStats {
                    name: dom.name.clone(),
                    crashes: Counter::default(),
                    heals: Counter::default(),
                });
            }
            let mut sched = plan.schedule(&dom.name);
            for (t, kind) in sched.pop_due(SimTime::MAX) {
                let OutageKind::DomainDown { down_for } = kind else {
                    continue;
                };
                // Markers first: stable FIFO order puts the accounting
                // edge before the member commands of the same instant.
                self.outages.schedule(t, DcOutage::DomainCrash { domain: di });
                self.outages.schedule(t + down_for, DcOutage::DomainHeal { domain: di });
                let members: Vec<MemberKind> = dom
                    .members
                    .iter()
                    .map(|m| self.member_shard(&dom.name, m))
                    .collect();
                for m in members {
                    self.schedule_member(m, t, t + down_for);
                }
            }
        }
        for j in 0..self.clos.spines {
            let sw = self.clos.racks() + self.clos.pods * self.clos.aggs_per_pod + j;
            let mut sched = plan.schedule(&Self::spine_outage_component(j));
            for (t, kind) in sched.pop_due(SimTime::MAX) {
                let OutageKind::SwitchDown { down_for } = kind else {
                    continue;
                };
                self.schedule_member(MemberKind::Switch(sw), t, t + down_for);
            }
        }
        for p in 0..self.clos.pods {
            for a in 0..self.clos.aggs_per_pod {
                let sw = self.clos.racks() + p * self.clos.aggs_per_pod + a;
                let mut sched = plan.schedule(&Self::agg_outage_component(p, a));
                for (t, kind) in sched.pop_due(SimTime::MAX) {
                    let OutageKind::SwitchDown { down_for } = kind else {
                        continue;
                    };
                    self.schedule_member(MemberKind::Switch(sw), t, t + down_for);
                }
            }
        }
        for r in 0..self.clos.racks() {
            let mut sched = plan.schedule(&Self::rack_outage_component(r));
            for (t, kind) in sched.pop_due(SimTime::MAX) {
                let OutageKind::NodeReboot { down_for } = kind else {
                    continue;
                };
                self.schedule_member(MemberKind::Rack(r), t, t + down_for);
            }
        }
    }

    fn schedule_member(&mut self, m: MemberKind, at: SimTime, up_at: SimTime) {
        match m {
            MemberKind::Switch(sw) => {
                self.outages.schedule(at, DcOutage::SwitchDown { sw });
                self.outages.schedule(up_at, DcOutage::SwitchUp { sw });
            }
            MemberKind::Rack(r) => {
                let DcShard::Rack(rs) = &mut self.shards[r] else {
                    unreachable!("rack shards are first");
                };
                for s in 0..self.clos.servers_per_rack {
                    rs.rack.schedule_node_outage(s, at, up_at);
                }
            }
        }
    }

    /// The fabric shape.
    pub fn clos(&self) -> &ClosConfig {
        &self.clos
    }

    /// Number of racks.
    pub fn racks(&self) -> usize {
        self.clos.racks()
    }

    /// Access rack `r`.
    pub fn rack(&self, r: usize) -> &McnRack {
        match &self.shards[r] {
            DcShard::Rack(rs) => &rs.rack,
            DcShard::Switch(_) => unreachable!("rack shards are first"),
        }
    }

    /// Mutable access to rack `r` (spawn work, open sockets, install
    /// rack-local chaos; the scheduler re-queries deadlines each window).
    pub fn rack_mut(&mut self, r: usize) -> &mut McnRack {
        match &mut self.shards[r] {
            DcShard::Rack(rs) => &mut rs.rack,
            DcShard::Switch(_) => unreachable!("rack shards are first"),
        }
    }

    /// Access server `s` of rack `r`.
    pub fn server(&self, r: usize, s: usize) -> &McnSystem {
        self.rack(r).server(s)
    }

    /// Mutable access to server `s` of rack `r`.
    pub fn server_mut(&mut self, r: usize, s: usize) -> &mut McnSystem {
        self.rack_mut(r).server_mut(s)
    }

    /// Spawns a process on a host core of server `s` in rack `r`.
    pub fn spawn_host(
        &mut self,
        r: usize,
        s: usize,
        proc: Box<dyn Process>,
        core: usize,
    ) -> ProcId {
        self.server_mut(r, s).spawn_host(proc, core)
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The outer (cross-pod) synchronization quantum.
    pub fn quantum(&self) -> Quantum {
        self.sched.quantum()
    }

    /// All processes on all servers finished?
    pub fn all_procs_done(&self) -> bool {
        self.shards.iter().all(|s| s.procs_done())
    }

    /// Earliest pending activity anywhere in the datacenter.
    pub fn next_event(&mut self) -> Option<SimTime> {
        let mut t = self.outages.peek_time();
        for s in self.shards.iter_mut() {
            t = match (t, Shard::next_event(s)) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
        }
        t.map(|x| x.max(self.now))
    }

    /// Drives the datacenter with the outer windowed scheduler on
    /// `threads` workers.
    fn drive(&mut self, target: SimTime, goal: RunGoal, threads: usize) -> RunReport {
        let Datacenter { shards, clos, now, sched, outages, alive, stats, .. } = self;
        let mut fabric = DcFabric {
            clos,
            n_racks: clos.racks(),
            alive,
            outages,
            stats,
        };
        sched.run(shards, &mut fabric, now, target, goal, threads)
    }

    /// Runs until every process on every server of every rack finishes,
    /// or `deadline` passes (returns false). The result — final clock
    /// and every counter in the registry — is byte-identical at any
    /// `threads` value.
    pub fn run_parallel(&mut self, deadline: SimTime, threads: usize) -> bool {
        self.drive(deadline, RunGoal::ProcsDone, threads).completed
    }

    /// Runs every event up to `deadline` on `threads` workers, then sets
    /// the clock to it.
    pub fn run_parallel_until(&mut self, deadline: SimTime, threads: usize) {
        self.drive(deadline, RunGoal::Deadline, threads);
    }
}

/// A parsed failure-domain member at the datacenter layer.
enum MemberKind {
    /// A fabric switch shard index.
    Switch(usize),
    /// A whole rack.
    Rack(usize),
}

impl Component for Datacenter {
    fn now(&self) -> SimTime {
        Datacenter::now(self)
    }
    fn next_event(&mut self) -> Option<SimTime> {
        Datacenter::next_event(self)
    }
    fn advance(&mut self, t: SimTime) -> Activity {
        assert!(t >= self.now, "time must not go backwards");
        let rep = self.drive(t, RunGoal::Deadline, 1);
        Activity::from_flag(rep.events > 0)
    }
    fn procs_done(&self) -> bool {
        self.all_procs_done()
    }
    fn engine_accounting(&self, out: &mut Vec<(EngineStats, usize)>) {
        for s in &self.shards {
            if let DcShard::Rack(rs) = s {
                rs.rack.engine_accounting(out);
            }
        }
    }
}

impl Instrumented for Datacenter {
    /// The whole datacenter tree: each rack's full registry under
    /// `rack{r}.*` (identical to its standalone paths), the fabric layer
    /// under `fabric.*` (ECMP decisions, per-switch counters, outage
    /// domains), the outer scheduler under `sched.*`, and the two
    /// hierarchical quantum domains under `sched.domain.{cross_pod,
    /// intra_rack}.*` (outer barriers vs accumulated inner windows).
    fn metrics(&self, out: &mut MetricSink) {
        out.counter("now_ps", self.now.as_ps());
        out.scoped("fabric", |out| {
            out.scoped("ecmp", |out| {
                out.counter("routed", self.stats.routed.get());
                out.counter("dropped", self.stats.dropped.get());
                for (i, c) in self.stats.per_switch.iter().enumerate() {
                    let DcShard::Switch(sw) = &self.shards[self.clos.racks() + i] else {
                        unreachable!("switch shards follow the racks");
                    };
                    out.counter(&format!("path.{}", sw.name), c.get());
                }
            });
            out.counter("to_rack", self.stats.to_rack.get());
            out.counter("cross_pod", self.stats.cross_pod.get());
            out.counter("intra_pod", self.stats.intra_pod.get());
            out.counter("switch_downs", self.stats.switch_downs.get());
            for s in &self.shards {
                if let DcShard::Switch(sw) = s {
                    out.scoped(&sw.name, |out| {
                        out.counter("forwarded", sw.forwarded.get());
                        out.counter("dead_drops", sw.dead_drops.get());
                        out.absorb("pipe", &sw.ingress);
                    });
                }
            }
            for d in &self.stats.domains {
                out.scoped(&format!("outage.domain.{}", d.name), |out| {
                    out.counter("crashes", d.crashes.get());
                    out.counter("heals", d.heals.get());
                });
            }
        });
        for (r, s) in self.shards.iter().enumerate() {
            if let DcShard::Rack(rs) = s {
                out.absorb(&format!("rack{r}"), &rs.rack);
                out.scoped(&format!("rack{r}"), |out| {
                    out.absorb("fabric_ingress", &rs.ingress);
                });
            }
        }
        out.scoped("sched", |out| {
            self.sched.metrics(out);
            // The hierarchical quantum domains: the outer engine is the
            // cross-pod domain; every rack's inner engine folds into one
            // intra-rack domain.
            self.sched.domain_metrics("cross_pod", out);
            let mut acc = ShardStats::default();
            for s in &self.shards {
                if let DcShard::Rack(rs) = s {
                    acc.accumulate(&rs.rack.engine().stats);
                }
            }
            ParallelEngine::domain_metrics_for("intra_rack", self.rack_quantum, &acc, out);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcn_sim::MetricsSnapshot;

    fn mk(clos: &ClosConfig) -> Datacenter {
        Datacenter::new(&SystemConfig::default(), McnConfig::level(3), clos)
    }

    #[test]
    fn flow_hash_is_a_pure_function_of_the_flow() {
        let pkt = mcn_net::Ipv4Packet::new(
            std::net::Ipv4Addr::new(192, 168, 0, 1),
            std::net::Ipv4Addr::new(192, 168, 3, 2),
            mcn_net::IpProto::Tcp,
            7,
            bytes::Bytes::from_static(&[0x1F, 0x40, 0x23, 0x28, 1, 2, 3]),
        );
        let f = EthernetFrame::ipv4(
            McnSystem::GATEWAY_MAC,
            McnSystem::nic_mac_in(0, 0),
            pkt.encode().into(),
        );
        assert_eq!(flow_hash(&f), flow_hash(&f.clone()));
        // A different source port moves the hash (with overwhelming
        // probability for FNV over one changed byte).
        let pkt2 = mcn_net::Ipv4Packet {
            payload: bytes::Bytes::from_static(&[0x1F, 0x41, 0x23, 0x28, 1, 2, 3]),
            ..pkt
        };
        let f2 = EthernetFrame::ipv4(
            McnSystem::GATEWAY_MAC,
            McnSystem::nic_mac_in(0, 0),
            pkt2.encode().into(),
        );
        assert_ne!(flow_hash(&f), flow_hash(&f2));
    }

    #[test]
    fn cross_rack_tcp_through_the_fabric() {
        // Host process on rack 0 ↔ host listener on rack 3 (different
        // pods): the path crosses agg → spine → agg.
        let clos = ClosConfig::default(); // 2 pods × 2 racks × 4 servers
        let mut dc = mk(&clos);
        let dst_ip = McnSystem::nic_ip_in(3, 0);
        let lst = dc
            .server_mut(3, 0)
            .host
            .stack
            .tcp_listen(9000)
            .unwrap();
        let cs = dc
            .server_mut(0, 0)
            .host
            .stack
            .tcp_connect(dst_ip, 9000, SimTime::ZERO)
            .unwrap();
        dc.run_parallel_until(SimTime::from_ms(10), 1);
        assert_eq!(
            dc.server(0, 0).host.stack.tcp_state(cs),
            mcn_net::tcp::TcpState::Established,
            "handshake across two pods"
        );
        assert!(dc.server_mut(3, 0).host.stack.tcp_accept(lst).is_some());
        let snap = MetricsSnapshot::collect(&dc);
        assert!(snap.get_u64("fabric.ecmp.routed") > 0, "ECMP engaged");
        assert!(snap.get_u64("fabric.cross_pod") > 0, "spine tier crossed");
        assert!(
            snap.get_u64("sched.domain.cross_pod.barriers")
                < snap.get_u64("sched.domain.intra_rack.windows"),
            "hierarchical quanta engaged"
        );
    }

    #[test]
    fn spine_loss_reroutes_flows_onto_survivors() {
        let clos = ClosConfig::default();
        let mut dc = mk(&clos);
        let mut plan = OutagePlan::new(3);
        plan.at(
            &Datacenter::spine_outage_component(0),
            SimTime::ZERO,
            OutageKind::SwitchDown { down_for: SimTime::from_ms(50) },
        );
        dc.set_outage_plan(&plan);
        let dst_ip = McnSystem::nic_ip_in(2, 1);
        dc.server_mut(2, 1).host.stack.tcp_listen(9100).unwrap();
        let cs = dc
            .server_mut(0, 0)
            .host
            .stack
            .tcp_connect(dst_ip, 9100, SimTime::ZERO)
            .unwrap();
        dc.run_parallel_until(SimTime::from_ms(10), 1);
        assert_eq!(
            dc.server(0, 0).host.stack.tcp_state(cs),
            mcn_net::tcp::TcpState::Established,
            "connection survives with one spine dark"
        );
        let snap = MetricsSnapshot::collect(&dc);
        assert_eq!(snap.get_u64("fabric.ecmp.path.spine0"), 0, "dark spine unused");
        assert!(snap.get_u64("fabric.ecmp.path.spine1") > 0, "survivor carried flows");
        assert_eq!(snap.get_u64("fabric.switch_downs"), 1);
    }

    #[test]
    #[should_panic(expected = "names no component")]
    fn domain_with_unknown_member_panics_at_install() {
        let mut dc = mk(&ClosConfig::default());
        let mut plan = OutagePlan::new(5);
        plan.define_domain("bogus", &["spine9"]);
        plan.domain_crash("bogus", SimTime::from_us(1), SimTime::from_us(1));
        dc.set_outage_plan(&plan);
    }
}
