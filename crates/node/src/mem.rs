//! A node's memory system: channels plus a transfer-job layer.
//!
//! Drivers, DMA engines and compute phases do not issue individual line
//! transactions; they start *jobs* — streams, copies, random-access phases —
//! and the job layer feeds line requests into the per-channel controllers
//! with bounded memory-level parallelism. Achieved bandwidth therefore
//! emerges from the DRAM timing model (row hits, bank parallelism, channel
//! contention), which is the mechanism behind the paper's Fig. 9.

use std::collections::HashMap;

use mcn_dram::{AddressMap, Channel, DramConfig, Interleave, MemKind, MemRequest, Target};
use mcn_sim::{DetRng, SimTime};

/// Caller-chosen identifier delivered with job completions.
pub type WaiterId = u64;

/// Snapshot returned by [`MemorySystem::debug_state`]: `(active jobs,
/// per-channel outstanding, per-channel next event, per-job
/// (id, issued, completed, outstanding, lines))`.
pub type MemDebug = (
    usize,
    Vec<usize>,
    Vec<Option<mcn_sim::SimTime>>,
    Vec<(u64, u64, u64, u32, u64)>,
);

/// Handle to a running transfer job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct JobId(pub u64);

/// Address-generation mode for [`Transfer::Stream`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Access {
    /// Consecutive cache lines (stencil/scan kernels; row-buffer friendly).
    Seq,
    /// Uniform random lines within a span of the given size in bytes
    /// (pointer-chasing/SpMV-like kernels; row-buffer hostile).
    Rand {
        /// Size of the region the random accesses fall in.
        span: u64,
    },
}

/// One side of a copy or a single-direction pattern.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pattern {
    /// Address of the first line.
    pub start: u64,
    /// Byte stride between consecutive lines (64 for dense buffers;
    /// `64 × channels` when compensating for host channel interleaving, as
    /// `memcpy_to_mcn` does — Fig. 6 of the paper).
    pub stride: u64,
    /// DRAM or MCN-interface SRAM.
    pub target: Target,
}

impl Pattern {
    /// A dense DRAM buffer at `start`.
    pub fn dram(start: u64) -> Self {
        Pattern {
            start,
            stride: mcn_dram::LINE_BYTES,
            target: Target::Dram,
        }
    }

    /// An SRAM window at `start` with an explicit stride.
    pub fn sram(start: u64, stride: u64) -> Self {
        Pattern {
            start,
            stride,
            target: Target::Sram,
        }
    }
}

/// A memory transfer job description.
#[derive(Debug, Clone, PartialEq)]
pub enum Transfer {
    /// Compute-phase traffic: one access per line, a `read_frac` fraction of
    /// which are reads, over `bytes` of data.
    Stream {
        /// First address of the region.
        start: u64,
        /// Total bytes touched.
        bytes: u64,
        /// Fraction of accesses that are reads (rest are writes).
        read_frac: f64,
        /// Sequential or random.
        access: Access,
    },
    /// Pipelined copy: each line is read from `src` then written to `dst`.
    Copy {
        /// Source pattern.
        src: Pattern,
        /// Destination pattern.
        dst: Pattern,
        /// Bytes to move.
        bytes: u64,
    },
    /// Single-direction pattern access (ring reads, descriptor writes).
    Single {
        /// The pattern.
        pat: Pattern,
        /// Read or write.
        kind: MemKind,
        /// Bytes to touch.
        bytes: u64,
    },
}

impl Transfer {
    fn lines(&self) -> u64 {
        let bytes = match self {
            Transfer::Stream { bytes, .. }
            | Transfer::Copy { bytes, .. }
            | Transfer::Single { bytes, .. } => *bytes,
        };
        bytes.div_ceil(mcn_dram::LINE_BYTES).max(1)
    }
}

#[derive(Debug)]
struct Job {
    spec: Transfer,
    waiter: WaiterId,
    lines: u64,
    issued: u64,
    completed: u64,
    outstanding: u32,
    mlp: u32,
    /// For Copy: reads completed (writes may only be issued up to here).
    reads_done: u64,
    writes_issued: u64,
    rng: DetRng,
}

/// Default per-job memory-level parallelism (out-of-order window / DMA
/// pipelining depth).
pub const DEFAULT_MLP: u32 = 10;

/// A node's memory channels plus the job layer. See the module docs.
#[derive(Debug)]
pub struct MemorySystem {
    map: AddressMap,
    channels: Vec<Channel>,
    jobs: HashMap<u64, Job>,
    next_job: u64,
    finished: Vec<(WaiterId, JobId)>,
}

impl MemorySystem {
    /// Creates a memory system with `channels` channels of `cfg` DRAM using
    /// bank-group interleaving.
    pub fn new(cfg: &DramConfig, channels: u32) -> Self {
        Self::with_interleave(cfg, channels, Interleave::BgInterleaved)
    }

    /// Creates a memory system with an explicit interleave scheme (the
    /// naive scheme exists for the address-mapping ablation bench).
    pub fn with_interleave(cfg: &DramConfig, channels: u32, il: Interleave) -> Self {
        let map = AddressMap::new(cfg.clone(), channels, il);
        let channels = (0..channels)
            .map(|i| Channel::with_map(map.clone(), i))
            .collect();
        MemorySystem {
            map,
            channels,
            jobs: HashMap::new(),
            next_job: 1,
            finished: Vec::new(),
        }
    }

    /// The address map (shared with drivers that need channel geometry).
    pub fn map(&self) -> &AddressMap {
        &self.map
    }

    /// Per-channel controllers (stats access).
    pub fn channels(&self) -> &[Channel] {
        &self.channels
    }

    /// Total bytes moved across all channels.
    pub fn total_bytes(&self) -> u64 {
        self.channels.iter().map(|c| c.stats().traffic.bytes()).sum()
    }

    /// Starts a transfer job; completion is reported by
    /// [`advance`](Self::advance) as `(waiter, job)`.
    pub fn start(&mut self, spec: Transfer, waiter: WaiterId, now: SimTime) -> JobId {
        self.start_with_mlp(spec, waiter, DEFAULT_MLP, now)
    }

    /// Starts a transfer job with an explicit parallelism window.
    ///
    /// # Panics
    ///
    /// Panics if `mlp` is zero.
    pub fn start_with_mlp(
        &mut self,
        spec: Transfer,
        waiter: WaiterId,
        mlp: u32,
        now: SimTime,
    ) -> JobId {
        assert!(mlp > 0, "mlp must be positive");
        let id = self.next_job;
        self.next_job += 1;
        let job = Job {
            lines: spec.lines(),
            spec,
            waiter,
            issued: 0,
            completed: 0,
            outstanding: 0,
            mlp,
            reads_done: 0,
            writes_issued: 0,
            rng: DetRng::new(id ^ 0x9E37_79B9_7F4A_7C15),
        };
        self.jobs.insert(id, job);
        self.pump(now);
        JobId(id)
    }

    /// Debug dump: (active jobs, per-channel outstanding, per-channel
    /// next_event, per-job (id, issued, completed, outstanding, lines)).
    pub fn debug_state(&self) -> MemDebug {
        let mut jobs: Vec<(u64, u64, u64, u32, u64)> = self
            .jobs
            .iter()
            .map(|(id, j)| (*id, j.issued, j.completed, j.outstanding, j.lines))
            .collect();
        jobs.sort_unstable();
        (
            self.jobs.len(),
            self.channels.iter().map(|c| c.outstanding()).collect(),
            self.channels.iter().map(|c| c.next_event()).collect(),
            jobs,
        )
    }

    /// True while any job or channel has pending work.
    pub fn busy(&self) -> bool {
        !self.jobs.is_empty() || self.channels.iter().any(|c| c.outstanding() > 0)
    }

    /// Next time this memory system wants to run.
    pub fn next_event(&self) -> Option<SimTime> {
        self.channels.iter().filter_map(|c| c.next_event()).min()
    }

    /// Advances all channels to `now`; returns jobs that finished.
    pub fn advance(&mut self, now: SimTime) -> Vec<(WaiterId, JobId)> {
        for ch in &mut self.channels {
            for done in ch.advance(now) {
                let job_id = done.tag >> 1;
                let is_write = done.tag & 1 == 1;
                if let Some(job) = self.jobs.get_mut(&job_id) {
                    job.outstanding -= 1;
                    match &job.spec {
                        Transfer::Copy { .. } => {
                            if is_write {
                                job.completed += 1;
                            } else {
                                job.reads_done += 1;
                            }
                        }
                        _ => job.completed += 1,
                    }
                }
            }
        }
        self.pump(now);
        // Collect finished jobs after pumping (a job with zero remaining
        // issues and zero outstanding is done).
        let mut done_ids = Vec::new();
        for (&id, job) in &self.jobs {
            if job.completed >= job.lines && job.outstanding == 0 {
                done_ids.push(id);
            }
        }
        done_ids.sort_unstable(); // deterministic order
        for id in done_ids {
            let job = self.jobs.remove(&id).expect("present");
            self.finished.push((job.waiter, JobId(id)));
        }
        std::mem::take(&mut self.finished)
    }

    /// Issues as many line requests as windows and queues allow.
    fn pump(&mut self, now: SimTime) {
        let nch = self.channels.len() as u64;
        let map = self.map.clone();
        let mut ids: Vec<u64> = self.jobs.keys().copied().collect();
        ids.sort_unstable();
        for id in ids {
            let job = self.jobs.get_mut(&id).expect("present");
            loop {
                if job.outstanding >= job.mlp {
                    break;
                }
                // Decide the next request for this job.
                let req = match &job.spec {
                    Transfer::Stream {
                        start,
                        read_frac,
                        access,
                        ..
                    } => {
                        if job.issued >= job.lines {
                            break;
                        }
                        let line = match access {
                            Access::Seq => job.issued,
                            Access::Rand { span } => {
                                job.rng.next_below((span / mcn_dram::LINE_BYTES).max(1))
                            }
                        };
                        let addr = start + line * mcn_dram::LINE_BYTES;
                        let kind = if job.rng.next_f64() < *read_frac {
                            MemKind::Read
                        } else {
                            MemKind::Write
                        };
                        MemRequest {
                            addr,
                            kind,
                            target: Target::Dram,
                            tag: id << 1,
                        }
                    }
                    Transfer::Single { pat, kind, .. } => {
                        if job.issued >= job.lines {
                            break;
                        }
                        MemRequest {
                            addr: pat.start + job.issued * pat.stride,
                            kind: *kind,
                            target: pat.target,
                            tag: (id << 1) | u64::from(*kind == MemKind::Write),
                        }
                    }
                    Transfer::Copy { src, dst, .. } => {
                        // Prefer issuing writes for completed reads, then
                        // more reads.
                        if job.writes_issued < job.reads_done {
                            let i = job.writes_issued;
                            MemRequest {
                                addr: dst.start + i * dst.stride,
                                kind: MemKind::Write,
                                target: dst.target,
                                tag: (id << 1) | 1,
                            }
                        } else if job.issued < job.lines {
                            let i = job.issued;
                            MemRequest {
                                addr: src.start + i * src.stride,
                                kind: MemKind::Read,
                                target: src.target,
                                tag: id << 1,
                            }
                        } else {
                            break;
                        }
                    }
                };
                let ch = (map.channel_of(req.addr) as u64 % nch) as usize;
                if !self.channels[ch].can_accept(req.kind) {
                    break; // channel full: retry on its next completion
                }
                self.channels[ch].push(req, now);
                job.outstanding += 1;
                match (&job.spec, req.kind) {
                    (Transfer::Copy { .. }, MemKind::Write) => job.writes_issued += 1,
                    (Transfer::Copy { .. }, MemKind::Read) => job.issued += 1,
                    _ => job.issued += 1,
                }
            }
        }
    }

}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(ms: &mut MemorySystem) -> Vec<(WaiterId, JobId)> {
        let mut done = Vec::new();
        let mut guard = 0;
        while ms.busy() {
            let Some(t) = ms.next_event() else { break };
            done.extend(ms.advance(t));
            guard += 1;
            assert!(guard < 2_000_000, "runaway memory drive loop");
        }
        done
    }

    fn sys(channels: u32) -> MemorySystem {
        MemorySystem::new(&DramConfig::ddr4_3200(), channels)
    }

    #[test]
    fn stream_job_completes_and_reports_waiter() {
        let mut ms = sys(2);
        let id = ms.start(
            Transfer::Stream {
                start: 0,
                bytes: 64 * 1024,
                read_frac: 1.0,
                access: Access::Seq,
            },
            77,
            SimTime::ZERO,
        );
        let done = drive(&mut ms);
        assert_eq!(done, vec![(77, id)]);
        assert_eq!(ms.total_bytes(), 64 * 1024);
    }

    #[test]
    fn copy_job_moves_double_traffic() {
        let mut ms = sys(1);
        ms.start(
            Transfer::Copy {
                src: Pattern::dram(0),
                dst: Pattern::dram(1 << 20),
                bytes: 16 * 1024,
            },
            1,
            SimTime::ZERO,
        );
        drive(&mut ms);
        // Copy reads + writes every line: 2x the payload.
        assert_eq!(ms.total_bytes(), 2 * 16 * 1024);
        let st = &ms.channels()[0].stats();
        assert_eq!(st.reads.get(), 256);
        assert_eq!(st.writes.get(), 256);
    }

    #[test]
    fn two_channels_faster_than_one_for_streams() {
        let finish = |channels: u32| -> SimTime {
            let mut ms = sys(channels);
            for w in 0..8u64 {
                ms.start_with_mlp(
                    Transfer::Stream {
                        start: w * (1 << 22),
                        bytes: 1 << 20,
                        read_frac: 1.0,
                        access: Access::Seq,
                    },
                    w,
                    16,
                    SimTime::ZERO,
                );
            }
            let mut last = SimTime::ZERO;
            while ms.busy() {
                let Some(t) = ms.next_event() else { break };
                if !ms.advance(t).is_empty() {
                    last = t;
                }
            }
            last
        };
        let one = finish(1);
        let two = finish(2);
        assert!(
            two.as_ps() * 3 < one.as_ps() * 2,
            "2 channels should be much faster: 1ch {one}, 2ch {two}"
        );
    }

    #[test]
    fn random_stream_slower_than_sequential() {
        let run = |access: Access| -> SimTime {
            let mut ms = sys(1);
            ms.start(
                Transfer::Stream {
                    start: 0,
                    bytes: 1 << 20,
                    read_frac: 1.0,
                    access,
                },
                0,
                SimTime::ZERO,
            );
            let mut last = SimTime::ZERO;
            while ms.busy() {
                let Some(t) = ms.next_event() else { break };
                ms.advance(t);
                last = t;
            }
            last
        };
        let seq = run(Access::Seq);
        let rnd = run(Access::Rand { span: 1 << 30 });
        assert!(
            rnd > seq * 2,
            "random access should be >2x slower: seq {seq}, rand {rnd}"
        );
    }

    #[test]
    fn sram_copy_lands_on_interleave_matched_channel() {
        // 2 channels; an SRAM window on channel 1 must be addressed with a
        // stride of 2*64 starting at an odd line.
        let mut ms = sys(2);
        ms.start(
            Transfer::Copy {
                src: Pattern::dram(0),
                dst: Pattern::sram(64, 128), // line 1, stride 2 lines
                bytes: 8 * 1024,
            },
            5,
            SimTime::ZERO,
        );
        drive(&mut ms);
        // All SRAM writes on channel 1, none on channel 0.
        assert_eq!(ms.channels()[1].stats().sram_ops.get(), 128);
        assert_eq!(ms.channels()[0].stats().sram_ops.get(), 0);
    }

    #[test]
    fn many_concurrent_jobs_all_finish() {
        let mut ms = sys(2);
        for w in 0..20u64 {
            ms.start(
                Transfer::Single {
                    pat: Pattern::dram(w * (1 << 16)),
                    kind: if w % 2 == 0 {
                        MemKind::Read
                    } else {
                        MemKind::Write
                    },
                    bytes: 4096,
                },
                w,
                SimTime::ZERO,
            );
        }
        let done = drive(&mut ms);
        assert_eq!(done.len(), 20);
        let mut waiters: Vec<u64> = done.iter().map(|(w, _)| *w).collect();
        waiters.sort_unstable();
        assert_eq!(waiters, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn zero_byte_job_still_completes() {
        let mut ms = sys(1);
        ms.start(
            Transfer::Single {
                pat: Pattern::dram(0),
                kind: MemKind::Read,
                bytes: 1, // rounds up to one line
            },
            9,
            SimTime::ZERO,
        );
        let done = drive(&mut ms);
        assert_eq!(done.len(), 1);
    }
}
