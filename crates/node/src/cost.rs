//! CPU-time cost model for kernel and driver work.
//!
//! All constants are expressed in nanoseconds **at the reference frequency**
//! of 3.4 GHz (the paper's host cores, Table II) and scaled linearly with
//! the core's clock when charged on a slower core (the 2.45 GHz MCN
//! processor pays 3.4/2.45 ≈ 1.39× more wall time for the same work).
//!
//! The values follow published kernel-path measurements (NetDev/eBPF-era
//! profiling of `tcp_sendmsg`/NAPI paths) and were jointly calibrated so
//! that the *baseline* reproduces its anchors: a single 10GbE iperf stream
//! saturates the wire at ~9.4 Gbit/s, and a 16-byte ping RTT between two
//! hosts over one switch lands near the ~25–30 µs the paper's Table III
//! and Fig. 8(b) imply. The MCN results are *not* calibrated — they emerge
//! from the same constants plus the structural differences (no PHY, SRAM
//! copies, polling vs. interrupts).

use serde::{Deserialize, Serialize};

use mcn_sim::SimTime;

/// CPU-time constants (ns at 3.4 GHz) and the scaling machinery.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// This core's frequency in GHz (scales every charge).
    pub freq_ghz: f64,

    /// Syscall entry/exit + socket lock for one `tcp_sendmsg`/`tcp_recvmsg`
    /// call (independent of size).
    pub syscall_ns: f64,
    /// TCP/IP transmit-path processing per packet: header construction,
    /// route lookup, qdisc — excluding checksum and copies.
    pub tcp_tx_pkt_ns: f64,
    /// TCP/IP receive-path processing per packet: demux, state machine,
    /// sk_buff bookkeeping — excluding checksum and copies.
    pub tcp_rx_pkt_ns: f64,
    /// Extra cost to process a pure ACK (much lighter than a data packet).
    pub tcp_ack_ns: f64,
    /// Software checksum, per byte (~0.75 cycles/byte with vectorised
    /// csum_partial). The `mcn2` optimisation deletes these charges.
    pub checksum_per_byte_ns: f64,
    /// Kernel memcpy per byte when the data is DRAM-resident (charged
    /// *instead of* modelled line traffic only for small control copies;
    /// bulk copies go through the memory system as real transactions).
    pub memcpy_per_byte_ns: f64,
    /// Hardware interrupt entry + handler dispatch + exit.
    pub irq_ns: f64,
    /// Scheduling a softirq/tasklet and entering its handler.
    pub softirq_ns: f64,
    /// NIC driver transmit work per packet: descriptor write + doorbell.
    pub driver_tx_pkt_ns: f64,
    /// NIC driver receive work per packet: ring cleanup + sk_buff alloc.
    pub driver_rx_pkt_ns: f64,
    /// One high-resolution-timer expiry (timer interrupt + requeue) —
    /// the cost the `mcn1` ALERT_N interrupt removes from the idle path.
    pub hrtimer_ns: f64,
    /// Reading one MCN SRAM poll field from the driver (uncached load is
    /// modelled as channel traffic; this is the surrounding driver code).
    pub poll_check_ns: f64,
    /// MPI library overhead per message send/recv (matching, envelope).
    pub mpi_msg_ns: f64,
    /// CPU `memcpy_to_mcn` per byte: writes through the write-combining
    /// SRAM window (paper Sec. III-B "memory mapping unit"). WC merges to
    /// cache-line bursts, so writes are reasonably fast but still
    /// uncacheable-ordered.
    pub sram_wr_per_byte_ns: f64,
    /// CPU `memcpy_from_mcn` per byte: cacheable reads of the SRAM window
    /// followed by explicit invalidation — the slow direction (~2 GB/s),
    /// and the reason Table III's MCN Driver-RX dominates. MCN-DMA (mcn5)
    /// removes these charges entirely.
    pub sram_rd_per_byte_ns: f64,
}

impl CostModel {
    /// Host-class core (3.4 GHz, Table II).
    pub fn host() -> Self {
        CostModel {
            freq_ghz: 3.4,
            syscall_ns: 400.0,
            tcp_tx_pkt_ns: 450.0,
            tcp_rx_pkt_ns: 550.0,
            tcp_ack_ns: 200.0,
            checksum_per_byte_ns: 0.20,
            memcpy_per_byte_ns: 0.15,
            irq_ns: 1_200.0,
            softirq_ns: 300.0,
            driver_tx_pkt_ns: 200.0,
            driver_rx_pkt_ns: 250.0,
            hrtimer_ns: 450.0,
            poll_check_ns: 120.0,
            mpi_msg_ns: 400.0,
            sram_wr_per_byte_ns: 0.15,
            sram_rd_per_byte_ns: 0.40,
        }
    }

    /// MCN processor core (2.45 GHz mobile core, Table II). Same reference
    /// constants — the scaling by frequency plus the narrower core is
    /// approximated with a single IPC derate folded into the frequency.
    pub fn mcn() -> Self {
        CostModel {
            // 2.45 GHz × ~0.8 relative IPC of the 3-wide mobile core vs the
            // host core on kernel code ≈ 1.96 "effective GHz".
            freq_ghz: 1.96,
            ..Self::host()
        }
    }

    fn scale(&self, ns_at_ref: f64) -> SimTime {
        SimTime::from_ns_f64(ns_at_ref * 3.4 / self.freq_ghz)
    }

    /// One socket syscall.
    pub fn syscall(&self) -> SimTime {
        self.scale(self.syscall_ns)
    }

    /// Transmit-path protocol processing for a packet of `payload` bytes;
    /// `checksum` controls whether software checksumming is charged.
    pub fn tcp_tx(&self, payload: usize, checksum: bool) -> SimTime {
        let mut ns = self.tcp_tx_pkt_ns;
        if checksum {
            ns += self.checksum_per_byte_ns * payload as f64;
        }
        self.scale(ns)
    }

    /// Receive-path protocol processing for a packet of `payload` bytes.
    pub fn tcp_rx(&self, payload: usize, checksum: bool) -> SimTime {
        let mut ns = self.tcp_rx_pkt_ns;
        if checksum {
            ns += self.checksum_per_byte_ns * payload as f64;
        }
        self.scale(ns)
    }

    /// Processing a pure ACK.
    pub fn tcp_ack(&self) -> SimTime {
        self.scale(self.tcp_ack_ns)
    }

    /// A small control-path copy of `bytes` (header fixups etc.).
    pub fn small_copy(&self, bytes: usize) -> SimTime {
        self.scale(self.memcpy_per_byte_ns * bytes as f64)
    }

    /// Hardware interrupt overhead.
    pub fn irq(&self) -> SimTime {
        self.scale(self.irq_ns)
    }

    /// Softirq/tasklet scheduling overhead.
    pub fn softirq(&self) -> SimTime {
        self.scale(self.softirq_ns)
    }

    /// NIC driver transmit work per packet.
    pub fn driver_tx(&self) -> SimTime {
        self.scale(self.driver_tx_pkt_ns)
    }

    /// NIC driver receive work per packet.
    pub fn driver_rx(&self) -> SimTime {
        self.scale(self.driver_rx_pkt_ns)
    }

    /// One HR-timer expiry.
    pub fn hrtimer(&self) -> SimTime {
        self.scale(self.hrtimer_ns)
    }

    /// Driver-side poll check of one MCN DIMM.
    pub fn poll_check(&self) -> SimTime {
        self.scale(self.poll_check_ns)
    }

    /// MPI per-message library overhead.
    pub fn mpi_msg(&self) -> SimTime {
        self.scale(self.mpi_msg_ns)
    }

    /// CPU cost of `memcpy_to_mcn` for `bytes` (write-combined SRAM window).
    pub fn sram_write_copy(&self, bytes: usize) -> SimTime {
        self.scale(self.sram_wr_per_byte_ns * bytes as f64)
    }

    /// CPU cost of `memcpy_from_mcn` for `bytes` (cacheable read +
    /// invalidate of the SRAM window).
    pub fn sram_read_copy(&self, bytes: usize) -> SimTime {
        self.scale(self.sram_rd_per_byte_ns * bytes as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_constants_scale_identity() {
        let c = CostModel::host();
        assert_eq!(c.syscall(), SimTime::from_ns(400));
        assert_eq!(c.irq(), SimTime::from_ns(1200));
    }

    #[test]
    fn slower_core_pays_more() {
        let h = CostModel::host();
        let m = CostModel::mcn();
        assert!(m.syscall() > h.syscall());
        let ratio = m.syscall().as_ns_f64() / h.syscall().as_ns_f64();
        assert!((ratio - 3.4 / 1.96).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn checksum_scales_with_size() {
        let c = CostModel::host();
        let small = c.tcp_tx(64, true);
        let big = c.tcp_tx(9000, true);
        assert!(big > small);
        // Without checksum, size does not matter on this path.
        assert_eq!(c.tcp_tx(64, false), c.tcp_tx(9000, false));
        // 9000B checksum ≈ 1.8 us at 0.20 ns/B.
        let delta = (big - c.tcp_tx(9000, false)).as_ns_f64();
        assert!((delta - 1800.0).abs() < 1.0, "delta {delta}");
    }

    #[test]
    fn ack_cheaper_than_data_packet() {
        let c = CostModel::host();
        assert!(c.tcp_ack() < c.tcp_rx(1460, true));
    }
}
