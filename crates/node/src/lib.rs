//! # mcn-node — simulated compute nodes
//!
//! Substrate crate for the MCN reproduction: everything a simulated machine
//! needs besides the network stack (`mcn-net`) and the DRAM model
//! (`mcn-dram`), which it composes:
//!
//! * [`CostModel`] — the documented CPU-time constants for protocol
//!   processing, checksums, syscalls, interrupts and driver work, scaled by
//!   core frequency. These are the calibration surface of the whole
//!   reproduction: every latency/bandwidth figure depends on them, so they
//!   live in one place with justifications.
//! * [`CpuPool`] — per-core busy timelines with utilization accounting;
//!   work is scheduled non-preemptively at task granularity.
//! * [`MemorySystem`] — a node's memory channels plus a *job* layer:
//!   streaming access phases (compute kernels), copy jobs (driver
//!   `memcpy`, DMA transfers) and random-access phases, each issuing real
//!   line transactions with bounded memory-level parallelism, so achieved
//!   bandwidth emerges from the DRAM model.
//! * [`Process`]/[`ProcRunner`] — cooperative application state machines
//!   (iperf, ping, MPI ranks) with blocking-style waits on sockets, timers,
//!   compute and memory phases.
//! * [`Nic`] — the 10GbE baseline NIC: TX/RX descriptor rings in DRAM, DMA
//!   engines that issue real memory traffic, MSI interrupts with NAPI-style
//!   polling, connected to `mcn-net`'s link models. Table III's DMA-TX /
//!   DMA-RX / Driver-TX / Driver-RX breakdown is measured here.
//!
//! The MCN DIMM device and its drivers — the paper's contribution — are
//! *not* here; they live in the `mcn` crate and are built from the same
//! parts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod cpu;
pub mod mem;
pub mod nic;
pub mod node;
pub mod proc;

pub use cost::CostModel;
pub use cpu::CpuPool;
pub use mem::{Access, JobId, MemorySystem, Transfer, WaiterId};
pub use nic::{Nic, NicConfig};
pub use node::Node;
pub use proc::{ProcCtx, ProcId, ProcRunner, Process, Poll, Wake};
