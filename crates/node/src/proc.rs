//! Cooperative application processes.
//!
//! Applications (iperf, ping, MPI ranks, workload kernels) are state
//! machines implementing [`Process`]. A process is `poll`ed when runnable;
//! it performs non-blocking socket/memory operations through [`ProcCtx`]
//! (which charges syscall and compute costs to its pinned core) and returns
//! what it is waiting for. The [`ProcRunner`] turns stack events, memory-job
//! completions and timer deadlines into wake-ups.
//!
//! This mirrors how one writes applications against an event loop and keeps
//! every workload deterministic and single-threaded.

use std::collections::VecDeque;

use mcn_net::{NetStack, SockId};
use mcn_sim::SimTime;

use crate::cost::CostModel;
use crate::cpu::CpuPool;
use crate::mem::{Access, JobId, MemorySystem, Transfer, WaiterId};

/// Process handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProcId(pub usize);

/// What a blocked process is waiting for. Wake-ups may be spurious;
/// processes re-check their condition on the next poll.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Wake {
    /// Activity on a socket (readable/writable/accept/state change).
    Sock(SockId),
    /// Any ICMP echo reply delivered to this node.
    AnyPing,
    /// An absolute time.
    Timer(SimTime),
    /// Completion of a memory job started via [`ProcCtx::mem_stream`] /
    /// [`ProcCtx::mem_job`].
    Job(JobId),
}

/// Result of polling a process.
#[derive(Debug)]
pub enum Poll {
    /// Block until any of these wakes fire.
    ///
    /// Must be non-empty (an empty wait set would sleep forever).
    Wait(Vec<Wake>),
    /// The process finished.
    Done,
}

/// An application state machine.
///
/// `Send` is a supertrait so a node (and everything above it, up to an
/// [`McnRack`-style] shard) can migrate to a worker thread under the
/// quantum-synchronized parallel engine; processes hold no thread-bound
/// state.
///
/// [`McnRack`-style]: mcn_sim::shard::Shard
pub trait Process: Send {
    /// Advances the process as far as possible without blocking.
    fn poll(&mut self, ctx: &mut ProcCtx<'_>) -> Poll;

    /// Short name for logs and traces.
    fn name(&self) -> &str {
        "proc"
    }
}

/// The per-poll view a process gets of its node. All socket wrappers charge
/// the syscall cost; heavier per-packet costs are charged by the driver
/// layer, not here (a `send()` of 1 MB is one syscall but many packets).
pub struct ProcCtx<'a> {
    /// Current simulation time.
    pub now: SimTime,
    /// The node's network stack.
    pub stack: &'a mut NetStack,
    /// The node's memory system.
    pub mem: &'a mut MemorySystem,
    /// The node's cost model.
    pub cost: &'a CostModel,
    pub(crate) charged: SimTime,
    pub(crate) waiter: WaiterId,
}

impl ProcCtx<'_> {
    /// Charges raw CPU time to the calling process's core.
    pub fn charge(&mut self, t: SimTime) {
        self.charged += t;
    }

    /// Charges pure compute time (alias of [`charge`](Self::charge) with
    /// intent).
    pub fn compute(&mut self, t: SimTime) {
        self.charge(t);
    }

    /// Starts a memory-streaming phase (compute kernel traffic); wake on
    /// [`Wake::Job`].
    pub fn mem_stream(&mut self, start: u64, bytes: u64, read_frac: f64, access: Access) -> JobId {
        self.mem.start(
            Transfer::Stream {
                start,
                bytes,
                read_frac,
                access,
            },
            self.waiter,
            self.now,
        )
    }

    /// Starts an arbitrary memory job owned by this process.
    pub fn mem_job(&mut self, spec: Transfer) -> JobId {
        self.mem.start(spec, self.waiter, self.now)
    }

    /// `listen(2)` wrapper.
    ///
    /// # Panics
    ///
    /// Panics if the port is already bound on this node — always a
    /// workload-wiring bug, never a runtime condition to recover from.
    pub fn tcp_listen(&mut self, port: u16) -> SockId {
        self.charge(self.cost.syscall());
        self.stack
            .tcp_listen(port)
            .unwrap_or_else(|e| panic!("tcp_listen({port}): {e}"))
    }

    /// `listen(2)` wrapper with explicit queue bounds: at most
    /// `syn_backlog` half-open and `accept_backlog` accept-queued
    /// connections; excess SYNs are dropped (counted) or refused with RST.
    ///
    /// # Panics
    ///
    /// Panics if the port is already bound on this node (workload-wiring
    /// bug, like [`tcp_listen`](Self::tcp_listen)).
    pub fn tcp_listen_with_backlog(
        &mut self,
        port: u16,
        syn_backlog: usize,
        accept_backlog: usize,
    ) -> SockId {
        self.charge(self.cost.syscall());
        self.stack
            .tcp_listen_with_backlog(port, syn_backlog, accept_backlog)
            .unwrap_or_else(|e| panic!("tcp_listen_with_backlog({port}): {e}"))
    }

    /// `accept(2)` wrapper (non-blocking).
    pub fn tcp_accept(&mut self, listener: SockId) -> Option<SockId> {
        self.charge(self.cost.syscall());
        self.stack.tcp_accept(listener)
    }

    /// `connect(2)` wrapper.
    pub fn tcp_connect(&mut self, dst: std::net::Ipv4Addr, port: u16) -> Option<SockId> {
        self.charge(self.cost.syscall());
        self.stack.tcp_connect(dst, port, self.now).ok()
    }

    /// `send(2)` wrapper; returns bytes accepted (0 = would block).
    /// Charges the syscall plus the user→kernel copy of the accepted bytes.
    pub fn tcp_send(&mut self, sock: SockId, data: &[u8]) -> usize {
        self.charge(self.cost.syscall());
        let n = self.stack.tcp_send(sock, data, self.now).unwrap_or(0);
        self.charge(self.cost.small_copy(n));
        n
    }

    /// `recv(2)` wrapper; returns bytes read (0 = would block or EOF —
    /// check [`ProcCtx::tcp_at_eof`]). Charges the kernel→user copy.
    pub fn tcp_recv(&mut self, sock: SockId, buf: &mut [u8]) -> usize {
        self.charge(self.cost.syscall());
        let n = self.stack.tcp_recv(sock, buf, self.now).unwrap_or(0);
        self.charge(self.cost.small_copy(n));
        n
    }

    /// `close(2)` wrapper.
    pub fn tcp_close(&mut self, sock: SockId) {
        self.charge(self.cost.syscall());
        self.stack.tcp_close(sock, self.now);
    }

    /// Connection established?
    pub fn tcp_established(&self, sock: SockId) -> bool {
        self.stack.tcp_state(sock) == mcn_net::tcp::TcpState::Established
    }

    /// End of peer stream?
    pub fn tcp_at_eof(&self, sock: SockId) -> bool {
        self.stack.tcp_at_eof(sock)
    }

    /// True when the connection died abnormally (RTO give-up, keepalive
    /// give-up, or peer reset) — the dead-peer signal serving loops act on.
    pub fn tcp_failed(&self, sock: SockId) -> bool {
        self.stack.tcp_failed(sock)
    }

    /// Why the connection died ([`tcp_failed`](Self::tcp_failed) with the
    /// cause): `None` while healthy, `Some(TimedOut | PeerReset |
    /// KeepaliveTimeout)` once terminal. Resilient clients key failover
    /// policy off the variant.
    pub fn tcp_error(&self, sock: SockId) -> Option<mcn_net::tcp::TcpError> {
        self.stack.tcp_error(sock)
    }

    /// Peer-advertised receive window in bytes (`None` for unknown
    /// handles). `Some(0)` means the peer is alive but full — persist
    /// probes are in flight and a stalled request should *not* be treated
    /// as a dead backend.
    pub fn tcp_peer_window(&self, sock: SockId) -> Option<u32> {
        self.stack.tcp_snd_wnd(sock)
    }

    /// `close(2)`-and-forget for a connection the process is abandoning:
    /// aborts if still open and releases the slot immediately.
    pub fn tcp_drop(&mut self, sock: SockId) {
        self.charge(self.cost.syscall());
        self.stack.sock_drop(sock, self.now);
    }

    /// Sends an ICMP echo request; the reply arrives as a
    /// [`Wake::AnyPing`] wake plus a `PingReply` stack event.
    pub fn ping(&mut self, dst: std::net::Ipv4Addr, ident: u16, seq: u16, len: usize) {
        self.charge(self.cost.syscall());
        let _ = self
            .stack
            .send_ping(dst, ident, seq, bytes::Bytes::from(vec![0x42u8; len]), self.now);
    }
}

#[derive(Debug, PartialEq)]
enum ProcState {
    Ready,
    Waiting(Vec<Wake>),
    Done,
}

struct Entry {
    proc: Box<dyn Process>,
    state: ProcState,
    core: usize,
}

impl std::fmt::Debug for Entry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Entry")
            .field("name", &self.proc.name())
            .field("state", &self.state)
            .field("core", &self.core)
            .finish()
    }
}

/// Schedules [`Process`]es onto a node's cores and routes wake-ups.
#[derive(Debug, Default)]
pub struct ProcRunner {
    procs: Vec<Entry>,
    run_queue: VecDeque<usize>,
}

/// Waiter-id namespace tag for processes (disambiguates process waiters
/// from device waiters in a node's MemorySystem).
pub const PROC_WAITER_BASE: WaiterId = 1 << 32;

impl ProcRunner {
    /// Creates an empty runner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a process pinned to `core`; it becomes runnable
    /// immediately.
    pub fn spawn(&mut self, proc: Box<dyn Process>, core: usize) -> ProcId {
        self.procs.push(Entry {
            proc,
            state: ProcState::Ready,
            core,
        });
        let id = self.procs.len() - 1;
        self.run_queue.push_back(id);
        ProcId(id)
    }

    /// The memory-system waiter id belonging to process `id`.
    pub fn waiter_of(id: ProcId) -> WaiterId {
        PROC_WAITER_BASE + id.0 as u64
    }

    /// Reverse mapping: the process owning `waiter`, if it is a process
    /// waiter. Process waiters occupy `[PROC_WAITER_BASE,
    /// PROC_WAITER_BASE + 2^30)`; device waiters (NIC, MCN drivers) use
    /// distinct higher bits and fall outside the range.
    pub fn proc_of_waiter(waiter: WaiterId) -> Option<ProcId> {
        (PROC_WAITER_BASE..PROC_WAITER_BASE + (1 << 30))
            .contains(&waiter)
            .then(|| ProcId((waiter - PROC_WAITER_BASE) as usize))
    }

    /// All processes finished?
    pub fn all_done(&self) -> bool {
        self.procs.iter().all(|e| e.state == ProcState::Done)
    }

    /// Number of unfinished processes.
    pub fn live(&self) -> usize {
        self.procs
            .iter()
            .filter(|e| e.state != ProcState::Done)
            .count()
    }

    /// One formatted line per unfinished process — name, core, and what it
    /// is waiting on — for stall diagnostics when a drive loop quiesces
    /// with live processes.
    pub fn stalled_procs(&self) -> Vec<String> {
        self.procs
            .iter()
            .enumerate()
            .filter(|(_, e)| e.state != ProcState::Done)
            .map(|(i, e)| {
                let state = match &e.state {
                    ProcState::Ready => "Ready".to_string(),
                    ProcState::Waiting(wakes) => format!("Waiting({wakes:?})"),
                    ProcState::Done => unreachable!(),
                };
                format!("proc{} '{}' core{}: {}", i, e.proc.name(), e.core, state)
            })
            .collect()
    }

    fn wake_if(&mut self, pred: impl Fn(&Wake) -> bool) {
        for (i, e) in self.procs.iter_mut().enumerate() {
            if let ProcState::Waiting(wakes) = &e.state {
                if wakes.iter().any(&pred) {
                    e.state = ProcState::Ready;
                    self.run_queue.push_back(i);
                }
            }
        }
    }

    /// Wakes processes waiting on this socket.
    pub fn on_sock_event(&mut self, sock: SockId) {
        self.wake_if(|w| matches!(w, Wake::Sock(s) if *s == sock));
    }

    /// Wakes processes waiting on any ping reply.
    pub fn on_ping_reply(&mut self) {
        self.wake_if(|w| matches!(w, Wake::AnyPing));
    }

    /// Wakes the owner of a finished memory job.
    pub fn on_job_done(&mut self, waiter: WaiterId, job: JobId) {
        if let Some(ProcId(idx)) = Self::proc_of_waiter(waiter) {
            if let Some(e) = self.procs.get_mut(idx) {
                if let ProcState::Waiting(wakes) = &e.state {
                    if wakes
                        .iter()
                        .any(|w| matches!(w, Wake::Job(j) if *j == job))
                    {
                        e.state = ProcState::Ready;
                        self.run_queue.push_back(idx);
                    }
                }
            }
        }
    }

    /// Earliest future instant this runner needs attention: a ready process
    /// whose core frees up, or a timer deadline.
    pub fn next_event(&self, cpus: &CpuPool) -> Option<SimTime> {
        let mut t: Option<SimTime> = None;
        let mut fold = |x: SimTime| t = Some(t.map_or(x, |c: SimTime| c.min(x)));
        for e in &self.procs {
            match &e.state {
                ProcState::Ready => fold(cpus.free_at(e.core)),
                ProcState::Waiting(wakes) => {
                    for w in wakes {
                        if let Wake::Timer(d) = w {
                            fold(*d);
                        }
                    }
                }
                ProcState::Done => {}
            }
        }
        t
    }

    /// Polls every runnable process whose core is available at `now`,
    /// charging its CPU usage. Returns `true` if anything ran (callers
    /// should then re-drain stack events and re-run until quiescent).
    pub fn run(
        &mut self,
        now: SimTime,
        cpus: &mut CpuPool,
        stack: &mut NetStack,
        mem: &mut MemorySystem,
        cost: &CostModel,
    ) -> bool {
        // Timer wakes.
        for (i, e) in self.procs.iter_mut().enumerate() {
            if let ProcState::Waiting(wakes) = &e.state {
                if wakes
                    .iter()
                    .any(|w| matches!(w, Wake::Timer(d) if *d <= now))
                {
                    e.state = ProcState::Ready;
                    self.run_queue.push_back(i);
                }
            }
        }
        let mut ran = false;
        let mut deferred = VecDeque::new();
        while let Some(idx) = self.run_queue.pop_front() {
            let e = &mut self.procs[idx];
            if e.state != ProcState::Ready {
                continue; // stale queue entry
            }
            if cpus.free_at(e.core) > now {
                deferred.push_back(idx); // core busy; retry when it frees
                continue;
            }
            let mut ctx = ProcCtx {
                now,
                stack,
                mem,
                cost,
                charged: SimTime::ZERO,
                waiter: Self::waiter_of(ProcId(idx)),
            };
            let poll = e.proc.poll(&mut ctx);
            let charged = ctx.charged;
            if charged > SimTime::ZERO {
                cpus.run_on(e.core, now, charged);
            }
            ran = true;
            match poll {
                Poll::Done => e.state = ProcState::Done,
                Poll::Wait(wakes) => {
                    assert!(
                        !wakes.is_empty(),
                        "process '{}' returned an empty wait set",
                        e.proc.name()
                    );
                    e.state = ProcState::Waiting(wakes);
                }
            }
        }
        self.run_queue = deferred;
        ran
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcn_dram::DramConfig;
    use mcn_net::tcp::TcpConfig;

    fn fixtures() -> (CpuPool, NetStack, MemorySystem, CostModel) {
        (
            CpuPool::new(2),
            NetStack::new(TcpConfig::default()),
            MemorySystem::new(&DramConfig::ddr4_3200(), 1),
            CostModel::host(),
        )
    }

    /// Computes for a fixed time, then starts a memory stream, then exits.
    struct Phases {
        step: u32,
        job: Option<JobId>,
    }

    impl Process for Phases {
        fn poll(&mut self, ctx: &mut ProcCtx<'_>) -> Poll {
            match self.step {
                0 => {
                    self.step = 1;
                    ctx.compute(SimTime::from_us(5));
                    Poll::Wait(vec![Wake::Timer(ctx.now + SimTime::from_us(5))])
                }
                1 => {
                    self.step = 2;
                    let job = ctx.mem_stream(0, 64 * 1024, 1.0, Access::Seq);
                    self.job = Some(job);
                    Poll::Wait(vec![Wake::Job(job)])
                }
                _ => Poll::Done,
            }
        }
        fn name(&self) -> &str {
            "phases"
        }
    }

    #[test]
    fn process_lifecycle_with_compute_and_memory() {
        let (mut cpus, mut stack, mut mem, cost) = fixtures();
        let mut runner = ProcRunner::new();
        let pid = runner.spawn(Box::new(Phases { step: 0, job: None }), 0);
        let mut now = SimTime::ZERO;
        // Step 0: runs, charges 5us, waits for timer.
        assert!(runner.run(now, &mut cpus, &mut stack, &mut mem, &cost));
        assert_eq!(cpus.busy(0), SimTime::from_us(5));
        assert!(!runner.all_done());
        // Timer at +5us.
        now = runner.next_event(&cpus).expect("timer pending");
        assert_eq!(now, SimTime::from_us(5));
        assert!(runner.run(now, &mut cpus, &mut stack, &mut mem, &cost));
        // Now a memory job is running; drive it.
        let mut woke = false;
        while mem.busy() {
            let t = mem.next_event().expect("busy");
            now = t;
            for (w, j) in mem.advance(t) {
                assert_eq!(ProcRunner::proc_of_waiter(w), Some(pid));
                runner.on_job_done(w, j);
                woke = true;
            }
        }
        assert!(woke);
        assert!(runner.run(now, &mut cpus, &mut stack, &mut mem, &cost));
        assert!(runner.all_done());
        assert_eq!(runner.live(), 0);
    }

    /// Two processes pinned to the same core contend for it.
    struct Burner;
    impl Process for Burner {
        fn poll(&mut self, ctx: &mut ProcCtx<'_>) -> Poll {
            ctx.compute(SimTime::from_us(10));
            Poll::Done
        }
    }

    #[test]
    fn same_core_processes_serialize() {
        let (mut cpus, mut stack, mut mem, cost) = fixtures();
        let mut runner = ProcRunner::new();
        runner.spawn(Box::new(Burner), 0);
        runner.spawn(Box::new(Burner), 0);
        runner.run(SimTime::ZERO, &mut cpus, &mut stack, &mut mem, &cost);
        // Only the first runs at t=0; the second defers until core 0 frees.
        assert_eq!(cpus.free_at(0), SimTime::from_us(10));
        let t = runner.next_event(&cpus).expect("deferred process");
        assert_eq!(t, SimTime::from_us(10));
        runner.run(t, &mut cpus, &mut stack, &mut mem, &cost);
        assert_eq!(cpus.free_at(0), SimTime::from_us(20));
        assert!(runner.all_done());
    }

    #[test]
    fn ready_process_on_busy_core_defers() {
        let (mut cpus, mut stack, mut mem, cost) = fixtures();
        // Occupy core 0 until 100us.
        cpus.run_on(0, SimTime::ZERO, SimTime::from_us(100));
        let mut runner = ProcRunner::new();
        runner.spawn(Box::new(Burner), 0);
        let ran = runner.run(SimTime::ZERO, &mut cpus, &mut stack, &mut mem, &cost);
        assert!(!ran, "core busy: nothing should run");
        // next_event points at the core release.
        assert_eq!(runner.next_event(&cpus), Some(SimTime::from_us(100)));
        assert!(runner.run(SimTime::from_us(100), &mut cpus, &mut stack, &mut mem, &cost));
        assert!(runner.all_done());
    }

    #[test]
    fn sock_wake_routing() {
        let (mut cpus, mut stack, mut mem, cost) = fixtures();
        struct WaitSock(SockId, bool);
        impl Process for WaitSock {
            fn poll(&mut self, _ctx: &mut ProcCtx<'_>) -> Poll {
                if self.1 {
                    Poll::Done
                } else {
                    self.1 = true;
                    Poll::Wait(vec![Wake::Sock(self.0)])
                }
            }
        }
        let mut runner = ProcRunner::new();
        runner.spawn(Box::new(WaitSock(SockId(3), false)), 0);
        runner.run(SimTime::ZERO, &mut cpus, &mut stack, &mut mem, &cost);
        assert!(!runner.all_done());
        runner.on_sock_event(SockId(4)); // wrong socket: stays blocked
        assert_eq!(runner.next_event(&cpus), None);
        runner.on_sock_event(SockId(3));
        runner.run(SimTime::ZERO, &mut cpus, &mut stack, &mut mem, &cost);
        assert!(runner.all_done());
    }

    #[test]
    #[should_panic(expected = "empty wait set")]
    fn empty_wait_set_panics() {
        let (mut cpus, mut stack, mut mem, cost) = fixtures();
        struct Bad;
        impl Process for Bad {
            fn poll(&mut self, _ctx: &mut ProcCtx<'_>) -> Poll {
                Poll::Wait(vec![])
            }
        }
        let mut runner = ProcRunner::new();
        runner.spawn(Box::new(Bad), 0);
        runner.run(SimTime::ZERO, &mut cpus, &mut stack, &mut mem, &cost);
    }
}
