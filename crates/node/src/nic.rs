//! The 10GbE baseline NIC model.
//!
//! Reproduces the packet paths from the paper's Fig. 2 and the cost
//! components of Table III:
//!
//! * **TX**: the driver writes a descriptor and rings the doorbell
//!   (`Driver-TX`); the NIC DMA-reads the packet from the TX ring in DRAM —
//!   real line transactions through the node's [`MemorySystem`] —
//!   (`DMA-TX`); then the frame crosses PCIe onto the wire (part of `PHY`).
//! * **RX**: the NIC DMA-writes the arriving frame into the RX ring
//!   (`DMA-RX`), raises an MSI interrupt unless NAPI polling is already
//!   active, and the driver's softirq handler cleans the ring, allocates an
//!   sk_buff and pushes the packet up the stack (`Driver-RX`, which the
//!   paper measures as *half* the 10GbE end-to-end latency).
//!
//! Hardware checksum offload is on (standard for 10GbE-class NICs), so the
//! stack is configured not to charge software checksums; wire integrity is
//! covered by the Ethernet FCS, and the MAC drops bad-FCS frames here.
//!
//! The per-component times are recorded in [`NicBreakdown`] histograms —
//! the `table3` harness reads them directly.

use std::collections::{HashMap, VecDeque};

use mcn_dram::{MemKind, Target};
use mcn_net::EthernetFrame;
use mcn_sim::metrics::{Instrumented, MetricSink};
use mcn_sim::stats::{Counter, Histogram};
use mcn_sim::SimTime;

use crate::cost::CostModel;
use crate::cpu::CpuPool;
use crate::mem::{JobId, MemorySystem, Pattern, Transfer, WaiterId};

/// Waiter-id namespace for NIC DMA jobs (distinct from process waiters).
pub const NIC_WAITER: WaiterId = 1 << 40;

/// NIC tunables.
#[derive(Debug, Clone)]
pub struct NicConfig {
    /// One-way PCIe traversal (doorbell, DMA engine launch, frame handoff).
    pub pcie_latency: SimTime,
    /// Interrupt moderation: a freshly-idle NIC waits this long before
    /// raising the RX interrupt (the `rx-usecs` ethtool knob; the reason a
    /// 10GbE ping RTT is tens of microseconds while the wire takes two).
    /// NAPI polling is unaffected, so bandwidth does not suffer.
    pub irq_delay: SimTime,
    /// Core that takes interrupts and runs the receive softirq.
    pub irq_core: usize,
    /// Base physical address of the NIC's TX/RX ring buffers.
    pub buf_base: u64,
    /// Ring region size in bytes (addresses rotate within it).
    pub buf_len: u64,
}

impl Default for NicConfig {
    fn default() -> Self {
        NicConfig {
            pcie_latency: SimTime::from_ns(600),
            irq_delay: SimTime::from_us(8),
            irq_core: 0,
            buf_base: 1 << 30, // 1 GiB mark, well inside every config
            buf_len: 4 << 20,
        }
    }
}

/// Per-direction latency component histograms (Table III).
#[derive(Debug, Default)]
pub struct NicBreakdown {
    /// Driver transmit work per packet.
    pub driver_tx: Histogram,
    /// DMA read of the packet from DRAM.
    pub dma_tx: Histogram,
    /// DMA write of the packet to DRAM.
    pub dma_rx: Histogram,
    /// Interrupt + softirq + ring cleanup + protocol processing per packet.
    pub driver_rx: Histogram,
}

/// Frame-with-deadline staged inside the NIC pipeline.
#[derive(Debug)]
struct Staged {
    at: SimTime,
    frame: EthernetFrame,
}

/// Events the NIC hands back to the system layer.
#[derive(Debug)]
pub enum NicEvent {
    /// Put this frame on the wire now.
    TxWire(EthernetFrame),
    /// Deliver this frame to the local network stack now (all receive-path
    /// costs already charged).
    RxDeliver(EthernetFrame),
}

/// The NIC model; see the module docs.
#[derive(Debug)]
pub struct Nic {
    cfg: NicConfig,
    /// Driver handoffs waiting for their charged driver time to elapse
    /// before DMA starts.
    tx_pending: VecDeque<Staged>,
    tx_dma: HashMap<JobId, (SimTime, EthernetFrame)>,
    tx_wire: Vec<Staged>,
    rx_dma: HashMap<JobId, (SimTime, EthernetFrame)>,
    rx_deliver: Vec<Staged>,
    /// End of the last scheduled softirq processing (NAPI active until
    /// then: arrivals before it pay no interrupt).
    napi_busy_until: SimTime,
    buf_cursor: u64,
    /// Recycled compaction buffer for the advance hot path.
    staged_scratch: Vec<Staged>,
    /// Latency component histograms.
    pub breakdown: NicBreakdown,
    /// Frames transmitted.
    pub tx_frames: Counter,
    /// Frames received (delivered to the stack).
    pub rx_frames: Counter,
    /// Frames dropped for bad FCS.
    pub fcs_drops: Counter,
    /// Interrupts raised.
    pub irqs: Counter,
}

impl Nic {
    /// Creates a NIC.
    pub fn new(cfg: NicConfig) -> Self {
        Nic {
            cfg,
            tx_pending: VecDeque::new(),
            tx_dma: HashMap::new(),
            tx_wire: Vec::new(),
            rx_dma: HashMap::new(),
            rx_deliver: Vec::new(),
            napi_busy_until: SimTime::ZERO,
            buf_cursor: 0,
            staged_scratch: Vec::new(),
            breakdown: NicBreakdown::default(),
            tx_frames: Counter::default(),
            rx_frames: Counter::default(),
            fcs_drops: Counter::default(),
            irqs: Counter::default(),
        }
    }

    fn ring_addr(&mut self, len: u64) -> u64 {
        let lines = len.div_ceil(mcn_dram::LINE_BYTES);
        if self.buf_cursor + lines * mcn_dram::LINE_BYTES > self.cfg.buf_len {
            self.buf_cursor = 0;
        }
        let addr = self.cfg.buf_base + self.buf_cursor;
        self.buf_cursor += lines * mcn_dram::LINE_BYTES;
        addr
    }

    /// Driver transmit entry point: charges `Driver-TX` on the caller's
    /// core and stages the packet for DMA once that work completes.
    pub fn xmit(
        &mut self,
        frame: EthernetFrame,
        now: SimTime,
        core: usize,
        cpus: &mut CpuPool,
        cost: &CostModel,
    ) {
        let work = cost.driver_tx();
        let (_, end) = cpus.run_on(core, now, work);
        self.breakdown.driver_tx.record(end - now);
        self.tx_pending.push_back(Staged { at: end, frame });
    }

    /// Frame arrives from the wire: FCS check, then DMA into the RX ring.
    pub fn wire_rx(&mut self, frame: EthernetFrame, now: SimTime, mem: &mut MemorySystem) {
        if !frame.fcs_ok {
            self.fcs_drops.inc();
            return;
        }
        let addr = self.ring_addr(frame.wire_len() as u64);
        let job = mem.start(
            Transfer::Single {
                pat: Pattern {
                    start: addr,
                    stride: mcn_dram::LINE_BYTES,
                    target: Target::Dram,
                },
                kind: MemKind::Write,
                bytes: frame.wire_len() as u64,
            },
            NIC_WAITER,
            now,
        );
        self.rx_dma.insert(job, (now, frame));
    }

    /// Routes a completed DMA job (system layer calls this for completions
    /// whose waiter is [`NIC_WAITER`]).
    pub fn on_job_done(
        &mut self,
        job: JobId,
        now: SimTime,
        cpus: &mut CpuPool,
        cost: &CostModel,
        rx_sw_checksum: bool,
    ) {
        if let Some((started, frame)) = self.tx_dma.remove(&job) {
            self.breakdown.dma_tx.record(now - started);
            self.tx_wire.push(Staged {
                at: now + self.cfg.pcie_latency,
                frame,
            });
            return;
        }
        if let Some((started, frame)) = self.rx_dma.remove(&job) {
            self.breakdown.dma_rx.record(now - started);
            // Interrupt unless NAPI polling is still chewing on the ring;
            // a fresh interrupt waits out the moderation timer first.
            let mut t = now;
            if now >= self.napi_busy_until {
                self.irqs.inc();
                let (_, end) = cpus.run_on(
                    self.cfg.irq_core,
                    now + self.cfg.irq_delay,
                    cost.irq() + cost.softirq(),
                );
                t = end;
            }
            let proto = rx_protocol_cost(cost, &frame, rx_sw_checksum);
            let (_, end) = cpus.run_on(self.cfg.irq_core, t, cost.driver_rx() + proto);
            self.breakdown.driver_rx.record(end - now);
            self.napi_busy_until = self.napi_busy_until.max(end);
            self.rx_deliver.push(Staged { at: end, frame });
        }
    }

    /// One-way PCIe traversal latency configured for this NIC.
    pub fn pcie_latency(&self) -> SimTime {
        self.cfg.pcie_latency
    }

    /// Lower bound on the earliest time any *currently staged* TX frame
    /// can reach the wire: wire-stage deadlines as-is, driver handoffs
    /// plus one PCIe crossing. In-flight TX DMA is excluded on purpose —
    /// its completion arrives as a memory event, so it is already
    /// covered by the owner's next-event bound. Used by the windowed
    /// scheduler's lookahead ([`Shard::next_emission`]); soundness only
    /// requires never over-estimating.
    ///
    /// [`Shard::next_emission`]: mcn_sim::shard::Shard::next_emission
    pub fn earliest_tx_staged(&self) -> Option<SimTime> {
        let wire = self.tx_wire.iter().map(|s| s.at).min();
        let pend = self.tx_pending.iter().map(|s| s.at + self.cfg.pcie_latency).min();
        [wire, pend].into_iter().flatten().min()
    }

    /// Earliest internal deadline.
    pub fn next_event(&self) -> Option<SimTime> {
        let mut t: Option<SimTime> = None;
        let mut fold = |x: SimTime| t = Some(t.map_or(x, |c: SimTime| c.min(x)));
        if let Some(s) = self.tx_pending.front() {
            fold(s.at);
        }
        for s in &self.tx_wire {
            fold(s.at);
        }
        for s in &self.rx_deliver {
            fold(s.at);
        }
        t
    }

    /// Progresses internal pipelines to `now`; returns due events.
    pub fn advance(&mut self, now: SimTime, mem: &mut MemorySystem) -> Vec<NicEvent> {
        let mut out = Vec::new();
        self.advance_into(now, mem, &mut out);
        out
    }

    /// Like [`advance`](Self::advance), but appends due events into a
    /// caller-owned buffer and compacts the staged queues through one
    /// recycled scratch, so the per-tick hot path allocates nothing.
    /// Returns the number of events produced.
    pub fn advance_into(
        &mut self,
        now: SimTime,
        mem: &mut MemorySystem,
        out: &mut Vec<NicEvent>,
    ) -> usize {
        let before = out.len();
        // Start DMA for driver handoffs whose charge completed.
        while let Some(s) = self.tx_pending.front() {
            if s.at > now {
                break;
            }
            let s = self.tx_pending.pop_front().expect("peeked");
            let addr = self.ring_addr(s.frame.wire_len() as u64);
            let job = mem.start(
                Transfer::Single {
                    pat: Pattern {
                        start: addr,
                        stride: mcn_dram::LINE_BYTES,
                        target: Target::Dram,
                    },
                    kind: MemKind::Read,
                    bytes: s.frame.wire_len() as u64,
                },
                NIC_WAITER,
                now,
            );
            self.tx_dma.insert(job, (now, s.frame));
        }
        let mut kept = std::mem::take(&mut self.staged_scratch);
        debug_assert!(kept.is_empty());
        for s in self.tx_wire.drain(..) {
            if s.at <= now {
                self.tx_frames.inc();
                out.push(NicEvent::TxWire(s.frame));
            } else {
                kept.push(s);
            }
        }
        std::mem::swap(&mut self.tx_wire, &mut kept);
        for s in self.rx_deliver.drain(..) {
            if s.at <= now {
                self.rx_frames.inc();
                out.push(NicEvent::RxDeliver(s.frame));
            } else {
                kept.push(s);
            }
        }
        std::mem::swap(&mut self.rx_deliver, &mut kept);
        self.staged_scratch = kept;
        out.len() - before
    }

    /// True while anything is staged or in DMA.
    pub fn busy(&self) -> bool {
        !self.tx_pending.is_empty()
            || !self.tx_dma.is_empty()
            || !self.tx_wire.is_empty()
            || !self.rx_dma.is_empty()
            || !self.rx_deliver.is_empty()
    }
}

/// Receive-path protocol-processing cost for a frame: TCP/UDP/ICMP packet
/// processing plus (optionally) software checksumming. Pure ACKs are
/// cheaper than data segments, which matters for the ~25% ACK overhead the
/// paper discusses.
pub fn rx_protocol_cost(cost: &CostModel, frame: &EthernetFrame, sw_checksum: bool) -> SimTime {
    let Ok(pkt) = mcn_net::Ipv4Packet::decode(&frame.payload) else {
        return cost.tcp_ack();
    };
    match pkt.proto {
        mcn_net::IpProto::Tcp => {
            let payload = pkt.payload.len().saturating_sub(mcn_net::TCP_HEADER_BYTES);
            if payload == 0 {
                cost.tcp_ack()
            } else {
                cost.tcp_rx(payload, sw_checksum)
            }
        }
        _ => cost.tcp_rx(pkt.payload.len(), sw_checksum),
    }
}

/// True if `frame` carries a payload-free TCP segment (pure ACK); such
/// segments are generated in softirq context on the receive path, not by
/// the sending application.
pub fn is_pure_ack(frame: &EthernetFrame) -> bool {
    match mcn_net::Ipv4Packet::decode(&frame.payload) {
        Ok(pkt) => {
            pkt.proto == mcn_net::IpProto::Tcp
                && pkt.payload.len() <= mcn_net::TCP_HEADER_BYTES + 12
        }
        Err(_) => false,
    }
}

/// Transmit-path protocol cost for a frame (charged by the system layer
/// when the stack emits it): mirror of [`rx_protocol_cost`].
pub fn tx_protocol_cost(cost: &CostModel, frame: &EthernetFrame, sw_checksum: bool) -> SimTime {
    let Ok(pkt) = mcn_net::Ipv4Packet::decode(&frame.payload) else {
        return cost.tcp_ack();
    };
    match pkt.proto {
        mcn_net::IpProto::Tcp => {
            let payload = pkt.payload.len().saturating_sub(mcn_net::TCP_HEADER_BYTES);
            if payload == 0 {
                cost.tcp_ack()
            } else {
                cost.tcp_tx(payload, sw_checksum)
            }
        }
        _ => cost.tcp_tx(pkt.payload.len(), sw_checksum),
    }
}

impl mcn_sim::Wakeup for Nic {
    /// Earliest staged pipeline deadline (TX handoffs, wire serialisation,
    /// RX delivery). DMA job completions live in the owning node's memory
    /// system, not here.
    fn next_wakeup(&self) -> Option<SimTime> {
        self.next_event()
    }
}

impl Instrumented for Nic {
    fn metrics(&self, out: &mut MetricSink) {
        out.counter("tx_frames", self.tx_frames.get());
        out.counter("rx_frames", self.rx_frames.get());
        out.counter("fcs_drops", self.fcs_drops.get());
        out.counter("irqs", self.irqs.get());
        out.histogram("driver_tx", &self.breakdown.driver_tx);
        out.histogram("dma_tx", &self.breakdown.dma_tx);
        out.histogram("dma_rx", &self.breakdown.dma_rx);
        out.histogram("driver_rx", &self.breakdown.driver_rx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use mcn_dram::DramConfig;
    use mcn_net::MacAddr;

    fn fixtures() -> (Nic, CpuPool, MemorySystem, CostModel) {
        (
            Nic::new(NicConfig::default()),
            CpuPool::new(4),
            MemorySystem::new(&DramConfig::ddr4_3200(), 2),
            CostModel::host(),
        )
    }

    fn frame(len: usize) -> EthernetFrame {
        EthernetFrame::ipv4(
            MacAddr::from_id(2),
            MacAddr::from_id(1),
            Bytes::from(vec![0u8; len]),
        )
    }

    fn drive(
        nic: &mut Nic,
        mem: &mut MemorySystem,
        cpus: &mut CpuPool,
        cost: &CostModel,
    ) -> Vec<(SimTime, NicEvent)> {
        let mut out = Vec::new();
        let mut guard = 0;
        loop {
            let t = match (nic.next_event(), mem.next_event()) {
                (Some(a), Some(b)) => a.min(b),
                (Some(a), None) => a,
                (None, Some(b)) => b,
                (None, None) => break,
            };
            for (w, j) in mem.advance(t) {
                assert_eq!(w, NIC_WAITER);
                nic.on_job_done(j, t, cpus, cost, false);
            }
            for ev in nic.advance(t, mem) {
                out.push((t, ev));
            }
            if !nic.busy() && !mem.busy() {
                break;
            }
            guard += 1;
            assert!(guard < 100_000, "runaway nic drive");
        }
        out
    }

    #[test]
    fn tx_pipeline_charges_driver_then_dma_then_pcie() {
        let (mut nic, mut cpus, mut mem, cost) = fixtures();
        nic.xmit(frame(1500), SimTime::ZERO, 1, &mut cpus, &cost);
        assert!(nic.busy());
        let evs = drive(&mut nic, &mut mem, &mut cpus, &cost);
        let (t, ev) = &evs[0];
        assert!(matches!(ev, NicEvent::TxWire(_)));
        // Must be at least driver + pcie; DMA adds on top.
        assert!(*t >= cost.driver_tx() + SimTime::from_ns(600), "t = {t}");
        assert_eq!(nic.tx_frames.get(), 1);
        assert_eq!(nic.breakdown.driver_tx.count(), 1);
        assert_eq!(nic.breakdown.dma_tx.count(), 1);
        // DMA of a 1514B frame is fast but nonzero.
        let dma = nic.breakdown.dma_tx.mean().unwrap();
        assert!(dma > SimTime::from_ns(20) && dma < SimTime::from_us(2), "dma {dma}");
    }

    #[test]
    fn rx_pipeline_interrupts_once_under_napi() {
        let (mut nic, mut cpus, mut mem, cost) = fixtures();
        // Burst of 8 frames arriving together.
        for _ in 0..8 {
            nic.wire_rx(frame(1500), SimTime::ZERO, &mut mem);
        }
        let evs = drive(&mut nic, &mut mem, &mut cpus, &cost);
        let delivered = evs
            .iter()
            .filter(|(_, e)| matches!(e, NicEvent::RxDeliver(_)))
            .count();
        assert_eq!(delivered, 8);
        assert!(
            nic.irqs.get() <= 2,
            "NAPI should coalesce interrupts, got {}",
            nic.irqs.get()
        );
        assert_eq!(nic.breakdown.driver_rx.count(), 8);
    }

    #[test]
    fn bad_fcs_dropped_before_stack() {
        let (mut nic, mut cpus, mut mem, cost) = fixtures();
        let mut f = frame(500);
        f.fcs_ok = false;
        nic.wire_rx(f, SimTime::ZERO, &mut mem);
        let evs = drive(&mut nic, &mut mem, &mut cpus, &cost);
        assert!(evs.is_empty());
        assert_eq!(nic.fcs_drops.get(), 1);
        assert_eq!(nic.rx_frames.get(), 0);
    }

    #[test]
    fn ring_addresses_wrap_within_region() {
        let (mut nic, _, _, _) = fixtures();
        let first = nic.ring_addr(1536);
        for _ in 0..10_000 {
            let a = nic.ring_addr(1536);
            assert!(a >= nic.cfg.buf_base);
            assert!(a + 1536 <= nic.cfg.buf_base + nic.cfg.buf_len);
        }
        assert_eq!(first, nic.cfg.buf_base);
    }

    #[test]
    fn protocol_cost_distinguishes_acks() {
        let cost = CostModel::host();
        // A TCP data packet.
        let seg = mcn_net::TcpSegment {
            src_port: 1,
            dst_port: 2,
            seq: 0,
            ack: 0,
            flags: mcn_net::TcpFlags::ACK,
            window: 100,
            mss: None,
            wscale: None,
            payload: Bytes::from(vec![0u8; 1000]),
            checksum_ok: true,
        };
        let src = std::net::Ipv4Addr::new(10, 0, 0, 1);
        let dst = std::net::Ipv4Addr::new(10, 0, 0, 2);
        let data_pkt = mcn_net::Ipv4Packet::new(
            src,
            dst,
            mcn_net::IpProto::Tcp,
            1,
            Bytes::from(seg.encode(src, dst, true)),
        );
        let mut ack = seg;
        ack.payload = Bytes::new();
        let ack_pkt = mcn_net::Ipv4Packet::new(
            src,
            dst,
            mcn_net::IpProto::Tcp,
            2,
            Bytes::from(ack.encode(src, dst, true)),
        );
        let f_data = EthernetFrame::ipv4(
            MacAddr::from_id(1),
            MacAddr::from_id(2),
            Bytes::from(data_pkt.encode()),
        );
        let f_ack = EthernetFrame::ipv4(
            MacAddr::from_id(1),
            MacAddr::from_id(2),
            Bytes::from(ack_pkt.encode()),
        );
        assert!(rx_protocol_cost(&cost, &f_data, true) > rx_protocol_cost(&cost, &f_ack, true));
        assert_eq!(rx_protocol_cost(&cost, &f_ack, true), cost.tcp_ack());
        assert!(tx_protocol_cost(&cost, &f_data, true) > tx_protocol_cost(&cost, &f_ack, false));
    }
}
