//! A complete simulated node: cores + memory + stack + processes.

use mcn_dram::DramConfig;
use mcn_net::tcp::TcpConfig;
use mcn_net::{NetStack, SocketEvent};
use mcn_sim::metrics::{Instrumented, MetricSink};
use mcn_sim::SimTime;

use crate::cost::CostModel;
use crate::cpu::CpuPool;
use crate::mem::{JobId, MemorySystem, WaiterId};
use crate::proc::ProcRunner;

/// One machine: CPU pool, memory system, network stack, process runner and
/// cost model. Device models (NIC, MCN drivers) live outside and borrow
/// the parts they need — that is what keeps host, MCN-DIMM and baseline
/// cluster nodes assembled from the same type.
#[derive(Debug)]
pub struct Node {
    /// Cores.
    pub cpus: CpuPool,
    /// Memory channels + transfer jobs.
    pub mem: MemorySystem,
    /// TCP/IP stack.
    pub stack: NetStack,
    /// Application processes.
    pub runner: ProcRunner,
    /// CPU-time constants.
    pub cost: CostModel,
}

impl Node {
    /// Assembles a node.
    pub fn new(
        cores: usize,
        cost: CostModel,
        dram: &DramConfig,
        channels: u32,
        tcp: TcpConfig,
    ) -> Self {
        Node {
            cpus: CpuPool::new(cores),
            mem: MemorySystem::new(dram, channels),
            stack: NetStack::new(tcp),
            runner: ProcRunner::new(),
            cost,
        }
    }

    /// Earliest of the node's own deadlines (memory activity, TCP timers,
    /// runnable processes / timer waits). Device deadlines are the
    /// orchestrator's business.
    ///
    /// Frames already queued on interface output queues need a driver to
    /// run *now*; that case is reported as `Some(SimTime::ZERO)`, which
    /// orchestrators clamp to their own clock.
    pub fn next_event(&self) -> Option<SimTime> {
        if self.stack.has_output() {
            return Some(SimTime::ZERO);
        }
        [
            self.mem.next_event(),
            self.stack.next_timer(),
            self.runner.next_event(&self.cpus),
        ]
        .into_iter()
        .flatten()
        .min()
    }

    /// Advances the memory system and routes process-owned job completions
    /// to the runner; returns the completions owned by devices (callers
    /// route those to their NIC / MCN driver).
    pub fn advance_mem(&mut self, now: SimTime) -> Vec<(WaiterId, JobId)> {
        let mut foreign = Vec::new();
        for (waiter, job) in self.mem.advance(now) {
            if ProcRunner::proc_of_waiter(waiter).is_some() {
                self.runner.on_job_done(waiter, job);
            } else {
                foreign.push((waiter, job));
            }
        }
        foreign
    }

    /// Fires due TCP timers and converts stack events into process wakes.
    pub fn service_stack(&mut self, now: SimTime) {
        if self.stack.next_timer().is_some_and(|t| t <= now) {
            self.stack.on_timer(now);
        }
        self.drain_stack_events();
    }

    /// Converts accumulated stack events into process wake-ups.
    pub fn drain_stack_events(&mut self) {
        for ev in self.stack.take_events() {
            match ev {
                SocketEvent::Activity(sock) => self.runner.on_sock_event(sock),
                SocketEvent::PingReply(..) => self.runner.on_ping_reply(),
            }
        }
    }

    /// Runs runnable processes; returns `true` if any ran.
    pub fn run_procs(&mut self, now: SimTime) -> bool {
        let ran = self.runner.run(
            now,
            &mut self.cpus,
            &mut self.stack,
            &mut self.mem,
            &self.cost,
        );
        if ran {
            self.drain_stack_events();
        }
        ran
    }
}

impl mcn_sim::Wakeup for Node {
    /// See [`Node::next_event`]: memory jobs, stack timers, runnable or
    /// timer-blocked processes, and `ZERO` when output frames wait for a
    /// driver.
    fn next_wakeup(&self) -> Option<SimTime> {
        self.next_event()
    }
}

impl Instrumented for Node {
    /// Everything a node can report: CPU busy time, per-channel memory
    /// counters and the whole network stack (including TCP totals).
    fn metrics(&self, out: &mut MetricSink) {
        out.scoped("cpu", |out| {
            out.counter("busy_ps", self.cpus.total_busy().as_ps());
        });
        out.scoped("mem", |out| {
            for (i, ch) in self.mem.channels().iter().enumerate() {
                out.absorb(&format!("ch{i}"), ch.stats());
            }
        });
        out.absorb("stack", &self.stack);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_assembles_and_idles() {
        let n = Node::new(
            4,
            CostModel::host(),
            &DramConfig::ddr4_3200(),
            2,
            TcpConfig::default(),
        );
        assert_eq!(n.cpus.cores(), 4);
        assert_eq!(n.next_event(), None, "fresh node has nothing scheduled");
    }

    #[test]
    fn mem_completions_split_by_waiter() {
        use crate::mem::{Access, Transfer};
        let mut n = Node::new(
            1,
            CostModel::host(),
            &DramConfig::ddr4_3200(),
            1,
            TcpConfig::default(),
        );
        // One device job (waiter below PROC base), one fake proc job.
        n.mem.start(
            Transfer::Stream {
                start: 0,
                bytes: 4096,
                read_frac: 1.0,
                access: Access::Seq,
            },
            42, // device waiter
            SimTime::ZERO,
        );
        let mut foreign = Vec::new();
        while n.mem.busy() {
            let t = n.mem.next_event().unwrap();
            foreign.extend(n.advance_mem(t));
        }
        assert_eq!(foreign.len(), 1);
        assert_eq!(foreign[0].0, 42);
    }
}
