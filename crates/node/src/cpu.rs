//! Per-core busy timelines.

use mcn_sim::SimTime;

/// A pool of identical cores with non-preemptive task scheduling.
///
/// Each core is a busy-until timestamp: scheduling work on a core starts at
/// `max(now, free_at)` and occupies it for the task's duration. This models
/// what matters for the paper's results — protocol work, polling and copies
/// competing for cores — without an instruction-level pipeline (see
/// DESIGN.md on the functional+timing split).
#[derive(Debug, Clone)]
pub struct CpuPool {
    free_at: Vec<SimTime>,
    busy_ps: Vec<u64>,
}

impl CpuPool {
    /// Creates a pool of `cores` idle cores.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    pub fn new(cores: usize) -> Self {
        assert!(cores > 0, "need at least one core");
        CpuPool {
            free_at: vec![SimTime::ZERO; cores],
            busy_ps: vec![0; cores],
        }
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.free_at.len()
    }

    /// Schedules `work` on a specific core starting no earlier than `now`;
    /// returns `(start, end)`.
    pub fn run_on(&mut self, core: usize, now: SimTime, work: SimTime) -> (SimTime, SimTime) {
        let start = self.free_at[core].max(now);
        let end = start + work;
        self.free_at[core] = end;
        self.busy_ps[core] += work.as_ps();
        (start, end)
    }

    /// Schedules `work` on the earliest-available core; returns
    /// `(core, start, end)`.
    pub fn run_any(&mut self, now: SimTime, work: SimTime) -> (usize, SimTime, SimTime) {
        let core = self.least_loaded();
        let (s, e) = self.run_on(core, now, work);
        (core, s, e)
    }

    /// The core that will become free soonest.
    pub fn least_loaded(&self) -> usize {
        self.free_at
            .iter()
            .enumerate()
            .min_by_key(|(_, t)| **t)
            .map(|(i, _)| i)
            .expect("non-empty")
    }

    /// When `core` becomes free.
    pub fn free_at(&self, core: usize) -> SimTime {
        self.free_at[core]
    }

    /// Earliest time any core is free.
    pub fn earliest_free(&self) -> SimTime {
        *self.free_at.iter().min().expect("non-empty")
    }

    /// Total busy time across all cores (for energy accounting).
    pub fn total_busy(&self) -> SimTime {
        SimTime::from_ps(self.busy_ps.iter().sum())
    }

    /// Busy time of one core.
    pub fn busy(&self, core: usize) -> SimTime {
        SimTime::from_ps(self.busy_ps[core])
    }

    /// Average utilization over `elapsed` (0..1 per core).
    pub fn utilization(&self, elapsed: SimTime) -> f64 {
        if elapsed == SimTime::ZERO {
            return 0.0;
        }
        self.total_busy().as_ps() as f64 / (elapsed.as_ps() as f64 * self.cores() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns(n: u64) -> SimTime {
        SimTime::from_ns(n)
    }

    #[test]
    fn run_on_serializes_per_core() {
        let mut p = CpuPool::new(2);
        let (s1, e1) = p.run_on(0, ns(10), ns(100));
        assert_eq!((s1, e1), (ns(10), ns(110)));
        // Second task on the same core queues behind the first.
        let (s2, e2) = p.run_on(0, ns(20), ns(50));
        assert_eq!((s2, e2), (ns(110), ns(160)));
        // Other core is free immediately.
        let (s3, _) = p.run_on(1, ns(20), ns(50));
        assert_eq!(s3, ns(20));
    }

    #[test]
    fn run_any_balances() {
        let mut p = CpuPool::new(4);
        let mut used = std::collections::HashSet::new();
        for _ in 0..4 {
            let (core, ..) = p.run_any(SimTime::ZERO, ns(100));
            used.insert(core);
        }
        assert_eq!(used.len(), 4, "each task should land on a fresh core");
    }

    #[test]
    fn utilization_accounting() {
        let mut p = CpuPool::new(2);
        p.run_on(0, SimTime::ZERO, ns(500));
        p.run_on(1, SimTime::ZERO, ns(500));
        assert_eq!(p.total_busy(), ns(1000));
        assert!((p.utilization(ns(1000)) - 0.5).abs() < 1e-12);
        assert_eq!(p.busy(0), ns(500));
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_panics() {
        CpuPool::new(0);
    }
}
