//! Declarative scenario sweeps over the MCN simulator.
//!
//! A sweep names values along four axes — workload, topology, fault
//! plan, and optimisation flags — and this crate expands the cross
//! product, drops the combinations the simulator does not model
//! ([`Cell::supported`]), runs every remaining cell as an independent
//! deterministic simulation, and merges the per-cell metric snapshots
//! into one result tree. Axes come either from the built-in presets
//! ([`SweepSpec::smoke`], [`SweepSpec::paper`]) or from a plain-text
//! `key = value` spec ([`SweepSpec::parse`]) — no external parser
//! dependencies.
//!
//! Three properties the rest of the repo leans on (DESIGN.md §4g):
//!
//! - **Determinism.** A cell's seed is derived from the sweep seed and
//!   the cell id; the same `(spec, seed)` always produces byte-identical
//!   `sweep.json`, at any `--jobs` count.
//! - **Resumability.** Each finished cell leaves a done-marker keyed by
//!   a config hash; a killed sweep rerun picks up exactly where it
//!   stopped, and the final merge cannot tell the difference.
//! - **Uniform figures.** Every cell reports `requests`, `perf`, and
//!   the `energy.*` family (including `energy_per_request_nj` and
//!   `perf_per_watt`), so paper figures and efficiency tables read
//!   straight out of the merged tree.
//!
//! # Example
//!
//! Parse a one-cell spec, run it, and read the merged tree:
//!
//! ```
//! use mcn_sweep::{runner::{run_sweep, SweepConfig}, SweepSpec};
//!
//! let spec = SweepSpec::parse(
//!     "seed = 7\n\
//!      scale = smoke\n\
//!      workloads = iperf\n\
//!      topologies = single\n\
//!      faults = none\n\
//!      levels = 3\n\
//!      threads = 1\n",
//! )
//! .unwrap();
//! assert_eq!(spec.cells.len(), 1);
//! assert_eq!(spec.cells[0].id(), "iperf-single-none-mcn3_t1");
//!
//! let dir = std::env::temp_dir().join(format!("mcn-sweep-doc-{}", std::process::id()));
//! let out = run_sweep(&spec, &SweepConfig::new(1, &dir)).unwrap();
//! let nj = out
//!     .merged
//!     .get("cells.iperf-single-none-mcn3_t1.energy.energy_per_request_nj")
//!     .unwrap()
//!     .as_f64();
//! assert!(nj > 0.0);
//! # std::fs::remove_dir_all(&dir).ok();
//! ```

pub mod runner;
pub mod scenarios;
pub mod spec;

pub use runner::{run_sweep, SweepConfig, SweepOutcome};
pub use spec::{Axes, Cell, FaultAxis, OptFlags, Scale, SweepSpec, Topology, Workload};
