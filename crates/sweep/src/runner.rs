//! Resumable parallel sweep execution.
//!
//! Every cell runs as an independent simulation and writes one
//! *done-marker* — `cell-{id}-{hash:016x}.json`, the cell's rendered
//! [`MetricsSnapshot`] — into the output directory, where `hash` is
//! [`Cell::config_hash`] over the cell id, its derived seed, the scale
//! fingerprint and the format version. A rerun with the same spec finds
//! the markers and skips the work; changing the sweep seed, the scale,
//! or the cell definition changes the hash, so stale markers are never
//! mistaken for current results.
//!
//! The merged tree is *always* rebuilt by re-reading every marker in
//! axis-expansion order, never from in-memory results, so the merge is
//! independent of worker count, completion order, and how many separate
//! runs it took to finish the sweep: one interrupted-and-resumed sweep
//! and one uninterrupted sweep produce byte-identical `sweep.json`.
//! Marker writes go through a temp file + rename, so a killed run
//! leaves either a complete marker or none.

use std::collections::VecDeque;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use mcn_sim::{MetricSink, MetricsSnapshot};

use crate::scenarios::run_cell;
use crate::spec::{Cell, SweepSpec, FORMAT_VERSION};

/// Execution knobs for [`run_sweep`].
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Worker threads. Each worker owns one whole cell at a time; the
    /// merged output is identical for any value ≥ 1.
    pub jobs: usize,
    /// Directory for done-markers and the merged `sweep.json`.
    pub out_dir: PathBuf,
    /// Run at most this many not-yet-done cells, then stop (used by the
    /// resume tests and for incremental paper runs). `None` = no limit.
    pub limit: Option<usize>,
}

impl SweepConfig {
    /// `jobs` workers writing into `out_dir`, no cell limit.
    pub fn new(jobs: usize, out_dir: impl Into<PathBuf>) -> SweepConfig {
        SweepConfig { jobs: jobs.max(1), out_dir: out_dir.into(), limit: None }
    }
}

/// What one [`run_sweep`] call did.
#[derive(Debug)]
pub struct SweepOutcome {
    /// Cells simulated by this call.
    pub executed: usize,
    /// Cells whose valid marker was reused.
    pub reused: usize,
    /// Cells skipped as unsupported, with the reason.
    pub skipped: Vec<(String, &'static str)>,
    /// Supported cells still lacking a marker (only nonzero when
    /// `limit` stopped the run early).
    pub remaining: usize,
    /// The merged result tree over every completed cell.
    pub merged: MetricsSnapshot,
    /// Where the merged tree was written (`out_dir/sweep.json`).
    pub merged_path: PathBuf,
}

fn marker_path(out_dir: &Path, cell: &Cell, hash: u64) -> PathBuf {
    out_dir.join(format!("cell-{}-{hash:016x}.json", cell.id()))
}

/// Reads a marker back as a snapshot; `None` when missing or mangled
/// (a mangled marker is treated as absent and the cell re-runs).
fn load_marker(path: &Path) -> Option<MetricsSnapshot> {
    let text = fs::read_to_string(path).ok()?;
    MetricsSnapshot::parse_flat_json(&text).ok()
}

fn write_atomic(path: &Path, contents: &str) -> std::io::Result<()> {
    let tmp = path.with_extension("json.tmp");
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(contents.as_bytes())?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)
}

/// Runs `spec` under `cfg`: executes every supported cell that lacks a
/// valid done-marker (up to `cfg.limit`), then merges *all* completed
/// markers into `sweep.json`.
///
/// Deterministic end to end: per-cell seeds derive from `spec.seed` and
/// the cell id, and the merge re-reads markers in expansion order, so
/// `sweep.json` is byte-identical across reruns, worker counts, and
/// kill/resume splits.
///
/// # Panics
///
/// A cell that violates a scenario invariant panics its worker; the
/// panic is propagated after the remaining workers drain. Completed
/// markers survive, so a fixed build resumes where it stopped.
pub fn run_sweep(spec: &SweepSpec, cfg: &SweepConfig) -> std::io::Result<SweepOutcome> {
    fs::create_dir_all(&cfg.out_dir)?;

    // Partition the cells: unsupported (skipped), already-done (valid
    // marker), and runnable.
    let mut skipped = Vec::new();
    let mut reused = 0usize;
    let mut runnable: Vec<(usize, u64)> = Vec::new(); // (cell index, hash)
    for (i, cell) in spec.cells.iter().enumerate() {
        if let Err(why) = cell.supported() {
            skipped.push((cell.id(), why));
            continue;
        }
        let hash = cell.config_hash(spec.seed, &spec.scale);
        if load_marker(&marker_path(&cfg.out_dir, cell, hash)).is_some() {
            reused += 1;
        } else {
            runnable.push((i, hash));
        }
    }
    let remaining_after = cfg.limit.map_or(0, |l| runnable.len().saturating_sub(l));
    if let Some(l) = cfg.limit {
        runnable.truncate(l);
    }
    let executed = runnable.len();

    // Fan the runnable cells out over `jobs` workers. Workers pull from
    // a shared queue; nothing about completion order matters because
    // the merge below re-reads markers in expansion order.
    let queue: Mutex<VecDeque<(usize, u64)>> = Mutex::new(runnable.into());
    let io_err: Mutex<Option<std::io::Error>> = Mutex::new(None);
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for _ in 0..cfg.jobs.max(1).min(executed.max(1)) {
            handles.push(s.spawn(|| loop {
                let job = queue.lock().expect("queue").pop_front();
                let Some((i, hash)) = job else { break };
                let cell = &spec.cells[i];
                let seed = cell.seed(spec.seed);
                let snap = run_cell(cell, &spec.scale, seed);
                if let Err(e) = write_atomic(&marker_path(&cfg.out_dir, cell, hash), &snap.to_json())
                {
                    *io_err.lock().expect("io_err") = Some(e);
                    break;
                }
            }));
        }
        let mut panic = None;
        for h in handles {
            if let Err(p) = h.join() {
                panic = Some(p);
            }
        }
        if let Some(p) = panic {
            std::panic::resume_unwind(p);
        }
    });
    if let Some(e) = io_err.into_inner().expect("io_err") {
        return Err(e);
    }

    // Merge: re-read every marker in expansion order. Only
    // run-invariant facts go into the tree — notably NOT this call's
    // executed/reused split, which depends on where a resume happened.
    let mut sink = MetricSink::new();
    sink.counter("sweep.format_version", FORMAT_VERSION as u64);
    sink.counter("sweep.seed", spec.seed);
    sink.text("sweep.scale", spec.scale.name);
    sink.counter("sweep.cells_total", spec.cells.len() as u64);
    let mut done = 0u64;
    for cell in &spec.cells {
        let hash = cell.config_hash(spec.seed, &spec.scale);
        if let Some(snap) = load_marker(&marker_path(&cfg.out_dir, cell, hash)) {
            sink.absorb_snapshot(&format!("cells.{}", cell.id()), &snap);
            done += 1;
        }
    }
    sink.counter("sweep.cells_done", done);
    sink.counter("sweep.cells_skipped", skipped.len() as u64);
    for (id, why) in &skipped {
        sink.text(&format!("sweep.skipped.{id}"), why);
    }
    let merged = sink.finish();

    let merged_path = cfg.out_dir.join("sweep.json");
    write_atomic(&merged_path, &merged.to_json())?;
    Ok(SweepOutcome {
        executed,
        reused,
        skipped,
        remaining: remaining_after,
        merged,
        merged_path,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Axes, FaultAxis, OptFlags, Scale, Topology, Workload};

    fn tiny_spec(seed: u64) -> SweepSpec {
        let axes = Axes {
            workloads: vec![Workload::Iperf, Workload::Ping { dimm_to_dimm: false }],
            topologies: vec![Topology::Single],
            faults: vec![FaultAxis::None],
            opts: vec![OptFlags { level: 3, threads: 1 }],
        };
        SweepSpec { seed, scale: Scale::smoke(), cells: axes.expand() }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("mcn-sweep-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn markers_make_second_run_a_pure_reuse() {
        let spec = tiny_spec(1);
        let dir = tmp_dir("reuse");
        let cfg = SweepConfig::new(2, &dir);
        let first = run_sweep(&spec, &cfg).expect("first");
        assert_eq!(first.executed, 2);
        assert_eq!(first.reused, 0);
        let second = run_sweep(&spec, &cfg).expect("second");
        assert_eq!(second.executed, 0);
        assert_eq!(second.reused, 2);
        assert_eq!(first.merged.to_json(), second.merged.to_json());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn seed_change_invalidates_markers() {
        let dir = tmp_dir("seed");
        let cfg = SweepConfig::new(1, &dir);
        run_sweep(&tiny_spec(1), &cfg).expect("first");
        let out = run_sweep(&tiny_spec(2), &cfg).expect("reseeded");
        assert_eq!(out.executed, 2, "new seed must re-run every cell");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn mangled_marker_is_rerun_not_trusted() {
        let spec = tiny_spec(3);
        let dir = tmp_dir("mangle");
        let cfg = SweepConfig::new(1, &dir);
        run_sweep(&spec, &cfg).expect("first");
        let hash = spec.cells[0].config_hash(spec.seed, &spec.scale);
        let marker = marker_path(&dir, &spec.cells[0], hash);
        fs::write(&marker, "{ truncated garbage").expect("mangle");
        let out = run_sweep(&spec, &cfg).expect("second");
        assert_eq!(out.executed, 1, "mangled marker must be re-run");
        assert_eq!(out.reused, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn limit_stops_early_and_reports_remaining() {
        let spec = tiny_spec(4);
        let dir = tmp_dir("limit");
        let mut cfg = SweepConfig::new(1, &dir);
        cfg.limit = Some(1);
        let first = run_sweep(&spec, &cfg).expect("first");
        assert_eq!(first.executed, 1);
        assert_eq!(first.remaining, 1);
        assert_eq!(first.merged.get_u64("sweep.cells_done"), 1);
        let _ = fs::remove_dir_all(&dir);
    }
}
