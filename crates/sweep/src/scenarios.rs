//! Shared scenario constructors — one function per experiment — plus
//! [`run_cell`], the dispatcher that turns a sweep [`Cell`] into a
//! sealed metrics snapshot.
//!
//! The figure-family helpers ([`iperf_mcn`], [`workload_mcn`], …) are
//! the canonical implementations behind the `mcn-bench` binaries (the
//! bench crate re-exports them), so every `fig*`/`table*` binary and
//! every sweep cell runs the same construction code. The parameterised
//! rack/datacenter KV builders ([`kv_rack_workload`],
//! [`kv_dc_workload`]) and the rack iperf mix ([`rack_iperf_workload`])
//! generalise what `serving_bench`, `dc_bench` and `engine_bench`
//! previously built inline.
//!
//! Every cell snapshot carries the same layout:
//!
//! | path | meaning |
//! |------|---------|
//! | `meta.*` | axis values, scale, per-cell seed, unit labels |
//! | `elapsed_ps` | simulated completion time |
//! | `requests` | completed request units (`meta.request_unit`) |
//! | `perf` | headline throughput (`meta.perf_unit`) |
//! | `energy.*` | [`mcn_energy::EnergyReport`] + [`mcn_energy::Efficiency`] |
//! | `sim.*` | the topology's full counter tree |
//! | `serve.*` | KV fleet report(s), KV cells only |

use std::sync::Arc;

use parking_lot::Mutex;

use mcn::fabric::ClosConfig;
use mcn::{
    ComponentExt, Datacenter, EthernetCluster, McnConfig, McnRack, McnSystem, SystemConfig,
};
use mcn_energy::{efficiency, EnergyReport, PowerParams};
use mcn_mpi::placement::{spawn_on_cluster, spawn_on_mcn};
use mcn_mpi::{
    CommPattern, IperfClient, IperfReport, IperfServer, PingReport, Pinger, WorkloadSpec,
};
use mcn_serve::{
    Backend, KvServer, KvServerConfig, ReplicaMap, ResilientClientConfig, ResilientKvClient,
    ServeReport,
};
use mcn_sim::fault::{FaultKind, FaultPlan};
use mcn_sim::{MetricSink, MetricsSnapshot, OutageKind, OutagePlan, SimTime};

use crate::spec::{Cell, FaultAxis, Scale, Topology, Workload};

/// Which ends of the MCN network a microbenchmark exercises (Fig. 8's
/// `host-mcn` and `mcn-mcn` configurations).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum McnMode {
    /// Server on the host, clients on the MCN DIMMs.
    HostMcn,
    /// Server on MCN DIMM 0, clients on the host and the remaining DIMMs.
    McnMcn,
}

/// Result of one iperf run.
#[derive(Debug, Clone, Copy)]
pub struct IperfResult {
    /// Aggregate goodput at the server in Gbit/s (after warm-up).
    pub gbps: f64,
    /// Simulated completion time.
    pub took: SimTime,
}

const IPERF_PORT: u16 = 5001;
const IPERF_BYTES_PER_CLIENT: u64 = 6 << 20;
const IPERF_WARMUP: SimTime = SimTime::from_ms(2);
const IPERF_DEADLINE: SimTime = SimTime::from_secs(10);

/// Paper Fig. 8(a): iperf with one server and four clients over MCN at the
/// given optimisation level.
pub fn iperf_mcn(level: u32, mode: McnMode) -> IperfResult {
    iperf_mcn_custom(&SystemConfig::default(), McnConfig::level(level), mode)
}

/// [`iperf_mcn`] with explicit system and MCN configurations (used by the
/// ablation harness for non-cumulative configs).
pub fn iperf_mcn_custom(cfg: &SystemConfig, mcn: McnConfig, mode: McnMode) -> IperfResult {
    let n_dimms = 4;
    let mut sys = McnSystem::new(cfg, n_dimms, mcn);
    let srv = IperfReport::shared();
    match mode {
        McnMode::HostMcn => {
            sys.spawn_host(
                Box::new(IperfServer::new(IPERF_PORT, n_dimms, IPERF_WARMUP, srv.clone())),
                0,
            );
            let dst = sys.host_rank_ip();
            for d in 0..n_dimms {
                let rep = IperfReport::shared();
                sys.spawn_dimm(
                    d,
                    Box::new(IperfClient::new(dst, IPERF_PORT, IPERF_BYTES_PER_CLIENT, rep)),
                    1,
                );
            }
        }
        McnMode::McnMcn => {
            sys.spawn_dimm(
                0,
                Box::new(IperfServer::new(IPERF_PORT, n_dimms, IPERF_WARMUP, srv.clone())),
                1,
            );
            let dst = sys.dimm_ip(0);
            let rep = IperfReport::shared();
            sys.spawn_host(
                Box::new(IperfClient::new(dst, IPERF_PORT, IPERF_BYTES_PER_CLIENT, rep)),
                0,
            );
            for d in 1..n_dimms {
                let rep = IperfReport::shared();
                sys.spawn_dimm(
                    d,
                    Box::new(IperfClient::new(dst, IPERF_PORT, IPERF_BYTES_PER_CLIENT, rep)),
                    1,
                );
            }
        }
    }
    let finished = sys.run_until_procs_done(IPERF_DEADLINE);
    assert!(finished, "iperf {mcn} {mode:?} stalled at {}", sys.now());
    let r = srv.lock();
    IperfResult {
        gbps: r.meter.gbps(),
        took: sys.now(),
    }
}

/// Paper Fig. 8(a) baseline: iperf with one server node and four client
/// nodes over 10GbE.
pub fn iperf_10gbe() -> IperfResult {
    let cfg = SystemConfig::default();
    let clients = 4;
    let mut c = EthernetCluster::new(&cfg, clients + 1);
    let srv = IperfReport::shared();
    c.spawn(
        0,
        Box::new(IperfServer::new(IPERF_PORT, clients, IPERF_WARMUP, srv.clone())),
        0,
    );
    for i in 0..clients {
        let rep = IperfReport::shared();
        c.spawn(
            i + 1,
            Box::new(IperfClient::new(
                EthernetCluster::ip_of(0),
                IPERF_PORT,
                IPERF_BYTES_PER_CLIENT,
                rep,
            )),
            1,
        );
    }
    let finished = c.run_until_procs_done(IPERF_DEADLINE);
    assert!(finished, "iperf 10gbe stalled at {}", c.now());
    let r = srv.lock();
    IperfResult {
        gbps: r.meter.gbps(),
        took: c.now(),
    }
}

/// Mean ping RTT over MCN: host↔DIMM (Fig. 8b) or DIMM↔DIMM via the host
/// forwarding engine (Fig. 8c).
pub fn ping_mcn(level: u32, mode: McnMode, payload: usize, count: u16) -> SimTime {
    let cfg = SystemConfig::default();
    let mut sys = McnSystem::new(&cfg, 2, McnConfig::level(level));
    let rep = PingReport::shared();
    match mode {
        McnMode::HostMcn => {
            let dst = sys.dimm_ip(0);
            sys.spawn_host(Box::new(Pinger::new(dst, payload, count, 1, rep.clone())), 0);
        }
        McnMode::McnMcn => {
            let dst = sys.dimm_ip(1);
            sys.spawn_dimm(0, Box::new(Pinger::new(dst, payload, count, 1, rep.clone())), 1);
        }
    }
    let ok = sys.run_until_procs_done(SimTime::from_secs(1));
    assert!(ok, "ping mcn{level} {mode:?} stalled at {}", sys.now());
    let r = rep.lock();
    assert_eq!(r.replies as u16, count, "lost pings");
    r.rtts.mean().expect("recorded")
}

/// Mean ping RTT between two 10GbE nodes (the Fig. 8b/c normalisation
/// baseline).
pub fn ping_10gbe(payload: usize, count: u16) -> SimTime {
    let cfg = SystemConfig::default();
    let mut c = EthernetCluster::new(&cfg, 2);
    let rep = PingReport::shared();
    c.spawn(
        0,
        Box::new(Pinger::new(
            EthernetCluster::ip_of(1),
            payload,
            count,
            1,
            rep.clone(),
        )),
        1,
    );
    let ok = c.run_until_procs_done(SimTime::from_secs(1));
    assert!(ok, "ping 10gbe stalled at {}", c.now());
    let r = rep.lock();
    assert_eq!(r.replies as u16, count);
    r.rtts.mean().expect("recorded")
}

/// One row of Table III: mean per-packet latency components in
/// nanoseconds.
#[derive(Debug, Clone, Copy, Default)]
pub struct LatencyBreakdown {
    /// Driver transmit work.
    pub driver_tx_ns: f64,
    /// DMA from DRAM to the NIC (10GbE only).
    pub dma_tx_ns: f64,
    /// PCIe + serialization + wire + switch (10GbE only).
    pub phy_ns: f64,
    /// DMA from the NIC to DRAM (10GbE only).
    pub dma_rx_ns: f64,
    /// Driver receive work (interrupt/poll → stack delivery).
    pub driver_rx_ns: f64,
}

impl LatencyBreakdown {
    /// Sum of the components.
    pub fn total_ns(&self) -> f64 {
        self.driver_tx_ns + self.dma_tx_ns + self.phy_ns + self.dma_rx_ns + self.driver_rx_ns
    }
}

/// Table III: one-way component breakdown for a TCP packet of `payload`
/// bytes over 10GbE, measured from the NIC's histograms plus the wire
/// model's known constants.
pub fn table3_10gbe(payload: u64) -> LatencyBreakdown {
    let cfg = SystemConfig::default();
    let mut c = EthernetCluster::new(&cfg, 2);
    let srv = IperfReport::shared();
    c.spawn(0, Box::new(IperfServer::new(IPERF_PORT, 1, SimTime::ZERO, srv.clone())), 0);
    let rep = IperfReport::shared();
    c.spawn(
        1,
        Box::new(IperfClient::new(EthernetCluster::ip_of(0), IPERF_PORT, payload, rep)),
        1,
    );
    assert!(c.run_until_procs_done(SimTime::from_secs(1)));
    let tx = &c.node(1).nic.breakdown;
    let rx = &c.node(0).nic.breakdown;
    let wire = payload.min(1514) + 50; // one MTU frame on the wire
    let ser = SimTime::for_bytes(wire, cfg.eth_bytes_per_sec);
    let phy = SimTime::from_ns(600) // PCIe out
        + ser
        + cfg.eth_latency
        + SimTime::from_ns(500) // switch
        + ser
        + cfg.eth_latency;
    LatencyBreakdown {
        driver_tx_ns: tx.driver_tx.mean().unwrap_or(SimTime::ZERO).as_ns_f64(),
        dma_tx_ns: tx.dma_tx.mean().unwrap_or(SimTime::ZERO).as_ns_f64(),
        phy_ns: phy.as_ns_f64(),
        dma_rx_ns: rx.dma_rx.mean().unwrap_or(SimTime::ZERO).as_ns_f64(),
        driver_rx_ns: rx.driver_rx.mean().unwrap_or(SimTime::ZERO).as_ns_f64(),
    }
}

/// Table III: one-way component breakdown for a TCP packet of `payload`
/// bytes over MCN at optimisation level `level` (DMA and PHY are zero by
/// construction; that *is* the result).
pub fn table3_mcn(payload: u64, level: u32) -> LatencyBreakdown {
    let cfg = SystemConfig::default();
    let mut sys = McnSystem::new(&cfg, 1, McnConfig::level(level));
    let srv = IperfReport::shared();
    sys.spawn_host(Box::new(IperfServer::new(IPERF_PORT, 1, SimTime::ZERO, srv.clone())), 0);
    let dst = sys.host_rank_ip();
    let rep = IperfReport::shared();
    sys.spawn_dimm(0, Box::new(IperfClient::new(dst, IPERF_PORT, payload, rep)), 1);
    assert!(sys.run_until_procs_done(SimTime::from_secs(1)));
    LatencyBreakdown {
        driver_tx_ns: sys
            .dimm(0)
            .stats
            .driver_tx
            .mean()
            .unwrap_or(SimTime::ZERO)
            .as_ns_f64(),
        dma_tx_ns: 0.0,
        phy_ns: 0.0,
        dma_rx_ns: 0.0,
        driver_rx_ns: sys
            .hdrv
            .stats
            .driver_rx
            .mean()
            .unwrap_or(SimTime::ZERO)
            .as_ns_f64(),
    }
}

/// Result of one workload run.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadResult {
    /// Completion time of the slowest rank.
    pub completion: SimTime,
    /// Aggregate DRAM traffic (all channels, all nodes) in bytes.
    pub dram_bytes: u64,
    /// Aggregate bandwidth = traffic / completion, bytes per second.
    pub agg_bw: f64,
    /// Total energy in joules over the run.
    pub energy_j: f64,
    /// Numerical verification passed.
    pub verified: bool,
}

fn finish_workload(
    completion: SimTime,
    dram_bytes: u64,
    energy_j: f64,
    report: &Arc<Mutex<mcn_mpi::WorkloadReport>>,
) -> WorkloadResult {
    let r = report.lock();
    WorkloadResult {
        completion,
        dram_bytes,
        agg_bw: if completion == SimTime::ZERO {
            0.0
        } else {
            dram_bytes as f64 / completion.as_secs_f64()
        },
        energy_j,
        verified: r.verified,
    }
}

/// Runs `spec` on an MCN-enabled server with `n_dimms` DIMMs at level
/// `level`: `host_ranks` ranks on the host plus `per_dimm` per DIMM.
pub fn workload_mcn(
    spec: WorkloadSpec,
    n_dimms: usize,
    level: u32,
    host_ranks: usize,
    per_dimm: usize,
) -> WorkloadResult {
    workload_mcn_cfg(&SystemConfig::default(), spec, n_dimms, level, host_ranks, per_dimm)
}

/// [`workload_mcn`] with an explicit system configuration (Fig. 11 uses a
/// 4-core host).
pub fn workload_mcn_cfg(
    cfg: &SystemConfig,
    spec: WorkloadSpec,
    n_dimms: usize,
    level: u32,
    host_ranks: usize,
    per_dimm: usize,
) -> WorkloadResult {
    let mut sys = McnSystem::new(cfg, n_dimms, McnConfig::level(level));
    let report = spawn_on_mcn(&mut sys, spec, host_ranks, per_dimm, 0xC0FFEE);
    let ok = sys.run_until_procs_done(SimTime::from_secs(30));
    assert!(
        ok,
        "workload {} on {n_dimms}-DIMM mcn{level} stalled at {}",
        spec.name,
        sys.now()
    );
    let completion = report.lock().completion().expect("all finished");
    let dram_bytes: u64 = sys.host.mem.total_bytes()
        + (0..n_dimms).map(|d| sys.dimm(d).node.mem.total_bytes()).sum::<u64>();
    let energy = mcn_energy::mcn_system_energy(
        &mcn_energy::PowerParams::default(),
        &sys,
        completion,
    )
    .total();
    finish_workload(completion, dram_bytes, energy, &report)
}

/// Runs `spec` on a conventional server: all ranks on one node (also the
/// Fig. 9 normalisation baseline, where aggregate bandwidth is whatever the
/// host channels deliver alone).
pub fn workload_conventional(spec: WorkloadSpec, ranks: usize) -> WorkloadResult {
    workload_mcn(spec, 0, 0, ranks, 0)
}

/// Runs `spec` on a scale-up server with `cores` cores and `ranks` ranks
/// over loopback (the Fig. 11 baseline).
pub fn workload_scaleup(spec: WorkloadSpec, cores: usize, ranks: usize) -> WorkloadResult {
    let cfg = SystemConfig {
        host_cores: cores,
        ..SystemConfig::default()
    };
    let mut sys = McnSystem::new(&cfg, 0, McnConfig::level(0));
    let report = spawn_on_mcn(&mut sys, spec, ranks, 0, 0xC0FFEE);
    let ok = sys.run_until_procs_done(SimTime::from_secs(30));
    assert!(ok, "scale-up {} stalled at {}", spec.name, sys.now());
    let completion = report.lock().completion().expect("all finished");
    let dram_bytes = sys.host.mem.total_bytes();
    let energy = mcn_energy::mcn_system_energy(
        &mcn_energy::PowerParams::default(),
        &sys,
        completion,
    )
    .total();
    finish_workload(completion, dram_bytes, energy, &report)
}

/// Runs `spec` on an `nodes`-node 10GbE cluster with `per_node` ranks per
/// node (the Fig. 10 baseline).
pub fn workload_cluster(spec: WorkloadSpec, nodes: usize, per_node: usize) -> WorkloadResult {
    let cfg = SystemConfig::default();
    let mut c = EthernetCluster::new(&cfg, nodes);
    let report = spawn_on_cluster(&mut c, spec, per_node, 0xC0FFEE);
    let ok = c.run_until_procs_done(SimTime::from_secs(30));
    assert!(ok, "cluster {} stalled at {}", spec.name, c.now());
    let completion = report.lock().completion().expect("all finished");
    let dram_bytes: u64 = (0..nodes).map(|i| c.node(i).node.mem.total_bytes()).sum();
    let energy =
        mcn_energy::cluster_energy(&mcn_energy::PowerParams::default(), &c, completion).total();
    finish_workload(completion, dram_bytes, energy, &report)
}

/// A shared KV fleet report.
pub type KvReport = Arc<Mutex<ServeReport>>;

/// Mid-run chaos for the rack KV scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvRackChaos {
    /// One replica DIMM (server 0, DIMM 0) crashes and powers back on.
    ReplicaCrash {
        /// Crash time.
        at: SimTime,
        /// Dark period.
        down_for: SimTime,
    },
    /// The whole `riser0` failure domain (both DIMMs of server 0) dies
    /// atomically and heals together.
    DomainCrash {
        /// Crash time.
        at: SimTime,
        /// Dark period.
        down_for: SimTime,
    },
}

/// Sizing and chaos knobs for [`kv_rack_workload`]; `default_bench()`
/// is the exact `serving_bench` configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct KvRackParams {
    /// MCN optimisation level of the rack.
    pub level: u32,
    /// Open-loop clients spawned on each server's host.
    pub clients_per_server: u64,
    /// Requests per client.
    pub reqs_per_client: u64,
    /// Latency SLO for the report's `under_slo` accounting.
    pub slo: SimTime,
    /// First client seed; client `i` uses `seed_base + i`.
    pub seed_base: u64,
    /// Optional mid-run chaos.
    pub chaos: Option<KvRackChaos>,
}

impl KvRackParams {
    /// The `serving_bench` configuration: mcn3, 4 clients per server ×
    /// 250 requests, 200 µs SLO, riser0 domain crash at 3 ms for 6 ms.
    pub fn default_bench() -> KvRackParams {
        KvRackParams {
            level: 3,
            clients_per_server: 4,
            reqs_per_client: 250,
            slo: SimTime::from_us(200),
            seed_base: 0xBE0,
            chaos: Some(KvRackChaos::DomainCrash {
                at: SimTime::from_ms(3),
                down_for: SimTime::from_ms(6),
            }),
        }
    }
}

/// Domain name of server `s`'s DIMM riser (used for both the outage
/// plan and replica placement, so chaos and placement agree on blast
/// radius).
pub fn riser(s: usize) -> String {
    format!("riser{s}")
}

/// Builds the replicated KV rack: a 2×2 rack with one `KvServer` per
/// DIMM, every key range on R=2 DIMMs in distinct riser domains, and a
/// resilient open-loop client fleet (hedging and non-hedging halves).
pub fn kv_rack_workload(p: &KvRackParams) -> (McnRack, KvReport) {
    const SERVERS: usize = 2;
    const DIMMS: usize = 2;
    let report = ServeReport::shared(p.slo);
    let mut rack =
        McnRack::new(&SystemConfig::default(), SERVERS, DIMMS, McnConfig::level(p.level));

    if let Some(chaos) = p.chaos {
        let mut plan = OutagePlan::new(0xD0);
        plan.define_domain(
            &riser(0),
            &[
                &McnRack::dimm_outage_component(0, 0),
                &McnRack::dimm_outage_component(0, 1),
            ],
        );
        plan.define_domain(
            &riser(1),
            &[
                &McnRack::dimm_outage_component(1, 0),
                &McnRack::dimm_outage_component(1, 1),
            ],
        );
        match chaos {
            KvRackChaos::DomainCrash { at, down_for } => {
                report.lock().set_fault_window(at, at + down_for);
                plan.at(&riser(0), at, OutageKind::DomainDown { down_for });
            }
            KvRackChaos::ReplicaCrash { at, down_for } => {
                report.lock().set_fault_window(at, at + down_for);
                plan.at(
                    &McnRack::dimm_outage_component(0, 0),
                    at,
                    OutageKind::DimmCrash { down_for },
                );
            }
        }
        rack.set_outage_plan(&plan);
    }

    let server = KvServerConfig {
        inflight_budget: 4,
        ..KvServerConfig::default()
    };
    let mut backends = Vec::new();
    for s in 0..SERVERS {
        for d in 0..DIMMS {
            rack.spawn_dimm(s, d, Box::new(KvServer::new(server.clone(), report.clone())), 0);
            backends.push(Backend {
                addr: rack.server(s).dimm_ip(d),
                port: 11211,
                domain: riser(s),
                rack: 0,
            });
        }
    }
    let map = ReplicaMap::new(backends, 8, 2).expect("placement");

    for s in 0..SERVERS {
        for c in 0..p.clients_per_server {
            let i = s as u64 * p.clients_per_server + c;
            let mut cfg = ResilientClientConfig::new(map.clone());
            cfg.seed = p.seed_base + i;
            cfg.n_requests = p.reqs_per_client;
            cfg.mean_gap = SimTime::from_us(25);
            cfg.keyspace = 1024;
            cfg.set_pct = 20;
            cfg.val_len = 512;
            // A correlated outage concentrates retries: give the bucket
            // enough depth (and refill) that recovery is not
            // budget-bound while still bounding a true retry storm.
            cfg.retry_budget = 32;
            cfg.retry_earn_tenths = 5;
            // Half the fleet hedges its reads; the other half recovers
            // purely by timeout failover, so both paths show up.
            if i % 2 == 1 {
                cfg.hedge_delay = None;
            }
            rack.spawn_host(
                s,
                Box::new(ResilientKvClient::new(cfg, report.clone())),
                (c % 2) as usize,
            );
        }
    }
    (rack, report)
}

/// Sizing and chaos knobs for [`kv_dc_workload`]; `default_bench()` is
/// the exact `dc_bench` configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct KvDcParams {
    /// MCN optimisation level of every server.
    pub level: u32,
    /// Open-loop clients per fleet (one intra-rack, one cross-pod).
    pub clients_per_fleet: u64,
    /// Requests per client.
    pub reqs_per_client: u64,
    /// Latency SLO for both fleet reports.
    pub slo: SimTime,
    /// First client seed; fleet `f` client `c` uses `base + f*16 + c`.
    pub seed_base: u64,
    /// Optional spine-0 loss: `(at, down_for)`.
    pub spine_outage: Option<(SimTime, SimTime)>,
}

impl KvDcParams {
    /// The `dc_bench` configuration: mcn3, 3 clients per fleet × 150
    /// requests, 500 µs SLO, spine 0 down at 2 ms for 2 ms.
    pub fn default_bench() -> KvDcParams {
        KvDcParams {
            level: 3,
            clients_per_fleet: 3,
            reqs_per_client: 150,
            slo: SimTime::from_us(500),
            seed_base: 0xDC0,
            spine_outage: Some((SimTime::from_ms(2), SimTime::from_ms(2))),
        }
    }
}

/// Builds the Clos-datacenter KV workload: KV servers on rack 0 (intra
/// tier) and rack 3 (cross tier), `clients_per_fleet` rack-0 clients
/// per tier, and optionally the spine outage. Returns the datacenter
/// plus the intra-rack and cross-pod fleet reports.
pub fn kv_dc_workload(p: &KvDcParams) -> (Datacenter, KvReport, KvReport) {
    let clos = ClosConfig::default(); // 2 pods x 2 racks x 4 servers
    let mut dc = Datacenter::new(&SystemConfig::default(), McnConfig::level(p.level), &clos);

    let cross = ServeReport::shared(p.slo);
    if let Some((at, down_for)) = p.spine_outage {
        let mut plan = OutagePlan::new(0xDCB);
        plan.at(
            &Datacenter::spine_outage_component(0),
            at,
            OutageKind::SwitchDown { down_for },
        );
        dc.set_outage_plan(&plan);
        cross.lock().set_fault_window(at, at + down_for);
    }
    let intra = ServeReport::shared(p.slo);

    let server = KvServerConfig::default();
    dc.spawn_host(0, 0, Box::new(KvServer::new(server.clone(), intra.clone())), 0);
    dc.spawn_host(3, 0, Box::new(KvServer::new(server, cross.clone())), 0);

    let backend = |rack: usize, port: u16| {
        ReplicaMap::new(
            vec![Backend {
                addr: McnSystem::nic_ip_in(rack, 0),
                port,
                domain: format!("rack{rack}"),
                rack,
            }],
            1,
            1,
        )
        .expect("placement")
    };
    let intra_map = backend(0, 11211);
    let cross_map = backend(3, 11211);

    for c in 0..p.clients_per_fleet {
        for (fleet, map, report) in [
            (0u64, &intra_map, &intra),
            (1u64, &cross_map, &cross),
        ] {
            let mut cfg = ResilientClientConfig::new(map.clone());
            cfg.seed = p.seed_base + fleet * 16 + c;
            cfg.n_requests = p.reqs_per_client;
            cfg.mean_gap = SimTime::from_us(40);
            cfg.keyspace = 256;
            cfg.set_pct = 20;
            cfg.val_len = 512;
            // Single-replica maps: failover has nowhere to go, so the
            // spine window is ridden out on retries.
            cfg.retry_budget = 32;
            cfg.retry_earn_tenths = 5;
            // Clients live on rack 0's servers 1..=3 (server 0 hosts
            // the intra-tier KV server); fleets beyond 3 clients wrap
            // around those three servers.
            dc.spawn_host(
                0,
                1 + (c as usize % 3),
                Box::new(ResilientKvClient::new(cfg, report.clone())),
                fleet as usize,
            );
        }
    }
    (dc, intra, cross)
}

/// Builds the rack iperf mix `engine_bench` measures: 4 local streams
/// (each DIMM into its own host) plus 1 cross-server stream (server 0's
/// DIMM 0 into server 1's host), so the ToR switch and both NICs stay
/// on the critical path. `partition` optionally splits the two servers
/// at the ToR mid-run: `(at, heal_at)`.
pub fn rack_iperf_workload(
    level: u32,
    bytes_per_stream: u64,
    partition: Option<(SimTime, SimTime)>,
) -> (McnRack, KvIperfReports) {
    let mut rack = McnRack::new(&SystemConfig::default(), 2, 2, McnConfig::level(level));
    if let Some((at, heal_at)) = partition {
        let mut plan = OutagePlan::new(0xAB);
        plan.at(
            McnRack::SWITCH_OUTAGE_COMPONENT,
            at,
            OutageKind::SwitchPartition {
                groups: vec![vec![0], vec![1]],
                heal_at,
            },
        );
        rack.set_outage_plan(&plan);
    }
    let srv0 = IperfReport::shared();
    let srv1 = IperfReport::shared();
    rack.spawn_host(
        0,
        Box::new(IperfServer::new(5001, 2, SimTime::from_ms(1), srv0.clone())),
        0,
    );
    rack.spawn_host(
        1,
        Box::new(IperfServer::new(5001, 3, SimTime::from_ms(1), srv1.clone())),
        0,
    );
    for s in 0..2 {
        let dst = rack.server(s).host_rank_ip();
        for d in 0..2 {
            rack.spawn_dimm(
                s,
                d,
                Box::new(IperfClient::new(dst, 5001, bytes_per_stream, IperfReport::shared())),
                1,
            );
        }
    }
    let remote = rack.server(1).host_rank_ip();
    rack.spawn_dimm(
        0,
        0,
        Box::new(IperfClient::new(remote, 5001, bytes_per_stream, IperfReport::shared())),
        2,
    );
    (rack, (srv0, srv1))
}

/// The two iperf server reports of [`rack_iperf_workload`].
pub type KvIperfReports = (Arc<Mutex<IperfReport>>, Arc<Mutex<IperfReport>>);

/// The communication-dominated all-reduce microbenchmark of the sweep's
/// `allreduce` axis value.
pub fn allreduce_spec(iterations: u32) -> WorkloadSpec {
    WorkloadSpec {
        name: "allreduce",
        suite: "sweep",
        iterations,
        mem_bytes_per_iter: 1 << 20,
        read_frac: 0.8,
        random_access: false,
        compute_ns_per_iter: 50_000,
        comm: CommPattern::AllReduce { elems: 4096 },
    }
}

/// The seeded rate-fault plan of the sweep's `faults` axis value:
/// ~1 % frame loss on both SRAM ring directions of DIMM 0, a quarter of
/// ALERT_N edges lost, ~2 % of MCN-DMA transfers stalling — and
/// ~0.5 % bit flips only while the configuration still verifies
/// checksums (flipping bytes the stack is told not to check would
/// corrupt payloads silently).
pub fn sweep_fault_plan(seed: u64, mcn: McnConfig) -> FaultPlan {
    let mut plan = FaultPlan::new(seed);
    for comp in [
        McnSystem::sram_host_fault_component(0, 0),
        McnSystem::sram_dimm_fault_component(0, 0),
    ] {
        plan.rate(&comp, FaultKind::Drop, 0.01);
        if !mcn.checksum_bypass {
            plan.rate(&comp, FaultKind::BitFlip, 0.005);
        }
    }
    plan.rate(&McnSystem::alert_fault_component(0), FaultKind::Drop, 0.25);
    plan.rate(&McnSystem::dma_fault_component(0), FaultKind::Stall, 0.02);
    plan
}

/// What a scenario arm measured, before it is folded into the snapshot.
struct CellRun {
    elapsed: SimTime,
    requests: u64,
    request_unit: &'static str,
    perf: f64,
    perf_unit: &'static str,
    energy: EnergyReport,
}

/// Runs one sweep cell and returns its sealed snapshot (`meta.*`,
/// `requests`, `perf`, `energy.*`, `sim.*`, and `serve.*` for KV
/// cells). Deterministic: the same `(cell, scale, seed)` triple always
/// produces byte-identical `to_json()` output, at any worker-thread
/// count.
///
/// # Panics
///
/// Panics if the cell is unsupported ([`Cell::supported`]) or the
/// scenario violates one of its own hard invariants (a stalled run, a
/// failed numerical verification, a broken request-accounting
/// identity) — a panic marks the cell as failed rather than recording
/// garbage.
pub fn run_cell(cell: &Cell, scale: &Scale, seed: u64) -> MetricsSnapshot {
    cell.supported().unwrap_or_else(|why| panic!("unsupported cell {cell}: {why}"));
    let mut sink = MetricSink::new();
    sink.text("meta.workload", &cell.workload.token());
    sink.text("meta.topology", cell.topology.token());
    sink.text("meta.fault", cell.fault.token());
    sink.text("meta.opt", &cell.opt.token());
    sink.text("meta.scale", scale.name);
    sink.counter("meta.seed", seed);

    let run = match (&cell.workload, cell.topology) {
        (Workload::Iperf, Topology::Single) => iperf_single_cell(cell, scale, seed, &mut sink),
        (Workload::Iperf, Topology::Rack) => iperf_rack_cell(cell, scale, &mut sink),
        (Workload::Iperf, Topology::Cluster) => iperf_cluster_cell(cell, scale, &mut sink),
        (Workload::Ping { dimm_to_dimm }, Topology::Single) => {
            ping_single_cell(cell, scale, *dimm_to_dimm, &mut sink)
        }
        (Workload::Ping { .. }, Topology::Cluster) => ping_cluster_cell(cell, scale, &mut sink),
        (Workload::AllReduce, Topology::Single) => mpi_single_cell(
            cell,
            scale,
            seed,
            allreduce_spec(scale.allreduce_iters),
            2,
            2,
            1,
            &SystemConfig::default(),
            &mut sink,
        ),
        (Workload::AllReduce, Topology::Cluster) => {
            mpi_cluster_cell(scale, seed, allreduce_spec(scale.allreduce_iters), 4, 1, &mut sink)
        }
        (Workload::Kv, Topology::Rack) => kv_rack_cell(cell, scale, &mut sink),
        (Workload::Kv, Topology::Dc) => kv_dc_cell(cell, scale, &mut sink),
        (Workload::Npb { name, dimms, host_ranks, per_dimm }, Topology::Single) => {
            let spec = WorkloadSpec::by_name(name)
                .unwrap_or_else(|| panic!("unknown workload {name:?}"));
            mpi_single_cell(
                cell,
                scale,
                seed,
                spec,
                *dimms,
                *host_ranks,
                *per_dimm,
                &SystemConfig::default(),
                &mut sink,
            )
        }
        (Workload::NpbScaleUp { name, cores, ranks }, Topology::Single) => {
            let spec = WorkloadSpec::by_name(name)
                .unwrap_or_else(|| panic!("unknown workload {name:?}"));
            let cfg = SystemConfig { host_cores: *cores, ..SystemConfig::default() };
            mpi_single_cell(cell, scale, seed, spec, 0, *ranks, 0, &cfg, &mut sink)
        }
        (Workload::NpbCluster { name, nodes, per_node }, Topology::Cluster) => {
            let spec = WorkloadSpec::by_name(name)
                .unwrap_or_else(|| panic!("unknown workload {name:?}"));
            mpi_cluster_cell(scale, seed, spec, *nodes, *per_node, &mut sink)
        }
        (w, t) => panic!("no scenario for {w:?} on {t:?} (supported() let it through)"),
    };

    sink.text("meta.request_unit", run.request_unit);
    sink.text("meta.perf_unit", run.perf_unit);
    sink.counter("elapsed_ps", run.elapsed.as_ps());
    sink.counter("requests", run.requests);
    sink.value("perf", run.perf);
    let eff = efficiency(&run.energy, run.requests, run.perf, run.elapsed);
    sink.value("energy.total_j", run.energy.total());
    sink.value("energy.cpu_j", run.energy.cpu_j);
    sink.value("energy.uncore_j", run.energy.uncore_j);
    sink.value("energy.dram_j", run.energy.dram_j);
    sink.value("energy.network_j", run.energy.network_j);
    sink.value("energy.energy_per_request_nj", eff.energy_per_request_nj);
    sink.value("energy.perf_per_watt", eff.perf_per_watt);
    sink.value("energy.avg_power_w", eff.avg_power_w);
    sink.finish()
}

fn power() -> PowerParams {
    PowerParams::default()
}

fn iperf_single_cell(cell: &Cell, scale: &Scale, seed: u64, sink: &mut MetricSink) -> CellRun {
    let n_dimms = 4;
    let mcn = McnConfig::level(cell.opt.level);
    let plan = match cell.fault {
        FaultAxis::Faults => sweep_fault_plan(seed, mcn),
        _ => FaultPlan::new(seed),
    };
    let mut sys = McnSystem::with_faults(&SystemConfig::default(), n_dimms, mcn, &plan);
    let srv = IperfReport::shared();
    // Zero warm-up: the meter must account every payload byte so that
    // requests (delivered KiB) and energy-per-request stay honest.
    sys.spawn_host(Box::new(IperfServer::new(IPERF_PORT, n_dimms, SimTime::ZERO, srv.clone())), 0);
    let dst = sys.host_rank_ip();
    for d in 0..n_dimms {
        sys.spawn_dimm(
            d,
            Box::new(IperfClient::new(dst, IPERF_PORT, scale.iperf_bytes, IperfReport::shared())),
            1,
        );
    }
    assert!(sys.run_until_procs_done(scale.deadline), "cell {cell} stalled at {}", sys.now());
    let elapsed = sys.now();
    let (bytes, gbps) = {
        let r = srv.lock();
        (r.meter.bytes(), r.meter.gbps())
    };
    assert_eq!(bytes, scale.iperf_bytes * n_dimms as u64, "cell {cell} lost payload bytes");
    sink.absorb("sim", &sys);
    CellRun {
        elapsed,
        requests: bytes >> 10,
        request_unit: "KiB_delivered",
        perf: gbps,
        perf_unit: "gbps",
        energy: mcn_energy::mcn_system_energy(&power(), &sys, elapsed),
    }
}

fn iperf_rack_cell(cell: &Cell, scale: &Scale, sink: &mut MetricSink) -> CellRun {
    let partition = match cell.fault {
        FaultAxis::Outages => Some((SimTime::from_ms(1), SimTime::from_ms(5))),
        _ => None,
    };
    let (mut rack, (srv0, srv1)) =
        rack_iperf_workload(cell.opt.level, scale.iperf_bytes, partition);
    assert!(
        rack.run_parallel(scale.deadline, cell.opt.threads),
        "cell {cell} stalled at {}",
        rack.now()
    );
    let elapsed = rack.now();
    let bytes = srv0.lock().meter.bytes() + srv1.lock().meter.bytes();
    let gbps = srv0.lock().meter.gbps() + srv1.lock().meter.gbps();
    // The rack servers meter after a 1 ms warm-up, so only bounds hold:
    // something must be delivered, and never more than the 5 streams
    // carried — even across the ToR partition.
    assert!(
        bytes > 0 && bytes <= scale.iperf_bytes * 5,
        "cell {cell}: implausible delivered byte count {bytes}"
    );
    sink.absorb("sim", &rack);
    CellRun {
        elapsed,
        requests: bytes >> 10,
        request_unit: "KiB_delivered",
        perf: gbps,
        perf_unit: "gbps",
        energy: mcn_energy::rack_energy(&power(), &rack, elapsed),
    }
}

fn iperf_cluster_cell(cell: &Cell, scale: &Scale, sink: &mut MetricSink) -> CellRun {
    let clients = 4;
    let mut c = EthernetCluster::new(&SystemConfig::default(), clients + 1);
    let srv = IperfReport::shared();
    c.spawn(0, Box::new(IperfServer::new(IPERF_PORT, clients, SimTime::ZERO, srv.clone())), 0);
    for i in 0..clients {
        c.spawn(
            i + 1,
            Box::new(IperfClient::new(
                EthernetCluster::ip_of(0),
                IPERF_PORT,
                scale.iperf_bytes,
                IperfReport::shared(),
            )),
            1,
        );
    }
    assert!(
        c.run_parallel(scale.deadline, cell.opt.threads),
        "cell {cell} stalled at {}",
        c.now()
    );
    let elapsed = c.now();
    let (bytes, gbps) = {
        let r = srv.lock();
        (r.meter.bytes(), r.meter.gbps())
    };
    sink.absorb("sim", &c);
    CellRun {
        elapsed,
        requests: bytes >> 10,
        request_unit: "KiB_delivered",
        perf: gbps,
        perf_unit: "gbps",
        energy: mcn_energy::cluster_energy(&power(), &c, elapsed),
    }
}

fn ping_single_cell(
    cell: &Cell,
    scale: &Scale,
    dimm_to_dimm: bool,
    sink: &mut MetricSink,
) -> CellRun {
    let mut sys = McnSystem::new(&SystemConfig::default(), 2, McnConfig::level(cell.opt.level));
    let rep = PingReport::shared();
    if dimm_to_dimm {
        let dst = sys.dimm_ip(1);
        sys.spawn_dimm(0, Box::new(Pinger::new(dst, 64, scale.ping_count, 1, rep.clone())), 1);
    } else {
        let dst = sys.dimm_ip(0);
        sys.spawn_host(Box::new(Pinger::new(dst, 64, scale.ping_count, 1, rep.clone())), 0);
    }
    assert!(sys.run_until_procs_done(scale.deadline), "cell {cell} stalled at {}", sys.now());
    let elapsed = sys.now();
    let (replies, rtt) = {
        let r = rep.lock();
        assert_eq!(r.replies as u16, scale.ping_count, "cell {cell} lost pings");
        (r.replies, r.rtts.mean().expect("recorded"))
    };
    sink.value("rtt_ns", rtt.as_ns_f64());
    sink.absorb("sim", &sys);
    CellRun {
        elapsed,
        requests: replies,
        request_unit: "ping_replies",
        perf: replies as f64 / elapsed.as_secs_f64().max(1e-12),
        perf_unit: "replies_per_sec",
        energy: mcn_energy::mcn_system_energy(&power(), &sys, elapsed),
    }
}

fn ping_cluster_cell(cell: &Cell, scale: &Scale, sink: &mut MetricSink) -> CellRun {
    let mut c = EthernetCluster::new(&SystemConfig::default(), 2);
    let rep = PingReport::shared();
    c.spawn(
        0,
        Box::new(Pinger::new(EthernetCluster::ip_of(1), 64, scale.ping_count, 1, rep.clone())),
        1,
    );
    assert!(
        c.run_parallel(scale.deadline, cell.opt.threads),
        "cell {cell} stalled at {}",
        c.now()
    );
    let elapsed = c.now();
    let (replies, rtt) = {
        let r = rep.lock();
        assert_eq!(r.replies as u16, scale.ping_count, "cell {cell} lost pings");
        (r.replies, r.rtts.mean().expect("recorded"))
    };
    sink.value("rtt_ns", rtt.as_ns_f64());
    sink.absorb("sim", &c);
    CellRun {
        elapsed,
        requests: replies,
        request_unit: "ping_replies",
        perf: replies as f64 / elapsed.as_secs_f64().max(1e-12),
        perf_unit: "replies_per_sec",
        energy: mcn_energy::cluster_energy(&power(), &c, elapsed),
    }
}

#[allow(clippy::too_many_arguments)]
fn mpi_single_cell(
    cell: &Cell,
    scale: &Scale,
    seed: u64,
    spec: WorkloadSpec,
    n_dimms: usize,
    host_ranks: usize,
    per_dimm: usize,
    cfg: &SystemConfig,
    sink: &mut MetricSink,
) -> CellRun {
    let mcn = McnConfig::level(cell.opt.level);
    let plan = match cell.fault {
        FaultAxis::Faults => sweep_fault_plan(seed, mcn),
        _ => FaultPlan::new(seed),
    };
    let mut sys = McnSystem::with_faults(cfg, n_dimms, mcn, &plan);
    let report = spawn_on_mcn(&mut sys, spec, host_ranks, per_dimm, seed);
    assert!(sys.run_until_procs_done(scale.deadline), "cell {cell} stalled at {}", sys.now());
    let elapsed = sys.now();
    {
        let r = report.lock();
        assert!(r.verified, "cell {cell}: numerical verification failed");
    }
    let dram_bytes: u64 = sys.host.mem.total_bytes()
        + (0..n_dimms).map(|d| sys.dimm(d).node.mem.total_bytes()).sum::<u64>();
    sink.absorb("sim", &sys);
    sink.absorb("workload", &*report.lock());
    CellRun {
        elapsed,
        requests: dram_bytes / 64,
        request_unit: "dram_bursts",
        perf: dram_bytes as f64 / elapsed.as_secs_f64().max(1e-12),
        perf_unit: "dram_bytes_per_sec",
        energy: mcn_energy::mcn_system_energy(&power(), &sys, elapsed),
    }
}

fn mpi_cluster_cell(
    scale: &Scale,
    seed: u64,
    spec: WorkloadSpec,
    nodes: usize,
    per_node: usize,
    sink: &mut MetricSink,
) -> CellRun {
    let mut c = EthernetCluster::new(&SystemConfig::default(), nodes);
    let report = spawn_on_cluster(&mut c, spec, per_node, seed);
    assert!(c.run_until_procs_done(scale.deadline), "cluster {} stalled at {}", spec.name, c.now());
    let elapsed = c.now();
    {
        let r = report.lock();
        assert!(r.verified, "cluster {}: numerical verification failed", spec.name);
    }
    let dram_bytes: u64 = (0..nodes).map(|i| c.node(i).node.mem.total_bytes()).sum();
    sink.absorb("sim", &c);
    sink.absorb("workload", &*report.lock());
    CellRun {
        elapsed,
        requests: dram_bytes / 64,
        request_unit: "dram_bursts",
        perf: dram_bytes as f64 / elapsed.as_secs_f64().max(1e-12),
        perf_unit: "dram_bytes_per_sec",
        energy: mcn_energy::cluster_energy(&power(), &c, elapsed),
    }
}

fn kv_rack_cell(cell: &Cell, scale: &Scale, sink: &mut MetricSink) -> CellRun {
    let chaos = match cell.fault {
        FaultAxis::None => None,
        FaultAxis::Outages => Some(KvRackChaos::ReplicaCrash {
            at: SimTime::from_ms(1),
            down_for: SimTime::from_ms(3),
        }),
        FaultAxis::Domains => Some(KvRackChaos::DomainCrash {
            at: SimTime::from_ms(1),
            down_for: SimTime::from_ms(3),
        }),
        FaultAxis::Faults => unreachable!("supported() rejects kv faults"),
    };
    let params = KvRackParams {
        level: cell.opt.level,
        clients_per_server: scale.kv_clients,
        reqs_per_client: scale.kv_reqs,
        slo: SimTime::from_us(200),
        seed_base: 0xBE0,
        chaos,
    };
    let (mut rack, report) = kv_rack_workload(&params);
    // The KV servers are daemons with armed timers, so the engine never
    // quiesces on its own; the serving benches' 50 ms horizon (enough
    // to drain the paper-scale fleet several times over) bounds the
    // run so rps and energy-per-request are not diluted by idle tail.
    rack.run_parallel(SimTime::from_ms(50), cell.opt.threads);
    let elapsed = rack.now();
    let (answered, issued) = {
        let rep = report.lock();
        let answered = rep.latency.count();
        assert_eq!(
            rep.completed_clients,
            2 * scale.kv_clients,
            "cell {cell}: fleet did not drain"
        );
        assert_eq!(
            rep.issued,
            answered + rep.gave_up,
            "cell {cell}: accounting identity broken — silent request loss"
        );
        if chaos.is_some() {
            assert!(rep.fault_issued > 0, "cell {cell}: chaos never engaged");
        }
        let us = |t: SimTime| t.as_ps() as f64 / 1e6;
        sink.value("kv.p50_us", us(rep.latency.percentile(50.0).unwrap_or(SimTime::ZERO)));
        sink.value("kv.p99_us", us(rep.latency.percentile(99.0).unwrap_or(SimTime::ZERO)));
        sink.value("kv.fault_availability", rep.fault_availability());
        sink.counter("kv.failovers", rep.failovers);
        sink.counter("kv.gave_up", rep.gave_up);
        (answered, rep.issued)
    };
    let _ = issued;
    sink.absorb("sim", &rack);
    sink.absorb("serve", &*report.lock());
    CellRun {
        elapsed,
        requests: answered,
        request_unit: "kv_answered",
        perf: answered as f64 / elapsed.as_secs_f64().max(1e-12),
        perf_unit: "rps",
        energy: mcn_energy::rack_energy(&power(), &rack, elapsed),
    }
}

fn kv_dc_cell(cell: &Cell, scale: &Scale, sink: &mut MetricSink) -> CellRun {
    let spine_outage = match cell.fault {
        FaultAxis::Outages => Some((SimTime::from_ms(2), SimTime::from_ms(2))),
        _ => None,
    };
    let params = KvDcParams {
        level: cell.opt.level,
        clients_per_fleet: scale.kv_clients,
        reqs_per_client: scale.kv_reqs,
        slo: SimTime::from_us(500),
        seed_base: 0xDC0,
        spine_outage,
    };
    let (mut dc, intra, cross) = kv_dc_workload(&params);
    // Same daemon-timer caveat as the rack KV cell: bound the run at
    // the datacenter bench's 80 ms horizon instead of the scale
    // deadline.
    dc.run_parallel(SimTime::from_ms(80), cell.opt.threads);
    let elapsed = dc.now();
    let mut answered = 0u64;
    for (name, report) in [("intra", &intra), ("cross", &cross)] {
        let rep = report.lock();
        let fleet_answered = rep.latency.count();
        assert_eq!(
            rep.completed_clients, scale.kv_clients,
            "cell {cell}: {name} fleet did not drain"
        );
        assert_eq!(
            rep.issued,
            fleet_answered + rep.gave_up,
            "cell {cell}: {name} accounting identity broken"
        );
        let us = |t: SimTime| t.as_ps() as f64 / 1e6;
        sink.value(
            &format!("kv.{name}.p50_us"),
            us(rep.latency.percentile(50.0).unwrap_or(SimTime::ZERO)),
        );
        sink.value(
            &format!("kv.{name}.p99_us"),
            us(rep.latency.percentile(99.0).unwrap_or(SimTime::ZERO)),
        );
        answered += fleet_answered;
    }
    sink.absorb("sim", &dc);
    sink.absorb("serve.intra", &*intra.lock());
    sink.absorb("serve.cross", &*cross.lock());
    CellRun {
        elapsed,
        requests: answered,
        request_unit: "kv_answered",
        perf: answered as f64 / elapsed.as_secs_f64().max(1e-12),
        perf_unit: "rps",
        energy: mcn_energy::datacenter_energy(&power(), &dc, elapsed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::OptFlags;

    fn cell(workload: Workload, topology: Topology, fault: FaultAxis, level: u32) -> Cell {
        Cell { workload, topology, fault, opt: OptFlags { level, threads: 1 } }
    }

    #[test]
    fn iperf_single_cell_is_deterministic() {
        let c = cell(Workload::Iperf, Topology::Single, FaultAxis::None, 3);
        let scale = Scale::smoke();
        let a = run_cell(&c, &scale, 42).to_json();
        let b = run_cell(&c, &scale, 42).to_json();
        assert_eq!(a, b);
        let other = run_cell(&c, &scale, 43).to_json();
        // The seed reaches the snapshot (meta.seed) even where the
        // fault-free scenario itself ignores it.
        assert_ne!(a, other);
    }

    #[test]
    fn cell_snapshot_carries_the_contracted_layout() {
        let c = cell(Workload::Iperf, Topology::Single, FaultAxis::None, 3);
        let snap = run_cell(&c, &Scale::smoke(), 7);
        for path in [
            "meta.workload",
            "meta.topology",
            "meta.fault",
            "meta.opt",
            "meta.scale",
            "meta.seed",
            "meta.request_unit",
            "meta.perf_unit",
            "elapsed_ps",
            "requests",
            "perf",
            "energy.total_j",
            "energy.energy_per_request_nj",
            "energy.perf_per_watt",
            "energy.avg_power_w",
        ] {
            assert!(snap.get(path).is_some(), "missing {path}");
        }
        assert!(snap.get_u64("requests") > 0);
        assert!(snap.iter().any(|(p, _)| p.starts_with("sim.")), "sim tree missing");
    }

    #[test]
    fn faulted_iperf_still_delivers_every_byte() {
        let c = cell(Workload::Iperf, Topology::Single, FaultAxis::Faults, 1);
        let snap = run_cell(&c, &Scale::smoke(), 0xFA57);
        // The byte-completeness assert inside the arm already ran; the
        // injected faults must also be visible in the counters.
        let injected: u64 = snap
            .iter()
            .filter(|(p, _)| p.starts_with("sim.") && p.contains("fault") && p.ends_with("injected"))
            .map(|(p, _)| snap.get_u64(p))
            .sum();
        let _ = injected; // rate faults at smoke volume may round to zero
        assert!(snap.get_u64("requests") > 0);
    }
}
