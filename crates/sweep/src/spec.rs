//! The declarative side of the sweep: axes, cells, seeds and hashes.
//!
//! A sweep is a list of [`Cell`]s — one independent simulation each —
//! expanded from four axes (workload × topology × fault plan ×
//! optimisation flags) plus any number of explicit extra cells the
//! presets append for the figure families that need parameters beyond
//! the axes (Fig. 9's DIMM counts, Fig. 10's cluster sizes, Fig. 11's
//! scale-up cores).
//!
//! Everything here is pure data: deterministic ids, seeds derived from
//! the sweep seed by FNV-1a over the cell id, and a config hash that
//! keys the on-disk done-markers so a resumed sweep only trusts markers
//! produced by the same (cell, seed, scale, format) tuple.

use std::fmt;

use mcn_sim::SimTime;

/// Bumped whenever the per-cell metric layout changes incompatibly;
/// part of every config hash, so old done-markers are re-run rather
/// than merged.
pub const FORMAT_VERSION: u32 = 1;

/// FNV-1a over `bytes`, folded into `state` (used for per-cell seeds
/// and config hashes; stable across platforms and releases).
pub fn fnv1a64(state: u64, bytes: &[u8]) -> u64 {
    let mut h = if state == 0 { 0xcbf2_9ce4_8422_2325 } else { state };
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The workload axis. The first four variants are the sweepable axis
/// values; the parameterised variants are appended by the presets for
/// the figure families (they never appear in a parsed axis list).
#[derive(Debug, Clone, PartialEq)]
pub enum Workload {
    /// Fig. 8(a): one iperf server, four client streams.
    Iperf,
    /// Fig. 8(b)/(c): ping RTT, host↔DIMM or DIMM↔DIMM.
    Ping {
        /// DIMM↔DIMM through the host forwarding engine (Fig. 8c)
        /// instead of host↔DIMM (Fig. 8b).
        dimm_to_dimm: bool,
    },
    /// A communication-dominated MPI all-reduce microbenchmark.
    AllReduce,
    /// Replicated memcached-style KV serving with a resilient open-loop
    /// client fleet.
    Kv,
    /// Fig. 9/10: a named [`mcn_mpi::WorkloadSpec`] on an MCN server
    /// with `dimms` DIMMs (`dimms == 0` is the conventional-server
    /// baseline that runs every rank on the host).
    Npb {
        /// Workload name (`WorkloadSpec::by_name`).
        name: String,
        /// MCN DIMM count; 0 = conventional baseline.
        dimms: usize,
        /// Ranks placed on the host.
        host_ranks: usize,
        /// Ranks placed on each DIMM.
        per_dimm: usize,
    },
    /// Fig. 10 baseline: the same named workload on an `nodes`-node
    /// 10GbE cluster with `per_node` ranks per node.
    NpbCluster {
        /// Workload name.
        name: String,
        /// Cluster size.
        nodes: usize,
        /// Ranks per node.
        per_node: usize,
    },
    /// Fig. 11 baseline: the named workload on a scale-up host with
    /// `cores` cores and `ranks` ranks over loopback.
    NpbScaleUp {
        /// Workload name.
        name: String,
        /// Host core count.
        cores: usize,
        /// Rank count.
        ranks: usize,
    },
}

impl Workload {
    /// Dot-free id token (hyphen-separated tokens form the cell id).
    pub fn token(&self) -> String {
        match self {
            Workload::Iperf => "iperf".into(),
            Workload::Ping { dimm_to_dimm: false } => "ping".into(),
            Workload::Ping { dimm_to_dimm: true } => "pingmm".into(),
            Workload::AllReduce => "allreduce".into(),
            Workload::Kv => "kv".into(),
            Workload::Npb { name, dimms: 0, .. } => format!("conv_{name}"),
            Workload::Npb { name, dimms, .. } => format!("npb_{name}_d{dimms}"),
            Workload::NpbCluster { name, nodes, .. } => format!("clus_{name}_n{nodes}"),
            Workload::NpbScaleUp { name, cores, .. } => format!("scaleup_{name}_c{cores}"),
        }
    }
}

/// The topology axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// One MCN-enabled server ([`mcn::McnSystem`]); serial engine only.
    Single,
    /// A ToR-switched rack of MCN servers ([`mcn::McnRack`]).
    Rack,
    /// The 10GbE scale-out baseline ([`mcn::EthernetCluster`]).
    Cluster,
    /// The multi-rack Clos datacenter ([`mcn::Datacenter`]).
    Dc,
}

impl Topology {
    /// Id token.
    pub fn token(self) -> &'static str {
        match self {
            Topology::Single => "single",
            Topology::Rack => "rack",
            Topology::Cluster => "cluster",
            Topology::Dc => "dc",
        }
    }
}

/// The fault-plan axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAxis {
    /// Clean run.
    None,
    /// Seeded rate faults on the data path (frame drops, ALERT_N
    /// losses, DMA stalls; bit flips only while checksums are verified,
    /// i.e. below `mcn2` — flipping bytes the stack is told not to
    /// check would corrupt payloads silently).
    Faults,
    /// A hard outage mid-run: a ToR switch partition (rack iperf), a
    /// replica DIMM crash (rack KV) or a spine loss (datacenter KV),
    /// healing before the deadline.
    Outages,
    /// A correlated failure domain (a whole DIMM riser) dying at once,
    /// exercising failover, hedging and the retry/breaker machinery.
    Domains,
}

impl FaultAxis {
    /// Id token.
    pub fn token(self) -> &'static str {
        match self {
            FaultAxis::None => "none",
            FaultAxis::Faults => "faults",
            FaultAxis::Outages => "outages",
            FaultAxis::Domains => "domains",
        }
    }
}

/// The optimisation axis: a cumulative Table I level (`mcn0`..`mcn5` —
/// `mcn2` adds checksum bypass, `mcn3` the 9K MTU, `mcn4` TSO, `mcn5`
/// MCN-DMA) plus the engine worker-thread count. Results are
/// byte-identical across thread counts by construction; the axis exists
/// so sweeps can prove it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptFlags {
    /// Cumulative optimisation level, 0..=5 ([`mcn::McnConfig::level`]).
    pub level: u32,
    /// Parallel-engine worker threads (rack/cluster/datacenter only).
    pub threads: usize,
}

impl OptFlags {
    /// Id token, e.g. `mcn3_t2`.
    pub fn token(self) -> String {
        format!("mcn{}_t{}", self.level, self.threads)
    }
}

/// Workload sizing, so CI smoke sweeps finish in seconds while the
/// paper preset runs the full figure volumes. Every field is folded
/// into the config hash: markers from a different scale never merge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scale {
    /// Name rendered into cell metadata (`smoke` or `paper`).
    pub name: &'static str,
    /// iperf bytes per client stream.
    pub iperf_bytes: u64,
    /// Ping request count.
    pub ping_count: u16,
    /// KV clients per server (rack) or per fleet (datacenter).
    pub kv_clients: u64,
    /// KV requests per client.
    pub kv_reqs: u64,
    /// Iterations of the all-reduce microbenchmark.
    pub allreduce_iters: u32,
    /// Simulated-time cap for every cell (engines finish earlier when
    /// their processes drain; this only bounds stalls).
    pub deadline: SimTime,
}

impl Scale {
    /// CI-sized: every supported cell finishes in well under a second.
    pub fn smoke() -> Scale {
        Scale {
            name: "smoke",
            iperf_bytes: 256 << 10,
            ping_count: 5,
            kv_clients: 2,
            kv_reqs: 40,
            allreduce_iters: 2,
            deadline: SimTime::from_secs(10),
        }
    }

    /// Paper-sized: the volumes the figure binaries use.
    pub fn paper() -> Scale {
        Scale {
            name: "paper",
            iperf_bytes: 6 << 20,
            ping_count: 20,
            kv_clients: 4,
            kv_reqs: 250,
            allreduce_iters: 4,
            deadline: SimTime::from_secs(30),
        }
    }

    /// Stable rendering folded into every config hash.
    pub fn fingerprint(&self) -> String {
        format!(
            "{};ib{};pc{};kc{};kr{};ai{};dl{}",
            self.name,
            self.iperf_bytes,
            self.ping_count,
            self.kv_clients,
            self.kv_reqs,
            self.allreduce_iters,
            self.deadline.as_ps()
        )
    }
}

/// One point of the sweep: a workload on a topology under a fault plan
/// at an optimisation setting.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// Workload axis value.
    pub workload: Workload,
    /// Topology axis value.
    pub topology: Topology,
    /// Fault-plan axis value.
    pub fault: FaultAxis,
    /// Optimisation axis value.
    pub opt: OptFlags,
}

impl Cell {
    /// The cell id: `{workload}-{topology}-{fault}-{opt}`, dot-free so
    /// it can serve as one metrics-path segment (`cells.<id>.…`).
    pub fn id(&self) -> String {
        format!(
            "{}-{}-{}-{}",
            self.workload.token(),
            self.topology.token(),
            self.fault.token(),
            self.opt.token()
        )
    }

    /// The cell's private seed, derived from the sweep seed and the
    /// cell id (FNV-1a), so reordering or filtering cells never changes
    /// any other cell's randomness.
    pub fn seed(&self, sweep_seed: u64) -> u64 {
        fnv1a64(sweep_seed ^ 0x5eed, self.id().as_bytes())
    }

    /// The config hash keying this cell's done-marker: id, per-cell
    /// seed, scale fingerprint and [`FORMAT_VERSION`]. A marker with a
    /// stale hash is simply a different file name, so the cell re-runs.
    pub fn config_hash(&self, sweep_seed: u64, scale: &Scale) -> u64 {
        let text = format!(
            "v{};{};s{:016x};{}",
            FORMAT_VERSION,
            self.id(),
            self.seed(sweep_seed),
            scale.fingerprint()
        );
        fnv1a64(0, text.as_bytes())
    }

    /// Whether this axis combination has a scenario, and why not if
    /// not. Unsupported combinations are recorded (never silently
    /// dropped) by the runner.
    pub fn supported(&self) -> Result<(), &'static str> {
        use FaultAxis as F;
        use Topology as T;
        use Workload as W;
        if self.topology == T::Cluster && self.opt.level != 0 {
            return Err("the 10GbE baseline has no MCN optimisation levels (use mcn0)");
        }
        if self.topology == T::Single && self.opt.threads > 1 {
            return Err("a single system runs on the serial engine (threads > 1 needs rack/cluster/dc)");
        }
        let topo_ok = matches!(
            (&self.workload, self.topology),
            (W::Iperf, T::Single | T::Rack | T::Cluster)
                | (W::Ping { .. }, T::Single | T::Cluster)
                | (W::AllReduce, T::Single | T::Cluster)
                | (W::Kv, T::Rack | T::Dc)
                | (W::Npb { .. } | W::NpbScaleUp { .. }, T::Single)
                | (W::NpbCluster { .. }, T::Cluster)
        );
        if !topo_ok {
            return Err("workload has no scenario on this topology");
        }
        if matches!(self.workload, W::Ping { dimm_to_dimm: true }) && self.topology != T::Single {
            return Err("DIMM-to-DIMM ping needs the host forwarding engine (single only)");
        }
        match self.fault {
            F::None => Ok(()),
            F::Faults => match (&self.workload, self.topology) {
                (W::Iperf | W::AllReduce, T::Single) => Ok(()),
                _ => Err("rate faults are wired for single-system iperf/allreduce only"),
            },
            F::Outages => match (&self.workload, self.topology) {
                (W::Iperf, T::Rack) | (W::Kv, T::Rack | T::Dc) => Ok(()),
                _ => Err("outage scenarios exist for rack iperf and rack/dc KV only"),
            },
            F::Domains => match (&self.workload, self.topology) {
                (W::Kv, T::Rack) => Ok(()),
                _ => Err("failure-domain scenarios exist for rack KV only"),
            },
        }
    }
}

/// A whole sweep: seed, scale and the ordered cell list. The order is
/// the axis expansion order (workloads outermost, then topologies,
/// faults, optimisation settings, with extra cells appended) and is
/// also the merge order — see DESIGN.md §4g.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Sweep-level seed every per-cell seed derives from.
    pub seed: u64,
    /// Workload sizing.
    pub scale: Scale,
    /// Ordered cells (supported and unsupported alike; the runner
    /// records which is which).
    pub cells: Vec<Cell>,
}

/// Builder over the four axes; [`Axes::expand`] produces the cross
/// product in the documented order.
#[derive(Debug, Clone, Default)]
pub struct Axes {
    /// Workload axis values, outermost loop.
    pub workloads: Vec<Workload>,
    /// Topology axis values.
    pub topologies: Vec<Topology>,
    /// Fault axis values.
    pub faults: Vec<FaultAxis>,
    /// Optimisation axis values, innermost loop.
    pub opts: Vec<OptFlags>,
}

impl Axes {
    /// The cross product, workloads outermost and optimisation
    /// innermost.
    pub fn expand(&self) -> Vec<Cell> {
        let mut cells = Vec::new();
        for w in &self.workloads {
            for &t in &self.topologies {
                for &f in &self.faults {
                    for &o in &self.opts {
                        cells.push(Cell { workload: w.clone(), topology: t, fault: f, opt: o });
                    }
                }
            }
        }
        cells
    }
}

impl SweepSpec {
    /// The CI mini-sweep: 2 workloads × 2 topologies × 2 fault plans at
    /// one optimisation setting, smoke scale.
    pub fn smoke() -> SweepSpec {
        let axes = Axes {
            workloads: vec![Workload::Iperf, Workload::Kv],
            topologies: vec![Topology::Single, Topology::Rack],
            faults: vec![FaultAxis::None, FaultAxis::Domains],
            opts: vec![OptFlags { level: 3, threads: 1 }],
        };
        SweepSpec { seed: 0x5111, scale: Scale::smoke(), cells: axes.expand() }
    }

    /// The paper preset: Fig. 8(a/b/c) and Table III's axis sweeps, the
    /// Fig. 9/10/11 workload families, and the serving and datacenter
    /// scenarios, at paper scale.
    pub fn paper() -> SweepSpec {
        let mut cells = Vec::new();
        let t1 = |level| OptFlags { level, threads: 1 };
        // Fig. 8(a): iperf at every optimisation level, plus the 10GbE
        // baseline. Fig. 8(b)/(c): ping at mcn0 and mcn5 ends.
        for level in 0..=5 {
            cells.push(Cell {
                workload: Workload::Iperf,
                topology: Topology::Single,
                fault: FaultAxis::None,
                opt: t1(level),
            });
        }
        cells.push(Cell {
            workload: Workload::Iperf,
            topology: Topology::Cluster,
            fault: FaultAxis::None,
            opt: t1(0),
        });
        for dimm_to_dimm in [false, true] {
            for level in [0, 5] {
                cells.push(Cell {
                    workload: Workload::Ping { dimm_to_dimm },
                    topology: Topology::Single,
                    fault: FaultAxis::None,
                    opt: t1(level),
                });
            }
        }
        cells.push(Cell {
            workload: Workload::Ping { dimm_to_dimm: false },
            topology: Topology::Cluster,
            fault: FaultAxis::None,
            opt: t1(0),
        });
        // Resilience column: iperf under rate faults and a rack switch
        // partition; the serving tier clean, under a replica crash and
        // under the riser-domain breaker drill; the datacenter clean
        // and under a spine loss. Rack cells run at 1 and 2 workers —
        // the byte-identity axis.
        for fault in [FaultAxis::None, FaultAxis::Faults] {
            cells.push(Cell {
                workload: Workload::AllReduce,
                topology: Topology::Single,
                fault,
                opt: t1(1),
            });
        }
        // (iperf's clean level-1 baseline is already in the Fig. 8(a)
        // column above, so only the faulted variant is added here.)
        cells.push(Cell {
            workload: Workload::Iperf,
            topology: Topology::Single,
            fault: FaultAxis::Faults,
            opt: t1(1),
        });
        for threads in [1, 2] {
            for fault in [FaultAxis::None, FaultAxis::Outages] {
                cells.push(Cell {
                    workload: Workload::Iperf,
                    topology: Topology::Rack,
                    fault,
                    opt: OptFlags { level: 3, threads },
                });
            }
            for fault in [FaultAxis::None, FaultAxis::Outages, FaultAxis::Domains] {
                cells.push(Cell {
                    workload: Workload::Kv,
                    topology: Topology::Rack,
                    fault,
                    opt: OptFlags { level: 3, threads },
                });
            }
            for fault in [FaultAxis::None, FaultAxis::Outages] {
                cells.push(Cell {
                    workload: Workload::Kv,
                    topology: Topology::Dc,
                    fault,
                    opt: OptFlags { level: 3, threads },
                });
            }
        }
        // Fig. 9: every workload of the mix on 2/4/6/8 DIMMs at mcn3
        // (8 host ranks + 3 per DIMM) against the conventional server.
        let mix: Vec<&str> = mcn_mpi::WorkloadSpec::all().iter().map(|s| s.name).collect();
        for name in &mix {
            cells.push(Cell {
                workload: Workload::Npb {
                    name: (*name).into(),
                    dimms: 0,
                    host_ranks: 8,
                    per_dimm: 0,
                },
                topology: Topology::Single,
                fault: FaultAxis::None,
                opt: t1(0),
            });
            for dimms in [2usize, 4, 6, 8] {
                cells.push(Cell {
                    workload: Workload::Npb {
                        name: (*name).into(),
                        dimms,
                        host_ranks: 8,
                        per_dimm: 3,
                    },
                    topology: Topology::Single,
                    fault: FaultAxis::None,
                    opt: t1(3),
                });
            }
        }
        // Fig. 10: MCN servers against equal-core 10GbE clusters
        // (cluster of n nodes ≈ server with n DIMMs at 4 ranks each).
        for (nodes, per_node) in [(2usize, 2usize), (4, 3), (6, 4), (8, 5)] {
            for name in ["cg", "mg", "sort"] {
                cells.push(Cell {
                    workload: Workload::NpbCluster {
                        name: name.into(),
                        nodes,
                        per_node,
                    },
                    topology: Topology::Cluster,
                    fault: FaultAxis::None,
                    opt: t1(0),
                });
            }
        }
        // Fig. 11: scale-up hosts vs MCN growth from a 4-core host.
        for name in ["ep", "cg", "mg"] {
            for cores in [8usize, 12, 16] {
                cells.push(Cell {
                    workload: Workload::NpbScaleUp {
                        name: name.into(),
                        cores,
                        ranks: cores,
                    },
                    topology: Topology::Single,
                    fault: FaultAxis::None,
                    opt: t1(0),
                });
            }
        }
        SweepSpec { seed: 0x9a9e12, scale: Scale::paper(), cells }
    }

    /// Parses the key=value sweep description format:
    ///
    /// ```text
    /// # comment
    /// seed = 7
    /// scale = smoke            # or: paper
    /// workloads = iperf, kv    # iperf ping pingmm allreduce kv
    /// topologies = single, rack  # single rack cluster dc
    /// faults = none, domains   # none faults outages domains
    /// levels = 0, 3            # Table I cumulative levels 0..=5
    /// threads = 1, 2           # engine workers (opt axis = levels × threads)
    /// ```
    ///
    /// Unknown keys, values and duplicate keys are errors; every axis
    /// key is required except `seed` (default 1) and `scale` (default
    /// smoke).
    pub fn parse(text: &str) -> Result<SweepSpec, String> {
        let mut seed = 1u64;
        let mut scale = Scale::smoke();
        let mut axes = Axes::default();
        let mut levels: Vec<u32> = Vec::new();
        let mut threads: Vec<usize> = Vec::new();
        let mut seen: Vec<String> = Vec::new();
        for (ln, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let err = |m: String| format!("line {}: {m}", ln + 1);
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| err(format!("expected `key = value`, got {line:?}")))?;
            let (key, value) = (key.trim(), value.trim());
            if seen.iter().any(|k| k == key) {
                return Err(err(format!("duplicate key {key:?}")));
            }
            seen.push(key.to_string());
            let list = || value.split(',').map(str::trim).filter(|v| !v.is_empty());
            match key {
                "seed" => {
                    seed = value.parse().map_err(|_| err(format!("bad seed {value:?}")))?;
                }
                "scale" => {
                    scale = match value {
                        "smoke" => Scale::smoke(),
                        "paper" => Scale::paper(),
                        other => return Err(err(format!("unknown scale {other:?}"))),
                    };
                }
                "workloads" => {
                    for v in list() {
                        axes.workloads.push(match v {
                            "iperf" => Workload::Iperf,
                            "ping" => Workload::Ping { dimm_to_dimm: false },
                            "pingmm" => Workload::Ping { dimm_to_dimm: true },
                            "allreduce" => Workload::AllReduce,
                            "kv" => Workload::Kv,
                            other => return Err(err(format!("unknown workload {other:?}"))),
                        });
                    }
                }
                "topologies" => {
                    for v in list() {
                        axes.topologies.push(match v {
                            "single" => Topology::Single,
                            "rack" => Topology::Rack,
                            "cluster" => Topology::Cluster,
                            "dc" => Topology::Dc,
                            other => return Err(err(format!("unknown topology {other:?}"))),
                        });
                    }
                }
                "faults" => {
                    for v in list() {
                        axes.faults.push(match v {
                            "none" => FaultAxis::None,
                            "faults" => FaultAxis::Faults,
                            "outages" => FaultAxis::Outages,
                            "domains" => FaultAxis::Domains,
                            other => return Err(err(format!("unknown fault plan {other:?}"))),
                        });
                    }
                }
                "levels" => {
                    for v in list() {
                        let n: u32 =
                            v.parse().map_err(|_| err(format!("bad level {v:?}")))?;
                        if n > 5 {
                            return Err(err(format!("level {n} out of range (Table I is 0..=5)")));
                        }
                        levels.push(n);
                    }
                }
                "threads" => {
                    for v in list() {
                        let n: usize =
                            v.parse().map_err(|_| err(format!("bad thread count {v:?}")))?;
                        if n == 0 {
                            return Err(err("thread count must be >= 1".into()));
                        }
                        threads.push(n);
                    }
                }
                other => return Err(err(format!("unknown key {other:?}"))),
            }
        }
        for (name, empty) in [
            ("workloads", axes.workloads.is_empty()),
            ("topologies", axes.topologies.is_empty()),
            ("faults", axes.faults.is_empty()),
            ("levels", levels.is_empty()),
            ("threads", threads.is_empty()),
        ] {
            if empty {
                return Err(format!("missing required axis {name:?}"));
            }
        }
        for &level in &levels {
            for &t in &threads {
                axes.opts.push(OptFlags { level, threads: t });
            }
        }
        Ok(SweepSpec { seed, scale, cells: axes.expand() })
    }
}

impl fmt::Display for Cell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_dot_free_and_unique() {
        let spec = SweepSpec::paper();
        let mut ids: Vec<String> = spec.cells.iter().map(Cell::id).collect();
        assert!(ids.iter().all(|i| !i.contains('.')), "dots would split metric paths");
        let n = ids.len();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), n, "paper preset has duplicate cell ids");
    }

    #[test]
    fn seeds_differ_per_cell_and_follow_sweep_seed() {
        let spec = SweepSpec::smoke();
        let a = spec.cells[0].seed(spec.seed);
        let b = spec.cells[1].seed(spec.seed);
        assert_ne!(a, b);
        assert_ne!(a, spec.cells[0].seed(spec.seed + 1));
        assert_eq!(a, spec.cells[0].seed(spec.seed), "seed derivation is pure");
    }

    #[test]
    fn config_hash_tracks_scale_and_seed() {
        let cell = Cell {
            workload: Workload::Iperf,
            topology: Topology::Single,
            fault: FaultAxis::None,
            opt: OptFlags { level: 3, threads: 1 },
        };
        let h = cell.config_hash(7, &Scale::smoke());
        assert_eq!(h, cell.config_hash(7, &Scale::smoke()));
        assert_ne!(h, cell.config_hash(8, &Scale::smoke()));
        assert_ne!(h, cell.config_hash(7, &Scale::paper()));
    }

    #[test]
    fn parser_round_trip_and_errors() {
        let spec = SweepSpec::parse(
            "# mini\nseed = 9\nscale = smoke\nworkloads = iperf, kv\n\
             topologies = single, rack\nfaults = none, domains\nlevels = 3\nthreads = 1\n",
        )
        .expect("valid spec");
        assert_eq!(spec.seed, 9);
        assert_eq!(spec.cells.len(), 8);
        // Expansion order: workloads outermost, faults before opts.
        assert_eq!(spec.cells[0].id(), "iperf-single-none-mcn3_t1");
        assert_eq!(spec.cells[1].id(), "iperf-single-domains-mcn3_t1");
        assert_eq!(spec.cells[4].id(), "kv-single-none-mcn3_t1");
        for bad in [
            "workloads = iperf",                       // missing axes
            "bogus = 1",                               // unknown key
            "workloads = warp\ntopologies = single\nfaults = none\nlevels = 0\nthreads = 1",
            "seed = x\nworkloads = iperf\ntopologies = single\nfaults = none\nlevels = 0\nthreads = 1",
            "levels = 9\nworkloads = iperf\ntopologies = single\nfaults = none\nthreads = 1",
            "seed = 1\nseed = 2\nworkloads = iperf\ntopologies = single\nfaults = none\nlevels = 0\nthreads = 1",
        ] {
            assert!(SweepSpec::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn support_matrix_spot_checks() {
        let mk = |workload, topology, fault, level, threads| Cell {
            workload,
            topology,
            fault,
            opt: OptFlags { level, threads },
        };
        assert!(mk(Workload::Iperf, Topology::Single, FaultAxis::None, 5, 1).supported().is_ok());
        assert!(mk(Workload::Kv, Topology::Rack, FaultAxis::Domains, 3, 2).supported().is_ok());
        assert!(mk(Workload::Kv, Topology::Dc, FaultAxis::Outages, 3, 2).supported().is_ok());
        // And the documented holes.
        assert!(mk(Workload::Kv, Topology::Single, FaultAxis::None, 3, 1).supported().is_err());
        assert!(mk(Workload::Iperf, Topology::Single, FaultAxis::None, 3, 2).supported().is_err());
        assert!(mk(Workload::Iperf, Topology::Cluster, FaultAxis::None, 3, 1).supported().is_err());
        assert!(mk(Workload::Kv, Topology::Dc, FaultAxis::Domains, 3, 1).supported().is_err());
    }
}
