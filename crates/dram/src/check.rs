//! Independent JEDEC timing validation of command traces.
//!
//! The scheduler in [`crate::Channel`] *derives* command times from the
//! timing parameters; this module *re-checks* an emitted trace against the
//! same parameters with a completely separate implementation, so a bug in
//! the scheduler's bookkeeping cannot hide behind the same bug in the test.

use mcn_sim::SimTime;

use crate::DramConfig;

/// A DRAM command as it appears on the command bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmd {
    /// Activate `row` in `bank`.
    Act {
        /// Flat bank index within the channel.
        bank: usize,
        /// Row opened.
        row: u64,
    },
    /// Precharge `bank`.
    Pre {
        /// Flat bank index within the channel.
        bank: usize,
    },
    /// Column read from `bank` (open row must equal `row`).
    Rd {
        /// Flat bank index within the channel.
        bank: usize,
        /// Row addressed.
        row: u64,
    },
    /// Column write to `bank`.
    Wr {
        /// Flat bank index within the channel.
        bank: usize,
        /// Row addressed.
        row: u64,
    },
    /// All-bank refresh.
    Ref,
}

/// One trace record: a command and its issue time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// Command-bus issue time.
    pub at: SimTime,
    /// The command.
    pub cmd: Cmd,
}

/// A detected constraint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Index of the offending entry in the trace.
    pub index: usize,
    /// Human-readable description of the violated rule.
    pub rule: String,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum BankSt {
    Idle,
    Open(u64),
}

/// Replays a command trace and checks every JEDEC constraint the scheduler
/// is supposed to honour.
#[derive(Debug)]
pub struct TimingChecker {
    cfg: DramConfig,
}

impl TimingChecker {
    /// Creates a checker for the given configuration.
    pub fn new(cfg: DramConfig) -> Self {
        TimingChecker { cfg }
    }

    fn coords(&self, bank: usize) -> (usize, usize) {
        // flat = (rank * BG + bg) * banks_per_group + bank_in_group
        let per_rank = (self.cfg.bank_groups * self.cfg.banks_per_group) as usize;
        let rank = bank / per_rank;
        let bg = (bank % per_rank) / self.cfg.banks_per_group as usize;
        (rank, bg)
    }

    /// Validates `trace`; returns all violations found (empty = clean).
    pub fn verify(&self, trace: &[TraceEntry]) -> Vec<Violation> {
        let c = &self.cfg;
        let cy = |n: u64| c.cycles(n);
        let nbanks = c.banks_per_channel() as usize;
        let nranks = c.ranks as usize;
        let nbg = (c.ranks * c.bank_groups) as usize;

        let mut v = Vec::new();
        let mut bad = |i: usize, rule: String| v.push(Violation { index: i, rule });

        let mut state = vec![BankSt::Idle; nbanks];
        let mut last_act = vec![Option::<SimTime>::None; nbanks];
        let mut last_pre = vec![Option::<SimTime>::None; nbanks];
        let mut last_rd = vec![Option::<SimTime>::None; nbanks];
        let mut last_wr_end = vec![Option::<SimTime>::None; nbanks];
        let mut rank_acts: Vec<Vec<SimTime>> = vec![Vec::new(); nranks];
        let mut bg_last_act = vec![Option::<SimTime>::None; nbg];
        let mut rank_last_act = vec![Option::<SimTime>::None; nranks];
        let mut bg_last_cas = vec![Option::<SimTime>::None; nbg];
        let mut any_last_cas: Option<SimTime> = None;
        let mut bg_wr_end = vec![Option::<SimTime>::None; nbg];
        let mut rank_wr_end = vec![Option::<SimTime>::None; nranks];
        let mut last_ref: Option<SimTime> = None;
        let mut data_busy_until = SimTime::ZERO;
        let mut prev_cmd_at: Option<SimTime> = None;

        let t_burst = c.t_burst();

        for (i, e) in trace.iter().enumerate() {
            let t = e.at;
            if let Some(p) = prev_cmd_at {
                if t < p + cy(1) {
                    bad(i, format!("command bus conflict: {t} < prev {p} + tCK"));
                }
            }
            prev_cmd_at = Some(t);

            match e.cmd {
                Cmd::Act { bank, row } => {
                    let (rank, _) = self.coords(bank);
                    let bg = self.bg_index(bank);
                    if state[bank] != BankSt::Idle {
                        bad(i, format!("ACT to non-idle bank {bank}"));
                    }
                    if let Some(a) = last_act[bank] {
                        if t < a + cy(c.t_rc) {
                            bad(i, format!("tRC: ACT@{t} after ACT@{a} bank {bank}"));
                        }
                    }
                    if let Some(p) = last_pre[bank] {
                        if t < p + cy(c.t_rp) {
                            bad(i, format!("tRP: ACT@{t} after PRE@{p} bank {bank}"));
                        }
                    }
                    if let Some(a) = bg_last_act[bg] {
                        if t < a + cy(c.t_rrd_l) {
                            bad(i, format!("tRRD_L: ACT@{t} after ACT@{a} bg {bg}"));
                        }
                    }
                    if let Some(a) = rank_last_act[rank] {
                        if t < a + cy(c.t_rrd_s) {
                            bad(i, format!("tRRD_S: ACT@{t} after ACT@{a} rank {rank}"));
                        }
                    }
                    if let Some(r) = last_ref {
                        if t < r + cy(c.t_rfc) {
                            bad(i, format!("tRFC: ACT@{t} after REF@{r}"));
                        }
                    }
                    let acts = &mut rank_acts[rank];
                    acts.push(t);
                    let faw = cy(c.t_faw);
                    acts.retain(|&a| a + faw > t);
                    if acts.len() > 4 {
                        bad(i, format!("tFAW: {} ACTs within window at {t}", acts.len()));
                    }
                    state[bank] = BankSt::Open(row);
                    last_act[bank] = Some(t);
                    bg_last_act[bg] = Some(t);
                    rank_last_act[rank] = Some(t);
                }
                Cmd::Pre { bank } => {
                    match state[bank] {
                        BankSt::Idle => bad(i, format!("PRE to idle bank {bank}")),
                        BankSt::Open(_) => {}
                    }
                    if let Some(a) = last_act[bank] {
                        if t < a + cy(c.t_ras) {
                            bad(i, format!("tRAS: PRE@{t} after ACT@{a} bank {bank}"));
                        }
                    }
                    if let Some(r) = last_rd[bank] {
                        if t < r + cy(c.t_rtp) {
                            bad(i, format!("tRTP: PRE@{t} after RD@{r} bank {bank}"));
                        }
                    }
                    if let Some(w) = last_wr_end[bank] {
                        if t < w + cy(c.t_wr) {
                            bad(i, format!("tWR: PRE@{t} after WR-data-end@{w} bank {bank}"));
                        }
                    }
                    state[bank] = BankSt::Idle;
                    last_pre[bank] = Some(t);
                }
                Cmd::Rd { bank, row } | Cmd::Wr { bank, row } => {
                    let is_read = matches!(e.cmd, Cmd::Rd { .. });
                    let (rank, _) = self.coords(bank);
                    let bg = self.bg_index(bank);
                    match state[bank] {
                        BankSt::Open(open) if open == row => {}
                        BankSt::Open(open) => {
                            bad(i, format!("CAS row {row} but bank {bank} has {open} open"))
                        }
                        BankSt::Idle => bad(i, format!("CAS to idle bank {bank}")),
                    }
                    if let Some(a) = last_act[bank] {
                        if t < a + cy(c.t_rcd) {
                            bad(i, format!("tRCD: CAS@{t} after ACT@{a} bank {bank}"));
                        }
                    }
                    if let Some(x) = bg_last_cas[bg] {
                        if t < x + cy(c.t_ccd_l) {
                            bad(i, format!("tCCD_L: CAS@{t} after CAS@{x} bg {bg}"));
                        }
                    }
                    if let Some(x) = any_last_cas {
                        if t < x + cy(c.t_ccd_s) {
                            bad(i, format!("tCCD_S: CAS@{t} after CAS@{x}"));
                        }
                    }
                    if is_read {
                        if let Some(w) = bg_wr_end[bg] {
                            if t < w + cy(c.t_wtr_l) {
                                bad(i, format!("tWTR_L: RD@{t} after WR-end@{w} bg {bg}"));
                            }
                        }
                        if let Some(w) = rank_wr_end[rank] {
                            if t < w + cy(c.t_wtr_s) {
                                bad(i, format!("tWTR_S: RD@{t} after WR-end@{w} rank {rank}"));
                            }
                        }
                    }
                    let lat = if is_read { cy(c.t_cl) } else { cy(c.t_cwl) };
                    let data_start = t + lat;
                    if data_start < data_busy_until {
                        bad(
                            i,
                            format!(
                                "data bus overlap: data@{data_start} before free@{data_busy_until}"
                            ),
                        );
                    }
                    data_busy_until = data_busy_until.max(data_start + t_burst);
                    bg_last_cas[bg] = Some(t);
                    any_last_cas = Some(t);
                    if is_read {
                        last_rd[bank] = Some(t);
                    } else {
                        let end = data_start + t_burst;
                        last_wr_end[bank] = Some(end);
                        bg_wr_end[bg] = Some(end);
                        rank_wr_end[rank] = Some(end);
                    }
                }
                Cmd::Ref => {
                    for (b, s) in state.iter().enumerate() {
                        if *s != BankSt::Idle {
                            bad(i, format!("REF with bank {b} open"));
                        }
                    }
                    for (b, p) in last_pre.iter().enumerate() {
                        if let Some(p) = p {
                            if t < *p + cy(c.t_rp) {
                                bad(i, format!("REF@{t} before tRP after PRE@{p} bank {b}"));
                            }
                        }
                    }
                    if let Some(r) = last_ref {
                        if t < r + cy(c.t_rfc) {
                            bad(i, format!("REF@{t} within tRFC of REF@{r}"));
                        }
                    }
                    last_ref = Some(t);
                }
            }
        }
        v
    }

    fn bg_index(&self, bank: usize) -> usize {
        let per_rank = (self.cfg.bank_groups * self.cfg.banks_per_group) as usize;
        let rank = bank / per_rank;
        let bg = (bank % per_rank) / self.cfg.banks_per_group as usize;
        rank * self.cfg.bank_groups as usize + bg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Channel, DramConfig, MemKind, MemRequest, LINE_BYTES};
    use mcn_sim::{DetRng, SimTime};

    fn run_workload(seed: u64, n: u64, write_frac: f64, random: bool) -> Vec<TraceEntry> {
        let cfg = DramConfig::ddr4_3200();
        let mut ch = Channel::new(&cfg, 0);
        ch.enable_trace();
        let mut rng = DetRng::new(seed);
        let span = ch.config().channel_bytes() / LINE_BYTES;
        let mut issued = 0u64;
        let mut completed = 0u64;
        let mut seq_addr = 0u64;
        while completed < n {
            while issued < n {
                let is_write = rng.chance(write_frac);
                if !ch.can_accept(if is_write { MemKind::Write } else { MemKind::Read }) {
                    break;
                }
                let addr = if random {
                    rng.next_below(span) * LINE_BYTES
                } else {
                    seq_addr += LINE_BYTES;
                    seq_addr
                };
                let req = if is_write {
                    MemRequest::write(addr, issued)
                } else {
                    MemRequest::read(addr, issued)
                };
                ch.push(req, SimTime::ZERO);
                issued += 1;
            }
            let t = ch.next_event().expect("must have work");
            completed += ch.advance(t).len() as u64;
        }
        ch.trace().to_vec()
    }

    #[test]
    fn sequential_read_trace_is_clean() {
        let trace = run_workload(1, 2000, 0.0, false);
        let checker = TimingChecker::new(DramConfig::ddr4_3200());
        let violations = checker.verify(&trace);
        assert!(violations.is_empty(), "violations: {violations:?}");
    }

    #[test]
    fn random_mixed_trace_is_clean() {
        let trace = run_workload(2, 2000, 0.4, true);
        let checker = TimingChecker::new(DramConfig::ddr4_3200());
        let violations = checker.verify(&trace);
        assert!(violations.is_empty(), "violations: {violations:?}");
    }

    #[test]
    fn checker_catches_trcd_violation() {
        let cfg = DramConfig::ddr4_3200();
        let checker = TimingChecker::new(cfg.clone());
        let trace = vec![
            TraceEntry {
                at: SimTime::ZERO,
                cmd: Cmd::Act { bank: 0, row: 1 },
            },
            TraceEntry {
                at: cfg.cycles(2), // far less than tRCD
                cmd: Cmd::Rd { bank: 0, row: 1 },
            },
        ];
        let v = checker.verify(&trace);
        assert!(v.iter().any(|x| x.rule.contains("tRCD")), "{v:?}");
    }

    #[test]
    fn checker_catches_wrong_row_and_idle_cas() {
        let cfg = DramConfig::ddr4_3200();
        let checker = TimingChecker::new(cfg.clone());
        let trace = vec![
            TraceEntry {
                at: SimTime::ZERO,
                cmd: Cmd::Rd { bank: 0, row: 3 },
            },
            TraceEntry {
                at: cfg.cycles(10),
                cmd: Cmd::Act { bank: 0, row: 1 },
            },
            TraceEntry {
                at: cfg.cycles(100),
                cmd: Cmd::Rd { bank: 0, row: 2 },
            },
        ];
        let v = checker.verify(&trace);
        assert!(v.iter().any(|x| x.rule.contains("idle bank")), "{v:?}");
        assert!(v.iter().any(|x| x.rule.contains("has 1 open")), "{v:?}");
    }

    #[test]
    fn checker_catches_faw_violation() {
        let cfg = DramConfig::ddr4_3200();
        let checker = TimingChecker::new(cfg.clone());
        // 5 ACTs to different bank groups spaced tRRD_S apart — violates tFAW
        // (5 * tRRD_S = 20 < tFAW = 34).
        let mut trace = Vec::new();
        for i in 0..5u64 {
            trace.push(TraceEntry {
                at: cfg.cycles(i * cfg.t_rrd_s),
                // banks 0,4,8,12 are bank groups 0..3 of rank 0; 5th wraps
                // to a different bank of bg 0.
                cmd: Cmd::Act {
                    bank: ((i % 4) * 4 + i / 4) as usize,
                    row: 0,
                },
            });
        }
        let v = checker.verify(&trace);
        assert!(v.iter().any(|x| x.rule.contains("tFAW")), "{v:?}");
    }

    #[test]
    fn refresh_trace_is_clean() {
        // Long trickle workload with idle gaps so refreshes interleave.
        let cfg = DramConfig::ddr4_3200();
        let mut ch = Channel::new(&cfg, 0);
        ch.enable_trace();
        let refi = cfg.cycles(cfg.t_refi);
        let mut now = SimTime::ZERO;
        for i in 0..64u64 {
            ch.push(MemRequest::read(i * 7 * LINE_BYTES, i), now);
            while let Some(t) = ch.next_event() {
                now = now.max(t);
                if ch.advance(t).iter().any(|cpl| cpl.tag == i) {
                    break;
                }
            }
            now += refi / 4;
            let _ = ch.advance(now);
        }
        assert!(ch.stats().refreshes.get() > 0, "no refreshes happened");
        let checker = TimingChecker::new(cfg);
        let v = checker.verify(ch.trace());
        assert!(v.is_empty(), "violations: {v:?}");
    }
}
