//! DRAM device and controller configuration.

use serde::{Deserialize, Serialize};

use mcn_sim::SimTime;

/// DDR4 device timing and geometry parameters.
///
/// Timing parameters are stored in **command-clock cycles** (as JEDEC
/// specifies them) together with the clock period `tck_ps`; use
/// [`cycles`](Self::cycles) to convert to [`SimTime`]. The
/// [`ddr4_3200`](Self::ddr4_3200) preset corresponds to the DDR4-3200
/// configuration in the paper's Table II.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DramConfig {
    /// Command clock period in picoseconds (DDR4-3200: 625 ps).
    pub tck_ps: u64,
    /// Burst length in beats (DDR4: 8). A burst transfers one 64-byte line
    /// over a 64-bit channel and occupies the data bus for `bl/2` cycles.
    pub bl: u64,

    // --- geometry (per channel) ---
    /// Ranks per channel.
    pub ranks: u32,
    /// Bank groups per rank (DDR4: 4).
    pub bank_groups: u32,
    /// Banks per bank group (DDR4: 4).
    pub banks_per_group: u32,
    /// Cache lines per row (row buffer size / 64 B). 128 → 8 KB row.
    pub cols_per_row: u64,
    /// Rows per bank (sets per-channel capacity; timing is row-count
    /// independent).
    pub rows_per_bank: u64,

    // --- core timing (cycles) ---
    /// ACT → internal RD/WR to the same bank.
    pub t_rcd: u64,
    /// PRE → ACT to the same bank.
    pub t_rp: u64,
    /// RD → first data beat (CAS latency).
    pub t_cl: u64,
    /// WR → first data beat (CAS write latency).
    pub t_cwl: u64,
    /// ACT → PRE minimum to the same bank.
    pub t_ras: u64,
    /// ACT → ACT to the same bank (tRAS + tRP).
    pub t_rc: u64,
    /// ACT → ACT, different bank groups.
    pub t_rrd_s: u64,
    /// ACT → ACT, same bank group.
    pub t_rrd_l: u64,
    /// Four-activate window: at most 4 ACTs per rank per window.
    pub t_faw: u64,
    /// CAS → CAS, different bank groups.
    pub t_ccd_s: u64,
    /// CAS → CAS, same bank group.
    pub t_ccd_l: u64,
    /// End of write data burst → PRE to the same bank (write recovery).
    pub t_wr: u64,
    /// End of write data burst → RD, different bank groups.
    pub t_wtr_s: u64,
    /// End of write data burst → RD, same bank group.
    pub t_wtr_l: u64,
    /// RD → PRE to the same bank.
    pub t_rtp: u64,
    /// Refresh cycle time (all banks busy after REF).
    pub t_rfc: u64,
    /// Average refresh interval.
    pub t_refi: u64,

    // --- controller ---
    /// Read queue capacity per channel.
    pub read_queue: usize,
    /// Write queue capacity per channel.
    pub write_queue: usize,
    /// Write-drain high watermark: once the write queue reaches this level
    /// the controller switches to draining writes.
    pub wq_high: usize,
    /// Write-drain low watermark: drain stops once the queue falls to this.
    pub wq_low: usize,
    /// Fixed controller front-end latency added to every completion
    /// (queueing/PHY/on-die interconnect), in picoseconds.
    pub frontend_ps: u64,
    /// Access latency of an MCN SRAM buffer behind the channel (replaces the
    /// bank access portion for `Target::Sram` transactions), picoseconds.
    pub sram_ps: u64,
}

impl DramConfig {
    /// DDR4-3200 (22-22-22), 2 ranks × 4 bank groups × 4 banks, 8 KB rows.
    ///
    /// Peak transfer rate: 3200 MT/s × 8 B = 25.6 GB/s per channel.
    pub fn ddr4_3200() -> Self {
        DramConfig {
            tck_ps: 625,
            bl: 8,
            ranks: 2,
            bank_groups: 4,
            banks_per_group: 4,
            cols_per_row: 128,
            rows_per_bank: 1 << 16,
            t_rcd: 22,
            t_rp: 22,
            t_cl: 22,
            t_cwl: 16,
            t_ras: 52,
            t_rc: 74,
            t_rrd_s: 4,
            t_rrd_l: 8,
            t_faw: 34,
            t_ccd_s: 4,
            t_ccd_l: 8,
            t_wr: 24,
            t_wtr_s: 4,
            t_wtr_l: 12,
            t_rtp: 12,
            t_rfc: 560,  // 350 ns for an 8 Gb device
            t_refi: 12_480, // 7.8 us
            read_queue: 32,
            write_queue: 32,
            wq_high: 24,
            wq_low: 8,
            frontend_ps: 10_000, // 10 ns controller + PHY front end
            sram_ps: 15_000,     // 15 ns MCN SRAM access
        }
    }

    /// LPDDR4-class local channel used on the MCN DIMM itself (Snapdragon
    /// 835 in the paper has two 1866 MHz LPDDR4 channels). Modelled as a
    /// narrower/slower DDR channel: 3733 MT/s × 4 B ≈ 14.9 GB/s.
    ///
    /// We keep the 64-bit-channel transaction framing (one line per burst)
    /// and stretch the clock so that the *data bus occupancy per line*
    /// matches a 32-bit LPDDR4-3733 channel: 64 B / 14.9 GB/s ≈ 4.3 ns.
    pub fn lpddr4_local() -> Self {
        let mut c = Self::ddr4_3200();
        // 64B line over a 32-bit @ 3733MT/s channel = 16 beats at 536ps/beat
        // ≈ 4.28 ns. With bl/2 = 4 command cycles per line, tCK = 1072 ps.
        c.tck_ps = 1072;
        c.ranks = 1;
        c.t_rfc = 330; // shorter at this clock; value in cycles
        c.t_refi = 7_280;
        c
    }

    /// Converts a cycle count to simulated time.
    #[inline]
    pub fn cycles(&self, n: u64) -> SimTime {
        SimTime::from_ps(n * self.tck_ps)
    }

    /// Data-bus occupancy of one burst (BL/2 command cycles).
    #[inline]
    pub fn t_burst(&self) -> SimTime {
        self.cycles(self.bl / 2)
    }

    /// Theoretical peak bandwidth of one channel in bytes/second.
    pub fn peak_bytes_per_sec(&self) -> f64 {
        crate::LINE_BYTES as f64 / self.t_burst().as_secs_f64()
    }

    /// Per-channel capacity in bytes.
    pub fn channel_bytes(&self) -> u64 {
        self.ranks as u64
            * self.bank_groups as u64
            * self.banks_per_group as u64
            * self.rows_per_bank
            * self.cols_per_row
            * crate::LINE_BYTES
    }

    /// Total banks per channel.
    pub fn banks_per_channel(&self) -> u32 {
        self.ranks * self.bank_groups * self.banks_per_group
    }

    /// Validates internal consistency (relations JEDEC guarantees and the
    /// scheduler relies on).
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated relation.
    pub fn validate(&self) -> Result<(), String> {
        if self.tck_ps == 0 {
            return Err("tck_ps must be positive".into());
        }
        if !self.bl.is_multiple_of(2) || self.bl == 0 {
            return Err("burst length must be a positive even number".into());
        }
        if self.t_rc < self.t_ras + self.t_rp {
            return Err(format!(
                "tRC ({}) must be >= tRAS + tRP ({})",
                self.t_rc,
                self.t_ras + self.t_rp
            ));
        }
        if self.t_rrd_l < self.t_rrd_s {
            return Err("tRRD_L must be >= tRRD_S".into());
        }
        if self.t_ccd_l < self.t_ccd_s {
            return Err("tCCD_L must be >= tCCD_S".into());
        }
        if self.t_faw < self.t_rrd_s * 4 {
            return Err("tFAW must be >= 4 * tRRD_S".into());
        }
        if self.wq_low >= self.wq_high || self.wq_high > self.write_queue {
            return Err("require wq_low < wq_high <= write_queue".into());
        }
        if self.cols_per_row == 0 || !self.cols_per_row.is_power_of_two() {
            return Err("cols_per_row must be a power of two".into());
        }
        if self.t_refi <= self.t_rfc {
            return Err("tREFI must exceed tRFC".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        DramConfig::ddr4_3200().validate().unwrap();
        DramConfig::lpddr4_local().validate().unwrap();
    }

    #[test]
    fn ddr4_3200_peak_bandwidth() {
        let c = DramConfig::ddr4_3200();
        // 64 B per 4 cycles of 625 ps = 25.6 GB/s.
        let peak = c.peak_bytes_per_sec();
        assert!((peak - 25.6e9).abs() / 25.6e9 < 1e-9, "peak {peak}");
    }

    #[test]
    fn lpddr4_peak_is_mobile_class() {
        let peak = DramConfig::lpddr4_local().peak_bytes_per_sec();
        assert!(
            (13.0e9..16.0e9).contains(&peak),
            "LPDDR4 local peak {peak} should be ~14.9 GB/s"
        );
    }

    #[test]
    fn capacity_math() {
        let c = DramConfig::ddr4_3200();
        // 2 ranks * 16 banks * 65536 rows * 8KB row = 16 GiB.
        assert_eq!(c.channel_bytes(), 16 * (1 << 30));
        assert_eq!(c.banks_per_channel(), 32);
    }

    #[test]
    fn validate_catches_bad_configs() {
        let mut c = DramConfig::ddr4_3200();
        c.t_rc = 10;
        assert!(c.validate().is_err());

        let mut c = DramConfig::ddr4_3200();
        c.wq_high = c.wq_low;
        assert!(c.validate().is_err());

        let mut c = DramConfig::ddr4_3200();
        c.cols_per_row = 100;
        assert!(c.validate().is_err());

        let mut c = DramConfig::ddr4_3200();
        c.t_faw = 2;
        assert!(c.validate().is_err());
    }

    #[test]
    fn cycle_conversion() {
        let c = DramConfig::ddr4_3200();
        assert_eq!(c.cycles(22), SimTime::from_ps(13_750));
        assert_eq!(c.t_burst(), SimTime::from_ps(2_500));
    }
}
