//! Per-bank state machine.

use mcn_sim::SimTime;

/// State of one DRAM bank: either precharged (idle) or with one row latched
/// in the row buffer (open-page policy keeps rows open until a conflict or
/// refresh forces a precharge).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BankState {
    /// All rows precharged.
    Idle,
    /// `row` is open in the row buffer.
    Active {
        /// The open row.
        row: u64,
    },
}

/// One bank's state plus the earliest times each command class may next be
/// issued to it. Cross-bank constraints (tRRD, tFAW, tCCD, tWTR, data-bus
/// occupancy) are enforced by the channel, not here.
#[derive(Debug, Clone)]
pub struct Bank {
    /// Current row-buffer state.
    pub state: BankState,
    /// Earliest ACT (covers tRP after PRE, tRC after ACT, tRFC after REF).
    pub act_ready: SimTime,
    /// Earliest PRE (covers tRAS after ACT, tRTP after RD, write recovery).
    pub pre_ready: SimTime,
    /// Earliest RD/WR (covers tRCD after ACT).
    pub cas_ready: SimTime,
}

impl Default for Bank {
    fn default() -> Self {
        Bank {
            state: BankState::Idle,
            act_ready: SimTime::ZERO,
            pre_ready: SimTime::ZERO,
            cas_ready: SimTime::ZERO,
        }
    }
}

impl Bank {
    /// Records an ACT issued at `t` opening `row`.
    pub fn activate(&mut self, t: SimTime, row: u64, t_rcd: SimTime, t_ras: SimTime, t_rc: SimTime) {
        debug_assert_eq!(self.state, BankState::Idle, "ACT to non-idle bank");
        self.state = BankState::Active { row };
        self.cas_ready = t + t_rcd;
        self.pre_ready = (t + t_ras).max(self.pre_ready);
        self.act_ready = t + t_rc;
    }

    /// Records a PRE issued at `t`.
    pub fn precharge(&mut self, t: SimTime, t_rp: SimTime) {
        debug_assert_ne!(self.state, BankState::Idle, "PRE to idle bank");
        self.state = BankState::Idle;
        self.act_ready = self.act_ready.max(t + t_rp);
    }

    /// Records a RD issued at `t` (constrains the following PRE by tRTP).
    pub fn read(&mut self, t: SimTime, t_rtp: SimTime) {
        self.pre_ready = self.pre_ready.max(t + t_rtp);
    }

    /// Records a WR issued at `t` whose data burst ends at `data_end`
    /// (constrains the following PRE by write recovery tWR).
    pub fn write(&mut self, data_end: SimTime, t_wr: SimTime) {
        self.pre_ready = self.pre_ready.max(data_end + t_wr);
    }

    /// The open row, if any.
    pub fn open_row(&self) -> Option<u64> {
        match self.state {
            BankState::Active { row } => Some(row),
            BankState::Idle => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns(n: u64) -> SimTime {
        SimTime::from_ns(n)
    }

    #[test]
    fn act_opens_row_and_sets_windows() {
        let mut b = Bank::default();
        b.activate(ns(100), 7, ns(14), ns(32), ns(46));
        assert_eq!(b.open_row(), Some(7));
        assert_eq!(b.cas_ready, ns(114));
        assert_eq!(b.pre_ready, ns(132));
        assert_eq!(b.act_ready, ns(146));
    }

    #[test]
    fn pre_closes_and_gates_next_act() {
        let mut b = Bank::default();
        b.activate(ns(0), 1, ns(14), ns(32), ns(46));
        b.precharge(ns(40), ns(14));
        assert_eq!(b.open_row(), None);
        // max(tRC-from-ACT = 46, PRE+tRP = 54)
        assert_eq!(b.act_ready, ns(54));
    }

    #[test]
    fn read_and_write_extend_pre_window() {
        let mut b = Bank::default();
        b.activate(ns(0), 1, ns(14), ns(32), ns(46));
        b.read(ns(30), ns(8));
        assert_eq!(b.pre_ready, ns(38).max(ns(32)));
        b.write(ns(60), ns(15));
        assert_eq!(b.pre_ready, ns(75));
    }
}
