//! Per-channel memory controller: FR-FCFS scheduling over a DDR4 channel.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use serde::{Deserialize, Serialize};

use mcn_sim::metrics::{Instrumented, MetricSink};
use mcn_sim::stats::{Counter, RateMeter};
use mcn_sim::SimTime;

use crate::addr::{AddressMap, Interleave};
use crate::bank::Bank;
use crate::check::{Cmd, TraceEntry};
use crate::config::DramConfig;
use crate::LINE_BYTES;

/// Direction of a memory transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemKind {
    /// Data flows from the DIMM to the requester.
    Read,
    /// Data flows from the requester to the DIMM.
    Write,
}

/// What the transaction addresses on the channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Target {
    /// Ordinary DRAM: subject to bank/row timing.
    Dram,
    /// The MCN interface SRAM on an MCN DIMM: fixed access latency, but the
    /// burst still occupies the shared channel data bus — this is how MCN
    /// driver traffic contends with host DRAM traffic on a global channel.
    Sram,
}

/// A 64-byte transaction presented to a channel controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRequest {
    /// Physical address (the containing cache line is transferred).
    pub addr: u64,
    /// Read or write.
    pub kind: MemKind,
    /// DRAM or MCN SRAM.
    pub target: Target,
    /// Caller-chosen identifier returned in the [`Completion`].
    pub tag: u64,
}

impl MemRequest {
    /// A DRAM read of the line containing `addr`.
    pub fn read(addr: u64, tag: u64) -> Self {
        MemRequest {
            addr,
            kind: MemKind::Read,
            target: Target::Dram,
            tag,
        }
    }

    /// A DRAM write of the line containing `addr`.
    pub fn write(addr: u64, tag: u64) -> Self {
        MemRequest {
            addr,
            kind: MemKind::Write,
            target: Target::Dram,
            tag,
        }
    }

    /// A read of an MCN DIMM's interface SRAM over this channel.
    pub fn sram_read(addr: u64, tag: u64) -> Self {
        MemRequest {
            addr,
            kind: MemKind::Read,
            target: Target::Sram,
            tag,
        }
    }

    /// A write to an MCN DIMM's interface SRAM over this channel.
    pub fn sram_write(addr: u64, tag: u64) -> Self {
        MemRequest {
            addr,
            kind: MemKind::Write,
            target: Target::Sram,
            tag,
        }
    }
}

/// A finished transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// Tag from the originating [`MemRequest`].
    pub tag: u64,
    /// Time the data transfer (and controller front end) finished.
    pub at: SimTime,
    /// Direction of the finished transaction.
    pub kind: MemKind,
}

/// Aggregate counters for one channel.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct ChannelStats {
    /// DRAM read bursts completed.
    pub reads: Counter,
    /// DRAM write bursts completed.
    pub writes: Counter,
    /// ACT commands issued (row misses under open-page policy).
    pub activates: Counter,
    /// PRE commands issued.
    pub precharges: Counter,
    /// REF commands issued.
    pub refreshes: Counter,
    /// SRAM transactions (MCN interface traffic) on this channel.
    pub sram_ops: Counter,
    /// Data-bus busy time in picoseconds.
    pub busy_ps: Counter,
    /// Bytes moved (DRAM + SRAM), with first/last timestamps for bandwidth.
    pub traffic: RateMeter,
}

impl Instrumented for ChannelStats {
    fn metrics(&self, out: &mut MetricSink) {
        out.counter("reads", self.reads.get());
        out.counter("writes", self.writes.get());
        out.counter("activates", self.activates.get());
        out.counter("precharges", self.precharges.get());
        out.counter("refreshes", self.refreshes.get());
        out.counter("sram_ops", self.sram_ops.get());
        out.counter("busy_ps", self.busy_ps.get());
        out.meter("traffic", &self.traffic);
    }
}

impl ChannelStats {
    /// CAS operations that did not require an ACT (row-buffer hits).
    pub fn row_hits(&self) -> u64 {
        (self.reads.get() + self.writes.get()).saturating_sub(self.activates.get())
    }

    /// Row-buffer hit rate over all DRAM CAS operations, or 0 when idle.
    pub fn hit_rate(&self) -> f64 {
        let cas = self.reads.get() + self.writes.get();
        if cas == 0 {
            0.0
        } else {
            self.row_hits() as f64 / cas as f64
        }
    }

    /// Fraction of `elapsed` the data bus was busy.
    pub fn utilization(&self, elapsed: SimTime) -> f64 {
        if elapsed == SimTime::ZERO {
            0.0
        } else {
            self.busy_ps.get() as f64 / elapsed.as_ps() as f64
        }
    }
}

#[derive(Debug, Clone)]
struct Pending {
    req: MemRequest,
    seq: u64,
    /// Time the request entered the controller; no command for it may be
    /// issued earlier (causality).
    arrived: SimTime,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct CompEntry {
    at: SimTime,
    seq: u64,
    tag: u64,
    kind: MemKind,
}

impl PartialOrd for CompEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for CompEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.at.cmp(&other.at).then(self.seq.cmp(&other.seq))
    }
}

#[derive(Debug, Clone, Copy)]
enum QueueId {
    Read,
    Write,
}

#[derive(Debug, Clone, Copy)]
enum Action {
    Cas(QueueId, usize),
    Act(QueueId, usize),
    Pre(usize),
    Sram(QueueId, usize),
    Refresh,
}

/// One memory channel: request queues, an FR-FCFS command scheduler, bank
/// state, and the shared data bus.
///
/// See the crate docs for the driving protocol
/// ([`push`](Self::push) / [`next_event`](Self::next_event) /
/// [`advance`](Self::advance)).
#[derive(Debug)]
pub struct Channel {
    cfg: DramConfig,
    map: AddressMap,
    index: u32,

    banks: Vec<Bank>,
    /// Earliest next CAS per (rank, bank group) — tCCD_L.
    next_cas_bg: Vec<SimTime>,
    /// Earliest next CAS channel-wide — tCCD_S.
    next_cas_any: SimTime,
    /// Earliest next ACT per (rank, bank group) — tRRD_L.
    next_act_bg: Vec<SimTime>,
    /// Earliest next ACT per rank — tRRD_S.
    next_act_rank: Vec<SimTime>,
    /// Last up-to-4 ACT times per rank — tFAW window.
    act_window: Vec<VecDeque<SimTime>>,
    /// Earliest next RD per (rank, bank group) — tWTR_L after a write burst.
    rd_block_bg: Vec<SimTime>,
    /// Earliest next RD per rank — tWTR_S.
    rd_block_rank: Vec<SimTime>,

    dbus_free: SimTime,
    /// Direction of the last data burst; `None` until the bus is first used
    /// (no turnaround penalty applies from the pristine state).
    last_dir: Option<MemKind>,
    cmd_slot: SimTime,
    /// Latest time the controller has been advanced or pushed to; clamps
    /// `next_event` so callers never see wake-ups in their past.
    clock: SimTime,

    read_q: Vec<Pending>,
    write_q: Vec<Pending>,
    next_seq: u64,
    completions: BinaryHeap<Reverse<CompEntry>>,

    refresh_due: SimTime,
    refresh_mode: bool,
    drain_writes: bool,

    stats: ChannelStats,
    trace: Option<Vec<TraceEntry>>,
}

impl Channel {
    /// Creates a standalone single-channel controller (`index` must be 0 for
    /// addresses to decode; used in tests and for MCN-local channels).
    pub fn new(cfg: &DramConfig, index: u32) -> Self {
        Self::with_map(
            AddressMap::new(cfg.clone(), 1, Interleave::BgInterleaved),
            index,
        )
    }

    /// Creates a controller for channel `index` of a multi-channel system
    /// described by `map`. Requests pushed here must decode to this channel.
    pub fn with_map(map: AddressMap, index: u32) -> Self {
        let cfg = map.config().clone();
        let nbanks = cfg.banks_per_channel() as usize;
        let rank_bg = (cfg.ranks * cfg.bank_groups) as usize;
        let refresh_due = cfg.cycles(cfg.t_refi);
        Channel {
            banks: vec![Bank::default(); nbanks],
            next_cas_bg: vec![SimTime::ZERO; rank_bg],
            next_cas_any: SimTime::ZERO,
            next_act_bg: vec![SimTime::ZERO; rank_bg],
            next_act_rank: vec![SimTime::ZERO; cfg.ranks as usize],
            act_window: vec![VecDeque::with_capacity(4); cfg.ranks as usize],
            rd_block_bg: vec![SimTime::ZERO; rank_bg],
            rd_block_rank: vec![SimTime::ZERO; cfg.ranks as usize],
            dbus_free: SimTime::ZERO,
            last_dir: None,
            cmd_slot: SimTime::ZERO,
            clock: SimTime::ZERO,
            read_q: Vec::new(),
            write_q: Vec::new(),
            next_seq: 0,
            completions: BinaryHeap::new(),
            refresh_due,
            refresh_mode: false,
            drain_writes: false,
            stats: ChannelStats::default(),
            trace: None,
            cfg,
            map,
            index,
        }
    }

    /// Enables command-trace recording for validation with
    /// [`crate::check::TimingChecker`].
    pub fn enable_trace(&mut self) {
        self.trace = Some(Vec::new());
    }

    /// The recorded command trace (empty unless [`enable_trace`](Self::enable_trace)
    /// was called).
    pub fn trace(&self) -> &[TraceEntry] {
        self.trace.as_deref().unwrap_or(&[])
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &ChannelStats {
        &self.stats
    }

    /// The channel's configuration.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// Whether a request of the given kind can be accepted right now
    /// (queue space available).
    pub fn can_accept(&self, kind: MemKind) -> bool {
        match kind {
            MemKind::Read => self.read_q.len() < self.cfg.read_queue,
            MemKind::Write => self.write_q.len() < self.cfg.write_queue,
        }
    }

    /// Requests not yet completed (queued or in flight).
    pub fn outstanding(&self) -> usize {
        self.read_q.len() + self.write_q.len() + self.completions.len()
    }

    /// Enqueues a transaction.
    ///
    /// # Panics
    ///
    /// Panics if the corresponding queue is full (callers must check
    /// [`can_accept`](Self::can_accept)) or if a DRAM request decodes to a
    /// different channel than this one.
    pub fn push(&mut self, req: MemRequest, now: SimTime) {
        assert!(self.can_accept(req.kind), "queue full: check can_accept()");
        self.clock = self.clock.max(now);
        if req.target == Target::Dram {
            let loc = self.map.decode(req.addr);
            assert_eq!(
                loc.channel, self.index,
                "request addr {:#x} decodes to channel {}, pushed to {}",
                req.addr, loc.channel, self.index
            );
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let pending = Pending {
            req,
            seq,
            arrived: self.clock,
        };
        match req.kind {
            MemKind::Read => self.read_q.push(pending),
            MemKind::Write => self.write_q.push(pending),
        }
        if self.write_q.len() >= self.cfg.wq_high {
            self.drain_writes = true;
        }
    }

    /// The next time this channel wants [`advance`](Self::advance) called:
    /// the earliest of (next feasible command, refresh deadline, earliest
    /// completion delivery). `None` when fully idle.
    pub fn next_event(&self) -> Option<SimTime> {
        let mut t = self
            .completions
            .peek()
            .map(|Reverse(c)| c.at)
            .unwrap_or(SimTime::MAX);
        if let Some((_, ta)) = self.pick() {
            t = t.min(ta);
        }
        // Refresh wakes only channels that have seen traffic; waking the
        // simulation forever for refreshes of an untouched channel would be
        // wasted work, and an untouched channel has no state to lose.
        if !self.refresh_mode && self.stats.traffic.bytes() > 0 {
            t = t.min(self.refresh_due);
        }
        (t != SimTime::MAX).then(|| t.max(self.clock))
    }

    /// Advances the controller to `now`, issuing every command that becomes
    /// feasible on the way, and returns the completions whose delivery time
    /// is `<= now` (in delivery order).
    pub fn advance(&mut self, now: SimTime) -> Vec<Completion> {
        self.clock = self.clock.max(now);
        loop {
            if !self.refresh_mode && now >= self.refresh_due && self.stats.traffic.bytes() > 0 {
                self.refresh_mode = true;
            }
            match self.pick() {
                Some((action, t)) if t <= now => self.issue(action, t),
                _ => break,
            }
        }
        let mut out = Vec::new();
        while let Some(Reverse(c)) = self.completions.peek() {
            if c.at > now {
                break;
            }
            let Reverse(c) = self.completions.pop().expect("peeked");
            out.push(Completion {
                tag: c.tag,
                at: c.at,
                kind: c.kind,
            });
        }
        out
    }

    // ---- scheduling ----

    fn bank_of(&self, addr: u64) -> (usize, u32, u32, u64) {
        let loc = self.map.decode(addr);
        (
            loc.flat_bank(&self.cfg),
            loc.rank,
            loc.bank_group + loc.rank * self.cfg.bank_groups,
            loc.row,
        )
    }

    /// Earliest issue time for a CAS to an open row.
    fn cas_time(&self, rank: u32, rank_bg: u32, bank: usize, kind: MemKind) -> SimTime {
        let c = &self.cfg;
        let mut t = self.banks[bank]
            .cas_ready
            .max(self.next_cas_bg[rank_bg as usize])
            .max(self.next_cas_any)
            .max(self.cmd_slot);
        if kind == MemKind::Read {
            t = t
                .max(self.rd_block_bg[rank_bg as usize])
                .max(self.rd_block_rank[rank as usize]);
        }
        // Data-bus availability: data starts tCL/tCWL after the command.
        let lat = match kind {
            MemKind::Read => c.cycles(c.t_cl),
            MemKind::Write => c.cycles(c.t_cwl),
        };
        let turn = match self.last_dir {
            Some(d) if d != kind => c.cycles(2),
            _ => SimTime::ZERO,
        };
        let data_earliest = self.dbus_free + turn;
        if data_earliest > t + lat {
            t = data_earliest - lat;
        }
        t
    }

    fn act_time(&self, rank: u32, rank_bg: u32, bank: usize) -> SimTime {
        let c = &self.cfg;
        let mut t = self.banks[bank]
            .act_ready
            .max(self.next_act_bg[rank_bg as usize])
            .max(self.next_act_rank[rank as usize])
            .max(self.cmd_slot);
        let window = &self.act_window[rank as usize];
        if window.len() == 4 {
            t = t.max(window[0] + c.cycles(c.t_faw));
        }
        t
    }

    fn sram_time(&self, kind: MemKind) -> SimTime {
        // SRAM transfers use the data bus directly (the buffer device drives
        // DQ); no bank timing applies.
        let turn = match self.last_dir {
            Some(d) if d != kind => self.cfg.cycles(2),
            _ => SimTime::ZERO,
        };
        (self.dbus_free + turn).max(self.cmd_slot)
    }

    /// True if any queued request hits `row` currently open in `bank`.
    fn row_has_pending_hit(&self, bank: usize, row: u64) -> bool {
        let hit = |q: &[Pending]| {
            q.iter().any(|p| {
                p.req.target == Target::Dram && {
                    let (b, _, _, r) = self.bank_of(p.req.addr);
                    b == bank && r == row
                }
            })
        };
        hit(&self.read_q) || hit(&self.write_q)
    }

    /// Candidates from one queue: (best CAS-like action, oldest PRE/ACT).
    fn queue_candidates(&self, qid: QueueId) -> Option<(Action, SimTime)> {
        let q = match qid {
            QueueId::Read => &self.read_q,
            QueueId::Write => &self.write_q,
        };
        let mut best_cas: Option<(Action, SimTime)> = None;
        let mut oldest_other: Option<(Action, SimTime)> = None;
        for (idx, p) in q.iter().enumerate() {
            match p.req.target {
                Target::Sram => {
                    let t = self.sram_time(p.req.kind).max(p.arrived);
                    if best_cas.is_none_or(|(_, bt)| t < bt) {
                        best_cas = Some((Action::Sram(qid, idx), t));
                    }
                }
                Target::Dram => {
                    let (bank, rank, rank_bg, row) = self.bank_of(p.req.addr);
                    match self.banks[bank].open_row() {
                        Some(open) if open == row => {
                            let t = self
                                .cas_time(rank, rank_bg, bank, p.req.kind)
                                .max(p.arrived);
                            if best_cas.is_none_or(|(_, bt)| t < bt) {
                                best_cas = Some((Action::Cas(qid, idx), t));
                            }
                        }
                        Some(open) => {
                            if oldest_other.is_none()
                                && !self.refresh_mode
                                && !self.row_has_pending_hit(bank, open)
                            {
                                let t = self.banks[bank]
                                    .pre_ready
                                    .max(self.cmd_slot)
                                    .max(p.arrived);
                                oldest_other = Some((Action::Pre(bank), t));
                            }
                        }
                        None => {
                            if oldest_other.is_none() && !self.refresh_mode {
                                let t = self.act_time(rank, rank_bg, bank).max(p.arrived);
                                oldest_other = Some((Action::Act(qid, idx), t));
                            }
                        }
                    }
                }
            }
        }
        match (best_cas, oldest_other) {
            (Some(a), Some(b)) => Some(if a.1 <= b.1 { a } else { b }),
            (Some(a), None) => Some(a),
            (None, Some(b)) => Some(b),
            (None, None) => None,
        }
    }

    fn pick(&self) -> Option<(Action, SimTime)> {
        if self.refresh_mode {
            // Close all banks, then REF once tRP has elapsed everywhere.
            let mut pre: Option<(usize, SimTime)> = None;
            let mut all_ready = self.refresh_due.max(self.cmd_slot);
            for (i, b) in self.banks.iter().enumerate() {
                if b.open_row().is_some() {
                    let t = b.pre_ready.max(self.cmd_slot);
                    if pre.is_none_or(|(_, pt)| t < pt) {
                        pre = Some((i, t));
                    }
                } else {
                    all_ready = all_ready.max(b.act_ready.min(SimTime::MAX));
                }
            }
            if let Some((bank, t)) = pre {
                return Some((Action::Pre(bank), t));
            }
            // All banks idle; REF when every bank's precharge has settled.
            let t = self
                .banks
                .iter()
                .fold(all_ready, |acc, b| acc.max(b.act_ready));
            return Some((Action::Refresh, t));
        }

        let primary = if self.drain_writes || self.read_q.is_empty() {
            QueueId::Write
        } else {
            QueueId::Read
        };
        let secondary = match primary {
            QueueId::Read => QueueId::Write,
            QueueId::Write => QueueId::Read,
        };
        self.queue_candidates(primary)
            .or_else(|| self.queue_candidates(secondary))
    }

    fn record(&mut self, at: SimTime, cmd: Cmd) {
        if let Some(trace) = &mut self.trace {
            trace.push(TraceEntry { at, cmd });
        }
    }

    fn issue(&mut self, action: Action, t: SimTime) {
        let c = self.cfg.clone();
        self.cmd_slot = t + c.cycles(1);
        match action {
            Action::Refresh => {
                for b in &mut self.banks {
                    debug_assert!(b.open_row().is_none());
                    b.act_ready = b.act_ready.max(t + c.cycles(c.t_rfc));
                }
                self.refresh_due += c.cycles(c.t_refi);
                self.refresh_mode = false;
                self.stats.refreshes.inc();
                self.record(t, Cmd::Ref);
            }
            Action::Pre(bank) => {
                self.banks[bank].precharge(t, c.cycles(c.t_rp));
                self.stats.precharges.inc();
                self.record(t, Cmd::Pre { bank });
            }
            Action::Act(qid, idx) => {
                let req = self.peek(qid, idx).req;
                let (bank, rank, rank_bg, row) = self.bank_of(req.addr);
                self.banks[bank].activate(
                    t,
                    row,
                    c.cycles(c.t_rcd),
                    c.cycles(c.t_ras),
                    c.cycles(c.t_rc),
                );
                self.next_act_bg[rank_bg as usize] = t + c.cycles(c.t_rrd_l);
                self.next_act_rank[rank as usize] = t + c.cycles(c.t_rrd_s);
                let w = &mut self.act_window[rank as usize];
                if w.len() == 4 {
                    w.pop_front();
                }
                w.push_back(t);
                self.stats.activates.inc();
                self.record(t, Cmd::Act { bank, row });
            }
            Action::Cas(qid, idx) => {
                let p = self.take(qid, idx);
                let (bank, rank, rank_bg, row) = self.bank_of(p.req.addr);
                let (lat, cmd) = match p.req.kind {
                    MemKind::Read => (c.cycles(c.t_cl), Cmd::Rd { bank, row }),
                    MemKind::Write => (c.cycles(c.t_cwl), Cmd::Wr { bank, row }),
                };
                let data_start = t + lat;
                let data_end = data_start + c.t_burst();
                self.next_cas_bg[rank_bg as usize] = t + c.cycles(c.t_ccd_l);
                self.next_cas_any = t + c.cycles(c.t_ccd_s);
                self.dbus_free = data_end;
                self.last_dir = Some(p.req.kind);
                match p.req.kind {
                    MemKind::Read => {
                        self.banks[bank].read(t, c.cycles(c.t_rtp));
                        self.stats.reads.inc();
                    }
                    MemKind::Write => {
                        self.banks[bank].write(data_end, c.cycles(c.t_wr));
                        self.rd_block_bg[rank_bg as usize] = data_end + c.cycles(c.t_wtr_l);
                        self.rd_block_rank[rank as usize] = data_end + c.cycles(c.t_wtr_s);
                        self.stats.writes.inc();
                    }
                }
                self.finish(p, data_end);
                self.record(t, cmd);
            }
            Action::Sram(qid, idx) => {
                let p = self.take(qid, idx);
                let data_end = t + c.t_burst();
                self.dbus_free = data_end;
                self.last_dir = Some(p.req.kind);
                self.stats.sram_ops.inc();
                self.finish(p, data_end + SimTime::from_ps(c.sram_ps));
            }
        }
    }

    fn peek(&self, qid: QueueId, idx: usize) -> &Pending {
        match qid {
            QueueId::Read => &self.read_q[idx],
            QueueId::Write => &self.write_q[idx],
        }
    }

    fn take(&mut self, qid: QueueId, idx: usize) -> Pending {
        let p = match qid {
            QueueId::Read => self.read_q.remove(idx),
            QueueId::Write => self.write_q.remove(idx),
        };
        if self.write_q.len() <= self.cfg.wq_low {
            self.drain_writes = false;
        }
        p
    }

    fn finish(&mut self, p: Pending, data_end: SimTime) {
        let at = data_end + SimTime::from_ps(self.cfg.frontend_ps);
        self.stats.busy_ps.add(self.cfg.t_burst().as_ps());
        self.stats.traffic.record(data_end, LINE_BYTES);
        self.completions.push(Reverse(CompEntry {
            at,
            seq: p.seq,
            tag: p.req.tag,
            kind: p.req.kind,
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive_until_idle(ch: &mut Channel) -> Vec<Completion> {
        let mut done = Vec::new();
        while let Some(t) = ch.next_event() {
            done.extend(ch.advance(t));
            if ch.outstanding() == 0 {
                break;
            }
        }
        done
    }

    #[test]
    fn single_read_latency_is_act_rcd_cl_burst() {
        let cfg = DramConfig::ddr4_3200();
        let mut ch = Channel::new(&cfg, 0);
        ch.push(MemRequest::read(0, 1), SimTime::ZERO);
        let done = drive_until_idle(&mut ch);
        assert_eq!(done.len(), 1);
        // ACT@0 + tRCD + tCL + tBURST + frontend
        let expect = cfg.cycles(cfg.t_rcd + cfg.t_cl + cfg.bl / 2)
            + SimTime::from_ps(cfg.frontend_ps);
        assert_eq!(done[0].at, expect);
        assert_eq!(ch.stats().activates.get(), 1);
        assert_eq!(ch.stats().reads.get(), 1);
    }

    #[test]
    fn row_hit_faster_than_row_miss() {
        let cfg = DramConfig::ddr4_3200();
        // Two reads to the same row (hit) vs two to different rows of the
        // same bank (miss): the hit pair must finish earlier.
        let map = AddressMap::new(cfg.clone(), 1, Interleave::BgInterleaved);
        let base = 0u64;
        let same_row = base + 4 * LINE_BYTES; // next col, same bank (bg stride 4)
        let mut loc = map.decode(base);
        loc.row += 1;
        let other_row = map.encode(loc);

        let mut hit_ch = Channel::new(&cfg, 0);
        hit_ch.push(MemRequest::read(base, 1), SimTime::ZERO);
        hit_ch.push(MemRequest::read(same_row, 2), SimTime::ZERO);
        let hit_done = drive_until_idle(&mut hit_ch);

        let mut miss_ch = Channel::new(&cfg, 0);
        miss_ch.push(MemRequest::read(base, 1), SimTime::ZERO);
        miss_ch.push(MemRequest::read(other_row, 2), SimTime::ZERO);
        let miss_done = drive_until_idle(&mut miss_ch);

        assert!(hit_done[1].at < miss_done[1].at);
        assert_eq!(hit_ch.stats().activates.get(), 1);
        assert_eq!(hit_ch.stats().row_hits(), 1);
        assert_eq!(miss_ch.stats().activates.get(), 2);
        assert_eq!(miss_ch.stats().precharges.get(), 1);
    }

    #[test]
    fn streaming_reads_approach_peak_bandwidth() {
        let cfg = DramConfig::ddr4_3200();
        let mut ch = Channel::new(&cfg, 0);
        let mut addr = 0u64;
        let mut tag = 0u64;
        let total = 4096u64; // 256 KB
        let mut completed = 0u64;
        let mut last = SimTime::ZERO;
        while completed < total {
            while tag < total && ch.can_accept(MemKind::Read) {
                ch.push(MemRequest::read(addr, tag), last);
                addr += LINE_BYTES;
                tag += 1;
            }
            let t = ch.next_event().expect("busy");
            let done = ch.advance(t);
            completed += done.len() as u64;
            if let Some(d) = done.last() {
                last = d.at;
            }
        }
        let secs = last.as_secs_f64();
        let bw = (total * LINE_BYTES) as f64 / secs;
        let peak = cfg.peak_bytes_per_sec();
        assert!(
            bw > 0.85 * peak,
            "streaming bandwidth {:.2} GB/s should be >85% of peak {:.2} GB/s",
            bw / 1e9,
            peak / 1e9
        );
    }

    #[test]
    fn random_reads_much_slower_than_streaming() {
        let cfg = DramConfig::ddr4_3200();
        let mut ch = Channel::new(&cfg, 0);
        let mut rng = mcn_sim::DetRng::new(1);
        let total = 1024u64;
        let mut issued = 0u64;
        let mut completed = 0u64;
        let mut last = SimTime::ZERO;
        let span = ch.config().channel_bytes();
        while completed < total {
            while issued < total && ch.can_accept(MemKind::Read) {
                let addr = rng.next_below(span / LINE_BYTES) * LINE_BYTES;
                ch.push(MemRequest::read(addr, issued), last);
                issued += 1;
            }
            let t = ch.next_event().expect("busy");
            let done = ch.advance(t);
            completed += done.len() as u64;
            if let Some(d) = done.last() {
                last = d.at;
            }
        }
        let bw = (total * LINE_BYTES) as f64 / last.as_secs_f64();
        assert!(
            bw < 0.6 * cfg.peak_bytes_per_sec(),
            "random-access bandwidth {:.2} GB/s should be well below peak",
            bw / 1e9
        );
        assert!(ch.stats().hit_rate() < 0.5);
    }

    #[test]
    fn writes_complete_and_drain_mode_engages() {
        let cfg = DramConfig::ddr4_3200();
        let mut ch = Channel::new(&cfg, 0);
        for i in 0..cfg.wq_high as u64 {
            assert!(ch.can_accept(MemKind::Write));
            ch.push(MemRequest::write(i * LINE_BYTES, i), SimTime::ZERO);
        }
        let done = drive_until_idle(&mut ch);
        assert_eq!(done.len(), cfg.wq_high);
        assert_eq!(ch.stats().writes.get(), cfg.wq_high as u64);
    }

    #[test]
    fn reads_prioritized_over_background_writes() {
        let cfg = DramConfig::ddr4_3200();
        let mut ch = Channel::new(&cfg, 0);
        // A few writes below the drain watermark, then a read.
        for i in 0..4u64 {
            ch.push(MemRequest::write(i * LINE_BYTES, 100 + i), SimTime::ZERO);
        }
        ch.push(MemRequest::read(1 << 20, 1), SimTime::ZERO);
        let done = drive_until_idle(&mut ch);
        let read_pos = done.iter().position(|c| c.tag == 1).unwrap();
        assert_eq!(read_pos, 0, "read must finish before queued writes");
    }

    #[test]
    fn sram_requests_complete_with_fixed_latency_and_share_bus() {
        let cfg = DramConfig::ddr4_3200();
        let mut ch = Channel::new(&cfg, 0);
        ch.push(MemRequest::sram_write(0x4000_0000, 7), SimTime::ZERO);
        let done = drive_until_idle(&mut ch);
        assert_eq!(done.len(), 1);
        let expect = cfg.t_burst()
            + SimTime::from_ps(cfg.sram_ps)
            + SimTime::from_ps(cfg.frontend_ps);
        assert_eq!(done[0].at, expect);
        assert_eq!(ch.stats().sram_ops.get(), 1);
    }

    #[test]
    fn sram_and_dram_traffic_contend_for_the_bus() {
        // A DRAM stream alone vs the same stream + interleaved SRAM traffic:
        // the stream must finish later in the second case.
        let cfg = DramConfig::ddr4_3200();
        let run = |with_sram: bool| -> SimTime {
            let mut ch = Channel::new(&cfg, 0);
            let n = 512u64;
            let mut issued = 0u64;
            let mut sram_issued = 0u64;
            let mut done_stream = 0u64;
            let mut finish = SimTime::ZERO;
            while done_stream < n {
                while issued < n && ch.can_accept(MemKind::Read) {
                    ch.push(MemRequest::read(issued * LINE_BYTES, issued), finish);
                    issued += 1;
                    if with_sram && sram_issued < n && ch.can_accept(MemKind::Write) {
                        ch.push(
                            MemRequest::sram_write(0x4000_0000, 1_000_000 + sram_issued),
                            finish,
                        );
                        sram_issued += 1;
                    }
                }
                let t = ch.next_event().expect("busy");
                for c in ch.advance(t) {
                    if c.tag < n {
                        done_stream += 1;
                        finish = c.at;
                    }
                }
            }
            finish
        };
        let alone = run(false);
        let contended = run(true);
        assert!(
            contended > alone + alone / 2,
            "SRAM traffic must slow the DRAM stream: alone {alone}, contended {contended}"
        );
    }

    #[test]
    fn refresh_happens_under_traffic() {
        let cfg = DramConfig::ddr4_3200();
        let mut ch = Channel::new(&cfg, 0);
        // Trickle reads over > 2*tREFI of simulated time.
        let refi = cfg.cycles(cfg.t_refi);
        let mut now = SimTime::ZERO;
        for i in 0..50u64 {
            ch.push(MemRequest::read(i * LINE_BYTES, i), now);
            while let Some(t) = ch.next_event() {
                let done = ch.advance(t);
                now = now.max(t);
                if done.iter().any(|c| c.tag == i) {
                    break;
                }
            }
            // Let time pass between requests.
            let idle_until = now + refi / 10;
            now = idle_until;
            let _ = ch.advance(now);
        }
        assert!(
            ch.stats().refreshes.get() >= 2,
            "expected refreshes during {now}, got {}",
            ch.stats().refreshes.get()
        );
    }

    #[test]
    #[should_panic(expected = "queue full")]
    fn push_past_capacity_panics() {
        let cfg = DramConfig::ddr4_3200();
        let mut ch = Channel::new(&cfg, 0);
        for i in 0..=cfg.read_queue as u64 {
            ch.push(MemRequest::read(i * LINE_BYTES, i), SimTime::ZERO);
        }
    }

    #[test]
    #[should_panic(expected = "decodes to channel")]
    fn wrong_channel_push_panics() {
        let cfg = DramConfig::ddr4_3200();
        let map = AddressMap::new(cfg, 2, Interleave::BgInterleaved);
        let mut ch = Channel::with_map(map, 0);
        // Line 1 maps to channel 1.
        ch.push(MemRequest::read(LINE_BYTES, 1), SimTime::ZERO);
    }
}
