//! # mcn-dram — DDR4 memory subsystem timing model
//!
//! Substrate crate for the MCN reproduction. The paper's headline mechanism
//! (Fig 3, Fig 9) is *structural*: every MCN DIMM owns private local memory
//! channels, while conventional DIMMs share the host's global channels, so
//! aggregate bandwidth scales with the number of MCN DIMMs. Reproducing that
//! requires a memory model in which bandwidth emerges from channel-level
//! contention — not a formula. This crate provides it:
//!
//! * [`DramConfig`] — JEDEC-style DDR4 timing/geometry parameters with a
//!   DDR4-3200 preset matching Table II,
//! * [`AddressMap`] — physical-address ↔ (channel, rank, bank group, bank,
//!   row, column) mapping with cache-line channel interleaving; the same
//!   interleaving the MCN driver's `memcpy_to_mcn` must compensate for,
//! * [`Channel`] — a per-channel memory controller: FR-FCFS scheduling,
//!   open-page policy, read/write queues with write-drain watermarks, bank /
//!   bank-group / rank timing constraints (tRCD, tRP, tCL, tRAS, tRRD,
//!   tFAW, tCCD_S/L, tWTR, tWR, tRTP), all-bank refresh (tREFI/tRFC), and a
//!   shared data bus on which **MCN SRAM transactions contend with DRAM
//!   traffic** (this is how MCN driver copies interact with host memory
//!   traffic on the global channel),
//! * [`check::TimingChecker`] — an independent validator that replays a
//!   command trace and asserts every JEDEC constraint, used by the property
//!   tests so the scheduler and the rulebook cannot share a bug.
//!
//! The controller is a *passive* component: callers `push` requests, ask
//! [`Channel::next_event`] when it next wants to run, and call
//! [`Channel::advance`] from their event loop to collect completions. This
//! keeps the model directly unit-testable without an event loop.
//!
//! ```
//! use mcn_dram::{Channel, DramConfig, MemKind, MemRequest, Target};
//! use mcn_sim::SimTime;
//!
//! let cfg = DramConfig::ddr4_3200();
//! let mut ch = Channel::new(&cfg, 0);
//! ch.push(MemRequest::read(0x1000, 1), SimTime::ZERO);
//! // Drive to completion.
//! let done = loop {
//!     let wake = ch.next_event().expect("work pending");
//!     if let Some(c) = ch.advance(wake).into_iter().next() {
//!         break c;
//!     }
//! };
//! assert_eq!(done.tag, 1);
//! assert_eq!(done.kind, MemKind::Read);
//! # let _ = Target::Dram;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
mod bank;
mod channel;
mod config;

pub mod check;

pub use addr::{AddressMap, Interleave, Location};
pub use channel::{Channel, ChannelStats, Completion, MemKind, MemRequest, Target};
pub use config::DramConfig;

/// Cache-line size in bytes; all DRAM transactions move one line.
pub const LINE_BYTES: u64 = 64;
