//! Physical address ↔ DRAM coordinate mapping.

use serde::{Deserialize, Serialize};

use crate::{DramConfig, LINE_BYTES};

/// DRAM coordinates of one cache line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Location {
    /// Channel index.
    pub channel: u32,
    /// Rank within the channel.
    pub rank: u32,
    /// Bank group within the rank.
    pub bank_group: u32,
    /// Bank within the bank group.
    pub bank: u32,
    /// Row within the bank.
    pub row: u64,
    /// Column (cache-line index) within the row.
    pub col: u64,
}

impl Location {
    /// Flat bank index within the channel (rank-major).
    pub fn flat_bank(&self, cfg: &DramConfig) -> usize {
        ((self.rank * cfg.bank_groups + self.bank_group) * cfg.banks_per_group + self.bank) as usize
    }
}

/// Address interleaving scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Interleave {
    /// `Ro:Ra:Ba:Co:Bg:Ch` — consecutive cache lines rotate first across
    /// channels, then across **bank groups**, then columns. Back-to-back
    /// lines of a stream land in different bank groups, so the short
    /// tCCD_S/tRRD_S timings apply and a single stream can saturate the
    /// channel. This mirrors what server memory controllers actually do and
    /// is the default.
    BgInterleaved,
    /// `Ro:Ra:Bg:Ba:Co:Ch` — naive mapping: after channel interleaving, a
    /// stream walks an entire row in one bank before moving on. Kept as an
    /// ablation (`bench: ablation_addr_map`) to show why bank-group
    /// interleaving matters.
    RowBankCol,
}

/// Maps physical addresses to DRAM coordinates across `channels` channels.
///
/// The host processor interleaves successive cache lines across all
/// populated channels (Sec. III-B / Fig 6 of the paper); the MCN driver's
/// `memcpy_to_mcn` uses [`AddressMap::channel_of`] to place 64-byte blocks
/// so that a logically contiguous packet ends up entirely in one DIMM's
/// SRAM — the property the `mcn` crate's property tests verify.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AddressMap {
    channels: u32,
    scheme: Interleave,
    cfg: DramConfig,
}

impl AddressMap {
    /// Creates a map over `channels` channels using `scheme`.
    ///
    /// # Panics
    ///
    /// Panics if `channels` is zero or `cfg` fails validation.
    pub fn new(cfg: DramConfig, channels: u32, scheme: Interleave) -> Self {
        assert!(channels > 0, "need at least one channel");
        cfg.validate().expect("invalid DRAM config");
        AddressMap {
            channels,
            scheme,
            cfg,
        }
    }

    /// Number of channels covered by this map.
    pub fn channels(&self) -> u32 {
        self.channels
    }

    /// The configuration this map was built with.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// Total mapped capacity in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.cfg.channel_bytes() * self.channels as u64
    }

    /// Channel that cache line containing `addr` maps to.
    ///
    /// Channel interleaving is at cache-line granularity regardless of
    /// scheme, exactly like the host MC in Fig 6.
    #[inline]
    pub fn channel_of(&self, addr: u64) -> u32 {
        ((addr / LINE_BYTES) % self.channels as u64) as u32
    }

    /// Full coordinate decode of the line containing `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is beyond the mapped capacity.
    pub fn decode(&self, addr: u64) -> Location {
        assert!(
            addr < self.total_bytes(),
            "address {addr:#x} beyond capacity {:#x}",
            self.total_bytes()
        );
        let line = addr / LINE_BYTES;
        let channel = (line % self.channels as u64) as u32;
        let mut rest = line / self.channels as u64;

        let c = &self.cfg;
        let (rank, bank_group, bank, row, col);
        match self.scheme {
            Interleave::BgInterleaved => {
                bank_group = (rest % c.bank_groups as u64) as u32;
                rest /= c.bank_groups as u64;
                col = rest % c.cols_per_row;
                rest /= c.cols_per_row;
                bank = (rest % c.banks_per_group as u64) as u32;
                rest /= c.banks_per_group as u64;
                rank = (rest % c.ranks as u64) as u32;
                rest /= c.ranks as u64;
                row = rest;
            }
            Interleave::RowBankCol => {
                col = rest % c.cols_per_row;
                rest /= c.cols_per_row;
                bank = (rest % c.banks_per_group as u64) as u32;
                rest /= c.banks_per_group as u64;
                bank_group = (rest % c.bank_groups as u64) as u32;
                rest /= c.bank_groups as u64;
                rank = (rest % c.ranks as u64) as u32;
                rest /= c.ranks as u64;
                row = rest;
            }
        }
        Location {
            channel,
            rank,
            bank_group,
            bank,
            row,
            col,
        }
    }

    /// Inverse of [`decode`](Self::decode): the base address of the line at
    /// the given coordinates.
    pub fn encode(&self, loc: Location) -> u64 {
        let c = &self.cfg;
        let rest = match self.scheme {
            Interleave::BgInterleaved => {
                (((loc.row * c.ranks as u64 + loc.rank as u64) * c.banks_per_group as u64
                    + loc.bank as u64)
                    * c.cols_per_row
                    + loc.col)
                    * c.bank_groups as u64
                    + loc.bank_group as u64
            }
            Interleave::RowBankCol => {
                (((loc.row * c.ranks as u64 + loc.rank as u64) * c.bank_groups as u64
                    + loc.bank_group as u64)
                    * c.banks_per_group as u64
                    + loc.bank as u64)
                    * c.cols_per_row
                    + loc.col
            }
        };
        (rest * self.channels as u64 + loc.channel as u64) * LINE_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn map(channels: u32, scheme: Interleave) -> AddressMap {
        AddressMap::new(DramConfig::ddr4_3200(), channels, scheme)
    }

    #[test]
    fn channel_interleaving_is_per_line() {
        let m = map(4, Interleave::BgInterleaved);
        for line in 0..64u64 {
            assert_eq!(m.channel_of(line * 64), (line % 4) as u32);
            // All bytes within a line map to the same channel.
            assert_eq!(m.channel_of(line * 64 + 63), (line % 4) as u32);
        }
    }

    #[test]
    fn bg_interleave_rotates_bank_groups() {
        let m = map(1, Interleave::BgInterleaved);
        let groups: Vec<u32> = (0..8u64).map(|l| m.decode(l * 64).bank_group).collect();
        assert_eq!(groups, [0, 1, 2, 3, 0, 1, 2, 3]);
        // Same row and column pattern repeats within the same bank.
        assert_eq!(m.decode(0).col, 0);
        assert_eq!(m.decode(4 * 64).col, 1);
    }

    #[test]
    fn naive_interleave_stays_in_bank() {
        let m = map(1, Interleave::RowBankCol);
        for l in 0..128u64 {
            let loc = m.decode(l * 64);
            assert_eq!(loc.bank_group, 0);
            assert_eq!(loc.bank, 0);
            assert_eq!(loc.col, l);
        }
        assert_eq!(m.decode(128 * 64).bank, 1);
    }

    #[test]
    fn flat_bank_is_dense_and_unique() {
        let m = map(1, Interleave::BgInterleaved);
        let cfg = m.config().clone();
        let mut seen = std::collections::HashSet::new();
        // Walk enough lines to touch every bank.
        for l in 0..(cfg.banks_per_channel() as u64 * cfg.cols_per_row * 4) {
            let fb = m.decode(l * 64).flat_bank(&cfg);
            assert!(fb < cfg.banks_per_channel() as usize);
            seen.insert(fb);
        }
        assert_eq!(seen.len(), cfg.banks_per_channel() as usize);
    }

    #[test]
    #[should_panic(expected = "beyond capacity")]
    fn decode_out_of_range_panics() {
        let m = map(1, Interleave::BgInterleaved);
        m.decode(m.total_bytes());
    }

    proptest! {
        #[test]
        fn decode_encode_roundtrip(
            line in 0u64..(1 << 28),
            channels in 1u32..=4,
            bg in prop::bool::ANY,
        ) {
            let scheme = if bg { Interleave::BgInterleaved } else { Interleave::RowBankCol };
            let m = map(channels, scheme);
            let addr = (line * 64) % m.total_bytes();
            let addr = addr - addr % 64;
            let loc = m.decode(addr);
            prop_assert_eq!(m.encode(loc), addr);
            prop_assert_eq!(loc.channel, m.channel_of(addr));
        }

        #[test]
        fn coordinates_in_range(line in 0u64..(1 << 28)) {
            let m = map(2, Interleave::BgInterleaved);
            let c = m.config().clone();
            let loc = m.decode((line * 64) % m.total_bytes());
            prop_assert!(loc.rank < c.ranks);
            prop_assert!(loc.bank_group < c.bank_groups);
            prop_assert!(loc.bank < c.banks_per_group);
            prop_assert!(loc.row < c.rows_per_bank);
            prop_assert!(loc.col < c.cols_per_row);
        }
    }
}
