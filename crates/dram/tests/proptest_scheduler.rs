//! Property tests: the FR-FCFS scheduler must produce JEDEC-clean command
//! traces under *randomized* timing configurations and workloads, checked
//! by the independent `TimingChecker`. A scheduler bug that only surfaces
//! with unusual parameter ratios (e.g. tiny tFAW, huge tWTR) is exactly
//! what this hunts.

use mcn_dram::check::TimingChecker;
use mcn_dram::{Channel, DramConfig, MemKind, MemRequest};
use mcn_sim::{DetRng, SimTime};
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = DramConfig> {
    (
        2u64..=30,   // t_rcd
        2u64..=30,   // t_rp
        4u64..=30,   // t_cl
        2u64..=20,   // t_cwl
        10u64..=60,  // t_ras
        2u64..=8,    // t_rrd_s
        0u64..=8,    // t_rrd_l extra over rrd_s
        2u64..=6,    // t_ccd_s
        0u64..=6,    // t_ccd_l extra
        2u64..=30,   // t_wr
        (1u64..=6, 0u64..=10, 2u64..=16), // t_wtr_s, t_wtr_l extra, t_rtp
    )
        .prop_map(
            |(t_rcd, t_rp, t_cl, t_cwl, t_ras, rrd_s, rrd_l_x, ccd_s, ccd_l_x, t_wr, (wtr_s, wtr_l_x, t_rtp))| {
                let mut c = DramConfig::ddr4_3200();
                c.t_rcd = t_rcd;
                c.t_rp = t_rp;
                c.t_cl = t_cl;
                c.t_cwl = t_cwl;
                c.t_ras = t_ras;
                c.t_rc = t_ras + t_rp;
                c.t_rrd_s = rrd_s;
                c.t_rrd_l = rrd_s + rrd_l_x;
                c.t_faw = 4 * rrd_s + 2;
                c.t_ccd_s = ccd_s;
                c.t_ccd_l = ccd_s + ccd_l_x;
                c.t_wr = t_wr;
                c.t_wtr_s = wtr_s;
                c.t_wtr_l = wtr_s + wtr_l_x;
                c.t_rtp = t_rtp;
                c.validate().expect("constructed to be valid");
                c
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_configs_yield_clean_traces(
        cfg in arb_config(),
        seed in 0u64..1_000_000,
        write_frac in 0.0f64..=1.0,
        random_addrs in any::<bool>(),
    ) {
        let mut ch = Channel::new(&cfg, 0);
        ch.enable_trace();
        let mut rng = DetRng::new(seed);
        let span = cfg.channel_bytes() / 64;
        let n = 400u64;
        let mut issued = 0;
        let mut completed = 0;
        let mut seq = 0u64;
        while completed < n {
            while issued < n {
                let w = rng.chance(write_frac);
                let kind = if w { MemKind::Write } else { MemKind::Read };
                if !ch.can_accept(kind) {
                    break;
                }
                let addr = if random_addrs {
                    rng.next_below(span) * 64
                } else {
                    seq += 64;
                    seq
                };
                let req = if w { MemRequest::write(addr, issued) } else { MemRequest::read(addr, issued) };
                ch.push(req, SimTime::ZERO);
                issued += 1;
            }
            let t = ch.next_event().expect("work pending");
            completed += ch.advance(t).len() as u64;
        }
        let violations = TimingChecker::new(cfg).verify(ch.trace());
        prop_assert!(violations.is_empty(), "violations: {:?}", &violations[..violations.len().min(3)]);
    }

    #[test]
    fn completions_preserve_all_tags(
        seed in 0u64..1_000_000,
    ) {
        // Every pushed request completes exactly once, regardless of the
        // scheduler's reordering.
        let cfg = DramConfig::ddr4_3200();
        let mut ch = Channel::new(&cfg, 0);
        let mut rng = DetRng::new(seed);
        let n = 300u64;
        let mut issued = 0;
        let mut tags = std::collections::HashSet::new();
        loop {
            while issued < n {
                let w = rng.chance(0.3);
                let kind = if w { MemKind::Write } else { MemKind::Read };
                if !ch.can_accept(kind) { break; }
                let addr = rng.next_below(1 << 20) * 64;
                let req = if w { MemRequest::write(addr, issued) } else { MemRequest::read(addr, issued) };
                ch.push(req, SimTime::ZERO);
                issued += 1;
            }
            let Some(t) = ch.next_event() else { break };
            for c in ch.advance(t) {
                prop_assert!(tags.insert(c.tag), "tag {} completed twice", c.tag);
            }
            if issued == n && ch.outstanding() == 0 { break; }
        }
        prop_assert_eq!(tags.len() as u64, n);
    }
}
