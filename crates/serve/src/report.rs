//! Shared measurement cell for a serving run.
//!
//! One [`ServeReport`] is shared by the KV server and its whole client
//! fleet. Because the processes writing it may live on different shards of
//! the parallel engine, *everything in it is commutative*: counters and
//! histogram bucket increments produce the same final state in any write
//! order, so the full-registry snapshot taken after the run is
//! byte-identical across thread counts. Order-sensitive gauges (e.g.
//! [`RateMeter`]'s first/last timestamps) are deliberately absent — derive
//! rates from byte counters and the fixed run window instead.
//!
//! For availability experiments the report can be given a *fault window*
//! (the interval a failure domain is down). Requests are classified by
//! their scheduled arrival time — a pure function of the seed, identical
//! at any thread count — into in-window and steady-state histograms, so
//! `BENCH_serving.json` can quote "p99 inside the outage vs steady state"
//! from one run.
//!
//! [`RateMeter`]: mcn_sim::stats::RateMeter

use std::sync::Arc;

use parking_lot::Mutex;

use mcn_sim::metrics::{Instrumented, MetricSink};
use mcn_sim::stats::Histogram;
use mcn_sim::SimTime;

/// Aggregated serving-run measurements (see module docs for the
/// commutativity contract).
#[derive(Debug)]
pub struct ServeReport {
    /// Request latency, scheduled arrival → response parsed (open-loop:
    /// client-side queueing counts against the server).
    pub latency: Histogram,
    /// Latency SLO used for [`under_slo`](Self::under_slo) accounting.
    pub slo: SimTime,
    /// Requests answered successfully (`VALUE`/`STORED`).
    pub ok: u64,
    /// Requests answered under the SLO (goodput numerator).
    pub under_slo: u64,
    /// Payload bytes in successful responses.
    pub ok_bytes: u64,
    /// GETs that missed.
    pub miss: u64,
    /// Requests rejected with `BUSY` by admission control (server-side
    /// `shed_requests` mirrors this from the client's perspective).
    pub busy: u64,
    /// Requests the server shed at admission (in-flight budget exceeded).
    pub shed_requests: u64,
    /// Connections the server refused at accept time (connection budget).
    pub shed_conns: u64,
    /// Client connections that died abnormally (RST, RTO or keepalive
    /// give-up) — the chaos casualties.
    pub conn_failures: u64,
    /// Clients that finished their request budget.
    pub completed_clients: u64,

    // --- resilient-fleet accounting (ResilientKvClient) ---
    /// Requests issued by resilient clients (the denominator for the
    /// accounting identity `issued == answered + gave_up`).
    pub issued: u64,
    /// Requests re-sent to a replica after the serving backend failed
    /// (connection death, breaker-open, or request timeout).
    pub failovers: u64,
    /// Hedged reads launched (second replica asked after the hedge delay).
    pub hedges_launched: u64,
    /// Hedged reads where the hedge answered first.
    pub hedges_won: u64,
    /// Retry-budget tokens spent on failovers.
    pub retry_budget_spent: u64,
    /// Failovers suppressed because the token bucket ran dry (the
    /// retry-storm guard engaging).
    pub retry_budget_exhausted: u64,
    /// Circuit-breaker transitions into `Open`.
    pub breaker_opens: u64,
    /// Half-open probe requests sent through a recovering breaker.
    pub breaker_half_open_probes: u64,
    /// Requests abandoned after every recovery avenue was spent — loudly
    /// counted, never silent.
    pub gave_up: u64,

    // --- fault-window availability (see module docs) ---
    /// The interval a failure domain is scheduled to be down, or `None`
    /// when the run has no planned outage.
    pub fault_window: Option<(SimTime, SimTime)>,
    /// Requests whose scheduled arrival fell inside the fault window.
    pub fault_issued: u64,
    /// In-window requests that got an answer (any verdict).
    pub fault_answered: u64,
    /// Latency of answered in-window requests.
    pub fault_latency: Histogram,
    /// Latency of answered steady-state (outside-window) requests.
    pub steady_latency: Histogram,
}

impl ServeReport {
    /// A fresh shared cell with the given latency SLO.
    pub fn shared(slo: SimTime) -> Arc<Mutex<ServeReport>> {
        Arc::new(Mutex::new(ServeReport {
            latency: Histogram::new(),
            slo,
            ok: 0,
            under_slo: 0,
            ok_bytes: 0,
            miss: 0,
            busy: 0,
            shed_requests: 0,
            shed_conns: 0,
            conn_failures: 0,
            completed_clients: 0,
            issued: 0,
            failovers: 0,
            hedges_launched: 0,
            hedges_won: 0,
            retry_budget_spent: 0,
            retry_budget_exhausted: 0,
            breaker_opens: 0,
            breaker_half_open_probes: 0,
            gave_up: 0,
            fault_window: None,
            fault_issued: 0,
            fault_answered: 0,
            fault_latency: Histogram::new(),
            steady_latency: Histogram::new(),
        }))
    }

    /// Declares the planned outage interval so subsequent
    /// [`note_issued`](Self::note_issued) / [`record_at`](Self::record_at)
    /// calls classify requests into in-window vs steady state.
    pub fn set_fault_window(&mut self, start: SimTime, end: SimTime) {
        assert!(start <= end, "fault window must not be inverted");
        self.fault_window = Some((start, end));
    }

    /// Whether `t` falls inside the declared fault window.
    pub fn in_fault_window(&self, t: SimTime) -> bool {
        self.fault_window
            .is_some_and(|(s, e)| t >= s && t < e)
    }

    /// Records one issued request (resilient clients call this at the
    /// scheduled arrival so `issued == answered + gave_up` holds at the
    /// end of the run).
    pub fn note_issued(&mut self, sched: SimTime) {
        self.issued += 1;
        if self.in_fault_window(sched) {
            self.fault_issued += 1;
        }
    }

    /// Records one completed request: latency from its scheduled arrival,
    /// whether it succeeded, and the response payload size.
    pub fn record(&mut self, latency: SimTime, ok: bool, bytes: u64) {
        self.latency.record(latency);
        if ok {
            self.ok += 1;
            self.ok_bytes += bytes;
            if latency <= self.slo {
                self.under_slo += 1;
            }
        }
    }

    /// [`record`](Self::record) plus fault-window classification by the
    /// request's scheduled arrival time `sched`.
    pub fn record_at(&mut self, sched: SimTime, latency: SimTime, ok: bool, bytes: u64) {
        self.record(latency, ok, bytes);
        if self.in_fault_window(sched) {
            self.fault_answered += 1;
            self.fault_latency.record(latency);
        } else {
            self.steady_latency.record(latency);
        }
    }

    /// Records one abandoned request (never silent: the accounting
    /// identity counts it against `issued`).
    pub fn give_up_at(&mut self, _sched: SimTime) {
        self.gave_up += 1;
    }

    /// Answered fraction over requests scheduled inside the fault window
    /// (1.0 when no request fell in the window).
    pub fn fault_availability(&self) -> f64 {
        if self.fault_issued == 0 {
            1.0
        } else {
            self.fault_answered as f64 / self.fault_issued as f64
        }
    }

    /// Goodput under SLO over a window of `elapsed`: successful-response
    /// requests meeting the SLO, per second.
    pub fn goodput_rps(&self, elapsed: SimTime) -> f64 {
        let secs = elapsed.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.under_slo as f64 / secs
        }
    }
}

impl Instrumented for ServeReport {
    /// Request counters plus the latency histogram (whose expansion carries
    /// `p50_ps`/`p99_ps`/`p999_ps`). The resilient-fleet and fault-window
    /// metrics are always present (zero when unused) so registry shape
    /// never depends on the scenario.
    fn metrics(&self, out: &mut MetricSink) {
        out.histogram("latency", &self.latency);
        out.counter("ok", self.ok);
        out.counter("under_slo", self.under_slo);
        out.counter("ok_bytes", self.ok_bytes);
        out.counter("miss", self.miss);
        out.counter("busy", self.busy);
        out.counter("shed_requests", self.shed_requests);
        out.counter("shed_conns", self.shed_conns);
        out.counter("conn_failures", self.conn_failures);
        out.counter("completed_clients", self.completed_clients);
        out.counter("issued", self.issued);
        out.counter("failovers", self.failovers);
        out.counter("hedges_launched", self.hedges_launched);
        out.counter("hedges_won", self.hedges_won);
        out.counter("retry_budget_spent", self.retry_budget_spent);
        out.counter("retry_budget_exhausted", self.retry_budget_exhausted);
        out.counter("breaker_opens", self.breaker_opens);
        out.counter("breaker_half_open_probes", self.breaker_half_open_probes);
        out.counter("gave_up", self.gave_up);
        out.counter("fault_issued", self.fault_issued);
        out.counter("fault_answered", self.fault_answered);
        out.histogram("fault_latency", &self.fault_latency);
        out.histogram("steady_latency", &self.steady_latency);
    }
}
