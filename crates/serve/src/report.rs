//! Shared measurement cell for a serving run.
//!
//! One [`ServeReport`] is shared by the KV server and its whole client
//! fleet. Because the processes writing it may live on different shards of
//! the parallel engine, *everything in it is commutative*: counters and
//! histogram bucket increments produce the same final state in any write
//! order, so the full-registry snapshot taken after the run is
//! byte-identical across thread counts. Order-sensitive gauges (e.g.
//! [`RateMeter`]'s first/last timestamps) are deliberately absent — derive
//! rates from byte counters and the fixed run window instead.
//!
//! [`RateMeter`]: mcn_sim::stats::RateMeter

use std::sync::Arc;

use parking_lot::Mutex;

use mcn_sim::metrics::{Instrumented, MetricSink};
use mcn_sim::stats::Histogram;
use mcn_sim::SimTime;

/// Aggregated serving-run measurements (see module docs for the
/// commutativity contract).
#[derive(Debug)]
pub struct ServeReport {
    /// Request latency, scheduled arrival → response parsed (open-loop:
    /// client-side queueing counts against the server).
    pub latency: Histogram,
    /// Latency SLO used for [`under_slo`](Self::under_slo) accounting.
    pub slo: SimTime,
    /// Requests answered successfully (`VALUE`/`STORED`).
    pub ok: u64,
    /// Requests answered under the SLO (goodput numerator).
    pub under_slo: u64,
    /// Payload bytes in successful responses.
    pub ok_bytes: u64,
    /// GETs that missed.
    pub miss: u64,
    /// Requests rejected with `BUSY` by admission control (server-side
    /// `shed_requests` mirrors this from the client's perspective).
    pub busy: u64,
    /// Requests the server shed at admission (in-flight budget exceeded).
    pub shed_requests: u64,
    /// Connections the server refused at accept time (connection budget).
    pub shed_conns: u64,
    /// Client connections that died abnormally (RST, RTO or keepalive
    /// give-up) — the chaos casualties.
    pub conn_failures: u64,
    /// Clients that finished their request budget.
    pub completed_clients: u64,
}

impl ServeReport {
    /// A fresh shared cell with the given latency SLO.
    pub fn shared(slo: SimTime) -> Arc<Mutex<ServeReport>> {
        Arc::new(Mutex::new(ServeReport {
            latency: Histogram::new(),
            slo,
            ok: 0,
            under_slo: 0,
            ok_bytes: 0,
            miss: 0,
            busy: 0,
            shed_requests: 0,
            shed_conns: 0,
            conn_failures: 0,
            completed_clients: 0,
        }))
    }

    /// Records one completed request: latency from its scheduled arrival,
    /// whether it succeeded, and the response payload size.
    pub fn record(&mut self, latency: SimTime, ok: bool, bytes: u64) {
        self.latency.record(latency);
        if ok {
            self.ok += 1;
            self.ok_bytes += bytes;
            if latency <= self.slo {
                self.under_slo += 1;
            }
        }
    }

    /// Goodput under SLO over a window of `elapsed`: successful-response
    /// requests meeting the SLO, per second.
    pub fn goodput_rps(&self, elapsed: SimTime) -> f64 {
        let secs = elapsed.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.under_slo as f64 / secs
        }
    }
}

impl Instrumented for ServeReport {
    /// Request counters plus the latency histogram (whose expansion carries
    /// `p50_ps`/`p99_ps`/`p999_ps`).
    fn metrics(&self, out: &mut MetricSink) {
        out.histogram("latency", &self.latency);
        out.counter("ok", self.ok);
        out.counter("under_slo", self.under_slo);
        out.counter("ok_bytes", self.ok_bytes);
        out.counter("miss", self.miss);
        out.counter("busy", self.busy);
        out.counter("shed_requests", self.shed_requests);
        out.counter("shed_conns", self.shed_conns);
        out.counter("conn_failures", self.conn_failures);
        out.counter("completed_clients", self.completed_clients);
    }
}
