//! Domain-aware replica placement.
//!
//! A [`ReplicaMap`] spreads each key range across `R` backends placed in
//! *distinct failure domains* (a domain is whatever crashes together: the
//! DIMMs behind one server, one rack power feed — see
//! [`mcn_sim::FailureDomain`]). A correlated outage then takes out at most
//! one replica of any range, which is what lets the resilient client
//! ([`crate::ResilientKvClient`]) answer every request across a mid-run
//! domain crash.
//!
//! Placement is a pure function of the backend list and the range count —
//! no RNG — so every client computes the identical map and the whole fleet
//! agrees on who owns what without coordination.

use std::net::Ipv4Addr;

/// One KV backend: a server endpoint plus the failure domain it lives in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Backend {
    /// Server address (a DIMM IP in the MCN rack).
    pub addr: Ipv4Addr,
    /// Server port.
    pub port: u16,
    /// Failure-domain name (matches the domain defined on the
    /// [`OutagePlan`](mcn_sim::OutagePlan) so chaos and placement agree).
    pub domain: String,
}

/// Replicated key-range placement over a backend fleet; see module docs.
#[derive(Debug, Clone)]
pub struct ReplicaMap {
    backends: Vec<Backend>,
    /// Backend indices per range, `r` entries each, distinct domains.
    ranges: Vec<Vec<usize>>,
}

impl ReplicaMap {
    /// Places `n_ranges` key ranges over `backends` with `r` replicas
    /// each, every replica of a range in a different failure domain.
    /// Ranges rotate over domains and over the backends inside each
    /// domain, so load spreads evenly.
    ///
    /// # Panics
    ///
    /// Panics if `backends` is empty, `r` is zero, or fewer than `r`
    /// distinct domains exist (placement would have to co-locate
    /// replicas, defeating the point).
    pub fn new(backends: Vec<Backend>, n_ranges: usize, r: usize) -> Self {
        assert!(!backends.is_empty(), "no backends");
        assert!(r >= 1, "need at least one replica");
        assert!(n_ranges >= 1, "need at least one range");
        // Domains in first-appearance order (determinism needs no sort).
        let mut domains: Vec<(&str, Vec<usize>)> = Vec::new();
        for (i, b) in backends.iter().enumerate() {
            match domains.iter_mut().find(|(d, _)| *d == b.domain) {
                Some((_, members)) => members.push(i),
                None => domains.push((&b.domain, vec![i])),
            }
        }
        assert!(
            domains.len() >= r,
            "replication factor {r} needs {r} distinct failure domains, \
             have {}",
            domains.len()
        );
        let ranges = (0..n_ranges)
            .map(|g| {
                (0..r)
                    .map(|j| {
                        let (_, members) = &domains[(g + j) % domains.len()];
                        // Divide before the inner mod so the domain pick
                        // and the member pick decorrelate (both mod D
                        // would pin every range to the same member).
                        members[(g / domains.len()) % members.len()]
                    })
                    .collect()
            })
            .collect();
        ReplicaMap { backends, ranges }
    }

    /// The range `key` belongs to.
    pub fn range_of(&self, key: u32) -> usize {
        key as usize % self.ranges.len()
    }

    /// Backend indices holding `key`, primary first; all in distinct
    /// failure domains.
    pub fn replicas_of(&self, key: u32) -> &[usize] {
        &self.ranges[self.range_of(key)]
    }

    /// Backend `i`.
    pub fn backend(&self, i: usize) -> &Backend {
        &self.backends[i]
    }

    /// Number of backends.
    pub fn len(&self) -> usize {
        self.backends.len()
    }

    /// True when the map has no backends (never constructed by
    /// [`new`](Self::new)).
    pub fn is_empty(&self) -> bool {
        self.backends.is_empty()
    }

    /// Replication factor.
    pub fn replication(&self) -> usize {
        self.ranges[0].len()
    }

    /// Number of key ranges.
    pub fn n_ranges(&self) -> usize {
        self.ranges.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fleet() -> Vec<Backend> {
        // 2 servers x 2 DIMMs; domain = the server ("DIMM riser").
        (0..4)
            .map(|i| Backend {
                addr: Ipv4Addr::new(10, 1 + i / 2, 0, 2 + i % 2),
                port: 11211,
                domain: format!("server{}", i / 2),
            })
            .collect()
    }

    #[test]
    fn replicas_land_in_distinct_domains() {
        let map = ReplicaMap::new(fleet(), 8, 2);
        for key in 0..64u32 {
            let reps = map.replicas_of(key);
            assert_eq!(reps.len(), 2);
            assert_ne!(
                map.backend(reps[0]).domain,
                map.backend(reps[1]).domain,
                "key {key} replicated inside one domain"
            );
        }
    }

    #[test]
    fn placement_balances_primaries() {
        let map = ReplicaMap::new(fleet(), 8, 2);
        let mut primaries = [0usize; 4];
        for g in 0..8u32 {
            primaries[map.replicas_of(g)[0]] += 1;
        }
        // 8 ranges over 4 backends: each backend is primary for 2.
        assert_eq!(primaries, [2, 2, 2, 2]);
    }

    #[test]
    #[should_panic(expected = "distinct failure domains")]
    fn colocated_replication_is_refused() {
        let mut one_domain = fleet();
        for b in &mut one_domain {
            b.domain = "pdu0".into();
        }
        ReplicaMap::new(one_domain, 8, 2);
    }
}
