//! Domain-aware replica placement.
//!
//! A [`ReplicaMap`] spreads each key range across `R` backends placed in
//! *distinct failure domains* (a domain is whatever crashes together: the
//! DIMMs behind one server, one rack power feed — see
//! [`mcn_sim::FailureDomain`]). A correlated outage then takes out at most
//! one replica of any range, which is what lets the resilient client
//! ([`crate::ResilientKvClient`]) answer every request across a mid-run
//! domain crash.
//!
//! Placement is a pure function of the backend list and the range count —
//! no RNG — so every client computes the identical map and the whole fleet
//! agrees on who owns what without coordination.
//!
//! Placement is **rack-aware**: when the fleet spans at least `R` racks
//! of a multi-rack datacenter, replicas spread across distinct
//! *racks* (the larger blast radius — a rack power event or ToR loss
//! fells every domain inside it at once); otherwise they spread across
//! distinct per-rack failure domains as before. Domain names repeat
//! across racks (`server0` exists in every rack), so the fallback keys
//! on the `(rack, domain)` pair.

use std::fmt;
use std::net::Ipv4Addr;

/// One KV backend: a server endpoint plus where it lives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Backend {
    /// Server address (a DIMM IP in the MCN rack).
    pub addr: Ipv4Addr,
    /// Server port.
    pub port: u16,
    /// Failure-domain name (matches the domain defined on the
    /// [`OutagePlan`](mcn_sim::OutagePlan) so chaos and placement agree).
    pub domain: String,
    /// Rack the backend lives in (0 for a single-rack deployment).
    pub rack: usize,
}

/// Why a [`ReplicaMap`] could not be built from the given fleet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlacementError {
    /// The backend list was empty.
    NoBackends,
    /// The replication factor was zero.
    ZeroReplication,
    /// The range count was zero.
    ZeroRanges,
    /// Fewer distinct failure units than replicas: placement would have
    /// to co-locate replicas, defeating the point.
    InsufficientDomains {
        /// Replication factor requested.
        needed: usize,
        /// Distinct failure units (racks, or `(rack, domain)` pairs)
        /// actually available.
        have: usize,
    },
}

impl fmt::Display for PlacementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlacementError::NoBackends => write!(f, "no backends"),
            PlacementError::ZeroReplication => write!(f, "need at least one replica"),
            PlacementError::ZeroRanges => write!(f, "need at least one range"),
            PlacementError::InsufficientDomains { needed, have } => write!(
                f,
                "replication factor {needed} needs {needed} distinct failure domains, have {have}"
            ),
        }
    }
}

impl std::error::Error for PlacementError {}

/// Replicated key-range placement over a backend fleet; see module docs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaMap {
    backends: Vec<Backend>,
    /// Backend indices per range, `r` entries each, distinct domains.
    ranges: Vec<Vec<usize>>,
}

impl ReplicaMap {
    /// Places `n_ranges` key ranges over `backends` with `r` replicas
    /// each, every replica of a range in a different failure unit: a
    /// different *rack* when the fleet spans at least `r` racks,
    /// otherwise a different `(rack, domain)` pair. Ranges rotate over
    /// units and over the backends inside each unit, so load spreads
    /// evenly.
    ///
    /// # Errors
    ///
    /// Returns a [`PlacementError`] if `backends` is empty, `r` or
    /// `n_ranges` is zero, or fewer than `r` distinct failure units
    /// exist (placement would have to co-locate replicas, defeating
    /// the point).
    pub fn new(backends: Vec<Backend>, n_ranges: usize, r: usize) -> Result<Self, PlacementError> {
        if backends.is_empty() {
            return Err(PlacementError::NoBackends);
        }
        if r == 0 {
            return Err(PlacementError::ZeroReplication);
        }
        if n_ranges == 0 {
            return Err(PlacementError::ZeroRanges);
        }
        // Failure units in first-appearance order (determinism needs no
        // sort). Racks are the wider blast radius, so prefer them when
        // there are enough; `(rack, domain)` otherwise (domain names
        // repeat across racks).
        let n_racks = {
            let mut racks: Vec<usize> = backends.iter().map(|b| b.rack).collect();
            racks.sort_unstable();
            racks.dedup();
            racks.len()
        };
        let mut units: Vec<((usize, &str), Vec<usize>)> = Vec::new();
        for (i, b) in backends.iter().enumerate() {
            let k = if n_racks >= r {
                (b.rack, "")
            } else {
                (b.rack, b.domain.as_str())
            };
            match units.iter_mut().find(|(u, _)| *u == k) {
                Some((_, members)) => members.push(i),
                None => units.push((k, vec![i])),
            }
        }
        if units.len() < r {
            return Err(PlacementError::InsufficientDomains {
                needed: r,
                have: units.len(),
            });
        }
        let ranges = (0..n_ranges)
            .map(|g| {
                (0..r)
                    .map(|j| {
                        let (_, members) = &units[(g + j) % units.len()];
                        // Divide before the inner mod so the unit pick
                        // and the member pick decorrelate (both mod D
                        // would pin every range to the same member).
                        members[(g / units.len()) % members.len()]
                    })
                    .collect()
            })
            .collect();
        Ok(ReplicaMap { backends, ranges })
    }

    /// The range `key` belongs to.
    pub fn range_of(&self, key: u32) -> usize {
        key as usize % self.ranges.len()
    }

    /// Backend indices holding `key`, primary first; all in distinct
    /// failure domains.
    pub fn replicas_of(&self, key: u32) -> &[usize] {
        &self.ranges[self.range_of(key)]
    }

    /// Backend `i`.
    pub fn backend(&self, i: usize) -> &Backend {
        &self.backends[i]
    }

    /// Number of backends.
    pub fn len(&self) -> usize {
        self.backends.len()
    }

    /// True when the map has no backends (never constructed by
    /// [`new`](Self::new)).
    pub fn is_empty(&self) -> bool {
        self.backends.is_empty()
    }

    /// Replication factor.
    pub fn replication(&self) -> usize {
        self.ranges[0].len()
    }

    /// Number of key ranges.
    pub fn n_ranges(&self) -> usize {
        self.ranges.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fleet() -> Vec<Backend> {
        // 2 servers x 2 DIMMs; domain = the server ("DIMM riser").
        (0..4)
            .map(|i| Backend {
                addr: Ipv4Addr::new(10, 1 + i / 2, 0, 2 + i % 2),
                port: 11211,
                domain: format!("server{}", i / 2),
                rack: 0,
            })
            .collect()
    }

    #[test]
    fn replicas_land_in_distinct_domains() {
        let map = ReplicaMap::new(fleet(), 8, 2).unwrap();
        for key in 0..64u32 {
            let reps = map.replicas_of(key);
            assert_eq!(reps.len(), 2);
            assert_ne!(
                map.backend(reps[0]).domain,
                map.backend(reps[1]).domain,
                "key {key} replicated inside one domain"
            );
        }
    }

    #[test]
    fn placement_balances_primaries() {
        let map = ReplicaMap::new(fleet(), 8, 2).unwrap();
        let mut primaries = [0usize; 4];
        for g in 0..8u32 {
            primaries[map.replicas_of(g)[0]] += 1;
        }
        // 8 ranges over 4 backends: each backend is primary for 2.
        assert_eq!(primaries, [2, 2, 2, 2]);
    }

    #[test]
    fn colocated_replication_is_refused() {
        let mut one_domain = fleet();
        for b in &mut one_domain {
            b.domain = "pdu0".into();
        }
        assert_eq!(
            ReplicaMap::new(one_domain, 8, 2),
            Err(PlacementError::InsufficientDomains { needed: 2, have: 1 })
        );
        assert_eq!(ReplicaMap::new(Vec::new(), 8, 2), Err(PlacementError::NoBackends));
        assert_eq!(ReplicaMap::new(fleet(), 8, 0), Err(PlacementError::ZeroReplication));
        assert_eq!(ReplicaMap::new(fleet(), 0, 2), Err(PlacementError::ZeroRanges));
    }

    #[test]
    fn replicas_prefer_distinct_racks() {
        // Two racks whose per-rack domain names collide ("server0" in
        // both): rack-aware placement must still separate replicas.
        let fleet: Vec<Backend> = (0..4)
            .map(|i| Backend {
                addr: Ipv4Addr::new(192, 168, i / 2, 1 + i % 2),
                port: 11211,
                domain: "server0".into(),
                rack: (i / 2) as usize,
            })
            .collect();
        let map = ReplicaMap::new(fleet, 8, 2).unwrap();
        for key in 0..64u32 {
            let reps = map.replicas_of(key);
            assert_ne!(
                map.backend(reps[0]).rack,
                map.backend(reps[1]).rack,
                "key {key} replicated inside one rack"
            );
        }
    }

    #[test]
    fn single_rack_fleets_fall_back_to_domain_spreading() {
        // One rack, r=2: racks are insufficient, domains carry the split.
        let map = ReplicaMap::new(fleet(), 8, 2).unwrap();
        for key in 0..16u32 {
            let reps = map.replicas_of(key);
            assert_ne!(map.backend(reps[0]).domain, map.backend(reps[1]).domain);
        }
    }
}
